#!/usr/bin/env python3
"""bench_gate.py — regression gate over BENCH_*.json trajectory files.

Compares a freshly produced bench JSON (schema: harness/bench_json.hpp)
against the committed baseline and fails when any shared metric regressed
by more than the threshold (default 25%, generous because CI machines are
noisy and shared). Direction is inferred from the unit: throughput-style
units ("…/s", "x") must not drop; latency-style units (us, ns, …) must
not grow.

Metrics present in only one file are reported but never fail the gate —
adding a metric in the same change that introduces its baseline must not
brick CI. Metrics carrying "gate": false (trajectory-only, e.g.
multi-worker rates that need real cores to be stable) are printed as
"(info)" and never fail either.

On failure the per-metric report is followed by a summary table naming
each failed metric's baseline, current value, delta, the allowed bound,
and the gating direction — enough to judge a flake from the CI log alone.

--update refreshes the committed baseline: the CURRENT file is copied
over BASELINE (after both parse and the would-be gate report is shown),
for intentional re-baselining after an accepted perf change.

Usage: bench_gate.py BASELINE CURRENT [--threshold 0.25] [--update]
Exit status: 0 ok (always 0 with --update), 1 regression, 2 usage/parse
error.
"""

import argparse
import json
import shutil
import sys


def higher_is_better(unit: str) -> bool:
    return "/s" in unit or unit == "x"


def load_metrics(path: str) -> dict:
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"bench_gate: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    metrics = {}
    for m in doc.get("metrics", []):
        metrics[m["name"]] = (float(m["value"]), str(m.get("unit", "")),
                              bool(m.get("gate", True)))
    if not metrics:
        print(f"bench_gate: {path} has no metrics", file=sys.stderr)
        sys.exit(2)
    return metrics


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=0.25,
                    help="allowed relative regression (default 0.25 = 25%%)")
    ap.add_argument("--update", action="store_true",
                    help="copy CURRENT over BASELINE (re-baseline) and exit 0")
    args = ap.parse_args()

    base = load_metrics(args.baseline)
    cur = load_metrics(args.current)

    failures = []  # (name, baseline, current, delta, unit)
    print(f"{'metric':32} {'baseline':>12} {'current':>12} {'delta':>8}")
    for name in sorted(set(base) | set(cur)):
        if name not in base:
            print(f"{name:32} {'-':>12} {cur[name][0]:12.4g}    (new)")
            continue
        if name not in cur:
            print(f"{name:32} {base[name][0]:12.4g} {'-':>12}    (gone)")
            continue
        bval, unit, gated = base[name]
        cval = cur[name][0]
        gated = gated and cur[name][2]
        if bval == 0:
            print(f"{name:32} {bval:12.4g} {cval:12.4g}    (zero base)")
            continue
        delta = (cval - bval) / bval
        if not gated:
            print(f"{name:32} {bval:12.4g} {cval:12.4g} {delta:+7.1%}  (info)")
            continue
        regressed = (delta < -args.threshold if higher_is_better(unit)
                     else delta > args.threshold)
        mark = "  FAIL" if regressed else ""
        print(f"{name:32} {bval:12.4g} {cval:12.4g} {delta:+7.1%}{mark}")
        if regressed:
            failures.append((name, bval, cval, delta, unit))

    if args.update:
        try:
            shutil.copyfile(args.current, args.baseline)
        except OSError as e:
            print(f"bench_gate: cannot update {args.baseline}: {e}",
                  file=sys.stderr)
            return 2
        print(f"\nbench_gate: baseline {args.baseline} updated from "
              f"{args.current}")
        return 0

    if failures:
        print(f"\nbench_gate: {len(failures)} metric(s) regressed beyond "
              f"{args.threshold:.0%}", file=sys.stderr)
        hdr = (f"{'metric':32} {'baseline':>12} {'current':>12} {'delta':>8} "
               f"{'allowed':>8}  direction")
        print(hdr, file=sys.stderr)
        for name, bval, cval, delta, unit in failures:
            direction = ("must not drop" if higher_is_better(unit)
                         else "must not grow")
            bound = (-args.threshold if higher_is_better(unit)
                     else args.threshold)
            print(f"{name:32} {bval:12.4g} {cval:12.4g} {delta:+7.1%} "
                  f"{bound:+7.0%}  {direction} ({unit})", file=sys.stderr)
        print("\nIf this change is an accepted trade-off, re-baseline with:\n"
              f"  tools/bench_gate.py {args.baseline} {args.current} --update",
              file=sys.stderr)
        return 1
    print(f"\nbench_gate: ok ({len(set(base) & set(cur))} metrics within "
          f"{args.threshold:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
