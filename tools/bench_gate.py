#!/usr/bin/env python3
"""bench_gate.py — regression gate over BENCH_*.json trajectory files.

Compares a freshly produced bench JSON (schema: harness/bench_json.hpp)
against the committed baseline and fails when any shared metric regressed
by more than the threshold (default 25%, generous because CI machines are
noisy and shared). Direction is inferred from the unit: throughput-style
units ("…/s", "x") must not drop; latency-style units (us, ns, …) must
not grow.

Metrics present in only one file are reported but never fail the gate —
adding a metric in the same change that introduces its baseline must not
brick CI. Metrics carrying "gate": false (trajectory-only, e.g.
multi-worker rates that need real cores to be stable) are printed as
"(info)" and never fail either.

Usage: bench_gate.py BASELINE CURRENT [--threshold 0.25]
Exit status: 0 ok, 1 regression, 2 usage/parse error.
"""

import argparse
import json
import sys


def higher_is_better(unit: str) -> bool:
    return "/s" in unit or unit == "x"


def load_metrics(path: str) -> dict:
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"bench_gate: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    metrics = {}
    for m in doc.get("metrics", []):
        metrics[m["name"]] = (float(m["value"]), str(m.get("unit", "")),
                              bool(m.get("gate", True)))
    if not metrics:
        print(f"bench_gate: {path} has no metrics", file=sys.stderr)
        sys.exit(2)
    return metrics


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=0.25,
                    help="allowed relative regression (default 0.25 = 25%%)")
    args = ap.parse_args()

    base = load_metrics(args.baseline)
    cur = load_metrics(args.current)

    failures = []
    print(f"{'metric':32} {'baseline':>12} {'current':>12} {'delta':>8}")
    for name in sorted(set(base) | set(cur)):
        if name not in base:
            print(f"{name:32} {'-':>12} {cur[name][0]:12.4g}    (new)")
            continue
        if name not in cur:
            print(f"{name:32} {base[name][0]:12.4g} {'-':>12}    (gone)")
            continue
        bval, unit, gated = base[name]
        cval = cur[name][0]
        gated = gated and cur[name][2]
        if bval == 0:
            print(f"{name:32} {bval:12.4g} {cval:12.4g}    (zero base)")
            continue
        delta = (cval - bval) / bval
        if not gated:
            print(f"{name:32} {bval:12.4g} {cval:12.4g} {delta:+7.1%}  (info)")
            continue
        regressed = (delta < -args.threshold if higher_is_better(unit)
                     else delta > args.threshold)
        mark = "  FAIL" if regressed else ""
        print(f"{name:32} {bval:12.4g} {cval:12.4g} {delta:+7.1%}{mark}")
        if regressed:
            failures.append(name)

    if failures:
        print(f"\nbench_gate: {len(failures)} metric(s) regressed beyond "
              f"{args.threshold:.0%}: {', '.join(failures)}", file=sys.stderr)
        return 1
    print(f"\nbench_gate: ok ({len(set(base) & set(cur))} metrics within "
          f"{args.threshold:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
