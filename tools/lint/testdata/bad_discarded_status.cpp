// testdata: discarded-status. (Lint fodder, never compiled.)
#include "chant/runtime.hpp"
#include "lwt/sync.hpp"

void exercise(chant::Runtime& rt, lwt::Mutex& mu, lwt::CondVar& cv,
              lwt::Semaphore& sem, char* buf, std::size_t cap) {
  rt.recv(0, buf, cap, nullptr);  // LINT: discarded-status
  rt.msgwait(3, chant::Deadline::infinite(), nullptr);  // LINT: discarded-status
  rt.call(1, 0, 2, buf, cap, buf, cap, nullptr);  // LINT: discarded-status
  mu.try_lock();  // LINT: discarded-status
  mu.try_lock_until(100);  // LINT: discarded-status
  cv.wait_until(mu, 100);  // LINT: discarded-status
  sem.try_acquire();  // LINT: discarded-status

  // Consumed returns are fine:
  const chant::Status st = rt.recv(0, buf, cap, nullptr);
  if (mu.try_lock()) {
    (void)st;
  }
  while (!sem.try_acquire()) {
  }
  (void)cv.wait_until(mu, 100);  // explicit discard: fine
  const chant::Status wrapped =
      rt.msgwait(3, chant::Deadline::infinite(), nullptr);
  (void)wrapped;
  rt.recv(0, buf, cap, nullptr);  // chant-lint: allow(discarded-status)
}
