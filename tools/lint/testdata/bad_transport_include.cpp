// testdata: transport-internals. (Lint fodder, never compiled.)
// This file lives outside src/nx/, so reaching into a backend's private
// header must be flagged; the public seam header is fine.
#include "nx/transport.hpp"
#include "nx/machine.hpp"

#include "transport_inproc.hpp"  // LINT: transport-internals
#include "transport_shmring.hpp"  // LINT: transport-internals
#include "nx/transport_shmring.hpp"  // LINT: transport-internals
#include "transport_tcp.hpp"  // LINT: transport-internals

// Suppressed on purpose (e.g. a whitebox test poking ring geometry):
#include "transport_shmring.hpp"  // chant-lint: allow(transport-internals)

void use_machine() {
  nx::Machine::Config cfg;
  cfg.transport_spec = nx::TransportSpec::shmring();  // the sanctioned way
  (void)cfg;
}
