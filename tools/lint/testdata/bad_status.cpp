// testdata: dropped-status. (Lint fodder, never compiled.)
#include "chant/runtime.hpp"

void exercise(chant::Runtime& rt, int handle) {
  rt.cancel_irecv(handle);  // LINT: dropped-status
  rt.call_test(handle);  // LINT: dropped-status

  // Consumed returns are fine:
  const chant::Status st = rt.cancel_irecv(handle);
  if (rt.call_test(handle)) {
    (void)st;
  }
  (void)rt.cancel_irecv(handle);  // explicit discard: fine
  rt.cancel_irecv(handle);  // chant-lint: allow(dropped-status)
}
