// testdata: iovec-stack-lifetime. (Lint fodder, never compiled.)
#include "nx/endpoint.hpp"

void gather_send(nx::Endpoint& ep) {
  nx::IoVec iov[2];
  {
    char tmp[16] = "fragment";
    iov[0].base = tmp;  // LINT: iovec-stack-lifetime
    iov[0].len = sizeof tmp;
  }
  // tmp is dead here but iov[0] still points at its stack slot.
  ep.isendv(1, 0, 3, iov, 1, 0);
}

void gather_send_ok(nx::Endpoint& ep) {
  // Target declared in the same scope as the descriptor: fine.
  char payload[16] = "fragment";
  nx::IoVec iov[2];
  iov[0].base = payload;
  iov[0].len = sizeof payload;
  ep.isendv(1, 0, 3, iov, 1, 0);
}

void gather_send_suppressed(nx::Endpoint& ep) {
  nx::IoVec iov[1];
  {
    char tmp[8] = "x";
    // The send happens inside the block, so the pointer never dangles.
    iov[0].base = tmp;  // chant-lint: allow(iovec-stack-lifetime)
    iov[0].len = sizeof tmp;
    ep.isendv(1, 0, 3, iov, 1, 0);
  }
}
