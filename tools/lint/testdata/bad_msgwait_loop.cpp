// Testdata for the msgwait-loop rule: blocking per-handle msgwait on an
// indexed handle inside a loop is the O(waiting) completion scan a
// chant::Selector replaces with one O(ready) wait per completion.
#include <vector>

namespace chant {
struct Status { bool ok() const { return true; } };
struct Runtime {
  Status msgwait(int h);
  bool msgtest(int h);
};
}  // namespace chant

void serial_scan(chant::Runtime& rt, const std::vector<int>& hs) {
  for (std::size_t i = 0; i < hs.size(); ++i) {
    (void)rt.msgwait(hs[i]);  // LINT: msgwait-loop
  }
}

void braceless_scan(chant::Runtime& rt, const std::vector<int>& hs) {
  for (std::size_t i = 0; i < hs.size(); ++i)
    (void)rt.msgwait(hs[i]);  // LINT: msgwait-loop
}

void pointer_receiver(chant::Runtime* rt, int* hs, int n) {
  int i = 0;
  while (i < n) {
    (void)rt->msgwait(hs[i]);  // LINT: msgwait-loop
    ++i;
  }
}

// Scalar-handle msgwait in a loop is fine: one handle, no per-handle
// scan — retrying a single wait is not the multiplexing anti-pattern.
void scalar_ok(chant::Runtime& rt, int h) {
  for (int attempt = 0; attempt < 3; ++attempt) {
    if (rt.msgwait(h).ok()) return;
  }
}

// Indexed msgwait outside any loop: a one-shot wait, not a scan.
void one_shot_ok(chant::Runtime& rt, const std::vector<int>& hs) {
  (void)rt.msgwait(hs[0]);
}

// Suppressed: ordered drain where completion order IS the program order.
void ordered_drain(chant::Runtime& rt, const std::vector<int>& hs) {
  for (std::size_t i = 0; i < hs.size(); ++i) {
    (void)rt.msgwait(hs[i]);  // chant-lint: allow(msgwait-loop)
  }
}
