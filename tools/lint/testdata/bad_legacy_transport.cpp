// testdata: legacy-transport-config. (Lint fodder, never compiled.)
// The PR-9 TransportSpec grammar superseded the lenient parsers and the
// raw Config fields; new writes to either surface must be flagged.
#include "nx/transport.hpp"
#include "nx/machine.hpp"

void legacy_surface(nx::Machine::Config& cfg, nx::Machine::Config* pcfg) {
  (void)nx::parse_transport("shmring");  // LINT: legacy-transport-config
  (void)nx::resolve_transport(nx::TransportKind::Default);  // LINT: legacy-transport-config
  cfg.transport = nx::TransportKind::ShmRing;  // LINT: legacy-transport-config
  cfg.fork_processes = true;  // LINT: legacy-transport-config
  pcfg->shm_ring_bytes = 1 << 16;  // LINT: legacy-transport-config
}

void sanctioned_surface(nx::Machine::Config& cfg) {
  // The spec field and grammar are the replacement — no findings here.
  cfg.transport_spec = nx::TransportSpec::parse("shmring?fork=1");
  cfg.transport_spec.fork = true;
  if (cfg.transport == nx::TransportKind::ShmRing) {  // comparison, not a write
    cfg.transport_spec = nx::TransportSpec::shmring(cfg.shm_ring_bytes);
  }
}

void one_release_forwarding(nx::Machine::Config& cfg) {
  // The deprecation shims forward the old fields for one release; those
  // sites are annotated deliberately.
  cfg.transport = nx::TransportKind::InProc;  // chant-lint: allow(legacy-transport-config)
}
