// testdata: blocking-in-handler — every seeded violation carries a
// `// LINT: <rule>` annotation the self-test checks against.
// (This file is lint fodder, never compiled.)
#include "chant/runtime.hpp"

namespace {

using chant::Runtime;

void bad_blocking_handler(Runtime& rt, Runtime::RsrContext&, const void*,
                          std::size_t, std::vector<std::uint8_t>& reply) {
  char buf[64];
  rt.recv(7, buf, sizeof buf, chant::kAnyThread);  // chant-lint: allow(discarded-status) // LINT: blocking-in-handler
  reply.clear();
}

void bad_join_handler(Runtime& rt, Runtime::RsrContext&, const void*,
                      std::size_t, std::vector<std::uint8_t>&) {
  rt.join(chant::Gid{0, 0, 1});  // chant-lint: allow(discarded-status) // LINT: blocking-in-handler
}

void good_deferred_handler(Runtime& rt, Runtime::RsrContext& ctx,
                           const void*, std::size_t,
                           std::vector<std::uint8_t>&) {
  // The sanctioned pattern: blocking work rides on a helper fiber.
  ctx.deferred = true;
  const Runtime::RsrContext saved = ctx;
  lwt::go([&rt, saved] {
    int err = 0;
    void* rv = rt.join_for_rsr(1, &err);  // helper fiber: allowed
    rt.reply(saved, &rv, sizeof rv);
  });
}

void good_timed_handler(Runtime& rt, Runtime::RsrContext&, const void*,
                        std::size_t, std::vector<std::uint8_t>&) {
  chant::MsgInfo mi;
  char buf[8];
  (void)rt.recv(7, buf, sizeof buf, chant::kAnyThread,
                chant::Deadline::after_ms(5), &mi);  // bounded: allowed
}

void unregistered_free_function(Runtime& rt) {
  // Not a handler: blocking here is ordinary thread code.
  char buf[8];
  (void)rt.recv(7, buf, sizeof buf, chant::kAnyThread);
}

void register_all(chant::World& w) {
  w.register_handler(&bad_blocking_handler);
  w.register_handler(&bad_join_handler);
  w.register_handler(&good_deferred_handler);
  w.register_handler(&good_timed_handler);
}

}  // namespace
