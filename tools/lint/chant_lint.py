#!/usr/bin/env python3
"""chant-lint — Chant-specific static checks (DESIGN.md §9).

Seven rules the generic toolchain cannot express:

  dropped-status        A call to an always-Status-returning runtime
                        method (cancel_irecv, call_test) used as a bare
                        expression statement. The [[nodiscard]] attribute
                        catches this at compile time; the lint catches it
                        in code that a given configuration never compiles
                        (examples, platform-gated branches).

  discarded-status      The wide-net sibling of dropped-status: a bare
                        expression statement calling any member of the
                        Status-returning runtime surface (recv, msgwait,
                        call, callv, call_wait, join, Selector::remove)
                        or a timed/try synchronization variant returning
                        bool (try_lock*, try_acquire*, wait_until, ...).
                        A silently dropped Status turns a deadline expiry
                        or dead peer into corruption several calls later;
                        a dropped timed-wait bool means the caller cannot
                        know whether it holds the lock. All of these are
                        [[nodiscard]] in the headers; the lint covers
                        configurations the compiler never sees.

  blocking-in-handler   An unbounded blocking runtime call (recv,
                        msgwait, call_wait, call, callv, join, untimed
                        lock/acquire) syntactically inside a registered
                        RSR handler body. Handlers run on the
                        priority-boosted server thread: one wedged wait
                        stalls the whole RSR plane (paper §3.2). Calls
                        inside an `lwt::go(...)` helper-fiber argument are
                        exempt — deferring blocking work to a helper is
                        the sanctioned pattern (paper §3.3, h_join).
                        Deadline-bounded calls (an argument mentioning
                        "deadline" / "Deadline") are exempt as well.

  iovec-stack-lifetime  An nx::IoVec fragment pointed at a variable that
                        was declared in a *nested* scope below the IoVec
                        itself: the fragment outlives its target, and the
                        gather send reads a dead stack slot.

  msgwait-loop          A per-handle blocking msgwait on an indexed
                        handle (msgwait(hs[i])) inside a loop body: the
                        fiber serializes on one handle at a time, paying
                        an O(waiting) blocking scan for completions that
                        arrive in an order the loop cannot predict.
                        chant::Selector multiplexes the same handles and
                        wakes once per completion, O(ready)
                        (DESIGN.md §11).

  transport-internals   A `#include` of a transport backend's private
                        header (transport_inproc.hpp,
                        transport_shmring.hpp, transport_tcp.hpp) from a
                        file outside src/nx/. The backends live behind
                        the nx::Transport seam (DESIGN.md §12); callers
                        pick one via the TransportSpec grammar or
                        CHANT_TRANSPORT, never by reaching into a
                        backend's ring/doorbell/socket internals.

  legacy-transport-config
                        A call to the deprecated lenient parsers
                        (parse_transport / resolve_transport) or a write
                        to the deprecated Config fields (.transport,
                        .fork_processes, .shm_ring_bytes). Both were
                        superseded by the TransportSpec addressing API
                        in PR 9 (DESIGN.md §13): new code sets
                        Config::transport_spec (TransportSpec::parse /
                        factories), which reports malformed specs
                        instead of guessing. The shims themselves and
                        their one-release forwarding sites carry allow
                        comments.

Suppress a finding with a trailing `// chant-lint: allow(<rule>)` on the
offending line.

Usage:
  chant_lint.py FILE_OR_DIR...   lint (exit 1 if findings)
  chant_lint.py --self-test      run against tools/lint/testdata, where
                                 every expected finding is annotated with
                                 `// LINT: <rule>`; exits 1 on mismatch.
"""

import os
import re
import sys

RULES = ("dropped-status", "discarded-status", "blocking-in-handler",
         "iovec-stack-lifetime", "msgwait-loop", "transport-internals",
         "legacy-transport-config")

ALLOW_RE = re.compile(r"//\s*chant-lint:\s*allow\(([\w-]+)\)")
LINT_EXPECT_RE = re.compile(r"//\s*LINT:\s*([\w-]+)")

# Methods whose every overload returns chant::Status.
ALWAYS_STATUS = ("cancel_irecv", "call_test")
DROPPED_RE = re.compile(
    r"^\s*(?:\w+(?:\.|->))?(" + "|".join(ALWAYS_STATUS) + r")\s*\("
)

# The wider Status-returning runtime surface plus the timed/try bool
# synchronization variants ([[nodiscard]] in the headers). Member-call
# syntax is required (`x.recv(`, `p->try_lock(`): free functions with
# these names (lwt::join, std::remove) return void or unrelated types.
# Longest-first so `call` cannot shadow `call_wait` / `callv`.
DISCARDED_METHODS = sorted(
    ("recv", "msgwait", "call_wait", "callv", "call", "join", "remove",
     "try_lock", "try_lock_until", "try_lock_for", "try_lock_shared",
     "try_lock_shared_until", "wait_until", "try_acquire",
     "try_acquire_until"),
    key=len, reverse=True)
DISCARDED_RE = re.compile(
    r"^\s*\w+(?:\.|->)(" + "|".join(DISCARDED_METHODS) + r")\s*\("
)

# Registered-handler discovery.
REGISTER_RE = re.compile(r"register_handler\s*\(\s*&?(\w+)")
ASSIGN_HANDLER_RE = re.compile(r"handlers_\s*\[[^\]]*\]\s*=\s*&(\w+)")

# Unbounded blocking runtime calls (on any object: rt., rt->, implicit).
BLOCKING_RE = re.compile(
    r"(?:\.|->)(recv|msgwait|call_wait|call|callv|join|join_for_rsr"
    r"|lock|lock_shared|acquire)\s*\("
)
TIMED_HINT_RE = re.compile(r"deadline|_until|_for\s*\(", re.IGNORECASE)

IOVEC_DECL_RE = re.compile(r"\bIoVec\s+(\w+)\s*(?:\[|;|=|\{)")
# iov[0].base = &x;   iov.base = buf;   iov[i] = {x.data(), n};
IOVEC_POINT_RE = re.compile(
    r"\b(\w+)\s*(?:\[[^\]]*\])?\s*\.\s*base\s*=\s*&?(\w+)"
)
IOVEC_BRACE_RE = re.compile(
    r"\b(\w+)\s*(?:\[[^\]]*\])?\s*=\s*\{\s*&?(\w+)"
)
# Local declarations we track for lifetime comparison (common forms).
LOCAL_DECL_RE = re.compile(
    r"^\s*(?:const\s+)?(?:unsigned\s+)?"
    r"(?:char|int|long|short|float|double|auto|bool|size_t|wire::\w+"
    r"|std::(?:uint|int)(?:8|16|32|64)_t|std::array<[^>]*>|std::string"
    r"|std::vector<[^>]*>)\s+(\w+)\s*(?:\[[^\]]*\])?\s*(?:=|;|\{)"
)

# Loop headers and the indexed per-handle wait that marks an O(waiting)
# completion scan (scalar-handle msgwait is fine: one handle, no scan).
LOOP_KW_RE = re.compile(r"\b(?:for|while|do)\b")
MSGWAIT_IDX_RE = re.compile(r"(?:\.|->)msgwait\s*\(\s*\w+\s*\[")

# Private transport-backend headers; only src/nx/ may include them.
TRANSPORT_INTERNAL_RE = re.compile(
    r'#\s*include\s*[<"][^<">]*transport_(inproc|shmring|tcp)\.hpp[">]'
)

# Deprecated backend-selection surface (PR 9): the lenient parsers and
# writes to the legacy Config fields. `transport_spec` does not match —
# the field names must end at a word boundary before the `=`. `=(?!=)`
# keeps comparisons out.
LEGACY_TRANSPORT_RE = re.compile(
    r"\b(parse_transport|resolve_transport)\s*\("
    r"|(?:\.|->)\s*(transport|fork_processes|shm_ring_bytes)\s*=(?!=)"
)


def inside_nx_backend(path):
    """True for files under a src/nx/ directory — the one place the
    backend headers are legitimately included."""
    norm = os.path.normpath(os.path.abspath(path)).replace(os.sep, "/")
    return "/src/nx/" in norm


# Statement contexts in which a Status return IS consumed.
CONSUMED_RE = re.compile(
    r"^\s*(?:return\b|if\b|while\b|for\b|case\b|\(void\)|[\w:<>,&\*\s]+=\s*"
    r"|EXPECT_|ASSERT_|CHECK)"
)


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(line):
    """Blanks out string/char literals and // comments so the regexes
    cannot match inside them. Column positions are preserved."""
    out = []
    i, n = 0, len(line)
    quote = None
    while i < n:
        c = line[i]
        if quote:
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            out.append(" " if c != quote else c)
            if c == quote:
                quote = None
            i += 1
            continue
        if c in "\"'":
            quote = c
            out.append(c)
        elif c == "/" and i + 1 < n and line[i + 1] == "/":
            break  # rest is comment
        else:
            out.append(c)
        i += 1
    return "".join(out)


def find_handler_names(lines):
    names = set()
    for raw in lines:
        line = strip_comments_and_strings(raw)
        for m in REGISTER_RE.finditer(line):
            names.add(m.group(1))
        for m in ASSIGN_HANDLER_RE.finditer(line):
            names.add(m.group(1))
    return names


def handler_body_ranges(lines, names):
    """Yields (name, start_idx, end_idx) for each registered handler whose
    definition (void name(Runtime& ...)) lives in this file."""
    for name in names:
        sig = re.compile(r"^\s*(?:static\s+)?void\s+" + re.escape(name)
                         + r"\s*\(")
        for i, raw in enumerate(lines):
            if not sig.search(strip_comments_and_strings(raw)):
                continue
            depth = 0
            started = False
            for j in range(i, len(lines)):
                code = strip_comments_and_strings(lines[j])
                depth += code.count("{") - code.count("}")
                if "{" in code:
                    started = True
                if started and depth <= 0:
                    yield name, i, j
                    break
            break


def check_file(path):
    findings = []
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            lines = f.read().splitlines()
    except OSError as e:
        print(f"chant-lint: cannot read {path}: {e}", file=sys.stderr)
        return findings

    allows = {}
    for i, raw in enumerate(lines):
        m = ALLOW_RE.search(raw)
        if m:
            allows.setdefault(i, set()).add(m.group(1))

    def allowed(i, rule):
        return rule in allows.get(i, ())

    # ---- rule: dropped-status -------------------------------------
    for i, raw in enumerate(lines):
        code = strip_comments_and_strings(raw)
        m = DROPPED_RE.search(code)
        if m and not CONSUMED_RE.search(code) and not allowed(
                i, "dropped-status"):
            findings.append(Finding(
                path, i + 1, "dropped-status",
                f"return value of Status-returning '{m.group(1)}' is "
                "discarded; check it or cast to (void) with a reason"))

    # ---- rule: discarded-status -----------------------------------
    # A member call from the wider [[nodiscard]] surface as a bare
    # statement. Lines that continue a prior statement (previous code
    # line does not end a statement/scope) are skipped: `Status s =\n
    # rt.recv(...)` is consumed, just wrapped.
    prev_end = ";"
    for i, raw in enumerate(lines):
        code = strip_comments_and_strings(raw)
        stripped = code.strip()
        starts_stmt = prev_end in ";{}:" or prev_end == ""
        if stripped:
            prev_end = stripped[-1]
        if not stripped:
            continue
        m = DISCARDED_RE.search(code)
        if (m and starts_stmt and not CONSUMED_RE.search(code)
                and not DROPPED_RE.search(code)  # dropped-status owns those
                and not allowed(i, "discarded-status")):
            findings.append(Finding(
                path, i + 1, "discarded-status",
                f"result of '{m.group(1)}' is discarded; a dropped Status "
                "(or timed-wait bool) hides deadline expiry, dead peers "
                "and failed lock acquisition — check it or cast to "
                "(void) with a reason"))

    # ---- rule: blocking-in-handler --------------------------------
    names = find_handler_names(lines)
    for name, start, end in handler_body_ranges(lines, names):
        go_depth = None   # paren depth at which an lwt::go argument began
        paren = 0
        for i in range(start, end + 1):
            code = strip_comments_and_strings(lines[i])
            if go_depth is None:
                g = re.search(r"\blwt::go\s*\(", code)
                if g:
                    # Everything inside the go(...) argument runs on a
                    # helper fiber and may block freely.
                    go_depth = paren
            paren += code.count("(") - code.count(")")
            if go_depth is not None:
                if paren <= go_depth:
                    go_depth = None
                continue
            m = BLOCKING_RE.search(code)
            if not m:
                continue
            # The call's arguments may span lines: gather the statement
            # until its parentheses balance before testing for a deadline.
            stmt = code
            k = i
            while (stmt.count("(") > stmt.count(")") and k + 1 <= end
                   and k - i < 6):
                k += 1
                stmt += " " + strip_comments_and_strings(lines[k])
            if TIMED_HINT_RE.search(stmt):
                continue  # deadline-bounded: permitted
            if allowed(i, "blocking-in-handler"):
                continue
            findings.append(Finding(
                path, i + 1, "blocking-in-handler",
                f"unbounded blocking call '{m.group(1)}' inside RSR "
                f"handler '{name}'; defer to an lwt::go helper fiber or "
                "use a deadline-bounded variant"))

    # ---- rule: transport-internals --------------------------------
    # Matched against the raw line minus trailing // comments: the header
    # name sits inside the include's quotes, which
    # strip_comments_and_strings would blank out.
    if not inside_nx_backend(path):
        for i, raw in enumerate(lines):
            code = raw.split("//", 1)[0]
            m = TRANSPORT_INTERNAL_RE.search(code)
            if m and not allowed(i, "transport-internals"):
                findings.append(Finding(
                    path, i + 1, "transport-internals",
                    f"transport_{m.group(1)}.hpp is a backend-private "
                    "header; select a backend through "
                    "Machine::Config::transport (or CHANT_TRANSPORT), "
                    "not by including src/nx internals"))

    # ---- rule: legacy-transport-config ----------------------------
    for i, raw in enumerate(lines):
        code = strip_comments_and_strings(raw)
        m = LEGACY_TRANSPORT_RE.search(code)
        if m and not allowed(i, "legacy-transport-config"):
            what = m.group(1) or m.group(2)
            findings.append(Finding(
                path, i + 1, "legacy-transport-config",
                f"'{what}' is the deprecated backend-selection surface "
                "(PR 9); address the backend through Config::"
                "transport_spec and the TransportSpec grammar "
                "(DESIGN.md §13) instead"))

    # ---- rule: msgwait-loop ---------------------------------------
    depth = 0
    loop_bodies = []   # brace depths at which a loop body opened
    pending_loop = False
    for i, raw in enumerate(lines):
        code = strip_comments_and_strings(raw)
        in_loop = bool(loop_bodies) or pending_loop
        m = MSGWAIT_IDX_RE.search(code)
        if m and in_loop and not allowed(i, "msgwait-loop"):
            findings.append(Finding(
                path, i + 1, "msgwait-loop",
                "blocking per-handle msgwait on an indexed handle inside "
                "a loop serializes completions (O(waiting) scan); "
                "register the handles with a chant::Selector and wait "
                "once per completion instead"))
        if LOOP_KW_RE.search(code):
            pending_loop = True
        opens = code.count("{")
        closes = code.count("}")
        if pending_loop and opens:
            loop_bodies.append(depth + 1)
            pending_loop = False
        elif pending_loop and (";" in code and not LOOP_KW_RE.search(code)):
            pending_loop = False  # braceless body ended
        depth += opens - closes
        while loop_bodies and depth < loop_bodies[-1]:
            loop_bodies.pop()

    # ---- rule: iovec-stack-lifetime -------------------------------
    depth = 0
    iovec_depth = {}   # iovec var -> decl depth
    local_depth = {}   # local var -> decl depth
    scope_stack = []   # list of names declared per depth for popping
    for i, raw in enumerate(lines):
        code = strip_comments_and_strings(raw)
        dm = IOVEC_DECL_RE.search(code)
        if dm:
            iovec_depth[dm.group(1)] = depth
        lm = LOCAL_DECL_RE.match(code)
        if lm and lm.group(1) not in iovec_depth:
            local_depth[lm.group(1)] = depth
            scope_stack.append((depth, lm.group(1)))
        for pm in list(IOVEC_POINT_RE.finditer(code)) + list(
                IOVEC_BRACE_RE.finditer(code)):
            iov, target = pm.group(1), pm.group(2)
            if iov not in iovec_depth or target not in local_depth:
                continue
            if local_depth[target] > iovec_depth[iov] and not allowed(
                    i, "iovec-stack-lifetime"):
                findings.append(Finding(
                    path, i + 1, "iovec-stack-lifetime",
                    f"IoVec '{iov}' (scope depth {iovec_depth[iov]}) "
                    f"points at '{target}' declared in a nested scope "
                    f"(depth {local_depth[target]}); the fragment "
                    "outlives its target"))
        opens = code.count("{")
        closes = code.count("}")
        depth += opens - closes
        if closes:
            # drop locals whose scope just ended
            scope_stack = [(d, n) for (d, n) in scope_stack if d <= depth]
            live = {n for (_, n) in scope_stack}
            local_depth = {n: d for n, d in local_depth.items() if n in live}
            iovec_depth = {n: d for n, d in iovec_depth.items()
                           if d <= depth}
    return findings


def iter_sources(paths):
    exts = (".cpp", ".cc", ".cxx", ".hpp", ".h", ".hh")
    for p in paths:
        if os.path.isdir(p):
            for root, _, files in os.walk(p):
                for f in sorted(files):
                    if f.endswith(exts):
                        yield os.path.join(root, f)
        else:
            yield p


def self_test():
    here = os.path.dirname(os.path.abspath(__file__))
    testdata = os.path.join(here, "testdata")
    ok = True
    for path in iter_sources([testdata]):
        with open(path, encoding="utf-8") as f:
            lines = f.read().splitlines()
        expected = {}
        for i, raw in enumerate(lines):
            m = LINT_EXPECT_RE.search(raw)
            if m:
                expected.setdefault(i + 1, set()).add(m.group(1))
        got = {}
        for fd in check_file(path):
            got.setdefault(fd.line, set()).add(fd.rule)
        if expected != got:
            ok = False
            print(f"self-test MISMATCH in {path}:", file=sys.stderr)
            for line in sorted(set(expected) | set(got)):
                e = ",".join(sorted(expected.get(line, ()))) or "-"
                g = ",".join(sorted(got.get(line, ()))) or "-"
                if expected.get(line) != got.get(line):
                    print(f"  line {line}: expected [{e}] got [{g}]",
                          file=sys.stderr)
    print("chant-lint self-test:", "PASS" if ok else "FAIL")
    return 0 if ok else 1


def main(argv):
    if len(argv) >= 2 and argv[1] == "--self-test":
        return self_test()
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    findings = []
    for path in iter_sources(argv[1:]):
        findings.extend(check_file(path))
    for fd in findings:
        print(fd)
    if findings:
        print(f"chant-lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
