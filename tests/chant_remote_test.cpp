// chant_remote_test.cpp — global thread operations (paper §3.3):
// remote create / join / detach / cancel, marshalled arguments,
// identity accessors, error paths.
#include <gtest/gtest.h>

#include <cerrno>
#include <cstring>
#include <vector>

#include "chant_test_util.hpp"

namespace {

using chant::Gid;
using chant::Runtime;
using chant_test::PolicyCase;

void* return_arg_times_3(void* arg) {
  return reinterpret_cast<void*>(reinterpret_cast<long>(arg) * 3);
}

void* yield_forever(void*) {
  Runtime& rt = *Runtime::current();
  for (;;) rt.yield();
}

class ChantRemote : public ::testing::TestWithParam<PolicyCase> {};

TEST_P(ChantRemote, RemoteCreateRunsOnTargetPe) {
  chant::World w(chant_test::config_for(GetParam()));
  w.run([](Runtime& rt) {
    if (rt.pe() != 0) return;
    const Gid g = rt.create(
        [](void*) -> void* {
          return reinterpret_cast<void*>(
              static_cast<long>(Runtime::current()->pe()));
        },
        nullptr, 1, 0);
    EXPECT_EQ(g.pe, 1);
    EXPECT_EQ(g.process, 0);
    EXPECT_GE(g.thread, chant::kFirstUserLid);
    EXPECT_EQ(rt.join(g), reinterpret_cast<void*>(1L));
  });
}

TEST_P(ChantRemote, RemoteJoinReturnsRetval) {
  chant::World w(chant_test::config_for(GetParam()));
  w.run([](Runtime& rt) {
    if (rt.pe() != 0) return;
    const Gid g =
        rt.create(&return_arg_times_3, reinterpret_cast<void*>(14L), 1, 0);
    int err = -1;
    void* rv = rt.join(g, &err);
    EXPECT_EQ(err, 0);
    EXPECT_EQ(rv, reinterpret_cast<void*>(42L));
  });
}

TEST_P(ChantRemote, LocalSentinelCreatesLocally) {
  chant::World w(chant_test::config_for(GetParam()));
  w.run([](Runtime& rt) {
    if (rt.pe() != 0) return;
    const Gid g = rt.create(
        [](void*) -> void* {
          return reinterpret_cast<void*>(
              static_cast<long>(Runtime::current()->pe()));
        },
        nullptr, PTHREAD_CHANTER_LOCAL, PTHREAD_CHANTER_LOCAL);
    EXPECT_EQ(g.pe, 0);
    EXPECT_EQ(rt.join(g), reinterpret_cast<void*>(0L));
  });
}

TEST_P(ChantRemote, MarshalledArgumentIsCopied) {
  chant::World w(chant_test::config_for(GetParam()));
  w.run([](Runtime& rt) {
    if (rt.pe() != 0) return;
    struct Payload {
      Gid reply_to;
      char text[32];
    } p{};
    p.reply_to = rt.self();
    std::snprintf(p.text, sizeof p.text, "marshalled-%d", 7);
    const Gid g = rt.create_marshalled(
        [](Runtime& r, const void* arg, std::size_t len) {
          ASSERT_EQ(len, sizeof(Payload));
          Payload local{};
          std::memcpy(&local, arg, sizeof local);
          long ok = std::strcmp(local.text, "marshalled-7") == 0 ? 1 : 0;
          r.send(70, &ok, sizeof ok, local.reply_to);
        },
        &p, sizeof p, 1, 0);
    // The source buffer may be reused immediately after create returns.
    std::memset(&p, 0xDD, sizeof p);
    long ok = 0;
    rt.recv(70, &ok, sizeof ok, chant::kAnyThread);
    EXPECT_EQ(ok, 1);
    rt.join(g);
  });
}

TEST_P(ChantRemote, RemoteCancelStopsSpinner) {
  chant::World w(chant_test::config_for(GetParam()));
  w.run([](Runtime& rt) {
    if (rt.pe() != 0) return;
    const Gid g = rt.create(&yield_forever, nullptr, 1, 0);
    EXPECT_EQ(rt.cancel(g), 0);
    int err = -1;
    void* rv = rt.join(g, &err);
    EXPECT_EQ(err, 0);
    EXPECT_EQ(rv, lwt::kCanceled);
  });
}

TEST_P(ChantRemote, RemoteCancelWakesBlockedReceiver) {
  // The cancelled thread is parked in a blocking receive that will never
  // be satisfied — cancellation must eject it and withdraw the receive.
  chant::World w(chant_test::config_for(GetParam()));
  w.run([](Runtime& rt) {
    if (rt.pe() != 0) return;
    const Gid g = rt.create(
        [](void*) -> void* {
          Runtime& r = *Runtime::current();
          char buf[8];
          r.recv(71, buf, sizeof buf, chant::kAnyThread);  // never sent
          return nullptr;
        },
        nullptr, 1, 0);
    // Give the receiver a moment to park, then cancel it.
    for (int i = 0; i < 10; ++i) rt.yield();
    EXPECT_EQ(rt.cancel(g), 0);
    EXPECT_EQ(rt.join(g), lwt::kCanceled);
  });
}

TEST_P(ChantRemote, RemoteDetachReclaimsWithoutJoin) {
  chant::World w(chant_test::config_for(GetParam()));
  w.run([](Runtime& rt) {
    if (rt.pe() != 0) return;
    const Gid g = rt.create([](void*) -> void* { return nullptr; },
                            nullptr, 1, 0);
    EXPECT_EQ(rt.detach(g), 0);
    // Joining a detached thread must fail.
    int err = 0;
    rt.join(g, &err);
    EXPECT_EQ(err, ESRCH);
  });
}

TEST_P(ChantRemote, JoinUnknownThreadIsEsrch) {
  chant::World w(chant_test::config_for(GetParam()));
  w.run([](Runtime& rt) {
    if (rt.pe() != 0) return;
    int err = 0;
    rt.join(Gid{1, 0, 200}, &err);
    EXPECT_EQ(err, ESRCH);
    EXPECT_EQ(rt.cancel(Gid{1, 0, 200}), ESRCH);
    EXPECT_EQ(rt.detach(Gid{1, 0, 200}), ESRCH);
  });
}

TEST_P(ChantRemote, SelfJoinIsEdeadlk) {
  chant::World w(chant_test::config_for(GetParam(), /*pes=*/1));
  w.run([](Runtime& rt) {
    int err = 0;
    rt.join(rt.self(), &err);
    EXPECT_EQ(err, EDEADLK);
  });
}

TEST_P(ChantRemote, DoubleJoinSecondFails) {
  chant::World w(chant_test::config_for(GetParam()));
  w.run([](Runtime& rt) {
    if (rt.pe() != 0) return;
    const Gid g = rt.create([](void*) -> void* { return nullptr; },
                            nullptr, 1, 0);
    int err = -1;
    rt.join(g, &err);
    EXPECT_EQ(err, 0);
    rt.join(g, &err);
    EXPECT_EQ(err, ESRCH);  // lid gone after the first join
  });
}

TEST_P(ChantRemote, ManyRemoteThreadsLidReuse) {
  // Create/join waves of remote threads; lids must recycle and never
  // exceed the addressing mode's limit.
  chant::World w(chant_test::config_for(GetParam()));
  w.run([](Runtime& rt) {
    if (rt.pe() != 0) return;
    const int max_lid = rt.codec().max_lid();
    for (int wave = 0; wave < 4; ++wave) {
      std::vector<Gid> gs;
      for (long i = 0; i < 40; ++i) {
        gs.push_back(rt.create(&return_arg_times_3,
                               reinterpret_cast<void*>(i), 1, 0));
        EXPECT_LE(gs.back().thread, max_lid);
      }
      for (long i = 0; i < 40; ++i) {
        EXPECT_EQ(rt.join(gs[static_cast<std::size_t>(i)]),
                  reinterpret_cast<void*>(i * 3));
      }
    }
  });
}

TEST_P(ChantRemote, LocalTcbResolvesOnlyLocalThreads) {
  chant::World w(chant_test::config_for(GetParam()));
  w.run([](Runtime& rt) {
    if (rt.pe() != 0) return;
    const Gid remote = rt.create(&yield_forever, nullptr, 1, 0);
    EXPECT_EQ(rt.local_tcb(remote), nullptr);  // not ours
    const Gid local = rt.create(&yield_forever, nullptr,
                                PTHREAD_CHANTER_LOCAL, PTHREAD_CHANTER_LOCAL);
    EXPECT_NE(rt.local_tcb(local), nullptr);
    rt.cancel(local);
    rt.cancel(remote);
    rt.join(local);
    rt.join(remote);
  });
}

TEST_P(ChantRemote, PriorityReadAndWriteAcrossPes) {
  chant::World w(chant_test::config_for(GetParam()));
  w.run([](Runtime& rt) {
    if (rt.pe() != 0) return;
    // The victim parks in a never-satisfied receive rather than spinning:
    // under non-preemptive strict priorities a *running* priority-6
    // thread would legitimately starve a ThreadPolls server (documented
    // limitation); a parked one competes with nobody.
    const Gid g = rt.create(
        [](void*) -> void* {
          char buf[4];
          Runtime::current()->recv(77, buf, sizeof buf, chant::kAnyThread);
          return nullptr;
        },
        nullptr, 1, 0);
    int prio = -1;
    EXPECT_EQ(rt.get_priority(g, &prio), 0);
    EXPECT_EQ(prio, lwt::kDefaultPriority);
    // Stay at or below the default: under ThreadPolls a higher-priority
    // poller would starve the (default-priority) server thread — an
    // inherent property of non-preemptive strict priorities.
    EXPECT_EQ(rt.set_priority(g, 1), 0);
    EXPECT_EQ(rt.get_priority(g, &prio), 0);
    EXPECT_EQ(prio, 1);
    EXPECT_EQ(rt.set_priority(g, 99), EINVAL);
    EXPECT_EQ(rt.set_priority(Gid{1, 0, 200}, 3), ESRCH);
    EXPECT_EQ(rt.get_priority(Gid{1, 0, 200}, &prio), ESRCH);
    // C API face of the same operations.
    EXPECT_EQ(pthread_chanter_setprio(&g, 2), 0);
    EXPECT_EQ(pthread_chanter_getprio(&g, &prio), 0);
    EXPECT_EQ(prio, 2);
    // Restore the default so the victim is not starved by the server
    // while completing, then release and join it.
    EXPECT_EQ(rt.set_priority(g, lwt::kDefaultPriority), 0);
    char go = 'g';
    rt.send(77, &go, 1, g);
    rt.join(g);
  });
}

TEST_P(ChantRemote, PriorityActuallyAffectsScheduling) {
  // Strict non-preemptive priorities: while a priority-6 worker is
  // runnable, a priority-1 spinner must not be scheduled at all.
  // (Server off: under ThreadPolls its default-priority polling would
  // legitimately starve the priority-1 spinner forever.)
  chant::World::Config cfg = chant_test::config_for(GetParam(), /*pes=*/1);
  cfg.rt.start_server = false;
  chant::World w(cfg);
  w.run([](Runtime& rt) {
    struct Ctx {
      long ticks = 0;
      bool stop = false;
    };
    Ctx lo;
    const Gid glo = rt.create(
        [](void* p) -> void* {
          auto* c = static_cast<Ctx*>(p);
          while (!c->stop) {
            ++c->ticks;
            Runtime::current()->yield();
          }
          return nullptr;
        },
        &lo, PTHREAD_CHANTER_LOCAL, PTHREAD_CHANTER_LOCAL);
    const Gid ghi = rt.create(
        [](void*) -> void* {
          for (int i = 0; i < 100; ++i) Runtime::current()->yield();
          return nullptr;
        },
        nullptr, PTHREAD_CHANTER_LOCAL, PTHREAD_CHANTER_LOCAL);
    ASSERT_EQ(rt.set_priority(glo, 1), 0);
    ASSERT_EQ(rt.set_priority(ghi, 6), 0);
    rt.join(ghi);  // main blocks; hi (6) monopolizes the pe over lo (1)
    EXPECT_EQ(lo.ticks, 0) << "low-priority thread ran while a "
                              "high-priority thread was runnable";
    lo.stop = true;
    rt.join(glo);  // main blocks again, finally letting lo run and exit
  });
}

TEST_P(ChantRemote, ExitThreadPublishesValue) {
  chant::World w(chant_test::config_for(GetParam()));
  w.run([](Runtime& rt) {
    if (rt.pe() != 0) return;
    const Gid g = rt.create(
        [](void*) -> void* {
          Runtime::current()->exit_thread(reinterpret_cast<void*>(808L));
        },
        nullptr, 1, 0);
    EXPECT_EQ(rt.join(g), reinterpret_cast<void*>(808L));
  });
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, ChantRemote,
                         ::testing::ValuesIn(chant_test::all_cases()),
                         [](const auto& info) {
                           return chant_test::case_name(info.param);
                         });

}  // namespace
