// chant_tagcodec_test.cpp — header encoding of global thread names
// (paper §3.1(2)), both addressing modes, exhaustive-ish sweeps.
#include "chant/tagcodec.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "chant/chant.hpp"

namespace {

using chant::AddressingMode;
using chant::TagCodec;

nx::MsgHeader header_from(const TagCodec::Wire& w, int src_pe = 1,
                          int src_proc = 0) {
  nx::MsgHeader h;
  h.src_pe = src_pe;
  h.src_proc = src_proc;
  h.tag = w.tag;
  h.channel = w.channel;
  return h;
}

bool matches(const TagCodec::Pattern& p, const nx::MsgHeader& h) {
  return ((h.tag & p.tag_mask) == (p.tag & p.tag_mask)) &&
         ((h.channel & p.channel_mask) == (p.channel & p.channel_mask));
}

class TagCodecModes : public ::testing::TestWithParam<AddressingMode> {
 protected:
  TagCodec codec{GetParam()};
};

TEST_P(TagCodecModes, RoundTripsLidsAndTag) {
  for (int dst : {0, 1, 2, 100, codec.max_lid()}) {
    for (int src : {0, 1, 7, codec.max_lid()}) {
      for (int tag : {0, 1, 1000, codec.max_user_tag()}) {
        const auto w = codec.encode(dst, src, tag);
        const auto h = header_from(w);
        EXPECT_EQ(codec.decode_src_lid(h), src);
        EXPECT_EQ(codec.decode_user_tag(h), tag);
        EXPECT_FALSE(codec.is_internal(h));
      }
    }
  }
}

TEST_P(TagCodecModes, InternalBitRoundTrips) {
  const auto w = codec.encode(3, 4, chant::kTagRsr, /*internal=*/true);
  const auto h = header_from(w);
  EXPECT_TRUE(codec.is_internal(h));
  EXPECT_EQ(codec.decode_user_tag(h), chant::kTagRsr);
  EXPECT_EQ(codec.decode_src_lid(h), 4);
}

TEST_P(TagCodecModes, ExactPatternMatchesOnlyItself) {
  const auto pat = codec.pattern(5, 6, 77);
  EXPECT_TRUE(matches(pat, header_from(codec.encode(5, 6, 77))));
  EXPECT_FALSE(matches(pat, header_from(codec.encode(5, 6, 78))));   // tag
  EXPECT_FALSE(matches(pat, header_from(codec.encode(5, 7, 77))));   // src
  EXPECT_FALSE(matches(pat, header_from(codec.encode(4, 6, 77))));   // dst
}

TEST_P(TagCodecModes, WildcardSourceMatchesAnySender) {
  const auto pat = codec.pattern(5, /*src=*/-1, 77);
  EXPECT_TRUE(matches(pat, header_from(codec.encode(5, 0, 77))));
  EXPECT_TRUE(matches(pat, header_from(codec.encode(5, 9, 77))));
  EXPECT_FALSE(matches(pat, header_from(codec.encode(6, 9, 77))));
}

TEST_P(TagCodecModes, WildcardTagMatchesAnyUserTag) {
  const auto pat = codec.pattern(5, 6, /*tag=*/-1);
  EXPECT_TRUE(matches(pat, header_from(codec.encode(5, 6, 0))));
  EXPECT_TRUE(
      matches(pat, header_from(codec.encode(5, 6, codec.max_user_tag()))));
}

TEST_P(TagCodecModes, WildcardTagNeverMatchesInternalTraffic) {
  // The property that keeps user any-tag receives from stealing RSRs.
  const auto pat = codec.pattern(5, -1, -1, /*internal=*/false);
  const auto rsr = codec.encode(5, 0, chant::kTagRsr, /*internal=*/true);
  EXPECT_FALSE(matches(pat, header_from(rsr)));
  const auto rep =
      codec.encode(5, 0, chant::rsr_reply_tag(7), /*internal=*/true);
  EXPECT_FALSE(matches(pat, header_from(rep)));
}

TEST_P(TagCodecModes, InternalPatternIgnoresUserTraffic) {
  const auto pat = codec.pattern(0, -1, chant::kTagRsr, /*internal=*/true);
  EXPECT_TRUE(matches(
      pat, header_from(codec.encode(0, 3, chant::kTagRsr, true))));
  // Same numeric tag, but a user message (internal bit clear).
  EXPECT_FALSE(
      matches(pat, header_from(codec.encode(0, 3, chant::kTagRsr, false))));
}

TEST_P(TagCodecModes, DistinctDestinationsNeverCollide) {
  // Exhaustive over a slice of lid space: messages to thread A must
  // never satisfy thread B's pattern, whatever the tags involved.
  for (int a = 0; a < 12; ++a) {
    for (int b = 0; b < 12; ++b) {
      if (a == b) continue;
      const auto pat = codec.pattern(a, -1, -1);
      EXPECT_FALSE(matches(pat, header_from(codec.encode(b, 1, 5))));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, TagCodecModes,
                         ::testing::Values(AddressingMode::TagOverload,
                                           AddressingMode::HeaderField),
                         [](const auto& info) {
                           return info.param == AddressingMode::TagOverload
                                      ? "TagOverload"
                                      : "HeaderField";
                         });

TEST(TagCodecLimits, TagOverloadHalvesTheTagSpace) {
  // The cost the paper calls out: thread ids consume header bits.
  TagCodec overload{AddressingMode::TagOverload};
  TagCodec header{AddressingMode::HeaderField};
  EXPECT_EQ(overload.max_lid(), 0xFF);
  EXPECT_EQ(overload.max_user_tag(), 0x7FFF);
  EXPECT_GT(header.max_lid(), overload.max_lid());
  EXPECT_GT(header.max_user_tag(), overload.max_user_tag());
}

TEST(TagCodecLimits, HeaderFieldLeavesTagFieldClean) {
  TagCodec codec{AddressingMode::HeaderField};
  const auto w = codec.encode(200, 100, 0x12345);
  EXPECT_EQ(w.tag, 0x12345);  // user tag travels unmodified
  EXPECT_NE(w.channel, 0);    // lids ride in the channel
}

TEST_P(TagCodecModes, AllBitsSetBoundaryRoundTrips) {
  // Every field simultaneously at its maximum: the packed header has all
  // usable bits set (in TagOverload the top bit makes the int negative),
  // yet nothing may bleed between fields or into the internal bit.
  TagCodec codec{GetParam()};
  const int lid = codec.max_lid();
  const int tag = codec.max_user_tag();
  for (bool internal : {false, true}) {
    const auto w = codec.encode(lid, lid, tag, internal);
    const auto h = header_from(w);
    EXPECT_EQ(codec.decode_src_lid(h), lid);
    EXPECT_EQ(codec.decode_user_tag(h), tag);
    EXPECT_EQ(codec.is_internal(h), internal);
    EXPECT_TRUE(matches(codec.pattern(lid, lid, tag, internal), h));
    // The complementary internal-bit pattern must not capture it.
    EXPECT_FALSE(matches(codec.pattern(lid, lid, tag, !internal), h));
  }
}

TEST_P(TagCodecModes, MaxLidDoesNotAliasItsNeighbours) {
  TagCodec codec{GetParam()};
  const int lid = codec.max_lid();
  const auto pat = codec.pattern(lid, -1, -1);
  EXPECT_TRUE(matches(pat, header_from(codec.encode(lid, 0, 1))));
  EXPECT_FALSE(matches(pat, header_from(codec.encode(lid - 1, 0, 1))));
  EXPECT_FALSE(matches(pat, header_from(codec.encode(0, 0, 1))));
}

class TagCodecOverflow : public ::testing::TestWithParam<AddressingMode> {};

TEST_P(TagCodecOverflow, RuntimeRejectsOutOfRangeTagsAndLids) {
  // Overflowing values must be rejected at the API boundary, not
  // silently masked into somebody else's matching space.
  chant::World::Config cfg;
  cfg.pes = 1;
  cfg.rt.addressing = GetParam();
  cfg.rt.start_server = false;
  chant::World w(cfg);
  w.run([](chant::Runtime& rt) {
    const int over_tag = rt.codec().max_user_tag() + 1;
    const int over_lid = rt.codec().max_lid() + 1;
    const chant::Gid self = rt.self();
    int v = 0;
    EXPECT_THROW(rt.send(over_tag, &v, sizeof v, self),
                 std::invalid_argument);
    EXPECT_THROW(rt.send(-1, &v, sizeof v, self), std::invalid_argument);
    EXPECT_THROW(
        rt.send(1, &v, sizeof v, chant::Gid{rt.pe(), rt.process(), over_lid}),
        std::invalid_argument);
    EXPECT_THROW(rt.recv(over_tag, &v, sizeof v, chant::kAnyThread),
                 std::invalid_argument);
    EXPECT_THROW(rt.irecv(over_tag, &v, sizeof v, chant::kAnyThread),
                 std::invalid_argument);
    // The maxima themselves are legal: a self round-trip at the exact
    // boundary values must still deliver.
    rt.send(rt.codec().max_user_tag(), &v, sizeof v, self);
    int got = -1;
    rt.recv(rt.codec().max_user_tag(), &got, sizeof got, self);
    EXPECT_EQ(got, 0);
  });
}

INSTANTIATE_TEST_SUITE_P(Modes, TagCodecOverflow,
                         ::testing::Values(AddressingMode::TagOverload,
                                           AddressingMode::HeaderField),
                         [](const auto& info) {
                           return info.param == AddressingMode::TagOverload
                                      ? "TagOverload"
                                      : "HeaderField";
                         });

}  // namespace
