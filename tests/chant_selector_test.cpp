// chant_selector_test.cpp — chant::Selector: multiplexed wait over
// recvs, calls, timers and mailboxes. The core of the suite is an
// oracle: for the same sent traffic, delivery observed through a
// Selector must be observation-equivalent to per-handle msgwait — same
// messages, same per-source FIFO order, same matching-engine counters —
// across every polling policy and addressing mode.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <map>
#include <vector>

#include "chant_test_util.hpp"

namespace {

using chant::Deadline;
using chant::Gid;
using chant::MsgInfo;
using chant::Runtime;
using chant::Selector;
using chant::Status;
using chant::StatusCode;
using chant_test::PolicyCase;

class ChantSelector : public ::testing::TestWithParam<PolicyCase> {};

// ---------------------------------------------------------- basic shape

TEST_P(ChantSelector, EmptySelectorIsInvalid) {
  chant::World w(chant_test::config_for(GetParam(), /*pes=*/1));
  w.run([](Runtime& rt) {
    Selector sel(rt);
    EXPECT_EQ(sel.size(), 0u);
    EXPECT_EQ(sel.wait(nullptr), StatusCode::Invalid);
  });
}

TEST_P(ChantSelector, SingleRecvReportsAndAutoDeregisters) {
  chant::World w(chant_test::config_for(GetParam()));
  w.run([](Runtime& rt) {
    const Gid peer{1 - rt.pe(), 0, chant::kMainLid};
    if (rt.pe() == 1) {
      long v = 4242;
      rt.send(7, &v, sizeof v, peer);
      return;
    }
    long got = 0;
    const int h = rt.irecv(7, &got, sizeof got, peer);
    Selector sel(rt);
    const std::uint64_t tok = sel.add_recv(h);
    std::vector<Selector::Ready> ready;
    ASSERT_EQ(sel.wait(&ready), StatusCode::Ok);
    ASSERT_EQ(ready.size(), 1u);
    EXPECT_EQ(ready[0].kind, Selector::Kind::Recv);
    EXPECT_EQ(ready[0].token, tok);
    EXPECT_EQ(ready[0].handle, h);
    EXPECT_EQ(sel.size(), 0u);  // one-shot: deregistered on report
    // The handle is still an ordinary handle; harvest it normally.
    MsgInfo mi;
    ASSERT_TRUE(rt.msgtest(h, &mi));
    EXPECT_EQ(got, 4242);
    EXPECT_EQ(mi.src.pe, 1);
    EXPECT_EQ(rt.outstanding_recvs(), 0u);
  });
}

TEST_P(ChantSelector, AlreadyCompletedRecvIsReportedImmediately) {
  // Registering "too late" — after the message landed — must not lose
  // the completion: the next wait() reports it without blocking.
  chant::World w(chant_test::config_for(GetParam()));
  w.run([](Runtime& rt) {
    const Gid peer{1 - rt.pe(), 0, chant::kMainLid};
    long v = 1;
    if (rt.pe() == 1) {
      rt.send(8, &v, sizeof v, peer);
      v = 2;
      rt.send(9, &v, sizeof v, peer);
      return;
    }
    long got = 0;
    const int h = rt.irecv(8, &got, sizeof got, peer);
    // Per-source FIFO: once the tag-9 flag (sent second) has been
    // received, the tag-8 message has been delivered into `h`.
    long flag = 0;
    rt.recv(9, &flag, sizeof flag, peer);
    Selector sel(rt);
    sel.add_recv(h);
    std::vector<Selector::Ready> ready;
    ASSERT_EQ(sel.wait(Deadline::after(50'000'000), &ready), StatusCode::Ok);
    ASSERT_EQ(ready.size(), 1u);
    EXPECT_TRUE(rt.msgtest(h, nullptr));
    EXPECT_EQ(got, 1);
  });
}

TEST_P(ChantSelector, TimerFiresAndDeregisters) {
  chant::World w(chant_test::config_for(GetParam(), /*pes=*/1));
  w.run([](Runtime& rt) {
    Selector sel(rt);
    const std::uint64_t tok = sel.add_timer(Deadline::after(2'000'000));
    std::vector<Selector::Ready> ready;
    ASSERT_EQ(sel.wait(&ready), StatusCode::Ok);
    ASSERT_EQ(ready.size(), 1u);
    EXPECT_EQ(ready[0].kind, Selector::Kind::Timer);
    EXPECT_EQ(ready[0].token, tok);
    EXPECT_EQ(sel.size(), 0u);
  });
}

TEST_P(ChantSelector, DeadlineExceededKeepsRegistrationsArmed) {
  chant::World w(chant_test::config_for(GetParam()));
  w.run([](Runtime& rt) {
    const Gid peer{1 - rt.pe(), 0, chant::kMainLid};
    long v = 77;
    if (rt.pe() == 1) {
      long go = 0;
      rt.recv(11, &go, sizeof go, peer);  // wait until the timeout ran
      rt.send(10, &v, sizeof v, peer);
      return;
    }
    long got = 0;
    const int h = rt.irecv(10, &got, sizeof got, peer);
    Selector sel(rt);
    sel.add_recv(h);
    std::vector<Selector::Ready> ready;
    EXPECT_EQ(sel.wait(Deadline::after(1'000'000), &ready),
              StatusCode::DeadlineExceeded);
    EXPECT_TRUE(ready.empty());
    EXPECT_EQ(sel.size(), 1u);  // registration survives the timeout
    long go = 1;
    rt.send(11, &go, sizeof go, peer);
    ASSERT_EQ(sel.wait(&ready), StatusCode::Ok);
    ASSERT_EQ(ready.size(), 1u);
    ASSERT_TRUE(rt.msgtest(h, nullptr));
    EXPECT_EQ(got, 77);
  });
}

TEST_P(ChantSelector, RemoveDeregistersAtomically) {
  chant::World w(chant_test::config_for(GetParam()));
  w.run([](Runtime& rt) {
    const Gid peer{1 - rt.pe(), 0, chant::kMainLid};
    long v = 5;
    if (rt.pe() == 1) {
      rt.send(12, &v, sizeof v, peer);
      return;
    }
    long a = 0;
    long b = 0;
    const int ha = rt.irecv(12, &a, sizeof a, peer);
    const int hb = rt.irecv(13, &b, sizeof b, peer);
    Selector sel(rt);
    const std::uint64_t ta = sel.add_recv(ha);
    const std::uint64_t tb = sel.add_recv(hb);
    EXPECT_EQ(sel.remove(tb), StatusCode::Ok);
    EXPECT_EQ(sel.remove(tb), StatusCode::Invalid);  // idempotent
    EXPECT_EQ(sel.size(), 1u);
    std::vector<Selector::Ready> ready;
    ASSERT_EQ(sel.wait(&ready), StatusCode::Ok);
    ASSERT_EQ(ready.size(), 1u);
    EXPECT_EQ(ready[0].token, ta);
    ASSERT_TRUE(rt.msgtest(ha, nullptr));
    EXPECT_EQ(rt.cancel_irecv(hb), StatusCode::Ok);
    EXPECT_EQ(rt.outstanding_recvs(), 0u);
  });
}

// Satellite regression: cancel_irecv on a handle registered with a live
// Selector must deregister atomically — no dangling waiter entry, no
// report of a withdrawn receive.
TEST_P(ChantSelector, CancelIrecvDropsRegistration) {
  chant::World w(chant_test::config_for(GetParam()));
  w.run([](Runtime& rt) {
    const Gid peer{1 - rt.pe(), 0, chant::kMainLid};
    long v = 3;
    if (rt.pe() == 1) {
      long go = 0;
      rt.recv(15, &go, sizeof go, peer);
      rt.send(14, &v, sizeof v, peer);
      return;
    }
    long a = 0;
    long b = 0;
    const int ha = rt.irecv(14, &a, sizeof a, peer);
    const int hb = rt.irecv(14, &b, sizeof b, peer);
    Selector sel(rt);
    sel.add_recv(ha);
    sel.add_recv(hb);
    EXPECT_EQ(sel.size(), 2u);
    ASSERT_EQ(rt.cancel_irecv(hb), StatusCode::Ok);
    EXPECT_EQ(sel.size(), 1u);  // registration followed the handle out
    long go = 1;
    rt.send(15, &go, sizeof go, peer);
    std::vector<Selector::Ready> ready;
    ASSERT_EQ(sel.wait(&ready), StatusCode::Ok);
    ASSERT_EQ(ready.size(), 1u);
    EXPECT_EQ(ready[0].handle, ha);
    ASSERT_TRUE(rt.msgtest(ha, nullptr));
    EXPECT_EQ(a, 3);
    EXPECT_EQ(rt.outstanding_recvs(), 0u);
  });
}

TEST_P(ChantSelector, DirectMsgtestHarvestDropsRegistration) {
  // The user may harvest a registered handle with plain msgtest; the
  // Selector must notice the retirement instead of keeping a dangling
  // entry (and the Selector must then report Invalid when drained).
  chant::World w(chant_test::config_for(GetParam()));
  w.run([](Runtime& rt) {
    const Gid peer{1 - rt.pe(), 0, chant::kMainLid};
    if (rt.pe() == 1) {
      long v = 6;
      rt.send(16, &v, sizeof v, peer);
      return;
    }
    long got = 0;
    const int h = rt.irecv(16, &got, sizeof got, peer);
    Selector sel(rt);
    sel.add_recv(h);
    while (!rt.msgtest(h, nullptr)) rt.yield();
    EXPECT_EQ(got, 6);
    EXPECT_EQ(sel.size(), 0u);
    EXPECT_EQ(sel.wait(nullptr), StatusCode::Invalid);
  });
}

// ------------------------------------------------------------- async calls

void double_handler(Runtime&, Runtime::RsrContext&, const void* arg,
                    std::size_t len, std::vector<std::uint8_t>& reply) {
  long v = 0;
  if (len >= sizeof v) std::memcpy(&v, arg, sizeof v);
  const long out = v * 2;
  reply.resize(sizeof out);
  std::memcpy(reply.data(), &out, sizeof out);
}

void big_reply_handler(Runtime&, Runtime::RsrContext&, const void* arg,
                       std::size_t len, std::vector<std::uint8_t>& reply) {
  long v = 0;
  if (len >= sizeof v) std::memcpy(&v, arg, sizeof v);
  // Larger than the inline-reply window, so the reply arrives as a
  // header + announced tail — the call's readiness spans two receives.
  reply.assign(48 * 1024, static_cast<std::uint8_t>(v));
}

TEST_P(ChantSelector, AsyncCallReadiness) {
  chant::World w(chant_test::config_for(GetParam()));
  const int dbl = w.register_handler(&double_handler);
  w.run([&](Runtime& rt) {
    if (rt.pe() != 0) return;
    long v = 21;
    const int h = rt.call_async(1, 0, dbl, &v, sizeof v);
    Selector sel(rt);
    const std::uint64_t tok = sel.add_call(h);
    std::vector<Selector::Ready> ready;
    ASSERT_EQ(sel.wait(&ready), StatusCode::Ok);
    ASSERT_EQ(ready.size(), 1u);
    EXPECT_EQ(ready[0].kind, Selector::Kind::Call);
    EXPECT_EQ(ready[0].token, tok);
    EXPECT_EQ(sel.size(), 0u);
    std::vector<std::uint8_t> rep;
    ASSERT_EQ(rt.call_test(h, &rep), StatusCode::Ok);  // ready: no block
    long out = 0;
    std::memcpy(&out, rep.data(), sizeof out);
    EXPECT_EQ(out, 42);
    EXPECT_EQ(rt.outstanding_calls(), 0u);
  });
}

TEST_P(ChantSelector, AsyncCallWithTailReply) {
  chant::World w(chant_test::config_for(GetParam()));
  const int big = w.register_handler(&big_reply_handler);
  w.run([&](Runtime& rt) {
    if (rt.pe() != 0) return;
    long v = 9;
    const int h = rt.call_async(1, 0, big, &v, sizeof v);
    Selector sel(rt);
    sel.add_call(h);
    std::vector<Selector::Ready> ready;
    ASSERT_EQ(sel.wait(&ready), StatusCode::Ok);
    ASSERT_EQ(ready.size(), 1u);
    std::vector<std::uint8_t> rep;
    ASSERT_EQ(rt.call_test(h, &rep), StatusCode::Ok);
    ASSERT_EQ(rep.size(), 48u * 1024u);
    EXPECT_EQ(rep[0], 9);
    EXPECT_EQ(rep.back(), 9);
    EXPECT_EQ(rt.outstanding_calls(), 0u);
  });
}

// --------------------------------------------------------------- mailboxes

TEST_P(ChantSelector, MailboxIsLevelTriggered) {
  chant::World w(chant_test::config_for(GetParam()));
  w.run([](Runtime& rt) {
    const Gid peer{1 - rt.pe(), 0, chant::kMainLid};
    if (rt.pe() == 1) {
      chant::Mailbox<long> mb(rt, 17);
      mb.send(100, peer);
      mb.send(200, peer);
      long ack = 0;
      rt.recv(18, &ack, sizeof ack, peer);
      return;
    }
    chant::Mailbox<long> mb(rt, 17);
    Selector sel(rt);
    const std::uint64_t tok = sel.add_mailbox(mb);
    std::vector<long> got;
    while (got.size() < 2) {
      std::vector<Selector::Ready> ready;
      ASSERT_EQ(sel.wait(&ready), StatusCode::Ok);
      ASSERT_EQ(ready.size(), 1u);
      EXPECT_EQ(ready[0].kind, Selector::Kind::Mailbox);
      EXPECT_EQ(ready[0].token, tok);
      const auto v = mb.try_recv();
      ASSERT_TRUE(v.has_value());  // reported ready ⇒ a message is there
      got.push_back(*v);
      EXPECT_EQ(sel.size(), 1u);  // registration survives the delivery
    }
    EXPECT_EQ(got[0], 100);
    EXPECT_EQ(got[1], 200);
    // Drained: the same registration must now time out, not re-report.
    std::vector<Selector::Ready> ready;
    EXPECT_EQ(sel.wait(Deadline::after(1'000'000), &ready),
              StatusCode::DeadlineExceeded);
    ASSERT_EQ(sel.remove(tok), StatusCode::Ok);
    long ack = 1;
    rt.send(18, &ack, sizeof ack, peer);
  });
}

// ------------------------------------------------------- mixed-source wait

TEST_P(ChantSelector, MixedSourcesOneFiber) {
  chant::World w(chant_test::config_for(GetParam()));
  const int dbl = w.register_handler(&double_handler);
  w.run([&](Runtime& rt) {
    const Gid peer{1 - rt.pe(), 0, chant::kMainLid};
    if (rt.pe() == 1) {
      long v = 31;
      rt.send(19, &v, sizeof v, peer);
      chant::Mailbox<long> mb(rt, 20);
      mb.send(32, peer);
      long ack = 0;
      rt.recv(21, &ack, sizeof ack, peer);
      return;
    }
    long got = 0;
    const int hr = rt.irecv(19, &got, sizeof got, peer);
    long arg = 33;
    const int hc = rt.call_async(1, 0, dbl, &arg, sizeof arg);
    chant::Mailbox<long> mb(rt, 20);
    Selector sel(rt);
    sel.add_recv(hr);
    sel.add_call(hc);
    const std::uint64_t mtok = sel.add_mailbox(mb);
    sel.add_timer(Deadline::after(3'000'000));
    std::map<Selector::Kind, int> seen;
    // Timer + recv + call + mailbox: four distinct readiness events.
    while (seen[Selector::Kind::Recv] == 0 ||
           seen[Selector::Kind::Call] == 0 ||
           seen[Selector::Kind::Mailbox] == 0 ||
           seen[Selector::Kind::Timer] == 0) {
      std::vector<Selector::Ready> ready;
      ASSERT_EQ(sel.wait(&ready), StatusCode::Ok);
      ASSERT_FALSE(ready.empty());
      for (const auto& r : ready) {
        ++seen[r.kind];
        if (r.kind == Selector::Kind::Recv) {
          ASSERT_TRUE(rt.msgtest(hr, nullptr));
          EXPECT_EQ(got, 31);
        } else if (r.kind == Selector::Kind::Call) {
          std::vector<std::uint8_t> rep;
          ASSERT_EQ(rt.call_test(hc, &rep), StatusCode::Ok);
          long out = 0;
          std::memcpy(&out, rep.data(), sizeof out);
          EXPECT_EQ(out, 66);
        } else if (r.kind == Selector::Kind::Mailbox) {
          const auto v = mb.try_recv();
          ASSERT_TRUE(v.has_value());
          EXPECT_EQ(*v, 32);
        }
      }
    }
    EXPECT_EQ(seen[Selector::Kind::Recv], 1);
    EXPECT_EQ(seen[Selector::Kind::Call], 1);
    EXPECT_EQ(seen[Selector::Kind::Timer], 1);
    ASSERT_EQ(sel.remove(mtok), StatusCode::Ok);
    EXPECT_EQ(sel.size(), 0u);
    long ack = 1;
    rt.send(21, &ack, sizeof ack, peer);
    EXPECT_EQ(rt.outstanding_calls(), 0u);
  });
}

// ----------------------------------------------------- oracle equivalence
//
// For the same sent traffic (kStreams tag-streams of kPerStream ordered
// messages from the peer), a receiver multiplexed through one Selector
// must observe exactly what per-handle msgwait observes: every message,
// per-stream FIFO, identical delivered/unexpected-vs-posted counters.

struct StreamObservation {
  std::vector<std::vector<long>> per_stream;
  std::uint64_t delivered = 0;
  std::uint64_t matched = 0;  ///< posted_match + unexpected_{eager,rndv}
};

constexpr int kStreams = 6;
constexpr int kPerStream = 25;

void run_sender(Runtime& rt, const Gid& peer) {
  // Interleave the streams so the receiver's multiplexer sees
  // cross-stream completions in mixed order.
  for (int i = 0; i < kPerStream; ++i) {
    for (int s = 0; s < kStreams; ++s) {
      const long v = static_cast<long>(s) * 1000 + i;
      rt.send(30 + s, &v, sizeof v, peer);
    }
  }
  long ack = 0;
  rt.recv(29, &ack, sizeof ack, peer);
}

StreamObservation observe_with_selector(Runtime& rt, const Gid& peer) {
  StreamObservation obs;
  obs.per_stream.resize(kStreams);
  Selector sel(rt);
  long bufs[kStreams] = {};
  int handles[kStreams];
  std::map<std::uint64_t, int> stream_of;
  for (int s = 0; s < kStreams; ++s) {
    handles[s] = rt.irecv(30 + s, &bufs[s], sizeof(long), peer);
    stream_of[sel.add_recv(handles[s])] = s;
  }
  int total = 0;
  while (total < kStreams * kPerStream) {
    std::vector<Selector::Ready> ready;
    EXPECT_EQ(sel.wait(&ready), StatusCode::Ok);
    for (const auto& r : ready) {
      const int s = stream_of.at(r.token);
      stream_of.erase(r.token);
      MsgInfo mi;
      EXPECT_TRUE(rt.msgtest(handles[s], &mi));
      obs.per_stream[static_cast<std::size_t>(s)].push_back(bufs[s]);
      ++total;
      if (obs.per_stream[static_cast<std::size_t>(s)].size() <
          static_cast<std::size_t>(kPerStream)) {
        handles[s] = rt.irecv(30 + s, &bufs[s], sizeof(long), peer);
        stream_of[sel.add_recv(handles[s])] = s;
      }
    }
  }
  const auto& c = rt.net_counters();
  obs.delivered = c.delivered.load();
  obs.matched = c.posted_match.load() + c.unexpected_eager.load() +
                c.unexpected_rndv.load();
  long ack = 1;
  rt.send(29, &ack, sizeof ack, peer);
  return obs;
}

StreamObservation observe_with_msgwait(Runtime& rt, const Gid& peer) {
  StreamObservation obs;
  obs.per_stream.resize(kStreams);
  long bufs[kStreams] = {};
  int handles[kStreams];
  for (int s = 0; s < kStreams; ++s) {
    handles[s] = rt.irecv(30 + s, &bufs[s], sizeof(long), peer);
  }
  // Round-robin per-handle msgwait: the baseline the paper's algorithms
  // use when no testany-style multiplexer exists.
  for (int i = 0; i < kPerStream; ++i) {
    for (int s = 0; s < kStreams; ++s) {
      rt.msgwait(handles[s]);
      obs.per_stream[static_cast<std::size_t>(s)].push_back(bufs[s]);
      if (i + 1 < kPerStream) {
        handles[s] = rt.irecv(30 + s, &bufs[s], sizeof(long), peer);
      }
    }
  }
  const auto& c = rt.net_counters();
  obs.delivered = c.delivered.load();
  obs.matched = c.posted_match.load() + c.unexpected_eager.load() +
                c.unexpected_rndv.load();
  long ack = 1;
  rt.send(29, &ack, sizeof ack, peer);
  return obs;
}

void check_fifo(const StreamObservation& obs) {
  for (int s = 0; s < kStreams; ++s) {
    const auto& seq = obs.per_stream[static_cast<std::size_t>(s)];
    ASSERT_EQ(seq.size(), static_cast<std::size_t>(kPerStream));
    for (int i = 0; i < kPerStream; ++i) {
      EXPECT_EQ(seq[static_cast<std::size_t>(i)],
                static_cast<long>(s) * 1000 + i)
          << "stream " << s << " position " << i;
    }
  }
}

TEST_P(ChantSelector, OracleEquivalentToPerHandleMsgwait) {
  // Run 1: Selector-multiplexed receiver.
  StreamObservation via_selector;
  {
    chant::World w(chant_test::config_for(GetParam()));
    w.run([&](Runtime& rt) {
      const Gid peer{1 - rt.pe(), 0, chant::kMainLid};
      if (rt.pe() == 1) {
        run_sender(rt, peer);
      } else {
        via_selector = observe_with_selector(rt, peer);
      }
    });
  }
  // Run 2: identical traffic, per-handle msgwait receiver (the oracle).
  StreamObservation via_msgwait;
  {
    chant::World w(chant_test::config_for(GetParam()));
    w.run([&](Runtime& rt) {
      const Gid peer{1 - rt.pe(), 0, chant::kMainLid};
      if (rt.pe() == 1) {
        run_sender(rt, peer);
      } else {
        via_msgwait = observe_with_msgwait(rt, peer);
      }
    });
  }
  check_fifo(via_selector);
  check_fifo(via_msgwait);
  EXPECT_EQ(via_selector.per_stream, via_msgwait.per_stream);
  // Matching-engine behaviour is unchanged by HOW completion was
  // observed: same deliveries. (Posted-vs-unexpected split is timing-
  // dependent, but their sum is every matched message either way.)
  EXPECT_EQ(via_selector.delivered, via_msgwait.delivered);
  EXPECT_EQ(via_selector.matched, via_msgwait.matched);
}

// --------------------------------------------------------------- M:N stress

TEST_P(ChantSelector, MnStressSelectorUnderWorkers) {
  // Many concurrent sender fibers (spread across scheduler workers when
  // CHANT_WORKERS/workers > 1) complete receives whose fires must cross
  // OS threads into one parked Selector without lost or spurious
  // wakeups. wq_use_testany pins workers to 1 by design — the case
  // still runs, single-worker.
  PolicyCase pc = GetParam();
  auto cfg = chant_test::config_for(pc, /*pes=*/1);
  cfg.rt.workers = 4;
  constexpr int kSenders = 8;
  constexpr int kMsgs = 50;
  chant::World w(cfg);
  w.run([](Runtime& rt) {
    struct Ctx {
      Runtime* rt;
      Gid main;
      int id;
    };
    static Ctx ctxs[kSenders];
    std::vector<Gid> senders;
    for (int i = 0; i < kSenders; ++i) {
      ctxs[i] = Ctx{&rt, rt.self(), i};
      senders.push_back(rt.create(
          [](void* p) -> void* {
            auto* c = static_cast<Ctx*>(p);
            for (int m = 0; m < kMsgs; ++m) {
              const long v = static_cast<long>(c->id) * 10000 + m;
              c->rt->send(40 + c->id, &v, sizeof v, c->main);
              if ((m & 7) == 0) c->rt->yield();
            }
            return nullptr;
          },
          &ctxs[i], PTHREAD_CHANTER_LOCAL, PTHREAD_CHANTER_LOCAL));
    }
    Selector sel(rt);
    long bufs[kSenders] = {};
    int handles[kSenders];
    std::map<std::uint64_t, int> sender_of;
    int received[kSenders] = {};
    for (int i = 0; i < kSenders; ++i) {
      handles[i] = rt.irecv(40 + i, &bufs[i], sizeof(long), senders[i]);
      sender_of[sel.add_recv(handles[i])] = i;
    }
    int total = 0;
    while (total < kSenders * kMsgs) {
      std::vector<Selector::Ready> ready;
      ASSERT_EQ(sel.wait(&ready), StatusCode::Ok);
      ASSERT_FALSE(ready.empty());
      for (const auto& r : ready) {
        const int i = sender_of.at(r.token);
        sender_of.erase(r.token);
        ASSERT_TRUE(rt.msgtest(handles[i], nullptr));
        // Per-sender FIFO even with fires racing across workers.
        ASSERT_EQ(bufs[i], static_cast<long>(i) * 10000 + received[i]);
        ++received[i];
        ++total;
        if (received[i] < kMsgs) {
          handles[i] = rt.irecv(40 + i, &bufs[i], sizeof(long), senders[i]);
          sender_of[sel.add_recv(handles[i])] = i;
        }
      }
    }
    for (const Gid& g : senders) rt.join(g);
    EXPECT_EQ(rt.outstanding_recvs(), 0u);
  });
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, ChantSelector,
                         ::testing::ValuesIn(chant_test::all_cases()),
                         [](const auto& info) {
                           return chant_test::case_name(info.param);
                         });

}  // namespace
