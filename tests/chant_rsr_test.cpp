// chant_rsr_test.cpp — remote service requests: handler dispatch,
// request/reply matching, one-way posts, big replies, deferred replies,
// concurrent clients — across all policies.
#include <gtest/gtest.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <numeric>
#include <vector>

#include "chant_test_util.hpp"

namespace {

using chant::Gid;
using chant::Runtime;
using chant_test::PolicyCase;

// Handlers are plain functions (SPMD): they communicate with the test
// through these per-OS-thread (per simulated process) variables.
thread_local long t_accumulator = 0;

void echo_handler(Runtime&, Runtime::RsrContext&, const void* arg,
                  std::size_t len, std::vector<std::uint8_t>& reply) {
  reply.assign(static_cast<const std::uint8_t*>(arg),
               static_cast<const std::uint8_t*>(arg) + len);
}

void add_handler(Runtime&, Runtime::RsrContext&, const void* arg,
                 std::size_t len, std::vector<std::uint8_t>&) {
  long v = 0;
  if (len >= sizeof v) std::memcpy(&v, arg, sizeof v);
  t_accumulator += v;
}

void big_reply_handler(Runtime&, Runtime::RsrContext&, const void* arg,
                       std::size_t len, std::vector<std::uint8_t>& reply) {
  std::uint32_t n = 0;
  if (len >= sizeof n) std::memcpy(&n, arg, sizeof n);
  reply.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    reply[i] = static_cast<std::uint8_t>(i * 7);
  }
}

void who_asked_handler(Runtime&, Runtime::RsrContext& ctx, const void*,
                       std::size_t, std::vector<std::uint8_t>& reply) {
  reply.resize(sizeof(Gid));
  std::memcpy(reply.data(), &ctx.from, sizeof(Gid));
}

void deferred_handler(Runtime& rt, Runtime::RsrContext& ctx, const void* arg,
                      std::size_t len, std::vector<std::uint8_t>&) {
  // Hand the reply off to a helper fiber that does "slow" work first —
  // the pattern remote join uses (paper §3.3).
  long v = 0;
  if (len >= sizeof v) std::memcpy(&v, arg, sizeof v);
  ctx.deferred = true;
  const Runtime::RsrContext saved = ctx;
  lwt::ThreadAttr attr;
  attr.detached = true;
  lwt::go([&rt, saved, v] {
    for (int i = 0; i < 10; ++i) rt.yield();
    const long out = v * v;
    rt.reply(saved, &out, sizeof out);
  });
}

class ChantRsr : public ::testing::TestWithParam<PolicyCase> {};

TEST_P(ChantRsr, EchoRoundTrip) {
  chant::World w(chant_test::config_for(GetParam()));
  const int echo = w.register_handler(&echo_handler);
  w.run([&](Runtime& rt) {
    if (rt.pe() != 0) return;
    const char msg[] = "remote service request";
    const auto rep = rt.call(1, 0, echo, msg, sizeof msg);
    ASSERT_EQ(rep.size(), sizeof msg);
    EXPECT_STREQ(reinterpret_cast<const char*>(rep.data()), msg);
  });
}

TEST_P(ChantRsr, EmptyRequestAndReply) {
  chant::World w(chant_test::config_for(GetParam()));
  const int echo = w.register_handler(&echo_handler);
  w.run([&](Runtime& rt) {
    if (rt.pe() != 0) return;
    const auto rep = rt.call(1, 0, echo, nullptr, 0);
    EXPECT_TRUE(rep.empty());
  });
}

TEST_P(ChantRsr, PostIsOneWayAndOrdered) {
  chant::World w(chant_test::config_for(GetParam()));
  const int add = w.register_handler(&add_handler);
  const int echo = w.register_handler(&echo_handler);
  w.run([&](Runtime& rt) {
    t_accumulator = 0;
    if (rt.pe() == 0) {
      for (long i = 1; i <= 10; ++i) {
        rt.post(1, 0, add, &i, sizeof i);
      }
      // A call after the posts flushes them (same-source FIFO), so the
      // accumulator on pe 1 must be complete once the echo returns.
      char ping = 'p';
      (void)rt.call(1, 0, echo, &ping, 1);
      long sum = -1;
      rt.recv(60, &sum, sizeof sum, chant::kAnyThread);
      EXPECT_EQ(sum, 55);
    } else {
      // Wait until the accumulator reaches 55, then report it to pe 0.
      while (t_accumulator < 55) rt.yield();
      rt.send(60, &t_accumulator, sizeof t_accumulator,
              Gid{0, 0, chant::kMainLid});
    }
  });
}

TEST_P(ChantRsr, BigReplyTakesTailPath) {
  chant::World w(chant_test::config_for(GetParam()));
  const int big = w.register_handler(&big_reply_handler);
  w.run([&](Runtime& rt) {
    if (rt.pe() != 0) return;
    const std::uint32_t n = 8000;  // far above the inline-reply limit
    const auto rep = rt.call(1, 0, big, &n, sizeof n);
    ASSERT_EQ(rep.size(), n);
    for (std::uint32_t i = 0; i < n; i += 997) {
      EXPECT_EQ(rep[i], static_cast<std::uint8_t>(i * 7));
    }
  });
}

TEST_P(ChantRsr, HandlerSeesRequesterIdentity) {
  chant::World w(chant_test::config_for(GetParam()));
  const int who = w.register_handler(&who_asked_handler);
  w.run([&](Runtime& rt) {
    if (rt.pe() != 0) return;
    const auto rep = rt.call(1, 0, who, nullptr, 0);
    ASSERT_EQ(rep.size(), sizeof(Gid));
    Gid from;
    std::memcpy(&from, rep.data(), sizeof from);
    EXPECT_EQ(from, rt.self());
  });
}

TEST_P(ChantRsr, DeferredReplyArrives) {
  chant::World w(chant_test::config_for(GetParam()));
  const int def = w.register_handler(&deferred_handler);
  w.run([&](Runtime& rt) {
    if (rt.pe() != 0) return;
    long v = 12;
    const auto rep = rt.call(1, 0, def, &v, sizeof v);
    ASSERT_EQ(rep.size(), sizeof(long));
    long out = 0;
    std::memcpy(&out, rep.data(), sizeof out);
    EXPECT_EQ(out, 144);
  });
}

TEST_P(ChantRsr, ConcurrentClientsGetTheirOwnReplies) {
  chant::World w(chant_test::config_for(GetParam()));
  const int echo = w.register_handler(&echo_handler);
  w.run([&](Runtime& rt) {
    if (rt.pe() != 0) return;
    struct Ctx {
      Runtime* rt;
      int echo;
      long value;
    };
    std::vector<Ctx> ctxs;
    for (long i = 0; i < 6; ++i) ctxs.push_back(Ctx{&rt, echo, i * 31});
    std::vector<Gid> gids;
    for (auto& c : ctxs) {
      gids.push_back(rt.create(
          [](void* p) -> void* {
            auto* c2 = static_cast<Ctx*>(p);
            const auto rep =
                c2->rt->call(1, 0, c2->echo, &c2->value, sizeof c2->value);
            long back = -1;
            std::memcpy(&back, rep.data(), sizeof back);
            EXPECT_EQ(back, c2->value);
            return nullptr;
          },
          &c, PTHREAD_CHANTER_LOCAL, PTHREAD_CHANTER_LOCAL));
    }
    for (const Gid& g : gids) rt.join(g);
  });
}

TEST_P(ChantRsr, LocalCallsWorkToo) {
  // RSR to one's own server thread: useful for symmetry in SPMD code.
  chant::World w(chant_test::config_for(GetParam(), /*pes=*/1));
  const int echo = w.register_handler(&echo_handler);
  w.run([&](Runtime& rt) {
    long v = 777;
    const auto rep = rt.call(rt.pe(), rt.process(), echo, &v, sizeof v);
    long out = 0;
    std::memcpy(&out, rep.data(), sizeof out);
    EXPECT_EQ(out, 777);
  });
}

TEST_P(ChantRsr, UnknownHandlerReturnsError) {
  chant::World w(chant_test::config_for(GetParam()));
  w.run([&](Runtime& rt) {
    if (rt.pe() != 0) return;
    const auto rep = rt.call(1, 0, /*handler=*/200, nullptr, 0);
    ASSERT_EQ(rep.size(), sizeof(std::int32_t));
    std::int32_t status = 0;
    std::memcpy(&status, rep.data(), sizeof status);
    EXPECT_EQ(status, EINVAL);
  });
}

TEST_P(ChantRsr, OversizedPayloadIsRejectedLocally) {
  chant::World w(chant_test::config_for(GetParam()));
  w.run([&](Runtime& rt) {
    if (rt.pe() != 0) return;
    std::vector<std::uint8_t> huge(rt.config().rsr_buffer_size + 1);
    EXPECT_THROW(rt.call(1, 0, 0, huge.data(), huge.size()),
                 std::invalid_argument);
  });
}

TEST_P(ChantRsr, ServerStaysLiveUnderReadyQueueSaturation) {
  // Liveness of the Fig. 7 server thread: on every polling policy the
  // server must keep serving remote requests while the pe's ready queue
  // is saturated with runnable computation threads. Under TP the server
  // polls at normal priority (a fair rotation must reach it); under
  // WQ/PS it is parked at kServerPriority and must preempt the hogs the
  // moment a request lands.
  chant::World w(chant_test::config_for(GetParam()));
  const int echo = w.register_handler(&echo_handler);
  w.run([&](Runtime& rt) {
    struct Ctx {
      Runtime* rt;
      std::atomic<bool>* stop;
    };
    std::atomic<bool> stop{false};
    Ctx c{&rt, &stop};
    std::vector<Gid> hogs;
    for (int t = 0; t < 6; ++t) {
      hogs.push_back(rt.create(
          [](void* p) -> void* {
            auto* c2 = static_cast<Ctx*>(p);
            while (!c2->stop->load(std::memory_order_relaxed)) {
              c2->rt->yield();
            }
            return nullptr;
          },
          &c, PTHREAD_CHANTER_LOCAL, PTHREAD_CHANTER_LOCAL));
    }
    for (long v = 0; v < 32; ++v) {
      const auto rep = rt.call(1 - rt.pe(), 0, echo, &v, sizeof v);
      ASSERT_EQ(rep.size(), sizeof v);
      long back = -1;
      std::memcpy(&back, rep.data(), sizeof back);
      ASSERT_EQ(back, v);
    }
    stop.store(true, std::memory_order_relaxed);
    for (const Gid& g : hogs) rt.join(g);
  });
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, ChantRsr,
                         ::testing::ValuesIn(chant_test::all_cases()),
                         [](const auto& info) {
                           return chant_test::case_name(info.param);
                         });

}  // namespace
