// sim_selftest.cpp — the harness's own guarantees: trace round-trip,
// bit-identical replay from seed + decision trace, and prefix shrinking.
// If these fail, no sim-suite failure banner can be trusted.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "chant/chant.hpp"
#include "sim/explore.hpp"

namespace {

using chant::Gid;
using chant::Runtime;

TEST(SimSelfTest, TraceTextRoundTrips) {
  sim::DecisionTrace t;
  t.choices = {0, 2, 1, 0, 7, 3};
  EXPECT_EQ(t.encode(), "0,2,1,0,7,3");
  const sim::DecisionTrace back = sim::DecisionTrace::parse(t.encode());
  EXPECT_EQ(back.choices, t.choices);
  EXPECT_TRUE(sim::DecisionTrace::parse("").choices.empty());
}

/// A 1-process workload whose visible outcome is a pure function of the
/// schedule: four same-priority threads each append their index to a
/// shared log at every step. Returns the execution fingerprint.
std::string fingerprint_run(sim::Session& s) {
  chant::World::Config cfg;
  cfg.pes = 1;
  cfg.rt.start_server = false;
  s.apply(cfg);
  std::string log;
  chant::World w(cfg);
  w.run([&](Runtime& rt) {
    struct Ctx {
      Runtime* rt;
      std::string* log;
      char id;
    };
    std::vector<Ctx> ctxs;
    for (int i = 0; i < 4; ++i) {
      ctxs.push_back(Ctx{&rt, &log, static_cast<char>('A' + i)});
    }
    std::vector<Gid> gids;
    for (auto& c : ctxs) {
      gids.push_back(rt.create(
          [](void* p) -> void* {
            auto* c2 = static_cast<Ctx*>(p);
            for (int step = 0; step < 8; ++step) {
              c2->log->push_back(c2->id);
              c2->rt->yield();
            }
            return nullptr;
          },
          &c, rt.pe(), rt.process()));
    }
    for (const Gid& g : gids) rt.join(g);
  });
  return log;
}

TEST(SimSelfTest, SeedReplaysBitIdentically) {
  // Same seed twice => same schedule decisions => same fingerprint.
  sim::Options opt;
  opt.seeds = 1;
  opt.base_seed = 12345;
  sim::Session a(opt, 12345);
  const std::string fp_a = fingerprint_run(a);
  sim::Session b(opt, 12345);
  const std::string fp_b = fingerprint_run(b);
  EXPECT_EQ(fp_a, fp_b);
  EXPECT_EQ(a.trace_text(), b.trace_text());
  EXPECT_GT(a.decisions(), 0u) << "workload exposed no decision points";

  // A different seed must be able to produce a different interleaving
  // (otherwise the controller is not actually steering anything).
  bool diverged = false;
  for (std::uint64_t seed = 1; seed <= 16 && !diverged; ++seed) {
    sim::Session c(opt, seed);
    diverged = fingerprint_run(c) != fp_a;
  }
  EXPECT_TRUE(diverged);
}

TEST(SimSelfTest, TraceReplaysBitIdentically) {
  sim::Options opt;
  sim::Session rec(opt, 777);
  const std::string fp = fingerprint_run(rec);
  const std::string trace = rec.trace_text();

  // Replay from the *trace alone* (the decision sequence is the
  // schedule; the seed only matters for body-level rng, unused here).
  sim::Session rep(opt, 777);
  rep.replay(trace);
  EXPECT_EQ(fingerprint_run(rep), fp);
  // The replayed controller re-records what it replays.
  EXPECT_EQ(rep.trace_text(), trace);
}

TEST(SimSelfTest, ExploreFindsAndShrinksFailingSchedule) {
  // The property "thread A logs first" holds under production order but
  // not under every rotation — explore must find a failing seed, shrink
  // its trace, and the shrunken trace must still reproduce the failure.
  sim::Options opt;
  opt.seeds = 64;
  opt.base_seed = 1;
  opt.report = false;  // probe: do not fail *this* test
  auto body = [](sim::Session& s) {
    const std::string fp = fingerprint_run(s);
    ASSERT_FALSE(fp.empty());
    EXPECT_EQ(fp[0], 'A') << "schedule rotated a later thread to the front";
  };
  const sim::Result res = sim::explore(opt, body);
  ASSERT_TRUE(res.failed) << "no seed in 64 rotated the first pick";
  EXPECT_FALSE(res.trace.empty());
  EXPECT_FALSE(res.first_message.empty());
  ASSERT_FALSE(res.shrunk.empty()) << "shrinker could not minimize";
  const std::size_t full = sim::DecisionTrace::parse(res.trace).choices.size();
  const std::size_t small =
      sim::DecisionTrace::parse(res.shrunk).choices.size();
  EXPECT_LE(small, full);
  // This property needs exactly one bad early decision; the minimized
  // prefix should be tiny compared to the hundreds of decisions a full
  // run records.
  EXPECT_LE(small, 4u);

  // And the shrunken trace, replayed directly, still fails.
  sim::Session rep(opt, res.seed);
  rep.replay(res.shrunk);
  const std::string fp = fingerprint_run(rep);
  ASSERT_FALSE(fp.empty());
  EXPECT_NE(fp[0], 'A');
}

TEST(SimSelfTest, PassingSweepReportsCleanResult) {
  sim::Options opt;
  opt.seeds = 8;
  const sim::Result res = sim::explore(opt, [](sim::Session& s) {
    const std::string fp = fingerprint_run(s);
    EXPECT_EQ(fp.size(), 32u);  // 4 threads x 8 steps, schedule-invariant
  });
  EXPECT_FALSE(res.failed);
  EXPECT_EQ(res.iterations, 8u);
}

}  // namespace
