// sim_rsr_test.cpp — schedule exploration of the RSR server thread
// (paper §3.2, Fig. 7). Across explored interleavings the server must
// (a) dispatch every request exactly once, (b) run handlers at
// kServerPriority when server_high_priority is set (and at normal
// priority when it is not), and (c) stay live while computation
// threads saturate the ready queue and the wire delays its traffic.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "chant/chant.hpp"
#include "sim/explore.hpp"

namespace {

using chant::Gid;
using chant::PollPolicy;
using chant::Runtime;

// Handlers are plain functions (SPMD); they talk to the test through
// this per-OS-thread (per simulated process) slot. 1-pe worlds only.
thread_local int t_seen_priority = -1;

void probe_handler(Runtime&, Runtime::RsrContext&, const void* arg,
                   std::size_t len, std::vector<std::uint8_t>& reply) {
  t_seen_priority = lwt::Scheduler::self()->priority;
  reply.assign(static_cast<const std::uint8_t*>(arg),
               static_cast<const std::uint8_t*>(arg) + len);
}

void deferred_square_handler(Runtime& rt, Runtime::RsrContext& ctx,
                             const void* arg, std::size_t len,
                             std::vector<std::uint8_t>&) {
  long v = 0;
  if (len >= sizeof v) std::memcpy(&v, arg, sizeof v);
  ctx.deferred = true;
  const Runtime::RsrContext saved = ctx;
  lwt::go([&rt, saved, v] {
    for (int i = 0; i < 6; ++i) rt.yield();
    const long out = v * v;
    rt.reply(saved, &out, sizeof out);
  });
}

struct ObserverCtx {
  int handler = -1;  ///< only count dispatches of this handler
  int count = 0;
};

void counting_observer(void* p, int handler, int, int) {
  auto* o = static_cast<ObserverCtx*>(p);
  if (handler == o->handler) ++o->count;
}

class SimRsr : public ::testing::TestWithParam<PollPolicy> {};

TEST_P(SimRsr, HandlersRunBoostedAndExactlyOncePerRequest) {
  sim::Options opt;
  opt.seeds = 256;
  opt.base_seed = 0x4547;  // "RSR"
  opt.faults.delay_p = 0.4;
  opt.faults.max_delay_ns = 20'000;
  const PollPolicy policy = GetParam();
  const sim::Result res = sim::explore(opt, [&](sim::Session& s) {
    chant::World::Config cfg;
    cfg.pes = 1;
    cfg.rt.policy = policy;
    cfg.rt.server_high_priority = true;
    s.apply(cfg);
    ObserverCtx obs;
    cfg.rt.rsr_observer = &counting_observer;
    cfg.rt.rsr_observer_ctx = &obs;
    chant::World w(cfg);
    const int probe = w.register_handler(&probe_handler);
    obs.handler = probe;
    w.run([&](Runtime& rt) {
      t_seen_priority = -1;
      struct Ctx {
        Runtime* rt;
      };
      Ctx c{&rt};
      std::vector<Gid> hogs;
      for (int t = 0; t < 3; ++t) {
        hogs.push_back(rt.create(
            [](void* p) -> void* {
              Runtime& r = *static_cast<Ctx*>(p)->rt;
              for (int i = 0; i < 300; ++i) r.yield();
              return nullptr;
            },
            &c, rt.pe(), rt.process()));
      }
      for (long v = 0; v < 4; ++v) {
        const auto rep = rt.call(rt.pe(), rt.process(), probe, &v, sizeof v);
        ASSERT_EQ(rep.size(), sizeof v);
        long back = -1;
        std::memcpy(&back, rep.data(), sizeof back);
        EXPECT_EQ(back, v);
        EXPECT_EQ(t_seen_priority, lwt::kServerPriority)
            << "handler ran without the paper's priority boost";
      }
      for (const Gid& g : hogs) rt.join(g);
    });
    EXPECT_EQ(obs.count, 4) << "requests lost or double-dispatched";
  });
  EXPECT_FALSE(res.failed);
  EXPECT_EQ(res.iterations, 256u);
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, SimRsr,
    ::testing::Values(PollPolicy::ThreadPolls, PollPolicy::SchedulerPollsWQ,
                      PollPolicy::SchedulerPollsPS),
    [](const auto& info) {
      switch (info.param) {
        case PollPolicy::ThreadPolls: return "TP";
        case PollPolicy::SchedulerPollsWQ: return "WQ";
        case PollPolicy::SchedulerPollsPS: return "PS";
      }
      return "?";
    });

TEST(SimRsrDeferred, HelperFiberRepliesSurviveExploration) {
  // The remote-join pattern: the handler defers, a helper fiber does
  // scheduled work, the reply pairs by sequence number — under every
  // explored rotation of server, helper and caller.
  sim::Options opt;
  opt.seeds = 128;
  opt.base_seed = 0xDEF4;
  opt.faults.delay_p = 0.3;
  const sim::Result res = sim::explore(opt, [](sim::Session& s) {
    chant::World::Config cfg;
    cfg.pes = 1;
    cfg.rt.policy = PollPolicy::SchedulerPollsWQ;
    s.apply(cfg);
    chant::World w(cfg);
    const int def = w.register_handler(&deferred_square_handler);
    w.run([&](Runtime& rt) {
      const long a = 9, b = 11;
      const int h1 = rt.call_async(rt.pe(), rt.process(), def, &a, sizeof a);
      const int h2 = rt.call_async(rt.pe(), rt.process(), def, &b, sizeof b);
      // Wait in reverse issue order: replies must pair by sequence.
      long out2 = 0, out1 = 0;
      auto r2 = rt.call_wait(h2);
      ASSERT_EQ(r2.size(), sizeof out2);
      std::memcpy(&out2, r2.data(), sizeof out2);
      auto r1 = rt.call_wait(h1);
      ASSERT_EQ(r1.size(), sizeof out1);
      std::memcpy(&out1, r1.data(), sizeof out1);
      EXPECT_EQ(out1, 81);
      EXPECT_EQ(out2, 121);
    });
  });
  EXPECT_FALSE(res.failed);
  EXPECT_EQ(res.iterations, 128u);
}

TEST(SimRsrAblation, UnboostedServerRunsHandlersAtNormalPriority) {
  // server_high_priority=false is the bench ablation: requests are still
  // served (liveness does not depend on the boost) but handlers observe
  // default priority.
  sim::Options opt;
  opt.seeds = 128;
  opt.base_seed = 0xAB1A;
  const sim::Result res = sim::explore(opt, [](sim::Session& s) {
    chant::World::Config cfg;
    cfg.pes = 1;
    cfg.rt.policy = PollPolicy::SchedulerPollsPS;
    cfg.rt.server_high_priority = false;
    s.apply(cfg);
    chant::World w(cfg);
    const int probe = w.register_handler(&probe_handler);
    w.run([&](Runtime& rt) {
      t_seen_priority = -1;
      long v = 5;
      const auto rep = rt.call(rt.pe(), rt.process(), probe, &v, sizeof v);
      ASSERT_EQ(rep.size(), sizeof v);
      EXPECT_EQ(t_seen_priority, lwt::kDefaultPriority);
    });
  });
  EXPECT_FALSE(res.failed);
  EXPECT_EQ(res.iterations, 128u);
}

}  // namespace
