// nx_property_test.cpp — randomized property tests of the message layer:
// no loss, no duplication, no corruption, per-source FIFO — across eager
// thresholds (protocol mix) and machine shapes.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <mutex>
#include <random>
#include <thread>
#include <vector>

#include "nx/machine.hpp"

namespace {

std::uint64_t fnv1a(const std::uint8_t* p, std::size_t n) {
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

struct Wire {
  int seq;
  std::uint64_t checksum;
  // payload follows
};

/// (eager_threshold, pes, transport-spec) sweep: small thresholds force
/// rendezvous, large ones make everything eager, and every delivery
/// backend must satisfy every property identically (the conservation
/// and FIFO oracles are the cross-backend contract).
class NxDelivery : public ::testing::TestWithParam<
                       std::tuple<std::size_t, int, const char*>> {
 protected:
  static nx::Machine::Config cfg(std::size_t eager, int pes,
                                 const char* spec) {
    nx::Machine::Config c{pes, 1, nx::NetModel::zero(), eager};
    c.transport_spec = nx::TransportSpec::parse(spec);
    return c;
  }
};

TEST_P(NxDelivery, AllToAllNoLossNoCorruption) {
  const auto [eager, pes, kind] = GetParam();
  constexpr int kPerPair = 40;
  nx::Machine m{cfg(eager, pes, kind)};
  const int npes = pes;
  m.run([&](nx::Endpoint& ep) {
    std::mt19937 rng(static_cast<unsigned>(ep.pe()) * 7919u + 13u);
    std::uniform_int_distribution<int> size_dist(0, 3000);
    // Pre-post one receive per expected message, wildcard source.
    struct Pending {
      std::vector<std::uint8_t> buf;
      nx::Handle h;
      int src = -1;
      int seq = -1;
    };
    const int expect = (npes - 1) * kPerPair;
    std::vector<Pending> pend(static_cast<std::size_t>(expect));
    for (auto& p : pend) {
      p.buf.resize(sizeof(Wire) + 3000);
      p.h = ep.irecv(nx::kAnyPe, nx::kAnyProc, 77, nx::kTagExact,
                     p.buf.data(), p.buf.size());
    }
    // Blast random-size messages at every other PE.
    std::vector<std::vector<std::uint8_t>> outbufs;
    std::vector<nx::Handle> sends;
    for (int dst = 0; dst < npes; ++dst) {
      if (dst == ep.pe()) continue;
      for (int i = 0; i < kPerPair; ++i) {
        const int psize = size_dist(rng);
        std::vector<std::uint8_t> msg(sizeof(Wire) +
                                      static_cast<std::size_t>(psize));
        for (int b = 0; b < psize; ++b) {
          msg[sizeof(Wire) + static_cast<std::size_t>(b)] =
              static_cast<std::uint8_t>(rng() & 0xFF);
        }
        Wire w{i, fnv1a(msg.data() + sizeof(Wire),
                        static_cast<std::size_t>(psize))};
        std::memcpy(msg.data(), &w, sizeof w);
        sends.push_back(ep.isend(dst, 0, 77, msg.data(), msg.size()));
        outbufs.push_back(std::move(msg));  // keep alive for rendezvous
      }
    }
    // Drain all receives, recording which (source, seq) landed in each
    // posted slot. (Completion *discovery* order is timing-dependent —
    // a later receive can complete while an earlier one is being tested
    // — so ordering is asserted on the final pairing below, not here.)
    int done = 0;
    while (done < expect) {
      for (auto& p : pend) {
        if (p.h == nx::kInvalidHandle) continue;
        nx::MsgHeader out;
        if (!ep.msgtest(p.h, &out)) continue;
        p.h = nx::kInvalidHandle;
        ++done;
        ASSERT_FALSE(out.truncated);
        Wire w;
        std::memcpy(&w, p.buf.data(), sizeof w);
        EXPECT_EQ(w.checksum,
                  fnv1a(p.buf.data() + sizeof(Wire), out.len - sizeof(Wire)));
        p.src = out.src_pe;
        p.seq = w.seq;
      }
    }
    // Per-source FIFO + posted-order matching: walking the receives in
    // posted order, each source's sequence numbers must ascend 0,1,2,...
    std::vector<int> next_seq(static_cast<std::size_t>(npes), 0);
    for (const auto& p : pend) {
      ASSERT_GE(p.src, 0);
      auto& ns = next_seq[static_cast<std::size_t>(p.src)];
      EXPECT_EQ(p.seq, ns) << "source " << p.src;
      ns = p.seq + 1;
    }
    // Complete all sends (rendezvous ones finish once peers copied).
    for (nx::Handle h : sends) ep.msgwait(h);
    EXPECT_EQ(ep.counters().delivered.load(), static_cast<unsigned>(expect));
  });
}

/// Completion *fires* run on whichever OS thread drove the completing
/// progress call — often a remote sender's — so the observation record
/// needs its own lock.
struct FireLog {
  std::mutex mu;
  std::vector<std::uint64_t> tokens;
};

void record_fire(void* ctx, std::uint64_t token) {
  auto* log = static_cast<FireLog*>(ctx);
  std::lock_guard<std::mutex> g(log->mu);
  log->tokens.push_back(token);
}

TEST_P(NxDelivery, WaiterHookObservationPreservesFifoAndCounters) {
  // Same all-to-all blast as above, but completion is *discovered*
  // through the registered-waiter hooks (set_recv_waiter +
  // poll_progress/flush_waiter_fires) instead of a msgtest polling
  // loop. Observation style must be invisible to the message layer:
  // per-source FIFO pairing holds unchanged, every receive fires
  // exactly once, and the matching-engine counters account for every
  // delivery through exactly one match class.
  const auto [eager, pes, kind] = GetParam();
  constexpr int kPerPair = 40;
  nx::Machine m{cfg(eager, pes, kind)};
  const int npes = pes;
  m.run([&](nx::Endpoint& ep) {
    std::mt19937 rng(static_cast<unsigned>(ep.pe()) * 6271u + 29u);
    std::uniform_int_distribution<int> size_dist(0, 3000);
    struct Pending {
      std::vector<std::uint8_t> buf;
      nx::Handle h;
      int src = -1;
      int seq = -1;
    };
    const int expect = (npes - 1) * kPerPair;
    std::vector<Pending> pend(static_cast<std::size_t>(expect));
    FireLog log;
    std::size_t observed = 0;  // fires seen + already-complete at arm time
    for (std::size_t i = 0; i < pend.size(); ++i) {
      auto& p = pend[i];
      p.buf.resize(sizeof(Wire) + 3000);
      p.h = ep.irecv(nx::kAnyPe, nx::kAnyProc, 78, nx::kTagExact,
                     p.buf.data(), p.buf.size());
      if (!ep.set_recv_waiter(p.h, &record_fire, &log, i)) ++observed;
    }
    std::vector<std::vector<std::uint8_t>> outbufs;
    std::vector<nx::Handle> sends;
    for (int dst = 0; dst < npes; ++dst) {
      if (dst == ep.pe()) continue;
      for (int i = 0; i < kPerPair; ++i) {
        const int psize = size_dist(rng);
        std::vector<std::uint8_t> msg(sizeof(Wire) +
                                      static_cast<std::size_t>(psize));
        for (int b = 0; b < psize; ++b) {
          msg[sizeof(Wire) + static_cast<std::size_t>(b)] =
              static_cast<std::uint8_t>(rng() & 0xFF);
        }
        Wire w{i, fnv1a(msg.data() + sizeof(Wire),
                        static_cast<std::size_t>(psize))};
        std::memcpy(msg.data(), &w, sizeof w);
        sends.push_back(ep.isend(dst, 0, 78, msg.data(), msg.size()));
        outbufs.push_back(std::move(msg));
      }
    }
    // Wait to be *told* about completions — no msgtest until a handle's
    // fire (or its already-complete arm result) says it is ready.
    // poll_progress drives the same deliver-at drain msgtest would, so
    // rendezvous traffic still makes progress while we only listen.
    while (true) {
      if (ep.poll_progress()) ep.flush_waiter_fires();
      std::size_t fired;
      {
        std::lock_guard<std::mutex> g(log.mu);
        fired = log.tokens.size();
      }
      if (observed + fired >= static_cast<std::size_t>(expect)) break;
      std::this_thread::yield();
    }
    // Every fire names a distinct live handle, and a fired handle is
    // *ready*: its msgtest must succeed on the first try.
    {
      std::lock_guard<std::mutex> g(log.mu);
      ASSERT_EQ(observed + log.tokens.size(),
                static_cast<std::size_t>(expect));
    }
    const unsigned tests_before = ep.counters().msgtest_calls.load();
    const unsigned failed_before = ep.counters().msgtest_failed.load();
    for (auto& p : pend) {
      nx::MsgHeader out;
      ASSERT_TRUE(ep.msgtest(p.h, &out));
      ASSERT_FALSE(out.truncated);
      Wire w;
      std::memcpy(&w, p.buf.data(), sizeof w);
      EXPECT_EQ(w.checksum,
                fnv1a(p.buf.data() + sizeof(Wire), out.len - sizeof(Wire)));
      p.src = out.src_pe;
      p.seq = w.seq;
    }
    // FIFO pairing is identical to the polling-observed variant above.
    std::vector<int> next_seq(static_cast<std::size_t>(npes), 0);
    for (const auto& p : pend) {
      ASSERT_GE(p.src, 0);
      auto& ns = next_seq[static_cast<std::size_t>(p.src)];
      EXPECT_EQ(p.seq, ns) << "source " << p.src;
      ns = p.seq + 1;
    }
    // Hooks make discovery O(ready): the harvest above spent exactly one
    // successful msgtest per receive — no failed polls anywhere.
    EXPECT_EQ(ep.counters().msgtest_calls.load() - tests_before,
              static_cast<unsigned>(expect));
    EXPECT_EQ(ep.counters().msgtest_failed.load(), failed_before);
    for (nx::Handle h : sends) ep.msgwait(h);
    // Counter accounting is observation-independent: every delivery is
    // classified by exactly one path — assembled from the sender's
    // fragments (posted_match) or copied out of the unexpected heap
    // queue (unexpected_eager). unexpected_rndv tracks RTS queuing
    // events and overlaps posted_match, so it is not part of the sum.
    const auto& c = ep.counters();
    EXPECT_EQ(c.delivered.load(), static_cast<unsigned>(expect));
    EXPECT_EQ(c.posted_match.load() + c.unexpected_eager.load(),
              static_cast<unsigned>(expect));
  });
}

INSTANTIATE_TEST_SUITE_P(
    ProtocolMix, NxDelivery,
    ::testing::Combine(::testing::Values(std::size_t{0}, std::size_t{512},
                                         std::size_t{1} << 16),
                       ::testing::Values(2, 4),
                       ::testing::Values("inproc", "shmring",
                                         "tcp://127.0.0.1:0")),
    [](const auto& info) {
      return "eager" + std::to_string(std::get<0>(info.param)) + "_pes" +
             std::to_string(std::get<1>(info.param)) + "_" +
             nx::to_string(
                 nx::TransportSpec::parse(std::get<2>(info.param)).kind);
    });

TEST(NxDeliveryLatency, PropertyHoldsUnderNetworkDelay) {
  // Same no-loss/ordering property with a nonzero latency model: the
  // deliver-at gating must not lose or reorder per-source traffic.
  nx::NetModel model{5.0, 0.01};
  nx::Machine m{nx::Machine::Config{2, 1, model, 256}};
  m.run([&](nx::Endpoint& ep) {
    const int peer = 1 - ep.pe();
    constexpr int kMsgs = 60;
    std::vector<std::vector<std::uint8_t>> keep;
    std::vector<nx::Handle> sends;
    for (int i = 0; i < kMsgs; ++i) {
      std::vector<std::uint8_t> msg(static_cast<std::size_t>(1 + (i * 37) % 900),
                                    static_cast<std::uint8_t>(i));
      Wire w{i, fnv1a(msg.data(), msg.size())};
      std::vector<std::uint8_t> framed(sizeof w + msg.size());
      std::memcpy(framed.data(), &w, sizeof w);
      std::memcpy(framed.data() + sizeof w, msg.data(), msg.size());
      sends.push_back(ep.isend(peer, 0, 5, framed.data(), framed.size()));
      keep.push_back(std::move(framed));
    }
    std::vector<std::uint8_t> buf(4096);
    for (int i = 0; i < kMsgs; ++i) {
      const nx::MsgHeader h =
          ep.crecv(peer, 0, 5, nx::kTagExact, buf.data(), buf.size());
      Wire w;
      std::memcpy(&w, buf.data(), sizeof w);
      EXPECT_EQ(w.seq, i);  // strict per-source order
      EXPECT_EQ(w.checksum, fnv1a(buf.data() + sizeof w, h.len - sizeof w));
    }
    for (nx::Handle h : sends) ep.msgwait(h);
  });
}

}  // namespace
