// chant_p2p_test.cpp — point-to-point messaging between global threads:
// addressing, wildcards, nonblocking receives, payload integrity —
// swept over every polling policy and addressing mode.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <string>
#include <vector>

#include "chant_test_util.hpp"

namespace {

using chant::Gid;
using chant::MsgInfo;
using chant::Runtime;
using chant_test::PolicyCase;

class ChantP2p : public ::testing::TestWithParam<PolicyCase> {};

TEST_P(ChantP2p, MainToMainAcrossPes) {
  chant::World w(chant_test::config_for(GetParam()));
  w.run([](Runtime& rt) {
    const Gid peer{1 - rt.pe(), 0, chant::kMainLid};
    char buf[64];
    if (rt.pe() == 0) {
      const char msg[] = "ping";
      rt.send(1, msg, sizeof msg, peer);
      const MsgInfo mi = rt.recv(2, buf, sizeof buf, peer);
      EXPECT_STREQ(buf, "pong");
      EXPECT_EQ(mi.src.thread, chant::kMainLid);
      EXPECT_EQ(mi.src.pe, 1);
    } else {
      const MsgInfo mi = rt.recv(1, buf, sizeof buf, peer);
      EXPECT_STREQ(buf, "ping");
      EXPECT_EQ(mi.user_tag, 1);
      const char msg[] = "pong";
      rt.send(2, msg, sizeof msg, peer);
    }
  });
}

TEST_P(ChantP2p, ThreadsWithinOneProcessTalk) {
  chant::World w(chant_test::config_for(GetParam(), /*pes=*/1));
  w.run([](Runtime& rt) {
    struct Ctx {
      Runtime* rt;
      Gid main;
    } ctx{&rt, rt.self()};
    const Gid child = rt.create(
        [](void* p) -> void* {
          auto* c = static_cast<Ctx*>(p);
          long v = 0;
          c->rt->recv(3, &v, sizeof v, c->main);
          v *= 2;
          c->rt->send(4, &v, sizeof v, c->main);
          return nullptr;
        },
        &ctx, PTHREAD_CHANTER_LOCAL, PTHREAD_CHANTER_LOCAL);
    long v = 21;
    rt.send(3, &v, sizeof v, child);
    long back = 0;
    rt.recv(4, &back, sizeof back, child);
    EXPECT_EQ(back, 42);
    rt.join(child);
  });
}

TEST_P(ChantP2p, MessagesRouteToTheRightThread) {
  // Two threads on pe 1 with distinct lids; messages addressed per-thread
  // must not cross even though they share tag, pe, and process.
  chant::World w(chant_test::config_for(GetParam()));
  w.run([](Runtime& rt) {
    if (rt.pe() != 0) return;
    auto entry = [](void* p) -> void* {
      Runtime& r = *Runtime::current();
      long got = 0;
      r.recv(5, &got, sizeof got, chant::kAnyThread);
      return reinterpret_cast<void*>(got);
    };
    const Gid a = rt.create(entry, nullptr, 1, 0);
    const Gid b = rt.create(entry, nullptr, 1, 0);
    ASSERT_NE(a.thread, b.thread);
    long va = 111;
    long vb = 222;
    rt.send(5, &vb, sizeof vb, b);  // deliberately b first
    rt.send(5, &va, sizeof va, a);
    EXPECT_EQ(rt.join(a), reinterpret_cast<void*>(111));
    EXPECT_EQ(rt.join(b), reinterpret_cast<void*>(222));
  });
}

TEST_P(ChantP2p, WildcardSourceReportsActualSender) {
  chant::World w(chant_test::config_for(GetParam()));
  w.run([](Runtime& rt) {
    const Gid main0{0, 0, chant::kMainLid};
    if (rt.pe() == 0) {
      int hello = 0;
      const MsgInfo mi = rt.recv(6, &hello, sizeof hello, chant::kAnyThread);
      EXPECT_EQ(mi.src.pe, 1);
      EXPECT_EQ(mi.src.thread, chant::kMainLid);
      EXPECT_EQ(hello, 99);
    } else {
      int hello = 99;
      rt.send(6, &hello, sizeof hello, main0);
    }
  });
}

TEST_P(ChantP2p, WildcardTagReportsActualTag) {
  chant::World w(chant_test::config_for(GetParam()));
  w.run([](Runtime& rt) {
    const Gid peer{1 - rt.pe(), 0, chant::kMainLid};
    if (rt.pe() == 0) {
      char c = 0;
      const MsgInfo mi = rt.recv(chant::kAnyUserTag, &c, 1, peer);
      EXPECT_EQ(mi.user_tag, 321);
      EXPECT_EQ(c, 'w');
    } else {
      char c = 'w';
      rt.send(321, &c, 1, peer);
    }
  });
}

TEST_P(ChantP2p, LargePayloadIntegrity) {
  chant::World w(chant_test::config_for(GetParam()));
  w.run([](Runtime& rt) {
    constexpr std::size_t kBig = 300 * 1024;  // beyond eager: rendezvous
    const Gid peer{1 - rt.pe(), 0, chant::kMainLid};
    if (rt.pe() == 0) {
      std::vector<std::uint8_t> data(kBig);
      std::iota(data.begin(), data.end(), 0);
      rt.send(7, data.data(), data.size(), peer);
    } else {
      std::vector<std::uint8_t> data(kBig, 0);
      const MsgInfo mi = rt.recv(7, data.data(), data.size(), peer);
      EXPECT_EQ(mi.len, kBig);
      bool ok = true;
      for (std::size_t i = 0; i < kBig; ++i) {
        if (data[i] != static_cast<std::uint8_t>(i)) {
          ok = false;
          break;
        }
      }
      EXPECT_TRUE(ok);
    }
  });
}

TEST_P(ChantP2p, NonblockingRecvLifecycle) {
  chant::World w(chant_test::config_for(GetParam()));
  w.run([](Runtime& rt) {
    const Gid peer{1 - rt.pe(), 0, chant::kMainLid};
    if (rt.pe() == 0) {
      long v = 0;
      const int h = rt.irecv(8, &v, sizeof v, peer);
      // Tell the peer we are ready, then wait on the handle.
      char go = 'g';
      rt.send(9, &go, 1, peer);
      const MsgInfo mi = rt.msgwait(h);
      EXPECT_EQ(v, 1234);
      EXPECT_EQ(mi.user_tag, 8);
    } else {
      char go = 0;
      rt.recv(9, &go, 1, peer);
      long v = 1234;
      rt.send(8, &v, sizeof v, peer);
    }
  });
}

TEST_P(ChantP2p, MsgtestPollsWithoutBlocking) {
  chant::World w(chant_test::config_for(GetParam(), /*pes=*/1));
  w.run([](Runtime& rt) {
    struct Ctx {
      Runtime* rt;
      Gid main;
    } ctx{&rt, rt.self()};
    const Gid child = rt.create(
        [](void* p) -> void* {
          auto* c = static_cast<Ctx*>(p);
          for (int i = 0; i < 20; ++i) c->rt->yield();
          long v = 7;
          c->rt->send(10, &v, sizeof v, c->main);
          return nullptr;
        },
        &ctx, PTHREAD_CHANTER_LOCAL, PTHREAD_CHANTER_LOCAL);
    long v = 0;
    const int h = rt.irecv(10, &v, sizeof v, child);
    int polls = 0;
    MsgInfo mi;
    while (!rt.msgtest(h, &mi)) {
      ++polls;
      rt.yield();
    }
    EXPECT_EQ(v, 7);
    EXPECT_GT(polls, 0);
    rt.join(child);
  });
}

TEST_P(ChantP2p, ManyOutstandingIrecvsCompleteIndependently) {
  chant::World w(chant_test::config_for(GetParam()));
  w.run([](Runtime& rt) {
    constexpr int kN = 16;
    const Gid peer{1 - rt.pe(), 0, chant::kMainLid};
    if (rt.pe() == 0) {
      long vals[kN] = {};
      int hs[kN];
      for (int i = 0; i < kN; ++i) {
        hs[i] = rt.irecv(100 + i, &vals[i], sizeof(long), peer);
      }
      char go = 'g';
      rt.send(9, &go, 1, peer);
      // Complete in reverse order of posting.
      for (int i = kN - 1; i >= 0; --i) {
        rt.msgwait(hs[i]);
        EXPECT_EQ(vals[i], i * 11);
      }
    } else {
      char go = 0;
      rt.recv(9, &go, 1, peer);
      for (int i = 0; i < kN; ++i) {
        long v = i * 11;
        rt.send(100 + i, &v, sizeof v, peer);
      }
    }
  });
}

TEST_P(ChantP2p, TruncationReported) {
  chant::World w(chant_test::config_for(GetParam()));
  w.run([](Runtime& rt) {
    const Gid peer{1 - rt.pe(), 0, chant::kMainLid};
    if (rt.pe() == 0) {
      char big[64];
      std::memset(big, 'T', sizeof big);
      rt.send(11, big, sizeof big, peer);
    } else {
      char small[8];
      const MsgInfo mi = rt.recv(11, small, sizeof small, peer);
      EXPECT_EQ(mi.status.code(), chant::StatusCode::Truncated);
      EXPECT_EQ(mi.len, 64u);
      EXPECT_EQ(small[7], 'T');
    }
  });
}

TEST_P(ChantP2p, ZeroByteMessageDelivers) {
  chant::World w(chant_test::config_for(GetParam()));
  w.run([](Runtime& rt) {
    const Gid peer{1 - rt.pe(), 0, chant::kMainLid};
    if (rt.pe() == 0) {
      rt.send(12, nullptr, 0, peer);
    } else {
      const MsgInfo mi = rt.recv(12, nullptr, 0, peer);
      EXPECT_EQ(mi.len, 0u);
      EXPECT_TRUE(mi.status.ok());
    }
  });
}

TEST_P(ChantP2p, TagRangeIsValidated) {
  chant::World w(chant_test::config_for(GetParam(), /*pes=*/1));
  w.run([](Runtime& rt) {
    const Gid self = rt.self();
    char c = 'x';
    EXPECT_THROW(rt.send(-1, &c, 1, self), std::invalid_argument);
    EXPECT_THROW(
        rt.send(rt.codec().max_user_tag() + 1, &c, 1, self),
        std::invalid_argument);
    EXPECT_THROW(rt.recv(rt.codec().max_user_tag() + 1, &c, 1, self),
                 std::invalid_argument);
    EXPECT_THROW(rt.irecv(-2, &c, 1, self), std::invalid_argument);
    EXPECT_THROW(rt.send(1, &c, 1, chant::kAnyThread), std::invalid_argument);
  });
}

TEST_P(ChantP2p, StaleHandleIsRejected) {
  chant::World w(chant_test::config_for(GetParam(), /*pes=*/1));
  w.run([](Runtime& rt) {
    const Gid self = rt.self();
    char c = 'z';
    rt.send(13, &c, 1, self);
    char buf;
    const int h = rt.irecv(13, &buf, 1, self);
    ASSERT_TRUE(rt.msgtest(h));
    EXPECT_THROW((void)rt.msgtest(h), std::invalid_argument);
    EXPECT_THROW((void)rt.msgwait(h), std::invalid_argument);
  });
}

TEST_P(ChantP2p, SelfSendWithinThread) {
  // A thread may message itself (useful for deferred self-notification).
  chant::World w(chant_test::config_for(GetParam(), /*pes=*/1));
  w.run([](Runtime& rt) {
    long v = 5150;
    rt.send(14, &v, sizeof v, rt.self());
    long got = 0;
    rt.recv(14, &got, sizeof got, rt.self());
    EXPECT_EQ(got, 5150);
  });
}

// Swept over every policy/addressing case pinned to each transport
// backend — p2p semantics are part of the cross-backend contract.
INSTANTIATE_TEST_SUITE_P(AllPolicies, ChantP2p,
                         ::testing::ValuesIn(chant_test::transport_cases()),
                         [](const auto& info) {
                           return chant_test::case_name(info.param);
                         });

}  // namespace
