// sim_hb_test.cpp — the happens-before checker under schedule
// exploration (DESIGN.md §14).
//
// Three known-bad fixtures prove each detector catches its bug class
// and that a violation fails the explored iteration (feeding the
// seed/trace repro machinery), and known-good sweeps prove the checker
// stays silent across >1000 explored interleavings of representative
// correct workloads — races, deadlocks and lost wakeups must be found,
// never invented.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <vector>

#include "chant/chant.hpp"
#include "chant/hb.hpp"
#include "sim/explore.hpp"

namespace {

using chant::Gid;
using chant::PollPolicy;
using chant::Runtime;

// Fixtures inspect violation_count() directly; a silent sink keeps the
// expected reports out of the gtest log (the default stderr sink and
// its CHANT_SIM_SEED repro line are covered by sim_hb_report below).
void silent_sink(const chant::hb::Report&) {}

/// RAII: checker on (with a quiet sink) for one test, off after.
struct HbSession {
  HbSession() {
    chant::hb::enable();
    chant::hb::set_sink(&silent_sink);
    chant::hb::reset();
  }
  ~HbSession() {
    chant::hb::set_sink(nullptr);
    chant::hb::disable();
  }
};

// ------------------------------------------------------ known bad: race

struct RaceCtx {
  Runtime* rt;
  long* counter;
};

void* racing_increment(void* p) {
  auto& c = *static_cast<RaceCtx*>(p);
  for (int i = 0; i < 3; ++i) {
    chant::hb::on_read(c.counter, sizeof *c.counter, "racy counter load");
    const long v = *c.counter;
    c.rt->yield();  // widen the read-modify-write window
    chant::hb::on_write(c.counter, sizeof *c.counter, "racy counter store");
    *c.counter = v + 1;
    c.rt->yield();
  }
  return nullptr;
}

TEST(SimHbRace, UnsynchronizedCounterIsReportedAndFailsTheIteration) {
  HbSession hb;
  sim::Options opt;
  opt.seeds = 32;
  opt.base_seed = 0x4ACE;
  opt.report = false;  // the body's failure is this test's success
  const sim::Result res = sim::explore(opt, [](sim::Session& s) {
    chant::hb::reset();
    chant::World::Config cfg;
    cfg.pes = 1;
    cfg.rt.policy = PollPolicy::SchedulerPollsWQ;
    cfg.rt.start_server = false;
    s.apply(cfg);
    chant::World w(cfg);
    w.run([](Runtime& rt) {
      long counter = 0;
      chant::hb::track(&counter, sizeof counter, "shared counter");
      RaceCtx c{&rt, &counter};
      const Gid a = rt.create(&racing_increment, &c, rt.pe(), rt.process());
      const Gid b = rt.create(&racing_increment, &c, rt.pe(), rt.process());
      rt.join(a);
      rt.join(b);
      chant::hb::untrack(&counter);
    });
    EXPECT_EQ(chant::hb::violation_count(), 0u);
  });
  EXPECT_TRUE(res.failed) << "two unsynchronized writers never raced";
  EXPECT_GT(chant::hb::violation_count(chant::hb::Violation::kDataRace), 0u);
}

TEST(SimHbRace, MutexProtectedCounterIsSilent) {
  // The same access pattern with the increment under a Mutex: every
  // interleaving must be race-free (lock edges order the accesses).
  HbSession hb;
  sim::Options opt;
  opt.seeds = 64;
  opt.base_seed = 0x5AFE;
  const sim::Result res = sim::explore(opt, [](sim::Session& s) {
    chant::hb::reset();
    chant::World::Config cfg;
    cfg.pes = 1;
    cfg.rt.policy = PollPolicy::SchedulerPollsWQ;
    cfg.rt.start_server = false;
    s.apply(cfg);
    chant::World w(cfg);
    w.run([](Runtime& rt) {
      long counter = 0;
      lwt::Mutex mu;
      chant::hb::track(&counter, sizeof counter, "guarded counter");
      struct Ctx {
        Runtime* rt;
        long* counter;
        lwt::Mutex* mu;
      } c{&rt, &counter, &mu};
      auto worker = [](void* p) -> void* {
        auto& cc = *static_cast<Ctx*>(p);
        for (int i = 0; i < 3; ++i) {
          cc.mu->lock();
          chant::hb::on_write(cc.counter, sizeof *cc.counter, "guarded store");
          ++*cc.counter;
          cc.mu->unlock();
          cc.rt->yield();
        }
        return nullptr;
      };
      const Gid a = rt.create(worker, &c, rt.pe(), rt.process());
      const Gid b = rt.create(worker, &c, rt.pe(), rt.process());
      rt.join(a);
      rt.join(b);
      EXPECT_EQ(counter, 6);
      chant::hb::untrack(&counter);
    });
    EXPECT_EQ(chant::hb::violation_count(), 0u);
  });
  EXPECT_FALSE(res.failed) << res.first_message;
  EXPECT_EQ(res.iterations, 64u);
}

// -------------------------------------------------- known bad: deadlock

// Each process's main locks its local mutex, then RSR-calls a handler
// on the *other* process; the handler tries to take that process's
// local mutex. Wait-for cycle (deterministic, every interleaving):
//   main0 →(call) server1 →(lock M1) main1 →(call) server0
//     →(lock M0) main0
thread_local lwt::Mutex* t_local_mu = nullptr;

void lock_local_handler(Runtime&, Runtime::RsrContext&, const void*,
                        std::size_t, std::vector<std::uint8_t>& reply) {
  t_local_mu->lock();
  t_local_mu->unlock();
  reply.assign(1, 1);
}

TEST(SimHbDeadlock, CrossPeLockCycleOverRsrIsDiagnosed) {
  HbSession hb;
  sim::Options opt;
  opt.seeds = 8;
  opt.base_seed = 0xDEAD;
  opt.report = false;
  const sim::Result res = sim::explore(opt, [](sim::Session& s) {
    chant::hb::reset();
    chant::World::Config cfg;
    cfg.pes = 2;
    cfg.rt.policy = PollPolicy::SchedulerPollsWQ;
    s.apply(cfg);
    chant::World w(cfg);
    const int h = w.register_handler(&lock_local_handler);
    w.run([&](Runtime& rt) {
      lwt::Mutex mu;
      t_local_mu = &mu;
      mu.lock();
      const int other = 1 - rt.pe();
      std::uint8_t ping = 0;
      // Deadlocks every time; the checker's recovery cancels the cycle,
      // which surfaces here as CancelInterrupt (swallowed by the chant
      // main trampoline) — the call never returns normally.
      (void)rt.call(other, 0, h, &ping, sizeof ping);
      ADD_FAILURE() << "cyclic call returned";
    });
    EXPECT_EQ(chant::hb::violation_count(chant::hb::Violation::kDeadlock),
              0u);
  });
  EXPECT_TRUE(res.failed) << "cross-PE lock cycle went undiagnosed";
  EXPECT_GT(chant::hb::violation_count(chant::hb::Violation::kDeadlock), 0u);
}

// ----------------------------------------------- known bad: lost wakeup

struct SignalCtx {
  lwt::CondVar* cv;
};

void* early_signaler(void* p) {
  // BUG (deliberate): signals without any predicate handshake. When
  // this runs before the main fiber reaches cv.wait, the signal is
  // lost and main blocks forever.
  static_cast<SignalCtx*>(p)->cv->signal();
  return nullptr;
}

TEST(SimHbLostWakeup, UnconditionalCondVarWaitIsCaughtInSomeInterleaving) {
  HbSession hb;
  sim::Options opt;
  opt.seeds = 64;
  opt.base_seed = 0x105F;
  opt.report = false;
  const sim::Result res = sim::explore(opt, [](sim::Session& s) {
    chant::hb::reset();
    chant::World::Config cfg;
    cfg.pes = 1;
    cfg.rt.policy = PollPolicy::SchedulerPollsWQ;
    cfg.rt.start_server = false;
    s.apply(cfg);
    chant::World w(cfg);
    w.run([](Runtime& rt) {
      lwt::Mutex mu;
      lwt::CondVar cv;
      SignalCtx c{&cv};
      const Gid sig = rt.create(&early_signaler, &c, rt.pe(), rt.process());
      // A scheduling point between spawn and wait: the explored orders
      // where the signaler runs first are exactly the lost wakeups.
      rt.yield();
      mu.lock();
      cv.wait(mu);  // BUG: no predicate loop — the wakeup can be lost
      mu.unlock();
      rt.join(sig);
    });
    EXPECT_EQ(chant::hb::violation_count(chant::hb::Violation::kLostWakeup),
              0u);
  });
  EXPECT_TRUE(res.failed)
      << "no explored interleaving lost the unconditional signal";
  EXPECT_GT(chant::hb::violation_count(chant::hb::Violation::kLostWakeup),
            0u);
}

// ------------------------------------- known good: zero false positives

// PR 2-style workload: p2p ping-pong with payload verification, plus a
// timed receive that legitimately expires (timed waits must never be
// classified as stuck).
void known_good_p2p_body(sim::Session& s, PollPolicy policy) {
  chant::hb::reset();
  chant::World::Config cfg;
  cfg.pes = 2;
  cfg.rt.policy = policy;
  s.apply(cfg);
  chant::World w(cfg);
  w.run([](Runtime& rt) {
    const int other = 1 - rt.pe();
    const Gid peer{other, 0, chant::kMainLid};
    long v = 100 + rt.pe();
    if (rt.pe() == 0) {
      rt.send(7, &v, sizeof v, peer);
      long back = 0;
      rt.recv(7, &back, sizeof back, peer);
      EXPECT_EQ(back, 101);
    } else {
      long got = 0;
      rt.recv(7, &got, sizeof got, peer);
      EXPECT_EQ(got, 100);
      rt.send(7, &v, sizeof v, peer);
    }
    // A receive nothing will ever match: must time out quietly, not
    // trip the lost-wakeup detector.
    long nothing = 0;
    chant::MsgInfo mi;
    const chant::Status st =
        rt.recv(9, &nothing, sizeof nothing, chant::kAnyThread,
                chant::Deadline::after(50'000), &mi);
    EXPECT_EQ(st.code(), chant::StatusCode::DeadlineExceeded);
  });
  EXPECT_EQ(chant::hb::violation_count(), 0u);
}

// PR 3/4-style workload: RSR calls concurrent with lock/condvar
// handoffs and fiber join — every HB edge source in one world.
void known_good_rsr_sync_body(sim::Session& s) {
  chant::hb::reset();
  chant::World::Config cfg;
  cfg.pes = 2;
  cfg.rt.policy = PollPolicy::SchedulerPollsWQ;
  s.apply(cfg);
  chant::World w(cfg);
  const int echo = w.register_handler(
      [](Runtime&, Runtime::RsrContext&, const void* arg, std::size_t len,
         std::vector<std::uint8_t>& reply) {
        reply.assign(static_cast<const std::uint8_t*>(arg),
                     static_cast<const std::uint8_t*>(arg) + len);
      });
  w.run([&](Runtime& rt) {
    // Proper condvar handshake between main and a worker fiber.
    struct Handoff {
      Runtime* rt;
      lwt::Mutex mu;
      lwt::CondVar cv;
      bool ready = false;
      long cell = 0;
    } ho;
    ho.rt = &rt;
    chant::hb::track(&ho.cell, sizeof ho.cell, "handoff cell");
    auto producer = [](void* p) -> void* {
      auto& h = *static_cast<Handoff*>(p);
      h.rt->yield();
      h.mu.lock();
      chant::hb::on_write(&h.cell, sizeof h.cell, "producer store");
      h.cell = 42;
      h.ready = true;
      h.cv.signal();
      h.mu.unlock();
      return nullptr;
    };
    const Gid prod = rt.create(producer, &ho, rt.pe(), rt.process());
    const int other = 1 - rt.pe();
    long q = 7 * (rt.pe() + 1);
    const auto rep = rt.call(other, 0, echo, &q, sizeof q);
    ASSERT_EQ(rep.size(), sizeof q);
    ho.mu.lock();
    while (!ho.ready) ho.cv.wait(ho.mu);
    chant::hb::on_read(&ho.cell, sizeof ho.cell, "consumer load");
    EXPECT_EQ(ho.cell, 42);
    ho.mu.unlock();
    rt.join(prod);
    chant::hb::untrack(&ho.cell);
  });
  EXPECT_EQ(chant::hb::violation_count(), 0u);
}

TEST(SimHbKnownGood, ExploredCorrectWorkloadsStaySilent) {
  // ≥1000 explored interleavings in total across representative
  // policies and workloads; one violation anywhere fails the sweep.
  HbSession hb;
  std::size_t total = 0;

  for (const PollPolicy policy :
       {PollPolicy::ThreadPolls, PollPolicy::SchedulerPollsWQ,
        PollPolicy::SchedulerPollsPS}) {
    sim::Options opt;
    opt.seeds = 200;
    opt.base_seed = 0x600D + static_cast<int>(policy);
    const sim::Result res = sim::explore(
        opt, [&](sim::Session& s) { known_good_p2p_body(s, policy); });
    EXPECT_FALSE(res.failed) << res.first_message;
    total += res.iterations;
  }

  sim::Options opt;
  opt.seeds = 300;
  opt.base_seed = 0x600E;
  opt.faults.delay_p = 0.3;
  opt.faults.max_delay_ns = 20'000;
  const sim::Result res = sim::explore(opt, &known_good_rsr_sync_body);
  EXPECT_FALSE(res.failed) << res.first_message;
  total += res.iterations;

  sim::Options opt2;
  opt2.seeds = 200;
  opt2.base_seed = 0x600F;
  const sim::Result res2 = sim::explore(opt2, &known_good_rsr_sync_body);
  EXPECT_FALSE(res2.failed) << res2.first_message;
  total += res2.iterations;

  EXPECT_GE(total, 1000u);
  EXPECT_EQ(chant::hb::violation_count(), 0u);
}

// ------------------------------------------------- report plumbing

TEST(SimHbReport, DefaultSinkPrintsKindAndSeedRepro) {
  // One deterministic race through the *default* sink: the report names
  // the region and the CHANT_SIM_SEED repro hint appears when the env
  // var is set (as under a failing explore iteration's replay).
  chant::hb::enable();
  chant::hb::reset();
  ASSERT_EQ(setenv("CHANT_SIM_SEED", "12345", 1), 0);
  ::testing::internal::CaptureStderr();
  chant::World::Config cfg;
  cfg.pes = 1;
  cfg.rt.start_server = false;
  chant::World w(cfg);
  w.run([](Runtime& rt) {
    long cell = 0;
    chant::hb::track(&cell, sizeof cell, "report cell");
    RaceCtx c{&rt, &cell};
    const Gid a = rt.create(&racing_increment, &c, rt.pe(), rt.process());
    const Gid b = rt.create(&racing_increment, &c, rt.pe(), rt.process());
    rt.join(a);
    rt.join(b);
    chant::hb::untrack(&cell);
  });
  const std::string err = ::testing::internal::GetCapturedStderr();
  unsetenv("CHANT_SIM_SEED");
  chant::hb::disable();
  EXPECT_NE(err.find("DATA RACE"), std::string::npos) << err;
  EXPECT_NE(err.find("report cell"), std::string::npos) << err;
  EXPECT_NE(err.find("CHANT_SIM_SEED=12345"), std::string::npos) << err;
}

}  // namespace
