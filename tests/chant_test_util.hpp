// chant_test_util.hpp — shared helpers for policy/addressing-swept tests.
//
// Most Chant semantics must be invariant under the polling policy and
// the addressing mode, so whole suites run TEST_P over PolicyCase: the
// three paper policies, the msgtestany WQ ablation, and both header
// encodings — every functional test doubles as an equivalence property.
#pragma once

#include <string>
#include <tuple>
#include <vector>

#include "chant/chant.hpp"

namespace chant_test {

struct PolicyCase {
  chant::PollPolicy policy;
  bool wq_testany;
  chant::AddressingMode addressing;
  /// Delivery backend; Default keeps the environment's choice (so the
  /// plain policy sweep honours CHANT_TRANSPORT in CI jobs).
  nx::TransportKind transport = nx::TransportKind::Default;
};

inline std::string case_name(const PolicyCase& c) {
  std::string s;
  switch (c.policy) {
    case chant::PollPolicy::ThreadPolls: s = "TP"; break;
    case chant::PollPolicy::SchedulerPollsWQ:
      s = c.wq_testany ? "WQta" : "WQ";
      break;
    case chant::PollPolicy::SchedulerPollsPS: s = "PS"; break;
  }
  s += c.addressing == chant::AddressingMode::TagOverload ? "_tag" : "_hdr";
  switch (c.transport) {
    case nx::TransportKind::Default: break;
    case nx::TransportKind::InProc: s += "_inp"; break;
    case nx::TransportKind::ShmRing: s += "_shm"; break;
    case nx::TransportKind::Tcp: s += "_tcp"; break;
  }
  return s;
}

inline chant::World::Config config_for(const PolicyCase& c, int pes = 2) {
  chant::World::Config cfg;
  cfg.pes = pes;
  cfg.rt.policy = c.policy;
  cfg.rt.wq_use_testany = c.wq_testany;
  cfg.rt.addressing = c.addressing;
  // Pin through the TransportSpec API; Default leaves the spec unset so
  // the Machine honours CHANT_TRANSPORT.
  switch (c.transport) {
    case nx::TransportKind::Default: break;
    case nx::TransportKind::InProc:
      cfg.transport_spec = nx::TransportSpec::inproc();
      break;
    case nx::TransportKind::ShmRing:
      cfg.transport_spec = nx::TransportSpec::shmring();
      break;
    case nx::TransportKind::Tcp:
      // Thread-hosted loopback sockets on ephemeral ports.
      cfg.transport_spec = nx::TransportSpec::tcp("127.0.0.1", 0);
      break;
  }
  return cfg;
}

inline std::vector<PolicyCase> all_cases() {
  using chant::AddressingMode;
  using chant::PollPolicy;
  std::vector<PolicyCase> cases;
  for (auto mode : {AddressingMode::TagOverload, AddressingMode::HeaderField}) {
    cases.push_back({PollPolicy::ThreadPolls, false, mode});
    cases.push_back({PollPolicy::SchedulerPollsWQ, false, mode});
    cases.push_back({PollPolicy::SchedulerPollsWQ, true, mode});
    cases.push_back({PollPolicy::SchedulerPollsPS, false, mode});
  }
  return cases;
}

/// The cross-backend contract sweep: every policy/addressing case pinned
/// to each concrete transport. Suites instantiated over this must behave
/// identically on every backend (ISSUE 8/9 acceptance).
inline std::vector<PolicyCase> transport_cases() {
  std::vector<PolicyCase> cases;
  for (auto k : {nx::TransportKind::InProc, nx::TransportKind::ShmRing,
                 nx::TransportKind::Tcp}) {
    for (PolicyCase c : all_cases()) {
      c.transport = k;
      cases.push_back(c);
    }
  }
  return cases;
}

}  // namespace chant_test
