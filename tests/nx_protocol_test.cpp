// nx_protocol_test.cpp — transfer protocol behaviour: posted-receive
// zero-copy path, eager buffering, rendezvous, handle lifecycle,
// msgtest/msgtestany accounting.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "nx/machine.hpp"

namespace {

TEST(NxProtocol, PostedReceiveTakesZeroCopyPath) {
  nx::Machine m{nx::Machine::Config{1, 1, nx::NetModel::zero(), 1 << 16}};
  nx::Endpoint& ep = m.endpoint(0, 0);
  char buf[16] = {0};
  nx::Handle h = ep.irecv(0, 0, 1, nx::kTagExact, buf, sizeof buf);
  const char msg[] = "direct";
  ep.csend(0, 0, 1, msg, sizeof msg);
  EXPECT_EQ(ep.counters().posted_match.load(), 1u);
  EXPECT_EQ(ep.counters().unexpected_eager.load(), 0u);
  nx::MsgHeader out;
  ASSERT_TRUE(ep.msgtest(h, &out));
  EXPECT_STREQ(buf, "direct");
}

TEST(NxProtocol, UnexpectedSmallMessageIsEagerBuffered) {
  nx::Machine m{nx::Machine::Config{1, 1, nx::NetModel::zero(), 1 << 16}};
  nx::Endpoint& ep = m.endpoint(0, 0);
  char msg[64];
  std::memset(msg, 'e', sizeof msg);
  ep.csend(0, 0, 2, msg, sizeof msg);  // returns immediately: eager copy
  EXPECT_EQ(ep.counters().unexpected_eager.load(), 1u);
  // The sender's buffer is reusable right away.
  std::memset(msg, 'X', sizeof msg);
  char buf[64];
  ep.crecv(0, 0, 2, nx::kTagExact, buf, sizeof buf);
  EXPECT_EQ(buf[0], 'e');  // receiver sees the value at send time
}

TEST(NxProtocol, LargeMessageUsesRendezvous) {
  nx::Machine m{nx::Machine::Config{2, 1, nx::NetModel::zero(),
                                    /*eager=*/1024}};
  std::vector<char> big(8192, 'r');
  m.run([&](nx::Endpoint& ep) {
    if (ep.pe() == 0) {
      ep.csend(1, 0, 3, big.data(), big.size());  // blocks until copied
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      std::vector<char> buf(8192);
      const nx::MsgHeader h =
          ep.crecv(0, 0, 3, nx::kTagExact, buf.data(), buf.size());
      EXPECT_EQ(h.len, 8192u);
      EXPECT_EQ(buf[8191], 'r');
      EXPECT_EQ(ep.counters().unexpected_rndv.load(), 1u);
    }
  });
}

TEST(NxProtocol, IsendRendezvousCompletesOnReceiverCopy) {
  nx::Machine m{nx::Machine::Config{1, 1, nx::NetModel::zero(),
                                    /*eager=*/64}};
  nx::Endpoint& ep = m.endpoint(0, 0);
  std::vector<char> big(1024, 'z');
  nx::Handle sh = ep.isend(0, 0, 4, big.data(), big.size());
  EXPECT_FALSE(ep.msgdone(sh));  // no receiver yet
  std::vector<char> buf(1024);
  ep.crecv(0, 0, 4, nx::kTagExact, buf.data(), buf.size());
  EXPECT_TRUE(ep.msgtest(sh));  // receiver copied; sender complete
  EXPECT_EQ(buf[0], 'z');
}

TEST(NxProtocol, EagerThresholdBoundaryIsInclusive) {
  nx::Machine m{nx::Machine::Config{1, 1, nx::NetModel::zero(),
                                    /*eager=*/100}};
  nx::Endpoint& ep = m.endpoint(0, 0);
  std::vector<char> at(100, 'a');
  std::vector<char> over(101, 'b');
  nx::Handle h1 = ep.isend(0, 0, 5, at.data(), at.size());
  EXPECT_TRUE(ep.msgtest(h1));  // == threshold: eager, complete now
  nx::Handle h2 = ep.isend(0, 0, 6, over.data(), over.size());
  EXPECT_FALSE(ep.msgdone(h2));  // > threshold: rendezvous
  std::vector<char> buf(256);
  ep.crecv(0, 0, 5, nx::kTagExact, buf.data(), buf.size());
  ep.crecv(0, 0, 6, nx::kTagExact, buf.data(), buf.size());
  EXPECT_TRUE(ep.msgtest(h2));
}

TEST(NxProtocol, MsgtestCountsCallsAndFailures) {
  nx::Machine m{nx::Machine::Config{1, 1, nx::NetModel::zero(), 1 << 16}};
  nx::Endpoint& ep = m.endpoint(0, 0);
  char buf[8];
  nx::Handle h = ep.irecv(0, 0, 7, nx::kTagExact, buf, sizeof buf);
  EXPECT_FALSE(ep.msgtest(h));
  EXPECT_FALSE(ep.msgtest(h));
  EXPECT_EQ(ep.counters().msgtest_calls.load(), 2u);
  EXPECT_EQ(ep.counters().msgtest_failed.load(), 2u);
  ep.csend(0, 0, 7, "x", 1);
  EXPECT_TRUE(ep.msgtest(h));
  EXPECT_EQ(ep.counters().msgtest_calls.load(), 3u);
  EXPECT_EQ(ep.counters().msgtest_failed.load(), 2u);
}

TEST(NxProtocol, HandlesAreInvalidatedAfterCompletion) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  nx::Machine m{nx::Machine::Config{1, 1, nx::NetModel::zero(), 1 << 16}};
  nx::Endpoint& ep = m.endpoint(0, 0);
  char buf[8];
  nx::Handle h = ep.irecv(0, 0, 8, nx::kTagExact, buf, sizeof buf);
  ep.csend(0, 0, 8, "y", 1);
  ASSERT_TRUE(ep.msgtest(h));
  EXPECT_DEATH((void)ep.msgtest(h), "invalid handle");
}

TEST(NxProtocol, HandleSlotsAreRecycledSafely) {
  nx::Machine m{nx::Machine::Config{1, 1, nx::NetModel::zero(), 1 << 16}};
  nx::Endpoint& ep = m.endpoint(0, 0);
  char buf[8];
  nx::Handle first = ep.irecv(0, 0, 9, nx::kTagExact, buf, sizeof buf);
  ep.csend(0, 0, 9, "a", 1);
  ASSERT_TRUE(ep.msgtest(first));
  // Reuse the slot thousands of times (the generation counter wraps its
  // 11 bits along the way); completion must stay correct throughout and
  // handles must stay distinguishable within a generation window.
  for (int i = 0; i < 5000; ++i) {
    nx::Handle h = ep.irecv(0, 0, 9, nx::kTagExact, buf, sizeof buf);
    if (i < 2000) EXPECT_NE(h, first);
    EXPECT_GE(h, 0);
    ep.csend(0, 0, 9, "b", 1);
    ASSERT_TRUE(ep.msgtest(h));
  }
}

TEST(NxProtocol, MsgtestanyFindsTheCompletedOne) {
  nx::Machine m{nx::Machine::Config{1, 1, nx::NetModel::zero(), 1 << 16}};
  nx::Endpoint& ep = m.endpoint(0, 0);
  char b0[8];
  char b1[8];
  char b2[8];
  nx::Handle hs[3] = {
      ep.irecv(0, 0, 20, nx::kTagExact, b0, sizeof b0),
      ep.irecv(0, 0, 21, nx::kTagExact, b1, sizeof b1),
      ep.irecv(0, 0, 22, nx::kTagExact, b2, sizeof b2),
  };
  EXPECT_EQ(ep.msgtestany(hs, 3), -1);
  ep.csend(0, 0, 21, "m", 1);
  nx::MsgHeader out;
  EXPECT_EQ(ep.msgtestany(hs, 3, &out), 1);
  EXPECT_EQ(out.tag, 21);
  EXPECT_EQ(ep.counters().testany_calls.load(), 2u);
  // Remaining handles still pending and testable.
  hs[1] = nx::kInvalidHandle;
  EXPECT_EQ(ep.msgtestany(hs, 3), -1);
  ep.csend(0, 0, 20, "n", 1);
  ep.csend(0, 0, 22, "o", 1);
  EXPECT_EQ(ep.msgtestany(hs, 3, &out), 0);
  EXPECT_EQ(ep.msgtestany(hs, 3, &out), 2);
}

TEST(NxProtocol, CancelRecvWithdrawsPosted) {
  nx::Machine m{nx::Machine::Config{1, 1, nx::NetModel::zero(), 1 << 16}};
  nx::Endpoint& ep = m.endpoint(0, 0);
  char buf[8] = {0};
  nx::Handle h = ep.irecv(0, 0, 30, nx::kTagExact, buf, sizeof buf);
  EXPECT_EQ(ep.posted_count(), 1u);
  EXPECT_TRUE(ep.cancel_recv(h));
  EXPECT_EQ(ep.posted_count(), 0u);
  // A message sent now goes unexpected instead of into the dead buffer.
  ep.csend(0, 0, 30, "q", 1);
  EXPECT_EQ(buf[0], 0);
  EXPECT_EQ(ep.unexpected_count(), 1u);
}

TEST(NxProtocol, BlockingSendRecvAcrossPes) {
  nx::Machine m{nx::Machine::Config{2, 1, nx::NetModel::zero(), 1 << 16}};
  m.run([&](nx::Endpoint& ep) {
    char buf[32];
    if (ep.pe() == 0) {
      for (int i = 0; i < 100; ++i) {
        std::string s = "msg" + std::to_string(i);
        ep.csend(1, 0, 40, s.data(), s.size());
        const nx::MsgHeader h =
            ep.crecv(1, 0, 41, nx::kTagExact, buf, sizeof buf);
        EXPECT_EQ(std::string(buf, h.len), "ack" + std::to_string(i));
      }
    } else {
      for (int i = 0; i < 100; ++i) {
        const nx::MsgHeader h =
            ep.crecv(0, 0, 40, nx::kTagExact, buf, sizeof buf);
        EXPECT_EQ(std::string(buf, h.len), "msg" + std::to_string(i));
        std::string s = "ack" + std::to_string(i);
        ep.csend(0, 0, 41, s.data(), s.size());
      }
    }
  });
}

}  // namespace
