// chant_validate_test.cpp — the runtime concurrency validator
// (DESIGN.md §9): seeded violations must each produce a report of the
// right kind, and clean runs must produce none.
#include "chant/validate.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <utility>
#include <vector>

#include "chant/bufferpool.hpp"
#include "chant_test_util.hpp"
#include "lwt/lwt.hpp"
#include "lwt/sync.hpp"

namespace {

using chant::Gid;
using chant::MsgInfo;
using chant::Runtime;
using chant::validate::Violation;

std::uint64_t count(Violation v) {
  return chant::validate::violation_count(v);
}

// Validation is process-global; each test arms it, seeds (or doesn't) a
// violation, and asserts on the counters. Reports also go to stderr,
// which doubles as a readability check when running with --verbose.
class ValidateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    chant::validate::enable();
    chant::validate::reset();
  }
  void TearDown() override { chant::validate::disable(); }
};

// ------------------------------------------------------ lock-order graph

TEST_F(ValidateTest, AbbaLockOrderCycleIsReported) {
  lwt::run([] {
    lwt::Mutex a;
    lwt::Mutex b;
    // First path takes a before b, second takes b before a. Neither run
    // deadlocks — the validator must flag the *ordering*, not the hang.
    a.lock();
    b.lock();
    b.unlock();
    a.unlock();
    b.lock();
    a.lock();
    a.unlock();
    b.unlock();
  });
  EXPECT_EQ(count(Violation::kLockOrderCycle), 1u);
}

TEST_F(ValidateTest, AbbaAcrossFibersIsReported) {
  lwt::run([] {
    lwt::Mutex a;
    lwt::Mutex b;
    lwt::Tcb* t1 = lwt::go([&] {
      a.lock();
      lwt::yield();
      b.lock();
      b.unlock();
      a.unlock();
    });
    lwt::Tcb* t2 = lwt::go([&] {
      // Serialized after t1 via the shared lock a, so the opposite-order
      // acquisition happens on a run where nothing actually deadlocks.
      a.lock();
      a.unlock();
      b.lock();
      a.lock();
      a.unlock();
      b.unlock();
    });
    lwt::join(t1);
    lwt::join(t2);
  });
  EXPECT_GE(count(Violation::kLockOrderCycle), 1u);
}

TEST_F(ValidateTest, ConsistentLockOrderIsClean) {
  lwt::run([] {
    lwt::Mutex a;
    lwt::Mutex b;
    for (int i = 0; i < 4; ++i) {
      a.lock();
      b.lock();
      b.unlock();
      a.unlock();
    }
  });
  EXPECT_EQ(chant::validate::violation_count(), 0u);
}

TEST_F(ValidateTest, ThreeLockCycleIsReported) {
  lwt::run([] {
    lwt::Mutex a;
    lwt::Mutex b;
    lwt::Mutex c;
    auto in_order = [](lwt::Mutex& first, lwt::Mutex& second) {
      first.lock();
      second.lock();
      second.unlock();
      first.unlock();
    };
    in_order(a, b);
    in_order(b, c);
    in_order(c, a);  // closes a -> b -> c -> a
  });
  EXPECT_EQ(count(Violation::kLockOrderCycle), 1u);
}

// Regression: acquisitions made through the timed variants must enter
// the lock-order graph exactly like their untimed siblings. A cycle one
// of whose edges was taken via try_lock_until / try_lock_for used to be
// invisible.
TEST_F(ValidateTest, AbbaViaTimedMutexAcquisitionIsReported) {
  lwt::run([] {
    lwt::Mutex a;
    lwt::Mutex b;
    a.lock();
    ASSERT_TRUE(
        b.try_lock_until(lwt::Scheduler::current()->deadline_after(1000000)));
    b.unlock();
    a.unlock();
    b.lock();
    ASSERT_TRUE(a.try_lock_for(1000000));  // closes b -> a via timed path
    a.unlock();
    b.unlock();
  });
  EXPECT_EQ(count(Violation::kLockOrderCycle), 1u);
}

TEST_F(ValidateTest, AbbaViaTimedRwLockWriterIsReported) {
  lwt::run([] {
    lwt::RwLock rw;
    lwt::Mutex m;
    ASSERT_TRUE(
        rw.try_lock_until(lwt::Scheduler::current()->deadline_after(1000000)));
    m.lock();
    m.unlock();
    rw.unlock();
    m.lock();
    ASSERT_TRUE(
        rw.try_lock_until(lwt::Scheduler::current()->deadline_after(1000000)));
    rw.unlock();
    m.unlock();
  });
  EXPECT_EQ(count(Violation::kLockOrderCycle), 1u);
}

// Regression: CondVar::wait_until releases the mutex for the park and
// reacquires it on the way out (timeout or signal alike). The
// reacquisition must be recorded, or every edge from that mutex taken
// after the wait would silently vanish from the order graph.
TEST_F(ValidateTest, MutexReacquiredByTimedCondWaitStaysInOrderGraph) {
  lwt::run([] {
    lwt::Mutex m;
    lwt::Mutex b;
    lwt::CondVar cv;
    m.lock();
    // Nobody signals: the wait times out and reacquires m.
    EXPECT_FALSE(
        cv.wait_until(m, lwt::Scheduler::current()->deadline_after(100000)));
    b.lock();  // edge m -> b, with m held only via the reacquisition
    b.unlock();
    m.unlock();
    b.lock();
    m.lock();  // closes b -> m
    m.unlock();
    b.unlock();
  });
  EXPECT_EQ(count(Violation::kLockOrderCycle), 1u);
}

// ------------------------------------------------- no-block context tag

TEST_F(ValidateTest, UntimedMutexLockInNoBlockScopeIsReported) {
  lwt::run([] {
    lwt::Mutex m;
    chant::validate::HandlerScope scope("a test no-block scope");
    m.lock();
    m.unlock();
  });
  EXPECT_EQ(count(Violation::kBlockingInHandler), 1u);
}

TEST_F(ValidateTest, TimedLockInNoBlockScopeIsAllowed) {
  lwt::run([] {
    lwt::Mutex m;
    chant::validate::HandlerScope scope("a test no-block scope");
    EXPECT_TRUE(m.try_lock_for(1000000));  // bounded: permitted
    m.unlock();
  });
  EXPECT_EQ(chant::validate::violation_count(), 0u);
}

// Regression: Semaphore::try_acquire_until is a *bounded* wait and must
// be announced as one — it used to be either unannounced or tagged
// untimed, so a handler using it was flagged like a bare acquire().
TEST_F(ValidateTest, TimedSemaphoreAcquireInNoBlockScopeIsAllowed) {
  lwt::run([] {
    lwt::Semaphore sem(1);
    chant::validate::HandlerScope scope("a test no-block scope");
    EXPECT_TRUE(sem.try_acquire_until(
        lwt::Scheduler::current()->deadline_after(1000000)));
    sem.release();
  });
  EXPECT_EQ(chant::validate::violation_count(), 0u);
}

// Regression: Once::call can block (behind a running initializer) and
// runs the initializer holding logical ownership of the Once. Both must
// be visible to the validator: the first call inside a no-block scope
// is an unbounded wait (flagged), a completed Once is a plain load
// (clean).
TEST_F(ValidateTest, OnceCallIsAnnouncedAsUnboundedWait) {
  lwt::run([] {
    lwt::Once once;
    {
      chant::validate::HandlerScope scope("a test no-block scope");
      once.call([] {});
    }
  });
  EXPECT_EQ(count(Violation::kBlockingInHandler), 1u);
}

TEST_F(ValidateTest, CompletedOnceIsCleanInNoBlockScope) {
  lwt::run([] {
    lwt::Once once;
    once.call([] {});
    chant::validate::HandlerScope scope("a test no-block scope");
    once.call([] {});  // already Done: no wait, no report
  });
  EXPECT_EQ(chant::validate::violation_count(), 0u);
}

TEST_F(ValidateTest, ScopeEndsWithTheHandler) {
  lwt::run([] {
    lwt::Mutex m;
    { chant::validate::HandlerScope scope("a test no-block scope"); }
    m.lock();  // outside the scope again: fine
    m.unlock();
  });
  EXPECT_EQ(chant::validate::violation_count(), 0u);
}

// ----------------------------------------- blocking recv in RSR handler

constexpr int kPayloadTag = 7;
constexpr long kPayload = 424242;

void blocking_recv_handler(Runtime& rt, Runtime::RsrContext&, const void*,
                           std::size_t, std::vector<std::uint8_t>& reply) {
  // The client shipped the payload message before issuing the call, so
  // this receive completes without waiting — but it is an *unbounded*
  // blocking call inside a handler and must be reported.
  long v = 0;
  (void)rt.recv(kPayloadTag, &v, sizeof v, chant::kAnyThread);
  reply.resize(sizeof v);
  std::memcpy(reply.data(), &v, sizeof v);
}

TEST_F(ValidateTest, BlockingRecvInsideRsrHandlerIsReported) {
  chant::World w(chant_test::config_for(
      {chant::PollPolicy::ThreadPolls, false,
       chant::AddressingMode::HeaderField}));
  const int h = w.register_handler(&blocking_recv_handler);
  w.run([&](Runtime& rt) {
    if (rt.pe() != 0) return;
    const Gid server{1, 0, chant::kServerLid};
    rt.send(kPayloadTag, &kPayload, sizeof kPayload, server);
    const auto rep = rt.call(1, 0, h, nullptr, 0);
    ASSERT_EQ(rep.size(), sizeof(long));
    long v = 0;
    std::memcpy(&v, rep.data(), sizeof v);
    EXPECT_EQ(v, kPayload);  // the handler really did receive the payload
  });
  EXPECT_EQ(count(Violation::kBlockingInHandler), 1u);
}

void echo_handler(Runtime&, Runtime::RsrContext&, const void* arg,
                  std::size_t len, std::vector<std::uint8_t>& reply) {
  reply.assign(static_cast<const std::uint8_t*>(arg),
               static_cast<const std::uint8_t*>(arg) + len);
}

TEST_F(ValidateTest, WellBehavedHandlerIsClean) {
  chant::World w(chant_test::config_for(
      {chant::PollPolicy::ThreadPolls, false,
       chant::AddressingMode::HeaderField}));
  const int h = w.register_handler(&echo_handler);
  w.run([&](Runtime& rt) {
    if (rt.pe() != 0) return;
    const long x = 17;
    const auto rep = rt.call(1, 0, h, &x, sizeof x);
    ASSERT_EQ(rep.size(), sizeof x);
  });
  EXPECT_EQ(chant::validate::violation_count(), 0u);
}

// ------------------------------------------------------- BufferPool

TEST_F(ValidateTest, BufferPoolDoubleReleaseIsReported) {
  chant::BufferPool pool;
  std::vector<std::uint8_t> b = pool.acquire(64);
  std::vector<std::uint8_t> b2 = std::move(b);
  pool.release(std::move(b2));  // legitimate release
  pool.release(std::move(b));   // double release: b was moved out above
  EXPECT_EQ(count(Violation::kPoolDoubleRelease), 1u);
}

TEST_F(ValidateTest, BufferPoolUseAfterReleaseIsReported) {
  chant::BufferPool pool;
  std::vector<std::uint8_t> b = pool.acquire(32);
  std::uint8_t* raw = b.data();
  pool.release(std::move(b));
  // The block now sits poisoned in the free list; this stale-pointer
  // write is exactly the bug the poison catches.
  raw[5] = 0x42;
  (void)pool.acquire(32);
  EXPECT_EQ(count(Violation::kPoolUseAfterRelease), 1u);
}

TEST_F(ValidateTest, BufferPoolNormalRecyclingIsClean) {
  chant::BufferPool pool;
  for (int i = 0; i < 8; ++i) {
    std::vector<std::uint8_t> b = pool.acquire(128);
    std::memset(b.data(), 0x5A, b.size());  // use while owned: fine
    pool.release(std::move(b));
  }
  EXPECT_EQ(chant::validate::violation_count(), 0u);
  EXPECT_LE(pool.stats().fresh, 1u);  // poison must not break recycling
}

// ------------------------------------------------------- report plumbing

TEST_F(ValidateTest, SinkReceivesStructuredReports) {
  static std::vector<chant::validate::Report> captured;
  captured.clear();
  chant::validate::set_sink(
      [](void*, const chant::validate::Report& r) {
        captured.push_back(r);
      },
      nullptr);
  chant::BufferPool pool;
  std::vector<std::uint8_t> gone;
  pool.release(std::move(gone));
  chant::validate::set_sink(nullptr, nullptr);
  ASSERT_EQ(captured.size(), 1u);
  EXPECT_EQ(captured[0].kind, Violation::kPoolDoubleRelease);
  EXPECT_NE(captured[0].message.find("DOUBLE RELEASE"), std::string::npos);
}

TEST_F(ValidateTest, DisabledValidatorCostsNothingAndReportsNothing) {
  chant::validate::disable();
  chant::BufferPool pool;
  std::vector<std::uint8_t> gone;
  pool.release(std::move(gone));  // would report if enabled
  lwt::run([] {
    lwt::Mutex a;
    lwt::Mutex b;
    a.lock();
    b.lock();
    b.unlock();
    a.unlock();
    b.lock();
    a.lock();
    a.unlock();
    b.unlock();
  });
  EXPECT_EQ(chant::validate::violation_count(), 0u);
}

}  // namespace
