// chant_property_test.cpp — randomized whole-system properties: meshes
// of talking threads across PEs exchanging checksummed traffic, swept
// over polling policies and addressing modes. The invariants: every
// message arrives, uncorrupted, at exactly the thread it was addressed
// to, in per-(sender,receiver) FIFO order.
#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <vector>

#include "chant_test_util.hpp"

namespace {

using chant::Gid;
using chant::MsgInfo;
using chant::Runtime;
using chant_test::PolicyCase;

struct Framed {
  int seq;
  int src_key;
  std::uint64_t sum;
  std::uint8_t body[48];
};

std::uint64_t sum_of(const std::uint8_t* p, std::size_t n) {
  std::uint64_t s = 14695981039346656037ull;
  for (std::size_t i = 0; i < n; ++i) s = (s ^ p[i]) * 1099511628211ull;
  return s;
}

class ChantMesh : public ::testing::TestWithParam<PolicyCase> {};

// Every pe runs kThreads workers; worker k on pe p exchanges kMsgs
// messages with worker k on every other pe (same lid by symmetric
// creation order). Total traffic: pes*(pes-1)*kThreads*kMsgs messages.
TEST_P(ChantMesh, AllPairsCheckedTraffic) {
  constexpr int kPes = 3;
  constexpr int kThreads = 4;
  constexpr int kMsgs = 15;
  chant::World w(chant_test::config_for(GetParam(), kPes));
  w.run([](Runtime& rt) {
    struct Ctx {
      Runtime* rt;
      int index;
    };
    std::vector<Ctx> ctxs;
    for (int i = 0; i < kThreads; ++i) ctxs.push_back(Ctx{&rt, i});
    std::vector<Gid> workers;
    for (int i = 0; i < kThreads; ++i) {
      workers.push_back(rt.create(
          [](void* p) -> void* {
            auto* c = static_cast<Ctx*>(p);
            Runtime& r = *c->rt;
            const int my_pe = r.pe();
            const int my_lid = r.self().thread;
            std::mt19937 rng(
                static_cast<unsigned>(my_pe * 131 + c->index * 17));
            // Send kMsgs framed messages to the same-lid worker on every
            // other pe, interleaved with receives of the same volume.
            int to_send = (kPes - 1) * kMsgs;
            int to_recv = (kPes - 1) * kMsgs;
            std::vector<int> sent(kPes, 0);
            std::vector<int> expect(kPes, 0);
            while (to_send > 0 || to_recv > 0) {
              if (to_send > 0) {
                int dst;
                do {
                  dst = static_cast<int>(rng() % kPes);
                } while (dst == my_pe || sent[static_cast<std::size_t>(dst)] >= kMsgs);
                Framed f{};
                f.seq = sent[static_cast<std::size_t>(dst)]++;
                f.src_key = my_pe;
                for (auto& b : f.body) {
                  b = static_cast<std::uint8_t>(rng() & 0xFF);
                }
                f.sum = sum_of(f.body, sizeof f.body);
                r.send(90, &f, sizeof f, Gid{dst, 0, my_lid});
                --to_send;
              }
              if (to_recv > 0) {
                Framed f{};
                const MsgInfo mi =
                    r.recv(90, &f, sizeof f, chant::kAnyThread);
                EXPECT_EQ(mi.len, sizeof f);
                EXPECT_EQ(mi.src.thread, my_lid);  // only my twin writes me
                EXPECT_EQ(f.sum, sum_of(f.body, sizeof f.body));
                auto& e = expect[static_cast<std::size_t>(f.src_key)];
                EXPECT_EQ(f.seq, e);  // per-sender FIFO
                e = f.seq + 1;
                --to_recv;
              }
            }
            return nullptr;
          },
          &ctxs[static_cast<std::size_t>(i)], PTHREAD_CHANTER_LOCAL,
          PTHREAD_CHANTER_LOCAL));
    }
    for (const Gid& g : workers) rt.join(g);
  });
}

// Mixed payload sizes crossing the eager threshold: protocol transitions
// (eager <-> rendezvous) must be invisible to the application.
TEST_P(ChantMesh, MixedSizesAcrossEagerBoundary) {
  chant::World::Config cfg = chant_test::config_for(GetParam(), 2);
  cfg.eager_threshold = 512;
  chant::World w(cfg);
  w.run([](Runtime& rt) {
    const Gid peer{1 - rt.pe(), 0, chant::kMainLid};
    std::mt19937 rng(static_cast<unsigned>(rt.pe()) + 5u);
    constexpr int kRounds = 30;
    // Phase 1: everyone sends all messages (nonblocking receives were
    // pre-posted so rendezvous cannot deadlock the two mains).
    std::vector<std::vector<std::uint8_t>> inbox(kRounds);
    std::vector<int> handles;
    for (int i = 0; i < kRounds; ++i) {
      inbox[static_cast<std::size_t>(i)].resize(2048);
      handles.push_back(rt.irecv(200 + i,
                                 inbox[static_cast<std::size_t>(i)].data(),
                                 2048, peer));
    }
    std::vector<std::vector<std::uint8_t>> keep;
    for (int i = 0; i < kRounds; ++i) {
      const std::size_t n = 1 + (rng() % 1500);  // straddles 512
      std::vector<std::uint8_t> msg(n, static_cast<std::uint8_t>(i));
      rt.send(200 + i, msg.data(), msg.size(), peer);
      keep.push_back(std::move(msg));
    }
    for (int i = 0; i < kRounds; ++i) {
      const MsgInfo mi = rt.msgwait(handles[static_cast<std::size_t>(i)]);
      EXPECT_EQ(mi.user_tag, 200 + i);
      EXPECT_TRUE(mi.status.ok());
      EXPECT_EQ(inbox[static_cast<std::size_t>(i)][0],
                static_cast<std::uint8_t>(i));
    }
  });
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, ChantMesh,
                         ::testing::ValuesIn(chant_test::all_cases()),
                         [](const auto& info) {
                           return chant_test::case_name(info.param);
                         });

}  // namespace
