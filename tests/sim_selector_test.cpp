// sim_selector_test.cpp — schedule-exploration campaign for
// chant::Selector: completion vs deadline vs cancel vs deregister races
// under the sim controller's seeded interleavings (bit-replayable via
// CHANT_SIM_SEED/CHANT_SIM_TRACE, like every sim_* suite). Across every
// seed the Selector must resolve each race to one of its legal
// outcomes: no lost wakeups (a sent message is always harvestable), no
// spurious reports (a withdrawn receive is never reported ready), no
// leaked handles or dangling waiter entries (outstanding_recvs drains
// to zero and the Selector destructor quiesces cleanly).
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "chant/chant.hpp"
#include "sim/explore.hpp"

namespace {

using chant::Deadline;
using chant::Gid;
using chant::PollPolicy;
using chant::Runtime;
using chant::Selector;
using chant::Status;
using chant::StatusCode;

TEST(SimSelector, CompletionVsTimerVsUserDeadline) {
  // One recv + one timer registration, a sender with a seed-drawn
  // virtual delay, and a seed-drawn user deadline: three ways the wait
  // can resolve, all legal, each leaving a coherent state the epilogue
  // can always drain.
  sim::Options opt;
  opt.seeds = 400;
  opt.base_seed = 0x5E1E;  // "SELE"
  opt.faults.delay_p = 0.5;
  opt.faults.max_delay_ns = 60'000;
  const sim::Result res = sim::explore(opt, [](sim::Session& s) {
    chant::World::Config cfg;
    cfg.pes = 1;
    cfg.rt.policy = PollPolicy::SchedulerPollsWQ;
    s.apply(cfg);
    const std::uint64_t send_after = s.rng()() % 300'000;
    const std::uint64_t timer_after = s.rng()() % 300'000;
    const std::uint64_t wait_for = s.rng()() % 300'000;
    chant::World w(cfg);
    w.run([&](Runtime& rt) {
      static Runtime* rt_p;
      static std::uint64_t delay_s;
      static Gid main_gid;
      rt_p = &rt;
      delay_s = send_after;
      main_gid = rt.self();
      const Gid sender = rt.create(
          [](void*) -> void* {
            rt_p->scheduler().sleep_for(delay_s);
            long v = 4242;
            rt_p->send(5, &v, sizeof v, main_gid);
            return nullptr;
          },
          nullptr, PTHREAD_CHANTER_LOCAL, PTHREAD_CHANTER_LOCAL);
      long buf = 0;
      const int h = rt.irecv(5, &buf, sizeof buf, chant::kAnyThread);
      {
        Selector sel(rt);
        const std::uint64_t rtok = sel.add_recv(h);
        const std::uint64_t ttok =
            sel.add_timer(Deadline::after(timer_after));
        std::vector<Selector::Ready> ready;
        const Status st = sel.wait(Deadline::after(wait_for), &ready);
        bool recv_reported = false;
        bool timer_reported = false;
        if (st.ok()) {
          ASSERT_FALSE(ready.empty());
          for (const auto& r : ready) {
            if (r.token == rtok) {
              ASSERT_EQ(r.kind, Selector::Kind::Recv);
              recv_reported = true;
            } else {
              ASSERT_EQ(r.token, ttok);
              ASSERT_EQ(r.kind, Selector::Kind::Timer);
              timer_reported = true;
            }
          }
        } else {
          ASSERT_EQ(st, StatusCode::DeadlineExceeded);
          ASSERT_TRUE(ready.empty());
          // Neither source may have been consumed by the failed wait.
          ASSERT_EQ(sel.size(), 2u);
        }
        if (recv_reported) {
          // Reported ready ⇒ harvest must succeed immediately.
          ASSERT_TRUE(rt.msgtest(h, nullptr));
          ASSERT_EQ(buf, 4242);
        } else {
          // Not reported ⇒ the message is still owed; the handle must
          // behave like any live handle (lost-wakeup check: an
          // unbounded wait always completes because the send is real).
          ASSERT_EQ(rt.msgwait(h, Deadline::infinite()), StatusCode::Ok);
          ASSERT_EQ(buf, 4242);
        }
        if (!timer_reported) {
          // Still registered: removing it must succeed exactly once.
          // (If the recv harvest above dropped it implicitly something
          // is very wrong — they are unrelated registrations.)
          ASSERT_EQ(sel.remove(ttok), StatusCode::Ok);
        }
        ASSERT_EQ(sel.size(), 0u);
      }  // ~Selector: waiter quiesce must not hang under any schedule
      ASSERT_EQ(rt.outstanding_recvs(), 0u);
      void* rv = nullptr;
      ASSERT_EQ(rt.join(sender, Deadline::infinite(), &rv), StatusCode::Ok);
      ASSERT_EQ(rt.scheduler().armed_timers(), 0u);
    });
  });
  EXPECT_FALSE(res.failed);
  EXPECT_EQ(res.iterations, 400u);
}

TEST(SimSelector, CancelVsCompletionLeavesNoDanglingWaiter) {
  // The satellite-1 regression: cancel_irecv on a handle registered
  // with a live Selector races against the sender's completion. Either
  // the receive is withdrawn (Ok; message re-delivered to a fresh
  // receive) or it completed first (AlreadyCompleted; payload absorbed)
  // — in both cases the registration must vanish atomically, the
  // companion receive must still be reported (its wakeup must not be
  // lost to the cancel), and nothing may dangle or leak.
  sim::Options opt;
  opt.seeds = 400;
  opt.base_seed = 0xCA4C;
  opt.faults.delay_p = 0.5;
  opt.faults.max_delay_ns = 50'000;
  const sim::Result res = sim::explore(opt, [](sim::Session& s) {
    chant::World::Config cfg;
    cfg.pes = 1;
    cfg.rt.policy = PollPolicy::SchedulerPollsPS;
    s.apply(cfg);
    const std::uint64_t send_after = s.rng()() % 200'000;
    const std::uint64_t cancel_after = s.rng()() % 200'000;
    // Deregister flavor: 0 = cancel_irecv (the handle's own retire
    // path), 1 = Selector::remove (the selector-side path).
    const bool via_remove = (s.rng()() & 1) != 0;
    chant::World w(cfg);
    w.run([&](Runtime& rt) {
      static Runtime* rt_p;
      static std::uint64_t delay_s;
      static Gid main_gid;
      rt_p = &rt;
      delay_s = send_after;
      main_gid = rt.self();
      const Gid sender = rt.create(
          [](void*) -> void* {
            rt_p->scheduler().sleep_for(delay_s);
            long v = 7;
            rt_p->send(6, &v, sizeof v, main_gid);  // the raced receive
            long u = 8;
            rt_p->send(7, &u, sizeof u, main_gid);  // the companion
            return nullptr;
          },
          nullptr, PTHREAD_CHANTER_LOCAL, PTHREAD_CHANTER_LOCAL);
      long raced = 0;
      long companion = 0;
      const int hr = rt.irecv(6, &raced, sizeof raced, chant::kAnyThread);
      const int hc =
          rt.irecv(7, &companion, sizeof companion, chant::kAnyThread);
      {
        Selector sel(rt);
        const std::uint64_t rtok = sel.add_recv(hr);
        const std::uint64_t ctok = sel.add_recv(hc);
        rt.scheduler().sleep_for(cancel_after);
        // The raced receive may have completed (and been reported)
        // already, or be mid-delivery right now, or still be pending.
        bool raced_consumed = false;
        if (via_remove) {
          // Nothing has retired the handle yet (no wait, no harvest),
          // so the explicit deregister must succeed exactly once.
          ASSERT_EQ(sel.remove(rtok), StatusCode::Ok);
          const Status cs = rt.cancel_irecv(hr);
          ASSERT_TRUE(cs == StatusCode::Ok ||
                      cs == StatusCode::AlreadyCompleted);
          raced_consumed = cs == StatusCode::AlreadyCompleted;
        } else {
          const Status cs = rt.cancel_irecv(hr);
          ASSERT_TRUE(cs == StatusCode::Ok ||
                      cs == StatusCode::AlreadyCompleted);
          raced_consumed = cs == StatusCode::AlreadyCompleted;
        }
        // Registration dropped atomically with the handle's retirement.
        ASSERT_EQ(sel.size(), 1u);
        // The companion's wakeup must not be lost: an unbounded wait
        // reports it (the sender always sends both messages).
        std::vector<Selector::Ready> ready;
        ASSERT_EQ(sel.wait(&ready), StatusCode::Ok);
        ASSERT_EQ(ready.size(), 1u);
        ASSERT_EQ(ready[0].token, ctok);
        ASSERT_TRUE(rt.msgtest(hc, nullptr));
        ASSERT_EQ(companion, 8);
        ASSERT_EQ(sel.size(), 0u);
        if (!raced_consumed) {
          // Withdrawn before delivery: the raced message must reach a
          // fresh receive whole — the cancel lost nothing.
          long v2 = 0;
          rt.recv(6, &v2, sizeof v2, chant::kAnyThread);
          ASSERT_EQ(v2, 7);
        }
      }
      ASSERT_EQ(rt.outstanding_recvs(), 0u);
      void* rv = nullptr;
      ASSERT_EQ(rt.join(sender, Deadline::infinite(), &rv), StatusCode::Ok);
    });
  });
  EXPECT_FALSE(res.failed);
  EXPECT_EQ(res.iterations, 400u);
}

TEST(SimSelector, MultiSourceExactlyOnceUnderTestany) {
  // Three independently delayed senders, one Selector, WQ+testany (the
  // group-poll policy whose scan skips per-entry predicates — the
  // configuration most likely to lose a wakeup): every message must be
  // reported exactly once, whatever the interleaving of deliveries,
  // group polls and parks.
  sim::Options opt;
  opt.seeds = 256;
  opt.base_seed = 0x371C;
  opt.faults.delay_p = 0.4;
  opt.faults.max_delay_ns = 40'000;
  const sim::Result res = sim::explore(opt, [](sim::Session& s) {
    chant::World::Config cfg;
    cfg.pes = 1;
    cfg.rt.policy = PollPolicy::SchedulerPollsWQ;
    cfg.rt.wq_use_testany = true;
    s.apply(cfg);
    std::uint64_t delays[3];
    for (auto& d : delays) d = s.rng()() % 150'000;
    chant::World w(cfg);
    w.run([&](Runtime& rt) {
      static Runtime* rt_p;
      static std::uint64_t delays_s[3];
      static Gid main_gid;
      rt_p = &rt;
      std::memcpy(delays_s, delays, sizeof delays_s);
      main_gid = rt.self();
      std::vector<Gid> senders;
      for (int i = 0; i < 3; ++i) {
        senders.push_back(rt.create(
            [](void* p) -> void* {
              const int k =
                  static_cast<int>(reinterpret_cast<std::intptr_t>(p));
              rt_p->scheduler().sleep_for(delays_s[k]);
              long v = 100 + k;
              rt_p->send(10 + k, &v, sizeof v, main_gid);
              return nullptr;
            },
            reinterpret_cast<void*>(static_cast<std::intptr_t>(i)),
            PTHREAD_CHANTER_LOCAL, PTHREAD_CHANTER_LOCAL));
      }
      long bufs[3] = {};
      int handles[3];
      std::uint64_t toks[3];
      int reports[3] = {};
      Selector sel(rt);
      for (int i = 0; i < 3; ++i) {
        handles[i] = rt.irecv(10 + i, &bufs[i], sizeof(long),
                              chant::kAnyThread);
        toks[i] = sel.add_recv(handles[i]);
      }
      int total = 0;
      while (total < 3) {
        std::vector<Selector::Ready> ready;
        ASSERT_EQ(sel.wait(&ready), StatusCode::Ok);
        ASSERT_FALSE(ready.empty());
        for (const auto& r : ready) {
          int which = -1;
          for (int i = 0; i < 3; ++i) {
            if (toks[i] == r.token) which = i;
          }
          ASSERT_GE(which, 0);
          ++reports[which];
          ASSERT_TRUE(rt.msgtest(handles[which], nullptr));
          ASSERT_EQ(bufs[which], 100 + which);
          ++total;
        }
      }
      for (int i = 0; i < 3; ++i) {
        ASSERT_EQ(reports[i], 1) << "source " << i;  // exactly once
      }
      ASSERT_EQ(sel.size(), 0u);
      ASSERT_EQ(rt.outstanding_recvs(), 0u);
      for (const Gid& g : senders) rt.join(g);
    });
  });
  EXPECT_FALSE(res.failed);
  EXPECT_EQ(res.iterations, 256u);
}

}  // namespace
