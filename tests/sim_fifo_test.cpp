// sim_fifo_test.cpp — schedule exploration of the ordered-channel
// guarantee (paper §3.1, NX semantics): messages from one source arrive
// in the order sent, on every explored interleaving, even while injected
// delay freely reorders traffic *across* sources. This is the property
// the per-source monotonic deliver-at clamp exists to defend.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "chant/chant.hpp"
#include "sim/explore.hpp"

namespace {

using chant::Gid;
using chant::PollPolicy;
using chant::Runtime;

class SimFifo : public ::testing::TestWithParam<PollPolicy> {};

TEST_P(SimFifo, CrossPeStreamsStayOrderedUnderDelay) {
  sim::Options opt;
  opt.seeds = 200;
  opt.base_seed = 0xF1F0;
  opt.faults.delay_p = 0.5;
  opt.faults.max_delay_ns = 40'000;
  const PollPolicy policy = GetParam();
  const sim::Result res = sim::explore(opt, [&](sim::Session& s) {
    chant::World::Config cfg;
    cfg.pes = 2;
    cfg.rt.policy = policy;
    cfg.rt.start_server = false;
    s.apply(cfg);
    chant::World w(cfg);
    w.run([](Runtime& rt) {
      constexpr int kMsgs = 12;
      const Gid peer{1 - rt.pe(), 0, chant::kMainLid};
      for (int i = 0; i < kMsgs; ++i) {
        rt.send(3, &i, sizeof i, peer);
        if (i % 3 == 0) rt.yield();
      }
      for (int i = 0; i < kMsgs; ++i) {
        int got = -1;
        rt.recv(3, &got, sizeof got, peer);
        EXPECT_EQ(got, i) << "pe " << rt.pe() << " saw reordered stream";
      }
    });
  });
  EXPECT_FALSE(res.failed);
  EXPECT_EQ(res.iterations, 200u);
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, SimFifo,
    ::testing::Values(PollPolicy::ThreadPolls, PollPolicy::SchedulerPollsWQ,
                      PollPolicy::SchedulerPollsPS),
    [](const auto& info) {
      switch (info.param) {
        case PollPolicy::ThreadPolls: return "TP";
        case PollPolicy::SchedulerPollsWQ: return "WQ";
        case PollPolicy::SchedulerPollsPS: return "PS";
      }
      return "?";
    });

TEST(SimFifoWildcard, PerSourceOrderSurvivesWildcardReceives) {
  // Many same-process senders, one wildcard receiver: across sources any
  // interleaving is legal (delays reorder them), but the subsequence
  // from each source must stay sorted. Single process: failures here
  // replay bit-identically from the printed trace.
  sim::Options opt;
  opt.seeds = 300;
  opt.base_seed = 0x5EED;
  opt.faults.delay_p = 0.6;
  opt.faults.max_delay_ns = 25'000;
  const sim::Result res = sim::explore(opt, [](sim::Session& s) {
    chant::World::Config cfg;
    cfg.pes = 1;
    cfg.rt.policy = PollPolicy::SchedulerPollsWQ;
    cfg.rt.start_server = false;
    s.apply(cfg);
    chant::World w(cfg);
    w.run([&](Runtime& rt) {
      constexpr int kSenders = 4;
      constexpr int kMsgs = 6;
      struct Ctx {
        Runtime* rt;
      };
      Ctx c{&rt};
      std::vector<Gid> gids;
      for (int t = 0; t < kSenders; ++t) {
        gids.push_back(rt.create(
            [](void* p) -> void* {
              Runtime& r = *static_cast<Ctx*>(p)->rt;
              for (int i = 0; i < kMsgs; ++i) {
                r.send(9, &i, sizeof i,
                       Gid{r.pe(), r.process(), chant::kMainLid});
                r.yield();
              }
              return nullptr;
            },
            &c, rt.pe(), rt.process()));
      }
      std::map<int, int> next;
      for (int k = 0; k < kSenders * kMsgs; ++k) {
        int got = -1;
        const chant::MsgInfo mi =
            rt.recv(9, &got, sizeof got, chant::kAnyThread);
        EXPECT_EQ(got, next[mi.src.thread]++)
            << "lid " << mi.src.thread << " reordered";
      }
      for (const Gid& g : gids) rt.join(g);
    });
  });
  EXPECT_FALSE(res.failed);
  EXPECT_EQ(res.iterations, 300u);
}

TEST(SimFifoWildcard, RoundRobinSchedulesPreserveOrderToo) {
  // Same property under the deterministic rotate-by-one strategy, which
  // forces systematically different head-of-queue threads than the
  // random sweep reaches.
  sim::Options opt;
  opt.seeds = 200;
  opt.base_seed = 0x0B0B;
  opt.strategy = sim::Strategy::RoundRobin;
  opt.faults.delay_p = 0.4;
  const sim::Result res = sim::explore(opt, [](sim::Session& s) {
    chant::World::Config cfg;
    cfg.pes = 1;
    cfg.rt.policy = PollPolicy::SchedulerPollsPS;
    cfg.rt.start_server = false;
    s.apply(cfg);
    chant::World w(cfg);
    w.run([&](Runtime& rt) {
      constexpr int kMsgs = 10;
      struct Ctx {
        Runtime* rt;
        std::uint64_t salt;
      };
      // The body rng salts payload spacing so different seeds exercise
      // different send/receive phase alignments even under the fixed
      // rotation schedule.
      Ctx c{&rt, s.rng()()};
      const Gid g = rt.create(
          [](void* p) -> void* {
            auto* c2 = static_cast<Ctx*>(p);
            Runtime& r = *c2->rt;
            for (int i = 0; i < kMsgs; ++i) {
              r.send(4, &i, sizeof i,
                     Gid{r.pe(), r.process(), chant::kMainLid});
              for (std::uint64_t y = 0; y < (c2->salt >> (i % 8)) % 3; ++y) {
                r.yield();
              }
            }
            return nullptr;
          },
          &c, rt.pe(), rt.process());
      for (int i = 0; i < kMsgs; ++i) {
        int got = -1;
        rt.recv(4, &got, sizeof got,
                Gid{rt.pe(), rt.process(), g.thread});
        EXPECT_EQ(got, i);
      }
      rt.join(g);
    });
  });
  EXPECT_FALSE(res.failed);
  EXPECT_EQ(res.iterations, 200u);
}

}  // namespace
