// lwt_scheduler_test.cpp — scheduling semantics: spawn/join/yield,
// priorities, detach, statistics, queue mechanics.
#include "lwt/scheduler.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "lwt/lwt.hpp"

namespace {

TEST(TcbQueue, FifoOrder) {
  lwt::TcbQueue q;
  lwt::Tcb a, b, c;
  EXPECT_TRUE(q.empty());
  q.push_back(&a);
  q.push_back(&b);
  q.push_back(&c);
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.pop_front(), &a);
  EXPECT_EQ(q.pop_front(), &b);
  EXPECT_EQ(q.pop_front(), &c);
  EXPECT_EQ(q.pop_front(), nullptr);
}

TEST(TcbQueue, RemoveFromMiddleHeadTail) {
  lwt::TcbQueue q;
  lwt::Tcb a, b, c;
  q.push_back(&a);
  q.push_back(&b);
  q.push_back(&c);
  EXPECT_TRUE(q.remove(&b));
  EXPECT_EQ(q.size(), 2u);
  EXPECT_TRUE(q.remove(&a));
  EXPECT_TRUE(q.remove(&c));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.remove(&a));  // not present anymore
}

TEST(TcbQueue, RemoveSingleElement) {
  lwt::TcbQueue q;
  lwt::Tcb a;
  q.push_back(&a);
  EXPECT_TRUE(q.remove(&a));
  EXPECT_TRUE(q.empty());
}

TEST(Scheduler, RunMainReturnsMainRetval) {
  lwt::Scheduler s;
  void* rv = s.run_main(
      [](void* a) -> void* { return static_cast<char*>(a) + 5; },
      reinterpret_cast<void*>(100));
  EXPECT_EQ(rv, reinterpret_cast<void*>(105));
}

TEST(Scheduler, JoinReturnsChildRetval) {
  lwt::run([] {
    lwt::Tcb* t = lwt::Scheduler::current()->spawn(
        [](void*) -> void* { return reinterpret_cast<void*>(77); }, nullptr);
    EXPECT_EQ(lwt::join(t), reinterpret_cast<void*>(77));
  });
}

TEST(Scheduler, JoinBlocksUntilChildFinishes) {
  lwt::run([] {
    int phase = 0;
    lwt::Tcb* t = lwt::go([&] {
      for (int i = 0; i < 10; ++i) lwt::yield();
      phase = 1;
    });
    lwt::join(t);
    EXPECT_EQ(phase, 1);
  });
}

TEST(Scheduler, SelfAndCurrentAreConsistent) {
  lwt::run([] {
    lwt::Scheduler* s = lwt::Scheduler::current();
    ASSERT_NE(s, nullptr);
    lwt::Tcb* me = lwt::Scheduler::self();
    ASSERT_NE(me, nullptr);
    EXPECT_EQ(me->sched, s);
    EXPECT_EQ(me->id, 1u);  // main fiber
    EXPECT_STREQ(me->name, "main");
  });
  EXPECT_EQ(lwt::Scheduler::current(), nullptr);
  EXPECT_EQ(lwt::Scheduler::self(), nullptr);
}

TEST(Scheduler, ThreadIdsAreSequential) {
  lwt::run([] {
    lwt::Tcb* a = lwt::go([] {});
    lwt::Tcb* b = lwt::go([] {});
    EXPECT_EQ(a->id, 2u);
    EXPECT_EQ(b->id, 3u);
    lwt::join(a);
    lwt::join(b);
  });
}

TEST(Scheduler, HigherPriorityRunsFirst) {
  std::vector<char> order;
  lwt::run([&] {
    lwt::ThreadAttr low;
    low.priority = 1;
    lwt::ThreadAttr high;
    high.priority = 6;
    lwt::Tcb* l = lwt::go([&] { order.push_back('l'); }, low);
    lwt::Tcb* h = lwt::go([&] { order.push_back('h'); }, high);
    lwt::yield();  // let them run
    lwt::join(l);
    lwt::join(h);
  });
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 'h');
  EXPECT_EQ(order[1], 'l');
}

TEST(Scheduler, SetPriorityMovesQueuedThread) {
  std::vector<char> order;
  lwt::run([&] {
    lwt::Tcb* a = lwt::go([&] { order.push_back('a'); });
    lwt::Tcb* b = lwt::go([&] { order.push_back('b'); });
    // Promote b above a while both are queued.
    lwt::Scheduler::current()->set_priority(b, lwt::kNumPriorities - 1);
    lwt::join(a);
    lwt::join(b);
  });
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 'b');
}

TEST(Scheduler, PriorityClamped) {
  lwt::run([] {
    lwt::ThreadAttr a;
    a.priority = 99;
    lwt::Tcb* t = lwt::go([] {}, a);
    EXPECT_EQ(t->priority, lwt::kNumPriorities - 1);
    lwt::ThreadAttr b;
    b.priority = -5;
    lwt::Tcb* u = lwt::go([] {}, b);
    EXPECT_EQ(u->priority, 0);
    lwt::join(t);
    lwt::join(u);
  });
}

TEST(Scheduler, DetachedThreadsReapThemselves) {
  lwt::run([] {
    lwt::ThreadAttr attr;
    attr.detached = true;
    int done = 0;
    for (int i = 0; i < 50; ++i) {
      lwt::go([&done] { ++done; }, attr);
    }
    while (lwt::Scheduler::current()->live_threads() > 1) lwt::yield();
    EXPECT_EQ(done, 50);
  });
}

TEST(Scheduler, DetachAfterFinishReaps) {
  lwt::run([] {
    lwt::Tcb* t = lwt::go([] {});
    while (t->state != lwt::ThreadState::Finished) lwt::yield();
    lwt::Scheduler::current()->detach(t);  // reaps the zombie, no join
  });
}

TEST(Scheduler, NestedSpawning) {
  int leaves = 0;
  lwt::run([&] {
    std::vector<lwt::Tcb*> mids;
    for (int i = 0; i < 4; ++i) {
      mids.push_back(lwt::go([&] {
        lwt::Tcb* inner[4];
        for (auto*& t : inner) {
          t = lwt::go([&] { ++leaves; });
        }
        for (auto* t : inner) lwt::join(t);
      }));
    }
    for (auto* t : mids) lwt::join(t);
  });
  EXPECT_EQ(leaves, 16);
}

TEST(Scheduler, ManyThreadsStress) {
  long sum = 0;
  lwt::run([&] {
    std::vector<lwt::Tcb*> ts;
    for (long i = 0; i < 500; ++i) {
      ts.push_back(lwt::go([&sum, i] {
        lwt::yield();
        sum += i;
      }));
    }
    for (auto* t : ts) lwt::join(t);
  });
  EXPECT_EQ(sum, 500 * 499 / 2);
}

TEST(Scheduler, StatsCountSwitchesAndYields) {
  lwt::Scheduler s;
  s.run_main(
      [](void*) -> void* {
        for (int i = 0; i < 10; ++i) lwt::Scheduler::current()->yield();
        return nullptr;
      },
      nullptr);
  EXPECT_EQ(s.stats().yields, 10u);
  EXPECT_EQ(s.stats().spawns, 1u);
  // main restored once at start + once per yield
  EXPECT_EQ(s.stats().full_switches, 11u);
}

TEST(Scheduler, RunMainCanBeCalledTwice) {
  lwt::Scheduler s;
  EXPECT_EQ(s.run_main([](void*) -> void* { return nullptr; }, nullptr),
            nullptr);
  EXPECT_EQ(s.run_main([](void* a) -> void* { return a; }, &s), &s);
}

TEST(Scheduler, DebugDumpMentionsThreads) {
  lwt::run([] {
    lwt::ThreadAttr attr;
    attr.name = "worker-x";
    lwt::Tcb* t = lwt::go([] { lwt::yield(); }, attr);
    const std::string dump = lwt::Scheduler::current()->debug_dump();
    EXPECT_NE(dump.find("worker-x"), std::string::npos);
    lwt::join(t);
  });
}

TEST(Scheduler, ThreadNamesTruncateSafely) {
  lwt::run([] {
    lwt::ThreadAttr attr;
    attr.name = "a-very-long-thread-name-that-exceeds-the-buffer";
    lwt::Tcb* t = lwt::go([] {}, attr);
    EXPECT_LT(std::string(t->name).size(), sizeof(t->name));
    lwt::join(t);
  });
}

using SchedulerDeathTest = ::testing::Test;

TEST(SchedulerDeathTest, SelfJoinAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(lwt::run([] {
                 lwt::Scheduler::current()->join(lwt::Scheduler::self());
               }),
               "invalid join");
}

TEST(SchedulerDeathTest, DoubleJoinAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(lwt::run([] {
                 lwt::Tcb* t = lwt::go([] {});
                 lwt::join(t);
                 lwt::Scheduler::current()->join(t);
               }),
               "");
}

TEST(SchedulerDeathTest, DeadlockIsDetected) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(lwt::run([] {
                 lwt::TcbQueue never_signaled;
                 lwt::Scheduler::current()->park_on(never_signaled);
               }),
               "deadlock");
}

}  // namespace
