// nx_matching_test.cpp — posted/unexpected matching semantics: tags,
// masks, wildcards, per-source FIFO, truncation, channels.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "nx/machine.hpp"

namespace {

/// Single-PE machine: all matching logic can be exercised with
/// self-sends, which keeps these tests sequential and deterministic.
/// Parameterized over the delivery backend (addressed through the
/// TransportSpec grammar) — matching semantics are the transport
/// contract, so every case must hold verbatim on each one.
class NxMatching : public ::testing::TestWithParam<const char*> {
 protected:
  static nx::Machine::Config cfg(const char* spec) {
    nx::Machine::Config c{1, 1, nx::NetModel::zero(), 1 << 16};
    c.transport_spec = nx::TransportSpec::parse(spec);
    return c;
  }
  nx::Machine m{cfg(GetParam())};
  nx::Endpoint& ep() { return m.endpoint(0, 0); }

  void send_self(int tag, const std::string& s, int channel = 0) {
    ep().csend(0, 0, tag, s.data(), s.size(), channel);
  }
};

TEST_P(NxMatching, ExactTagMatches) {
  send_self(42, "hello");
  char buf[16];
  const nx::MsgHeader h = ep().crecv(0, 0, 42, nx::kTagExact, buf, sizeof buf);
  EXPECT_EQ(h.tag, 42);
  EXPECT_EQ(h.len, 5u);
  EXPECT_EQ(std::string(buf, h.len), "hello");
}

TEST_P(NxMatching, DifferentTagDoesNotMatch) {
  send_self(1, "one");
  send_self(2, "two");
  char buf[16];
  const nx::MsgHeader h = ep().crecv(0, 0, 2, nx::kTagExact, buf, sizeof buf);
  EXPECT_EQ(std::string(buf, h.len), "two");
  EXPECT_EQ(ep().unexpected_count(), 1u);  // tag 1 still queued
  const nx::MsgHeader h1 = ep().crecv(0, 0, 1, nx::kTagExact, buf, sizeof buf);
  EXPECT_EQ(std::string(buf, h1.len), "one");
}

TEST_P(NxMatching, AnyTagMatchesFirstArrival) {
  send_self(7, "first");
  send_self(8, "second");
  char buf[16];
  const nx::MsgHeader h = ep().crecv(0, 0, 0, nx::kTagAny, buf, sizeof buf);
  EXPECT_EQ(h.tag, 7);
  EXPECT_EQ(std::string(buf, h.len), "first");
}

TEST_P(NxMatching, MaskedTagMatchesBitPattern) {
  // Pattern: upper byte must be 0x0A, rest free — the tag-overloading
  // scheme Chant relies on (paper §3.1(2)).
  send_self(0x0B01, "wrong-high-byte");
  send_self(0x0A55, "right");
  char buf[32];
  const nx::MsgHeader h =
      ep().crecv(0, 0, 0x0A00, 0xFF00, buf, sizeof buf);
  EXPECT_EQ(h.tag, 0x0A55);
  EXPECT_EQ(std::string(buf, h.len), "right");
}

TEST_P(NxMatching, ChannelFieldMatches) {
  send_self(5, "chanA", /*channel=*/100);
  send_self(5, "chanB", /*channel=*/200);
  char buf[16];
  nx::Handle h = ep().irecv(0, 0, 5, nx::kTagExact, buf, sizeof buf,
                            /*channel=*/200, /*channel_mask=*/~0);
  nx::MsgHeader out;
  ASSERT_TRUE(ep().msgtest(h, &out));
  EXPECT_EQ(out.channel, 200);
  EXPECT_EQ(std::string(buf, out.len), "chanB");
}

TEST_P(NxMatching, PerSourceFifoWithinTag) {
  for (int i = 0; i < 10; ++i) send_self(9, std::to_string(i));
  char buf[16];
  for (int i = 0; i < 10; ++i) {
    const nx::MsgHeader h =
        ep().crecv(0, 0, 9, nx::kTagExact, buf, sizeof buf);
    EXPECT_EQ(std::string(buf, h.len), std::to_string(i));
  }
}

TEST_P(NxMatching, PostedReceivesMatchInPostOrder) {
  char b1[8] = {0};
  char b2[8] = {0};
  nx::Handle h1 = ep().irecv(0, 0, 3, nx::kTagExact, b1, sizeof b1);
  nx::Handle h2 = ep().irecv(0, 0, 3, nx::kTagExact, b2, sizeof b2);
  send_self(3, "A");
  send_self(3, "B");
  nx::MsgHeader o1;
  nx::MsgHeader o2;
  ASSERT_TRUE(ep().msgtest(h1, &o1));
  ASSERT_TRUE(ep().msgtest(h2, &o2));
  EXPECT_EQ(b1[0], 'A');  // first posted gets first sent
  EXPECT_EQ(b2[0], 'B');
}

TEST_P(NxMatching, TruncationIsReported) {
  send_self(4, "0123456789");
  char buf[4];
  const nx::MsgHeader h = ep().crecv(0, 0, 4, nx::kTagExact, buf, sizeof buf);
  EXPECT_TRUE(h.truncated);
  EXPECT_EQ(h.len, 10u);  // original length still reported
  EXPECT_EQ(std::string(buf, 4), "0123");
}

TEST_P(NxMatching, ZeroByteMessages) {
  ep().csend(0, 0, 11, nullptr, 0);
  char buf[4];
  const nx::MsgHeader h = ep().crecv(0, 0, 11, nx::kTagExact, buf, sizeof buf);
  EXPECT_EQ(h.len, 0u);
  EXPECT_FALSE(h.truncated);
}

TEST_P(NxMatching, ProbeSeesWithoutConsuming) {
  EXPECT_FALSE(ep().iprobe(0, 0, 6, nx::kTagExact));
  send_self(6, "peek");
  nx::MsgHeader h;
  EXPECT_TRUE(ep().iprobe(0, 0, 6, nx::kTagExact, &h));
  EXPECT_EQ(h.len, 4u);
  EXPECT_EQ(ep().unexpected_count(), 1u);  // still there
  char buf[8];
  ep().crecv(0, 0, 6, nx::kTagExact, buf, sizeof buf);
  EXPECT_FALSE(ep().iprobe(0, 0, 6, nx::kTagExact));
}

TEST_P(NxMatching, WildcardSourceAcceptsAnyPe) {
  send_self(12, "from-self");
  char buf[16];
  const nx::MsgHeader h =
      ep().crecv(nx::kAnyPe, nx::kAnyProc, 12, nx::kTagExact, buf, sizeof buf);
  EXPECT_EQ(h.src_pe, 0);
  EXPECT_EQ(h.src_proc, 0);
}

INSTANTIATE_TEST_SUITE_P(
    AllTransports, NxMatching,
    ::testing::Values("inproc", "shmring", "tcp://127.0.0.1:0"),
    [](const ::testing::TestParamInfo<const char*>& info) {
      return std::string(
          nx::to_string(nx::TransportSpec::parse(info.param).kind));
    });

}  // namespace
