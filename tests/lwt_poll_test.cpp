// lwt_poll_test.cpp — the scheduler's three message-wait mechanisms
// (TP / WQ / PS) in isolation, using synthetic poll requests.
#include <gtest/gtest.h>

#include <vector>

#include "lwt/lwt.hpp"

namespace {

struct Flag {
  int value = 0;
  int threshold = 1;
  int tests = 0;
  static bool test(void* p) {
    auto* f = static_cast<Flag*>(p);
    ++f->tests;
    return f->value >= f->threshold;
  }
  lwt::PollRequest req() { return lwt::PollRequest{&Flag::test, this}; }
};

TEST(PollTp, CompletesWhenConditionHolds) {
  lwt::run([] {
    Flag f;
    f.threshold = 3;
    lwt::Tcb* w = lwt::go([&] {
      lwt::Scheduler::current()->poll_block_tp(f.req());
      EXPECT_GE(f.value, 3);
    });
    for (int i = 0; i < 5; ++i) {
      ++f.value;
      lwt::yield();
    }
    lwt::join(w);
    EXPECT_GE(f.tests, 3);  // one per resumption until satisfied
  });
}

TEST(PollTp, FastPathDoesNotYield) {
  lwt::run([] {
    Flag f;
    f.value = 1;  // already satisfied
    const auto yields_before = lwt::Scheduler::current()->stats().yields;
    lwt::Scheduler::current()->poll_block_tp(f.req());
    EXPECT_EQ(lwt::Scheduler::current()->stats().yields, yields_before);
    EXPECT_EQ(f.tests, 1);
  });
}

TEST(PollWq, ParkedThreadDoesNotConsumeSwitches) {
  lwt::run([] {
    Flag f;
    f.threshold = 1;
    lwt::Tcb* w = lwt::go([&] {
      lwt::Scheduler::current()->poll_block_wq(f.req());
    });
    lwt::yield();  // waiter parks
    const auto switches_parked =
        lwt::Scheduler::current()->stats().full_switches;
    for (int i = 0; i < 20; ++i) lwt::yield();
    // While parked, only the main fiber was being restored.
    EXPECT_EQ(lwt::Scheduler::current()->stats().full_switches,
              switches_parked + 20);
    f.value = 1;
    lwt::join(w);
    EXPECT_GT(lwt::Scheduler::current()->stats().wq_poll_tests, 0u);
  });
}

TEST(PollWq, ManyWaitersWakeInAnyOrderButAll) {
  lwt::run([] {
    std::vector<Flag> flags(6);
    int woken = 0;
    std::vector<lwt::Tcb*> ts;
    for (auto& f : flags) {
      ts.push_back(lwt::go([&] {
        lwt::Scheduler::current()->poll_block_wq(f.req());
        ++woken;
      }));
    }
    lwt::yield();
    // Release in reverse order.
    for (int i = 5; i >= 0; --i) {
      flags[static_cast<std::size_t>(i)].value = 1;
      lwt::yield();
    }
    for (auto* t : ts) lwt::join(t);
    EXPECT_EQ(woken, 6);
  });
}

TEST(PollPs, PartialSwitchTestsWithoutRestore) {
  lwt::run([] {
    Flag f;
    lwt::Tcb* w = lwt::go([&] {
      lwt::Scheduler::current()->poll_block_ps(f.req());
    });
    lwt::yield();  // waiter runs once, parks with poll in TCB
    const auto full_before = lwt::Scheduler::current()->stats().full_switches;
    for (int i = 0; i < 10; ++i) lwt::yield();
    const auto& st = lwt::Scheduler::current()->stats();
    // The waiter's context was never restored while pending...
    EXPECT_EQ(st.full_switches, full_before + 10);
    // ...but it was tested (partial switches) at scheduling points.
    EXPECT_GE(st.partial_poll_tests, 10u);
    f.value = 1;
    lwt::join(w);
  });
}

TEST(PollPs, MultipleParkedRotateFairly) {
  lwt::run([] {
    std::vector<Flag> flags(4);
    std::vector<int> wake_order;
    std::vector<lwt::Tcb*> ts;
    for (int i = 0; i < 4; ++i) {
      ts.push_back(lwt::go([&, i] {
        lwt::Scheduler::current()->poll_block_ps(
            flags[static_cast<std::size_t>(i)].req());
        wake_order.push_back(i);
      }));
    }
    lwt::yield();
    flags[2].value = 1;
    lwt::yield();
    flags[0].value = 1;
    lwt::yield();
    flags[3].value = 1;
    flags[1].value = 1;
    for (auto* t : ts) lwt::join(t);
    ASSERT_EQ(wake_order.size(), 4u);
    EXPECT_EQ(wake_order[0], 2);
    EXPECT_EQ(wake_order[1], 0);
  });
}

TEST(PollPs, MsgWaitingCountTracksWaiters) {
  lwt::run([] {
    Flag f;
    EXPECT_EQ(lwt::Scheduler::current()->msg_waiting_threads(), 0u);
    lwt::Tcb* w = lwt::go([&] {
      lwt::Scheduler::current()->poll_block_ps(f.req());
    });
    lwt::yield();
    EXPECT_EQ(lwt::Scheduler::current()->msg_waiting_threads(), 1u);
    f.value = 1;
    lwt::join(w);
    EXPECT_EQ(lwt::Scheduler::current()->msg_waiting_threads(), 0u);
  });
}

TEST(PollCancel, TpWaiterCanBeCancelled) {
  lwt::run([] {
    Flag f;  // never satisfied
    lwt::Tcb* w = lwt::go([&] {
      lwt::Scheduler::current()->poll_block_tp(f.req());
    });
    lwt::yield();
    lwt::Scheduler::current()->cancel(w);
    EXPECT_EQ(lwt::join(w), lwt::kCanceled);
  });
}

TEST(PollCancel, WqWaiterCanBeCancelled) {
  lwt::run([] {
    Flag f;
    lwt::Tcb* w = lwt::go([&] {
      lwt::Scheduler::current()->poll_block_wq(f.req());
    });
    lwt::yield();
    lwt::Scheduler::current()->cancel(w);
    EXPECT_EQ(lwt::join(w), lwt::kCanceled);
  });
}

TEST(PollCancel, PsWaiterCanBeCancelled) {
  lwt::run([] {
    Flag f;
    lwt::Tcb* w = lwt::go([&] {
      lwt::Scheduler::current()->poll_block_ps(f.req());
    });
    lwt::yield();
    lwt::Scheduler::current()->cancel(w);
    EXPECT_EQ(lwt::join(w), lwt::kCanceled);
  });
}

// ------------------------------------------------- group poll (msgtestany)

struct GroupState {
  std::vector<Flag*> parked;
  int group_calls = 0;
};

std::size_t group_poll(void* ctx, lwt::Scheduler& s) {
  auto* g = static_cast<GroupState*>(ctx);
  ++g->group_calls;
  for (std::size_t i = 0; i < g->parked.size(); ++i) {
    Flag* f = g->parked[i];
    if (f->value >= f->threshold) {
      g->parked.erase(g->parked.begin() + static_cast<long>(i));
      EXPECT_TRUE(s.wq_complete(f));
      return 1;
    }
  }
  return 0;
}

TEST(PollWqGroup, GroupHookReplacesPerEntryScan) {
  lwt::Scheduler s;
  GroupState g;
  s.set_wq_group_poll(&group_poll, &g);
  struct Ctx {
    GroupState* g;
  } ctx{&g};
  s.run_main(
      [](void* p) -> void* {
        auto* c = static_cast<Ctx*>(p);
        std::vector<Flag> flags(3);
        std::vector<lwt::Tcb*> ts;
        for (auto& f : flags) {
          c->g->parked.push_back(&f);
          ts.push_back(lwt::go([&f] {
            lwt::Scheduler::current()->poll_block_wq(f.req());
          }));
        }
        lwt::yield();
        for (auto& f : flags) {
          f.value = 1;
          lwt::yield();
        }
        for (auto* t : ts) lwt::join(t);
        return nullptr;
      },
      &ctx);
  EXPECT_GT(g.group_calls, 0);
  // Per-entry scans were replaced: no wq_poll_tests counted.
  EXPECT_EQ(s.stats().wq_poll_tests, 0u);
}

}  // namespace
