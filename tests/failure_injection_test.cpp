// failure_injection_test.cpp — hostile inputs and mid-operation
// disruptions: cancelled waits, malformed runtime traffic, resource
// exhaustion, stack overflow.
#include <gtest/gtest.h>

#include <cstring>

#include "chant_test_util.hpp"

namespace {

using chant::Gid;
using chant::MsgInfo;
using chant::Runtime;
using chant_test::PolicyCase;

class FailureInjection : public ::testing::TestWithParam<PolicyCase> {};

TEST_P(FailureInjection, CancelMidRecvWithdrawsThePostedReceive) {
  chant::World w(chant_test::config_for(GetParam(), /*pes=*/1));
  w.run([](Runtime& rt) {
    struct Ctx {
      Runtime* rt;
      char buf[32];
    };
    auto* ctx = new Ctx{&rt, {}};
    const Gid victim = rt.create(
        [](void* p) -> void* {
          auto* c = static_cast<Ctx*>(p);
          // Blocks forever; the buffer lives in *ctx, freed after join.
          c->rt->recv(70, c->buf, sizeof c->buf, chant::kAnyThread);
          return nullptr;
        },
        ctx, PTHREAD_CHANTER_LOCAL, PTHREAD_CHANTER_LOCAL);
    for (int i = 0; i < 10; ++i) rt.yield();
    EXPECT_EQ(rt.cancel(victim), 0);
    EXPECT_EQ(rt.join(victim), lwt::kCanceled);
    delete ctx;  // safe only if the posted receive was withdrawn
    // A late message with that tag must go unexpected, not into freed
    // memory; a fresh receive picks it up intact.
    char v = 'x';
    rt.send(70, &v, 1, rt.self());
    char got = 0;
    rt.recv(70, &got, 1, rt.self());
    EXPECT_EQ(got, 'x');
  });
}

TEST_P(FailureInjection, MalformedRsrIsDroppedAndServerSurvives) {
  chant::World w(chant_test::config_for(GetParam()));
  static long t_hits;
  const int handler = w.register_handler(
      [](Runtime&, Runtime::RsrContext&, const void*, std::size_t,
         std::vector<std::uint8_t>& reply) {
        ++t_hits;
        reply.push_back(1);
      });
  w.run([&](Runtime& rt) {
    if (rt.pe() != 0) return;
    t_hits = 0;
    // Hand-craft a too-short "request" straight at pe 1's server thread
    // through the raw endpoint (bypassing the API's framing).
    const chant::TagCodec::Wire wire = rt.codec().encode(
        chant::kServerLid, rt.self().thread, chant::kTagRsr,
        /*internal=*/true);
    char junk[3] = {1, 2, 3};
    rt.endpoint().csend(1, 0, wire.tag, junk, sizeof junk, wire.channel);
    // The server must log-and-drop, then keep serving real requests.
    const auto rep = rt.call(1, 0, handler, nullptr, 0);
    EXPECT_EQ(rep.size(), 1u);
  });
}

TEST_P(FailureInjection, UnknownHandlerDoesNotWedgeTheCaller) {
  chant::World w(chant_test::config_for(GetParam()));
  w.run([](Runtime& rt) {
    if (rt.pe() != 0) return;
    for (int bogus : {100, 5, 7}) {  // never-registered ids
      const auto rep = rt.call(1, 0, bogus, nullptr, 0);
      std::int32_t status = 0;
      ASSERT_GE(rep.size(), sizeof status);
      std::memcpy(&status, rep.data(), sizeof status);
      EXPECT_EQ(status, EINVAL);
    }
  });
}

TEST_P(FailureInjection, CancelStormLeavesRuntimeConsistent) {
  chant::World w(chant_test::config_for(GetParam()));
  w.run([](Runtime& rt) {
    if (rt.pe() != 0) return;
    // Waves of remote threads blocked in different kinds of waits, all
    // cancelled; afterwards ordinary traffic must still work.
    for (int wave = 0; wave < 5; ++wave) {
      std::vector<Gid> victims;
      for (int i = 0; i < 6; ++i) {
        victims.push_back(rt.create(
            [](void* p) -> void* {
              Runtime& r = *Runtime::current();
              const long kind = reinterpret_cast<long>(p);
              char buf[8];
              switch (kind % 3) {
                case 0:
                  r.recv(71, buf, sizeof buf, chant::kAnyThread);
                  break;
                case 1:
                  for (;;) r.yield();
                case 2:
                  r.recv(72, buf, sizeof buf,
                         Gid{0, 0, chant::kMainLid});
                  break;
              }
              return nullptr;
            },
            reinterpret_cast<void*>(static_cast<long>(i)), 1, 0));
      }
      for (int i = 0; i < 10; ++i) rt.yield();
      for (const Gid& g : victims) EXPECT_EQ(rt.cancel(g), 0);
      for (const Gid& g : victims) EXPECT_EQ(rt.join(g), lwt::kCanceled);
    }
    // Sanity traffic afterwards.
    const Gid peer = rt.create(
        [](void*) -> void* {
          Runtime& r = *Runtime::current();
          long v = 0;
          r.recv(73, &v, sizeof v, chant::kAnyThread);
          return reinterpret_cast<void*>(v);
        },
        nullptr, 1, 0);
    long v = 1234;
    rt.send(73, &v, sizeof v, peer);
    EXPECT_EQ(rt.join(peer), reinterpret_cast<void*>(1234L));
  });
}

TEST_P(FailureInjection, OversizedRsrPayloadRejectedBeforeTheWire) {
  chant::World w(chant_test::config_for(GetParam()));
  w.run([](Runtime& rt) {
    if (rt.pe() != 0) return;
    std::vector<std::uint8_t> big(rt.config().rsr_buffer_size + 1);
    EXPECT_THROW(rt.post(1, 0, 0, big.data(), big.size()),
                 std::invalid_argument);
    EXPECT_THROW(rt.call_async(1, 0, 0, big.data(), big.size()),
                 std::invalid_argument);
    // At exactly the limit it must be accepted.
    std::vector<std::uint8_t> limit(rt.config().rsr_buffer_size);
    const Gid g = rt.create_marshalled(
        [](Runtime&, const void*, std::size_t len) {
          EXPECT_GT(len, 0u);
        },
        limit.data(), limit.size() - 64 /* create header overhead */, 1, 0);
    rt.join(g);
  });
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, FailureInjection,
                         ::testing::ValuesIn(chant_test::all_cases()),
                         [](const auto& info) {
                           return chant_test::case_name(info.param);
                         });

using FailureDeathTest = ::testing::Test;

TEST(FailureDeathTest, FiberStackOverflowHitsTheGuardPage) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        lwt::Scheduler s;
        lwt::ThreadAttr tiny;
        tiny.stack_size = 8 * 1024;
        struct Rec {
          static long deep(long n) {
            volatile char pad[512];
            pad[0] = static_cast<char>(n);
            return n <= 0 ? pad[0] : deep(n - 1) + pad[0];
          }
        };
        s.run_main([](void*) -> void* { return nullptr; }, nullptr);
        lwt::Scheduler s2(lwt::default_backend());
        s2.run_main(
            [](void*) -> void* {
              return reinterpret_cast<void*>(Rec::deep(1000000));
            },
            nullptr, tiny);
      },
      "");
}

TEST(FailureDeathTest, LidExhaustionAbortsWithDiagnostic) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        chant::World::Config cfg;
        cfg.pes = 1;
        cfg.rt.addressing = chant::AddressingMode::TagOverload;  // 255 lids
        chant::World w(cfg);
        w.run([](chant::Runtime& rt) {
          std::vector<chant::Gid> keep;
          for (int i = 0; i < 300; ++i) {
            keep.push_back(rt.create(
                [](void*) -> void* {
                  for (;;) chant::Runtime::current()->yield();
                },
                nullptr, PTHREAD_CHANTER_LOCAL, PTHREAD_CHANTER_LOCAL));
          }
        });
      },
      "out of thread ids");
}

}  // namespace
