// nx_group_test.cpp — process groups and collectives (paper Fig. 3).
#include "nx/group.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "nx/machine.hpp"

namespace {

std::vector<nx::NodeAddr> all_members(int pes) {
  std::vector<nx::NodeAddr> m;
  for (int p = 0; p < pes; ++p) m.push_back({p, 0});
  return m;
}

/// Group sizes that exercise power-of-two and ragged binomial trees.
class NxGroups : public ::testing::TestWithParam<int> {};

TEST_P(NxGroups, BarrierSynchronizes) {
  const int pes = GetParam();
  nx::Machine m{nx::Machine::Config{pes, 1, nx::NetModel::zero(), 1 << 16}};
  std::atomic<int> arrived{0};
  std::atomic<bool> violated{false};
  m.run([&](nx::Endpoint& ep) {
    nx::Group g(ep, all_members(pes), /*group_id=*/7);
    EXPECT_EQ(g.size(), pes);
    EXPECT_EQ(g.rank(), ep.pe());
    for (int round = 0; round < 5; ++round) {
      arrived.fetch_add(1);
      g.barrier();
      if (arrived.load() < pes * (round + 1)) violated = true;
      g.barrier();
    }
  });
  EXPECT_FALSE(violated.load());
}

TEST_P(NxGroups, BroadcastReachesEveryRoot) {
  const int pes = GetParam();
  nx::Machine m{nx::Machine::Config{pes, 1, nx::NetModel::zero(), 1 << 16}};
  m.run([&](nx::Endpoint& ep) {
    nx::Group g(ep, all_members(pes), 9);
    for (int root = 0; root < pes; ++root) {
      long payload = g.rank() == root ? 1000 + root : -1;
      g.broadcast(&payload, sizeof payload, root);
      EXPECT_EQ(payload, 1000 + root);
    }
  });
}

TEST_P(NxGroups, ReduceSumMinMax) {
  const int pes = GetParam();
  nx::Machine m{nx::Machine::Config{pes, 1, nx::NetModel::zero(), 1 << 16}};
  m.run([&](nx::Endpoint& ep) {
    nx::Group g(ep, all_members(pes), 11);
    const std::int64_t mine[2] = {g.rank() + 1, 10 * (g.rank() + 1)};
    std::int64_t out[2] = {0, 0};
    g.reduce(mine, out, 2, nx::ReduceOp::Sum, /*root=*/0);
    if (g.rank() == 0) {
      const std::int64_t n = pes;
      EXPECT_EQ(out[0], n * (n + 1) / 2);
      EXPECT_EQ(out[1], 10 * n * (n + 1) / 2);
    }
    g.reduce(mine, out, 2, nx::ReduceOp::Min, /*root=*/0);
    if (g.rank() == 0) EXPECT_EQ(out[0], 1);
    g.reduce(mine, out, 2, nx::ReduceOp::Max, /*root=*/0);
    if (g.rank() == 0) EXPECT_EQ(out[1], 10 * pes);
  });
}

TEST_P(NxGroups, AllreduceGivesEveryoneTheAnswer) {
  const int pes = GetParam();
  nx::Machine m{nx::Machine::Config{pes, 1, nx::NetModel::zero(), 1 << 16}};
  m.run([&](nx::Endpoint& ep) {
    nx::Group g(ep, all_members(pes), 13);
    const double mine = 0.5 * (g.rank() + 1);
    double out = 0;
    g.allreduce(&mine, &out, 1, nx::ReduceOp::Sum);
    EXPECT_DOUBLE_EQ(out, 0.5 * pes * (pes + 1) / 2);
  });
}

TEST_P(NxGroups, GatherCollectsRankMajor) {
  const int pes = GetParam();
  nx::Machine m{nx::Machine::Config{pes, 1, nx::NetModel::zero(), 1 << 16}};
  m.run([&](nx::Endpoint& ep) {
    nx::Group g(ep, all_members(pes), 15);
    const int root = pes - 1;
    long mine = 100 + g.rank();
    std::vector<long> all(static_cast<std::size_t>(pes), -1);
    g.gather(&mine, sizeof mine,
             g.rank() == root ? all.data() : nullptr, root);
    if (g.rank() == root) {
      for (int r = 0; r < pes; ++r) {
        EXPECT_EQ(all[static_cast<std::size_t>(r)], 100 + r);
      }
    }
  });
}

TEST_P(NxGroups, AllgatherGivesEveryoneEverySlice) {
  const int pes = GetParam();
  nx::Machine m{nx::Machine::Config{pes, 1, nx::NetModel::zero(), 1 << 16}};
  m.run([&](nx::Endpoint& ep) {
    nx::Group g(ep, all_members(pes), 16);
    long mine = 500 + g.rank();
    std::vector<long> all(static_cast<std::size_t>(pes), -1);
    g.allgather(&mine, sizeof mine, all.data());
    for (int r = 0; r < pes; ++r) {
      EXPECT_EQ(all[static_cast<std::size_t>(r)], 500 + r);
    }
  });
}

TEST_P(NxGroups, ScatterDistributesSlices) {
  const int pes = GetParam();
  nx::Machine m{nx::Machine::Config{pes, 1, nx::NetModel::zero(), 1 << 16}};
  m.run([&](nx::Endpoint& ep) {
    nx::Group g(ep, all_members(pes), 17);
    std::vector<long> src;
    if (g.rank() == 0) {
      for (int r = 0; r < pes; ++r) src.push_back(7000 + r);
    }
    long mine = -1;
    g.scatter(g.rank() == 0 ? src.data() : nullptr, &mine, sizeof mine, 0);
    EXPECT_EQ(mine, 7000 + g.rank());
  });
}

TEST_P(NxGroups, BackToBackCollectivesDoNotCrossMatch) {
  const int pes = GetParam();
  nx::Machine m{nx::Machine::Config{pes, 1, nx::NetModel::zero(), 1 << 16}};
  m.run([&](nx::Endpoint& ep) {
    nx::Group g(ep, all_members(pes), 19);
    for (int i = 0; i < 20; ++i) {
      long v = g.rank() == 0 ? i : -1;
      g.broadcast(&v, sizeof v, 0);
      EXPECT_EQ(v, i);
      std::int64_t one = 1;
      std::int64_t sum = 0;
      g.allreduce(&one, &sum, 1, nx::ReduceOp::Sum);
      EXPECT_EQ(sum, pes);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Sizes, NxGroups, ::testing::Values(1, 2, 3, 4, 7),
                         [](const auto& info) {
                           return "pes" + std::to_string(info.param);
                         });

TEST(NxGroupMisc, SubsetGroupsCoexist) {
  // Two disjoint groups with different ids run collectives concurrently;
  // the group id in the channel keeps their traffic apart.
  nx::Machine m{nx::Machine::Config{4, 1, nx::NetModel::zero(), 1 << 16}};
  m.run([&](nx::Endpoint& ep) {
    const bool low = ep.pe() < 2;
    std::vector<nx::NodeAddr> members =
        low ? std::vector<nx::NodeAddr>{{0, 0}, {1, 0}}
            : std::vector<nx::NodeAddr>{{2, 0}, {3, 0}};
    nx::Group g(ep, members, low ? 100 : 200);
    EXPECT_TRUE(g.contains(ep.pe(), 0));
    EXPECT_FALSE(g.contains(low ? 2 : 0, 0));
    for (int i = 0; i < 10; ++i) {
      std::int64_t one = low ? 1 : 100;
      std::int64_t sum = 0;
      g.allreduce(&one, &sum, 1, nx::ReduceOp::Sum);
      EXPECT_EQ(sum, low ? 2 : 200);
    }
  });
}

TEST(NxGroupMisc, GroupTrafficSegregatedByChannel) {
  // Application receives that pin the channel (as the Chant codec always
  // does — channel 0 in tag-overload mode) can never capture collective
  // traffic, which rides in the bit-29 group channel space.
  nx::Machine m{nx::Machine::Config{2, 1, nx::NetModel::zero(), 1 << 16}};
  m.run([&](nx::Endpoint& ep) {
    nx::Group g(ep, all_members(2), 33);
    char buf[64];
    nx::Handle h = ep.irecv(nx::kAnyPe, nx::kAnyProc, 0, nx::kTagAny, buf,
                            sizeof buf, /*channel=*/0, /*channel_mask=*/~0);
    long v = ep.pe() == 0 ? 5 : -1;
    g.broadcast(&v, sizeof v, 0);
    g.barrier();
    EXPECT_EQ(v, 5);
    EXPECT_FALSE(ep.msgdone(h));
    ep.cancel_recv(h);
  });
}

TEST(NxGroupMisc, DeathOnBadConfig) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  nx::Machine m{nx::Machine::Config{2, 1, nx::NetModel::zero(), 1 << 16}};
  EXPECT_DEATH(nx::Group(m.endpoint(0, 0), {{1, 0}}, 5), "not a member");
  EXPECT_DEATH(nx::Group(m.endpoint(0, 0), {{0, 0}}, 0), "out of range");
}

}  // namespace
