// sim_epoch_gate_test.cpp — schedule exploration of the arrival-epoch
// gate (nx/endpoint.hpp): under virtual time, injected delays park
// messages in the in-flight state, and every delivery thereafter depends
// on the gate reopening (progress_pending) and the drain revealing
// entries in global arrival order. Conservation and ordering must hold
// on every explored interleaving.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "chant/chant.hpp"
#include "chant_test_util.hpp"
#include "sim/explore.hpp"

namespace {

using chant::Gid;
using chant::PollPolicy;
using chant::Runtime;

struct SenderCtx {
  Runtime* rt;
  int msgs;
};

void* seq_sender(void* p) {
  auto* c = static_cast<SenderCtx*>(p);
  for (int i = 0; i < c->msgs; ++i) {
    // Self-process traffic: with a virtual clock installed even local
    // messages run through the timed deliver-at path, so a 1-process
    // world (deterministically replayable) still exercises in-flight
    // queuing, the epoch gate and the drain.
    c->rt->send(7, &i, sizeof i, Gid{c->rt->pe(), c->rt->process(), 1});
    c->rt->yield();
  }
  return nullptr;
}

/// All messages delivered exactly once (no loss, no reorder within a
/// source) despite injected cross-source delay; the receiver's wildcard
/// receives observe each source's stream in FIFO order.
void delay_body(sim::Session& s, PollPolicy policy, int senders, int msgs) {
  chant::World::Config cfg;
  cfg.pes = 1;
  cfg.rt.policy = policy;
  cfg.rt.start_server = false;
  s.apply(cfg);
  chant::World w(cfg);
  w.run([&](Runtime& rt) {
    std::vector<SenderCtx> ctxs(static_cast<std::size_t>(senders),
                                SenderCtx{&rt, msgs});
    std::vector<Gid> gids;
    for (auto& c : ctxs) {
      gids.push_back(rt.create(&seq_sender, &c, rt.pe(), rt.process()));
    }
    std::map<int, int> next_from;  // src lid -> expected next seq
    for (int k = 0; k < senders * msgs; ++k) {
      int got = -1;
      const chant::MsgInfo mi =
          rt.recv(7, &got, sizeof got, chant::kAnyThread);
      ASSERT_EQ(mi.len, sizeof got);
      EXPECT_EQ(got, next_from[mi.src.thread]++)
          << "per-source FIFO violated for lid " << mi.src.thread;
    }
    for (const Gid& g : gids) rt.join(g);
    EXPECT_EQ(rt.endpoint().unexpected_count(), 0u);
  });
}

class SimEpochGate : public ::testing::TestWithParam<PollPolicy> {};

TEST_P(SimEpochGate, DelayedMessagesAllDeliverInSourceOrder) {
  sim::Options opt;
  opt.seeds = 256;
  opt.base_seed = 0xE10C;
  opt.faults.delay_p = 0.5;
  opt.faults.max_delay_ns = 30'000;
  const sim::Result res = sim::explore(opt, [&](sim::Session& s) {
    delay_body(s, GetParam(), /*senders=*/3, /*msgs=*/5);
  });
  EXPECT_FALSE(res.failed);
  EXPECT_EQ(res.iterations, 256u);
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, SimEpochGate,
    ::testing::Values(PollPolicy::ThreadPolls, PollPolicy::SchedulerPollsWQ,
                      PollPolicy::SchedulerPollsPS),
    [](const auto& info) {
      switch (info.param) {
        case PollPolicy::ThreadPolls: return "TP";
        case PollPolicy::SchedulerPollsWQ: return "WQ";
        case PollPolicy::SchedulerPollsPS: return "PS";
      }
      return "?";
    });

TEST(SimEpochGateFaults, DuplicatesAreDeliveredAndCounted) {
  // Duplicated messages are real deliveries (at-least-once semantics of
  // a faulty wire); conservation: received == sent + duplicated.
  sim::Options opt;
  opt.seeds = 128;
  opt.base_seed = 0xD0B1E;
  opt.faults.delay_p = 0.3;
  opt.faults.dup_p = 0.3;
  const sim::Result res = sim::explore(opt, [](sim::Session& s) {
    chant::World::Config cfg;
    cfg.pes = 1;
    cfg.rt.policy = PollPolicy::SchedulerPollsWQ;
    cfg.rt.start_server = false;
    s.apply(cfg);
    chant::World w(cfg);
    w.run([&](Runtime& rt) {
      constexpr int kMsgs = 8;
      SenderCtx c{&rt, kMsgs};
      const Gid g = rt.create(&seq_sender, &c, rt.pe(), rt.process());
      rt.join(g);  // sends are locally blocking: fault draws now final
      const auto dup = s.faults()->stats().duplicated;
      const int total = kMsgs + static_cast<int>(dup);
      int last = -1;
      for (int k = 0; k < total; ++k) {
        int got = -1;
        rt.recv(7, &got, sizeof got, chant::kAnyThread);
        EXPECT_GE(got, last) << "duplicate delivered before its original";
        last = got;
      }
      EXPECT_EQ(rt.endpoint().counters().duplicated.load(), dup);
      EXPECT_EQ(rt.endpoint().unexpected_count(), 0u);
    });
  });
  EXPECT_FALSE(res.failed);
  EXPECT_EQ(res.iterations, 128u);
}

TEST(SimEpochGateFaults, DropsVanishWithoutWedgingSenders) {
  // Dropped messages complete the send (a rendezvous sender must never
  // wedge) and are never delivered: received == sent - dropped.
  sim::Options opt;
  opt.seeds = 128;
  opt.base_seed = 0xD407;
  opt.faults.drop_p = 0.4;
  const sim::Result res = sim::explore(opt, [](sim::Session& s) {
    chant::World::Config cfg;
    cfg.pes = 1;
    cfg.rt.policy = PollPolicy::SchedulerPollsPS;
    cfg.rt.start_server = false;
    s.apply(cfg);
    chant::World w(cfg);
    w.run([&](Runtime& rt) {
      constexpr int kMsgs = 10;
      SenderCtx c{&rt, kMsgs};
      const Gid g = rt.create(&seq_sender, &c, rt.pe(), rt.process());
      rt.join(g);  // joined => every send completed, dropped or not
      const auto dropped = s.faults()->stats().dropped;
      const int total = kMsgs - static_cast<int>(dropped);
      int last = -1;
      for (int k = 0; k < total; ++k) {
        int got = -1;
        rt.recv(7, &got, sizeof got, chant::kAnyThread);
        EXPECT_GT(got, last) << "surviving messages reordered";
        last = got;
      }
      EXPECT_EQ(rt.endpoint().counters().dropped.load(), dropped);
      EXPECT_EQ(rt.endpoint().unexpected_count(), 0u);
    });
  });
  EXPECT_FALSE(res.failed);
  EXPECT_EQ(res.iterations, 128u);
}

}  // namespace
