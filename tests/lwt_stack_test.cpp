// lwt_stack_test.cpp — guard-paged stack allocation and pooling.
#include "lwt/stack.hpp"

#include <gtest/gtest.h>

#include <csignal>
#include <cstring>

namespace {

TEST(StackPool, RoundsUpToWholePages) {
  lwt::StackPool pool;
  const std::size_t pz = lwt::page_size();
  lwt::Stack s = pool.acquire(1);
  EXPECT_EQ(s.size, pz);
  lwt::Stack s2 = pool.acquire(pz + 1);
  EXPECT_EQ(s2.size, 2 * pz);
  pool.release(s);
  pool.release(s2);
}

TEST(StackPool, ReusesReleasedStacks) {
  lwt::StackPool pool;
  lwt::Stack s = pool.acquire(64 * 1024);
  void* base = s.base;
  pool.release(s);
  EXPECT_EQ(pool.cached(), 1u);
  lwt::Stack t = pool.acquire(64 * 1024);
  EXPECT_EQ(t.base, base);  // same mapping came back
  EXPECT_EQ(pool.cached(), 0u);
  pool.release(t);
}

TEST(StackPool, DifferentSizesDoNotAlias) {
  lwt::StackPool pool;
  lwt::Stack small = pool.acquire(16 * 1024);
  pool.release(small);
  lwt::Stack big = pool.acquire(256 * 1024);
  EXPECT_GE(big.size, 256u * 1024u);
  EXPECT_EQ(pool.cached(), 1u);  // the small one is still cached
  pool.release(big);
}

TEST(StackPool, TrimReleasesEverything) {
  lwt::StackPool pool;
  for (int i = 0; i < 4; ++i) pool.release(pool.acquire(32 * 1024));
  EXPECT_GT(pool.cached(), 0u);
  pool.trim();
  EXPECT_EQ(pool.cached(), 0u);
}

TEST(StackPool, StackIsWritableEverywhere) {
  lwt::StackPool pool;
  lwt::Stack s = pool.acquire(64 * 1024);
  std::memset(s.base, 0xAB, s.size);  // would fault if mapping were short
  EXPECT_EQ(static_cast<unsigned char*>(s.base)[0], 0xAB);
  EXPECT_EQ(static_cast<unsigned char*>(s.base)[s.size - 1], 0xAB);
  pool.release(s);
}

using StackDeathTest = ::testing::Test;

TEST(StackDeathTest, GuardPageCatchesOverflow) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        lwt::StackPool pool;
        lwt::Stack s = pool.acquire(16 * 1024);
        // One byte below the usable base lies the PROT_NONE guard page.
        static_cast<volatile char*>(s.base)[-1] = 1;
      },
      "");
}

}  // namespace
