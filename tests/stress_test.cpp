// stress_test.cpp — randomized long-running mixes of every runtime
// facility at once: p2p, RSR (sync/async), remote thread churn, SDA
// traffic. Seeds are fixed, so failures replay deterministically up to
// OS scheduling; invariants are end-state checks, not orderings.
#include <gtest/gtest.h>

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <random>

#include "chant/sda.hpp"
#include "chant_test_util.hpp"
#include "harness/workload.hpp"

namespace {

using chant::Gid;
using chant::MsgInfo;
using chant::Runtime;

/// Seed bookkeeping for the randomized mixes: the seed is logged up
/// front, overridable via CHANT_STRESS_SEED (the nightly job sets a
/// fresh one per run), and on failure the exact repro command is
/// printed so the failing run can be replayed verbatim.
class StressSeed {
 public:
  StressSeed() {
    if (const char* e = std::getenv("CHANT_STRESS_SEED")) {
      seed_ = std::strtoull(e, nullptr, 0);
    }
    std::fprintf(stderr,
                 "[ STRESS ] seed %" PRIu64
                 " (override with CHANT_STRESS_SEED=<n>)\n",
                 seed_);
    ::testing::Test::RecordProperty("stress_seed", std::to_string(seed_));
  }

  ~StressSeed() {
    if (!::testing::Test::HasFailure()) return;
    const auto* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    std::fprintf(stderr,
                 "[ STRESS ] repro: CHANT_STRESS_SEED=%" PRIu64
                 " ctest -R '%s.%s' --output-on-failure\n",
                 seed_, info != nullptr ? info->test_suite_name() : "Stress",
                 info != nullptr ? info->name() : "?");
  }

  std::uint64_t value() const { return seed_; }

 private:
  std::uint64_t seed_ = 0xC4A27u;  // default: fixed, deterministic CI
};

void accumulate_handler(Runtime&, Runtime::RsrContext&, const void* arg,
                        std::size_t len, std::vector<std::uint8_t>& reply) {
  long v = 0;
  if (len >= sizeof v) std::memcpy(&v, arg, sizeof v);
  const long out = v + 1;
  reply.resize(sizeof out);
  std::memcpy(reply.data(), &out, sizeof out);
}

TEST(Stress, LocalThreadChurnReusesEverything) {
  chant::World::Config cfg;
  cfg.pes = 1;
  chant::World w(cfg);
  w.run([](Runtime& rt) {
    for (long round = 0; round < 3000; ++round) {
      const Gid g = rt.create(
          [](void* a) -> void* { return a; },
          reinterpret_cast<void*>(round), PTHREAD_CHANTER_LOCAL,
          PTHREAD_CHANTER_LOCAL);
      ASSERT_LE(g.thread, rt.codec().max_lid());
      ASSERT_EQ(rt.join(g), reinterpret_cast<void*>(round));
    }
  });
}

TEST(Stress, MixedFacilitiesRandomizedWorkload) {
  StressSeed seed;
  chant::World::Config cfg;
  cfg.pes = 2;
  cfg.rt.policy = chant::PollPolicy::SchedulerPollsPS;
  chant::World w(cfg);
  const int acc = w.register_handler(&accumulate_handler);
  w.run([&](Runtime& rt) {
    const Gid peer_main{1 - rt.pe(), 0, chant::kMainLid};
    std::mt19937 rng(static_cast<unsigned>(
        seed.value() + static_cast<unsigned>(rt.pe()) * 101u + 7u));
    long rsr_sum = 0;
    long p2p_sum = 0;
    long spawn_sum = 0;
    constexpr int kOps = 400;
    std::vector<int> async_pending;
    for (int op = 0; op < kOps; ++op) {
      switch (rng() % 4) {
        case 0: {  // sync RSR to the other pe
          long v = static_cast<long>(rng() % 1000);
          const auto rep = rt.call(1 - rt.pe(), 0, acc, &v, sizeof v);
          long out = 0;
          std::memcpy(&out, rep.data(), sizeof out);
          ASSERT_EQ(out, v + 1);
          rsr_sum += out;
          break;
        }
        case 1: {  // async RSR, harvested opportunistically
          long v = 7;
          async_pending.push_back(
              rt.call_async(1 - rt.pe(), 0, acc, &v, sizeof v));
          if (async_pending.size() >= 8) {
            for (int h : async_pending) {
              const auto rep = rt.call_wait(h);
              long out = 0;
              std::memcpy(&out, rep.data(), sizeof out);
              ASSERT_EQ(out, 8);
            }
            async_pending.clear();
          }
          break;
        }
        case 2: {  // echo p2p with the peer's *server*-side echo thread
          // Self-exchange keeps both mains free-running: send to self.
          long v = static_cast<long>(rng() % 100);
          rt.send(80, &v, sizeof v, rt.self());
          long got = -1;
          rt.recv(80, &got, sizeof got, rt.self());
          ASSERT_EQ(got, v);
          p2p_sum += got;
          break;
        }
        case 3: {  // remote thread spawn/join churn under the traffic
          const Gid g = rt.create(
              [](void* a) -> void* {
                Runtime::current()->yield();
                return a;
              },
              reinterpret_cast<void*>(static_cast<long>(op)), 1 - rt.pe(),
              0);
          ASSERT_EQ(rt.join(g),
                    reinterpret_cast<void*>(static_cast<long>(op)));
          spawn_sum += op;
          break;
        }
      }
    }
    for (int h : async_pending) (void)rt.call_wait(h);
    // Cross-check with the peer that both sides got through everything.
    long done = 1;
    rt.send(81, &done, sizeof done, peer_main);
    long peer_done = 0;
    rt.recv(81, &peer_done, sizeof peer_done, peer_main);
    EXPECT_EQ(peer_done, 1);
    harness::consume(
        static_cast<std::uint64_t>(rsr_sum + p2p_sum + spawn_sum));
  });
}

TEST(Stress, ManySdaInstancesInParallel) {
  struct Cell {
    long v = 0;
  };
  chant::World::Config cfg;
  cfg.pes = 2;
  chant::World w(cfg);
  chant::SdaClass<Cell> cls(w);
  const int m = cls.method<long, long>(+[](Runtime& rt, Cell& c,
                                           const long& d, long& out) {
    c.v += d;
    out = c.v;
    (void)rt;
  });
  w.run([&](Runtime& rt) {
    if (rt.pe() != 0) return;
    constexpr int kInstances = 24;
    std::vector<chant::SdaRef> refs;
    for (int i = 0; i < kInstances; ++i) {
      refs.push_back(cls.create(rt, i % 2, 0));
    }
    // Interleave async bumps across every instance.
    std::vector<int> handles;
    for (int round = 0; round < 10; ++round) {
      for (int i = 0; i < kInstances; ++i) {
        handles.push_back(cls.invoke_async(rt, refs[(size_t)i], m,
                                           static_cast<long>(i + 1)));
      }
      long out = 0;
      for (int h : handles) cls.await(rt, h, out);
      handles.clear();
    }
    for (int i = 0; i < kInstances; ++i) {
      long out = 0;
      cls.invoke(rt, refs[(size_t)i], m, 0L, out);
      EXPECT_EQ(out, 10L * (i + 1));
      cls.destroy(rt, refs[(size_t)i]);
    }
  });
}

}  // namespace
