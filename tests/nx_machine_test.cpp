// nx_machine_test.cpp — machine lifecycle, process hosting, barriers,
// the network timing model.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "nx/machine.hpp"

namespace {

TEST(NxMachine, EveryProcessRunsExactlyOnce) {
  nx::Machine m{nx::Machine::Config{3, 2, nx::NetModel::zero(), 1 << 16}};
  EXPECT_EQ(m.total_processes(), 6);
  std::mutex mu;
  std::set<std::pair<int, int>> seen;
  m.run([&](nx::Endpoint& ep) {
    std::lock_guard<std::mutex> lk(mu);
    seen.insert({ep.pe(), ep.proc()});
  });
  EXPECT_EQ(seen.size(), 6u);
  EXPECT_TRUE(seen.count({2, 1}));
}

TEST(NxMachine, EndpointAccessorsAgree) {
  nx::Machine m{nx::Machine::Config{2, 2, nx::NetModel::zero(), 1 << 16}};
  EXPECT_EQ(m.endpoint(1, 1).pe(), 1);
  EXPECT_EQ(m.endpoint(1, 1).proc(), 1);
  EXPECT_EQ(&m.endpoint(0, 0).machine(), &m);
  EXPECT_EQ(m.flat_index(1, 1), 3);
}

TEST(NxMachine, ExceptionsPropagateFromProcesses) {
  nx::Machine m{nx::Machine::Config{2, 1, nx::NetModel::zero(), 1 << 16}};
  EXPECT_THROW(m.run([&](nx::Endpoint& ep) {
                 if (ep.pe() == 1) throw std::runtime_error("boom");
               }),
               std::runtime_error);
}

TEST(NxMachine, OsBarrierRendezvousesAllProcesses) {
  nx::Machine m{nx::Machine::Config{4, 1, nx::NetModel::zero(), 1 << 16}};
  std::atomic<int> before{0};
  std::atomic<bool> violated{false};
  m.run([&](nx::Endpoint&) {
    before.fetch_add(1);
    m.os_barrier();
    if (before.load() != 4) violated = true;
    m.os_barrier();  // reusable
  });
  EXPECT_FALSE(violated.load());
}

TEST(NxMachine, CanBeRunRepeatedly) {
  nx::Machine m{nx::Machine::Config{2, 1, nx::NetModel::zero(), 1 << 16}};
  for (int round = 0; round < 3; ++round) {
    m.run([&](nx::Endpoint& ep) {
      char c = 'x';
      if (ep.pe() == 0) {
        ep.csend(1, 0, round, &c, 1);
      } else {
        ep.crecv(0, 0, round, nx::kTagExact, &c, 1);
      }
    });
  }
}

using NxMachineDeathTest = ::testing::Test;

TEST(NxMachineDeathTest, InvalidConfigAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(nx::Machine(nx::Machine::Config{0, 1}), "invalid");
}

TEST(NxMachineDeathTest, EndpointOutOfRangeAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  nx::Machine m{nx::Machine::Config{2, 1, nx::NetModel::zero(), 1 << 16}};
  EXPECT_DEATH((void)m.endpoint(5, 0), "out of range");
}

// ------------------------------------------------------------- net model

TEST(NetModel, ZeroModelHasNoDelay) {
  constexpr nx::NetModel z = nx::NetModel::zero();
  EXPECT_TRUE(z.is_zero());
  EXPECT_EQ(z.delay_ns(1 << 20), 0u);
}

TEST(NetModel, DelayIsLinearInBytes) {
  const nx::NetModel p = nx::NetModel::paragon();
  const auto d1 = p.delay_ns(1024);
  const auto d2 = p.delay_ns(2048);
  const auto d4 = p.delay_ns(4096);
  EXPECT_GT(d1, 0u);
  // Equal byte increments add equal time: d2-d1 == d4-d2 within rounding.
  EXPECT_NEAR(static_cast<double>(d2 - d1),
              static_cast<double>(d4 - d2) / 2.0, 2.0);
}

TEST(NetModel, MessagesAreInvisibleUntilDelivered) {
  nx::NetModel slow{0.0, 0.0};
  slow.latency_us = 20000.0;  // 20 ms
  nx::Machine m{nx::Machine::Config{2, 1, slow, 1 << 16}};
  m.run([&](nx::Endpoint& ep) {
    if (ep.pe() == 0) {
      char c = 'd';
      ep.csend(1, 0, 1, &c, 1);
    } else {
      // Wait for the message to be queued (but not yet deliverable).
      while (ep.unexpected_count() == 0) std::this_thread::yield();
      char buf[4];
      nx::Handle h = ep.irecv(0, 0, 1, nx::kTagExact, buf, sizeof buf);
      EXPECT_FALSE(ep.msgtest(h));  // still "in flight"
      const auto t0 = nx::now_ns();
      const nx::MsgHeader out = ep.msgwait(h);
      const auto waited_ms = static_cast<double>(nx::now_ns() - t0) / 1e6;
      EXPECT_EQ(out.len, 1u);
      EXPECT_GT(waited_ms, 5.0);  // most of the modelled latency honoured
    }
  });
}

TEST(NetModel, LocalMessagesSkipTheWire) {
  // Same-process traffic never crosses the interconnect: with a huge
  // modelled latency, a self-send still delivers immediately.
  nx::NetModel slow{1e6, 0.0};
  nx::Machine m{nx::Machine::Config{1, 1, slow, 1 << 16}};
  nx::Endpoint& ep = m.endpoint(0, 0);
  char c = 'l';
  ep.csend(0, 0, 1, &c, 1);
  char buf[4];
  nx::Handle h = ep.irecv(0, 0, 1, nx::kTagExact, buf, sizeof buf);
  EXPECT_TRUE(ep.msgtest(h));
  EXPECT_EQ(buf[0], 'l');
}

TEST(NetModel, DeliveryStaysFifoPerSourceDespiteSizeSkew) {
  // A big (slow) message followed by a tiny (fast) one with the same tag:
  // the ordered-channel rule must deliver them in send order.
  nx::NetModel model{1.0, 0.05};  // per-byte dominates
  nx::Machine m{nx::Machine::Config{1, 1, model, 1 << 16}};
  nx::Endpoint& ep = m.endpoint(0, 0);
  std::vector<char> big(4096, 'B');
  char small = 'S';
  ep.csend(0, 0, 9, big.data(), big.size());
  ep.csend(0, 0, 9, &small, 1);
  std::vector<char> buf(4096);
  const nx::MsgHeader h1 =
      ep.crecv(0, 0, 9, nx::kTagExact, buf.data(), buf.size());
  EXPECT_EQ(h1.len, 4096u);
  const nx::MsgHeader h2 =
      ep.crecv(0, 0, 9, nx::kTagExact, buf.data(), buf.size());
  EXPECT_EQ(h2.len, 1u);
}

}  // namespace
