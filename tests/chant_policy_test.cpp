// chant_policy_test.cpp — the polling policies' *distinguishing*
// behaviour (the semantics-equivalence half lives in chant_p2p_test):
// which counters move under each algorithm, mirroring §4.2's analysis.
#include <gtest/gtest.h>

#include <vector>

#include "chant_test_util.hpp"

namespace {

using chant::Gid;
using chant::PollPolicy;
using chant::Runtime;

struct PolicyCounters {
  std::uint64_t full_switches = 0;
  std::uint64_t partial_tests = 0;
  std::uint64_t wq_tests = 0;
  std::uint64_t msgtests = 0;
  std::uint64_t testany = 0;
  double avg_waiting = 0.0;
};

/// Runs a small Fig.-9-style workload (8 threads/pe, 10 iterations,
/// some compute) under `policy` and captures the per-pe0 counters.
PolicyCounters run_workload(PollPolicy policy, bool testany) {
  chant::World::Config cfg;
  cfg.pes = 2;
  cfg.rt.policy = policy;
  cfg.rt.wq_use_testany = testany;
  cfg.rt.start_server = false;  // isolate the p2p layer, as in §4.1
  chant::World w(cfg);
  PolicyCounters out;
  w.run([&](Runtime& rt) {
    constexpr int kThreads = 8;
    constexpr int kIters = 10;
    struct Ctx {
      Runtime* rt;
      int index;
    };
    std::vector<Ctx> ctxs;
    ctxs.reserve(kThreads);
    std::vector<Gid> mine;
    for (int i = 0; i < kThreads; ++i) {
      ctxs.push_back(Ctx{&rt, i});
    }
    for (int i = 0; i < kThreads; ++i) {
      mine.push_back(rt.create(
          [](void* p) -> void* {
            auto* c = static_cast<Ctx*>(p);
            Runtime& r = *c->rt;
            // Peer thread has the same lid on the other pe (creation
            // order is identical in both processes).
            for (int it = 0; it < kIters; ++it) {
              long payload = c->index * 1000 + it;
              const Gid peer{1 - r.pe(), 0, r.self().thread};
              r.send(50, &payload, sizeof payload, peer);
              long got = 0;
              r.recv(50, &got, sizeof got, peer);
              EXPECT_EQ(got % 1000, it);
            }
            return nullptr;
          },
          &ctxs[static_cast<std::size_t>(i)], PTHREAD_CHANTER_LOCAL,
          PTHREAD_CHANTER_LOCAL));
    }
    for (const Gid& g : mine) rt.join(g);
    if (rt.pe() == 0) {
      const auto& st = rt.sched_stats();
      auto& nc = rt.net_counters();
      out.full_switches = st.full_switches;
      out.partial_tests = st.partial_poll_tests;
      out.wq_tests = st.wq_poll_tests;
      out.msgtests = nc.msgtest_calls.load();
      out.testany = nc.testany_calls.load();
      out.avg_waiting = st.avg_waiting();
    }
  });
  return out;
}

TEST(PolicyBehaviour, ThreadPollsDoesOnlyFullSwitches) {
  const auto c = run_workload(PollPolicy::ThreadPolls, false);
  EXPECT_EQ(c.partial_tests, 0u);
  EXPECT_EQ(c.wq_tests, 0u);
  EXPECT_GT(c.msgtests, 0u);
}

TEST(PolicyBehaviour, PartialSwitchAvoidsFullRestores) {
  const auto tp = run_workload(PollPolicy::ThreadPolls, false);
  const auto ps = run_workload(PollPolicy::SchedulerPollsPS, false);
  EXPECT_GT(ps.partial_tests, 0u);
  // The paper's Figure 11: PS completes far fewer full switches than TP
  // because failed polls cost only a partial switch.
  EXPECT_LT(ps.full_switches, tp.full_switches);
}

TEST(PolicyBehaviour, WaitingQueueScansEverythingEachPoint) {
  const auto ps = run_workload(PollPolicy::SchedulerPollsPS, false);
  const auto wq = run_workload(PollPolicy::SchedulerPollsWQ, false);
  EXPECT_GT(wq.wq_tests, 0u);
  // The paper's Figure 12: WQ performs far more tests than PS because it
  // re-tests every parked request at every scheduling point.
  EXPECT_GT(wq.wq_tests + wq.msgtests, ps.partial_tests + ps.msgtests);
}

TEST(PolicyBehaviour, TestanyAblationCollapsesWqTestCount) {
  const auto wq = run_workload(PollPolicy::SchedulerPollsWQ, false);
  const auto ta = run_workload(PollPolicy::SchedulerPollsWQ, true);
  EXPECT_GT(ta.testany, 0u);
  EXPECT_EQ(ta.wq_tests, 0u);  // per-entry scans fully replaced
  // One testany call replaces a whole scan: total "calls into the
  // communication layer" drop (the paper's §4.2 hypothesis for MPI).
  EXPECT_LT(ta.testany + ta.msgtests, wq.wq_tests + wq.msgtests);
}

TEST(PolicyBehaviour, WaitingThreadsAreObserved) {
  const auto ps = run_workload(PollPolicy::SchedulerPollsPS, false);
  // With 8 threads ping-ponging, some were always waiting (Figure 13).
  EXPECT_GT(ps.avg_waiting, 0.1);
  EXPECT_LT(ps.avg_waiting, 8.1);
}

TEST(PolicyBehaviour, ServerOffMeansNoInternalTraffic) {
  chant::World::Config cfg;
  cfg.pes = 1;
  cfg.rt.start_server = false;
  chant::World w(cfg);
  w.run([](Runtime& rt) {
    EXPECT_EQ(rt.local_tcb(Gid{rt.pe(), rt.process(), chant::kServerLid}),
              nullptr);
    // p2p still works without a server.
    long v = 3;
    rt.send(1, &v, sizeof v, rt.self());
    long got = 0;
    rt.recv(1, &got, sizeof got, rt.self());
    EXPECT_EQ(got, 3);
  });
}

}  // namespace
