// lwt_timer_test.cpp — the timer wheel and every timed wait built on it:
// sleep_for/sleep_until, timed mutex / condvar / semaphore / rwlock
// acquires, and timed join. Deadlines here use the production steady
// clock with generous margins; deterministic timeout *interleavings* are
// exercised under the VirtualClock in sim_timer_test.cpp (tier 2).
#include "lwt/timer.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "lwt/lwt.hpp"

namespace {

constexpr std::uint64_t kMs = 1'000'000;

// ------------------------------------------------------------ timer wheel

TEST(TimerWheel, FiresInDeadlineThenArmOrder) {
  lwt::TimerWheel w;
  // Tcb pointers are opaque to the wheel; fake distinct ones.
  auto* a = reinterpret_cast<lwt::Tcb*>(0x10);
  auto* b = reinterpret_cast<lwt::Tcb*>(0x20);
  auto* c = reinterpret_cast<lwt::Tcb*>(0x30);
  w.arm(300, a);
  w.arm(100, b);
  w.arm(100, c);  // same tick as b: arm order breaks the tie
  EXPECT_EQ(w.armed(), 3u);
  EXPECT_EQ(w.next_deadline(), 100u);

  std::vector<lwt::Tcb*> fired;
  auto fire = [](void* ctx, lwt::Tcb* t) {
    static_cast<std::vector<lwt::Tcb*>*>(ctx)->push_back(t);
  };
  EXPECT_EQ(w.expire(99, fire, &fired), 0u);
  EXPECT_EQ(w.expire(100, fire, &fired), 2u);
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[0], b);
  EXPECT_EQ(fired[1], c);
  EXPECT_EQ(w.next_deadline(), 300u);
  EXPECT_EQ(w.expire(1000, fire, &fired), 1u);
  EXPECT_EQ(fired.back(), a);
  EXPECT_EQ(w.armed(), 0u);
  EXPECT_EQ(w.next_deadline(), lwt::kNoDeadline);
}

TEST(TimerWheel, DisarmedTimerNeverFires) {
  lwt::TimerWheel w;
  auto* a = reinterpret_cast<lwt::Tcb*>(0x10);
  const auto id = w.arm(100, a);
  EXPECT_TRUE(w.disarm(id));
  EXPECT_FALSE(w.disarm(id));  // second disarm: already gone
  int fired = 0;
  EXPECT_EQ(w.expire(1000,
                     [](void* ctx, lwt::Tcb*) { ++*static_cast<int*>(ctx); },
                     &fired),
            0u);
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(w.armed(), 0u);
}

// ------------------------------------------------------------------ sleep

TEST(Sleep, SleepForAdvancesClockAndCounts) {
  lwt::run([] {
    const std::uint64_t before = lwt::now();
    lwt::sleep_for(2 * kMs);
    EXPECT_GE(lwt::now(), before + 2 * kMs);
    const auto& st = lwt::Scheduler::current()->stats();
    EXPECT_GE(st.sleeps, 1u);
    EXPECT_GE(st.timer_fires, 1u);
    EXPECT_EQ(lwt::Scheduler::current()->armed_timers(), 0u);
  });
}

TEST(Sleep, SleepUntilPastDeadlineIsANoopYield) {
  lwt::run([] {
    lwt::sleep_until(0);  // already expired
    SUCCEED();
  });
}

TEST(Sleep, SleepersWakeInDeadlineOrder) {
  lwt::run([] {
    std::vector<int> order;
    // The cushion keeps every deadline in the future until all three
    // sleepers have parked, even under sanitizer slowdown; otherwise a
    // late spawner sees an expired deadline and yields straight through,
    // jumping the queue.
    const std::uint64_t base = lwt::now() + 40 * kMs;
    std::vector<lwt::Tcb*> ts;
    for (int i = 3; i >= 1; --i) {  // spawn in reverse deadline order
      ts.push_back(lwt::go([&order, base, i] {
        lwt::sleep_until(base + static_cast<std::uint64_t>(i) * 10 * kMs);
        order.push_back(i);
      }));
    }
    for (auto* t : ts) lwt::join(t);
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], 1);
    EXPECT_EQ(order[1], 2);
    EXPECT_EQ(order[2], 3);
  });
}

// ------------------------------------------------------------ timed mutex

TEST(TimedMutex, TimesOutWhileHeldThenSucceeds) {
  lwt::run([] {
    lwt::Mutex m;
    m.lock();
    lwt::Tcb* t = lwt::go([&] {
      EXPECT_FALSE(m.try_lock_for(1 * kMs));  // held: must time out
      EXPECT_TRUE(m.try_lock_for(200 * kMs));  // released below
      m.unlock();
    });
    lwt::sleep_for(5 * kMs);  // let the waiter time out first
    m.unlock();
    lwt::join(t);
    EXPECT_FALSE(m.locked());
    EXPECT_GE(lwt::Scheduler::current()->stats().timer_fires, 1u);
  });
}

TEST(TimedMutex, UncontendedTimedLockTakesFastPath) {
  lwt::run([] {
    lwt::Mutex m;
    const auto armed_before = lwt::Scheduler::current()->stats().timers_armed;
    EXPECT_TRUE(m.try_lock_for(100 * kMs));
    m.unlock();
    // Fast path: no timer should have been armed at all.
    EXPECT_EQ(lwt::Scheduler::current()->stats().timers_armed, armed_before);
  });
}

TEST(TimedMutex, TimedOutWaiterDoesNotInheritLock) {
  lwt::run([] {
    lwt::Mutex m;
    m.lock();
    bool timed_out = false;
    lwt::Tcb* t = lwt::go([&] { timed_out = !m.try_lock_for(1 * kMs); });
    lwt::join(t);
    EXPECT_TRUE(timed_out);
    // The timed-out waiter must have left the wait queue: unlock may not
    // hand the lock to it.
    m.unlock();
    EXPECT_FALSE(m.locked());
  });
}

// ---------------------------------------------------------- timed condvar

TEST(TimedCondVar, TimesOutAndReacquiresMutex) {
  lwt::run([] {
    lwt::Mutex m;
    lwt::CondVar cv;
    m.lock();
    const bool signalled =
        cv.wait_until(m, lwt::Scheduler::current()->deadline_after(1 * kMs));
    EXPECT_FALSE(signalled);
    EXPECT_EQ(m.owner(), lwt::self());  // reacquired on the timeout path
    m.unlock();
  });
}

TEST(TimedCondVar, SignalBeatsDeadline) {
  lwt::run([] {
    lwt::Mutex m;
    lwt::CondVar cv;
    bool ready = false;
    lwt::Tcb* t = lwt::go([&] {
      lwt::LockGuard g(m);
      ready = true;
      cv.signal();
    });
    m.lock();
    const std::uint64_t deadline =
        lwt::Scheduler::current()->deadline_after(500 * kMs);
    const bool ok = cv.wait_until(m, deadline, [&] { return ready; });
    EXPECT_TRUE(ok);
    m.unlock();
    lwt::join(t);
  });
}

TEST(TimedCondVar, PredicateCheckedOnTimeout) {
  lwt::run([] {
    lwt::Mutex m;
    lwt::CondVar cv;
    m.lock();
    // Timeout with a pred that is already true: overload returns true.
    EXPECT_TRUE(cv.wait_until(
        m, lwt::Scheduler::current()->deadline_after(1 * kMs),
        [] { return true; }));
    m.unlock();
  });
}

// -------------------------------------------------------- timed semaphore

TEST(TimedSemaphore, AcquireTimesOutThenSucceeds) {
  lwt::run([] {
    lwt::Semaphore sem(0);
    EXPECT_FALSE(sem.try_acquire_until(
        lwt::Scheduler::current()->deadline_after(1 * kMs)));
    sem.release();
    EXPECT_TRUE(sem.try_acquire_until(
        lwt::Scheduler::current()->deadline_after(1 * kMs)));
  });
}

// ----------------------------------------------------------- timed rwlock

TEST(TimedRwLock, WriterTimesOutUnderReaderThenReaderTimesOutUnderWriter) {
  lwt::run([] {
    lwt::RwLock rw;
    rw.lock_shared();
    EXPECT_FALSE(rw.try_lock_until(
        lwt::Scheduler::current()->deadline_after(1 * kMs)));
    rw.unlock_shared();
    rw.lock();
    lwt::Tcb* t = lwt::go([&] {
      EXPECT_FALSE(rw.try_lock_shared_until(
          lwt::Scheduler::current()->deadline_after(1 * kMs)));
    });
    lwt::join(t);
    rw.unlock();
    // Both sides acquirable again after the timeouts.
    EXPECT_TRUE(rw.try_lock_until(
        lwt::Scheduler::current()->deadline_after(1 * kMs)));
    rw.unlock();
  });
}

// ------------------------------------------------------------- timed join

TEST(TimedJoin, TimeoutRelinquishesClaimAndJoinStillWorks) {
  lwt::run([] {
    lwt::Semaphore gate(0);
    lwt::Tcb* t = lwt::go([&]() -> void {
      gate.acquire();
    });
    void* rv = reinterpret_cast<void*>(0xdead);
    EXPECT_FALSE(lwt::Scheduler::current()->join_until(
        t, lwt::Scheduler::current()->deadline_after(1 * kMs), &rv));
    gate.release();
    // The timed-out join relinquished its claim: a second join succeeds.
    EXPECT_EQ(lwt::join(t), nullptr);
  });
}

TEST(TimedJoin, CompletionBeforeDeadlineReturnsValue) {
  lwt::run([] {
    lwt::Tcb* t = lwt::go([] {});
    lwt::yield();  // let it finish
    void* rv = nullptr;
    EXPECT_TRUE(lwt::Scheduler::current()->join_until(
        t, lwt::Scheduler::current()->deadline_after(500 * kMs), &rv));
    EXPECT_EQ(rv, nullptr);
  });
}

// ------------------------------------------------------------------ stats

TEST(TimerStats, CancelledTimersAreCounted) {
  lwt::run([] {
    lwt::Semaphore sem(1);
    // Succeeds immediately after arming? No: count 1 means no timer at
    // all. Force a parked timed wait that completes before the deadline.
    sem.acquire();
    lwt::Tcb* t = lwt::go([&] {
      EXPECT_TRUE(sem.try_acquire_until(
          lwt::Scheduler::current()->deadline_after(500 * kMs)));
    });
    lwt::yield();   // waiter parks with a timer armed
    sem.release();  // wakes before the deadline → timer disarmed
    lwt::join(t);
    EXPECT_GE(lwt::Scheduler::current()->stats().timer_cancels, 1u);
    EXPECT_EQ(lwt::Scheduler::current()->armed_timers(), 0u);
  });
}

}  // namespace
