// lwt_mn_stress_test.cpp — million-fiber churn through the multi-worker
// scheduler (tier 2). A rolling window keeps a few thousand fibers live
// while one million are created, scheduled and joined in total, so the
// test exercises sustained spawn/steal/reap traffic — stack-pool
// recycling across workers, id allocation, zombie reaping — without
// needing a million stacks resident at once. Must run ASan-clean: the
// window guarantees every fiber is joined, every stack released.
#include "lwt/scheduler.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <deque>
#include <vector>

#include "lwt/lwt.hpp"

namespace {

constexpr std::uint64_t kTotalFibers = 1'000'000;
constexpr std::size_t kWindow = 4096;  ///< max fibers live at once

template <typename F>
void run_on(lwt::Scheduler& s, F&& f) {
  using Fn = std::decay_t<F>;
  Fn fn(std::forward<F>(f));
  s.run_main(
      [](void* p) -> void* {
        (*static_cast<Fn*>(p))();
        return nullptr;
      },
      &fn);
}

TEST(MnStress, MillionFibers) {
  lwt::Scheduler s;
  s.set_workers(4);
  std::atomic<std::uint64_t> ran{0};
  run_on(s, [&] {
    lwt::ThreadAttr attr;
    attr.stack_size = 16 * 1024;  // small stacks: the body barely recurses
    std::deque<lwt::Tcb*> live;
    for (std::uint64_t i = 0; i < kTotalFibers; ++i) {
      live.push_back(lwt::go(
          [&ran] {
            ran.fetch_add(1, std::memory_order_relaxed);
            lwt::yield();  // give the stealers something to migrate
          },
          attr));
      if (live.size() >= kWindow) {
        lwt::join(live.front());
        live.pop_front();
      }
    }
    while (!live.empty()) {
      lwt::join(live.front());
      live.pop_front();
    }
  });
  EXPECT_EQ(ran.load(), kTotalFibers);
  const lwt::SchedulerStats st = s.stats();
  EXPECT_EQ(st.spawns, kTotalFibers + 1);  // + main
  EXPECT_EQ(s.live_threads(), 0u);
  // The stack pool recycled instead of growing a million entries.
  EXPECT_LE(s.workers(), 4u);
}

TEST(MnStress, SpawnStormFromManyParents) {
  // Fibers spawning fibers from every worker at once: the id allocator,
  // stack pool and injection paths all see concurrent producers.
  lwt::Scheduler s;
  s.set_workers(4);
  std::atomic<std::uint64_t> leaves{0};
  run_on(s, [&] {
    constexpr int kParents = 64;
    constexpr int kKidsPerParent = 512;
    std::vector<lwt::Tcb*> parents;
    lwt::ThreadAttr attr;
    attr.stack_size = 16 * 1024;
    for (int p = 0; p < kParents; ++p) {
      parents.push_back(lwt::go([&leaves, attr] {
        std::vector<lwt::Tcb*> kids;
        kids.reserve(kKidsPerParent);
        for (int k = 0; k < kKidsPerParent; ++k) {
          kids.push_back(lwt::go(
              [&leaves] { leaves.fetch_add(1, std::memory_order_relaxed); },
              attr));
        }
        for (lwt::Tcb* t : kids) lwt::join(t);
      }));
    }
    for (lwt::Tcb* t : parents) lwt::join(t);
  });
  EXPECT_EQ(leaves.load(), 64u * 512u);
}

}  // namespace
