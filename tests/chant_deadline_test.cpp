// chant_deadline_test.cpp — the Status-based deadline/cancellation API
// (DESIGN.md §8): timed recv / msgwait / call_wait / call / join, the
// idempotent Status-returning cancel_irecv, the RSR retry machinery on a
// reliable net, and the no-leak guarantees (outstanding_calls /
// outstanding_recvs / pool gauges) after every timeout path.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "chant_test_util.hpp"
#include "lwt/lwt.hpp"

namespace {

using chant::Deadline;
using chant::Gid;
using chant::Runtime;
using chant::Status;
using chant::StatusCode;
using chant_test::PolicyCase;

constexpr std::uint64_t kMs = 1'000'000;

// ------------------------------------------------------- Status semantics

TEST(Status, OkAndMessageSemantics) {
  EXPECT_TRUE(Status(StatusCode::Ok).ok());
  EXPECT_FALSE(Status(StatusCode::Pending).ok());
  EXPECT_FALSE(Status(StatusCode::AlreadyCompleted).ok());
  EXPECT_FALSE(Status(StatusCode::DeadlineExceeded).ok());
  EXPECT_STREQ(Status(StatusCode::DeadlineExceeded).message(),
               "deadline exceeded");
  EXPECT_EQ(Status(StatusCode::Ok), StatusCode::Ok);
  EXPECT_NE(Status(StatusCode::Ok), StatusCode::Canceled);
}

TEST(Status, DeadlineResolution) {
  EXPECT_TRUE(Deadline::infinite().is_infinite());
  EXPECT_EQ(Deadline::infinite().resolve(123), lwt::kNoDeadline);
  EXPECT_EQ(Deadline::at(500).resolve(100), 500u);
  EXPECT_EQ(Deadline::after(50).resolve(100), 150u);
  // Relative deadlines saturate instead of wrapping.
  EXPECT_EQ(Deadline::after(~std::uint64_t{0} - 1).resolve(100),
            lwt::kNoDeadline);
}

// -------------------------------------------------------------- timed p2p

class ChantDeadline : public ::testing::TestWithParam<PolicyCase> {};

TEST_P(ChantDeadline, RecvTimesOutAndMessageIsNotLost) {
  chant::World w(chant_test::config_for(GetParam()));
  w.run([&](Runtime& rt) {
    const Gid peer{1 - rt.pe(), 0, chant::kMainLid};
    if (rt.pe() == 0) {
      long v = 0;
      // Nothing sent yet: the bounded receive must expire.
      const Status st =
          rt.recv(10, &v, sizeof v, peer, Deadline::after(5 * kMs));
      EXPECT_EQ(st, StatusCode::DeadlineExceeded);
      EXPECT_GE(rt.rsr_stats().deadline_timeouts, 1u);
      // Release the sender; its message must land in a *later* receive —
      // the timed-out one withdrew its posted buffer without losing
      // anything (the message had not been sent when it expired).
      long go = 1;
      rt.send(11, &go, sizeof go, peer);
      chant::MsgInfo mi;
      const Status st2 =
          rt.recv(10, &v, sizeof v, peer, Deadline::after(500 * kMs), &mi);
      EXPECT_EQ(st2, StatusCode::Ok);
      EXPECT_EQ(v, 42);
      EXPECT_EQ(mi.len, sizeof v);
      EXPECT_EQ(mi.src, peer);
    } else {
      long go = 0;
      rt.recv(11, &go, sizeof go, peer);
      long v = 42;
      rt.send(10, &v, sizeof v, peer);
    }
  });
}

TEST_P(ChantDeadline, RecvWithInfiniteDeadlineBehavesLikeUntimed) {
  chant::World w(chant_test::config_for(GetParam()));
  w.run([&](Runtime& rt) {
    const Gid peer{1 - rt.pe(), 0, chant::kMainLid};
    if (rt.pe() == 0) {
      long v = 7;
      rt.send(20, &v, sizeof v, peer);
    } else {
      long v = 0;
      EXPECT_EQ(rt.recv(20, &v, sizeof v, peer, Deadline::infinite()),
                StatusCode::Ok);
      EXPECT_EQ(v, 7);
    }
  });
}

TEST_P(ChantDeadline, TimedMsgwaitLeavesHandleLive) {
  chant::World w(chant_test::config_for(GetParam()));
  w.run([&](Runtime& rt) {
    const Gid peer{1 - rt.pe(), 0, chant::kMainLid};
    if (rt.pe() == 0) {
      long v = 0;
      const int h = rt.irecv(30, &v, sizeof v, peer);
      EXPECT_EQ(rt.outstanding_recvs(), 1u);
      EXPECT_EQ(rt.msgwait(h, Deadline::after(5 * kMs)),
                StatusCode::DeadlineExceeded);
      // Contract: the receive stays posted and the handle stays valid.
      EXPECT_EQ(rt.outstanding_recvs(), 1u);
      long go = 1;
      rt.send(31, &go, sizeof go, peer);
      chant::MsgInfo mi;
      EXPECT_EQ(rt.msgwait(h, Deadline::after(500 * kMs), &mi),
                StatusCode::Ok);
      EXPECT_EQ(v, 99);
      EXPECT_EQ(mi.src, peer);
      EXPECT_EQ(rt.outstanding_recvs(), 0u);  // released on completion
    } else {
      long go = 0;
      rt.recv(31, &go, sizeof go, peer);
      long v = 99;
      rt.send(30, &v, sizeof v, peer);
    }
  });
}

TEST_P(ChantDeadline, CancelIrecvIsIdempotent) {
  // Regression: cancelling an already-completed (or already-cancelled)
  // handle must be a harmless AlreadyCompleted, never a crash or Ok.
  chant::World w(chant_test::config_for(GetParam()));
  w.run([&](Runtime& rt) {
    const Gid peer{1 - rt.pe(), 0, chant::kMainLid};
    if (rt.pe() == 0) {
      // (a) cancel before anything arrives: withdrawn.
      long a = 0;
      const int h1 = rt.irecv(40, &a, sizeof a, peer);
      EXPECT_EQ(rt.cancel_irecv(h1), StatusCode::Ok);
      // (b) double cancel: the handle is retired, second call is a no-op.
      EXPECT_EQ(rt.cancel_irecv(h1), StatusCode::AlreadyCompleted);
      EXPECT_EQ(rt.outstanding_recvs(), 0u);
      // (c) cancel after the message has been delivered into the buffer.
      long b = 0;
      const int h2 = rt.irecv(41, &b, sizeof b, peer);
      long go = 1;
      rt.send(42, &go, sizeof go, peer);
      long flag = 0;
      rt.recv(43, &flag, sizeof flag, peer);  // FIFO: 41 delivered first
      EXPECT_EQ(rt.cancel_irecv(h2), StatusCode::AlreadyCompleted);
      EXPECT_EQ(rt.cancel_irecv(h2), StatusCode::AlreadyCompleted);
      EXPECT_EQ(rt.outstanding_recvs(), 0u);
      // (d) a handle that never existed.
      EXPECT_EQ(rt.cancel_irecv(-1), StatusCode::Invalid);
      long c = 0;
      const int h3 = rt.irecv(44, &c, sizeof c, peer);
      EXPECT_TRUE(rt.cancel_irecv(h3).ok());   // withdrawn
      EXPECT_FALSE(rt.cancel_irecv(h3).ok());  // retired
    } else {
      long go = 0;
      rt.recv(42, &go, sizeof go, peer);
      long v = 7;
      rt.send(41, &v, sizeof v, peer);
      long flag = 1;
      rt.send(43, &flag, sizeof flag, peer);
    }
  });
}

// -------------------------------------------------------------- timed RSR

void square_handler(Runtime&, Runtime::RsrContext&, const void* arg,
                    std::size_t len, std::vector<std::uint8_t>& reply) {
  long v = 0;
  if (len >= sizeof v) std::memcpy(&v, arg, sizeof v);
  const long out = v * v;
  reply.resize(sizeof out);
  std::memcpy(reply.data(), &out, sizeof out);
}

/// Defers and never replies: every bounded wait on it must expire.
void black_hole_handler(Runtime&, Runtime::RsrContext& ctx, const void*,
                        std::size_t, std::vector<std::uint8_t>&) {
  ctx.deferred = true;
}

/// Counts invocations; defers the reply by ~30 ms of scheduler time so a
/// short-backoff retry policy resends while the first attempt cooks.
struct SlowCounter {
  static int invocations;
  static void handler(Runtime& rt, Runtime::RsrContext& ctx, const void* arg,
                      std::size_t len, std::vector<std::uint8_t>&) {
    ++invocations;
    long v = 0;
    if (len >= sizeof v) std::memcpy(&v, arg, sizeof v);
    ctx.deferred = true;
    const Runtime::RsrContext saved = ctx;
    lwt::ThreadAttr attr;
    attr.detached = true;
    lwt::go(
        [&rt, saved, v] {
          lwt::sleep_for(30 * kMs);
          const long out = v + 1000;
          rt.reply(saved, &out, sizeof out);
        },
        attr);
  }
};
int SlowCounter::invocations = 0;

TEST_P(ChantDeadline, CallWaitTimesOutAndReclaimsSlot) {
  chant::World w(chant_test::config_for(GetParam()));
  const int hole = w.register_handler(&black_hole_handler);
  w.run([&](Runtime& rt) {
    if (rt.pe() != 0) return;
    const auto pool_before = rt.buffer_pool().free_blocks();
    long v = 1;
    const int h = rt.call_async(1, 0, hole, &v, sizeof v);
    EXPECT_EQ(rt.outstanding_calls(), 1u);
    std::vector<std::uint8_t> rep;
    EXPECT_EQ(rt.call_wait(h, Deadline::after(5 * kMs), &rep),
              StatusCode::DeadlineExceeded);
    // The slot and handle are gone, and every pooled block the call held
    // is back on the free list (the pool grows lazily, so the count may
    // exceed the pre-call snapshot — it must never fall below it).
    EXPECT_EQ(rt.outstanding_calls(), 0u);
    EXPECT_GE(rt.buffer_pool().free_blocks(), pool_before);
    EXPECT_THROW((void)rt.call_test(h), std::invalid_argument);
    // Steady-state proof of reclamation: a second abandoned call must
    // recycle the first one's blocks — free count settles, zero fresh
    // heap blocks.
    const auto settled = rt.buffer_pool().free_blocks();
    const auto fresh_before = rt.buffer_pool().stats().fresh;
    const int h2 = rt.call_async(1, 0, hole, &v, sizeof v);
    EXPECT_EQ(rt.call_wait(h2, Deadline::after(5 * kMs), nullptr),
              StatusCode::DeadlineExceeded);
    EXPECT_EQ(rt.outstanding_calls(), 0u);
    EXPECT_EQ(rt.buffer_pool().free_blocks(), settled);
    EXPECT_EQ(rt.buffer_pool().stats().fresh, fresh_before);
  });
}

TEST_P(ChantDeadline, TimedCallSucceedsWellBeforeDeadline) {
  chant::World w(chant_test::config_for(GetParam()));
  const int square = w.register_handler(&square_handler);
  w.run([&](Runtime& rt) {
    if (rt.pe() != 0) return;
    long v = 6;
    std::vector<std::uint8_t> rep;
    EXPECT_EQ(rt.call(1, 0, square, &v, sizeof v, Deadline::after(2000 * kMs),
                      &rep),
              StatusCode::Ok);
    long out = 0;
    ASSERT_EQ(rep.size(), sizeof out);
    std::memcpy(&out, rep.data(), sizeof out);
    EXPECT_EQ(out, 36);
    EXPECT_EQ(rt.outstanding_calls(), 0u);
  });
}

TEST_P(ChantDeadline, TimedCallOnBlackHoleExpiresWithRetries) {
  chant::World w(chant_test::config_for(GetParam()));
  const int hole = w.register_handler(&black_hole_handler);
  w.run([&](Runtime& rt) {
    if (rt.pe() != 0) return;
    chant::RetryPolicy rp;
    rp.max_attempts = 3;
    rp.initial_backoff_ns = 3 * kMs;
    long v = 1;
    const Status st = rt.call(1, 0, hole, &v, sizeof v,
                              Deadline::after(40 * kMs), nullptr, &rp);
    EXPECT_EQ(st, StatusCode::DeadlineExceeded);
    EXPECT_GE(rt.rsr_stats().retries_sent, 1u);
    EXPECT_EQ(rt.outstanding_calls(), 0u);
  });
}

TEST_P(ChantDeadline, RetriedSlowCallIsDedupedAndExecutedOnce) {
  // Self-call so client and server counters live on the same Runtime.
  chant::World w(chant_test::config_for(GetParam(), /*pes=*/1));
  const int slow = w.register_handler(&SlowCounter::handler);
  w.run([&](Runtime& rt) {
    SlowCounter::invocations = 0;
    chant::RetryPolicy rp;
    rp.max_attempts = 8;
    rp.initial_backoff_ns = 4 * kMs;
    rp.multiplier = 1;  // keep resending every ~4 ms while it cooks
    long v = 5;
    std::vector<std::uint8_t> rep;
    const Status st = rt.call(0, 0, slow, &v, sizeof v,
                              Deadline::after(2000 * kMs), &rep, &rp);
    ASSERT_EQ(st, StatusCode::Ok);
    long out = 0;
    ASSERT_EQ(rep.size(), sizeof out);
    std::memcpy(&out, rep.data(), sizeof out);
    EXPECT_EQ(out, 1005);
    // The ~30 ms handler outlasted several 4 ms backoff windows, so
    // duplicates were sent — and every one was suppressed: the handler
    // ran exactly once (deferred handlers get suppression, not replay).
    EXPECT_GE(rt.rsr_stats().retries_sent, 1u);
    EXPECT_GE(rt.rsr_stats().dup_drops, 1u);
    EXPECT_EQ(SlowCounter::invocations, 1);
    EXPECT_EQ(rt.outstanding_calls(), 0u);
  });
}

TEST_P(ChantDeadline, PerHandlerRetryPolicyIsPickedUp) {
  chant::World w(chant_test::config_for(GetParam(), /*pes=*/1));
  const int slow = w.register_handler(&SlowCounter::handler);
  w.run([&](Runtime& rt) {
    SlowCounter::invocations = 0;
    chant::RetryPolicy rp;
    rp.max_attempts = 8;
    rp.initial_backoff_ns = 4 * kMs;
    rp.multiplier = 1;
    rt.set_retry_policy(slow, rp);  // opt-in: no per-call policy below
    long v = 1;
    std::vector<std::uint8_t> rep;
    ASSERT_EQ(rt.call(0, 0, slow, &v, sizeof v, Deadline::after(2000 * kMs),
                      &rep),
              StatusCode::Ok);
    EXPECT_GE(rt.rsr_stats().retries_sent, 1u);
    EXPECT_EQ(SlowCounter::invocations, 1);
  });
}

// ------------------------------------------------------------- timed join

TEST_P(ChantDeadline, LocalTimedJoinRelinquishesClaim) {
  chant::World w(chant_test::config_for(GetParam(), /*pes=*/1));
  w.run([&](Runtime& rt) {
    static lwt::Semaphore* gate;
    lwt::Semaphore g(0);
    gate = &g;
    const Gid t = rt.create(
        [](void*) -> void* {
          gate->acquire();
          return reinterpret_cast<void*>(static_cast<long>(123));
        },
        nullptr, PTHREAD_CHANTER_LOCAL, PTHREAD_CHANTER_LOCAL);
    void* rv = nullptr;
    EXPECT_EQ(rt.join(t, Deadline::after(5 * kMs), &rv),
              StatusCode::DeadlineExceeded);
    g.release();
    // The timeout relinquished the claim: a second join still works.
    EXPECT_EQ(rt.join(t, Deadline::after(2000 * kMs), &rv), StatusCode::Ok);
    EXPECT_EQ(rv, reinterpret_cast<void*>(static_cast<long>(123)));
    // The thread is reaped: a third join reports it gone.
    EXPECT_EQ(rt.join(t, Deadline::after(1 * kMs), &rv),
              StatusCode::PeerGone);
  });
}

TEST_P(ChantDeadline, SelfTimedJoinIsInvalid) {
  chant::World w(chant_test::config_for(GetParam(), /*pes=*/1));
  w.run([&](Runtime& rt) {
    void* rv = nullptr;
    EXPECT_EQ(rt.join(rt.self(), Deadline::after(1 * kMs), &rv),
              StatusCode::Invalid);
  });
}

TEST_P(ChantDeadline, RemoteTimedJoinCompletesBeforeDeadline) {
  chant::World w(chant_test::config_for(GetParam()));
  w.run([&](Runtime& rt) {
    if (rt.pe() != 0) return;
    const Gid t = rt.create(
        [](void*) -> void* {
          return reinterpret_cast<void*>(static_cast<long>(7));
        },
        nullptr, 1, 0);
    void* rv = nullptr;
    EXPECT_EQ(rt.join(t, Deadline::after(2000 * kMs), &rv), StatusCode::Ok);
    EXPECT_EQ(rv, reinterpret_cast<void*>(static_cast<long>(7)));
    // Joining again: the remote record is gone.
    EXPECT_EQ(rt.join(t, Deadline::after(2000 * kMs), &rv),
              StatusCode::PeerGone);
  });
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, ChantDeadline,
                         ::testing::ValuesIn(chant_test::all_cases()),
                         [](const auto& info) {
                           return chant_test::case_name(info.param);
                         });

}  // namespace
