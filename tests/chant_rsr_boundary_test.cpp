// chant_rsr_boundary_test.cpp — RSR reply-path edges: the inline/tail
// boundary (exactly kInlineReply, one past it, and a full
// rsr_buffer_size reply) via both the blocking call and the call_test
// polling loop; plus two regressions — call_test must stay nonblocking
// when a tail reply is lost on the wire, and a dispatch must restore
// whatever priority the server had before boosting, not assume it was
// the default.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "chant_test_util.hpp"
#include "nx/fault.hpp"

namespace {

using chant::Gid;
using chant::Runtime;
using chant_test::PolicyCase;

/// Mirrors wire::kInlineReply (src/chant/wire.hpp, not visible to
/// tests). If the wire constant ever changes, BoundaryRepliesViaCall
/// below stops straddling the inline/tail switch and should be updated.
constexpr std::uint32_t kInlineReply = 1024;

/// Replies with the number of bytes named in the request, patterned so
/// reassembly bugs (wrong offset, truncated tail) change the content.
void sized_reply_handler(Runtime&, Runtime::RsrContext&, const void* arg,
                         std::size_t len, std::vector<std::uint8_t>& reply) {
  std::uint32_t n = 0;
  if (len >= sizeof n) std::memcpy(&n, arg, sizeof n);
  reply.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    reply[i] = static_cast<std::uint8_t>(i * 7 + 3);
  }
}

void check_reply(const std::vector<std::uint8_t>& rep, std::uint32_t n) {
  ASSERT_EQ(rep.size(), n);
  for (std::uint32_t i = 0; i < n; ++i) {
    ASSERT_EQ(rep[i], static_cast<std::uint8_t>(i * 7 + 3)) << "byte " << i;
  }
}

class RsrBoundary : public ::testing::TestWithParam<PolicyCase> {};

TEST_P(RsrBoundary, BoundaryRepliesViaCall) {
  chant::World w(chant_test::config_for(GetParam()));
  const int h = w.register_handler(&sized_reply_handler);
  w.run([&](Runtime& rt) {
    if (rt.pe() != 0) return;
    const std::uint32_t sizes[] = {
        kInlineReply,                  // last size that ships inline
        kInlineReply + 1,              // first size that takes the tail path
        static_cast<std::uint32_t>(rt.config().rsr_buffer_size)};
    for (const std::uint32_t n : sizes) {
      const auto rep = rt.call(1, 0, h, &n, sizeof n);
      check_reply(rep, n);
    }
  });
}

TEST_P(RsrBoundary, BoundaryRepliesViaCallTest) {
  chant::World w(chant_test::config_for(GetParam()));
  const int h = w.register_handler(&sized_reply_handler);
  w.run([&](Runtime& rt) {
    if (rt.pe() != 0) return;
    const std::uint32_t sizes[] = {
        kInlineReply, kInlineReply + 1,
        static_cast<std::uint32_t>(rt.config().rsr_buffer_size)};
    // All three outstanding at once, then polled to completion — the
    // tail receives are posted lazily by call_test itself.
    int handles[3];
    for (int i = 0; i < 3; ++i) {
      handles[i] = rt.call_async(1, 0, h, &sizes[i], sizeof sizes[i]);
    }
    bool done[3] = {false, false, false};
    int remaining = 3;
    while (remaining > 0) {
      for (int i = 0; i < 3; ++i) {
        if (done[i]) continue;
        std::vector<std::uint8_t> rep;
        if (rt.call_test(handles[i], &rep).ok()) {
          check_reply(rep, sizes[i]);
          done[i] = true;
          --remaining;
        }
      }
      rt.yield();
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    Policies, RsrBoundary, ::testing::ValuesIn(chant_test::all_cases()),
    [](const ::testing::TestParamInfo<PolicyCase>& info) {
      return chant_test::case_name(info.param);
    });

// ------------------------------- regression: lost tail must not block

/// Eats exactly the tail message of a kDroppedTailLen-byte reply: the
/// length is chosen to collide with nothing else on the wire (requests
/// are ~tens of bytes, the reply header is 8).
constexpr std::uint32_t kDroppedTailLen = 2000;

struct DropTail : nx::FaultInjector {
  nx::FaultDecision on_send(const nx::MsgHeader& h) override {
    if (h.len == kDroppedTailLen) return {.drop = true};
    return {};
  }
};

TEST(RsrTailLoss, CallTestStaysNonblockingWhenTailNeverArrives) {
  DropTail inj;
  PolicyCase c{chant::PollPolicy::ThreadPolls, false,
               chant::AddressingMode::TagOverload};
  chant::World::Config cfg = chant_test::config_for(c);
  cfg.fault = &inj;
  chant::World w(cfg);
  const int h = w.register_handler(&sized_reply_handler);
  w.run([&](Runtime& rt) {
    if (rt.pe() != 0) return;
    const std::uint32_t n = kDroppedTailLen;
    const int call = rt.call_async(1, 0, h, &n, sizeof n);
    // The reply header arrives and announces a tail that the wire then
    // eats. The old code path recv-blocked inside the completion test
    // and wedged the caller forever; call_test must instead keep
    // returning false, each probe a bounded amount of work.
    for (int i = 0; i < 300; ++i) {
      std::vector<std::uint8_t> rep;
      ASSERT_FALSE(rt.call_test(call, &rep).ok());
      rt.yield();
    }
    // The call is abandoned un-completed; runtime teardown tolerates it.
  });
}

// --------------------------- regression: priority restore after boost

class RsrServerPriority : public ::testing::TestWithParam<PolicyCase> {};

/// ThreadPolls is excluded by construction, not oversight: under TP a
/// blocked thread stays *ready* and busy-polls, so any server priority
/// different from the main thread's spin-starves whichever side is
/// lower. Meaningful user-lowered server priorities exist only under
/// the scheduler-polls policies, where blocked threads truly park —
/// which are also exactly the policies whose restore path regressed.
inline std::vector<PolicyCase> scheduler_polls_cases() {
  std::vector<PolicyCase> cases;
  for (const PolicyCase& c : chant_test::all_cases()) {
    if (c.policy != chant::PollPolicy::ThreadPolls) cases.push_back(c);
  }
  return cases;
}

TEST_P(RsrServerPriority, DispatchRestoresLoweredPriority) {
  chant::World w(chant_test::config_for(GetParam()));
  const int echo = w.register_handler(&sized_reply_handler);
  w.run([&](Runtime& rt) {
    constexpr int kLowered = 5;  // below the boost target of 7
    const Gid server1{1, 0, chant::kServerLid};
    if (rt.pe() == 1) {
      // Lower our own server below the boost value, then let pe 0 drive
      // a dispatch through it (which boosts it to kServerPriority).
      ASSERT_EQ(rt.set_priority(server1, kLowered), 0);
      char token = 'g';
      rt.send(61, &token, sizeof token, Gid{0, 0, chant::kMainLid});
      rt.recv(62, &token, sizeof token, Gid{0, 0, chant::kMainLid});
      // The dispatch is over (the reply below came back); the restore
      // must have re-applied the *lowered* value, not the default.
      int prio = -1;
      ASSERT_EQ(rt.get_priority(server1, &prio), 0);
      EXPECT_EQ(prio, kLowered);
    } else {
      char token = 0;
      rt.recv(61, &token, sizeof token, Gid{1, 0, chant::kMainLid});
      const std::uint32_t n = 16;
      check_reply(rt.call(1, 0, echo, &n, sizeof n), n);
      rt.send(62, &token, sizeof token, Gid{1, 0, chant::kMainLid});
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    Policies, RsrServerPriority,
    ::testing::ValuesIn(scheduler_polls_cases()),
    [](const ::testing::TestParamInfo<PolicyCase>& info) {
      return chant_test::case_name(info.param);
    });

}  // namespace
