// sim_timer_test.cpp — the timer wheel under the VirtualClock: explored
// schedules must produce a *deterministic* timeout order (the wheel
// breaks same-tick ties by arm order), and the timeout-vs-message race
// on a deadline receive must always resolve to exactly one of its two
// legal outcomes — delivered once, or expired with the message consumed
// by a later receive. No third state, no lost or duplicated message, no
// leaked handle, across every seed.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "chant/chant.hpp"
#include "sim/explore.hpp"

namespace {

using chant::Deadline;
using chant::Gid;
using chant::PollPolicy;
using chant::Runtime;
using chant::Status;
using chant::StatusCode;

TEST(SimTimer, SleepersWakeInDeadlineOrderUnderEverySchedule) {
  sim::Options opt;
  opt.seeds = 256;
  opt.base_seed = 0x71AE;  // "TIME"
  const sim::Result res = sim::explore(opt, [](sim::Session& s) {
    chant::World::Config cfg;
    cfg.pes = 1;
    cfg.rt.policy = PollPolicy::SchedulerPollsWQ;
    s.apply(cfg);
    chant::World w(cfg);
    w.run([&](Runtime& rt) {
      static std::vector<int>* order_p;
      static Runtime* rt_p;
      std::vector<int> order;
      order_p = &order;
      rt_p = &rt;
      const std::uint64_t base = rt.scheduler().now();
      // Spawn in an order unrelated to the deadlines; wake order must
      // follow the deadlines regardless of the explored schedule.
      static std::uint64_t base_s;
      base_s = base;
      std::vector<Gid> ts;
      for (int i : {3, 1, 4, 2}) {
        ts.push_back(rt.create(
            [](void* p) -> void* {
              const int k = static_cast<int>(
                  reinterpret_cast<std::intptr_t>(p));
              rt_p->scheduler().sleep_until(
                  base_s + static_cast<std::uint64_t>(k) * 50'000);
              order_p->push_back(k);
              return nullptr;
            },
            reinterpret_cast<void*>(static_cast<std::intptr_t>(i)),
            PTHREAD_CHANTER_LOCAL, PTHREAD_CHANTER_LOCAL));
      }
      for (const Gid& g : ts) rt.join(g);
      ASSERT_EQ(order.size(), 4u);
      EXPECT_EQ(order[0], 1);
      EXPECT_EQ(order[1], 2);
      EXPECT_EQ(order[2], 3);
      EXPECT_EQ(order[3], 4);
      EXPECT_EQ(rt.scheduler().armed_timers(), 0u);
    });
  });
  EXPECT_FALSE(res.failed);
  EXPECT_EQ(res.iterations, 256u);
}

TEST(SimTimer, RecvDeadlineRaceHasExactlyTwoOutcomes) {
  // A sender fires after a seed-drawn virtual delay that straddles the
  // receiver's deadline; wire delay jitter widens the race window. The
  // receive must either deliver the payload (Ok) or expire — and after
  // DeadlineExceeded the message, if sent, must still be delivered
  // intact to the next receive (withdrawn buffers lose nothing).
  sim::Options opt;
  opt.seeds = 400;
  opt.base_seed = 0x4ACE;
  opt.faults.delay_p = 0.5;
  opt.faults.max_delay_ns = 60'000;
  const sim::Result res = sim::explore(opt, [](sim::Session& s) {
    chant::World::Config cfg;
    cfg.pes = 1;
    cfg.rt.policy = PollPolicy::SchedulerPollsWQ;
    s.apply(cfg);
    // The sender's delay is part of the seed's identity.
    const std::uint64_t send_after = s.rng()() % 300'000;
    chant::World w(cfg);
    w.run([&](Runtime& rt) {
      static Runtime* rt_p;
      static std::uint64_t delay_s;
      static Gid main_gid;
      rt_p = &rt;
      delay_s = send_after;
      main_gid = rt.self();
      const Gid sender = rt.create(
          [](void*) -> void* {
            rt_p->scheduler().sleep_for(delay_s);
            long v = 4242;
            rt_p->send(5, &v, sizeof v, main_gid);
            return nullptr;
          },
          nullptr, PTHREAD_CHANTER_LOCAL, PTHREAD_CHANTER_LOCAL);
      long v = 0;
      chant::MsgInfo mi;
      const Status st = rt.recv(5, &v, sizeof v, chant::kAnyThread,
                                Deadline::after(150'000), &mi);
      if (st.ok()) {
        EXPECT_EQ(v, 4242);
        EXPECT_EQ(mi.len, sizeof v);
      } else {
        ASSERT_EQ(st, StatusCode::DeadlineExceeded);
        // The message is still owed to us (the sender always sends):
        // it must arrive whole at the next, unbounded receive.
        long v2 = 0;
        rt.recv(5, &v2, sizeof v2, chant::kAnyThread);
        EXPECT_EQ(v2, 4242);
      }
      EXPECT_EQ(rt.outstanding_recvs(), 0u);
      void* rv = nullptr;
      EXPECT_EQ(rt.join(sender, Deadline::infinite(), &rv), StatusCode::Ok);
    });
  });
  EXPECT_FALSE(res.failed);
  EXPECT_EQ(res.iterations, 400u);
}

TEST(SimTimer, TimedMsgwaitRaceKeepsHandleCoherent) {
  // Same race through the irecv/msgwait path: on timeout the handle must
  // stay live and a later wait (or cancel) must observe a coherent
  // state, never a double completion or a leak.
  sim::Options opt;
  opt.seeds = 256;
  opt.base_seed = 0x3A11;
  opt.faults.delay_p = 0.4;
  opt.faults.max_delay_ns = 40'000;
  const sim::Result res = sim::explore(opt, [](sim::Session& s) {
    chant::World::Config cfg;
    cfg.pes = 1;
    cfg.rt.policy = PollPolicy::SchedulerPollsPS;
    s.apply(cfg);
    const std::uint64_t send_after = s.rng()() % 200'000;
    const bool cancel_after_timeout = (s.rng()() & 1) != 0;
    chant::World w(cfg);
    w.run([&](Runtime& rt) {
      static Runtime* rt_p;
      static std::uint64_t delay_s;
      static Gid main_gid;
      rt_p = &rt;
      delay_s = send_after;
      main_gid = rt.self();
      const Gid sender = rt.create(
          [](void*) -> void* {
            rt_p->scheduler().sleep_for(delay_s);
            long v = 7;
            rt_p->send(6, &v, sizeof v, main_gid);
            return nullptr;
          },
          nullptr, PTHREAD_CHANTER_LOCAL, PTHREAD_CHANTER_LOCAL);
      long buf = 0;
      const int h = rt.irecv(6, &buf, sizeof buf, chant::kAnyThread);
      const Status st = rt.msgwait(h, Deadline::after(100'000));
      if (st.ok()) {
        EXPECT_EQ(buf, 7);
      } else {
        ASSERT_EQ(st, StatusCode::DeadlineExceeded);
        if (cancel_after_timeout) {
          // Either outcome of the cancel is legal (the message may have
          // landed in the window); a landed message is simply consumed.
          const Status cs = rt.cancel_irecv(h);
          EXPECT_TRUE(cs == StatusCode::Ok ||
                      cs == StatusCode::AlreadyCompleted);
          if (cs == StatusCode::Ok) {
            // Withdrawn before delivery: the payload goes to a fresh
            // receive instead — nothing is lost.
            long v2 = 0;
            rt.recv(6, &v2, sizeof v2, chant::kAnyThread);
            EXPECT_EQ(v2, 7);
          }
        } else {
          EXPECT_EQ(rt.msgwait(h, Deadline::infinite()), StatusCode::Ok);
          EXPECT_EQ(buf, 7);
        }
      }
      EXPECT_EQ(rt.outstanding_recvs(), 0u);
      void* rv = nullptr;
      EXPECT_EQ(rt.join(sender, Deadline::infinite(), &rv), StatusCode::Ok);
    });
  });
  EXPECT_FALSE(res.failed);
  EXPECT_EQ(res.iterations, 256u);
}

}  // namespace
