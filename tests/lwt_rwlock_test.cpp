// lwt_rwlock_test.cpp — reader/writer lock and once-initialization.
#include "lwt/rwlock.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "lwt/lwt.hpp"

namespace {

TEST(RwLock, ManyReadersShareTheLock) {
  lwt::run([] {
    lwt::RwLock l;
    int concurrent = 0;
    int peak = 0;
    std::vector<lwt::Tcb*> ts;
    for (int i = 0; i < 8; ++i) {
      ts.push_back(lwt::go([&] {
        lwt::SharedLockGuard g(l);
        ++concurrent;
        if (concurrent > peak) peak = concurrent;
        lwt::yield();
        --concurrent;
      }));
    }
    for (auto* t : ts) lwt::join(t);
    EXPECT_GE(peak, 2);  // readers genuinely overlapped
  });
}

TEST(RwLock, WriterExcludesEveryone) {
  lwt::run([] {
    lwt::RwLock l;
    bool writer_inside = false;
    bool violation = false;
    std::vector<lwt::Tcb*> ts;
    ts.push_back(lwt::go([&] {
      lwt::WriteLockGuard g(l);
      writer_inside = true;
      for (int i = 0; i < 5; ++i) lwt::yield();
      writer_inside = false;
    }));
    for (int i = 0; i < 4; ++i) {
      ts.push_back(lwt::go([&] {
        lwt::SharedLockGuard g(l);
        if (writer_inside) violation = true;
      }));
      ts.push_back(lwt::go([&] {
        lwt::WriteLockGuard g(l);
        lwt::yield();
      }));
    }
    for (auto* t : ts) lwt::join(t);
    EXPECT_FALSE(violation);
  });
}

TEST(RwLock, WriterIsNotStarvedByReaders) {
  lwt::run([] {
    lwt::RwLock l;
    bool writer_done = false;
    int reads_after_writer_queued = 0;
    l.lock_shared();  // hold one read lock
    lwt::Tcb* writer = lwt::go([&] {
      lwt::WriteLockGuard g(l);
      writer_done = true;
    });
    lwt::yield();  // writer parks
    // New readers must now queue *behind* the writer.
    std::vector<lwt::Tcb*> readers;
    for (int i = 0; i < 3; ++i) {
      readers.push_back(lwt::go([&] {
        lwt::SharedLockGuard g(l);
        if (writer_done) ++reads_after_writer_queued;
      }));
    }
    lwt::yield();
    EXPECT_FALSE(l.try_lock_shared());  // writer pending blocks new readers
    l.unlock_shared();
    lwt::join(writer);
    for (auto* t : readers) lwt::join(t);
    EXPECT_TRUE(writer_done);
    EXPECT_EQ(reads_after_writer_queued, 3);
  });
}

TEST(RwLock, TryVariantsReflectState) {
  lwt::run([] {
    lwt::RwLock l;
    EXPECT_TRUE(l.try_lock_shared());
    EXPECT_TRUE(l.try_lock_shared());  // shared is reentrant across fibers
    EXPECT_FALSE(l.try_lock());
    l.unlock_shared();
    l.unlock_shared();
    EXPECT_TRUE(l.try_lock());
    EXPECT_FALSE(l.try_lock_shared());
    l.unlock();
  });
}

TEST(RwLock, CancellableWaits) {
  lwt::run([] {
    lwt::RwLock l;
    l.lock();  // never released while the victim waits
    lwt::Tcb* victim = lwt::go([&] {
      lwt::SharedLockGuard g(l);
    });
    lwt::yield();
    lwt::Scheduler::current()->cancel(victim);
    EXPECT_EQ(lwt::join(victim), lwt::kCanceled);
    l.unlock();
  });
}

TEST(Once, RunsExactlyOnce) {
  lwt::run([] {
    lwt::Once once;
    int runs = 0;
    std::vector<lwt::Tcb*> ts;
    for (int i = 0; i < 6; ++i) {
      ts.push_back(lwt::go([&] {
        once.call([&] {
          lwt::yield();  // others must wait, not re-enter
          ++runs;
        });
        EXPECT_EQ(runs, 1);  // visible to every caller afterwards
      }));
    }
    for (auto* t : ts) lwt::join(t);
    EXPECT_EQ(runs, 1);
    EXPECT_TRUE(once.done());
  });
}

TEST(Once, ThrowingInitializerIsRetried) {
  lwt::run([] {
    lwt::Once once;
    int attempts = 0;
    EXPECT_THROW(once.call([&] {
                   ++attempts;
                   throw std::runtime_error("first try fails");
                 }),
                 std::runtime_error);
    EXPECT_FALSE(once.done());
    once.call([&] { ++attempts; });
    EXPECT_TRUE(once.done());
    EXPECT_EQ(attempts, 2);
  });
}

}  // namespace
