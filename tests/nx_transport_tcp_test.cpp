// nx_transport_tcp_test.cpp — the TCP socket backend and the
// TransportSpec addressing grammar it is selected through: parse /
// to_string round-trips, hard errors on malformed specs (including
// CHANT_TRANSPORT at Machine construction), thread-hosted loopback
// delivery under tiny chunk and send-buffer limits, fork mode across
// real OS processes (chant World call/reply, barrier + scratch
// coherence, peer death -> peer_gone), and rank-mode rendezvous of two
// independently constructed Machines.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "chant/chant.hpp"
#include "nx/machine.hpp"

namespace {

#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define CHANT_TSAN 1
#endif
#endif
#ifndef CHANT_TSAN
#define CHANT_TSAN 0
#endif
#define SKIP_UNDER_TSAN() \
  if (CHANT_TSAN) GTEST_SKIP() << "fork mode is not TSan-compatible"

nx::Machine::Config tcp_cfg(int pes, const std::string& spec) {
  nx::Machine::Config c;
  c.pes = pes;
  c.transport_spec = nx::TransportSpec::parse(spec);
  return c;
}

/// Scoped CHANT_TRANSPORT override that restores the previous value.
class EnvGuard {
 public:
  explicit EnvGuard(const char* value) {
    const char* old = std::getenv("CHANT_TRANSPORT");
    if (old) saved_ = old;
    had_ = old != nullptr;
    ::setenv("CHANT_TRANSPORT", value, 1);
  }
  ~EnvGuard() {
    if (had_)
      ::setenv("CHANT_TRANSPORT", saved_.c_str(), 1);
    else
      ::unsetenv("CHANT_TRANSPORT");
  }

 private:
  std::string saved_;
  bool had_ = false;
};

// ---------------------------------------------------------------------
// TransportSpec grammar
// ---------------------------------------------------------------------

TEST(TransportSpecGrammar, ParsesEachScheme) {
  const nx::TransportSpec in = nx::TransportSpec::parse("inproc");
  EXPECT_EQ(in.kind, nx::TransportKind::InProc);

  const nx::TransportSpec shm =
      nx::TransportSpec::parse("shmring?fork=1&ring_kb=64");
  EXPECT_EQ(shm.kind, nx::TransportKind::ShmRing);
  EXPECT_TRUE(shm.fork);
  EXPECT_EQ(shm.ring_bytes, 64u * 1024);

  const nx::TransportSpec t =
      nx::TransportSpec::parse("tcp://10.0.0.7:9000?rank=2&nprocs=4");
  EXPECT_EQ(t.kind, nx::TransportKind::Tcp);
  EXPECT_EQ(t.host, "10.0.0.7");
  EXPECT_EQ(t.base_port, 9000);
  EXPECT_EQ(t.rank, 2);
  EXPECT_EQ(t.nprocs, 4);

  const nx::TransportSpec tuned = nx::TransportSpec::parse(
      "tcp://127.0.0.1:0?fork=1&chunk_kb=4&sndbuf=4096");
  EXPECT_TRUE(tuned.fork);
  EXPECT_EQ(tuned.chunk_bytes, 4u * 1024);
  EXPECT_EQ(tuned.sndbuf_bytes, 4096);
}

TEST(TransportSpecGrammar, ToStringRoundTrips) {
  for (const char* s :
       {"inproc", "shmring", "shmring?fork=1&ring_kb=64",
        "tcp://127.0.0.1:0", "tcp://10.0.0.7:9000?rank=2&nprocs=4",
        "tcp://127.0.0.1:7000?fork=1&chunk_kb=4&sndbuf=4096"}) {
    const nx::TransportSpec spec = nx::TransportSpec::parse(s);
    const std::string canon = spec.to_string();
    // parse(to_string()) is the identity on the canonical form.
    EXPECT_EQ(nx::TransportSpec::parse(canon).to_string(), canon)
        << "spec: " << s;
  }
}

TEST(TransportSpecGrammar, MalformedSpecsNameTheOffendingString) {
  for (const char* bad :
       {"carrier-pigeon", "inproc?fork=1", "shmring?bogus=1",
        "tcp://no-port", "tcp://127.0.0.1:0?chunk_kb=0"}) {
    nx::TransportSpec out;
    std::string err;
    EXPECT_FALSE(nx::TransportSpec::try_parse(bad, &out, &err)) << bad;
    EXPECT_NE(err.find(bad), std::string::npos)
        << "error must name the offending spec; got: " << err;
    EXPECT_THROW((void)nx::TransportSpec::parse(bad), std::invalid_argument);
  }
}

TEST(TransportSpecGrammar, EnvSelectsBackendWhenConfigIsDefault) {
  EnvGuard env("tcp://127.0.0.1:0");
  nx::Machine m{nx::Machine::Config{}};
  EXPECT_EQ(m.transport().kind(), nx::TransportKind::Tcp);
}

TEST(TransportSpecGrammar, MalformedEnvIsHardErrorAtMachineConstruction) {
  EnvGuard env("carrier-pigeon");
  try {
    nx::Machine m{nx::Machine::Config{}};
    FAIL() << "Machine construction accepted a malformed CHANT_TRANSPORT";
  } catch (const std::invalid_argument& e) {
    // The error must name the offending string so a bad deployment is
    // diagnosable from the message alone.
    EXPECT_NE(std::string(e.what()).find("carrier-pigeon"),
              std::string::npos)
        << e.what();
  }
}

TEST(TransportSpecGrammar, ExplicitSpecWinsOverEnvironment) {
  EnvGuard env("tcp://127.0.0.1:0");
  nx::Machine::Config c;
  c.transport_spec = nx::TransportSpec::shmring();
  nx::Machine m{c};
  EXPECT_EQ(m.transport().kind(), nx::TransportKind::ShmRing);
}

// ---------------------------------------------------------------------
// Thread-hosted loopback sockets (default tcp mode)
// ---------------------------------------------------------------------

TEST(TcpThreads, PingPongAcrossLoopbackSockets) {
  nx::Machine m{tcp_cfg(2, "tcp://127.0.0.1:0")};
  EXPECT_STREQ(m.transport().name(), "tcp");
  EXPECT_TRUE(m.transport().needs_pump());
  std::atomic<int> bad{0};
  m.run([&](nx::Endpoint& ep) {
    const int peer = 1 - ep.pe();
    for (int i = 0; i < 50; ++i) {
      if (ep.pe() == 0) {
        ep.csend(peer, 0, 7, &i, sizeof i);
        int echo = -1;
        ep.crecv(peer, 0, 8, nx::kTagExact, &echo, sizeof echo);
        if (echo != i * 2) bad.fetch_add(1, std::memory_order_relaxed);
      } else {
        int got = -1;
        ep.crecv(peer, 0, 7, nx::kTagExact, &got, sizeof got);
        const int reply = got * 2;
        ep.csend(peer, 0, 8, &reply, sizeof reply);
      }
    }
  });
  EXPECT_EQ(bad.load(), 0);
}

TEST(TcpThreads, TinyChunkLimitFragmentsLargePayload) {
  // chunk_kb=1: a 64 KiB payload must cross the socket as ~64 chunk
  // records and reassemble byte-exact on the far side.
  nx::Machine m{tcp_cfg(2, "tcp://127.0.0.1:0?chunk_kb=1")};
  const std::size_t n = 64 * 1024;
  std::atomic<int> bad{0};
  m.run([&](nx::Endpoint& ep) {
    if (ep.pe() == 0) {
      std::vector<std::uint8_t> msg(n);
      std::iota(msg.begin(), msg.end(), std::uint8_t{0});
      ep.csend(1, 0, 9, msg.data(), msg.size());
    } else {
      std::vector<std::uint8_t> buf(n);
      const nx::MsgHeader h =
          ep.crecv(0, 0, 9, nx::kTagExact, buf.data(), buf.size());
      if (h.len != n || h.truncated) bad.fetch_add(1);
      for (std::size_t i = 0; i < n; ++i) {
        if (buf[i] != static_cast<std::uint8_t>(i)) {
          bad.fetch_add(1);
          break;
        }
      }
    }
  });
  EXPECT_EQ(bad.load(), 0);
}

TEST(TcpThreads, TinySendBufferPreservesPerPairFifo) {
  // sndbuf=1 (the kernel clamps to its floor, still far below the
  // traffic) forces partial writes and the pending-deque path; ordering
  // across queued and directly-written records must survive.
  nx::Machine m{tcp_cfg(2, "tcp://127.0.0.1:0?sndbuf=1")};
  constexpr int kMsgs = 400;
  constexpr std::size_t kBody = 2048;
  std::atomic<int> bad{0};
  m.run([&](nx::Endpoint& ep) {
    if (ep.pe() == 0) {
      std::vector<std::uint8_t> msg(kBody);
      for (int i = 0; i < kMsgs; ++i) {
        std::memcpy(msg.data(), &i, sizeof i);
        std::fill(msg.begin() + sizeof(int), msg.end(),
                  static_cast<std::uint8_t>(i));
        ep.csend(1, 0, 3, msg.data(), msg.size());
      }
    } else {
      std::vector<std::uint8_t> buf(kBody);
      for (int i = 0; i < kMsgs; ++i) {
        int seq = -1;
        ep.crecv(0, 0, 3, nx::kTagExact, buf.data(), buf.size());
        std::memcpy(&seq, buf.data(), sizeof seq);
        if (seq != i || buf.back() != static_cast<std::uint8_t>(i)) {
          bad.fetch_add(1, std::memory_order_relaxed);
          break;
        }
      }
    }
  });
  EXPECT_EQ(bad.load(), 0);
}

TEST(TcpThreads, BarrierAndScratchOps) {
  nx::Machine m{tcp_cfg(3, "tcp://127.0.0.1:0")};
  std::atomic<int> bad{0};
  m.run([&](nx::Endpoint& ep) {
    nx::Transport& t = ep.machine().transport();
    t.scratch_add(16, 1);
    ep.machine().os_barrier();
    // Every pre-barrier delta must be visible after release.
    if (t.scratch_load(16) != 3u) bad.fetch_add(1);
    ep.machine().os_barrier();
  });
  EXPECT_EQ(bad.load(), 0);
}

// ---------------------------------------------------------------------
// Fork mode: machine processes become real OS processes
// ---------------------------------------------------------------------

TEST(TcpFork, ChantWorldCallReplyAndBarrier) {
  SKIP_UNDER_TSAN();
  // The PR-9 acceptance run: two OS processes talking over loopback
  // sockets, the full chant stack on top — an RSR call/reply exchange
  // followed by a barrier with scratch verification. gtest assertions
  // die with the child, so failures propagate as exceptions through the
  // fork-mode error pipe.
  chant::World::Config cfg;
  cfg.pes = 2;
  cfg.transport_spec = nx::TransportSpec::parse("tcp://127.0.0.1:0?fork=1");
  chant::World world{cfg};
  const int echo = world.register_handler(
      [](chant::Runtime&, chant::Runtime::RsrContext&, const void* arg,
         std::size_t len, std::vector<std::uint8_t>& reply) {
        reply.assign(static_cast<const std::uint8_t*>(arg),
                     static_cast<const std::uint8_t*>(arg) + len);
      });
  EXPECT_NO_THROW(world.run([&](chant::Runtime& rt) {
    nx::Transport& t = rt.endpoint().machine().transport();
    const chant::Gid peer_main{1 - rt.pe(), 0, chant::kMainLid};
    if (rt.pe() == 0) {
      const char msg[] = "over the wire";
      const auto rep = rt.call(1, 0, echo, msg, sizeof msg);
      if (rep.size() != sizeof msg ||
          std::memcmp(rep.data(), msg, sizeof msg) != 0)
        throw std::runtime_error("echo mismatch across OS processes");
      int go = 1;
      rt.send(77, &go, sizeof go, peer_main);
    } else {
      // os_barrier blocks the scheduler's OS thread, which also carries
      // the RSR server fiber — wait for the caller to confirm the call
      // completed before parking this process in the barrier.
      int go = 0;
      rt.recv(77, &go, sizeof go, peer_main);
    }
    t.scratch_add(16, 1);
    rt.endpoint().machine().os_barrier();
    if (t.scratch_load(16) != 2u)
      throw std::runtime_error("scratch delta invisible after barrier");
  }));
}

TEST(TcpFork, BarrierMakesScratchDeltasVisible) {
  SKIP_UNDER_TSAN();
  nx::Machine m{tcp_cfg(3, "tcp://127.0.0.1:0?fork=1")};
  EXPECT_NO_THROW(m.run([&](nx::Endpoint& ep) {
    nx::Transport& t = ep.machine().transport();
    for (int round = 1; round <= 4; ++round) {
      t.scratch_add(16, 1);
      ep.machine().os_barrier();
      // The mirror is per OS process; arrive-before-release plus per-pair
      // FIFO guarantees every pre-barrier delta has been applied here.
      if (t.scratch_load(16) != static_cast<std::uint32_t>(round * 3))
        throw std::runtime_error("barrier let a stale mirror through");
      ep.machine().os_barrier();
    }
  }));
}

TEST(TcpFork, PeerDeathSurfacesPeerGone) {
  SKIP_UNDER_TSAN();
  // Process 1 exits without the goodbye handshake (simulating a crash;
  // exit status 0 so only the wire-level loss is under test). Process
  // 0's blocked receive must complete with peer_gone rather than hang.
  nx::Machine m{tcp_cfg(2, "tcp://127.0.0.1:0?fork=1")};
  EXPECT_NO_THROW(m.run([&](nx::Endpoint& ep) {
    if (ep.pe() == 1) ::_exit(0);
    char buf[8];
    const nx::MsgHeader h =
        ep.crecv(1, 0, 42, nx::kTagExact, buf, sizeof buf);
    if (!h.peer_gone)
      throw std::runtime_error("recv from dead peer did not report loss");
    if (ep.machine().transport().peers_gone() < 1)
      throw std::runtime_error("transport did not count the lost peer");
  }));
}

TEST(TcpFork, ChildFailurePropagatesToParent) {
  SKIP_UNDER_TSAN();
  nx::Machine m{tcp_cfg(2, "tcp://127.0.0.1:0?fork=1")};
  EXPECT_THROW(
      m.run([&](nx::Endpoint& ep) {
        if (ep.pe() == 1) throw std::runtime_error("child boom");
      }),
      std::runtime_error);
}

TEST(TcpFork, SingleShotPerMachine) {
  SKIP_UNDER_TSAN();
  // The socket mesh is consumed by the first run (children own the fds);
  // a second run on the same Machine must fail loudly, not hang.
  nx::Machine m{tcp_cfg(2, "tcp://127.0.0.1:0?fork=1")};
  m.run([](nx::Endpoint&) {});
  EXPECT_THROW(m.run([](nx::Endpoint&) {}), std::runtime_error);
}

// ---------------------------------------------------------------------
// Rank mode: independently constructed Machines rendezvous by address
// ---------------------------------------------------------------------

TEST(TcpRank, TwoMachinesRendezvousAndPingPong) {
  SKIP_UNDER_TSAN();
  // Two OS processes each construct their own Machine hosting one flat
  // rank — the deployment shape where PEs leave the machine. The parent
  // pre-binds rank 0's listener on an ephemeral port and hands it down
  // via listen_fd, so the rendezvous needs no fixed port.
  const int lfd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(lfd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(::bind(lfd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  ASSERT_EQ(::listen(lfd, 8), 0);
  socklen_t alen = sizeof addr;
  ASSERT_EQ(::getsockname(lfd, reinterpret_cast<sockaddr*>(&addr), &alen), 0);
  const std::uint16_t port = ntohs(addr.sin_port);

  const auto run_rank = [&](int rank) -> int {
    try {
      nx::TransportSpec spec = nx::TransportSpec::tcp("127.0.0.1", port);
      spec.rank = rank;
      spec.nprocs = 2;
      if (rank == 0) spec.listen_fd = lfd;
      nx::Machine::Config c;
      c.pes = 2;
      c.transport_spec = spec;
      nx::Machine m{c};
      int bad = 0;
      m.run([&](nx::Endpoint& ep) {
        if (ep.pe() != rank) {
          bad = 1;  // rank mode must host exactly the addressed rank
          return;
        }
        if (rank == 0) {
          int token = 21;
          ep.csend(1, 0, 5, &token, sizeof token);
          int back = 0;
          ep.crecv(1, 0, 6, nx::kTagExact, &back, sizeof back);
          if (back != 42) bad = 1;
        } else {
          int got = 0;
          ep.crecv(0, 0, 5, nx::kTagExact, &got, sizeof got);
          got *= 2;
          ep.csend(0, 0, 6, &got, sizeof got);
        }
      });
      return bad;
    } catch (...) {
      return 2;
    }
  };

  const pid_t p0 = ::fork();
  ASSERT_GE(p0, 0);
  if (p0 == 0) ::_exit(run_rank(0));
  const pid_t p1 = ::fork();
  ASSERT_GE(p1, 0);
  if (p1 == 0) {
    ::close(lfd);  // only rank 0 inherits the listener
    ::_exit(run_rank(1));
  }
  ::close(lfd);
  int st0 = -1;
  int st1 = -1;
  ASSERT_EQ(::waitpid(p0, &st0, 0), p0);
  ASSERT_EQ(::waitpid(p1, &st1, 0), p1);
  EXPECT_TRUE(WIFEXITED(st0) && WEXITSTATUS(st0) == 0) << "rank 0: " << st0;
  EXPECT_TRUE(WIFEXITED(st1) && WEXITSTATUS(st1) == 0) << "rank 1: " << st1;
}

}  // namespace
