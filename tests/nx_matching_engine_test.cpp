// nx_matching_engine_test.cpp — the hash-indexed matching engine's own
// corners, plus an oracle equivalence property: the indexed engine must
// deliver *exactly* what a first-generation linear posted-list scan
// would deliver, message for message, under randomized many-to-many
// traffic mixing exact (bucket-indexed) and wildcard receives. A second
// TEST_P suite asserts the same order property end-to-end through the
// Chant layer under all three polling policies.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstring>
#include <deque>
#include <random>
#include <thread>
#include <vector>

#include "chant_test_util.hpp"
#include "nx/machine.hpp"

namespace {

// ---------------------------------------------------------------- iprobe

// A message still in flight (deliver-at in the future) must be invisible
// to iprobe; once its modelled transfer time has passed it must appear.
TEST(NxMatchingEngine, IprobeIgnoresInFlightMessages) {
  // 5 ms flat latency: far longer than the instructions between csend
  // and the first probe, far shorter than the test budget.
  nx::Machine m{nx::Machine::Config{2, 1, nx::NetModel{5000.0, 0.0},
                                    1 << 16}};
  nx::Endpoint& dst = m.endpoint(0, 0);
  long payload = 41;
  const std::uint64_t t0 = nx::now_ns();
  m.endpoint(1, 0).csend(0, 0, /*tag=*/7, &payload, sizeof payload);
  const std::uint64_t wire_ns = m.config().net.delay_ns(sizeof payload);
  // The message is queued (the eager csend completed locally)...
  EXPECT_EQ(dst.unexpected_count(), 1u);
  // ...but a probe may only see it after its deliver-at instant. The
  // assertion is the implication, so a scheduler stall cannot fake a
  // failure in either direction.
  nx::MsgHeader hdr;
  if (dst.iprobe(1, 0, 7, nx::kTagExact, &hdr)) {
    EXPECT_GE(nx::now_ns() - t0, wire_ns);
  } else {
    EXPECT_LT(nx::now_ns() - t0, wire_ns + m.config().net.delay_ns(0));
  }
  // Eventually it must become visible, with the right envelope.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(10);
  bool seen = false;
  while (!seen && std::chrono::steady_clock::now() < deadline) {
    seen = dst.iprobe(1, 0, 7, nx::kTagExact, &hdr);
    if (!seen) std::this_thread::yield();
  }
  ASSERT_TRUE(seen);
  EXPECT_GE(nx::now_ns() - t0, wire_ns);
  EXPECT_EQ(hdr.src_pe, 1);
  EXPECT_EQ(hdr.tag, 7);
  EXPECT_EQ(hdr.len, sizeof payload);
  // A posted receive then takes it; iprobe never consumes.
  long out = 0;
  nx::Handle h = m.endpoint(0, 0).irecv(1, 0, 7, nx::kTagExact, &out,
                                        sizeof out);
  EXPECT_TRUE(dst.msgtest(h));
  EXPECT_EQ(out, 41);
  EXPECT_FALSE(dst.iprobe(1, 0, 7, nx::kTagExact));
}

// With a zero network model nothing is ever in flight, so every failed
// msgtest must take the epoch-gated fast path (no lock, no drain).
TEST(NxMatchingEngine, FailedTestsSkipDrainThroughEpochGate) {
  nx::Machine m{nx::Machine::Config{1, 1, nx::NetModel::zero(), 1 << 16}};
  nx::Endpoint& ep = m.endpoint(0, 0);
  long buf = 0;
  nx::Handle h = ep.irecv(0, 0, /*tag=*/1, nx::kTagExact, &buf, sizeof buf);
  ep.counters().reset();
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(ep.msgtest(h));
  EXPECT_EQ(ep.counters().drain_skipped.load(), 100u);
  EXPECT_EQ(ep.counters().msgtest_failed.load(), 100u);
  ep.cancel_recv(h);
}

// ----------------------------------------------------------- cancel_recv

// Cancelling must work identically for a bucket-indexed receive (exact
// source and tag) and a wildcard-list receive, and must not disturb
// other receives sharing the same bucket.
TEST(NxMatchingEngine, CancelRecvBucketIndexedAndWildcard) {
  nx::Machine m{nx::Machine::Config{1, 1, nx::NetModel::zero(), 1 << 16}};
  nx::Endpoint& ep = m.endpoint(0, 0);
  long b1 = 0;
  long b2 = 0;
  long b3 = 0;
  // Two receives in the same (src, tag) bucket plus one wildcard.
  nx::Handle h1 = ep.irecv(0, 0, 5, nx::kTagExact, &b1, sizeof b1);
  nx::Handle h2 = ep.irecv(0, 0, 5, nx::kTagExact, &b2, sizeof b2);
  nx::Handle h3 = ep.irecv(nx::kAnyPe, nx::kAnyProc, 0, nx::kTagAny, &b3,
                           sizeof b3);
  EXPECT_EQ(ep.posted_count(), 3u);
  // Cancel the *earliest* bucket entry: h2 must now be first in line.
  EXPECT_TRUE(ep.cancel_recv(h1));
  EXPECT_EQ(ep.posted_count(), 2u);
  long v = 77;
  ep.csend(0, 0, 5, &v, sizeof v);
  EXPECT_TRUE(ep.msgtest(h2));
  EXPECT_EQ(b2, 77);
  EXPECT_EQ(b1, 0);  // cancelled receive's buffer untouched
  // Cancel the wildcard receive; a message that only it could take
  // must stay queued as unexpected.
  EXPECT_TRUE(ep.cancel_recv(h3));
  EXPECT_EQ(ep.posted_count(), 0u);
  long w = 88;
  ep.csend(0, 0, /*tag=*/9, &w, sizeof w);
  EXPECT_EQ(ep.unexpected_count(), 1u);
  EXPECT_EQ(b3, 0);
  // Cancelling a completed handle reports false and releases it.
  long b4 = 0;
  nx::Handle h4 = ep.irecv(0, 0, 9, nx::kTagExact, &b4, sizeof b4);
  EXPECT_EQ(b4, 88);  // matched the queued unexpected message
  EXPECT_FALSE(ep.cancel_recv(h4));
  // And a cancelled handle is dead: cancelling again reports false.
  EXPECT_FALSE(ep.cancel_recv(h3));
}

// ------------------------------------------------------------ msgtestany

// msgtestany must skip invalid and stale (already-released) handles
// rather than aborting — the WQ policy hands it whole batches in which
// some handles may have been completed by earlier passes.
TEST(NxMatchingEngine, MsgtestanySkipsInvalidAndStaleHandles) {
  nx::Machine m{nx::Machine::Config{1, 1, nx::NetModel::zero(), 1 << 16}};
  nx::Endpoint& ep = m.endpoint(0, 0);
  long b0 = 0;
  nx::Handle stale = ep.irecv(0, 0, 1, nx::kTagExact, &b0, sizeof b0);
  long v = 5;
  ep.csend(0, 0, 1, &v, sizeof v);
  ASSERT_TRUE(ep.msgtest(stale));  // completes and releases: now stale
  long b1 = 0;
  nx::Handle pending = ep.irecv(0, 0, 2, nx::kTagExact, &b1, sizeof b1);
  // `pending` recycles the released slot, so `stale` additionally
  // exercises the generation check, not just the live-slot check.
  nx::Handle hs[3] = {nx::kInvalidHandle, stale, pending};
  nx::MsgHeader out;
  EXPECT_EQ(ep.msgtestany(hs, 3, &out), -1);
  ep.csend(0, 0, 2, &v, sizeof v);
  EXPECT_EQ(ep.msgtestany(hs, 3, &out), 2);
  EXPECT_EQ(out.tag, 2);
  EXPECT_EQ(b1, 5);
  // An array with nothing testable completes nothing and returns -1.
  nx::Handle none[2] = {nx::kInvalidHandle, stale};
  EXPECT_EQ(ep.msgtestany(none, 2, &out), -1);
}

// ------------------------------------------------- oracle equivalence

// Reference model: the first-generation engine's matching rules, stated
// directly — one posted list in post order, one unexpected list in
// arrival order, linear scans. With a zero network model every message
// is visible on arrival, so this is the complete semantics.
struct Oracle {
  struct Recv {
    int id;
    int want_pe, want_proc, want_tag, tag_mask;
  };
  struct Msg {
    int src_pe, src_proc, tag;
    std::uint64_t serial;
  };
  std::deque<Recv> posted;
  std::deque<Msg> unexpected;

  static bool matches(const Recv& r, const Msg& m) {
    if (r.want_pe != nx::kAnyPe && r.want_pe != m.src_pe) return false;
    if (r.want_proc != nx::kAnyProc && r.want_proc != m.src_proc) {
      return false;
    }
    return (m.tag & r.tag_mask) == (r.want_tag & r.tag_mask);
  }

  // Returns the receive id the message was delivered to, or -1.
  int send(const Msg& m) {
    for (std::size_t i = 0; i < posted.size(); ++i) {
      if (matches(posted[i], m)) {
        const int id = posted[i].id;
        posted.erase(posted.begin() + static_cast<std::ptrdiff_t>(i));
        return id;
      }
    }
    unexpected.push_back(m);
    return -1;
  }

  // Returns the serial delivered to the fresh receive, or 0 if it was
  // posted unmatched (serials start at 1).
  std::uint64_t post(const Recv& r) {
    for (std::size_t i = 0; i < unexpected.size(); ++i) {
      if (matches(r, unexpected[i])) {
        const std::uint64_t s = unexpected[i].serial;
        unexpected.erase(unexpected.begin() +
                         static_cast<std::ptrdiff_t>(i));
        return s;
      }
    }
    posted.push_back(r);
    return 0;
  }

  bool cancel(int id) {
    for (std::size_t i = 0; i < posted.size(); ++i) {
      if (posted[i].id == id) {
        posted.erase(posted.begin() + static_cast<std::ptrdiff_t>(i));
        return true;
      }
    }
    return false;
  }
};

// Randomized scripted traffic into one endpoint from four sources, with
// a skewed mix of exact receives (hash bucket), source-wildcard and
// tag-wildcard receives (fallback list), sends on colliding tags, and
// cancels. After every step the engine must agree with the oracle on
// *which* receive got *which* message — i.e. the indexed structures must
// reproduce earliest-posted-wins and arrival-order semantics exactly.
TEST(NxMatchingEngine, IndexedMatchingEqualsLinearScanOracle) {
  for (unsigned seed = 1; seed <= 5; ++seed) {
    nx::Machine m{nx::Machine::Config{2, 2, nx::NetModel::zero(), 1 << 16}};
    nx::Endpoint& ep = m.endpoint(0, 0);
    std::mt19937 rng(seed * 7919u);
    Oracle oracle;

    struct Live {
      nx::Handle h;
      std::uint64_t buf;       // stable: pointers into deque would move
      std::uint64_t expect;    // oracle-assigned serial (0 = still open)
      bool open;
    };
    std::deque<Live> recvs;  // index in this deque = oracle receive id
    std::uint64_t next_serial = 1;

    auto engine_side = [&](int id) -> Live& {
      return recvs[static_cast<std::size_t>(id)];
    };

    for (int step = 0; step < 600; ++step) {
      const unsigned op = rng() % 10;
      if (op < 4) {
        // Send from a random source endpoint on a colliding tag.
        const int src = static_cast<int>(rng() % 4);
        Oracle::Msg msg{src / 2, src % 2, static_cast<int>(rng() % 4),
                        next_serial++};
        const int hit = oracle.send(msg);
        m.endpoint(msg.src_pe, msg.src_proc)
            .csend(0, 0, msg.tag, &msg.serial, sizeof msg.serial);
        if (hit >= 0) {
          Live& lv = engine_side(hit);
          lv.expect = msg.serial;
          ASSERT_TRUE(ep.msgtest(lv.h)) << "seed " << seed;
          ASSERT_EQ(lv.buf, msg.serial) << "seed " << seed;
          lv.open = false;
        }
      } else if (op < 8) {
        // Post a receive; 50% exact (bucket), rest wildcard flavours.
        Oracle::Recv r{};
        r.id = static_cast<int>(recvs.size());
        const unsigned kind = rng() % 4;
        r.want_pe = kind == 2 ? nx::kAnyPe : static_cast<int>(rng() % 2);
        r.want_proc = kind == 2 ? nx::kAnyProc : static_cast<int>(rng() % 2);
        r.want_tag = static_cast<int>(rng() % 4);
        r.tag_mask = kind == 3 ? nx::kTagAny : nx::kTagExact;
        recvs.push_back(Live{nx::kInvalidHandle, 0, 0, true});
        Live& lv = recvs.back();
        const std::uint64_t got = oracle.post(r);
        lv.h = ep.irecv(r.want_pe, r.want_proc, r.want_tag, r.tag_mask,
                        &lv.buf, sizeof lv.buf);
        if (got != 0) {
          lv.expect = got;
          ASSERT_TRUE(ep.msgtest(lv.h)) << "seed " << seed;
          ASSERT_EQ(lv.buf, got) << "seed " << seed;
          lv.open = false;
        }
      } else if (op == 8) {
        // Cancel a random still-open receive (if any).
        std::vector<int> open_ids;
        for (std::size_t i = 0; i < recvs.size(); ++i) {
          if (recvs[i].open) open_ids.push_back(static_cast<int>(i));
        }
        if (!open_ids.empty()) {
          const int id = open_ids[rng() % open_ids.size()];
          const bool oracle_pending = oracle.cancel(id);
          ASSERT_TRUE(oracle_pending);  // open == pending in this script
          ASSERT_TRUE(ep.cancel_recv(engine_side(id).h)) << "seed " << seed;
          engine_side(id).open = false;
          engine_side(id).h = nx::kInvalidHandle;
        }
      } else {
        // Both sides must agree on the queue shapes as well.
        ASSERT_EQ(ep.posted_count(), oracle.posted.size());
        ASSERT_EQ(ep.unexpected_count(), oracle.unexpected.size());
      }
    }
    // Wind down: every oracle-pending receive must still be pending on
    // the engine (failed msgtest), then cancel cleanly.
    ASSERT_EQ(ep.posted_count(), oracle.posted.size());
    ASSERT_EQ(ep.unexpected_count(), oracle.unexpected.size());
    for (const auto& pr : oracle.posted) {
      Live& lv = engine_side(pr.id);
      ASSERT_TRUE(lv.open);
      EXPECT_FALSE(ep.msgtest(lv.h)) << "seed " << seed;
      EXPECT_TRUE(ep.cancel_recv(lv.h)) << "seed " << seed;
      lv.open = false;
    }
    EXPECT_EQ(ep.posted_count(), 0u);
  }
}

// --------------------------------------- order property across policies

// End-to-end flavour of the same property: under randomized many-to-many
// traffic with several tag streams per pair, every (sender, tag) stream
// must arrive in send order — the observable consequence of linear-scan-
// equivalent matching — under every polling policy and addressing mode.
class MatchingOrder
    : public ::testing::TestWithParam<chant_test::PolicyCase> {};

TEST_P(MatchingOrder, ManyToManyStreamsStayFifoUnderAllPolicies) {
  constexpr int kPes = 3;
  constexpr int kStreams = 3;  // user tags per sender->receiver pair
  constexpr int kMsgs = 12;    // per stream
  chant::World w(chant_test::config_for(GetParam(), kPes));
  w.run([](chant::Runtime& rt) {
    struct Ctx {
      chant::Runtime* rt;
    } ctx{&rt};
    const chant::Gid worker = rt.create(
        [](void* p) -> void* {
          chant::Runtime& r = *static_cast<Ctx*>(p)->rt;
          const int my_pe = r.pe();
          const int my_lid = r.self().thread;
          std::mt19937 rng(static_cast<unsigned>(my_pe * 101 + 3));
          struct Payload {
            int seq;
            int src_pe;
            int stream;
          };
          // Interleave the outgoing streams in random order.
          std::vector<int> sent(kPes * kStreams, 0);
          int to_send = (kPes - 1) * kStreams * kMsgs;
          int to_recv = (kPes - 1) * kStreams * kMsgs;
          std::vector<int> expect(kPes * kStreams, 0);
          while (to_send > 0 || to_recv > 0) {
            if (to_send > 0) {
              int dst;
              int stream;
              do {
                dst = static_cast<int>(rng() % kPes);
                stream = static_cast<int>(rng() % kStreams);
              } while (dst == my_pe ||
                       sent[static_cast<std::size_t>(dst * kStreams +
                                                     stream)] >= kMsgs);
              Payload pl{sent[static_cast<std::size_t>(dst * kStreams +
                                                       stream)]++,
                         my_pe, stream};
              r.send(300 + pl.stream, &pl, sizeof pl,
                     chant::Gid{dst, 0, my_lid});
              --to_send;
            }
            if (to_recv > 0) {
              Payload pl{};
              // Wildcard receive: any stream tag, any sender thread.
              const chant::MsgInfo mi = r.recv(chant::kAnyUserTag, &pl,
                                               sizeof pl, chant::kAnyThread);
              EXPECT_EQ(mi.len, sizeof pl);
              EXPECT_EQ(mi.user_tag, 300 + pl.stream);
              auto& e = expect[static_cast<std::size_t>(
                  pl.src_pe * kStreams + pl.stream)];
              EXPECT_EQ(pl.seq, e) << "stream (" << pl.src_pe << ","
                                   << pl.stream << ") out of order";
              e = pl.seq + 1;
              --to_recv;
            }
          }
          return nullptr;
        },
        &ctx, PTHREAD_CHANTER_LOCAL, PTHREAD_CHANTER_LOCAL);
    rt.join(worker);
  });
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, MatchingOrder,
                         ::testing::ValuesIn(chant_test::all_cases()),
                         [](const auto& info) {
                           return chant_test::case_name(info.param);
                         });

}  // namespace
