// chant_sda_test.cpp — shared data abstractions (the Opus layer):
// lifecycle, monitor-style mutual exclusion, concurrent clients from
// several PEs, async invocation, destroy semantics.
#include "chant/sda.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "chant_test_util.hpp"

namespace {

using chant::Gid;
using chant::Runtime;
using chant::SdaClass;
using chant::SdaRef;
using chant_test::PolicyCase;

struct Counter {
  long value = 0;
  int inside = 0;   // method-body occupancy, for the exclusion test
  int max_inside = 0;
};

void add_method(Runtime& rt, Counter& c, const long& delta, long& out) {
  ++c.inside;
  if (c.inside > c.max_inside) c.max_inside = c.inside;
  rt.yield();  // try hard to interleave inside the monitor
  c.value += delta;
  out = c.value;
  --c.inside;
}

void read_method(Runtime&, Counter& c, const long&, long& out) {
  out = c.value;
}

void stats_method(Runtime&, Counter& c, const long&, long& out) {
  out = c.max_inside;
}

struct Empty {
  static int live;
  Empty() { ++live; }
  ~Empty() { --live; }
};
int Empty::live = 0;

class ChantSda : public ::testing::TestWithParam<PolicyCase> {};

TEST_P(ChantSda, CreateInvokeDestroy) {
  chant::World w(chant_test::config_for(GetParam()));
  SdaClass<Counter> cls(w);
  const int add = cls.method<long, long>(&add_method);
  const int read = cls.method<long, long>(&read_method);
  w.run([&](Runtime& rt) {
    if (rt.pe() != 0) return;
    const SdaRef ref = cls.create(rt, /*pe=*/1, /*process=*/0);
    EXPECT_EQ(ref.pe, 1);
    EXPECT_TRUE(ref.valid());
    long out = 0;
    cls.invoke(rt, ref, add, 5L, out);
    EXPECT_EQ(out, 5);
    cls.invoke(rt, ref, add, 37L, out);
    EXPECT_EQ(out, 42);
    cls.invoke(rt, ref, read, 0L, out);
    EXPECT_EQ(out, 42);
    cls.destroy(rt, ref);
    // Further use reports failure rather than touching freed state.
    EXPECT_THROW(cls.invoke(rt, ref, read, 0L, out), std::runtime_error);
  });
}

TEST_P(ChantSda, MethodsAreMutuallyExclusive) {
  chant::World w(chant_test::config_for(GetParam()));
  SdaClass<Counter> cls(w);
  const int add = cls.method<long, long>(&add_method);
  const int stats = cls.method<long, long>(&stats_method);
  const int read = cls.method<long, long>(&read_method);
  w.run([&](Runtime& rt) {
    if (rt.pe() != 0) return;
    const SdaRef ref = cls.create(rt, 1, 0);
    // Fire many concurrent invocations (async, all outstanding at once).
    std::vector<int> handles;
    for (long i = 0; i < 12; ++i) {
      handles.push_back(cls.invoke_async(rt, ref, add, 1L));
    }
    long last = 0;
    for (int h : handles) cls.await(rt, h, last);
    long total = 0;
    cls.invoke(rt, ref, stats, 0L, total);
    EXPECT_EQ(total, 1) << "two method bodies overlapped in the monitor";
    long value = 0;
    cls.invoke(rt, ref, read, 0L, value);
    EXPECT_EQ(value, 12);
    cls.destroy(rt, ref);
  });
}

TEST_P(ChantSda, ClientsOnSeveralPesShareOneInstance) {
  chant::World w(chant_test::config_for(GetParam(), /*pes=*/3));
  SdaClass<Counter> cls(w);
  const int add = cls.method<long, long>(&add_method);
  const int read = cls.method<long, long>(&read_method);
  w.run([&](Runtime& rt) {
    // pe 0 creates the object on pe 2 and tells everyone where it is.
    SdaRef ref;
    if (rt.pe() == 0) {
      ref = cls.create(rt, 2, 0);
      for (int pe = 1; pe < 3; ++pe) {
        rt.send(60, &ref, sizeof ref, Gid{pe, 0, chant::kMainLid});
      }
    } else {
      rt.recv(60, &ref, sizeof ref, Gid{0, 0, chant::kMainLid});
    }
    long out = 0;
    for (int i = 0; i < 10; ++i) cls.invoke(rt, ref, add, 1L, out);
    // Everyone waits for the global total, then pe 0 cleans up.
    for (;;) {
      cls.invoke(rt, ref, read, 0L, out);
      if (out >= 30) break;
      rt.yield();
    }
    EXPECT_EQ(out, 30);
    if (rt.pe() == 0) {
      // Make sure peers finished reading before destroying.
      char done = 0;
      rt.recv(61, &done, 1, Gid{1, 0, chant::kMainLid});
      rt.recv(61, &done, 1, Gid{2, 0, chant::kMainLid});
      cls.destroy(rt, ref);
    } else {
      char done = 1;
      rt.send(61, &done, 1, Gid{0, 0, chant::kMainLid});
    }
  });
}

TEST_P(ChantSda, InstancesAreIndependentAndLocalCountsTrack) {
  chant::World w(chant_test::config_for(GetParam()));
  SdaClass<Counter> cls(w);
  const int add = cls.method<long, long>(&add_method);
  w.run([&](Runtime& rt) {
    if (rt.pe() != 0) return;
    const SdaRef a = cls.create(rt, 1, 0);
    const SdaRef b = cls.create(rt, 1, 0);
    ASSERT_NE(a.instance, b.instance);
    long out = 0;
    cls.invoke(rt, a, add, 100L, out);
    cls.invoke(rt, b, add, 1L, out);
    cls.invoke(rt, b, add, 1L, out);
    EXPECT_EQ(out, 2);  // b unaffected by a
    cls.destroy(rt, a);
    cls.destroy(rt, b);
  });
}

TEST_P(ChantSda, DestructorRunsOnDestroy) {
  chant::World w(chant_test::config_for(GetParam(), /*pes=*/1));
  SdaClass<Empty> cls(w);
  w.run([&](Runtime& rt) {
    Empty::live = 0;
    const SdaRef ref = cls.create(rt, 0, 0);
    EXPECT_EQ(Empty::live, 1);
    cls.destroy(rt, ref);
    EXPECT_EQ(Empty::live, 0);
  });
}

struct BoundedQueue {
  long items[4] = {};
  int count = 0;
};
struct TryOut {
  int ok;
  long item;
};

void try_push(Runtime&, BoundedQueue& q, const long& v, TryOut& out) {
  if (q.count == 4) {
    out.ok = 0;
    return;
  }
  q.items[q.count++] = v;
  out.ok = 1;
}

void try_pop(Runtime&, BoundedQueue& q, const long&, TryOut& out) {
  if (q.count == 0) {
    out.ok = 0;
    return;
  }
  out.ok = 1;
  out.item = q.items[--q.count];
}

// Regression: a polling producer/consumer pair drives tens of thousands
// of RSRs through one SDA, wrapping both the 12-bit reply-sequence space
// and the 15-bit handle-generation space. Historically this caught
// (a) handlers double-replying (a stale duplicate pairs with a later
// request at sequence wrap) and (b) handle generations overflowing
// their packed field.
TEST_P(ChantSda, BusyRetryLoopsSurviveCounterWraps) {
  chant::World w(chant_test::config_for(GetParam()));
  SdaClass<BoundedQueue> cls(w);
  const int push = cls.method<long, TryOut>(&try_push);
  const int pop = cls.method<long, TryOut>(&try_pop);
  w.run([&](Runtime& rt) {
    constexpr long kItems = 300;
    SdaRef ref;
    if (rt.pe() == 0) {
      ref = cls.create(rt, 0, 0);
      rt.send(1, &ref, sizeof ref, Gid{1, 0, chant::kMainLid});
      long got = 0;
      long sum = 0;
      while (got < kItems) {
        TryOut out{};
        cls.invoke(rt, ref, pop, 0L, out);  // spins: wraps seq space
        if (out.ok != 0) {
          ++got;
          sum += out.item;
        } else {
          rt.yield();
        }
      }
      EXPECT_EQ(sum, kItems * (kItems - 1) / 2);
      char fin = 1;
      rt.send(2, &fin, 1, Gid{1, 0, chant::kMainLid});
      cls.destroy(rt, ref);
    } else {
      rt.recv(1, &ref, sizeof ref, Gid{0, 0, chant::kMainLid});
      for (long i = 0; i < kItems; ++i) {
        for (;;) {
          TryOut out{};
          cls.invoke(rt, ref, push, i, out);
          if (out.ok != 0) break;
          rt.yield();
        }
      }
      char fin = 0;
      rt.recv(2, &fin, 1, Gid{0, 0, chant::kMainLid});
    }
  });
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, ChantSda,
                         ::testing::ValuesIn(chant_test::all_cases()),
                         [](const auto& info) {
                           return chant_test::case_name(info.param);
                         });

}  // namespace
