// chant_mailbox_collective_test.cpp — typed mailboxes and fiber-aware
// group collectives in Chant code.
#include <gtest/gtest.h>

#include "chant/collective.hpp"
#include "chant/mailbox.hpp"
#include "chant_test_util.hpp"

namespace {

using chant::Gid;
using chant::Mailbox;
using chant::Runtime;
using chant_test::PolicyCase;

struct Point {
  double x;
  double y;
  int id;
};

class ChantMailbox : public ::testing::TestWithParam<PolicyCase> {};

TEST_P(ChantMailbox, TypedSendRecvRoundTrip) {
  chant::World w(chant_test::config_for(GetParam()));
  w.run([](Runtime& rt) {
    Mailbox<Point> box(rt, /*tag=*/30);
    const Gid peer{1 - rt.pe(), 0, chant::kMainLid};
    if (rt.pe() == 0) {
      box.send(Point{1.5, -2.5, 7}, peer);
      Gid from;
      const Point p = box.recv(&from);
      EXPECT_DOUBLE_EQ(p.x, 3.0);
      EXPECT_EQ(p.id, 8);
      EXPECT_EQ(from, peer);
    } else {
      const Point p = box.recv_from(peer);
      EXPECT_DOUBLE_EQ(p.y, -2.5);
      box.send(Point{p.x * 2, p.y * 2, p.id + 1}, peer);
    }
  });
}

TEST_P(ChantMailbox, TryRecvPollsAndThenDelivers) {
  chant::World w(chant_test::config_for(GetParam(), /*pes=*/1));
  w.run([](Runtime& rt) {
    Mailbox<long> box(rt, 31);
    EXPECT_FALSE(box.try_recv().has_value());  // nothing yet
    struct Ctx {
      Runtime* rt;
      Gid main;
    } ctx{&rt, rt.self()};
    const Gid child = rt.create(
        [](void* p) -> void* {
          auto* c = static_cast<Ctx*>(p);
          for (int i = 0; i < 10; ++i) c->rt->yield();
          long v = 5150;
          c->rt->send(31, &v, sizeof v, c->main);
          return nullptr;
        },
        &ctx, PTHREAD_CHANTER_LOCAL, PTHREAD_CHANTER_LOCAL);
    int polls = 0;
    std::optional<long> got;
    while (!(got = box.try_recv()).has_value()) {
      ++polls;
      rt.yield();
    }
    EXPECT_EQ(*got, 5150);
    EXPECT_GT(polls, 0);
    rt.join(child);
  });
}

TEST_P(ChantMailbox, PendingTryRecvIsWithdrawnOnDestruction) {
  chant::World w(chant_test::config_for(GetParam(), /*pes=*/1));
  w.run([](Runtime& rt) {
    {
      Mailbox<long> box(rt, 32);
      EXPECT_FALSE(box.try_recv().has_value());  // leaves a posted recv
    }  // dtor must withdraw it
    // A message sent now must not be written into the dead mailbox slot;
    // it stays queued and a fresh receive gets it.
    long v = 99;
    rt.send(32, &v, sizeof v, rt.self());
    long got = 0;
    rt.recv(32, &got, sizeof got, rt.self());
    EXPECT_EQ(got, 99);
  });
}

TEST_P(ChantMailbox, ExchangeHelper) {
  chant::World w(chant_test::config_for(GetParam()));
  w.run([](Runtime& rt) {
    const Gid peer{1 - rt.pe(), 0, chant::kMainLid};
    if (rt.pe() == 0) {
      const long rep = chant::exchange<long, long>(rt, 33, 21L, peer);
      EXPECT_EQ(rep, 42);
    } else {
      long req = 0;
      rt.recv(33, &req, sizeof req, peer);
      long rep = req * 2;
      rt.send(33, &rep, sizeof rep, peer);
    }
  });
}

class ChantCollective : public ::testing::TestWithParam<PolicyCase> {};

TEST_P(ChantCollective, WorldGroupAllreduceFromMains) {
  chant::World w(chant_test::config_for(GetParam(), /*pes=*/4));
  w.run([](Runtime& rt) {
    nx::Group g = chant::make_world_group(rt, /*group_id=*/50);
    EXPECT_EQ(g.size(), 4);
    EXPECT_EQ(g.rank(), rt.pe());
    const std::int64_t mine = rt.pe() + 1;
    std::int64_t sum = 0;
    g.allreduce(&mine, &sum, 1, nx::ReduceOp::Sum);
    EXPECT_EQ(sum, 10);
    g.barrier();
    double d = rt.pe() == 2 ? 2.75 : 0.0;
    g.broadcast(&d, sizeof d, /*root=*/2);
    EXPECT_DOUBLE_EQ(d, 2.75);
  });
}

TEST_P(ChantCollective, CollectiveBlocksOnlyTheCallingThread) {
  // While the main thread sits in a (deliberately staggered) barrier, a
  // sibling thread must keep running — proof the waiter yields the fiber
  // rather than the OS thread.
  chant::World w(chant_test::config_for(GetParam(), /*pes=*/2));
  w.run([](Runtime& rt) {
    struct Ctx {
      Runtime* rt;
      long ticks = 0;
      bool stop = false;
    } ctx{&rt, 0, false};
    const Gid side = rt.create(
        [](void* p) -> void* {
          auto* c = static_cast<Ctx*>(p);
          while (!c->stop) {
            ++c->ticks;
            c->rt->yield();
          }
          return nullptr;
        },
        &ctx, PTHREAD_CHANTER_LOCAL, PTHREAD_CHANTER_LOCAL);
    nx::Group g = chant::make_world_group(rt, 51);
    long pre = 0;
    if (rt.pe() == 0) {
      // Causal stagger (a fixed yield count is a race under a loaded
      // machine): pe 1 starts its delay only after pe 0 announces it is
      // entering the barrier, so pe 0 is parked in the barrier for
      // (at least most of) pe 1's delay.
      char go = 'g';
      rt.send(90, &go, sizeof go, Gid{1, 0, chant::kMainLid});
      while (ctx.ticks == 0) rt.yield();  // sibling demonstrably live
      pre = ctx.ticks;
    } else {
      char go = 0;
      rt.recv(90, &go, sizeof go, Gid{0, 0, chant::kMainLid});
      for (int i = 0; i < 400; ++i) rt.yield();
    }
    g.barrier();
    if (rt.pe() == 0) {
      EXPECT_GT(ctx.ticks, pre) << "sibling starved during the barrier";
    }
    ctx.stop = true;
    rt.join(side);
  });
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, ChantMailbox,
                         ::testing::ValuesIn(chant_test::all_cases()),
                         [](const auto& info) {
                           return chant_test::case_name(info.param);
                         });
INSTANTIATE_TEST_SUITE_P(AllPolicies, ChantCollective,
                         ::testing::ValuesIn(chant_test::all_cases()),
                         [](const auto& info) {
                           return chant_test::case_name(info.param);
                         });

}  // namespace
