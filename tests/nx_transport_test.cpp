// nx_transport_test.cpp — the Transport seam itself: backend selection,
// shm ring mechanics (fragmentation, wraparound, backpressure), the
// cross-process barrier, shared scratch, and fork-per-process hosting.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <new>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "chant/chant.hpp"
#include "nx/machine.hpp"

namespace {

// Forking from a gtest binary whose main thread is instrumented trips
// TSan's "starting new threads after multi-threaded fork" check; the
// fork path is exercised by the plain and ASan CI jobs instead.
#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define CHANT_TSAN 1
#endif
#endif
#ifndef CHANT_TSAN
#define CHANT_TSAN 0
#endif
#define SKIP_UNDER_TSAN() \
  if (CHANT_TSAN) GTEST_SKIP() << "fork mode is not TSan-compatible"

nx::Machine::Config shm_cfg(int pes, bool fork_processes = false,
                            std::size_t ring_bytes = 1 << 18) {
  nx::Machine::Config c;
  c.pes = pes;
  c.transport = nx::TransportKind::ShmRing;
  c.fork_processes = fork_processes;
  c.shm_ring_bytes = ring_bytes;
  return c;
}

/// Test scratch region: the first 16 bytes of the machine's shared
/// scratch are reserved for the chant layer, so nx-level tests stake
/// out the bytes after them.
std::atomic<int>* test_counter(nx::Machine& m) {
  return new (static_cast<unsigned char*>(m.shared_scratch()) + 16)
      std::atomic<int>(0);
}

TEST(TransportKind, ParseAndResolve) {
  // Deprecated lenient shims (removal scheduled after PR 9): unknown
  // values still fall back to InProc here — the strict path is
  // TransportSpec::parse, covered in nx_transport_tcp_test.cpp.
  EXPECT_EQ(nx::parse_transport(nullptr), nx::TransportKind::InProc);
  EXPECT_EQ(nx::parse_transport(""), nx::TransportKind::InProc);
  EXPECT_EQ(nx::parse_transport("inproc"), nx::TransportKind::InProc);
  EXPECT_EQ(nx::parse_transport("shmring"), nx::TransportKind::ShmRing);
  EXPECT_EQ(nx::parse_transport("shm"), nx::TransportKind::ShmRing);
  EXPECT_EQ(nx::parse_transport("tcp://127.0.0.1:0"), nx::TransportKind::Tcp);
  EXPECT_EQ(nx::parse_transport("nonsense"), nx::TransportKind::InProc);
  // Pinned kinds resolve to themselves regardless of the environment.
  EXPECT_EQ(nx::resolve_transport(nx::TransportKind::InProc),
            nx::TransportKind::InProc);
  EXPECT_EQ(nx::resolve_transport(nx::TransportKind::ShmRing),
            nx::TransportKind::ShmRing);
}

TEST(TransportKind, MachineResolvesAndReportsBackend) {
  nx::Machine inproc{nx::Machine::Config{}};
  EXPECT_NE(inproc.config().transport, nx::TransportKind::Default);
  EXPECT_STREQ(nx::to_string(nx::TransportKind::InProc), "inproc");
  nx::Machine shm{shm_cfg(2)};
  EXPECT_EQ(shm.config().transport, nx::TransportKind::ShmRing);
  EXPECT_STREQ(shm.transport().name(), "shmring");
  EXPECT_TRUE(shm.transport().needs_pump());
}

TEST(ShmRing, TinyRingFragmentsLargeMessages) {
  // 4 KiB rings: a 64 KiB payload must travel as many chunk records and
  // reassemble byte-exact. The pending queue absorbs what the ring
  // cannot hold while the receiver drains.
  nx::Machine m{shm_cfg(2, false, 4096)};
  const std::size_t n = 64 * 1024;
  m.run([&](nx::Endpoint& ep) {
    if (ep.pe() == 0) {
      std::vector<std::uint8_t> msg(n);
      std::iota(msg.begin(), msg.end(), std::uint8_t{0});
      ep.csend(1, 0, 9, msg.data(), msg.size());
    } else {
      std::vector<std::uint8_t> buf(n);
      const nx::MsgHeader h =
          ep.crecv(0, 0, 9, nx::kTagExact, buf.data(), buf.size());
      ASSERT_EQ(h.len, n);
      EXPECT_FALSE(h.truncated);
      for (std::size_t i = 0; i < n; ++i)
        ASSERT_EQ(buf[i], static_cast<std::uint8_t>(i)) << "byte " << i;
    }
  });
}

TEST(ShmRing, ManySmallMessagesWrapAround) {
  // Far more traffic than ring capacity: exercises wraparound pads and
  // producer backpressure, and the per-source FIFO must survive both.
  nx::Machine m{shm_cfg(2, false, 4096)};
  constexpr int kMsgs = 3000;
  m.run([&](nx::Endpoint& ep) {
    const int peer = 1 - ep.pe();
    if (ep.pe() == 0) {
      for (int i = 0; i < kMsgs; ++i) ep.csend(peer, 0, 3, &i, sizeof i);
    } else {
      for (int i = 0; i < kMsgs; ++i) {
        int got = -1;
        ep.crecv(peer, 0, 3, nx::kTagExact, &got, sizeof got);
        ASSERT_EQ(got, i);
      }
    }
  });
}

TEST(ShmRing, ZeroByteAndTruncationAcrossTheWire) {
  nx::Machine m{shm_cfg(2)};
  m.run([&](nx::Endpoint& ep) {
    if (ep.pe() == 0) {
      ep.csend(1, 0, 1, nullptr, 0);
      const char big[32] = "0123456789abcdef0123456789abcde";
      ep.csend(1, 0, 2, big, sizeof big);
    } else {
      char buf[8];
      const nx::MsgHeader z = ep.crecv(0, 0, 1, nx::kTagExact, buf, sizeof buf);
      EXPECT_EQ(z.len, 0u);
      EXPECT_FALSE(z.truncated);
      const nx::MsgHeader t = ep.crecv(0, 0, 2, nx::kTagExact, buf, sizeof buf);
      EXPECT_EQ(t.len, 32u);  // original length still reported
      EXPECT_TRUE(t.truncated);
      EXPECT_EQ(std::string(buf, 8), "01234567");
    }
  });
}

TEST(ShmRing, SharedScratchVisibleToAllProcesses) {
  nx::Machine m{shm_cfg(2)};
  std::atomic<int>* ctr = test_counter(m);
  m.run([&](nx::Endpoint& ep) {
    ctr->fetch_add(1, std::memory_order_acq_rel);
    ep.machine().os_barrier();
    EXPECT_EQ(ctr->load(std::memory_order_acquire), 2);
  });
}

TEST(OsBarrier, InProcessPathUnchanged) {
  // Regression for the barrier extraction: on the inproc backend the
  // barrier must still rendezvous all processes (no thread released
  // before the last arrives), run() after run() on the same machine.
  // Pinned to InProc explicitly so a CHANT_TRANSPORT sweep of this
  // binary still exercises the original condvar barrier.
  nx::Machine::Config c{4, 1, nx::NetModel::zero(), 1 << 16};
  c.transport = nx::TransportKind::InProc;
  nx::Machine m{c};
  ASSERT_EQ(m.config().transport, nx::TransportKind::InProc);
  for (int round = 0; round < 2; ++round) {
    std::atomic<int> arrived{0};
    std::atomic<bool> violated{false};
    m.run([&](nx::Endpoint& ep) {
      (void)ep;
      arrived.fetch_add(1, std::memory_order_acq_rel);
      ep.machine().os_barrier();
      if (arrived.load(std::memory_order_acquire) != 4) violated = true;
      ep.machine().os_barrier();
    });
    EXPECT_FALSE(violated.load());
  }
}

TEST(ForkMode, RequiresCrossProcessTransport) {
  EXPECT_DEATH(
      {
        nx::Machine::Config c;
        c.transport_spec = nx::TransportSpec::inproc();
        c.transport_spec.fork = true;
        nx::Machine m{c};
      },
      "fork requires a cross-process transport");
}

TEST(ForkMode, PingPongAcrossRealProcesses) {
  SKIP_UNDER_TSAN();
  nx::Machine m{shm_cfg(2, /*fork_processes=*/true)};
  std::atomic<int>* ok = test_counter(m);
  m.run([&](nx::Endpoint& ep) {
    const int peer = 1 - ep.pe();
    constexpr int kRounds = 50;
    // gtest assertions in a forked child die with the child, invisible
    // to the parent's reporter — verify via the shared error/ok slots.
    for (int i = 0; i < kRounds; ++i) {
      if (ep.pe() == 0) {
        ep.csend(peer, 0, 7, &i, sizeof i);
        int echo = -1;
        ep.crecv(peer, 0, 8, nx::kTagExact, &echo, sizeof echo);
        if (echo != i * 2) throw std::runtime_error("bad echo");
      } else {
        int got = -1;
        ep.crecv(peer, 0, 7, nx::kTagExact, &got, sizeof got);
        const int reply = got * 2;
        ep.csend(peer, 0, 8, &reply, sizeof reply);
      }
    }
    ok->fetch_add(1, std::memory_order_acq_rel);
  });
  // Each forked child bumped the shared counter exactly once.
  EXPECT_EQ(ok->load(std::memory_order_acquire), 2);
}

TEST(ForkMode, BarrierSynchronizesRealProcesses) {
  SKIP_UNDER_TSAN();
  nx::Machine m{shm_cfg(3, /*fork_processes=*/true)};
  std::atomic<int>* phase = test_counter(m);
  m.run([&](nx::Endpoint& ep) {
    nx::Machine& mm = ep.machine();
    for (int round = 1; round <= 4; ++round) {
      phase->fetch_add(1, std::memory_order_acq_rel);
      mm.os_barrier();
      // Everyone arrived: the counter must read exactly round * procs
      // in every process before anyone races into the next round.
      if (phase->load(std::memory_order_acquire) != round * 3)
        throw std::runtime_error("barrier let a process through early");
      mm.os_barrier();
    }
  });
  EXPECT_EQ(phase->load(std::memory_order_acquire), 12);
}

TEST(ForkMode, ChildFailurePropagatesToParent) {
  SKIP_UNDER_TSAN();
  nx::Machine m{shm_cfg(2, /*fork_processes=*/true)};
  EXPECT_THROW(
      m.run([&](nx::Endpoint& ep) {
        if (ep.pe() == 1) throw std::runtime_error("child boom");
      }),
      std::runtime_error);
}

TEST(ForkMode, ChantWorldRunsForkedProcesses) {
  SKIP_UNDER_TSAN();
  // The full chant stack (runtime, server thread, RSR wire, termination
  // protocol) on forked OS processes; results land in shared scratch.
  chant::World::Config cfg;
  cfg.pes = 2;
  cfg.transport = nx::TransportKind::ShmRing;
  cfg.fork_processes = true;
  chant::World world{cfg};
  std::atomic<int>* sum = test_counter(world.machine());
  world.run([&](chant::Runtime& rt) {
    const int me = rt.endpoint().pe();
    const int peer = 1 - me;
    const chant::Gid to{peer, 0, chant::kMainLid};
    if (me == 0) {
      int token = 21;
      rt.send(5, &token, sizeof token, to);
      int back = 0;
      rt.recv(6, &back, sizeof back, to);
      sum->fetch_add(back, std::memory_order_acq_rel);
    } else {
      int got = 0;
      rt.recv(5, &got, sizeof got, to);
      got *= 2;
      rt.send(6, &got, sizeof got, to);
    }
  });
  EXPECT_EQ(sum->load(std::memory_order_acquire), 42);
}

}  // namespace
