// lwt_context_test.cpp — the raw context-switch layer, both backends.
#include "lwt/context.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "lwt/lwt.hpp"
#include "lwt/stack.hpp"

namespace {

TEST(Context, DefaultBackendIsAsmOnX86) {
#if defined(__x86_64__)
  EXPECT_EQ(lwt::default_backend(), lwt::ContextBackend::Asm);
#else
  EXPECT_EQ(lwt::default_backend(), lwt::ContextBackend::Ucontext);
#endif
}

class ContextBackends
    : public ::testing::TestWithParam<lwt::ContextBackend> {};

// A scheduler round-trip is the smallest end-to-end proof the backend
// saves/restores correctly: values must survive across many switches.
TEST_P(ContextBackends, ValuesSurviveSwitches) {
  int counter = 0;
  lwt::run(
      [&] {
        const int before = 41;
        double fp = 3.5;  // exercises fpu state save
        for (int i = 0; i < 100; ++i) {
          lwt::yield();
          fp *= 1.0;
        }
        EXPECT_EQ(before, 41);
        EXPECT_DOUBLE_EQ(fp, 3.5);
        counter = before + 1;
      },
      GetParam());
  EXPECT_EQ(counter, 42);
}

TEST_P(ContextBackends, ManyFibersInterleave) {
  std::vector<int> order;
  lwt::run(
      [&] {
        std::vector<lwt::Tcb*> ts;
        for (int i = 0; i < 8; ++i) {
          ts.push_back(lwt::go([&order, i] {
            for (int k = 0; k < 3; ++k) {
              order.push_back(i);
              lwt::yield();
            }
          }));
        }
        for (auto* t : ts) lwt::join(t);
      },
      GetParam());
  ASSERT_EQ(order.size(), 24u);
  // Round-robin: the first 8 entries are one pass over all fibers.
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST_P(ContextBackends, DeepCallStacksWork) {
  // Recursion on the fiber stack proves the stack actually switched.
  struct Rec {
    static int go(int n) { return n == 0 ? 0 : 1 + go(n - 1); }
  };
  int depth = 0;
  lwt::run([&] { depth = Rec::go(2000); }, GetParam());
  EXPECT_EQ(depth, 2000);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, ContextBackends,
                         ::testing::Values(
#if !defined(LWT_NO_ASM_CONTEXT)
                             lwt::ContextBackend::Asm,
#endif
                             lwt::ContextBackend::Ucontext),
                         [](const auto& info) {
                           return info.param == lwt::ContextBackend::Asm
                                      ? "Asm"
                                      : "Ucontext";
                         });

}  // namespace
