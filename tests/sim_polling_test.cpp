// sim_polling_test.cpp — schedule exploration of the three polling
// policies (paper §3.1/§4.2, Figs. 5–6) plus the WQ-msgtestany
// ablation. Blocking receives must complete with the right data and
// order no matter how the controller rotates the ready queues or how
// the wire delays traffic — and a parked receive must stay live even
// while computation threads keep the ready queue saturated.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "chant/chant.hpp"
#include "sim/explore.hpp"

namespace {

using chant::Gid;
using chant::PollPolicy;
using chant::Runtime;

struct PollCase {
  PollPolicy policy;
  bool wq_testany;
  const char* name;
};

const PollCase kPollCases[] = {
    {PollPolicy::ThreadPolls, false, "TP"},
    {PollPolicy::SchedulerPollsWQ, false, "WQ"},
    {PollPolicy::SchedulerPollsWQ, true, "WQta"},
    {PollPolicy::SchedulerPollsPS, false, "PS"},
};

class SimPolling : public ::testing::TestWithParam<PollCase> {};

TEST_P(SimPolling, BlockingAndNonblockingReceivesComplete) {
  // One producer, one consumer; the consumer alternates blocking recv,
  // irecv+msgwait and irecv+msgtest-spin so every wait path of the
  // policy under test is crossed by the explored schedules.
  sim::Options opt;
  opt.seeds = 256;
  opt.base_seed = 0x9011;
  opt.faults.delay_p = 0.4;
  opt.faults.max_delay_ns = 20'000;
  const PollCase pc = GetParam();
  const sim::Result res = sim::explore(opt, [&](sim::Session& s) {
    chant::World::Config cfg;
    cfg.pes = 1;
    cfg.rt.policy = pc.policy;
    cfg.rt.wq_use_testany = pc.wq_testany;
    cfg.rt.start_server = false;
    s.apply(cfg);
    chant::World w(cfg);
    w.run([](Runtime& rt) {
      constexpr int kMsgs = 9;
      struct Ctx {
        Runtime* rt;
      };
      Ctx c{&rt};
      const Gid g = rt.create(
          [](void* p) -> void* {
            Runtime& r = *static_cast<Ctx*>(p)->rt;
            for (int i = 0; i < kMsgs; ++i) {
              r.send(5, &i, sizeof i,
                     Gid{r.pe(), r.process(), chant::kMainLid});
              if (i % 2 == 0) r.yield();
            }
            return nullptr;
          },
          &c, rt.pe(), rt.process());
      for (int i = 0; i < kMsgs; ++i) {
        int got = -1;
        switch (i % 3) {
          case 0: {
            const chant::MsgInfo mi =
                rt.recv(5, &got, sizeof got, chant::kAnyThread);
            EXPECT_EQ(mi.len, sizeof got);
            break;
          }
          case 1: {
            const int h = rt.irecv(5, &got, sizeof got, chant::kAnyThread);
            const chant::MsgInfo mi = rt.msgwait(h);
            EXPECT_TRUE(mi.status.ok());
            break;
          }
          default: {
            const int h = rt.irecv(5, &got, sizeof got, chant::kAnyThread);
            while (!rt.msgtest(h)) rt.yield();
            break;
          }
        }
        EXPECT_EQ(got, i);
      }
      rt.join(g);
      EXPECT_EQ(rt.endpoint().unexpected_count(), 0u);
    });
  });
  EXPECT_FALSE(res.failed);
  EXPECT_EQ(res.iterations, 256u);
}

TEST_P(SimPolling, ParkedReceiveStaysLiveUnderReadyQueueSaturation) {
  // The property the §4.2 policy comparison silently assumes: a thread
  // blocked for a message is never starved by runnable computation
  // threads. The hogs outnumber the sender and keep every scheduling
  // point busy; the blocked main must still see its (delayed) message.
  sim::Options opt;
  opt.seeds = 128;
  opt.base_seed = 0x11FE;
  opt.faults.delay_p = 0.7;
  opt.faults.max_delay_ns = 50'000;
  const PollCase pc = GetParam();
  const sim::Result res = sim::explore(opt, [&](sim::Session& s) {
    chant::World::Config cfg;
    cfg.pes = 1;
    cfg.rt.policy = pc.policy;
    cfg.rt.wq_use_testany = pc.wq_testany;
    cfg.rt.start_server = false;
    s.apply(cfg);
    chant::World w(cfg);
    w.run([](Runtime& rt) {
      struct Ctx {
        Runtime* rt;
      };
      Ctx c{&rt};
      std::vector<Gid> hogs;
      for (int t = 0; t < 4; ++t) {
        hogs.push_back(rt.create(
            [](void* p) -> void* {
              Runtime& r = *static_cast<Ctx*>(p)->rt;
              for (int i = 0; i < 400; ++i) r.yield();
              return nullptr;
            },
            &c, rt.pe(), rt.process()));
      }
      const Gid sender = rt.create(
          [](void* p) -> void* {
            Runtime& r = *static_cast<Ctx*>(p)->rt;
            for (int i = 0; i < 5; ++i) r.yield();  // let hogs pile up
            const int v = 424242;
            r.send(6, &v, sizeof v, Gid{r.pe(), r.process(), chant::kMainLid});
            return nullptr;
          },
          &c, rt.pe(), rt.process());
      int got = -1;
      rt.recv(6, &got, sizeof got, chant::kAnyThread);
      EXPECT_EQ(got, 424242);
      rt.join(sender);
      for (const Gid& g : hogs) rt.join(g);
    });
  });
  EXPECT_FALSE(res.failed);
  EXPECT_EQ(res.iterations, 128u);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, SimPolling,
                         ::testing::ValuesIn(kPollCases),
                         [](const auto& info) {
                           return std::string(info.param.name);
                         });

}  // namespace
