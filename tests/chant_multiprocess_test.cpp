// chant_multiprocess_test.cpp — the full 3-tuple (pe, process, thread):
// machines with several processes per processing element. The paper's
// naming scheme distinguishes pe and process precisely so this layout
// works; these tests make sure nothing conflates the two.
#include <gtest/gtest.h>

#include <cstring>
#include <mutex>
#include <set>

#include "chant_test_util.hpp"

namespace {

using chant::Gid;
using chant::MsgInfo;
using chant::Runtime;

chant::World::Config grid(int pes, int procs) {
  chant::World::Config cfg;
  cfg.pes = pes;
  cfg.processes_per_pe = procs;
  cfg.rt.policy = chant::PollPolicy::SchedulerPollsPS;
  return cfg;
}

TEST(MultiProcess, EveryProcessHasItsOwnRuntime) {
  chant::World w(grid(2, 3));
  std::mutex mu;
  std::set<std::pair<int, int>> seen;
  w.run([&](Runtime& rt) {
    EXPECT_EQ(rt.self().thread, chant::kMainLid);
    std::lock_guard<std::mutex> lk(mu);
    seen.insert({rt.pe(), rt.process()});
  });
  EXPECT_EQ(seen.size(), 6u);
}

TEST(MultiProcess, MessagesDistinguishProcessFromPe) {
  // (0,1) and (1,0) both exist; traffic addressed to one must never
  // reach the other even though pe/process digits are swapped.
  chant::World w(grid(2, 2));
  w.run([](Runtime& rt) {
    const Gid me = rt.self();
    if (rt.pe() == 0 && rt.process() == 0) {
      long a = 11;
      long b = 22;
      rt.send(5, &a, sizeof a, Gid{0, 1, chant::kMainLid});
      rt.send(5, &b, sizeof b, Gid{1, 0, chant::kMainLid});
      long from01 = 0;
      long from10 = 0;
      rt.recv(6, &from01, sizeof from01, Gid{0, 1, chant::kMainLid});
      rt.recv(6, &from10, sizeof from10, Gid{1, 0, chant::kMainLid});
      EXPECT_EQ(from01, 111);
      EXPECT_EQ(from10, 222);
    } else if ((rt.pe() == 0 && rt.process() == 1) ||
               (rt.pe() == 1 && rt.process() == 0)) {
      long v = 0;
      rt.recv(5, &v, sizeof v, Gid{0, 0, chant::kMainLid});
      EXPECT_EQ(v, rt.pe() == 0 ? 11 : 22);
      long reply = rt.pe() == 0 ? 111 : 222;
      rt.send(6, &reply, sizeof reply, Gid{0, 0, chant::kMainLid});
    }
    (void)me;
  });
}

TEST(MultiProcess, RemoteCreateTargetsTheRightProcess) {
  chant::World w(grid(2, 2));
  w.run([](Runtime& rt) {
    if (rt.pe() != 0 || rt.process() != 0) return;
    for (int pe = 0; pe < 2; ++pe) {
      for (int pr = 0; pr < 2; ++pr) {
        const Gid g = rt.create(
            [](void*) -> void* {
              Runtime& r = *Runtime::current();
              return reinterpret_cast<void*>(
                  static_cast<long>(r.pe() * 10 + r.process()));
            },
            nullptr, pe, pr);
        EXPECT_EQ(g.pe, pe);
        EXPECT_EQ(g.process, pr);
        EXPECT_EQ(rt.join(g),
                  reinterpret_cast<void*>(static_cast<long>(pe * 10 + pr)));
      }
    }
  });
}

TEST(MultiProcess, CoLocationAccessorsWork) {
  // pthread_chanter_pe / _process exist exactly for these tests
  // (same pe => possibly shared memory; same process => same address
  // space), per Appendix A.
  chant::World w(grid(2, 2));
  w.run([](Runtime& rt) {
    if (rt.pe() != 0 || rt.process() != 0) return;
    const Gid same_proc = rt.create([](void*) -> void* { return nullptr; },
                                    nullptr, 0, 0);
    const Gid same_pe = rt.create([](void*) -> void* { return nullptr; },
                                  nullptr, 0, 1);
    const Gid other = rt.create([](void*) -> void* { return nullptr; },
                                nullptr, 1, 1);
    pthread_chanter_t* self = pthread_chanter_self();
    EXPECT_EQ(pthread_chanter_pe(&same_proc), pthread_chanter_pe(self));
    EXPECT_EQ(pthread_chanter_process(&same_proc),
              pthread_chanter_process(self));
    EXPECT_EQ(pthread_chanter_pe(&same_pe), pthread_chanter_pe(self));
    EXPECT_NE(pthread_chanter_process(&same_pe),
              pthread_chanter_process(self));
    EXPECT_NE(pthread_chanter_pe(&other), pthread_chanter_pe(self));
    rt.join(same_proc);
    rt.join(same_pe);
    rt.join(other);
  });
}

TEST(MultiProcess, RsrBetweenProcessesOfOnePe) {
  chant::World w(grid(1, 3));
  static long t_bias;  // thread_local not needed: set before traffic
  const int handler = w.register_handler(
      [](Runtime& rt, Runtime::RsrContext&, const void* arg, std::size_t len,
         std::vector<std::uint8_t>& reply) {
        long v = 0;
        if (len >= sizeof v) std::memcpy(&v, arg, sizeof v);
        const long out = v + rt.process() * 1000;
        reply.resize(sizeof out);
        std::memcpy(reply.data(), &out, sizeof out);
      });
  w.run([&](Runtime& rt) {
    if (rt.process() != 0) return;
    for (int pr = 1; pr < 3; ++pr) {
      long v = 7;
      const auto rep = rt.call(0, pr, handler, &v, sizeof v);
      long out = 0;
      std::memcpy(&out, rep.data(), sizeof out);
      EXPECT_EQ(out, 7 + pr * 1000);
    }
  });
  (void)t_bias;
}

TEST(MultiProcess, LidsAreIndependentPerProcess) {
  chant::World w(grid(1, 2));
  w.run([](Runtime& rt) {
    if (rt.process() != 0) return;
    // Create on both processes: lids may coincide — the 3-tuple, not the
    // lid alone, names a thread.
    const Gid a = rt.create([](void*) -> void* { return nullptr; },
                            nullptr, 0, 0);
    const Gid b = rt.create([](void*) -> void* { return nullptr; },
                            nullptr, 0, 1);
    EXPECT_NE(a, b);
    EXPECT_EQ(a.thread, b.thread);  // same creation order on both sides
    rt.join(a);
    rt.join(b);
  });
}

}  // namespace
