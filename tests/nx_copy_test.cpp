// nx_copy_test.cpp — the zero-copy invariant of the descriptor path,
// proven through the bytes_copied / temp_allocs / gather_sends counters:
// a gather send into a posted receive stages nothing; eager buffering of
// an unexpected message is the one intermediate copy the path ever
// makes; rendezvous stages nothing; and a full Chant RSR round trip at
// steady state moves payloads with zero intermediate copies and zero
// per-call heap allocations.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "chant/chant.hpp"
#include "nx/fault.hpp"
#include "nx/machine.hpp"

namespace {

std::vector<char> pattern(std::size_t n, char seed) {
  std::vector<char> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<char>(seed + static_cast<char>(i % 23));
  }
  return v;
}

TEST(NxCopy, GatherIntoPostedReceiveStagesNothing) {
  nx::Machine m{nx::Machine::Config{1, 1, nx::NetModel::zero(), 1 << 16}};
  nx::Endpoint& ep = m.endpoint(0, 0);
  const std::vector<char> a = pattern(5, 'a');
  const std::vector<char> b = pattern(7, 'b');
  const std::vector<char> c = pattern(9, 'c');
  char buf[32] = {0};
  nx::Handle h = ep.irecv(0, 0, 11, nx::kTagExact, buf, sizeof buf);
  const nx::IoVec iov[3] = {{a.data(), a.size()},
                            {b.data(), b.size()},
                            {c.data(), c.size()}};
  ep.csendv(0, 0, 11, iov, 3);
  EXPECT_EQ(ep.counters().gather_sends.load(), 1u);
  EXPECT_EQ(ep.counters().posted_match.load(), 1u);
  // The zero-copy invariant: assembled directly into the posted buffer,
  // nothing staged en route.
  EXPECT_EQ(ep.counters().temp_allocs.load(), 0u);
  EXPECT_EQ(ep.counters().bytes_copied.load(), 0u);
  nx::MsgHeader out;
  ASSERT_TRUE(ep.msgtest(h, &out));
  EXPECT_EQ(out.len, 21u);
  EXPECT_FALSE(out.truncated);
  EXPECT_EQ(0, std::memcmp(buf, a.data(), a.size()));
  EXPECT_EQ(0, std::memcmp(buf + 5, b.data(), b.size()));
  EXPECT_EQ(0, std::memcmp(buf + 12, c.data(), c.size()));
}

TEST(NxCopy, UnexpectedEagerGatherIsStagedExactlyOnce) {
  nx::Machine m{nx::Machine::Config{1, 1, nx::NetModel::zero(), 1 << 16}};
  nx::Endpoint& ep = m.endpoint(0, 0);
  std::vector<char> a = pattern(16, 'p');
  std::vector<char> b = pattern(48, 'q');
  const nx::IoVec iov[2] = {{a.data(), a.size()}, {b.data(), b.size()}};
  ep.csendv(0, 0, 12, iov, 2);  // no receive posted: eager-buffered
  EXPECT_EQ(ep.counters().unexpected_eager.load(), 1u);
  EXPECT_EQ(ep.counters().temp_allocs.load(), 1u);
  EXPECT_EQ(ep.counters().bytes_copied.load(), 64u);
  // The fragments are reusable immediately (locally blocking send).
  const std::vector<char> a0 = a, b0 = b;
  std::memset(a.data(), 'X', a.size());
  std::memset(b.data(), 'X', b.size());
  char buf[64];
  ep.crecv(0, 0, 12, nx::kTagExact, buf, sizeof buf);
  EXPECT_EQ(0, std::memcmp(buf, a0.data(), a0.size()));
  EXPECT_EQ(0, std::memcmp(buf + 16, b0.data(), b0.size()));
}

TEST(NxCopy, UnexpectedRendezvousGatherStagesNothing) {
  nx::Machine m{nx::Machine::Config{1, 1, nx::NetModel::zero(),
                                    /*eager=*/64}};
  nx::Endpoint& ep = m.endpoint(0, 0);
  const std::vector<char> a = pattern(100, 'r');
  const std::vector<char> b = pattern(200, 's');
  const nx::IoVec iov[2] = {{a.data(), a.size()}, {b.data(), b.size()}};
  nx::Handle sh = ep.isendv(0, 0, 13, iov, 2);
  EXPECT_FALSE(ep.msgdone(sh));  // > eager: rendezvous, sender parked
  EXPECT_EQ(ep.counters().unexpected_rndv.load(), 1u);
  EXPECT_EQ(ep.counters().temp_allocs.load(), 0u);
  EXPECT_EQ(ep.counters().bytes_copied.load(), 0u);
  std::vector<char> buf(300);
  ep.crecv(0, 0, 13, nx::kTagExact, buf.data(), buf.size());
  EXPECT_TRUE(ep.msgtest(sh));  // receiver copied; sender complete
  // Still nothing staged: the receive copied straight from the
  // sender's fragments.
  EXPECT_EQ(ep.counters().temp_allocs.load(), 0u);
  EXPECT_EQ(ep.counters().bytes_copied.load(), 0u);
  EXPECT_EQ(0, std::memcmp(buf.data(), a.data(), a.size()));
  EXPECT_EQ(0, std::memcmp(buf.data() + 100, b.data(), b.size()));
}

TEST(NxCopy, TruncationCutsAcrossAFragmentBoundary) {
  nx::Machine m{nx::Machine::Config{1, 1, nx::NetModel::zero(), 1 << 16}};
  nx::Endpoint& ep = m.endpoint(0, 0);
  const std::vector<char> a = pattern(6, 'f');
  const std::vector<char> b = pattern(6, 'g');
  const std::vector<char> c = pattern(4, 'h');
  char buf[10] = {0};  // cuts mid-way through the second fragment
  nx::Handle h = ep.irecv(0, 0, 14, nx::kTagExact, buf, sizeof buf);
  const nx::IoVec iov[3] = {{a.data(), a.size()},
                            {b.data(), b.size()},
                            {c.data(), c.size()}};
  ep.csendv(0, 0, 14, iov, 3);
  nx::MsgHeader out;
  ASSERT_TRUE(ep.msgtest(h, &out));
  EXPECT_TRUE(out.truncated);
  EXPECT_EQ(out.len, 16u);  // sender's full length is reported
  EXPECT_EQ(0, std::memcmp(buf, a.data(), 6));
  EXPECT_EQ(0, std::memcmp(buf + 6, b.data(), 4));  // partial fragment
}

TEST(NxCopy, SingleAndEmptyFragmentsMatchContiguousSends) {
  nx::Machine m{nx::Machine::Config{1, 1, nx::NetModel::zero(), 1 << 16}};
  nx::Endpoint& ep = m.endpoint(0, 0);
  const std::vector<char> a = pattern(5, 'k');
  char buf[8] = {0};
  // Single-fragment descriptor == contiguous send.
  nx::Handle h1 = ep.irecv(0, 0, 15, nx::kTagExact, buf, sizeof buf);
  const nx::IoVec one{a.data(), a.size()};
  ep.csendv(0, 0, 15, &one, 1);
  nx::MsgHeader out;
  ASSERT_TRUE(ep.msgtest(h1, &out));
  EXPECT_EQ(out.len, 5u);
  EXPECT_EQ(0, std::memcmp(buf, a.data(), 5));
  // Zero-length fragments vanish from the assembled payload.
  std::memset(buf, 0, sizeof buf);
  nx::Handle h2 = ep.irecv(0, 0, 16, nx::kTagExact, buf, sizeof buf);
  const nx::IoVec sparse[3] = {{nullptr, 0}, {a.data(), a.size()},
                               {nullptr, 0}};
  ep.csendv(0, 0, 16, sparse, 3);
  ASSERT_TRUE(ep.msgtest(h2, &out));
  EXPECT_EQ(out.len, 5u);
  EXPECT_EQ(0, std::memcmp(buf, a.data(), 5));
}

// ------------------------------------------------- fault interactions

struct DropAll : nx::FaultInjector {
  nx::FaultDecision on_send(const nx::MsgHeader&) override {
    return {.drop = true};
  }
};

TEST(NxCopy, DroppedGatherSendStillCompletesTheSender) {
  DropAll inj;
  nx::Machine::Config cfg{1, 1, nx::NetModel::zero(), /*eager=*/64};
  cfg.fault = &inj;
  nx::Machine m{cfg};
  nx::Endpoint& ep = m.endpoint(0, 0);
  const std::vector<char> big = pattern(500, 'd');  // rendezvous-sized
  const nx::IoVec iov[2] = {{big.data(), 250}, {big.data() + 250, 250}};
  nx::Handle sh = ep.isendv(0, 0, 17, iov, 2);
  // The wire ate it after handover: the sender must not wedge waiting
  // for a rendezvous copy that will never happen.
  EXPECT_TRUE(ep.msgtest(sh));
  EXPECT_EQ(ep.counters().dropped.load(), 1u);
  EXPECT_EQ(ep.counters().temp_allocs.load(), 0u);
}

struct DupOnce : nx::FaultInjector {
  nx::FaultDecision on_send(const nx::MsgHeader& h) override {
    if (h.tag == 18) return {.duplicates = 1};
    return {};
  }
};

TEST(NxCopy, InjectedDuplicateIsStagedButTheOriginalIsNot) {
  DupOnce inj;
  nx::Machine::Config cfg{1, 1, nx::NetModel::zero(), 1 << 16};
  cfg.fault = &inj;
  nx::Machine m{cfg};
  nx::Endpoint& ep = m.endpoint(0, 0);
  const std::vector<char> a = pattern(10, 'u');
  const std::vector<char> b = pattern(10, 'v');
  char buf[20] = {0};
  nx::Handle h = ep.irecv(0, 0, 18, nx::kTagExact, buf, sizeof buf);
  const nx::IoVec iov[2] = {{a.data(), a.size()}, {b.data(), b.size()}};
  ep.csendv(0, 0, 18, iov, 2);
  nx::MsgHeader out;
  while (!ep.msgtest(h, &out)) {
  }
  EXPECT_EQ(0, std::memcmp(buf, a.data(), 10));
  EXPECT_EQ(0, std::memcmp(buf + 10, b.data(), 10));
  // The duplicate is an eager-buffered clone (one staging alloc); it is
  // delivered intact even though the sender's fragments are long gone.
  EXPECT_EQ(ep.counters().duplicated.load(), 1u);
  EXPECT_EQ(ep.counters().temp_allocs.load(), 1u);
  EXPECT_EQ(ep.counters().bytes_copied.load(), 20u);
  char buf2[20] = {0};
  ep.crecv(0, 0, 18, nx::kTagExact, buf2, sizeof buf2);
  EXPECT_EQ(0, std::memcmp(buf2, buf, 20));
}

// ------------------------------------ the Chant-level end-to-end claim

TEST(NxCopy, ChantRsrRoundTripIsZeroCopyAndAllocFreeAtSteadyState) {
  // Single pe + scheduler-polls: cooperative scheduling makes the
  // server's re-posted receive deterministic, so after one warmup call
  // every request lands in a posted buffer and every reply lands in the
  // caller's pre-posted landing zone — no staging, and every scratch
  // buffer comes back out of the runtime's pool.
  chant::World::Config cfg;
  cfg.pes = 1;
  cfg.rt.policy = chant::PollPolicy::SchedulerPollsPS;
  chant::World w(cfg);
  const int handler = w.register_handler(
      [](chant::Runtime&, chant::Runtime::RsrContext&, const void* arg,
         std::size_t len, std::vector<std::uint8_t>& reply) {
        reply.assign(static_cast<const std::uint8_t*>(arg),
                     static_cast<const std::uint8_t*>(arg) + len);
      });
  w.run([&](chant::Runtime& rt) {
    std::uint8_t payload[64];
    for (std::size_t i = 0; i < sizeof payload; ++i) {
      payload[i] = static_cast<std::uint8_t>(i);
    }
    for (int i = 0; i < 5; ++i) {  // warmup: populate the pool
      (void)rt.call(0, 0, handler, payload, sizeof payload);
    }
    nx::Counters& nc = rt.net_counters();
    const auto copies0 = nc.bytes_copied.load();
    const auto allocs0 = nc.temp_allocs.load();
    const auto fresh0 = rt.buffer_pool().stats().fresh;
    const int kCalls = 1000;
    for (int i = 0; i < kCalls; ++i) {
      const auto rep = rt.call(0, 0, handler, payload, sizeof payload);
      ASSERT_EQ(rep.size(), sizeof payload);
      ASSERT_EQ(0, std::memcmp(rep.data(), payload, sizeof payload));
    }
    // Zero intermediate payload copies and zero staging allocations
    // across 1000 round trips...
    EXPECT_EQ(nc.bytes_copied.load(), copies0);
    EXPECT_EQ(nc.temp_allocs.load(), allocs0);
    // ...and zero fresh heap buffers: every scratch acquire recycled.
    EXPECT_EQ(rt.buffer_pool().stats().fresh, fresh0);
  });
}

}  // namespace
