// lwt_sync_test.cpp — fiber mutex / condvar / semaphore / barrier.
#include "lwt/sync.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "lwt/lwt.hpp"

namespace {

TEST(Mutex, ProvidesMutualExclusion) {
  lwt::run([] {
    lwt::Mutex m;
    int in_critical = 0;
    int max_in_critical = 0;
    long counter = 0;
    std::vector<lwt::Tcb*> ts;
    for (int i = 0; i < 16; ++i) {
      ts.push_back(lwt::go([&] {
        for (int k = 0; k < 50; ++k) {
          lwt::LockGuard g(m);
          ++in_critical;
          if (in_critical > max_in_critical) max_in_critical = in_critical;
          lwt::yield();  // try hard to interleave inside the section
          ++counter;
          --in_critical;
        }
      }));
    }
    for (auto* t : ts) lwt::join(t);
    EXPECT_EQ(max_in_critical, 1);
    EXPECT_EQ(counter, 16 * 50);
  });
}

TEST(Mutex, TryLockRespectsOwnership) {
  lwt::run([] {
    lwt::Mutex m;
    EXPECT_TRUE(m.try_lock());
    lwt::Tcb* t = lwt::go([&] { EXPECT_FALSE(m.try_lock()); });
    lwt::join(t);
    m.unlock();
    EXPECT_FALSE(m.locked());
  });
}

TEST(Mutex, UnlockWakesWaiterFifo) {
  lwt::run([] {
    lwt::Mutex m;
    std::vector<int> order;
    m.lock();
    std::vector<lwt::Tcb*> ts;
    for (int i = 0; i < 3; ++i) {
      ts.push_back(lwt::go([&, i] {
        lwt::LockGuard g(m);
        order.push_back(i);
      }));
    }
    lwt::yield();  // all three park on the mutex
    m.unlock();
    for (auto* t : ts) lwt::join(t);
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], 0);
    EXPECT_EQ(order[1], 1);
    EXPECT_EQ(order[2], 2);
  });
}

TEST(CondVar, SignalWakesOneWaiter) {
  lwt::run([] {
    lwt::Mutex m;
    lwt::CondVar cv;
    int stage = 0;
    lwt::Tcb* t = lwt::go([&] {
      lwt::LockGuard g(m);
      cv.wait(m, [&] { return stage == 1; });
      stage = 2;
    });
    {
      lwt::LockGuard g(m);
      stage = 1;
      cv.signal();
    }
    lwt::join(t);
    EXPECT_EQ(stage, 2);
  });
}

TEST(CondVar, BroadcastWakesAll) {
  lwt::run([] {
    lwt::Mutex m;
    lwt::CondVar cv;
    bool go = false;
    int woke = 0;
    std::vector<lwt::Tcb*> ts;
    for (int i = 0; i < 10; ++i) {
      ts.push_back(lwt::go([&] {
        lwt::LockGuard g(m);
        cv.wait(m, [&] { return go; });
        ++woke;
      }));
    }
    lwt::yield();
    EXPECT_EQ(cv.waiting(), 10u);
    {
      lwt::LockGuard g(m);
      go = true;
      cv.broadcast();
    }
    for (auto* t : ts) lwt::join(t);
    EXPECT_EQ(woke, 10);
  });
}

TEST(CondVar, ProducerConsumerPipeline) {
  lwt::run([] {
    lwt::Mutex m;
    lwt::CondVar not_empty;
    lwt::CondVar not_full;
    std::vector<int> q;
    constexpr std::size_t kCap = 4;
    long consumed_sum = 0;
    lwt::Tcb* producer = lwt::go([&] {
      for (int i = 1; i <= 100; ++i) {
        lwt::LockGuard g(m);
        not_full.wait(m, [&] { return q.size() < kCap; });
        q.push_back(i);
        not_empty.signal();
      }
    });
    lwt::Tcb* consumer = lwt::go([&] {
      for (int i = 0; i < 100; ++i) {
        lwt::LockGuard g(m);
        not_empty.wait(m, [&] { return !q.empty(); });
        consumed_sum += q.front();
        q.erase(q.begin());
        not_full.signal();
      }
    });
    lwt::join(producer);
    lwt::join(consumer);
    EXPECT_EQ(consumed_sum, 100L * 101 / 2);
  });
}

TEST(Semaphore, BoundsConcurrency) {
  lwt::run([] {
    lwt::Semaphore sem(3);
    int inside = 0;
    int peak = 0;
    std::vector<lwt::Tcb*> ts;
    for (int i = 0; i < 12; ++i) {
      ts.push_back(lwt::go([&] {
        sem.acquire();
        ++inside;
        if (inside > peak) peak = inside;
        lwt::yield();
        --inside;
        sem.release();
      }));
    }
    for (auto* t : ts) lwt::join(t);
    EXPECT_LE(peak, 3);
    EXPECT_GE(peak, 2);  // with 12 fibers the limit is actually reached
    EXPECT_EQ(sem.value(), 3);
  });
}

TEST(Semaphore, TryAcquire) {
  lwt::run([] {
    lwt::Semaphore sem(1);
    EXPECT_TRUE(sem.try_acquire());
    EXPECT_FALSE(sem.try_acquire());
    sem.release();
    EXPECT_TRUE(sem.try_acquire());
    sem.release();
  });
}

TEST(Semaphore, ReleaseManyWakesMany) {
  lwt::run([] {
    lwt::Semaphore sem(0);
    int woke = 0;
    std::vector<lwt::Tcb*> ts;
    for (int i = 0; i < 5; ++i) {
      ts.push_back(lwt::go([&] {
        sem.acquire();
        ++woke;
      }));
    }
    lwt::yield();
    sem.release(5);
    for (auto* t : ts) lwt::join(t);
    EXPECT_EQ(woke, 5);
  });
}

TEST(Barrier, SynchronizesGenerations) {
  lwt::run([] {
    constexpr int kParties = 6;
    lwt::Barrier bar(kParties);
    std::vector<int> round_of(kParties, -1);
    int serials = 0;
    std::vector<lwt::Tcb*> ts;
    for (int i = 0; i < kParties; ++i) {
      ts.push_back(lwt::go([&, i] {
        for (int r = 0; r < 5; ++r) {
          round_of[static_cast<std::size_t>(i)] = r;
          if (bar.arrive_and_wait()) ++serials;
          // After the barrier, everyone must have reached round r.
          for (int j = 0; j < kParties; ++j) {
            EXPECT_GE(round_of[static_cast<std::size_t>(j)], r);
          }
        }
      }));
    }
    for (auto* t : ts) lwt::join(t);
    EXPECT_EQ(serials, 5);  // exactly one serial thread per generation
  });
}

using SyncDeathTest = ::testing::Test;

TEST(SyncDeathTest, RecursiveLockAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(lwt::run([] {
                 lwt::Mutex m;
                 m.lock();
                 m.lock();
               }),
               "recursive");
}

TEST(SyncDeathTest, UnlockByNonOwnerAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(lwt::run([] {
                 lwt::Mutex m;
                 m.lock();
                 lwt::Tcb* t = lwt::go([&] { m.unlock(); });
                 lwt::join(t);
               }),
               "non-owner");
}

TEST(SyncDeathTest, CondWaitWithoutMutexAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(lwt::run([] {
                 lwt::Mutex m;
                 lwt::CondVar cv;
                 cv.wait(m);  // mutex not held
               }),
               "without holding");
}

}  // namespace
