// chant_capi_sync_test.cpp — the Appendix-A local-thread C routines:
// attributes, mutexes, condition variables, TLS keys, once-init.
#include <gtest/gtest.h>

#include <cerrno>

#include "chant/chant.hpp"

namespace {

chant::World::Config one_pe() {
  chant::World::Config cfg;
  cfg.pes = 1;
  return cfg;
}

TEST(ChanterAttr, InitDefaultsAndAccessors) {
  pthread_chanter_attr_t attr;
  ASSERT_EQ(pthread_chanter_attr_init(&attr), 0);
  size_t ss = 1;
  ASSERT_EQ(pthread_chanter_attr_getstacksize(&attr, &ss), 0);
  EXPECT_EQ(ss, 0u);  // runtime default
  EXPECT_EQ(pthread_chanter_attr_setstacksize(&attr, 1 << 20), 0);
  ASSERT_EQ(pthread_chanter_attr_getstacksize(&attr, &ss), 0);
  EXPECT_EQ(ss, 1u << 20);
  int prio = -1;
  EXPECT_EQ(pthread_chanter_attr_setprio(&attr, 6), 0);
  ASSERT_EQ(pthread_chanter_attr_getprio(&attr, &prio), 0);
  EXPECT_EQ(prio, 6);
  EXPECT_EQ(pthread_chanter_attr_setprio(&attr, 99), EINVAL);
  EXPECT_EQ(pthread_chanter_attr_setdetachstate(&attr, 1), 0);
  EXPECT_EQ(pthread_chanter_attr_destroy(&attr), 0);
  EXPECT_EQ(pthread_chanter_attr_init(nullptr), EINVAL);
}

TEST(ChanterMutex, LockTrylockUnlock) {
  chant::World w(one_pe());
  w.run([](chant::Runtime&) {
    pthread_chanter_mutex_t m;
    ASSERT_EQ(pthread_chanter_mutex_init(&m), 0);
    EXPECT_EQ(pthread_chanter_mutex_lock(&m), 0);
    EXPECT_EQ(pthread_chanter_mutex_trylock(&m), EBUSY);
    EXPECT_EQ(pthread_chanter_mutex_destroy(&m), EBUSY);  // still locked
    EXPECT_EQ(pthread_chanter_mutex_unlock(&m), 0);
    EXPECT_EQ(pthread_chanter_mutex_trylock(&m), 0);
    EXPECT_EQ(pthread_chanter_mutex_unlock(&m), 0);
    EXPECT_EQ(pthread_chanter_mutex_destroy(&m), 0);
  });
}

TEST(ChanterMutex, UnlockByNonOwnerIsEperm) {
  chant::World w(one_pe());
  w.run([](chant::Runtime& rt) {
    static pthread_chanter_mutex_t m;
    ASSERT_EQ(pthread_chanter_mutex_init(&m), 0);
    ASSERT_EQ(pthread_chanter_mutex_lock(&m), 0);
    const chant::Gid g = rt.create(
        [](void*) -> void* {
          return reinterpret_cast<void*>(
              static_cast<long>(pthread_chanter_mutex_unlock(&m)));
        },
        nullptr, PTHREAD_CHANTER_LOCAL, PTHREAD_CHANTER_LOCAL);
    EXPECT_EQ(rt.join(g), reinterpret_cast<void*>((long)EPERM));
    EXPECT_EQ(pthread_chanter_mutex_unlock(&m), 0);
    pthread_chanter_mutex_destroy(&m);
  });
}

TEST(ChanterCond, WaitSignalAcrossThreads) {
  chant::World w(one_pe());
  w.run([](chant::Runtime& rt) {
    static pthread_chanter_mutex_t m;
    static pthread_chanter_cond_t c;
    static int stage;
    stage = 0;
    ASSERT_EQ(pthread_chanter_mutex_init(&m), 0);
    ASSERT_EQ(pthread_chanter_cond_init(&c), 0);
    const chant::Gid g = rt.create(
        [](void*) -> void* {
          pthread_chanter_mutex_lock(&m);
          while (stage == 0) pthread_chanter_cond_wait(&c, &m);
          stage = 2;
          pthread_chanter_mutex_unlock(&m);
          return nullptr;
        },
        nullptr, PTHREAD_CHANTER_LOCAL, PTHREAD_CHANTER_LOCAL);
    rt.yield();  // let the waiter park
    pthread_chanter_mutex_lock(&m);
    stage = 1;
    pthread_chanter_cond_signal(&c);
    pthread_chanter_mutex_unlock(&m);
    rt.join(g);
    EXPECT_EQ(stage, 2);
    EXPECT_EQ(pthread_chanter_cond_destroy(&c), 0);
    EXPECT_EQ(pthread_chanter_mutex_destroy(&m), 0);
  });
}

TEST(ChanterCond, WaitWithoutOwnershipIsEperm) {
  chant::World w(one_pe());
  w.run([](chant::Runtime&) {
    pthread_chanter_mutex_t m;
    pthread_chanter_cond_t c;
    ASSERT_EQ(pthread_chanter_mutex_init(&m), 0);
    ASSERT_EQ(pthread_chanter_cond_init(&c), 0);
    EXPECT_EQ(pthread_chanter_cond_wait(&c, &m), EPERM);  // mutex not held
    pthread_chanter_cond_destroy(&c);
    pthread_chanter_mutex_destroy(&m);
  });
}

TEST(ChanterKeys, PerThreadValuesAndDestructor) {
  chant::World w(one_pe());
  w.run([](chant::Runtime& rt) {
    static pthread_chanter_key_t key;
    static int destroyed;
    destroyed = 0;
    ASSERT_EQ(pthread_chanter_key_create(
                  &key, [](void* v) {
                    destroyed += static_cast<int>(
                        reinterpret_cast<long>(v));
                  }),
              0);
    ASSERT_EQ(pthread_chanter_setspecific(key, reinterpret_cast<void*>(3L)),
              0);
    const chant::Gid g = rt.create(
        [](void*) -> void* {
          EXPECT_EQ(pthread_chanter_getspecific(key), nullptr);
          pthread_chanter_setspecific(key, reinterpret_cast<void*>(4L));
          return pthread_chanter_getspecific(key);
        },
        nullptr, PTHREAD_CHANTER_LOCAL, PTHREAD_CHANTER_LOCAL);
    EXPECT_EQ(rt.join(g), reinterpret_cast<void*>(4L));
    EXPECT_EQ(destroyed, 4);  // child's dtor ran at its exit
    EXPECT_EQ(pthread_chanter_getspecific(key),
              reinterpret_cast<void*>(3L));  // ours untouched
    EXPECT_EQ(pthread_chanter_key_delete(key), 0);
  });
}

TEST(ChanterOnce, InitializerRunsOnce) {
  chant::World w(one_pe());
  w.run([](chant::Runtime& rt) {
    static pthread_chanter_once_t once = PTHREAD_CHANTER_ONCE_INIT;
    static int runs;
    runs = 0;
    once.impl = nullptr;
    auto entry = [](void*) -> void* {
      pthread_chanter_once(&once, [] { ++runs; });
      return nullptr;
    };
    std::vector<chant::Gid> gs;
    for (int i = 0; i < 5; ++i) {
      gs.push_back(rt.create(entry, nullptr, PTHREAD_CHANTER_LOCAL,
                             PTHREAD_CHANTER_LOCAL));
    }
    for (const auto& g : gs) rt.join(g);
    EXPECT_EQ(runs, 1);
  });
}

TEST(ChanterSyncC, NullArgumentsRejected) {
  chant::World w(one_pe());
  w.run([](chant::Runtime&) {
    EXPECT_EQ(pthread_chanter_mutex_lock(nullptr), EINVAL);
    EXPECT_EQ(pthread_chanter_cond_signal(nullptr), EINVAL);
    EXPECT_EQ(pthread_chanter_key_create(nullptr, nullptr), EINVAL);
    EXPECT_EQ(pthread_chanter_once(nullptr, nullptr), EINVAL);
  });
}

}  // namespace
