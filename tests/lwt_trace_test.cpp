// lwt_trace_test.cpp — scheduler event tracing.
#include "lwt/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "lwt/lwt.hpp"

namespace {

using lwt::Trace;
using lwt::TraceEvent;

std::vector<Trace::Entry> run_traced(const std::function<void()>& body,
                                     Trace& trace) {
  lwt::Scheduler s;
  s.set_trace(&trace);
  struct Ctx {
    const std::function<void()>* body;
  } ctx{&body};
  s.run_main(
      [](void* p) -> void* {
        (*static_cast<Ctx*>(p)->body)();
        return nullptr;
      },
      &ctx);
  return trace.snapshot();
}

int count(const std::vector<Trace::Entry>& es, TraceEvent e,
          std::uint32_t tid = 0) {
  return static_cast<int>(std::count_if(es.begin(), es.end(), [&](auto& x) {
    return x.event == e && (tid == 0 || x.tid == tid);
  }));
}

TEST(Trace, RecordsLifecycleInOrder) {
  Trace trace;
  const auto es = run_traced(
      [] {
        lwt::Tcb* t = lwt::go([] { lwt::yield(); });
        lwt::join(t);
      },
      trace);
  // Main (#1) and child (#2) both spawned, ran, finished.
  EXPECT_EQ(count(es, TraceEvent::Spawn), 2);
  EXPECT_EQ(count(es, TraceEvent::Finish), 2);
  EXPECT_GE(count(es, TraceEvent::SwitchIn, 2), 2);  // child ran twice
  // Per-thread causality: spawn precedes first switch-in precedes finish.
  auto idx = [&](TraceEvent e, std::uint32_t tid) {
    for (std::size_t i = 0; i < es.size(); ++i) {
      if (es[i].event == e && es[i].tid == tid) return static_cast<long>(i);
    }
    return -1L;
  };
  EXPECT_LT(idx(TraceEvent::Spawn, 2), idx(TraceEvent::SwitchIn, 2));
  EXPECT_LT(idx(TraceEvent::SwitchIn, 2), idx(TraceEvent::Finish, 2));
}

TEST(Trace, TimestampsAreMonotonic) {
  Trace trace;
  const auto es = run_traced(
      [] {
        for (int i = 0; i < 20; ++i) lwt::yield();
      },
      trace);
  ASSERT_GE(es.size(), 20u);
  for (std::size_t i = 1; i < es.size(); ++i) {
    EXPECT_GE(es[i].ns, es[i - 1].ns);
  }
}

TEST(Trace, PollTestsAreVisible) {
  Trace trace;
  const auto es = run_traced(
      [] {
        static int flag;
        flag = 0;
        lwt::Tcb* w = lwt::go([] {
          lwt::PollRequest r{[](void*) { return flag != 0; }, nullptr};
          lwt::Scheduler::current()->poll_block_ps(r);
        });
        for (int i = 0; i < 10; ++i) lwt::yield();
        flag = 1;
        lwt::join(w);
      },
      trace);
  EXPECT_GE(count(es, TraceEvent::PollTest, 2), 5);
}

TEST(Trace, RingOverwritesOldestAndCountsAll) {
  Trace trace(16);
  const auto es = run_traced(
      [] {
        for (int i = 0; i < 100; ++i) lwt::yield();
      },
      trace);
  EXPECT_EQ(es.size(), 16u);                 // only capacity retained
  EXPECT_GT(trace.recorded(), 100u);         // but everything counted
  // The retained window is the *newest* events: it must contain the
  // main fiber's finish.
  EXPECT_EQ(es.back().event, TraceEvent::Finish);
}

TEST(Trace, DumpIsHumanReadable) {
  Trace trace;
  (void)run_traced([] { lwt::yield(); }, trace);
  const std::string d = trace.dump();
  EXPECT_NE(d.find("switch-in"), std::string::npos);
  EXPECT_NE(d.find("finish"), std::string::npos);
  EXPECT_NE(d.find("#1"), std::string::npos);
}

TEST(Trace, ClearResets) {
  Trace trace;
  trace.record(TraceEvent::Spawn, 1);
  EXPECT_EQ(trace.recorded(), 1u);
  trace.clear();
  EXPECT_EQ(trace.recorded(), 0u);
  EXPECT_TRUE(trace.snapshot().empty());
  EXPECT_TRUE(trace.dump().empty());
}

TEST(Trace, DetachedSchedulerRecordsNothing) {
  Trace trace;
  lwt::Scheduler s;
  s.set_trace(&trace);
  s.set_trace(nullptr);
  s.run_main([](void*) -> void* { return nullptr; }, nullptr);
  EXPECT_EQ(trace.recorded(), 0u);
}

}  // namespace
