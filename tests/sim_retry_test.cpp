// sim_retry_test.cpp — RSR retry + duplicate suppression under a lossy
// net (DESIGN.md §8.3). Requests and replies are dropped with 10–50%
// probability per message; a deadline call with a retry policy must,
// for every explored seed, either return the *correct* reply (Ok) or
// give up with DeadlineExceeded by roughly the deadline — never hang,
// never leak a call record or pool block, never pair a reply with the
// wrong request, and never let a duplicate execute a non-idempotent
// handler twice.
//
// The drop probability sweeps {0.1, 0.3, 0.5} by default; CI's
// lossy-net job pins one value per matrix leg via CHANT_SIM_DROP.
// CHANT_SIM_SEEDS / CHANT_SIM_SEED (read by sim::explore) reproduce a
// failing schedule.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "chant/chant.hpp"
#include "sim/explore.hpp"

namespace {

using chant::Deadline;
using chant::PollPolicy;
using chant::RetryPolicy;
using chant::Runtime;
using chant::Status;
using chant::StatusCode;

/// Virtual-time scales: the controller advances 200 ns per scheduling
/// point and 12.8 µs per idle burst, so a 2 ms deadline is hundreds of
/// scheduling decisions — long enough for several retry rounds, short
/// enough to keep a 1000-seed sweep cheap.
constexpr std::uint64_t kDeadlineNs = 2'000'000;

RetryPolicy lossy_policy() {
  RetryPolicy rp;
  rp.max_attempts = 8;
  rp.initial_backoff_ns = 60'000;
  rp.multiplier = 2;
  rp.max_backoff_ns = 400'000;
  return rp;
}

/// Non-idempotent on purpose: doubles a per-process counter and echoes
/// (value, execution#). Duplicate suppression is what keeps the
/// execution count equal to the number of *distinct* requests served.
thread_local long t_executions = 0;

void counting_echo(Runtime&, Runtime::RsrContext&, const void* arg,
                   std::size_t len, std::vector<std::uint8_t>& reply) {
  ++t_executions;
  long v = 0;
  if (len >= sizeof v) std::memcpy(&v, arg, sizeof v);
  const long out[2] = {v, t_executions};
  reply.resize(sizeof out);
  std::memcpy(reply.data(), &out, sizeof out);
}

double drop_override(double fallback) {
  const char* e = std::getenv("CHANT_SIM_DROP");
  return e != nullptr ? std::atof(e) : fallback;
}

struct SweepTally {
  std::size_t ok = 0;
  std::size_t expired = 0;
  std::uint64_t retries = 0;
  std::uint64_t replays = 0;
};

/// One exploration sweep at a given drop rate; every invariant is
/// asserted inside the body (per seed), the tally is for the summary
/// expectations of the callers.
SweepTally sweep(double drop_p, std::size_t seeds, std::uint64_t base_seed) {
  SweepTally tally;
  sim::Options opt;
  opt.seeds = seeds;
  opt.base_seed = base_seed;
  opt.faults.drop_p = drop_p;
  opt.faults.delay_p = 0.3;
  opt.faults.max_delay_ns = 50'000;
  opt.faults.dup_p = 0.05;  // wire-level dups exercise dedup too
  const sim::Result res = sim::explore(opt, [&](sim::Session& s) {
    chant::World::Config cfg;
    cfg.pes = 1;
    cfg.rt.policy = PollPolicy::SchedulerPollsWQ;
    s.apply(cfg);
    chant::World w(cfg);
    const int echo = w.register_handler(&counting_echo);
    w.run([&](Runtime& rt) {
      t_executions = 0;
      const RetryPolicy rp = lossy_policy();
      long expected_executions = 0;
      for (long i = 0; i < 4; ++i) {
        const std::uint64_t t0 = rt.scheduler().now();
        const long v = 1000 + i;
        std::vector<std::uint8_t> rep;
        const Status st = rt.call(rt.pe(), rt.process(), echo, &v, sizeof v,
                                  Deadline::after(kDeadlineNs), &rep, &rp);
        const std::uint64_t elapsed = rt.scheduler().now() - t0;
        if (st.ok()) {
          // Correct pairing: the reply names *this* request's value.
          long out[2] = {0, 0};
          ASSERT_EQ(rep.size(), sizeof out);
          std::memcpy(&out, rep.data(), sizeof out);
          ASSERT_EQ(out[0], v) << "reply paired with the wrong request";
          ++expected_executions;
          ++tally.ok;
        } else {
          ASSERT_EQ(st, StatusCode::DeadlineExceeded);
          // Give-up happens by ~the deadline: 2x covers the final
          // attempt's scheduling slack (acceptance bound).
          EXPECT_LE(elapsed, 2 * kDeadlineNs);
          // The handler may or may not have executed (the reply may be
          // what was lost); both are legal for an expired call.
          if (t_executions > expected_executions) {
            expected_executions = t_executions;
          }
          ++tally.expired;
        }
        // No leaks after either outcome.
        ASSERT_EQ(rt.outstanding_calls(), 0u);
        ASSERT_EQ(rt.outstanding_recvs(), 0u);
      }
      // Duplicate suppression: resends and wire dups never re-execute
      // the (non-idempotent) handler for an already-served request.
      EXPECT_LE(t_executions, 4);
      EXPECT_GE(t_executions, expected_executions);
      tally.retries += rt.rsr_stats().retries_sent;
      tally.replays += rt.rsr_stats().dup_replays;
    });
  });
  EXPECT_FALSE(res.failed) << "drop_p=" << drop_p;
  if (std::getenv("CHANT_SIM_SEEDS") == nullptr) {
    EXPECT_EQ(res.iterations, seeds);
  }
  return tally;
}

TEST(SimRetry, LossyNet10PercentMostCallsSucceed) {
  // The acceptance sweep: 10% drop, 1000 explored schedules (4 bounded
  // calls each), zero hangs, zero leaks — asserted per seed in sweep().
  const double drop = drop_override(0.1);
  const SweepTally t = sweep(drop, 1000, 0x0D10);
  // With 8 attempts at 10% loss, nearly everything lands; at the CI
  // sweep's harsher rates a majority should still land (p(fail/attempt)
  // <= ~0.75 even at 50% drop, and attempts compound).
  EXPECT_GT(t.ok, t.expired);
  if (drop >= 0.05) {
    // Drops happened, so retries must have been the thing that saved
    // the calls that landed.
    EXPECT_GT(t.retries, 0u);
  }
}

TEST(SimRetry, LossyNet30PercentRepliesReplayFromDedupCache) {
  const double drop = drop_override(0.3);
  const SweepTally t = sweep(drop, 200, 0x0D30);
  EXPECT_GT(t.retries, 0u);
  // A dropped *reply* (not request) forces a resend of an already-served
  // request; the server must answer it from the dedup cache. At 30%+
  // drop over 200 seeds x 4 calls this path is hit essentially always.
  EXPECT_GT(t.replays, 0u);
}

TEST(SimRetry, LossyNet50PercentNeverHangsOrLeaks) {
  const double drop = drop_override(0.5);
  const SweepTally t = sweep(drop, 200, 0x0D50);
  // At 50% drop some calls expire — that is the *correct* outcome; the
  // hard invariants (bounded time, no leak, exact pairing, dedup) are
  // asserted per seed inside sweep().
  EXPECT_GT(t.ok + t.expired, 0u);
}

TEST(SimRetry, SeqWrapDoesNotReplayStaleDedupEntry) {
  // Regression: the client's 12-bit reply_seq wraps every 4096 calls,
  // while a served retryable request lingers in the server's 128-entry
  // dedup window until displaced by other *retryable* traffic. A new
  // call reusing a wrapped seq (different wire nonce) must displace the
  // stale entry and run the handler — not have another call's recorded
  // bytes replayed at it, and not be dropped as an in-flight dup.
  sim::Options opt;
  opt.seeds = 1;
  opt.base_seed = 0x5EC0;  // reliable net: no faults installed
  const sim::Result res = sim::explore(opt, [](sim::Session& s) {
    chant::World::Config cfg;
    cfg.pes = 1;
    cfg.rt.policy = PollPolicy::SchedulerPollsWQ;
    s.apply(cfg);
    chant::World w(cfg);
    const int echo = w.register_handler(&counting_echo);
    w.run([&](Runtime& rt) {
      t_executions = 0;
      const RetryPolicy rp = lossy_policy();
      // Retryable call #1 takes seq 0 and leaves a done dedup entry
      // (recorded reply = {111, 1}) in the server window.
      long v = 111;
      std::vector<std::uint8_t> rep;
      Status st = rt.call(rt.pe(), rt.process(), echo, &v, sizeof v,
                          Deadline::after(kDeadlineNs), &rep, &rp);
      ASSERT_TRUE(st.ok());
      // Burn the remaining 4095 seqs with non-retryable calls; these
      // never enter the dedup window, so the seq-0 entry survives.
      for (int i = 0; i < 4095; ++i) {
        const auto r = rt.call(rt.pe(), rt.process(), echo, &v, sizeof v);
        ASSERT_EQ(r.size(), 2 * sizeof(long));
      }
      // Retryable call #2 reuses seq 0. It must get *its own* reply.
      long v2 = 999;
      rep.clear();
      st = rt.call(rt.pe(), rt.process(), echo, &v2, sizeof v2,
                   Deadline::after(kDeadlineNs), &rep, &rp);
      ASSERT_TRUE(st.ok());
      long out[2] = {0, 0};
      ASSERT_EQ(rep.size(), sizeof out);
      std::memcpy(&out, rep.data(), sizeof out);
      EXPECT_EQ(out[0], 999) << "stale dedup entry replayed an old reply";
      EXPECT_EQ(t_executions, 4097);
      EXPECT_EQ(rt.rsr_stats().dup_replays, 0u);
      EXPECT_EQ(rt.rsr_stats().dup_drops, 0u);
      EXPECT_EQ(rt.outstanding_calls(), 0u);
    });
  });
  EXPECT_FALSE(res.failed);
}

TEST(SimRetry, NoRetryPolicyMeansSingleAttempt) {
  // Without a policy a lost request is simply a DeadlineExceeded — no
  // silent resends of a possibly non-idempotent handler.
  sim::Options opt;
  opt.seeds = 200;
  opt.base_seed = 0x1501;
  opt.faults.drop_p = 0.4;
  const sim::Result res = sim::explore(opt, [](sim::Session& s) {
    chant::World::Config cfg;
    cfg.pes = 1;
    cfg.rt.policy = PollPolicy::SchedulerPollsWQ;
    s.apply(cfg);
    chant::World w(cfg);
    const int echo = w.register_handler(&counting_echo);
    w.run([&](Runtime& rt) {
      t_executions = 0;
      long v = 77;
      std::vector<std::uint8_t> rep;
      const Status st = rt.call(rt.pe(), rt.process(), echo, &v, sizeof v,
                                Deadline::after(kDeadlineNs), &rep);
      if (st.ok()) {
        long out[2] = {0, 0};
        ASSERT_EQ(rep.size(), sizeof out);
        std::memcpy(&out, rep.data(), sizeof out);
        EXPECT_EQ(out[0], 77);
      } else {
        EXPECT_EQ(st, StatusCode::DeadlineExceeded);
      }
      EXPECT_EQ(rt.rsr_stats().retries_sent, 0u);
      EXPECT_LE(t_executions, 1);
      EXPECT_EQ(rt.outstanding_calls(), 0u);
    });
  });
  EXPECT_FALSE(res.failed);
}

}  // namespace
