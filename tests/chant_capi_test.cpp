// chant_capi_test.cpp — the Appendix-A C interface (paper Fig. 14),
// exercised end-to-end exactly as a 1994 client would use it.
#include <gtest/gtest.h>

#include <cerrno>
#include <cstring>

#include "chant/chant.hpp"

namespace {

chant::World::Config base_config(int pes = 2) {
  chant::World::Config cfg;
  cfg.pes = pes;
  cfg.rt.policy = chant::PollPolicy::SchedulerPollsPS;
  return cfg;
}

void* echo_server(void*) {
  char buf[256];
  pthread_chanter_t from = PTHREAD_CHANTER_ANY;
  int rc = pthread_chanter_recv(1, buf, sizeof buf, &from);
  EXPECT_EQ(rc, 0);
  rc = pthread_chanter_send(2, buf, static_cast<int>(std::strlen(buf) + 1),
                            &from);
  EXPECT_EQ(rc, 0);
  return nullptr;
}

TEST(ChanterCapi, CreateSendRecvJoin) {
  chant::World w(base_config());
  w.run([](chant::Runtime& rt) {
    if (rt.pe() != 0) return;
    pthread_chanter_t t;
    ASSERT_EQ(pthread_chanter_create(&t, nullptr, &echo_server, nullptr, 1, 0),
              0);
    EXPECT_EQ(pthread_chanter_pe(&t), 1);
    EXPECT_EQ(pthread_chanter_process(&t), 0);
    EXPECT_GE(pthread_chanter_pthread(&t), chant::kFirstUserLid);

    char msg[] = "hello appendix A";
    ASSERT_EQ(pthread_chanter_send(1, msg, sizeof msg, &t), 0);
    char buf[256];
    pthread_chanter_t src = t;
    ASSERT_EQ(pthread_chanter_recv(2, buf, sizeof buf, &src), 0);
    EXPECT_STREQ(buf, msg);

    void* status = nullptr;
    EXPECT_EQ(pthread_chanter_join(&t, &status), 0);
  });
}

TEST(ChanterCapi, SelfAndEqual) {
  chant::World w(base_config(1));
  w.run([](chant::Runtime& rt) {
    pthread_chanter_t* me = pthread_chanter_self();
    ASSERT_NE(me, nullptr);
    EXPECT_EQ(me->pe, rt.pe());
    EXPECT_EQ(me->thread, chant::kMainLid);
    pthread_chanter_t copy = *me;
    EXPECT_EQ(pthread_chanter_equal(me, &copy), 1);
    copy.thread = 99;
    EXPECT_EQ(pthread_chanter_equal(me, &copy), 0);
    EXPECT_EQ(pthread_chanter_equal(nullptr, &copy), 0);
  });
}

TEST(ChanterCapi, LocalCreateWithAttributes) {
  chant::World w(base_config(1));
  w.run([](chant::Runtime&) {
    pthread_chanter_attr_t attr{};
    attr.stack_size = 256 * 1024;
    attr.priority = 5;
    attr.detached = 0;
    pthread_chanter_t t;
    ASSERT_EQ(pthread_chanter_create(
                  &t, &attr,
                  [](void* a) -> void* { return a; },
                  reinterpret_cast<void*>(31L), PTHREAD_CHANTER_LOCAL,
                  PTHREAD_CHANTER_LOCAL),
              0);
    void* status = nullptr;
    EXPECT_EQ(pthread_chanter_join(&t, &status), 0);
    EXPECT_EQ(status, reinterpret_cast<void*>(31L));
  });
}

TEST(ChanterCapi, DetachedThreadCannotBeJoined) {
  chant::World w(base_config(1));
  w.run([](chant::Runtime&) {
    pthread_chanter_attr_t attr{};
    attr.detached = 1;
    pthread_chanter_t t;
    ASSERT_EQ(pthread_chanter_create(
                  &t, &attr, [](void*) -> void* { return nullptr; }, nullptr,
                  PTHREAD_CHANTER_LOCAL, PTHREAD_CHANTER_LOCAL),
              0);
    void* status = nullptr;
    EXPECT_EQ(pthread_chanter_join(&t, &status), ESRCH);
  });
}

TEST(ChanterCapi, ExitPublishesStatus) {
  chant::World w(base_config(1));
  w.run([](chant::Runtime&) {
    pthread_chanter_t t;
    ASSERT_EQ(pthread_chanter_create(
                  &t, nullptr,
                  [](void*) -> void* {
                    pthread_chanter_exit(reinterpret_cast<void*>(55L));
                    return nullptr;  // unreachable; exit() does not return
                  },
                  nullptr, PTHREAD_CHANTER_LOCAL, PTHREAD_CHANTER_LOCAL),
              0);
    void* status = nullptr;
    EXPECT_EQ(pthread_chanter_join(&t, &status), 0);
    EXPECT_EQ(status, reinterpret_cast<void*>(55L));
  });
}

TEST(ChanterCapi, CancelReportsCanceledStatus) {
  chant::World w(base_config());
  w.run([](chant::Runtime& rt) {
    if (rt.pe() != 0) return;
    pthread_chanter_t t;
    ASSERT_EQ(pthread_chanter_create(
                  &t, nullptr,
                  [](void*) -> void* {
                    for (;;) pthread_chanter_yield();
                  },
                  nullptr, 1, 0),
              0);
    EXPECT_EQ(pthread_chanter_cancel(&t), 0);
    void* status = nullptr;
    EXPECT_EQ(pthread_chanter_join(&t, &status), 0);
    EXPECT_EQ(status, PTHREAD_CHANTER_CANCELED);
  });
}

TEST(ChanterCapi, IrecvMsgtestMsgwait) {
  chant::World w(base_config(1));
  w.run([](chant::Runtime&) {
    pthread_chanter_t* me = pthread_chanter_self();
    char buf[16] = {0};
    int handle = -1;
    pthread_chanter_t src = *me;
    ASSERT_EQ(pthread_chanter_irecv(&handle, 3, buf, sizeof buf, &src), 0);
    EXPECT_EQ(pthread_chanter_msgtest(handle), 0);  // pending
    char msg[] = "later";
    ASSERT_EQ(pthread_chanter_send(3, msg, sizeof msg, me), 0);
    EXPECT_EQ(pthread_chanter_msgwait(handle), 0);
    EXPECT_STREQ(buf, "later");
    // Handle released by msgwait: further use reports an error.
    EXPECT_LT(pthread_chanter_msgtest(handle), 0);
  });
}

TEST(ChanterCapi, ArgumentValidation) {
  chant::World w(base_config(1));
  w.run([](chant::Runtime&) {
    EXPECT_EQ(pthread_chanter_create(nullptr, nullptr, &echo_server, nullptr,
                                     0, 0),
              EINVAL);
    pthread_chanter_t t{0, 0, chant::kMainLid};
    EXPECT_EQ(pthread_chanter_send(99999999, "x", 1, &t), ERANGE);
    EXPECT_EQ(pthread_chanter_send(1, "x", -1, &t), EINVAL);
    EXPECT_EQ(pthread_chanter_join(nullptr, nullptr), EINVAL);
  });
}

TEST(ChanterCapi, OutsideRuntimeFailsCleanly) {
  pthread_chanter_t t{0, 0, 1};
  EXPECT_EQ(pthread_chanter_send(1, "x", 1, &t), EINVAL);
  EXPECT_EQ(pthread_chanter_join(&t, nullptr), EINVAL);
  EXPECT_EQ(pthread_chanter_cancel(&t), EINVAL);
  // self() outside a runtime returns the anonymous id.
  pthread_chanter_t* me = pthread_chanter_self();
  ASSERT_NE(me, nullptr);
  EXPECT_EQ(me->pe, -1);
}

}  // namespace
