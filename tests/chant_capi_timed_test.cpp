// chant_capi_timed_test.cpp — the POSIX-shaped timed additions to the
// Appendix-A C interface: pthread_chanter_mutex_timedlock,
// pthread_chanter_cond_timedwait and pthread_chanter_join_timed, all
// returning ETIMEDOUT on expiry (relative nanosecond timeouts, waits
// parked on the scheduler's timer wheel).
#include <gtest/gtest.h>

#include <cerrno>

#include "chant/chant.hpp"

namespace {

constexpr unsigned long long kMs = 1'000'000ULL;

chant::World::Config one_pe() {
  chant::World::Config cfg;
  cfg.pes = 1;
  return cfg;
}

TEST(ChanterTimedMutex, TimedlockTimesOutThenAcquires) {
  chant::World w(one_pe());
  w.run([](chant::Runtime& rt) {
    static pthread_chanter_mutex_t m;
    ASSERT_EQ(pthread_chanter_mutex_init(&m), 0);
    ASSERT_EQ(pthread_chanter_mutex_lock(&m), 0);
    const chant::Gid g = rt.create(
        [](void*) -> void* {
          // Held by main: bounded lock must expire with ETIMEDOUT.
          return reinterpret_cast<void*>(static_cast<long>(
              pthread_chanter_mutex_timedlock(&m, 2 * kMs)));
        },
        nullptr, PTHREAD_CHANTER_LOCAL, PTHREAD_CHANTER_LOCAL);
    EXPECT_EQ(rt.join(g), reinterpret_cast<void*>((long)ETIMEDOUT));
    ASSERT_EQ(pthread_chanter_mutex_unlock(&m), 0);
    // Free lock: the timed form acquires immediately.
    EXPECT_EQ(pthread_chanter_mutex_timedlock(&m, 1 * kMs), 0);
    EXPECT_EQ(pthread_chanter_mutex_unlock(&m), 0);
    EXPECT_EQ(pthread_chanter_mutex_destroy(&m), 0);
    EXPECT_EQ(pthread_chanter_mutex_timedlock(nullptr, 1 * kMs), EINVAL);
  });
}

TEST(ChanterTimedCond, TimedwaitExpiresWithMutexReacquired) {
  chant::World w(one_pe());
  w.run([](chant::Runtime&) {
    pthread_chanter_mutex_t m;
    pthread_chanter_cond_t c;
    ASSERT_EQ(pthread_chanter_mutex_init(&m), 0);
    ASSERT_EQ(pthread_chanter_cond_init(&c), 0);
    ASSERT_EQ(pthread_chanter_mutex_lock(&m), 0);
    EXPECT_EQ(pthread_chanter_cond_timedwait(&c, &m, 2 * kMs), ETIMEDOUT);
    // pthread_cond_timedwait contract: the mutex is held on return.
    EXPECT_EQ(pthread_chanter_mutex_trylock(&m), EBUSY);
    EXPECT_EQ(pthread_chanter_mutex_unlock(&m), 0);
    EXPECT_EQ(pthread_chanter_cond_destroy(&c), 0);
    EXPECT_EQ(pthread_chanter_mutex_destroy(&m), 0);
  });
}

TEST(ChanterTimedCond, SignalBeatsTimeout) {
  chant::World w(one_pe());
  w.run([](chant::Runtime& rt) {
    static pthread_chanter_mutex_t m;
    static pthread_chanter_cond_t c;
    static int stage;
    stage = 0;
    ASSERT_EQ(pthread_chanter_mutex_init(&m), 0);
    ASSERT_EQ(pthread_chanter_cond_init(&c), 0);
    const chant::Gid g = rt.create(
        [](void*) -> void* {
          pthread_chanter_mutex_lock(&m);
          stage = 1;
          pthread_chanter_cond_signal(&c);
          pthread_chanter_mutex_unlock(&m);
          return nullptr;
        },
        nullptr, PTHREAD_CHANTER_LOCAL, PTHREAD_CHANTER_LOCAL);
    ASSERT_EQ(pthread_chanter_mutex_lock(&m), 0);
    int rc = 0;
    while (stage == 0 && rc == 0) {
      rc = pthread_chanter_cond_timedwait(&c, &m, 500 * kMs);
    }
    EXPECT_EQ(rc, 0);
    EXPECT_EQ(stage, 1);
    pthread_chanter_mutex_unlock(&m);
    rt.join(g);
    pthread_chanter_cond_destroy(&c);
    pthread_chanter_mutex_destroy(&m);
  });
}

TEST(ChanterTimedJoin, TimesOutThenJoins) {
  chant::World w(one_pe());
  w.run([](chant::Runtime& rt) {
    static pthread_chanter_mutex_t gate;
    ASSERT_EQ(pthread_chanter_mutex_init(&gate), 0);
    ASSERT_EQ(pthread_chanter_mutex_lock(&gate), 0);
    pthread_chanter_t t;
    ASSERT_EQ(pthread_chanter_create(
                  &t, nullptr,
                  [](void*) -> void* {
                    pthread_chanter_mutex_lock(&gate);  // parked until main
                    pthread_chanter_mutex_unlock(&gate);
                    return reinterpret_cast<void*>(static_cast<long>(55));
                  },
                  nullptr, PTHREAD_CHANTER_LOCAL, PTHREAD_CHANTER_LOCAL),
              0);
    void* status = nullptr;
    EXPECT_EQ(pthread_chanter_join_timed(&t, &status, 2 * kMs), ETIMEDOUT);
    ASSERT_EQ(pthread_chanter_mutex_unlock(&gate), 0);
    // The timed-out join relinquished its claim: joining again works.
    EXPECT_EQ(pthread_chanter_join_timed(&t, &status, 2000 * kMs), 0);
    EXPECT_EQ(status, reinterpret_cast<void*>(static_cast<long>(55)));
    // The thread is gone now.
    EXPECT_EQ(pthread_chanter_join_timed(&t, &status, 1 * kMs), ESRCH);
    EXPECT_EQ(pthread_chanter_join_timed(nullptr, &status, 1 * kMs), EINVAL);
    (void)rt;
    pthread_chanter_mutex_destroy(&gate);
  });
}

}  // namespace
