// integration_test.cpp — whole-system scenarios: the paper's Figure-9
// workload in miniature, a master/worker farm, and a halo-exchange
// stencil — verifying cross-module behaviour ends up consistent.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "chant_test_util.hpp"
#include "harness/workload.hpp"

namespace {

using chant::Gid;
using chant::MsgInfo;
using chant::PollPolicy;
using chant::Runtime;

/// The paper's Figure-9 loop: compute(alpha); send; compute(beta); recv —
/// run by `threads` threads per pe for `iters` iterations. Returns pe 0's
/// total context switches for the cross-policy sanity assertions.
struct Fig9Result {
  std::uint64_t full_switches = 0;
  std::uint64_t msgtests = 0;
  double avg_waiting = 0.0;
};

Fig9Result run_fig9(PollPolicy policy, int threads, int iters,
                    std::uint64_t alpha, std::uint64_t beta) {
  chant::World::Config cfg;
  cfg.pes = 2;
  cfg.rt.policy = policy;
  cfg.rt.start_server = false;
  chant::World w(cfg);
  Fig9Result res;
  w.run([&](Runtime& rt) {
    struct Ctx {
      Runtime* rt;
      int iters;
      std::uint64_t alpha, beta;
    };
    Ctx ctx{&rt, iters, alpha, beta};
    std::vector<Gid> mine;
    for (int i = 0; i < threads; ++i) {
      mine.push_back(rt.create(
          [](void* p) -> void* {
            auto& c = *static_cast<Ctx*>(p);
            Runtime& r = *c.rt;
            const Gid peer{1 - r.pe(), 0, r.self().thread};
            for (int it = 0; it < c.iters; ++it) {
              harness::consume(harness::compute(c.alpha));
              long tick = it;
              r.send(42, &tick, sizeof tick, peer);
              harness::consume(harness::compute(c.beta));
              long got = -1;
              r.recv(42, &got, sizeof got, peer);
              EXPECT_EQ(got, it);
            }
            return nullptr;
          },
          &ctx, PTHREAD_CHANTER_LOCAL, PTHREAD_CHANTER_LOCAL));
    }
    for (const Gid& g : mine) rt.join(g);
    if (rt.pe() == 0) {
      res.full_switches = rt.sched_stats().full_switches;
      res.msgtests = rt.net_counters().msgtest_calls.load();
      res.avg_waiting = rt.sched_stats().avg_waiting();
    }
  });
  return res;
}

TEST(Fig9Workload, AllPoliciesCompleteAndCountsRelate) {
  const auto tp = run_fig9(PollPolicy::ThreadPolls, 6, 8, 200, 100);
  const auto ps = run_fig9(PollPolicy::SchedulerPollsPS, 6, 8, 200, 100);
  const auto wq = run_fig9(PollPolicy::SchedulerPollsWQ, 6, 8, 200, 100);
  // Paper Figure 11 ordering: TP does the most complete switches, WQ the
  // fewest (threads only restored when truly ready).
  EXPECT_GE(tp.full_switches, ps.full_switches);
  EXPECT_GE(ps.full_switches, wq.full_switches);
}

TEST(Fig9Workload, IncreasingAlphaIncreasesWaitingThreads) {
  // Paper Figure 13: larger alpha -> more threads waiting on receives.
  const auto small = run_fig9(PollPolicy::SchedulerPollsPS, 6, 6, 50, 50);
  const auto large = run_fig9(PollPolicy::SchedulerPollsPS, 6, 6, 20000, 50);
  EXPECT_GT(large.avg_waiting, small.avg_waiting * 0.8);
  EXPECT_GT(large.avg_waiting, 0.0);
}

TEST(Integration, MasterWorkerFarmBalances) {
  chant::World::Config cfg;
  cfg.pes = 3;
  cfg.rt.policy = PollPolicy::SchedulerPollsPS;
  chant::World w(cfg);
  w.run([](Runtime& rt) {
    if (rt.pe() != 0) return;
    constexpr int kTasks = 60;
    constexpr int kWorkers = 6;
    struct Msg {
      long id;
    };
    const Gid master = rt.self();
    struct Boot {
      Gid master;
    } boot{master};
    std::vector<Gid> workers;
    for (int i = 0; i < kWorkers; ++i) {
      workers.push_back(rt.create_marshalled(
          [](Runtime& r, const void* p, std::size_t) {
            Boot b{};
            std::memcpy(&b, p, sizeof b);
            long sum = 0;
            for (;;) {
              Msg ask{0};
              r.send(80, &ask, sizeof ask, b.master);
              Msg task{};
              r.recv(81, &task, sizeof task, b.master);
              if (task.id < 0) break;
              sum += task.id;
            }
            r.send(82, &sum, sizeof sum, b.master);
          },
          &boot, sizeof boot, i % 3, 0));
    }
    long next = 0;
    int retired = 0;
    while (retired < kWorkers) {
      Msg ask{};
      const MsgInfo mi = rt.recv(80, &ask, sizeof ask, chant::kAnyThread);
      Msg task{next < kTasks ? next++ : -1};
      if (task.id < 0) ++retired;
      rt.send(81, &task, sizeof task, mi.src);
    }
    long total = 0;
    for (int i = 0; i < kWorkers; ++i) {
      long part = 0;
      rt.recv(82, &part, sizeof part, chant::kAnyThread);
      total += part;
    }
    EXPECT_EQ(total, static_cast<long>(kTasks) * (kTasks - 1) / 2);
    for (const Gid& g : workers) rt.join(g);
  });
}

TEST(Integration, HaloExchangeStencilConverges) {
  // 1-D Jacobi over 4 blocks on 2 pes, threads talking to neighbour
  // threads by gid; verifies numerical agreement with a serial sweep.
  constexpr int kCells = 32;
  constexpr int kBlocks = 4;
  constexpr int kSweeps = 25;
  // Serial reference.
  std::vector<double> ref(kBlocks * kCells + 2, 0.0);
  for (int i = 1; i <= kBlocks * kCells; ++i) ref[static_cast<std::size_t>(i)] = std::sin(0.1 * i);
  {
    std::vector<double> nxt(ref.size(), 0.0);
    for (int s = 0; s < kSweeps; ++s) {
      for (int i = 1; i <= kBlocks * kCells; ++i) {
        const auto u = static_cast<std::size_t>(i);
        nxt[u] = 0.5 * ref[u] + 0.25 * (ref[u - 1] + ref[u + 1]);
      }
      ref.swap(nxt);
    }
  }
  chant::World::Config cfg;
  cfg.pes = 2;
  cfg.rt.policy = PollPolicy::SchedulerPollsWQ;
  chant::World w(cfg);
  w.run([&](Runtime& rt) {
    if (rt.pe() != 0) return;
    struct Arg {
      Gid reporter;
      Gid left, right;
      int base;
    };
    std::vector<Gid> gids;
    std::vector<Arg> args(kBlocks);
    for (int b = 0; b < kBlocks; ++b) {
      Arg dummy{};
      gids.push_back(rt.create_marshalled(
          [](Runtime& r, const void*, std::size_t) {
            Arg a{};
            r.recv(95, &a, sizeof a, chant::kAnyThread);
            std::vector<double> cur(kCells + 2, 0.0);
            std::vector<double> nxt(kCells + 2, 0.0);
            for (int i = 1; i <= kCells; ++i) {
              cur[static_cast<std::size_t>(i)] = std::sin(0.1 * (a.base + i));
            }
            for (int s = 0; s < kSweeps; ++s) {
              if (a.left.pe >= 0) r.send(96, &cur[1], sizeof(double), a.left);
              if (a.right.pe >= 0) {
                r.send(97, &cur[kCells], sizeof(double), a.right);
              }
              if (a.left.pe >= 0) {
                r.recv(97, &cur[0], sizeof(double), a.left);
              }
              if (a.right.pe >= 0) {
                r.recv(96, &cur[kCells + 1], sizeof(double), a.right);
              }
              for (int i = 1; i <= kCells; ++i) {
                const auto u = static_cast<std::size_t>(i);
                nxt[u] = 0.5 * cur[u] + 0.25 * (cur[u - 1] + cur[u + 1]);
              }
              cur.swap(nxt);
            }
            r.send(98, cur.data() + 1, kCells * sizeof(double), a.reporter);
          },
          &dummy, sizeof dummy, b % 2, 0));
    }
    for (int b = 0; b < kBlocks; ++b) {
      args[static_cast<std::size_t>(b)] =
          Arg{rt.self(),
              b > 0 ? gids[static_cast<std::size_t>(b - 1)] : Gid{-1, -1, -1},
              b + 1 < kBlocks ? gids[static_cast<std::size_t>(b + 1)]
                              : Gid{-1, -1, -1},
              b * kCells};
      rt.send(95, &args[static_cast<std::size_t>(b)], sizeof(Arg),
              gids[static_cast<std::size_t>(b)]);
    }
    std::vector<double> got(kBlocks * kCells, 0.0);
    for (int b = 0; b < kBlocks; ++b) {
      std::vector<double> part(kCells);
      const MsgInfo mi =
          rt.recv(98, part.data(), kCells * sizeof(double), chant::kAnyThread);
      // Identify which block replied by matching its thread id.
      int idx = -1;
      for (int k = 0; k < kBlocks; ++k) {
        if (gids[static_cast<std::size_t>(k)] == mi.src) idx = k;
      }
      ASSERT_GE(idx, 0);
      std::copy(part.begin(), part.end(),
                got.begin() + static_cast<long>(idx) * kCells);
    }
    for (int i = 0; i < kBlocks * kCells; ++i) {
      EXPECT_NEAR(got[static_cast<std::size_t>(i)],
                  ref[static_cast<std::size_t>(i + 1)], 1e-12);
    }
    for (const Gid& g : gids) rt.join(g);
  });
}

TEST(Integration, ChurnCreateJoinUnderTraffic) {
  // Threads are created and joined remotely while unrelated p2p traffic
  // flows — the RSR plane and the p2p plane must not interfere.
  chant::World::Config cfg;
  cfg.pes = 2;
  cfg.rt.policy = PollPolicy::ThreadPolls;
  chant::World w(cfg);
  w.run([](Runtime& rt) {
    const Gid peer_main{1 - rt.pe(), 0, chant::kMainLid};
    struct Ctx {
      Runtime* rt;
      Gid peer;
    } ctx{&rt, peer_main};
    // Background chatter thread.
    const Gid chatter = rt.create(
        [](void* p) -> void* {
          auto& c = *static_cast<Ctx*>(p);
          const Gid twin{1 - c.rt->pe(), 0, c.rt->self().thread};
          for (int i = 0; i < 50; ++i) {
            long v = i;
            c.rt->send(85, &v, sizeof v, twin);
            long got = -1;
            c.rt->recv(85, &got, sizeof got, twin);
            EXPECT_EQ(got, i);
          }
          return nullptr;
        },
        &ctx, PTHREAD_CHANTER_LOCAL, PTHREAD_CHANTER_LOCAL);
    // Meanwhile churn remote threads.
    if (rt.pe() == 0) {
      for (long i = 0; i < 25; ++i) {
        const Gid g = rt.create(
            [](void* a) -> void* { return a; },
            reinterpret_cast<void*>(i), 1, 0);
        EXPECT_EQ(rt.join(g), reinterpret_cast<void*>(i));
      }
    }
    rt.join(chatter);
  });
}

}  // namespace
