// lwt_mn_test.cpp — multi-worker (M:N) scheduler semantics: worker-count
// resolution, steal-vs-ready races, cross-thread ready(), timer wakes
// under parallel workers, priority preservation, and the new stats.
//
// These tests run genuinely parallel (set_workers(4)), so they assert
// end-state invariants and counter identities that hold for any legal
// interleaving — never orderings. Counters are read only after run_main
// returns (the pool is quiescent, so stats() is exact).
#include "lwt/scheduler.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <thread>
#include <vector>

#include "lwt/lwt.hpp"

namespace {

constexpr std::uint64_t kMs = 1'000'000;

/// run_main with a callable on a caller-provided scheduler (lwt::run
/// always builds a fresh one, which would discard set_workers).
template <typename F>
void run_on(lwt::Scheduler& s, F&& f) {
  using Fn = std::decay_t<F>;
  Fn fn(std::forward<F>(f));
  s.run_main(
      [](void* p) -> void* {
        (*static_cast<Fn*>(p))();
        return nullptr;
      },
      &fn);
}

TEST(MnWorkers, DefaultWorkersResolvesEnv) {
  const char* saved = std::getenv("CHANT_WORKERS");
  const std::string saved_copy = saved != nullptr ? saved : "";

  ::unsetenv("CHANT_WORKERS");
  EXPECT_EQ(lwt::Scheduler::default_workers(), 1u);  // opt-in: unset = 1:1
  ::setenv("CHANT_WORKERS", "", 1);
  EXPECT_EQ(lwt::Scheduler::default_workers(), 1u);
  ::setenv("CHANT_WORKERS", "3", 1);
  EXPECT_EQ(lwt::Scheduler::default_workers(), 3u);
  ::setenv("CHANT_WORKERS", "0", 1);  // 0 = hardware concurrency
  const unsigned hw = std::thread::hardware_concurrency();
  EXPECT_EQ(lwt::Scheduler::default_workers(), hw == 0 ? 1u : hw);
  ::setenv("CHANT_WORKERS", "100000", 1);
  EXPECT_EQ(lwt::Scheduler::default_workers(), lwt::kMaxWorkers);
  ::setenv("CHANT_WORKERS", "junk", 1);
  EXPECT_EQ(lwt::Scheduler::default_workers(), 1u);

  if (saved != nullptr) {
    ::setenv("CHANT_WORKERS", saved_copy.c_str(), 1);
  } else {
    ::unsetenv("CHANT_WORKERS");
  }
}

TEST(MnWorkers, SpawnJoinChurnAcrossWorkers) {
  lwt::Scheduler s;
  s.set_workers(4);
  std::atomic<int> sum{0};
  run_on(s, [&] {
    constexpr int kFibers = 256;
    std::vector<lwt::Tcb*> ts;
    ts.reserve(kFibers);
    for (int i = 0; i < kFibers; ++i) {
      ts.push_back(lwt::go([&sum] {
        for (int k = 0; k < 8; ++k) {
          sum.fetch_add(1, std::memory_order_relaxed);
          lwt::yield();
        }
      }));
    }
    for (lwt::Tcb* t : ts) lwt::join(t);
  });
  EXPECT_EQ(s.workers(), 4u);
  EXPECT_EQ(sum.load(), 256 * 8);
  const lwt::SchedulerStats st = s.stats();
  EXPECT_EQ(st.spawns, 257u);  // main + 256
  // Every pick came from somewhere: local queue or a steal.
  EXPECT_GE(st.local_hits + st.steals, 256u);
}

TEST(MnWorkers, StealVsReadyRaceConverges) {
  // Wakers and sleepers hammer the park/wake path from all four workers
  // while yielding fibers keep the run queues hot for the stealers. Any
  // lost wakeup deadlocks (caught by the multi-worker deadlock abort or
  // the test timeout); any double enqueue corrupts a run queue.
  lwt::Scheduler s;
  s.set_workers(4);
  std::atomic<int> done{0};
  run_on(s, [&] {
    lwt::Mutex mu;
    lwt::CondVar cv;
    int turn = 0;
    constexpr int kPairs = 16;
    constexpr int kRounds = 200;
    std::vector<lwt::Tcb*> ts;
    for (int p = 0; p < kPairs; ++p) {
      ts.push_back(lwt::go([&] {
        for (int r = 0; r < kRounds; ++r) {
          lwt::LockGuard g(mu);
          turn = (turn + 1) % kPairs;
          cv.broadcast();
          // Timeout and signal are both fine here; the loop re-checks.
          (void)cv.wait_until(mu,
                              lwt::Scheduler::current()->deadline_after(kMs));
        }
        done.fetch_add(1, std::memory_order_relaxed);
      }));
      ts.push_back(lwt::go([&] {
        for (int r = 0; r < kRounds; ++r) lwt::yield();
        done.fetch_add(1, std::memory_order_relaxed);
      }));
    }
    for (lwt::Tcb* t : ts) lwt::join(t);
  });
  EXPECT_EQ(done.load(), 2 * 16);
}

TEST(MnWorkers, CrossThreadReadyFromForeignOsThread) {
  // A fiber parks with no timer and no peer to wake it; a foreign OS
  // thread (not one of the scheduler's workers) calls ready(). The wake
  // must route through the injection queue and be counted there.
  lwt::Scheduler s;
  s.set_workers(4);
  std::atomic<bool> woken{false};
  run_on(s, [&] {
    lwt::TcbQueue wl;
    lwt::Tcb* parked = lwt::go([&] {
      lwt::Scheduler::current()->park_on(wl);
      woken.store(true, std::memory_order_relaxed);
    });
    // A second fiber keeps a worker busy so the process cannot be
    // declared deadlocked before the foreign thread fires.
    lwt::Tcb* keeper = lwt::go([&] {
      while (!woken.load(std::memory_order_relaxed)) {
        lwt::sleep_for(1 * kMs);
      }
    });
    std::thread foreign([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      s.ready(parked);
    });
    lwt::join(parked);
    lwt::join(keeper);
    foreign.join();
  });
  EXPECT_TRUE(woken.load());
  EXPECT_GE(s.stats().injections, 1u);
}

TEST(MnWorkers, TimerFireWakesFiberOnAnyWorker) {
  // Sleeping fibers spread over four workers; each timer expiry readies
  // a fiber whose home worker may differ from the expiring one. All must
  // resume exactly once (sum identity) with no lost or double wake.
  lwt::Scheduler s;
  s.set_workers(4);
  std::atomic<int> resumed{0};
  run_on(s, [&] {
    constexpr int kSleepers = 64;
    std::vector<lwt::Tcb*> ts;
    for (int i = 0; i < kSleepers; ++i) {
      ts.push_back(lwt::go([&resumed, i] {
        lwt::sleep_for(static_cast<std::uint64_t>(1 + i % 7) * kMs);
        resumed.fetch_add(1, std::memory_order_relaxed);
      }));
    }
    for (lwt::Tcb* t : ts) lwt::join(t);
  });
  EXPECT_EQ(resumed.load(), 64);
  const lwt::SchedulerStats st = s.stats();
  EXPECT_EQ(st.sleeps, 64u);
  EXPECT_EQ(st.timer_fires, 64u);
}

TEST(MnWorkers, TimedWaitCompletionWinsUnderWorkers) {
  lwt::Scheduler s;
  s.set_workers(4);
  std::atomic<int> got{0};
  run_on(s, [&] {
    lwt::Semaphore sem(0);
    std::vector<lwt::Tcb*> ts;
    for (int i = 0; i < 8; ++i) {
      ts.push_back(lwt::go([&] {
        if (sem.try_acquire_until(
                lwt::Scheduler::current()->deadline_after(500 * kMs))) {
          got.fetch_add(1, std::memory_order_relaxed);
        }
      }));
    }
    lwt::sleep_for(2 * kMs);
    sem.release(8);
    for (lwt::Tcb* t : ts) lwt::join(t);
  });
  EXPECT_EQ(got.load(), 8);  // completion beats the generous deadline
}

TEST(MnWorkers, PriorityBoostSurvivesStealing) {
  // A high-priority fiber readied while low-priority yielders saturate
  // all four workers must still run promptly: every worker's pick_next
  // scans priority levels high-to-low, and steals scan the victim's
  // levels in the same order, so the boost survives migration.
  lwt::Scheduler s;
  s.set_workers(4);
  std::atomic<bool> boosted_ran{false};
  std::atomic<std::uint64_t> spins_after{0};
  run_on(s, [&] {
    std::atomic<bool> stop{false};
    std::vector<lwt::Tcb*> yielders;
    for (int i = 0; i < 8; ++i) {
      yielders.push_back(lwt::go([&] {
        while (!stop.load(std::memory_order_relaxed)) {
          if (boosted_ran.load(std::memory_order_relaxed)) {
            stop.store(true, std::memory_order_relaxed);
          }
          spins_after.fetch_add(1, std::memory_order_relaxed);
          lwt::yield();
        }
      }));
    }
    lwt::ThreadAttr attr;
    attr.priority = lwt::kServerPriority;
    lwt::Tcb* hi = lwt::go(
        [&] { boosted_ran.store(true, std::memory_order_relaxed); }, attr);
    lwt::join(hi);
    for (lwt::Tcb* t : yielders) lwt::join(t);
  });
  EXPECT_TRUE(boosted_ran.load());
}

TEST(MnWorkers, ControllerForcesSingleWorker) {
  struct Prod : lwt::ScheduleController {
    std::size_t pick(std::size_t) override { return 0; }
  } ctrl;
  lwt::Scheduler s;
  s.set_workers(4);
  s.set_controller(&ctrl);
  std::atomic<int> n{0};
  run_on(s, [&] {
    std::vector<lwt::Tcb*> ts;
    for (int i = 0; i < 16; ++i) {
      ts.push_back(lwt::go([&] {
        n.fetch_add(1, std::memory_order_relaxed);
        lwt::yield();
      }));
    }
    for (lwt::Tcb* t : ts) lwt::join(t);
  });
  EXPECT_EQ(n.load(), 16);
  EXPECT_EQ(s.workers(), 1u);  // determinism contract
}

TEST(MnWorkers, SingleWorkerCountersStayExact) {
  // workers=1 must preserve the original scheduler's exact counter
  // semantics (the w==1 parity contract the sim suites rely on).
  lwt::Scheduler s;
  s.set_workers(1);
  run_on(s, [&] {
    lwt::Tcb* t = lwt::go([] {
      for (int i = 0; i < 10; ++i) lwt::yield();
    });
    lwt::join(t);
  });
  const lwt::SchedulerStats st = s.stats();
  EXPECT_EQ(st.spawns, 2u);
  EXPECT_EQ(st.yields, 10u);
  EXPECT_EQ(st.steals, 0u);
  EXPECT_EQ(st.injections, 0u);
  EXPECT_EQ(st.parks, 0u);
}

TEST(MnWorkers, PollBlockGenericCompletesUnderWorkers) {
  // The generic parked wait (termination protocol) must complete when
  // its predicate flips from another worker — the spinner role keeps one
  // worker testing the generic list while the rest park.
  lwt::Scheduler s;
  s.set_workers(4);
  std::atomic<bool> flag{false};
  std::atomic<bool> completed{false};
  run_on(s, [&] {
    lwt::Tcb* waiter = lwt::go([&] {
      const lwt::PollRequest req{
          [](void* p) {
            return static_cast<std::atomic<bool>*>(p)->load(
                std::memory_order_acquire);
          },
          &flag};
      completed.store(lwt::Scheduler::current()->poll_block_generic(req),
                      std::memory_order_relaxed);
    });
    lwt::Tcb* setter = lwt::go([&] {
      lwt::sleep_for(5 * kMs);
      flag.store(true, std::memory_order_release);
    });
    lwt::join(waiter);
    lwt::join(setter);
  });
  EXPECT_TRUE(completed.load());
}

TEST(MnWorkers, WorkerHooksRunOnEveryExtraWorker) {
  static std::atomic<int> starts;
  static std::atomic<int> stops;
  starts = 0;
  stops = 0;
  lwt::Scheduler s;
  s.set_workers(4);
  s.set_worker_hooks([](void*) { starts.fetch_add(1); },
                     [](void*) { stops.fetch_add(1); }, nullptr);
  run_on(s, [] {
    std::vector<lwt::Tcb*> ts;
    for (int i = 0; i < 8; ++i) ts.push_back(lwt::go([] { lwt::yield(); }));
    for (lwt::Tcb* t : ts) lwt::join(t);
  });
  EXPECT_EQ(starts.load(), 3);  // workers 1..3; worker 0 is the caller
  EXPECT_EQ(stops.load(), 3);
}

}  // namespace
