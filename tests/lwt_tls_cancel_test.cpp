// lwt_tls_cancel_test.cpp — thread-local data keys and deferred
// cancellation semantics.
#include <gtest/gtest.h>

#include <vector>

#include "lwt/lwt.hpp"

namespace {

TEST(Tls, PerThreadValuesAreIndependent) {
  lwt::run([] {
    lwt::Scheduler* s = lwt::Scheduler::current();
    const int key = s->key_create(nullptr);
    ASSERT_GE(key, 0);
    std::vector<lwt::Tcb*> ts;
    std::vector<long> seen(8, -1);
    for (long i = 0; i < 8; ++i) {
      ts.push_back(lwt::go([&, i] {
        s->set_specific(key, reinterpret_cast<void*>(i + 100));
        lwt::yield();  // others set theirs in between
        seen[static_cast<std::size_t>(i)] =
            reinterpret_cast<long>(s->get_specific(key));
      }));
    }
    for (auto* t : ts) lwt::join(t);
    for (long i = 0; i < 8; ++i) {
      EXPECT_EQ(seen[static_cast<std::size_t>(i)], i + 100);
    }
    s->key_delete(key);
  });
}

TEST(Tls, DestructorRunsAtThreadExit) {
  lwt::run([] {
    lwt::Scheduler* s = lwt::Scheduler::current();
    static int destroyed;
    destroyed = 0;
    const int key = s->key_create([](void* v) {
      destroyed += static_cast<int>(reinterpret_cast<long>(v));
    });
    lwt::Tcb* t = lwt::go(
        [&] { s->set_specific(key, reinterpret_cast<void*>(7L)); });
    lwt::join(t);
    EXPECT_EQ(destroyed, 7);
    s->key_delete(key);
  });
}

TEST(Tls, DestructorNotRunForNullValues) {
  lwt::run([] {
    lwt::Scheduler* s = lwt::Scheduler::current();
    static int calls;
    calls = 0;
    const int key = s->key_create([](void*) { ++calls; });
    lwt::Tcb* t = lwt::go([] {});  // never sets the key
    lwt::join(t);
    EXPECT_EQ(calls, 0);
    s->key_delete(key);
  });
}

TEST(Tls, KeysAreReusableAfterDelete) {
  lwt::run([] {
    lwt::Scheduler* s = lwt::Scheduler::current();
    const int k1 = s->key_create(nullptr);
    s->key_delete(k1);
    const int k2 = s->key_create(nullptr);
    EXPECT_EQ(k1, k2);
    s->key_delete(k2);
  });
}

TEST(Tls, ExhaustionReturnsMinusOne) {
  lwt::run([] {
    lwt::Scheduler* s = lwt::Scheduler::current();
    std::vector<int> keys;
    for (;;) {
      const int k = s->key_create(nullptr);
      if (k < 0) break;
      keys.push_back(k);
    }
    EXPECT_EQ(keys.size(), lwt::kMaxTlsKeys);
    for (int k : keys) s->key_delete(k);
  });
}

// ------------------------------------------------------------ cancellation

TEST(Cancel, CancelAtYieldPoint) {
  lwt::run([] {
    bool reached_end = false;
    lwt::Tcb* t = lwt::go([&] {
      for (;;) lwt::yield();
      reached_end = true;  // unreachable
    });
    lwt::yield();
    lwt::Scheduler::current()->cancel(t);
    void* rv = lwt::join(t);
    EXPECT_EQ(rv, lwt::kCanceled);
    EXPECT_FALSE(reached_end);
  });
}

TEST(Cancel, RaiiRunsDuringCancellation) {
  lwt::run([] {
    static bool cleaned;
    cleaned = false;
    struct Cleaner {
      ~Cleaner() { cleaned = true; }
    };
    lwt::Tcb* t = lwt::go([] {
      Cleaner c;
      for (;;) lwt::yield();
    });
    lwt::yield();
    lwt::Scheduler::current()->cancel(t);
    lwt::join(t);
    EXPECT_TRUE(cleaned);
  });
}

TEST(Cancel, DisabledCancellationIsDeferred) {
  lwt::run([] {
    int progress = 0;
    lwt::Tcb* t = lwt::go([&] {
      lwt::Scheduler::current()->set_cancel_enabled(false);
      for (int i = 0; i < 5; ++i) {
        ++progress;
        lwt::yield();  // cancel pending but masked
      }
      lwt::Scheduler::current()->set_cancel_enabled(true);
      for (;;) lwt::yield();  // now it fires
    });
    lwt::yield();
    lwt::Scheduler::current()->cancel(t);
    EXPECT_EQ(lwt::join(t), lwt::kCanceled);
    EXPECT_EQ(progress, 5);
  });
}

TEST(Cancel, WakesThreadBlockedOnMutex) {
  lwt::run([] {
    lwt::Mutex m;
    m.lock();
    lwt::Tcb* t = lwt::go([&] {
      m.lock();  // blocks forever; cancellation must eject us
      m.unlock();
    });
    lwt::yield();
    lwt::Scheduler::current()->cancel(t);
    EXPECT_EQ(lwt::join(t), lwt::kCanceled);
    m.unlock();
    EXPECT_FALSE(m.locked());
  });
}

TEST(Cancel, WakesThreadBlockedOnCondVar) {
  lwt::run([] {
    lwt::Mutex m;
    lwt::CondVar cv;
    lwt::Tcb* t = lwt::go([&] {
      lwt::LockGuard g(m);
      cv.wait(m, [] { return false; });  // waits forever
    });
    lwt::yield();
    lwt::Scheduler::current()->cancel(t);
    EXPECT_EQ(lwt::join(t), lwt::kCanceled);
    // The cancelled waiter reacquired and (via LockGuard) released it.
    EXPECT_FALSE(m.locked());
  });
}

TEST(Cancel, WakesThreadBlockedOnSemaphore) {
  lwt::run([] {
    lwt::Semaphore sem(0);
    lwt::Tcb* t = lwt::go([&] { sem.acquire(); });
    lwt::yield();
    lwt::Scheduler::current()->cancel(t);
    EXPECT_EQ(lwt::join(t), lwt::kCanceled);
    EXPECT_EQ(sem.value(), 0);
  });
}

TEST(Cancel, FinishedThreadIsUnaffected) {
  lwt::run([] {
    lwt::Tcb* t = lwt::go([] {});
    while (t->state != lwt::ThreadState::Finished) lwt::yield();
    lwt::Scheduler::current()->cancel(t);
    EXPECT_NE(lwt::join(t), lwt::kCanceled);
  });
}

TEST(Cancel, SelfCancelTakesEffectAtNextPoint) {
  lwt::run([] {
    lwt::Tcb* t = lwt::go([] {
      lwt::Scheduler* s = lwt::Scheduler::current();
      s->cancel(lwt::Scheduler::self());
      // Still running: cancellation is deferred to the next point.
      s->yield();
      FAIL() << "should have been cancelled at the yield";
    });
    EXPECT_EQ(lwt::join(t), lwt::kCanceled);
  });
}

}  // namespace
