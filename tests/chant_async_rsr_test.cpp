// chant_async_rsr_test.cpp — asynchronous remote service requests:
// multiple outstanding calls, polling, out-of-order deferred replies,
// sequence-number pairing.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "chant_test_util.hpp"
#include "lwt/lwt.hpp"

namespace {

using chant::Gid;
using chant::Runtime;
using chant_test::PolicyCase;

void square_handler(Runtime&, Runtime::RsrContext&, const void* arg,
                    std::size_t len, std::vector<std::uint8_t>& reply) {
  long v = 0;
  if (len >= sizeof v) std::memcpy(&v, arg, sizeof v);
  const long out = v * v;
  reply.resize(sizeof out);
  std::memcpy(reply.data(), &out, sizeof out);
}

/// Replies after a delay *proportional to the argument*, so issuing
/// 5, 4, ..., 1 produces replies in reverse order of the requests.
void reversed_handler(Runtime& rt, Runtime::RsrContext& ctx, const void* arg,
                      std::size_t len, std::vector<std::uint8_t>&) {
  long v = 0;
  if (len >= sizeof v) std::memcpy(&v, arg, sizeof v);
  ctx.deferred = true;
  const Runtime::RsrContext saved = ctx;
  lwt::ThreadAttr attr;
  attr.detached = true;
  lwt::go([&rt, saved, v] {
    for (long i = 0; i < v * 20; ++i) rt.yield();
    const long out = -v;
    rt.reply(saved, &out, sizeof out);
  }, attr);
}

class ChantAsyncRsr : public ::testing::TestWithParam<PolicyCase> {};

TEST_P(ChantAsyncRsr, ManyOutstandingCallsComplete) {
  chant::World w(chant_test::config_for(GetParam()));
  const int square = w.register_handler(&square_handler);
  w.run([&](Runtime& rt) {
    if (rt.pe() != 0) return;
    std::vector<int> handles;
    for (long i = 1; i <= 10; ++i) {
      handles.push_back(rt.call_async(1, 0, square, &i, sizeof i));
    }
    for (long i = 1; i <= 10; ++i) {
      const auto rep = rt.call_wait(handles[static_cast<std::size_t>(i - 1)]);
      long out = 0;
      std::memcpy(&out, rep.data(), sizeof out);
      EXPECT_EQ(out, i * i);
    }
  });
}

TEST_P(ChantAsyncRsr, CallTestPollsWithoutBlocking) {
  chant::World w(chant_test::config_for(GetParam()));
  const int square = w.register_handler(&square_handler);
  w.run([&](Runtime& rt) {
    if (rt.pe() != 0) return;
    long v = 9;
    const int h = rt.call_async(1, 0, square, &v, sizeof v);
    std::vector<std::uint8_t> rep;
    int polls = 0;
    while (!rt.call_test(h, &rep).ok()) {
      ++polls;
      rt.yield();
    }
    long out = 0;
    std::memcpy(&out, rep.data(), sizeof out);
    EXPECT_EQ(out, 81);
    // Handle is released by the successful test.
    EXPECT_THROW((void)rt.call_test(h), std::invalid_argument);
    (void)polls;
  });
}

TEST_P(ChantAsyncRsr, OutOfOrderDeferredRepliesPairCorrectly) {
  // The crux of the sequence-number scheme: the *last* request gets the
  // *first* reply, yet every handle yields its own answer.
  chant::World w(chant_test::config_for(GetParam()));
  const int reversed = w.register_handler(&reversed_handler);
  w.run([&](Runtime& rt) {
    if (rt.pe() != 0) return;
    std::vector<int> handles;
    for (long v = 5; v >= 1; --v) {
      handles.push_back(rt.call_async(1, 0, reversed, &v, sizeof v));
    }
    // Wait in issue order (slowest first): replies for later handles
    // arrive while we block on the first.
    long expect = 5;
    for (int h : handles) {
      const auto rep = rt.call_wait(h);
      long out = 0;
      std::memcpy(&out, rep.data(), sizeof out);
      EXPECT_EQ(out, -expect);
      --expect;
    }
  });
}

TEST_P(ChantAsyncRsr, InterleavedWithSyncCallsAndP2p) {
  chant::World w(chant_test::config_for(GetParam()));
  const int square = w.register_handler(&square_handler);
  w.run([&](Runtime& rt) {
    const Gid peer{1 - rt.pe(), 0, chant::kMainLid};
    if (rt.pe() == 0) {
      long v = 3;
      const int h = rt.call_async(1, 0, square, &v, sizeof v);
      // Ordinary p2p while the call is in flight.
      long ping = 77;
      rt.send(40, &ping, sizeof ping, peer);
      long pong = 0;
      rt.recv(41, &pong, sizeof pong, peer);
      EXPECT_EQ(pong, 78);
      // A sync call while the async one is still outstanding.
      long u = 4;
      const auto srep = rt.call(1, 0, square, &u, sizeof u);
      long sout = 0;
      std::memcpy(&sout, srep.data(), sizeof sout);
      EXPECT_EQ(sout, 16);
      const auto arep = rt.call_wait(h);
      long aout = 0;
      std::memcpy(&aout, arep.data(), sizeof aout);
      EXPECT_EQ(aout, 9);
    } else {
      long ping = 0;
      rt.recv(40, &ping, sizeof ping, peer);
      long pong = ping + 1;
      rt.send(41, &pong, sizeof pong, peer);
    }
  });
}

TEST_P(ChantAsyncRsr, SequenceNumbersSurviveWrap) {
  // Push the 12-bit reply-sequence counter through a wrap.
  chant::World w(chant_test::config_for(GetParam()));
  const int square = w.register_handler(&square_handler);
  w.run([&](Runtime& rt) {
    if (rt.pe() != 0) return;
    for (long i = 0; i < 4200; ++i) {
      const long v = i % 50;
      const auto rep = rt.call(1, 0, square, &v, sizeof v);
      long out = 0;
      std::memcpy(&out, rep.data(), sizeof out);
      ASSERT_EQ(out, v * v);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, ChantAsyncRsr,
                         ::testing::ValuesIn(chant_test::all_cases()),
                         [](const auto& info) {
                           return chant_test::case_name(info.param);
                         });

}  // namespace
