// sim/clock.hpp — deterministic virtual time for schedule exploration.
//
// Wall-clock time is a hidden input: two runs of the same seed would
// diverge the moment a deliver-at comparison read a different nanosecond.
// The VirtualClock replaces it — installed as the Machine-level clock
// override (nx::Machine::Config::clock), it only moves when the harness
// says so: one quantum per scheduling point plus a catch-up jump when a
// process idles waiting for modelled in-flight messages. Every deliver-at
// decision then depends solely on the decision sequence, which the
// controller records.
#pragma once

#include <atomic>
#include <cstdint>

namespace sim {

class VirtualClock {
 public:
  /// Starts at 1, not 0: the per-source monotonic clamp in the nx layer
  /// turns a deliver-at equal to a last-deliver of 0 into 1, and at
  /// time 0 that would park the very first local message in flight.
  VirtualClock() = default;

  std::uint64_t now() const noexcept {
    return now_.load(std::memory_order_acquire);
  }

  void advance(std::uint64_t ns) noexcept {
    now_.fetch_add(ns, std::memory_order_acq_rel);
  }

  /// Moves time forward to at least `t` (never backwards).
  void advance_to(std::uint64_t t) noexcept {
    std::uint64_t cur = now_.load(std::memory_order_relaxed);
    while (cur < t &&
           !now_.compare_exchange_weak(cur, t, std::memory_order_acq_rel)) {
    }
  }

  /// Trampoline matching nx::Machine::Config::clock.
  static std::uint64_t read(void* self) noexcept {
    return static_cast<VirtualClock*>(self)->now();
  }

 private:
  std::atomic<std::uint64_t> now_{1};
};

}  // namespace sim
