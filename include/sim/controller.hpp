// sim/controller.hpp — seedable schedule controllers.
//
// Implementations of lwt::ScheduleController that drive the scheduler's
// pick(n) decision point (see lwt/schedctrl.hpp) from a reproducible
// source, record every choice they make, and advance the virtual clock:
//
//  * RandomController    — choices from a seeded mt19937_64; the
//                          workhorse of seed sweeps.
//  * RoundRobinController— deterministic rotate-by-one; a cheap way to
//                          force every thread through the head position.
//  * TraceController     — replays a recorded DecisionTrace verbatim,
//                          then decays to production order (0). With a
//                          shrunken trace this replays a failure from
//                          just the prefix that mattered.
//
// A controller is installed per process (per lwt::Scheduler). Its
// recorded trace *is* the schedule for single-OS-thread worlds: replaying
// it reproduces the interleaving bit-identically.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <random>
#include <string>
#include <vector>

#include "lwt/schedctrl.hpp"
#include "sim/clock.hpp"

namespace sim {

/// A recorded sequence of pick() results; the replay/shrink currency.
/// Encoded as comma-separated decimals ("0,2,1,0,...") for printing in
/// failure banners and passing through CHANT_SIM_TRACE.
struct DecisionTrace {
  std::vector<std::uint32_t> choices;

  std::string encode() const;
  static DecisionTrace parse(const std::string& text);
};

/// Base: records every pick() and drives the virtual clock. Thread-safe
/// (one scheduler consults it at a time, but worlds with several
/// processes may share one controller in ad-hoc tests).
class RecordingController : public lwt::ScheduleController {
 public:
  explicit RecordingController(VirtualClock* clock = nullptr,
                               std::uint64_t quantum_ns = 200)
      : clock_(clock), quantum_ns_(quantum_ns) {}

  std::size_t pick(std::size_t n) final {
    std::lock_guard<std::mutex> lk(mu_);
    const std::size_t c = choose(n);
    trace_.choices.push_back(static_cast<std::uint32_t>(c));
    return c;
  }

  void on_sched_point() override {
    if (clock_ != nullptr) clock_->advance(quantum_ns_);
  }

  void on_idle() override {
    // Idle means every runnable candidate is gated on modelled time
    // (in-flight messages); jump a full quantum burst so progress
    // resumes instead of spinning the loop quantum by quantum.
    if (clock_ != nullptr) clock_->advance(quantum_ns_ * 64);
  }

  const DecisionTrace& trace() const noexcept { return trace_; }
  std::size_t decisions() const noexcept { return trace_.choices.size(); }

 protected:
  /// The strategy: returns a value in [0, n). Called under mu_.
  virtual std::size_t choose(std::size_t n) = 0;

 private:
  std::mutex mu_;
  DecisionTrace trace_;
  VirtualClock* clock_;
  std::uint64_t quantum_ns_;
};

class RandomController : public RecordingController {
 public:
  explicit RandomController(std::uint64_t seed, VirtualClock* clock = nullptr,
                            std::uint64_t quantum_ns = 200)
      : RecordingController(clock, quantum_ns), rng_(seed) {}

 protected:
  std::size_t choose(std::size_t n) override {
    return static_cast<std::size_t>(rng_() % n);
  }

 private:
  std::mt19937_64 rng_;
};

class RoundRobinController : public RecordingController {
 public:
  explicit RoundRobinController(VirtualClock* clock = nullptr,
                                std::uint64_t quantum_ns = 200)
      : RecordingController(clock, quantum_ns) {}

 protected:
  std::size_t choose(std::size_t n) override { return ++step_ % n; }

 private:
  std::size_t step_ = 0;
};

/// Replays `trace` decision by decision; past its end every pick returns
/// 0 (production order), which is what makes prefix-shrinking sound: a
/// truncated trace is still a complete, legal schedule.
class TraceController : public RecordingController {
 public:
  explicit TraceController(DecisionTrace trace, VirtualClock* clock = nullptr,
                           std::uint64_t quantum_ns = 200)
      : RecordingController(clock, quantum_ns), replay_(std::move(trace)) {}

 protected:
  std::size_t choose(std::size_t n) override {
    if (pos_ >= replay_.choices.size()) return 0;
    return replay_.choices[pos_++] % n;
  }

 private:
  DecisionTrace replay_;
  std::size_t pos_ = 0;
};

}  // namespace sim
