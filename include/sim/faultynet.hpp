// sim/faultynet.hpp — seedable fault-injecting wrapper over the net model.
//
// Implements nx::FaultInjector with per-seed reproducible decisions:
// each message independently draws delay / duplication / drop from a
// seeded mt19937_64, so a FaultConfig plus a seed fully determines the
// fault pattern. Delay reorders messages *across* sources (the nx layer
// clamps per-source deliver-at monotonic, so FIFO within a source is
// preserved — the paper's ordered-channel guarantee is a property under
// test, not something the injector may break directly). Drop makes the
// payload vanish after the sender completes; duplication enqueues extra
// eager copies behind the original.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <random>

#include "nx/endpoint.hpp"
#include "nx/fault.hpp"

namespace sim {

/// Per-message fault probabilities (each in [0, 1]).
struct FaultConfig {
  double delay_p = 0.0;   ///< chance of extra delivery delay
  std::uint64_t max_delay_ns = 20'000;  ///< delay drawn uniform in [1, max]
  double dup_p = 0.0;     ///< chance of one duplicate copy
  double drop_p = 0.0;    ///< chance the message vanishes

  bool any() const noexcept {
    return delay_p > 0.0 || dup_p > 0.0 || drop_p > 0.0;
  }
};

class FaultyNet : public nx::FaultInjector {
 public:
  struct Stats {
    std::uint64_t messages = 0;
    std::uint64_t delayed = 0;
    std::uint64_t duplicated = 0;
    std::uint64_t dropped = 0;
  };

  FaultyNet(const FaultConfig& cfg, std::uint64_t seed)
      : cfg_(cfg), rng_(seed) {}

  nx::FaultDecision on_send(const nx::MsgHeader& h) override {
    (void)h;
    // Senders on different OS threads may land here concurrently; the
    // lock keeps the RNG stream well-defined (and for single-OS-thread
    // worlds, the stream — hence the fault pattern — is deterministic).
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.messages;
    nx::FaultDecision d;
    if (draw() < cfg_.drop_p) {
      d.drop = true;
      ++stats_.dropped;
      return d;
    }
    if (draw() < cfg_.dup_p) {
      d.duplicates = 1;
      ++stats_.duplicated;
    }
    if (draw() < cfg_.delay_p) {
      d.extra_delay_ns = 1 + rng_() % cfg_.max_delay_ns;
      ++stats_.delayed;
    }
    return d;
  }

  Stats stats() const {
    std::lock_guard<std::mutex> lk(mu_);
    return stats_;
  }

 private:
  double draw() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(rng_);
  }

  FaultConfig cfg_;
  mutable std::mutex mu_;
  std::mt19937_64 rng_;
  Stats stats_;
};

}  // namespace sim
