// sim/explore.hpp — seed-sweep schedule exploration for gtest suites.
//
// explore() runs a test body many times, each under a freshly seeded
// schedule controller (and optionally a fault-injecting net), with every
// run's gtest failures intercepted. The first failing seed stops the
// sweep; the harness then
//
//   1. minimizes the recorded decision trace by prefix (binary search —
//      a truncated trace is still a complete schedule because a
//      TraceController decays to production order past its end),
//   2. prints a banner with two one-line repros:
//        CHANT_SIM_SEED=<seed>   ctest -R '<Suite.Name>'
//        CHANT_SIM_TRACE='<...>' ctest -R '<Suite.Name>'
//   3. re-raises one real gtest failure carrying the same information.
//
// Reproducibility contract: for worlds with a single simulated process
// (one OS thread) a replayed seed or trace reproduces the interleaving
// bit-identically — schedule decisions, virtual-clock reads and fault
// draws are all pure functions of the seed and decision sequence. Worlds
// with several processes replay the same decision streams but OS-thread
// interleaving may differ; the seed is still the repro key in practice.
//
// Environment overrides (read by explore, for use from ctest):
//   CHANT_SIM_SEED      run exactly this one seed, failures surface
//                       directly (no interception, no shrink)
//   CHANT_SIM_TRACE     replay this decision trace (with CHANT_SIM_SEED
//                       or the suite's base seed for fault/body draws)
//   CHANT_SIM_SEEDS     override the number of seeds swept
//   CHANT_SIM_BASE_SEED override the first seed of the sweep
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "chant/world.hpp"
#include "sim/clock.hpp"
#include "sim/controller.hpp"
#include "sim/faultynet.hpp"

namespace sim {

enum class Strategy { Random, RoundRobin };

struct Options {
  /// Seeds swept: seeds beyond the first failure are not run.
  std::size_t seeds = 128;
  std::uint64_t base_seed = 0xC0FFEE;
  Strategy strategy = Strategy::Random;
  /// Fault injection; a FaultyNet is installed iff faults.any().
  FaultConfig faults{};
  /// Virtual-time step per scheduling point.
  std::uint64_t quantum_ns = 200;
  bool shrink = true;  ///< minimize the failing trace by prefix
  bool report = true;  ///< re-raise a gtest failure for a failing seed
};

/// One seeded run's context. The body calls apply() on its World::Config
/// before constructing the World, and may draw from rng() for its own
/// randomized workload (the draws are part of the seed's identity).
class Session {
 public:
  Session(const Options& opt, std::uint64_t seed);
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;
  ~Session();

  std::uint64_t seed() const noexcept { return seed_; }
  std::mt19937_64& rng() noexcept { return rng_; }
  VirtualClock& clock() noexcept { return clock_; }
  /// Null unless the Options enabled faults.
  FaultyNet* faults() noexcept { return faults_.get(); }

  /// Installs the virtual clock, the fault injector and the controller
  /// factory into a World configuration.
  void apply(chant::World::Config& cfg);

  /// Encoded decision traces of every controller created so far, in
  /// creation order, '/'-separated (one segment per process).
  std::string trace_text() const;
  /// Total decisions recorded across controllers.
  std::size_t decisions() const;

  /// Arms this session to replay `text` (as printed by trace_text)
  /// instead of generating fresh decisions. Call before apply().
  void replay(const std::string& text);

 private:
  static lwt::ScheduleController* factory(void* self, int pe, int proc);
  lwt::ScheduleController* make_controller(int pe, int proc);

  const Options& opt_;
  std::uint64_t seed_;
  std::mt19937_64 rng_;
  VirtualClock clock_;
  std::unique_ptr<FaultyNet> faults_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<RecordingController>> controllers_;
  std::vector<DecisionTrace> replay_;  ///< nonempty => replay mode
};

struct Result {
  bool failed = false;
  std::uint64_t seed = 0;        ///< the failing seed (if failed)
  std::size_t iterations = 0;    ///< runs executed (including the failure)
  std::string trace;             ///< full failing trace (if failed)
  std::string shrunk;            ///< minimized trace ("" if not shrunk)
  std::string first_message;     ///< first captured failure message
};

/// Sweeps seeds over `body`; see the file comment for the full contract.
Result explore(const Options& opt, const std::function<void(Session&)>& body);

}  // namespace sim
