// harness/workload.hpp — synthetic compute kernels for the experiments.
//
// The paper's polling experiments (Fig. 9) interleave message exchanges
// with "generic computations" of alpha and beta iterations. compute(n)
// is that kernel: n iterations of a small arithmetic unit the compiler
// cannot elide, so run time scales linearly with n on any machine.
#pragma once

#include <cstdint>

namespace harness {

/// One "iteration" of the paper's generic computation. Returns a value
/// derived from the inputs so the optimizer must perform the work.
inline std::uint64_t compute(std::uint64_t iterations) noexcept {
  std::uint64_t x = 0x9E3779B97F4A7C15ull;
  for (std::uint64_t i = 0; i < iterations; ++i) {
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    x *= 0x2545F4914F6CDD1Dull;
  }
  return x;
}

/// Sink that keeps `compute` results alive across optimization.
inline void consume(std::uint64_t v) noexcept {
  asm volatile("" : : "r"(v) : "memory");
}

}  // namespace harness
