// harness/bench_json.hpp — machine-readable benchmark output.
//
// Every perf-tracked bench accepts `--json <path>` and, alongside its
// human tables, writes one JSON document in a uniform schema so CI can
// diff runs against the committed BENCH_*.json baselines:
//
//   {
//     "bench": "threadops",
//     "git_sha": "abc1234",
//     "config": { "workers": "4", ... },
//     "metrics": [
//       { "name": "lwt_asm_create", "value": 0.42, "unit": "us" }, ...
//     ]
//   }
//
// Metric names are stable identifiers (tools/bench_gate.py matches on
// them); values are doubles; units are informational. The writer is
// deliberately dependency-free — the schema is flat enough that
// hand-rolled escaping of the few string fields suffices.
#pragma once

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#ifndef CHANT_GIT_SHA
#define CHANT_GIT_SHA "unknown"
#endif

namespace harness {

class BenchJson {
 public:
  explicit BenchJson(std::string bench) : bench_(std::move(bench)) {}

  /// Adds a config key (stringified; kept verbatim in the output).
  void config(const std::string& key, const std::string& value) {
    config_.emplace_back(key, value);
  }
  void config(const std::string& key, long long value) {
    config(key, std::to_string(value));
  }

  /// Records one metric sample. `name` must be unique and stable across
  /// runs; bench_gate.py keys regression checks on it. Pass gate=false
  /// for trajectory-only metrics too host-dependent to fail CI on (e.g.
  /// multi-worker rates, which need real cores to be stable).
  void metric(const std::string& name, double value, const std::string& unit,
              bool gate = true) {
    metrics_.push_back(Metric{name, value, unit, gate});
  }

  /// Writes the document; returns false (with a perror) on I/O failure.
  bool write(const char* path) const {
    std::FILE* f = std::fopen(path, "w");
    if (f == nullptr) {
      std::perror("bench_json: fopen");
      return false;
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"git_sha\": \"%s\",\n",
                 escaped(bench_).c_str(), escaped(CHANT_GIT_SHA).c_str());
    std::fprintf(f, "  \"config\": {");
    for (std::size_t i = 0; i < config_.size(); ++i) {
      std::fprintf(f, "%s\n    \"%s\": \"%s\"", i == 0 ? "" : ",",
                   escaped(config_[i].first).c_str(),
                   escaped(config_[i].second).c_str());
    }
    std::fprintf(f, "%s},\n", config_.empty() ? "" : "\n  ");
    std::fprintf(f, "  \"metrics\": [");
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
      std::fprintf(f,
                   "%s\n    { \"name\": \"%s\", \"value\": %.6g, "
                   "\"unit\": \"%s\"%s }",
                   i == 0 ? "" : ",", escaped(metrics_[i].name).c_str(),
                   metrics_[i].value, escaped(metrics_[i].unit).c_str(),
                   metrics_[i].gate ? "" : ", \"gate\": false");
    }
    std::fprintf(f, "%s]\n}\n", metrics_.empty() ? "" : "\n  ");
    const bool ok = std::fclose(f) == 0;
    if (ok) std::printf("wrote %s\n", path);
    return ok;
  }

  /// Scans argv for `--json <path>`; returns the path or null.
  static const char* json_path(int argc, char** argv) {
    for (int i = 1; i + 1 < argc; ++i) {
      if (std::string(argv[i]) == "--json") return argv[i + 1];
    }
    return nullptr;
  }

 private:
  struct Metric {
    std::string name;
    double value;
    std::string unit;
    bool gate;
  };

  static std::string escaped(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      if (static_cast<unsigned char>(c) < 0x20) continue;  // drop control
      out.push_back(c);
    }
    return out;
  }

  std::string bench_;
  std::vector<std::pair<std::string, std::string>> config_;
  std::vector<Metric> metrics_;
};

}  // namespace harness
