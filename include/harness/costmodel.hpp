// harness/costmodel.hpp — Paragon-era scaled time from event counters.
//
// The paper's absolute times come from 1994 hardware: a ~50 MHz i860
// where a full user-level context switch, an NX msgtest, and a message
// transfer each cost tens to hundreds of microseconds. Our counters
// (complete switches, partial-switch tests, msgtest calls, messages and
// bytes) are hardware-independent and directly comparable to the paper's
// count columns; this cost model maps them to "Paragon-scaled"
// milliseconds so the *time* columns of Tables 2–5 can be compared in
// shape as well.
//
// The constants are a joint fit of the paper's own Table 3 (beta = 100):
// solving Time = ctxsw·t_sw + msgtest·t_test + msgs·t_wire + units·t_unit
// across the three algorithms gives a consistent solution —
//   t_sw   ≈ 143 µs (TP row: 6655 switches dominate its 2730 ms),
//   t_test ≈ 350 µs (WQ vs TP: ~9.2k extra tests cost ~3.2 s),
//   t_wire ≈ 700 µs (per message, NX small-message send+deliver),
//   t_unit ≈ 38 ns  (alpha 100→100000 adds ~4.5 s over 1.2e8 units) —
// which then *predicts* the paper's PS (2413 ms) and WQ (5950 ms) rows
// to within ~5%.
//
// EXPERIMENTS.md reports real measured time, raw counters, and this
// scaled time side by side for every experiment.
#pragma once

#include <cstdint>

#include "lwt/scheduler.hpp"
#include "nx/counters.hpp"

namespace harness {

struct CostModel {
  double us_full_switch = 143.0;   ///< complete user-level context switch
  double us_partial_poll = 20.0;   ///< PS partial switch (beyond the test)
  double us_msgtest = 350.0;       ///< one NX msgtest call
  double us_msg_latency = 700.0;   ///< per-message send+deliver cost
  double us_per_byte = 0.159;      ///< incremental per-byte cost
  double us_compute_unit = 0.038;  ///< one alpha/beta loop iteration

  /// Scaled time (microseconds) for one process's counters plus the
  /// total compute units it executed.
  double scaled_us(const lwt::SchedulerStats& s, const nx::Counters& c,
                   double compute_units) const {
    const double switches =
        static_cast<double>(s.full_switches) * us_full_switch +
        static_cast<double>(s.partial_poll_tests) * us_partial_poll;
    const double tests =
        static_cast<double>(c.msgtest_calls.load() + c.testany_calls.load()) *
        us_msgtest;
    const double wire =
        static_cast<double>(c.sends.load()) * us_msg_latency +
        static_cast<double>(c.bytes_sent.load()) * us_per_byte;
    return switches + tests + wire + compute_units * us_compute_unit;
  }
};

}  // namespace harness
