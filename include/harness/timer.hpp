// harness/timer.hpp — wall-clock measurement helpers.
#pragma once

#include <chrono>
#include <cstdint>

namespace harness {

class Timer {
 public:
  Timer() : start_(clock::now()) {}
  void reset() { start_ = clock::now(); }
  double elapsed_us() const {
    return std::chrono::duration<double, std::micro>(clock::now() - start_)
        .count();
  }
  double elapsed_ms() const { return elapsed_us() / 1000.0; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace harness
