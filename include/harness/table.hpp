// harness/table.hpp — fixed-width table printing for the bench harness,
// so every bench binary emits rows directly comparable to the paper's
// tables, plus machine-readable CSV lines (prefix "CSV,") for plotting.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace harness {

class Table {
 public:
  explicit Table(std::vector<std::string> columns)
      : cols_(std::move(columns)) {}

  void add_row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  /// Pretty-prints with aligned columns, then emits one CSV line per row
  /// tagged with `csv_tag` for downstream plotting.
  void print(const char* csv_tag = nullptr) const {
    std::vector<std::size_t> width(cols_.size());
    for (std::size_t c = 0; c < cols_.size(); ++c) width[c] = cols_[c].size();
    for (const auto& r : rows_) {
      for (std::size_t c = 0; c < r.size() && c < width.size(); ++c) {
        if (r[c].size() > width[c]) width[c] = r[c].size();
      }
    }
    for (std::size_t c = 0; c < cols_.size(); ++c) {
      std::printf("%-*s  ", static_cast<int>(width[c]), cols_[c].c_str());
    }
    std::printf("\n");
    for (std::size_t c = 0; c < cols_.size(); ++c) {
      std::printf("%s  ", std::string(width[c], '-').c_str());
    }
    std::printf("\n");
    for (const auto& r : rows_) {
      for (std::size_t c = 0; c < r.size(); ++c) {
        std::printf("%-*s  ", static_cast<int>(width[c]), r[c].c_str());
      }
      std::printf("\n");
    }
    if (csv_tag != nullptr) {
      for (const auto& r : rows_) {
        std::printf("CSV,%s", csv_tag);
        for (const auto& cell : r) std::printf(",%s", cell.c_str());
        std::printf("\n");
      }
    }
    std::fflush(stdout);
  }

 private:
  std::vector<std::string> cols_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style std::string helper for table cells.
template <typename... Args>
std::string fmt(const char* f, Args... args) {
  char buf[160];
  std::snprintf(buf, sizeof buf, f, args...);
  return buf;
}

}  // namespace harness
