// chant/collective.hpp — fiber-aware group collectives for Chant code.
//
// nx::Group's collectives wait at the OS-thread level by default (fine
// for process-style code, wrong inside a chanter thread: it would stall
// every thread of the process). make_group() wires the group's waiter to
// the calling runtime's scheduler, so a collective blocks only the
// thread that entered it — sibling threads keep the PE busy, which is
// the whole point of talking threads.
#pragma once

#include <vector>

#include "chant/runtime.hpp"
#include "chant/world.hpp"
#include "nx/group.hpp"

namespace chant {

/// Builds a collective group over `members` (one entry per participating
/// process; identical list on every member — SPMD) whose waits yield the
/// calling thread. `group_id` must be unique among live groups.
inline nx::Group make_group(Runtime& rt,
                            const std::vector<nx::NodeAddr>& members,
                            int group_id) {
  nx::Group g(rt.endpoint(), members, group_id);
  Runtime* rtp = &rt;
  g.set_waiter([rtp] { rtp->yield(); });
  return g;
}

/// Group spanning process 0 of every PE (the common SPMD shape).
inline nx::Group make_world_group(Runtime& rt, int group_id) {
  std::vector<nx::NodeAddr> members;
  const int pes = rt.world().config().pes;
  members.reserve(static_cast<std::size_t>(pes));
  for (int p = 0; p < pes; ++p) members.push_back({p, 0});
  return make_group(rt, members, group_id);
}

}  // namespace chant
