// chant/tagcodec.hpp — thread naming in the message header (paper §3.1(2)).
//
// The delivery problem: the underlying communication system addresses
// processes, not threads, so the (dst thread, src thread) pair must ride
// in the message header — never in the body, which would force an extra
// receive-decode-forward copy the paper rules out. Two encodings:
//
//  * TagOverload — the NX/p4 situation: no spare header field, so the
//    32-bit user tag is split [dst lid:8][src lid:8][tag field:16]. This
//    is the paper's "half the tag bits" cost; receives match with a bit
//    mask. One bit of the 16-bit tag field marks Chant-internal traffic
//    (RSR requests/replies), leaving 15-bit user tags and at most 255
//    threads per process.
//  * HeaderField — the MPI situation: lids ride in the nx `channel`
//    field (the role MPI's communicator plays) and the tag field stays
//    wide: 30-bit user tags, 32767 threads per process.
//
// The internal bit guarantees a wildcard (any-tag) user receive can
// never capture runtime-internal messages.
#pragma once

#include <cstdint>

#include "chant/gid.hpp"
#include "chant/policy.hpp"
#include "nx/endpoint.hpp"

namespace chant {

/// Chant-internal tag space (always sent with the internal bit set).
/// The 15-bit internal field splits into a type (bits 12..14) and a
/// 12-bit reply sequence number, so a requester with several
/// asynchronous RSRs outstanding — or whose replies are produced out of
/// order by deferred handlers — still pairs every reply (and its
/// big-payload tail) with the right request.
inline constexpr int kTagRsr = 1 << 12;  ///< request to a server thread
inline constexpr int rsr_reply_tag(int seq) noexcept {
  return (2 << 12) | (seq & 0xFFF);
}
inline constexpr int rsr_tail_tag(int seq) noexcept {
  return (3 << 12) | (seq & 0xFFF);
}

class TagCodec {
 public:
  explicit TagCodec(AddressingMode mode) noexcept : mode_(mode) {}

  AddressingMode mode() const noexcept { return mode_; }

  /// Largest local thread id representable in the header. (HeaderField
  /// lids stop at 2^13-1 so the packed channel never reaches the bit-29
  /// space reserved for nx::Group collective traffic.)
  int max_lid() const noexcept {
    return mode_ == AddressingMode::TagOverload ? 0xFF : 0x1FFF;
  }

  /// Largest user message type applications may use.
  int max_user_tag() const noexcept {
    return mode_ == AddressingMode::TagOverload ? 0x7FFF : 0x3FFFFFFF;
  }

  /// What goes on the wire for one message.
  struct Wire {
    int tag;
    int channel;
  };
  Wire encode(int dst_lid, int src_lid, int user_tag,
              bool internal = false) const noexcept {
    if (mode_ == AddressingMode::TagOverload) {
      std::uint32_t field = static_cast<std::uint32_t>(user_tag) & 0x7FFFu;
      if (internal) field |= 0x8000u;
      const auto t = (static_cast<std::uint32_t>(dst_lid) << 24) |
                     (static_cast<std::uint32_t>(src_lid) << 16) | field;
      return Wire{static_cast<int>(t), 0};
    }
    std::uint32_t field = static_cast<std::uint32_t>(user_tag) & 0x3FFFFFFFu;
    if (internal) field |= 0x40000000u;
    const auto ch = (static_cast<std::uint32_t>(dst_lid) << 16) |
                    (static_cast<std::uint32_t>(src_lid) & 0xFFFFu);
    return Wire{static_cast<int>(field), static_cast<int>(ch)};
  }

  /// Matching pattern for a receive. `src_lid < 0` and `user_tag < 0`
  /// are wildcards; the destination lid (our own) and the internal bit
  /// are always exact.
  struct Pattern {
    int tag;
    int tag_mask;
    int channel;
    int channel_mask;
  };
  Pattern pattern(int dst_lid, int src_lid, int user_tag,
                  bool internal = false) const noexcept {
    if (mode_ == AddressingMode::TagOverload) {
      std::uint32_t want = static_cast<std::uint32_t>(dst_lid) << 24;
      std::uint32_t mask = 0xFF000000u | 0x8000u;  // dst lid + internal bit
      if (internal) want |= 0x8000u;
      if (src_lid >= 0) {
        want |= static_cast<std::uint32_t>(src_lid) << 16;
        mask |= 0x00FF0000u;
      }
      if (user_tag >= 0) {
        want |= static_cast<std::uint32_t>(user_tag) & 0x7FFFu;
        mask |= 0x00007FFFu;
      }
      return Pattern{static_cast<int>(want), static_cast<int>(mask), 0, 0};
    }
    std::uint32_t cwant = static_cast<std::uint32_t>(dst_lid) << 16;
    std::uint32_t cmask = 0xFFFF0000u;
    if (src_lid >= 0) {
      cwant |= static_cast<std::uint32_t>(src_lid) & 0xFFFFu;
      cmask |= 0x0000FFFFu;
    }
    std::uint32_t twant = internal ? 0x40000000u : 0u;
    std::uint32_t tmask = 0x40000000u;
    if (user_tag >= 0) {
      twant |= static_cast<std::uint32_t>(user_tag) & 0x3FFFFFFFu;
      tmask |= 0x3FFFFFFFu;
    }
    return Pattern{static_cast<int>(twant), static_cast<int>(tmask),
                   static_cast<int>(cwant), static_cast<int>(cmask)};
  }

  /// Recover the sender's local thread id from a received header.
  int decode_src_lid(const nx::MsgHeader& h) const noexcept {
    if (mode_ == AddressingMode::TagOverload) {
      return static_cast<int>((static_cast<std::uint32_t>(h.tag) >> 16) &
                              0xFFu);
    }
    return static_cast<int>(static_cast<std::uint32_t>(h.channel) & 0xFFFFu);
  }

  /// Recover the (user or internal) message type from a received header.
  int decode_user_tag(const nx::MsgHeader& h) const noexcept {
    if (mode_ == AddressingMode::TagOverload) {
      return static_cast<int>(static_cast<std::uint32_t>(h.tag) & 0x7FFFu);
    }
    return static_cast<int>(static_cast<std::uint32_t>(h.tag) & 0x3FFFFFFFu);
  }

  /// True if the message carries Chant-internal traffic.
  bool is_internal(const nx::MsgHeader& h) const noexcept {
    if (mode_ == AddressingMode::TagOverload) {
      return (static_cast<std::uint32_t>(h.tag) & 0x8000u) != 0;
    }
    return (static_cast<std::uint32_t>(h.tag) & 0x40000000u) != 0;
  }

 private:
  AddressingMode mode_;
};

}  // namespace chant
