// chant/mailbox.hpp — typed message endpoints for talking threads.
//
// A Mailbox<T> is a small ergonomic layer over the p2p primitives: a
// fixed user tag plus a trivially-copyable payload type, with blocking,
// polling and source-selective receives. Each chanter thread constructs
// its own mailboxes (they wrap that thread's identity); the wire format
// is the raw object representation, valid machine-wide under the SPMD
// single-binary assumption (same as the Appendix-A char* interface).
#pragma once

#include <optional>
#include <type_traits>

#include "chant/runtime.hpp"

namespace chant {

template <typename T>
class Mailbox {
  static_assert(std::is_trivially_copyable_v<T>,
                "Mailbox payloads travel as raw bytes");

 public:
  /// Binds the mailbox to the calling thread and `tag`. The same tag
  /// must be used by peers addressing this mailbox.
  Mailbox(Runtime& rt, int tag) : rt_(rt), tag_(tag) {}
  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;
  ~Mailbox() {
    // Withdraw a pending try_recv posting so nothing scribbles into
    // freed storage after the mailbox dies.
    if (pending_ >= 0) {
      MsgInfo scratch;
      if (!rt_.msgtest(pending_, &scratch)) {
        // Still posted: cancel through the endpoint via msgwait-free
        // path. Ok and AlreadyCompleted are both fine in a destructor —
        // either way nothing writes into freed storage afterwards.
        (void)rt_.cancel_irecv(pending_);
      }
    }
  }

  int tag() const noexcept { return tag_; }

  /// Locally-blocking typed send to `dst`'s mailbox with the same tag.
  void send(const T& value, const Gid& dst) {
    rt_.send(tag_, &value, sizeof value, dst);
  }

  /// Blocking receive from anyone; optionally reports the sender.
  T recv(Gid* from = nullptr) {
    T out{};
    const MsgInfo mi = rt_.recv(tag_, &out, sizeof out, kAnyThread);
    if (from != nullptr) *from = mi.src;
    return out;
  }

  /// Blocking receive from one specific global thread.
  T recv_from(const Gid& src) {
    T out{};
    // MsgInfo dropped: the sender is pinned and T is fixed-size, so the
    // src/len it reports are already known.
    (void)rt_.recv(tag_, &out, sizeof out, src);
    return out;
  }

  /// Nonblocking receive: returns the message if one has arrived. Keeps
  /// one receive posted internally, so a message that has arrived is
  /// found on the first call (zero-copy posted path underneath).
  std::optional<T> try_recv(Gid* from = nullptr) {
    if (pending_ < 0) {
      pending_ = rt_.irecv(tag_, &slot_, sizeof slot_, kAnyThread);
    }
    MsgInfo mi;
    if (!rt_.msgtest(pending_, &mi)) return std::nullopt;
    pending_ = -1;
    if (from != nullptr) *from = mi.src;
    return slot_;
  }

  /// The mailbox's internal posted receive, for Selector registration:
  /// posts one (same as try_recv's first call) if none is pending and
  /// returns its handle. Selector::add_mailbox uses this to arm its
  /// readiness callback; a mailbox registered with a Selector must be
  /// remove()d from it before the mailbox is destroyed.
  int selector_handle() {
    if (pending_ < 0) {
      pending_ = rt_.irecv(tag_, &slot_, sizeof slot_, kAnyThread);
    }
    return pending_;
  }

 private:
  Runtime& rt_;
  int tag_;
  int pending_ = -1;
  T slot_{};
};

/// One-line request/reply convenience: sends `req` to `dst` on `tag`,
/// then blocks for a same-tag response from `dst`.
template <typename Req, typename Rep>
Rep exchange(Runtime& rt, int tag, const Req& req, const Gid& dst) {
  static_assert(std::is_trivially_copyable_v<Req> &&
                std::is_trivially_copyable_v<Rep>);
  rt.send(tag, &req, sizeof req, dst);
  Rep out{};
  // MsgInfo dropped: src is pinned to dst and Rep is fixed-size.
  (void)rt.recv(tag, &out, sizeof out, dst);
  return out;
}

}  // namespace chant
