// chant/gid.hpp — C++ view of the global thread identifier.
//
// The C struct pthread_chanter_t is the single source of truth for the
// paper's (pe, process, thread) 3-tuple; the C++ layer aliases it so ids
// flow between the two APIs without conversion.
#pragma once

#include "chant/pthread_chanter.h"

// Comparison lives at global scope (the type is the C struct), so ADL
// finds it from any namespace — tests, gtest matchers, user code.
inline bool operator==(const pthread_chanter_t& a,
                       const pthread_chanter_t& b) noexcept {
  return a.pe == b.pe && a.process == b.process && a.thread == b.thread;
}
inline bool operator!=(const pthread_chanter_t& a,
                       const pthread_chanter_t& b) noexcept {
  return !(a == b);
}

namespace chant {

using Gid = ::pthread_chanter_t;

/// Reserved local thread ids within every process.
inline constexpr int kServerLid = 0;  ///< the RSR server thread (§3.2)
inline constexpr int kMainLid = 1;    ///< the process's main thread
inline constexpr int kFirstUserLid = 2;

/// Wildcard source for receives.
inline constexpr Gid kAnyThread{-1, -1, -1};
/// Wildcard user message type for receives.
inline constexpr int kAnyUserTag = -1;

inline bool is_any(const Gid& g) noexcept { return g.pe < 0; }

}  // namespace chant
