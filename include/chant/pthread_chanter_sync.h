/* chant/pthread_chanter_sync.h — the local-thread portion of the Chant
 * interface: attributes, mutex variables, condition variables, and
 * thread-local data keys.
 *
 * Appendix A of the paper notes that "the pthreads routines that deal
 * with attributes, user-local data, mutex variables, condition
 * variables, and scheduling ... can all be applied to the pthread base
 * of a global thread". These are those routines, implemented over the
 * lwt substrate. They synchronize threads *within one process* (shared
 * memory); cross-process coordination uses messages.
 *
 * All functions return 0 on success or an errno value, as in pthreads.
 */
#ifndef CHANT_PTHREAD_CHANTER_SYNC_H
#define CHANT_PTHREAD_CHANTER_SYNC_H

#include <stddef.h>

#include "chant/pthread_chanter.h" /* pthread_chanter_attr_t */

#ifdef __cplusplus
extern "C" {
#endif

/* -------- attributes -------- */

int pthread_chanter_attr_init(pthread_chanter_attr_t* attr);
int pthread_chanter_attr_destroy(pthread_chanter_attr_t* attr);
int pthread_chanter_attr_setstacksize(pthread_chanter_attr_t* attr,
                                      size_t stack_size);
int pthread_chanter_attr_getstacksize(const pthread_chanter_attr_t* attr,
                                      size_t* stack_size);
int pthread_chanter_attr_setprio(pthread_chanter_attr_t* attr, int priority);
int pthread_chanter_attr_getprio(const pthread_chanter_attr_t* attr,
                                 int* priority);
int pthread_chanter_attr_setdetachstate(pthread_chanter_attr_t* attr,
                                        int detached);

/* -------- mutex variables -------- */

typedef struct pthread_chanter_mutex {
  void* impl; /* lwt::Mutex, owned */
} pthread_chanter_mutex_t;

int pthread_chanter_mutex_init(pthread_chanter_mutex_t* m);
int pthread_chanter_mutex_destroy(pthread_chanter_mutex_t* m);
int pthread_chanter_mutex_lock(pthread_chanter_mutex_t* m);
int pthread_chanter_mutex_trylock(pthread_chanter_mutex_t* m); /* EBUSY */
int pthread_chanter_mutex_unlock(pthread_chanter_mutex_t* m);
/* Bounded lock: waits at most timeout_ns nanoseconds (relative), then
 * returns ETIMEDOUT. The wait is scheduler-integrated, never a spin. */
int pthread_chanter_mutex_timedlock(pthread_chanter_mutex_t* m,
                                    unsigned long long timeout_ns);

/* -------- condition variables -------- */

typedef struct pthread_chanter_cond {
  void* impl; /* lwt::CondVar, owned */
} pthread_chanter_cond_t;

int pthread_chanter_cond_init(pthread_chanter_cond_t* c);
int pthread_chanter_cond_destroy(pthread_chanter_cond_t* c);
int pthread_chanter_cond_wait(pthread_chanter_cond_t* c,
                              pthread_chanter_mutex_t* m);
/* Bounded wait: returns ETIMEDOUT if not signalled within timeout_ns
 * nanoseconds (relative). The mutex is reacquired either way. */
int pthread_chanter_cond_timedwait(pthread_chanter_cond_t* c,
                                   pthread_chanter_mutex_t* m,
                                   unsigned long long timeout_ns);
int pthread_chanter_cond_signal(pthread_chanter_cond_t* c);
int pthread_chanter_cond_broadcast(pthread_chanter_cond_t* c);

/* -------- thread-local data -------- */

typedef int pthread_chanter_key_t;

int pthread_chanter_key_create(pthread_chanter_key_t* key,
                               void (*destructor)(void*));
int pthread_chanter_key_delete(pthread_chanter_key_t key);
int pthread_chanter_setspecific(pthread_chanter_key_t key, const void* value);
void* pthread_chanter_getspecific(pthread_chanter_key_t key);

/* -------- one-time initialization -------- */

typedef struct pthread_chanter_once_s {
  void* impl; /* lwt::Once, lazily created */
} pthread_chanter_once_t;

#define PTHREAD_CHANTER_ONCE_INIT {0}

int pthread_chanter_once(pthread_chanter_once_t* once, void (*init)(void));

#ifdef __cplusplus
} /* extern "C" */
#endif

#endif /* CHANT_PTHREAD_CHANTER_SYNC_H */
