// chant/chant.hpp — umbrella header for the Chant talking-threads runtime.
//
// Quick tour:
//   chant::World     — the simulated multicomputer + per-process runtimes
//   chant::Runtime   — one process's Chant services (p2p, RSR, threads)
//   chant::Gid       — global thread id (pe, process, thread)
//   pthread_chanter_* (chant/pthread_chanter.h) — the paper's Appendix-A
//                      C interface over the same runtime
//
// See README.md for a walkthrough and DESIGN.md for the architecture.
#pragma once

#include "chant/collective.hpp"
#include "chant/gid.hpp"
#include "chant/mailbox.hpp"
#include "chant/policy.hpp"
#include "chant/pthread_chanter.h"
#include "chant/pthread_chanter_sync.h"
#include "chant/runtime.hpp"
#include "chant/sda.hpp"
#include "chant/selector.hpp"
#include "chant/tagcodec.hpp"
#include "chant/world.hpp"
