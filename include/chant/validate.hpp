// chant/validate.hpp — runtime concurrency validator (DESIGN.md §9).
//
// An opt-in debug subsystem that checks three classes of concurrency
// mistakes a race detector cannot see:
//
//  1. Lock-order cycles. Every lwt::Mutex / lwt::RwLock acquisition is
//     recorded into a global lock-order graph; acquiring B while holding
//     A adds the edge A->B, and a path B->...->A closing a cycle is
//     reported as a potential deadlock, with the acquisition stacks of
//     both conflicting edges. (An actual deadlock never fires the
//     report — this catches the *ordering* hazard on runs where the
//     interleaving happened to be benign.)
//
//  2. Blocking calls from no-block context. The RSR server thread
//     dispatches handlers at boosted priority; a handler that makes an
//     unbounded blocking call (recv / msgwait / call_wait / join /
//     untimed mutex lock) can wedge the entire service plane. The
//     dispatch loop brackets each handler with a HandlerScope that tags
//     the fiber; unbounded blocking operations check the tag and report.
//     Deadline-bounded waits are permitted (they bound the outage).
//
//  3. BufferPool misuse. Released blocks are poisoned (0xDB) and
//     re-verified on recycle, catching writes through a buffer that was
//     already handed back; releasing a moved-from (capacity-0) vector —
//     the signature of releasing the same buffer twice — is reported as
//     a double release.
//
// Everything is gated on enable() (or the CHANT_VALIDATE environment
// variable, checked once at Runtime construction). When off, the only
// residue is a relaxed atomic load per checkpoint.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace chant::validate {

/// The classes of violation the validator reports.
enum class Violation : std::uint8_t {
  kLockOrderCycle = 0,   ///< lock-order graph cycle (potential deadlock)
  kBlockingInHandler,    ///< unbounded blocking call in a no-block scope
  kPoolDoubleRelease,    ///< BufferPool::release of a moved-from buffer
  kPoolUseAfterRelease,  ///< poison damaged while a block sat in the pool
};
inline constexpr int kNumViolations = 4;

/// One detected violation. `message` is a complete multi-line,
/// human-readable report (including captured stacks where available).
struct Report {
  Violation kind;
  std::string message;
};

/// Report consumer. The default sink prints to stderr.
using Sink = void (*)(void* ctx, const Report& report);

/// Turns validation on: installs the lwt hooks and arms the chant-side
/// checkpoints. Safe to call more than once.
void enable();

/// Turns validation off and clears all recorded state.
void disable();

/// True when the validator is armed. One relaxed load — callers on hot
/// paths guard their instrumentation with this.
inline bool enabled() noexcept {
  extern std::atomic<bool> g_enabled;
  return g_enabled.load(std::memory_order_relaxed);
}

/// Calls enable() if the CHANT_VALIDATE environment variable is set to
/// anything but "0" / "". Invoked by the Runtime constructor so test
/// binaries pick validation up without code changes.
void enable_from_env();

/// Replaces the report sink (null restores the stderr default). The sink
/// runs under the validator's internal mutex: keep it reentrancy-free
/// (no lwt primitives, no chant calls).
void set_sink(Sink sink, void* ctx) noexcept;

/// Number of violations reported since enable()/reset(), in total or of
/// one kind. Tests assert on these.
std::uint64_t violation_count() noexcept;
std::uint64_t violation_count(Violation kind) noexcept;

/// Clears counters, the lock-order graph, held-lock sets and the pool
/// registry, keeping validation enabled. For use between test cases.
void reset();

/// Tags the calling fiber as no-block context for the lifetime of the
/// scope (nestable). The RSR dispatch loop wraps handler invocations in
/// one; tests may use it directly.
class HandlerScope {
 public:
  explicit HandlerScope(const char* what) noexcept;
  ~HandlerScope();
  HandlerScope(const HandlerScope&) = delete;
  HandlerScope& operator=(const HandlerScope&) = delete;

 private:
  const char* prev_what_ = nullptr;
  bool armed_ = false;
};

/// Checkpoint for chant-level blocking entry points (recv, msgwait,
/// call_wait, join). Reports kBlockingInHandler when the calling fiber
/// is inside a HandlerScope and the wait is unbounded.
void check_blocking(const char* what, bool timed) noexcept;

// ------------------------------------------------- BufferPool plumbing
// Called by BufferPool (bufferpool.hpp) only while enabled().

/// A capacity-0 vector reached release(): report a double release.
void pool_double_release(const void* pool);

/// `data[0, size)` is entering the free list: poison it and register the
/// block so the matching acquire can verify the poison.
void pool_poison(const void* pool, std::uint8_t* data, std::size_t size);

/// The block is being recycled: verify the poison laid down by
/// pool_poison survived, reporting kPoolUseAfterRelease otherwise, and
/// drop the registration.
void pool_unpoison(const void* pool, std::uint8_t* data, std::size_t size);

}  // namespace chant::validate
