// chant/hb.hpp — vector-clock happens-before checker (DESIGN.md §14).
//
// A layered concurrency checker that turns the sim harness into a model
// checker: it maintains one vector clock per fiber, derives
// happens-before edges from every runtime event (fiber spawn/join, lock
// and sync-object operations, message send → matched receive, RSR call
// → handler → reply), and runs three detectors on top:
//
//   1. data races     — over regions registered with hb::track() (and
//                       BufferPool blocks automatically), checked at
//                       annotated / runtime copy accesses;
//   2. deadlocks      — a wait-for graph spanning fibers blocked on
//                       locks, joins, Once initializers and RSR calls,
//                       across every process of the (in-proc) world;
//   3. lost wakeups   — a fiber still blocked on an unbounded wait when
//                       the whole world has quiesced: nothing runnable,
//                       no armed timer, no in-flight message.
//
// Off (the default), every instrumentation site costs one relaxed /
// acquire load of a null pointer — the gated bench_hb_overhead row
// proves the production path is unchanged. Enabled (explicitly or via
// CHANT_HB=1), every explored sim interleaving is checked; a violation
// inside sim::explore() fails the iteration, which prints the
// CHANT_SIM_SEED / CHANT_SIM_TRACE repro line and feeds the shrinker.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace lwt {
struct Tcb;
class Scheduler;
}  // namespace lwt

namespace chant::hb {

/// Everything the checker can report.
enum class Violation : int {
  kDataRace = 0,    ///< unordered accesses to a tracked region
  kDeadlock,        ///< cycle in the cross-PE wait-for graph
  kLostWakeup,      ///< unbounded wait with no possible waker left
  kNumViolations,   // count — keep last
};

constexpr int kNumViolations = static_cast<int>(Violation::kNumViolations);

const char* to_string(Violation v) noexcept;

/// A reported violation, delivered to the installed sink.
struct Report {
  Violation kind;
  const char* message;  ///< multi-line human-readable diagnosis
};

/// Report consumer. The default sink prints to stderr (including the
/// CHANT_SIM_SEED hint when running under the sim harness).
using Sink = void (*)(const Report&);

// ------------------------------------------------------------ lifecycle

/// Install the checker (lwt + nx hook tables). Idempotent.
void enable();
/// Uninstall the hooks and stop checking. State is kept for inspection
/// until reset().
void disable();
/// enable() when CHANT_HB is set to a non-empty, non-"0" value.
void enable_from_env();

extern std::atomic<bool> g_enabled;
inline bool enabled() noexcept {
  return g_enabled.load(std::memory_order_acquire);
}

/// Clear all clocks, regions, counters and world bookkeeping. Call
/// between independent runs (sim iterations).
void reset();

void set_sink(Sink sink);  ///< null restores the default stderr sink

std::uint64_t violation_count();             ///< total since reset()
std::uint64_t violation_count(Violation v);  ///< per kind

// -------------------------------------------------- shared-region races

/// Register [ptr, ptr+len) as checked shared state. `name` appears in
/// race reports and must outlive the registration (static storage or
/// world lifetime).
void track(const void* ptr, std::size_t len, const char* name);
/// Remove a registration made by track() (matched by base pointer).
void untrack(const void* ptr);

/// Announce an access to possibly-tracked memory. No-ops (one atomic
/// load) when the checker is off or the range overlaps no tracked
/// region. `site` names the access for reports (static storage).
void on_read(const void* ptr, std::size_t len, const char* site);
void on_write(const void* ptr, std::size_t len, const char* site);

// ------------------------------------------- runtime integration points
// (called by the Chant runtime; not part of the user API)

/// A World::run covering `processes` runtimes is starting: quiescence
/// detection arms once all of them have registered.
void world_begin(unsigned processes);
/// A Runtime bound to `sched` came up at (pe, proc) / went down.
void runtime_started(lwt::Scheduler* sched, int pe, int proc);
void runtime_stopped(lwt::Scheduler* sched);
/// The RSR server fiber of (pe, proc): target node for call edges in
/// the wait-for graph.
void server_started(int pe, int proc, lwt::Tcb* tcb);

/// The current fiber consumed the message carrying `token`
/// (MsgHeader::hb_clk): merge the sender's clock (send → recv edge).
void msg_delivered(std::uint64_t token);

/// Scratch-counter / barrier traffic at the transport layer: a single
/// conservatively-ordered global sync object (merge both ways).
void global_sync();

/// BufferPool block lifecycle: blocks are auto-tracked regions, and
/// acquire/release are ordered through the pool (plus count as claim
/// writes, so stale accesses race with the next recycle).
void pool_acquired(const void* base, std::size_t len);
void pool_released(const void* base);

/// RAII wrapper for a chant-level blocking site (recv / msgwait /
/// rendezvous send / selector wait). Restores any outer wait on exit,
/// so nesting (call wait → internal block_until) is safe. `what` must
/// have static storage duration.
class WaitScope {
 public:
  WaitScope(const void* obj, const char* what, bool timed);
  ~WaitScope();
  WaitScope(const WaitScope&) = delete;
  WaitScope& operator=(const WaitScope&) = delete;

 private:
  lwt::Tcb* tcb_;
};

/// Like WaitScope, for an RSR call wait: the wait-for edge targets the
/// server fiber of (pe, proc).
class CallWaitScope {
 public:
  CallWaitScope(int pe, int proc, const char* what, bool timed);
  ~CallWaitScope();
  CallWaitScope(const CallWaitScope&) = delete;
  CallWaitScope& operator=(const CallWaitScope&) = delete;

 private:
  lwt::Tcb* tcb_;
};

}  // namespace chant::hb
