// chant/selector.hpp — multiplexed wait over many message sources.
//
// The paper's §4.2 analysis blames WQ's poor showing on NX lacking
// msgtestany: one fiber cannot efficiently wait on many pending events,
// so schedulers fall back to O(waiting) polling scans. A Selector is
// the select/epoll-style repair at the Chant layer: register N wait
// sources — irecv handles, outstanding async calls, timers, mailbox
// readiness — and block one fiber until any of them completes.
//
// Wakeup is readiness-driven, not scan-driven (osv/core/epoll.cc is the
// shape): each registered source arms a one-shot completion callback on
// its nx request. The completing delivery queues the callback (never
// invoking it under the endpoint lock), the flush marks the selector
// entry ready and pokes the parked fiber through Scheduler::poll_wake.
// Waiting costs O(ready): the park predicate is one atomic load plus an
// epoch-gated progress probe, independent of how many sources are
// registered.
//
// Semantics (DESIGN.md §11):
//  * level-triggered: wait() reports sources that ARE ready, verified
//    at harvest time — a source that is still ready on the next wait()
//    (an undrained mailbox) is reported again; recv/call/timer sources
//    auto-deregister when reported (their readiness is consumed by the
//    msgtest/call_test the caller issues next).
//  * single owner: exactly one fiber may add/remove/wait on a Selector.
//    Completion callbacks run on arbitrary OS threads and synchronize
//    with the owner through the selector spinlock; everything else is
//    owner-only.
//  * handles registered with a Selector stay ordinary handles: msgtest,
//    msgwait, cancel_irecv, call_test and call_wait all keep working
//    and atomically deregister the source when they retire the handle.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "chant/status.hpp"
#include "lwt/spinlock.hpp"

namespace chant {

class Runtime;
template <typename T>
class Mailbox;

class Selector {
 public:
  /// What a ready-set element refers back to.
  enum class Kind : std::uint8_t { None, Recv, Call, Timer, Mailbox };

  /// One element of the ready-set wait() fills in.
  struct Ready {
    Kind kind = Kind::None;
    std::uint64_t token = 0;  ///< the registration this readiness is for
    int handle = -1;          ///< chant irecv/call handle (Recv/Call only)
    Status status{};          ///< Ok (readiness is never an error)
  };

  explicit Selector(Runtime& rt);
  Selector(const Selector&) = delete;
  Selector& operator=(const Selector&) = delete;
  /// Deregisters every source and quiesces in-flight callbacks before
  /// the storage they target goes away.
  ~Selector();

  // ---- source registration (owner fiber only) ----
  // Each add_* returns an opaque token identifying the registration
  // (valid for remove() and matching wait() output). A source that is
  // already ready at registration time is reported by the next wait()
  // — no completion is ever missed by registering "too late". Invalid
  // or stale handles throw std::invalid_argument, like msgtest.

  /// An irecv handle: ready when the message has been delivered
  /// (harvest it with msgtest, which deregisters automatically).
  std::uint64_t add_recv(int handle);
  /// A call_async handle: ready when every reply part has landed
  /// (harvest with call_test, which deregisters automatically).
  std::uint64_t add_call(int handle);
  /// A one-shot timer: ready when the scheduler clock reaches `d`.
  std::uint64_t add_timer(Deadline d);
  /// A mailbox: ready while a message is available (level-triggered;
  /// drain with try_recv). The registration survives deliveries.
  template <typename T>
  std::uint64_t add_mailbox(Mailbox<T>& mb) {
    return add_mailbox_raw(&mb, [](void* p) {
      return static_cast<Mailbox<T>*>(p)->selector_handle();
    });
  }

  /// Deregisters a source. Ok — removed (atomically: after this returns
  /// no callback for the registration can fire). Invalid — unknown or
  /// already auto-deregistered token (idempotent, not an error state).
  Status remove(std::uint64_t token);

  // ---- waiting ----

  /// Blocks the owner fiber until at least one source is ready or the
  /// deadline passes. Ok — `out` (if non-null) holds the ready-set (at
  /// least one element); one-shot sources in it are deregistered.
  /// DeadlineExceeded — nothing became ready; every registration stays
  /// armed. Invalid — no sources are registered. Cancellation unwinds
  /// with lwt::CancelInterrupt like every blocking Chant call; the
  /// registrations stay armed and the Selector stays usable.
  Status wait(Deadline deadline, std::vector<Ready>* out);
  Status wait(std::vector<Ready>* out) {
    return wait(Deadline::infinite(), out);
  }

  /// Number of live registrations (introspection/tests).
  std::size_t size() const;

 private:
  friend class Runtime;  // retire notifications (msgtest/cancel/call_*)

  struct Entry {
    Kind kind = Kind::None;
    std::uint32_t gen = 1;  ///< odd while live; token embeds it
    bool armed = false;     ///< a completion callback will fire
    bool ready = false;     ///< completion observed, not yet harvested
    int handle = -1;        ///< chant handle (Recv/Call; Mailbox: posted)
    std::uint64_t deadline_ns = 0;  ///< Timer: absolute scheduler clock
    void* mb = nullptr;             ///< Mailbox object
    int (*mb_handle)(void*) = nullptr;  ///< posts/returns its irecv
  };

  /// Park predicate (lwt::PollRequest): one atomic load, plus the
  /// endpoint's epoch-gated progress probe so in-flight (timed-net)
  /// messages still get revealed while every fiber is parked. Runs
  /// under the scheduler's wait lock — must not take the selector lock
  /// or invoke callbacks (poll_progress only queues fires).
  static bool poll_test(void* ctx);
  /// Completion callback armed on nx requests; runs on whichever OS
  /// thread drove the completing delivery.
  static void waiter_fire(void* ctx, std::uint64_t token);
  /// Called by the Runtime whenever a registered handle is retired
  /// outside the selector (msgtest harvest, cancel_irecv, call_test /
  /// call_wait / abandon). Drops the registration (mailboxes: disarms,
  /// keeps) so no waiter entry dangles.
  static void notify_handle_retired(void* sel, std::uint64_t token);

  std::uint64_t add_mailbox_raw(void* mb, int (*handle_fn)(void*));
  std::uint64_t new_entry(Entry&& e);
  static std::uint64_t make_token(std::uint32_t slot, std::uint32_t gen) {
    return (static_cast<std::uint64_t>(gen) << 32) | slot;
  }
  Entry* entry_for(std::uint64_t token);  ///< caller holds mu_
  void mark_ready_locked(std::uint32_t slot);
  void retire_locked(std::uint32_t slot);
  /// Arms unarmed mailbox entries and flags expired timers; returns the
  /// earliest armed timer deadline (kNoDeadline if none).
  std::uint64_t arm_and_sweep();
  /// Verifies and drains the ready list into `out`; returns the number
  /// of entries reported.
  std::size_t harvest(std::vector<Ready>* out);

  Runtime* rt_;
  /// Guards entries_/free_slots_/ready_list_ against completion
  /// callbacks; owner-only state transitions keep critical sections to
  /// a few stores, so a spinlock is right even under contention from a
  /// sender's OS thread.
  mutable lwt::SpinLock mu_;
  std::vector<Entry> entries_;
  std::vector<std::uint32_t> free_slots_;
  std::vector<std::uint64_t> ready_list_;  ///< tokens, fire order
  std::atomic<std::uint32_t> ready_pending_{0};  ///< ready_list_ mirror
  std::size_t live_ = 0;  ///< registrations (size() without a scan)
  /// Live Timer + Mailbox entries — the only kinds arm_and_sweep must
  /// visit. Zero (the common recv/call-only selector) skips the entry
  /// walk entirely, keeping wait() strictly O(ready) at any fan-in.
  std::size_t sweep_sources_ = 0;
};

}  // namespace chant
