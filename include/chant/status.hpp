// chant/status.hpp — unified result codes, deadlines and retry policy
// for the Chant runtime (DESIGN.md §8).
//
// Every fallible runtime operation that is not a programming error
// reports a Status; exceptions stay reserved for misuse (stale handles,
// out-of-range tags) and cancellation (lwt::CancelInterrupt). Deadline
// expresses "how long a blocking call may wait" in one value that works
// under both the real steady clock and the sim layer's VirtualClock;
// RetryPolicy opts a synchronous RSR call into bounded resends with
// exponential backoff (duplicates are suppressed server-side by the
// reply-sequence dedup cache).
#pragma once

#include <cstdint>

#include "lwt/timer.hpp"

namespace chant {

enum class StatusCode : int {
  Ok = 0,
  Pending,           ///< operation has not completed yet (tests only)
  DeadlineExceeded,  ///< the deadline passed before completion
  Canceled,          ///< withdrawn by the caller before completion
  Truncated,         ///< message delivered but longer than the buffer
  PeerGone,          ///< target thread unknown / already reaped
  AlreadyCompleted,  ///< cancel raced completion (or handle was retired)
  Invalid,           ///< argument rejected (self-join, malformed reply)
};

const char* to_string(StatusCode c) noexcept;

/// Value-type result code. Test ok() (or compare code()) explicitly —
/// there is deliberately no implicit bool conversion: "truthiness" hid
/// the difference between DeadlineExceeded and PeerGone at call sites
/// that only cared whether to retry. (The pre-PR-9 conversion shim was
/// removed; see DESIGN.md §8.)
///
/// [[nodiscard]]: a silently dropped Status turns a deadline expiry or a
/// dead peer into data corruption several calls later. Every producer of
/// one must be checked (or explicitly voided with a comment saying why).
class [[nodiscard]] Status {
 public:
  constexpr Status() noexcept = default;
  constexpr Status(StatusCode c) noexcept : code_(c) {}  // NOLINT(implicit)

  constexpr StatusCode code() const noexcept { return code_; }
  constexpr bool ok() const noexcept { return code_ == StatusCode::Ok; }

  const char* message() const noexcept { return to_string(code_); }

  friend constexpr bool operator==(Status a, Status b) noexcept {
    return a.code_ == b.code_;
  }
  friend constexpr bool operator!=(Status a, Status b) noexcept {
    return a.code_ != b.code_;
  }

 private:
  StatusCode code_ = StatusCode::Ok;
};

/// A wait bound for blocking runtime calls. Three forms:
///   Deadline::infinite()  — wait forever (the default everywhere)
///   Deadline::after(ns)   — relative: resolved against the scheduler
///                           clock when the wait begins
///   Deadline::at(abs_ns)  — absolute nanoseconds on the scheduler clock
///                           (lwt::Scheduler::now(); the VirtualClock in
///                           sim worlds)
class Deadline {
 public:
  constexpr Deadline() noexcept = default;  // infinite

  static constexpr Deadline infinite() noexcept { return Deadline{}; }
  static constexpr Deadline at(std::uint64_t abs_ns) noexcept {
    return Deadline{abs_ns, false};
  }
  static constexpr Deadline after(std::uint64_t rel_ns) noexcept {
    return Deadline{rel_ns, true};
  }

  constexpr bool is_infinite() const noexcept {
    return !relative_ && ns_ == lwt::kNoDeadline;
  }
  constexpr bool is_relative() const noexcept { return relative_; }
  constexpr std::uint64_t raw_ns() const noexcept { return ns_; }

  /// Absolute scheduler-clock deadline, given the current time.
  constexpr std::uint64_t resolve(std::uint64_t now_ns) const noexcept {
    if (!relative_) return ns_;
    const std::uint64_t d = now_ns + ns_;
    return d < now_ns ? lwt::kNoDeadline : d;  // saturate on overflow
  }

 private:
  constexpr Deadline(std::uint64_t ns, bool relative) noexcept
      : ns_(ns), relative_(relative) {}
  std::uint64_t ns_ = lwt::kNoDeadline;
  bool relative_ = false;
};

/// Opt-in resend policy for synchronous RSR calls with a deadline.
/// Attempt k (0-based) is given initial_backoff_ns · multiplier^k (capped
/// at max_backoff_ns) to produce a reply before the request is resent
/// with the same reply-sequence number; the server suppresses duplicate
/// executions and replays the recorded reply (DESIGN.md §8.3). The
/// overall Deadline always wins: no resend is issued past it.
struct RetryPolicy {
  int max_attempts = 1;  ///< total sends (1 = never resend)
  std::uint64_t initial_backoff_ns = 1'000'000;  ///< 1 ms
  std::uint32_t multiplier = 2;
  std::uint64_t max_backoff_ns = 100'000'000;  ///< 100 ms cap

  constexpr bool retries() const noexcept { return max_attempts > 1; }
};

}  // namespace chant
