// chant/policy.hpp — configuration enums for the Chant runtime.
#pragma once

#include <cstddef>

#include "lwt/context.hpp"

namespace lwt {
class ScheduleController;
}

namespace chant {

/// The three message-polling scheduling algorithms of paper §3.1/§4.2.
enum class PollPolicy {
  ThreadPolls,       ///< thread re-tests on every resumption (Fig. 5)
  SchedulerPollsWQ,  ///< scheduler scans a waiting queue each point (Fig. 6)
  SchedulerPollsPS,  ///< scheduler tests in the TCB before restoring
};

const char* to_string(PollPolicy p) noexcept;

/// How thread identifiers reach the message header (paper §3.1(2)).
enum class AddressingMode {
  /// Overload the user tag field: [dst lid:8][src lid:8][user tag:16].
  /// Faithful to NX/p4-class libraries; costs half the tag bits and
  /// limits each process to 255 threads.
  TagOverload,
  /// Carry thread ids in a dedicated header field (the role MPI's
  /// communicator plays); full-width user tags, 32767 threads/process.
  HeaderField,
};

const char* to_string(AddressingMode m) noexcept;

/// Per-process runtime configuration.
struct RuntimeConfig {
  PollPolicy policy = PollPolicy::ThreadPolls;
  AddressingMode addressing = AddressingMode::TagOverload;
  /// §4.2 ablation: with SchedulerPollsWQ, test all parked receives with
  /// one msgtestany call per scheduling point instead of one msgtest per
  /// request (the paper's stated hypothesis for MPI).
  bool wq_use_testany = false;
  /// Run the server thread above computation priority so a received RSR
  /// is handled at the next context-switch point (paper §3.2). The RSR
  /// ablation bench turns this off to measure the effect.
  bool server_high_priority = true;
  /// Start the server thread at all (pure-p2p experiments disable it so
  /// its polling does not perturb Table-2 style measurements).
  bool start_server = true;
  /// Scheduler worker threads for this process: 0 (the default) resolves
  /// CHANT_WORKERS at run time (unset -> 1), n >= 1 is used as given.
  /// Installing a controller_factory or wq_use_testany forces 1 — the
  /// sim determinism contract (see lwt::Scheduler::set_workers).
  unsigned workers = 0;
  lwt::ContextBackend backend = lwt::default_backend();
  std::size_t default_stack_size = 128 * 1024;
  /// Largest RSR request payload (server receive buffer size).
  std::size_t rsr_buffer_size = 16 * 1024;
  /// Test-only hooks (the sim subsystem, include/sim/). The factory runs
  /// once per process, on that process's OS thread, before any fiber
  /// spawns; the returned controller (not owned) is installed on the
  /// process's scheduler. The RSR observer fires on the server thread
  /// just before each handler dispatch. Null = production behavior.
  lwt::ScheduleController* (*controller_factory)(void* ctx, int pe,
                                                 int proc) = nullptr;
  void* controller_ctx = nullptr;
  void (*rsr_observer)(void* ctx, int handler, int src_pe,
                       int src_thread) = nullptr;
  void* rsr_observer_ctx = nullptr;
};

}  // namespace chant
