// chant/sda.hpp — shared data abstractions over Chant (the Opus layer).
//
// The paper's stated purpose for Chant is to support the authors' HPF
// extensions for task parallelism and *shared data abstractions* [5]:
// monitor-like objects that live in one process's address space and are
// operated on by threads anywhere in the machine. This module is that
// layer, built exactly the way §3.2/§3.3 prescribe — every operation is
// a remote service request handled by the owner's server thread, and
// each method invocation runs in its own helper thread serialized by a
// per-instance fiber mutex (so methods may themselves communicate or
// block without stalling the owner's server).
//
// Usage (SPMD — identical registration on every process, before run()):
//
//   struct Counter { long value = 0; };
//   chant::SdaClass<Counter> counter_class(world);          // register
//   int add = counter_class.method([](chant::Runtime&, Counter& c,
//                                     const long& d, long& out) {
//     c.value += d; out = c.value; });
//   ...inside world.run:
//   chant::SdaRef ref = counter_class.create(rt, /*pe=*/1, /*process=*/0);
//   long out = 0; long delta = 5;
//   counter_class.invoke(rt, ref, add, delta, out);          // monitor call
//   counter_class.destroy(rt, ref);
#pragma once

#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <stdexcept>
#include <vector>

#include "chant/runtime.hpp"
#include "chant/world.hpp"

namespace chant {

/// Handle to one SDA instance (valid machine-wide).
struct SdaRef {
  int pe = -1;
  int process = -1;
  std::int32_t instance = -1;
  bool valid() const noexcept { return instance >= 0; }
};

namespace detail {

/// Type-erased SDA plumbing shared by every SdaClass<T>. One RSR handler
/// (registered per class) multiplexes create/invoke/destroy.
class SdaBase {
 public:
  using Ctor = void* (*)();
  using Dtor = void (*)(void*);
  using RawMethod = void (*)(Runtime&, void* state, const void* arg,
                             std::size_t len, std::vector<std::uint8_t>& out);

  SdaBase(World& world, Ctor ctor, Dtor dtor);
  SdaBase(const SdaBase&) = delete;
  SdaBase& operator=(const SdaBase&) = delete;

  int add_method(RawMethod m);
  SdaRef create_instance(Runtime& rt, int pe, int process);
  std::vector<std::uint8_t> invoke_raw(Runtime& rt, const SdaRef& ref,
                                       int method, const void* arg,
                                       std::size_t len);
  int invoke_async_raw(Runtime& rt, const SdaRef& ref, int method,
                       const void* arg, std::size_t len);
  /// Validates a framed invoke reply and strips the status prefix.
  static std::vector<std::uint8_t> strip_reply(
      std::vector<std::uint8_t> framed);
  void destroy_instance(Runtime& rt, const SdaRef& ref);
  /// Live instances hosted by the calling process (tests/diagnostics).
  static std::size_t local_instances(Runtime& rt);

 private:
  static void rsr_handler(Runtime& rt, Runtime::RsrContext& ctx,
                          const void* arg, std::size_t len,
                          std::vector<std::uint8_t>& reply);

  Ctor ctor_;
  Dtor dtor_;
  std::vector<RawMethod> methods_;
  int handler_id_ = -1;
};

/// Maps a registered class's handler id back to its SdaBase inside the
/// handler (the handler id is SPMD-identical on every process).
SdaBase* sda_by_handler(int handler_id);

}  // namespace detail

/// Typed front end. T must be default-constructible; methods take a
/// POD-copyable Arg and fill a POD-copyable Out (transported as bytes,
/// valid under the SPMD single-binary assumption).
template <typename T>
class SdaClass {
 public:
  explicit SdaClass(World& world)
      : base_(world, []() -> void* { return new T(); },
              [](void* p) { delete static_cast<T*>(p); }) {}

  /// Registers a method; must be called identically on... (SPMD: this
  /// happens once, before World::run, so symmetry is automatic).
  template <typename Arg, typename Out>
  int method(void (*fn)(Runtime&, T&, const Arg&, Out&)) {
    struct Shim {
      static void call(Runtime& rt, void* state, const void* arg,
                       std::size_t len, std::vector<std::uint8_t>& out) {
        // [fn][Arg] on the wire; Out back as bytes.
        if (len != sizeof(void*) + sizeof(Arg)) {
          throw std::invalid_argument("chant: SDA argument size mismatch");
        }
        void (*f)(Runtime&, T&, const Arg&, Out&) = nullptr;
        std::memcpy(&f, arg, sizeof f);
        Arg a{};
        std::memcpy(&a, static_cast<const std::uint8_t*>(arg) + sizeof(void*),
                    sizeof a);
        Out o{};
        f(rt, *static_cast<T*>(state), a, o);
        out.resize(sizeof o);
        std::memcpy(out.data(), &o, sizeof o);
      }
    };
    fns_.push_back(reinterpret_cast<void*>(fn));
    return base_.add_method(&Shim::call);
  }

  SdaRef create(Runtime& rt, int pe, int process) {
    return base_.create_instance(rt, pe, process);
  }

  template <typename Arg, typename Out>
  void invoke(Runtime& rt, const SdaRef& ref, int method_id, const Arg& arg,
              Out& out) {
    const auto buf = wire_arg(method_id, arg);
    const auto rep =
        base_.invoke_raw(rt, ref, method_id, buf.data(), buf.size());
    if (rep.size() != sizeof(Out)) {
      throw std::runtime_error("chant: SDA reply size mismatch");
    }
    std::memcpy(&out, rep.data(), sizeof out);
  }

  /// Fires an invocation without waiting; retrieve the result with
  /// await() (or rt.call_test to poll readiness first).
  template <typename Arg>
  int invoke_async(Runtime& rt, const SdaRef& ref, int method_id,
                   const Arg& arg) {
    const auto buf = wire_arg(method_id, arg);
    return base_.invoke_async_raw(rt, ref, method_id, buf.data(),
                                  buf.size());
  }

  /// Completes an invoke_async, filling `out`.
  template <typename Out>
  void await(Runtime& rt, int handle, Out& out) {
    const auto rep = detail::SdaBase::strip_reply(rt.call_wait(handle));
    if (rep.size() != sizeof(Out)) {
      throw std::runtime_error("chant: SDA reply size mismatch");
    }
    std::memcpy(&out, rep.data(), sizeof out);
  }

  void destroy(Runtime& rt, const SdaRef& ref) {
    base_.destroy_instance(rt, ref);
  }

 private:
  template <typename Arg>
  std::vector<std::uint8_t> wire_arg(int method_id, const Arg& arg) {
    std::vector<std::uint8_t> buf(sizeof(void*) + sizeof(Arg));
    std::memcpy(buf.data(), &fns_[static_cast<std::size_t>(method_id)],
                sizeof(void*));
    std::memcpy(buf.data() + sizeof(void*), &arg, sizeof arg);
    return buf;
  }

  detail::SdaBase base_;
  std::vector<void*> fns_;  ///< typed fn per method id (SPMD-valid ptr)
};

}  // namespace chant
