/* chant/pthread_chanter.h — the Chant interface of the paper's Appendix A
 * (Figure 14): an extension of the POSIX pthreads interface with global
 * thread identifiers and message passing.
 *
 * A "chanter" is a global thread named by the 3-tuple
 * (processing element, process, local thread id) — paper §3.1(1).
 * All routines operate on the calling simulated process's Chant runtime
 * (established by chant::World::run); they may be called from any chanter
 * thread of that process.
 *
 * Return conventions follow pthreads: 0 on success, an errno value on
 * failure (ESRCH unknown thread, EINVAL bad argument, EDEADLK self-join,
 * ERANGE tag/lid out of range for the current addressing mode).
 */
#ifndef CHANT_PTHREAD_CHANTER_H
#define CHANT_PTHREAD_CHANTER_H

#include <stddef.h>

#ifdef __cplusplus
extern "C" {
#endif

/* Global thread identifier (paper Fig. 14). `thread` is the local thread
 * id within (pe, process); the underlying package's thread object is
 * recovered with pthread_chanter_pthread(). */
typedef struct pthread_chanter {
  int pe;      /* processing element id */
  int process; /* kernel entity (process) id within the pe */
  int thread;  /* local thread id */
} pthread_chanter_t;

/* Pass as `pe` and/or `process` to pthread_chanter_create to create the
 * thread on the caller's own pe/process. */
#define PTHREAD_CHANTER_LOCAL (-1)

/* Wildcard source thread for receives (matches any sender). */
extern const pthread_chanter_t PTHREAD_CHANTER_ANY;

/* Wildcard message type for receives. */
#define PTHREAD_CHANTER_ANYTYPE (-1)

/* Return value of threads that exited due to cancellation. */
#define PTHREAD_CHANTER_CANCELED ((void*)(~(size_t)0))

/* Creation attributes (subset of pthread_attr_t honoured by Chant). Pass
 * NULL for defaults. */
typedef struct pthread_chanter_attr {
  size_t stack_size; /* 0 = default */
  int priority;      /* 0..7, default 3 */
  int detached;      /* nonzero = start detached */
} pthread_chanter_attr_t;

/* -------- thread management (paper Appendix A) -------- */

/* Creates a global thread on the given pe/process (which may be
 * PTHREAD_CHANTER_LOCAL). Remote creation is implemented as a remote
 * service request to the destination's server thread (paper §3.3).
 * NOTE: `start_routine` must be a valid function in the destination
 * process — guaranteed here because every simulated process runs the
 * same (SPMD) binary, as on the Paragon. `arg` is transported by value. */
int pthread_chanter_create(pthread_chanter_t* thread,
                           const pthread_chanter_attr_t* attr,
                           void* (*start_routine)(void*), void* arg, int pe,
                           int process);

/* Blocks the calling thread until the specified global thread exits;
 * *status receives its return value (PTHREAD_CHANTER_CANCELED if it was
 * cancelled). Remote joins go through the server thread. */
int pthread_chanter_join(const pthread_chanter_t* thread, void** status);

/* Bounded join: like pthread_chanter_join but waits at most timeout_ns
 * nanoseconds (relative), then returns ETIMEDOUT. A timed-out local join
 * relinquishes its claim (the thread can be joined again later); a
 * timed-out remote join leaves the target claimed by the abandoned
 * request and it cannot be re-joined. */
int pthread_chanter_join_timed(const pthread_chanter_t* thread, void** status,
                               unsigned long long timeout_ns);

/* Reclaims the thread's storage when it exits (no join possible after). */
int pthread_chanter_detach(const pthread_chanter_t* thread);

/* Terminates the calling thread, publishing `value_ptr` to joiners. */
void pthread_chanter_exit(void* value_ptr);

/* Gives up the processing element to the next ready thread. */
void pthread_chanter_yield(void);

/* Identity of the calling thread (pointer stays valid for its lifetime). */
pthread_chanter_t* pthread_chanter_self(void);

/* Local thread id portion of a global thread id, for use with the
 * underlying thread package's local operations (paper §3.3(1)). */
int pthread_chanter_pthread(const pthread_chanter_t* thread);

/* Processing element / process accessors (co-location tests). */
int pthread_chanter_pe(const pthread_chanter_t* thread);
int pthread_chanter_process(const pthread_chanter_t* thread);

/* 1 if both ids name the same global thread, else 0. */
int pthread_chanter_equal(const pthread_chanter_t* t1,
                          const pthread_chanter_t* t2);

/* Requests (deferred) cancellation of the specified global thread. */
int pthread_chanter_cancel(const pthread_chanter_t* thread);

/* Changes / reads the scheduling priority (0..7) of the specified global
 * thread, remotely if needed (Figure 2's scheduling capability lifted to
 * global threads). */
int pthread_chanter_setprio(const pthread_chanter_t* thread, int priority);
int pthread_chanter_getprio(const pthread_chanter_t* thread, int* priority);

/* -------- point-to-point message passing (paper §3.1) -------- */

/* Sends `count` bytes at `buf` to the specified global thread with
 * message type `type`. Locally blocking: returns when `buf` may be
 * modified (eager buffering / posted-receive fast path underneath). */
int pthread_chanter_send(int type, const char* buf, int count,
                         const pthread_chanter_t* thread);

/* Blocking receive of a message of type `type` from the specified global
 * thread (PTHREAD_CHANTER_ANY / PTHREAD_CHANTER_ANYTYPE wildcards).
 * On success, if `thread` is a wildcard it is updated in place with the
 * actual source. Blocking is thread-level only: the processing element
 * keeps running other ready threads under the configured polling policy. */
int pthread_chanter_recv(int type, char* buf, int count,
                         pthread_chanter_t* thread);

/* Nonblocking receive: posts the receive and returns a handle for
 * pthread_chanter_msgtest / pthread_chanter_msgwait. */
int pthread_chanter_irecv(int* handle, int type, char* buf, int count,
                          pthread_chanter_t* thread);

/* Tests an immediate receive for completion: returns 1 (complete, handle
 * released, *thread updated if wildcard), 0 (pending), or a negated errno
 * on error. */
int pthread_chanter_msgtest(int handle);

/* Waits (thread-blocking, policy-scheduled) for an immediate receive. */
int pthread_chanter_msgwait(int handle);

#ifdef __cplusplus
} /* extern "C" */
#endif

#endif /* CHANT_PTHREAD_CHANTER_H */
