// chant/bufferpool.hpp — slab-recycling buffer pool for runtime traffic.
//
// The RSR plane needs a scratch buffer per in-flight operation: the
// reply landing zone of every async call and the server loop's request
// buffer. Allocating and freeing those per call is exactly the
// marshalling overhead the paper's §3.1 efficiency argument forbids, so
// a Runtime keeps this pool instead: released blocks are recycled with
// their capacity intact, and at steady state an acquire touches the
// heap zero times (the `fresh` stat stays flat — the bench smoke gate
// asserts it).
//
// Single-threaded by design: a Runtime's fibers all run on the owning
// process's OS thread, so acquire/release never race. Do not share a
// pool across runtimes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "chant/hb.hpp"
#include "chant/validate.hpp"

namespace chant {

class BufferPool {
 public:
  struct Stats {
    std::uint64_t acquires = 0;  ///< total acquire() calls
    std::uint64_t fresh = 0;     ///< acquires that had to touch the heap
  };

  /// Returns a buffer with size() == n. Recycles a free block when one
  /// exists (growing it if needed — the grown capacity is then kept for
  /// good), so a steady-state workload converges to zero heap traffic
  /// after the first round of acquires.
  std::vector<std::uint8_t> acquire(std::size_t n) {
    ++stats_.acquires;
    if (free_.empty()) {
      ++stats_.fresh;
      std::vector<std::uint8_t> b(n);
      if (hb::enabled()) hb::pool_acquired(b.data(), b.size());
      return b;
    }
    std::vector<std::uint8_t> b = std::move(free_.back());
    free_.pop_back();
    if (validate::enabled()) validate::pool_unpoison(this, b.data(), b.size());
    if (b.capacity() < n) ++stats_.fresh;  // recycled block had to grow
    b.resize(n);
    // Recycling counts as a claim-write on the block: any access through
    // a pointer kept past release() now races with the new owner.
    if (hb::enabled()) hb::pool_acquired(b.data(), b.size());
    return b;
  }

  /// Hands a buffer back for reuse; its capacity is retained.
  void release(std::vector<std::uint8_t>&& b) {
    if (b.capacity() == 0) {
      // Moved-from or never sized. In a correct caller this arises only
      // from releasing the same buffer twice (the first release moved it
      // out), so the validator treats it as a double release.
      if (validate::enabled()) validate::pool_double_release(this);
      return;
    }
    if (validate::enabled()) validate::pool_poison(this, b.data(), b.size());
    if (hb::enabled()) hb::pool_released(b.data());
    free_.push_back(std::move(b));
  }

  const Stats& stats() const noexcept { return stats_; }
  std::size_t free_blocks() const noexcept { return free_.size(); }

 private:
  std::vector<std::vector<std::uint8_t>> free_;
  Stats stats_;
};

}  // namespace chant
