// chant/world.hpp — bootstrap for a whole simulated Chant machine.
//
// A World owns the nx::Machine and launches one Chant Runtime per
// simulated process. World::run plays the role of loading the same SPMD
// binary onto every Paragon node: the given function runs as the main
// chanter thread (lid 1) of every process, with the server thread
// (lid 0) started alongside it.
#pragma once

#include <atomic>
#include <functional>
#include <vector>

#include "chant/policy.hpp"
#include "chant/runtime.hpp"
#include "nx/machine.hpp"

namespace chant {

class World {
 public:
  struct Config {
    int pes = 2;
    int processes_per_pe = 1;
    nx::NetModel net = nx::NetModel::zero();
    std::size_t eager_threshold = 16 * 1024;
    RuntimeConfig rt;
    /// Test-only nx hooks, forwarded into nx::Machine::Config (see
    /// nx/fault.hpp and include/sim/). Null = production behavior.
    nx::FaultInjector* fault = nullptr;
    std::uint64_t (*clock)(void* ctx) = nullptr;
    void* clock_ctx = nullptr;
    /// Delivery backend selection, forwarded into nx::Machine::Config
    /// (nx/transport.hpp). Default resolves CHANT_TRANSPORT.
    nx::TransportKind transport = nx::TransportKind::Default;
    bool fork_processes = false;       ///< ShmRing only
    std::size_t shm_ring_bytes = 1 << 18;  ///< ShmRing only
  };

  explicit World(const Config& cfg);
  World(const World&) = delete;
  World& operator=(const World&) = delete;

  /// Registers an RSR handler on every process before run(); returned
  /// ids are valid world-wide. (Handlers may also be registered inside
  /// run() via Runtime::register_handler, identically on each process.)
  int register_handler(Runtime::Handler h);

  /// Runs `main_fn` as the main chanter thread of every process; returns
  /// when every process has finished (mains returned, user threads
  /// joined or finished, server threads shut down).
  void run(const std::function<void(Runtime&)>& main_fn);

  nx::Machine& machine() noexcept { return machine_; }
  const Config& config() const noexcept { return cfg_; }
  int total_processes() const noexcept { return machine_.total_processes(); }

  /// Termination protocol (used by the runtime's main-thread wrapper):
  /// a process announces its main returned, then waits for all peers.
  /// The counter lives in the machine's shared scratch so it counts
  /// across forked OS processes exactly as it does across threads.
  void note_main_done() noexcept {
    mains_done_->fetch_add(1, std::memory_order_acq_rel);
  }
  int mains_done() const noexcept {
    return mains_done_->load(std::memory_order_acquire);
  }

 private:
  friend class Runtime;
  Config cfg_;
  nx::Machine machine_;
  std::vector<Runtime::Handler> user_handlers_;
  std::atomic<int>* mains_done_ = nullptr;  ///< in machine shared scratch
};

}  // namespace chant
