// chant/world.hpp — bootstrap for a whole simulated Chant machine.
//
// A World owns the nx::Machine and launches one Chant Runtime per
// simulated process. World::run plays the role of loading the same SPMD
// binary onto every Paragon node: the given function runs as the main
// chanter thread (lid 1) of every process, with the server thread
// (lid 0) started alongside it.
#pragma once

#include <atomic>
#include <functional>
#include <vector>

#include "chant/hb.hpp"
#include "chant/policy.hpp"
#include "chant/runtime.hpp"
#include "nx/machine.hpp"

namespace chant {

class World {
 public:
  struct Config {
    int pes = 2;
    int processes_per_pe = 1;
    nx::NetModel net = nx::NetModel::zero();
    std::size_t eager_threshold = 16 * 1024;
    RuntimeConfig rt;
    /// Test-only nx hooks, forwarded into nx::Machine::Config (see
    /// nx/fault.hpp and include/sim/). Null = production behavior.
    nx::FaultInjector* fault = nullptr;
    std::uint64_t (*clock)(void* ctx) = nullptr;
    void* clock_ctx = nullptr;
    /// DEPRECATED (PR 9): legacy backend selector, superseded by
    /// transport_spec below (kept one release, forwarded verbatim).
    /// chant-lint: allow(legacy-transport-config)
    nx::TransportKind transport = nx::TransportKind::Default;
    /// DEPRECATED (PR 9): see transport_spec.fork.
    /// chant-lint: allow(legacy-transport-config)
    bool fork_processes = false;
    /// DEPRECATED (PR 9): see transport_spec.ring_bytes.
    std::size_t shm_ring_bytes = 1 << 18;
    /// Delivery backend addressing (nx/transport.hpp TransportSpec),
    /// forwarded into nx::Machine::Config. Resolution precedence there:
    /// explicit spec > legacy fields above > CHANT_TRANSPORT > inproc;
    /// a malformed CHANT_TRANSPORT throws at Machine construction.
    nx::TransportSpec transport_spec{};
  };

  explicit World(const Config& cfg);
  World(const World&) = delete;
  World& operator=(const World&) = delete;

  /// Registers an RSR handler on every process before run(); returned
  /// ids are valid world-wide. (Handlers may also be registered inside
  /// run() via Runtime::register_handler, identically on each process.)
  int register_handler(Runtime::Handler h);

  /// Runs `main_fn` as the main chanter thread of every process; returns
  /// when every process has finished (mains returned, user threads
  /// joined or finished, server threads shut down).
  void run(const std::function<void(Runtime&)>& main_fn);

  nx::Machine& machine() noexcept { return machine_; }
  const Config& config() const noexcept { return cfg_; }
  int total_processes() const noexcept { return machine_.total_processes(); }

  /// Termination protocol (used by the runtime's main-thread wrapper):
  /// a process announces its main returned, then waits for all peers.
  /// The counter rides the transport's shared-scratch ops (offset 0 of
  /// the chant-reserved first 16 bytes), so it counts across threads,
  /// forked OS processes, and tcp rank processes alike.
  void note_main_done() noexcept {
    // Scratch-counter traffic orders the publisher against every later
    // observer; model it as one conservative global sync point.
    if (hb::enabled()) hb::global_sync();
    machine_.transport().scratch_add(0, 1);
  }
  int mains_done() const noexcept {
    if (hb::enabled()) hb::global_sync();
    return static_cast<int>(machine_.transport().scratch_load(0));
  }
  /// Peers this OS process lost uncleanly (wire transports; always 0
  /// elsewhere). Counted toward termination so one dead peer cannot
  /// wedge world shutdown.
  int peers_gone() const noexcept {
    return machine_.transport().peers_gone();
  }

 private:
  friend class Runtime;
  Config cfg_;
  nx::Machine machine_;
  std::vector<Runtime::Handler> user_handlers_;
};

}  // namespace chant
