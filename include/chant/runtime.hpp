// chant/runtime.hpp — the per-process Chant runtime.
//
// One Runtime exists per simulated process and ties together the three
// layers of the paper's Figure 4 on top of lwt (threads) and nx
// (communication):
//
//   1. point-to-point message passing between *global threads*
//      (send / recv / irecv / msgtest / msgwait, blocking operations
//      scheduled under one of the three polling policies),
//   2. remote service requests through a dedicated server thread
//      (register_handler / call / post / reply),
//   3. global thread operations (create / join / detach / cancel on any
//      pe, implemented over RSRs when the target is remote).
//
// The Appendix-A C API (pthread_chanter_*) is a thin veneer over this
// class; C++ users can use it directly.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "chant/bufferpool.hpp"
#include "chant/gid.hpp"
#include "chant/policy.hpp"
#include "chant/status.hpp"
#include "chant/tagcodec.hpp"
#include "lwt/lwt.hpp"
#include "nx/endpoint.hpp"

namespace chant {

class World;
class Selector;

/// Completion information for a receive.
struct MsgInfo {
  Gid src{-1, -1, -1};
  int user_tag = 0;
  std::size_t len = 0;
  /// Ok; Truncated when the message was longer than the buffer; or
  /// PeerGone when a wire transport lost the exact source this receive
  /// was posted against (len is 0 — no bytes were delivered).
  Status status{};
};

/// First RSR handler id handed out to user registrations (ids below it
/// are the builtin shutdown/create/join/cancel/detach handlers).
inline constexpr int kFirstUserHandler = 8;

/// Thread creation options (C++ face of pthread_chanter_attr_t).
struct SpawnOptions {
  std::size_t stack_size = 0;  ///< 0 = runtime default
  int priority = lwt::kDefaultPriority;
  bool detached = false;
  const char* name = nullptr;
};

class Runtime {
 public:
  Runtime(World& world, nx::Endpoint& ep);
  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;
  ~Runtime();

  /// The runtime of the calling OS thread (null outside World::run).
  static Runtime* current();

  // ---- identity / plumbing ----
  int pe() const noexcept { return ep_.pe(); }
  int process() const noexcept { return ep_.proc(); }
  Gid self() const;
  World& world() noexcept { return world_; }
  nx::Endpoint& endpoint() noexcept { return ep_; }
  lwt::Scheduler& scheduler() noexcept { return sched_; }
  const RuntimeConfig& config() const noexcept { return cfg_; }
  const TagCodec& codec() const noexcept { return codec_; }

  // ---- global thread management (paper §3.3) ----

  /// Creates a thread on (pe, process); PTHREAD_CHANTER_LOCAL (or the
  /// caller's own coordinates) creates locally, anything else goes as an
  /// RSR to the destination server thread. `entry` must be valid in the
  /// destination process (SPMD binary); `arg` is transported by value.
  Gid create(lwt::EntryFn entry, void* arg, int dst_pe, int dst_process,
             const SpawnOptions& opts = {});

  /// Remote create with a marshalled argument: `len` bytes at `arg` are
  /// copied to the destination, which passes its own copy (freed after
  /// the thread finishes) to `entry`.
  using MarshalledEntry = void (*)(Runtime& rt, const void* arg,
                                   std::size_t len);
  Gid create_marshalled(MarshalledEntry entry, const void* arg,
                        std::size_t len, int dst_pe, int dst_process,
                        const SpawnOptions& opts = {});

  /// Waits for the thread to exit and returns its retval (lwt::kCanceled
  /// if it was cancelled). Sets *err (if non-null) to 0/ESRCH/EDEADLK/EINVAL.
  void* join(const Gid& g, int* err = nullptr);
  /// Timed join: waits until the thread exits or the deadline passes.
  /// Ok — *retval (if non-null) receives the exit value; the thread is
  /// reaped. DeadlineExceeded — a *local* target stays joinable (the
  /// claim is relinquished); a *remote* target stays claimed by the
  /// abandoned server-side join and cannot be joined again. PeerGone —
  /// unknown/detached/already-joined target. Invalid — self-join or a
  /// malformed remote reply.
  [[nodiscard]] Status join(const Gid& g, Deadline deadline, void** retval);
  int detach(const Gid& g);
  int cancel(const Gid& g);
  /// Changes a (possibly remote) thread's scheduling priority — the
  /// Figure-2 "set scheduling info" capability lifted to global threads.
  int set_priority(const Gid& g, int priority);
  /// Reads a thread's priority into *priority; returns 0/ESRCH.
  int get_priority(const Gid& g, int* priority);
  void yield();
  [[noreturn]] void exit_thread(void* retval);

  /// The underlying lwt thread of a *local* global thread (paper's
  /// pthread_chanter_pthread); null if unknown or remote.
  lwt::Tcb* local_tcb(const Gid& g) const;

  // ---- point-to-point (paper §3.1) ----

  /// Locally-blocking send of `len` bytes to global thread `dst` with
  /// message type `user_tag` (0..kMaxUserTag). Returns when `buf` is
  /// reusable; waits, if needed, under the configured polling policy.
  void send(int user_tag, const void* buf, std::size_t len, const Gid& dst);

  /// Blocking receive (thread blocks; the pe keeps running other ready
  /// threads). `src` may be kAnyThread, `user_tag` may be kAnyUserTag.
  MsgInfo recv(int user_tag, void* buf, std::size_t cap, const Gid& src);

  /// Deadline-bounded receive. Ok/Truncated — message landed, `out` (if
  /// non-null) filled. DeadlineExceeded — the posted receive has been
  /// withdrawn (nothing leaks; a message arriving later waits for the
  /// next receive). Completion wins the race with the deadline: a
  /// message delivered in the cancellation window is harvested, not
  /// dropped. The wait parks on the lwt timer wheel — no polling.
  [[nodiscard]] Status recv(int user_tag, void* buf, std::size_t cap,
                            const Gid& src, Deadline deadline,
                            MsgInfo* out = nullptr);

  /// Nonblocking receive; returns a handle for msgtest/msgwait.
  int irecv(int user_tag, void* buf, std::size_t cap, const Gid& src);
  /// Tests a receive; on completion fills `out` and releases the handle.
  bool msgtest(int handle, MsgInfo* out = nullptr);
  /// Blocks (policy-scheduled) until the receive completes; releases.
  MsgInfo msgwait(int handle);
  /// Deadline-bounded msgwait. Ok/Truncated — completed, handle
  /// released. DeadlineExceeded — the handle stays live (the receive
  /// remains posted): keep waiting, msgtest, or cancel_irecv it.
  [[nodiscard]] Status msgwait(int handle, Deadline deadline,
                               MsgInfo* out = nullptr);
  /// Withdraws a not-yet-completed nonblocking receive and releases the
  /// handle (the buffer will not be written afterwards). Ok — the
  /// receive was withdrawn before completion. AlreadyCompleted — the
  /// receive had completed (handle released either way); idempotent: a
  /// repeated cancel of a retired handle is AlreadyCompleted, not an
  /// error. Invalid — the handle never existed. The implicit bool
  /// conversion preserves the historical "withdrawn?" return.
  [[nodiscard]] Status cancel_irecv(int handle);

  // ---- remote service requests (paper §3.2) ----

  struct RsrContext {
    Gid from{-1, -1, -1};   ///< requesting thread
    bool needs_reply = false;
    /// A handler that must block (e.g. remote join) sets this and hands
    /// the context to a helper thread, which later calls reply().
    bool deferred = false;
    /// Reply sequence number pairing the reply with its request.
    int reply_seq = 0;
  };
  using Handler = void (*)(Runtime& rt, RsrContext& ctx, const void* arg,
                           std::size_t len, std::vector<std::uint8_t>& reply);

  /// Registers a handler and returns its id. Must be performed in the
  /// same order on every process (SPMD); ids are stable across processes.
  int register_handler(Handler h);

  /// Synchronous RSR: sends the request to (pe, process)'s server thread
  /// and blocks (policy-scheduled) for the reply.
  std::vector<std::uint8_t> call(int dst_pe, int dst_process, int handler,
                                 const void* arg, std::size_t len);
  /// Asynchronous RSR: ships the request and returns a handle; any
  /// number may be outstanding per thread (replies pair by sequence
  /// number even when deferred handlers answer out of order).
  int call_async(int dst_pe, int dst_process, int handler, const void* arg,
                 std::size_t len);
  /// Gather forms (the -v suffix mirrors nx::isendv): the request
  /// payload is the concatenation of the descriptor's fragments, sent
  /// zero-copy over the caller's buffers (no marshal vector). At most
  /// nx::kMaxIov - 1 fragments (the RSR envelope occupies one slot).
  int call_asyncv(int dst_pe, int dst_process, int handler,
                  const nx::IoVec* iov, std::size_t iovcnt);
  std::vector<std::uint8_t> callv(int dst_pe, int dst_process, int handler,
                                  const nx::IoVec* iov, std::size_t iovcnt);
  /// Tests an async call. Ok — reply moved into *reply_out (if non-null)
  /// and the handle released; Pending — not yet complete. The implicit
  /// bool conversion preserves the historical complete/pending return.
  [[nodiscard]] Status call_test(
      int handle, std::vector<std::uint8_t>* reply_out = nullptr);
  /// Blocks (policy-scheduled) for an async call's reply; releases.
  std::vector<std::uint8_t> call_wait(int handle);
  /// Deadline-bounded call_wait. Ok — reply in *reply_out (if non-null),
  /// handle released. DeadlineExceeded — the call record is reclaimed
  /// (reply receives withdrawn, pooled buffer released, handle retired;
  /// nothing leaks) and a reply that still arrives is absorbed by the
  /// stale-reply drain before its sequence number is reused.
  [[nodiscard]] Status call_wait(
      int handle, Deadline deadline,
      std::vector<std::uint8_t>* reply_out = nullptr);
  /// Deadline-bounded synchronous RSR, optionally with retries. The
  /// policy defaults to the handler's registered RetryPolicy (see
  /// set_retry_policy), else no retries. Resends carry the same reply
  /// sequence number with an incremented attempt counter; the server's
  /// dedup cache executes the handler once and replays the recorded
  /// reply to duplicates. Ok or DeadlineExceeded (slot reclaimed).
  [[nodiscard]] Status call(int dst_pe, int dst_process, int handler,
                            const void* arg, std::size_t len,
                            Deadline deadline,
                            std::vector<std::uint8_t>* reply_out,
                            const RetryPolicy* retry = nullptr);
  [[nodiscard]] Status callv(int dst_pe, int dst_process, int handler,
                             const nx::IoVec* iov, std::size_t iovcnt,
                             Deadline deadline,
                             std::vector<std::uint8_t>* reply_out,
                             const RetryPolicy* retry = nullptr);
  /// Registers the default RetryPolicy used by deadline calls to
  /// `handler` when no explicit policy is passed. Handlers with retries
  /// must be idempotent OR rely on the server dedup window (DESIGN.md
  /// §8.3); deferred handlers get duplicate *suppression* but no reply
  /// replay.
  void set_retry_policy(int handler, const RetryPolicy& policy);
  /// One-way RSR: no reply is generated or awaited.
  void post(int dst_pe, int dst_process, int handler, const void* arg,
            std::size_t len);
  /// Completes a deferred RSR (callable from any thread of the process
  /// that received the request).
  void reply(const RsrContext& ctx, const void* data, std::size_t len);
  /// Gather form: the reply payload is the concatenation of the
  /// fragments ({status header, body} without a marshal vector). At
  /// most nx::kMaxIov - 1 fragments.
  void replyv(const RsrContext& ctx, const nx::IoVec* iov,
              std::size_t iovcnt);

  // ---- statistics ----
  lwt::SchedulerStats sched_stats() const { return sched_.stats(); }
  nx::Counters& net_counters() { return ep_.counters(); }
  /// The runtime's slab-recycling pool for RSR scratch buffers; exposed
  /// for its stats (steady-state RSR must show zero fresh allocations).
  const BufferPool& buffer_pool() const noexcept { return pool_; }

  /// Deadline/retry event counters (DESIGN.md §8).
  struct RsrStats {
    std::uint64_t retries_sent = 0;      ///< duplicate requests shipped
    std::uint64_t deadline_timeouts = 0; ///< timed waits that expired
    std::uint64_t dup_drops = 0;    ///< server: duplicate while in progress
    std::uint64_t dup_replays = 0;  ///< server: cached reply resent
    std::uint64_t stale_drained = 0;  ///< abandoned replies consumed
    std::uint64_t stale_skipped = 0;  ///< seq allocations skipped as dirty
  };
  const RsrStats& rsr_stats() const noexcept { return rsr_stats_; }

  /// Live (not yet completed/abandoned) async-call records and posted
  /// irecv handles — the leak gauges the deadline tests assert on.
  std::size_t outstanding_calls() const noexcept {
    return calls_.size() - free_calls_.size();
  }
  std::size_t outstanding_recvs() const noexcept {
    return reqs_.size() - free_reqs_.size();
  }

  /// Entry point used by World::run; runs `user_main` as the process's
  /// main chanter thread (lid 1), with the server thread (lid 0) started
  /// alongside, and participates in the cross-process termination
  /// protocol before shutting the server down.
  void run_process(const std::function<void(Runtime&)>& user_main);

  // ---- internal plumbing (public for the trampoline functions; not
  // part of the supported API) ----
  struct ThreadRec {
    lwt::Tcb* tcb = nullptr;
    Gid gid{0, 0, 0};
    bool finished = false;
    bool detached = false;
    bool join_committed = false;
  };
  ThreadRec& register_thread(lwt::Tcb* tcb, int lid);
  void on_thread_exit(int lid);
  Gid spawn_wrapped(lwt::EntryFn entry, void* arg, const SpawnOptions& opts,
                    int fixed_lid = -1);
  void server_loop();
  void request_server_stop() noexcept { server_stop_ = true; }
  bool is_local(const Gid& g) const;
  void* join_for_rsr(int lid, int* err);
  int cancel_local(int lid);
  int detach_local(int lid);
  int set_priority_local(int lid, int priority);
  int get_priority_local(int lid, int* priority);

 private:
  /// In-flight blocking wait bookkeeping (one per waiting thread).
  struct WaitCtx {
    nx::Endpoint* ep = nullptr;
    nx::Handle nxh = nx::kInvalidHandle;
    nx::MsgHeader hdr{};
    bool done = false;
  };

  /// User-visible nonblocking receive request.
  struct ChantReq {
    WaitCtx wait{};
    MsgInfo info{};
    std::uint32_t gen = 1;
    bool active = false;
    // Selector back-pointer: non-null while registered, so every retire
    // path (msgtest harvest, cancel_irecv, msgwait) deregisters the
    // waiter entry atomically with the handle's retirement.
    void* sel = nullptr;
    std::uint64_t sel_token = 0;
  };

  friend class World;
  friend class Selector;  // sel_* plumbing below, defined in selector.cpp

  // thread registry (guarded by reg_mu_: with a multi-worker scheduler,
  // spawn / exit / lookup run on whichever worker hosts the fiber)
  int alloc_lid();
  void free_lid(int lid);
  ThreadRec* find(int lid);
  void* join_local(int lid, int* err);

  // blocking machinery
  static bool wait_test(void* ctx);
  void block_until(WaitCtx& w);
  /// Deadline-bounded policy wait. True = completed; false = the
  /// (absolute, scheduler-clock) deadline fired first. The wait parks on
  /// the lwt timer wheel (TP checks the clock per re-test instead).
  bool block_until(WaitCtx& w, std::uint64_t deadline_ns);
  static std::size_t wq_group_poll(void* rt, lwt::Scheduler& sched);
  /// Absolute scheduler-clock deadline for `d` (kNoDeadline if infinite).
  std::uint64_t resolve_deadline(const Deadline& d) const;

  // Selector plumbing (selector.cpp). A Selector registers completion
  // callbacks on the nx requests behind chant handles; these helpers
  // translate handles, arm/disarm the waiters and keep the back-
  // pointers consistent with every retire path.
  enum class SelAttach { Armed, Ready, Invalid };
  struct AsyncCall;  // defined below with the RSR internals
  ChantReq* sel_checked_req(int handle);
  AsyncCall* sel_checked_call(int handle);
  SelAttach sel_attach_recv(int handle, nx::Endpoint::WaiterFn fn, void* sel,
                            std::uint64_t token);
  void sel_detach_recv(int handle, void* sel);
  bool sel_recv_ready(int handle);
  SelAttach sel_attach_call(int handle, nx::Endpoint::WaiterFn fn, void* sel,
                            std::uint64_t token);
  void sel_detach_call(int handle, void* sel);
  /// Re-checks a registered call after a part completed: Ready — every
  /// reply part landed; Armed — waiter re-armed on the next pending
  /// part (the announced tail); Invalid — stale handle.
  SelAttach sel_call_progress(int handle, nx::Endpoint::WaiterFn fn,
                              void* sel, std::uint64_t token);
  /// Retire-path notifications: clear the nx waiter (if still armed)
  /// and drop the selector registration, atomically with respect to a
  /// racing completion (queued fires are purged; in-flight fires are
  /// filtered by the registration's generation).
  void sel_notify_req_retired(ChantReq& r);
  void sel_notify_call_retired(AsyncCall& c);
  /// Policy-dispatched predicate park (Selector::wait): like
  /// block_until but for a self-contained predicate that needs no
  /// wq_waits_/testany registration.
  bool block_on_predicate(const lwt::PollRequest& req,
                          std::uint64_t deadline_ns);

  // p2p internals (the `internal` flag selects the reserved tag space so
  // runtime traffic can never match a wildcard user receive)
  void send_from(int src_lid, int user_tag, const void* buf, std::size_t len,
                 const Gid& dst, bool internal);
  void send_from(int src_lid, int user_tag, const nx::IoVec* iov,
                 std::size_t iovcnt, const Gid& dst, bool internal);
  nx::Handle post_recv(int user_tag, void* buf, std::size_t cap,
                       const Gid& src, bool internal);
  MsgInfo recv_blocking(int user_tag, void* buf, std::size_t cap,
                        const Gid& src, bool internal);
  MsgInfo decode(const nx::MsgHeader& h) const;
  int current_lid() const;

  // RSR internals
  struct AsyncCall {
    WaitCtx wait{};       ///< the pre-posted inline reply receive
    WaitCtx tail_wait{};  ///< the tail receive, posted once announced
    std::vector<std::uint8_t> rbuf;      ///< pooled inline landing zone
    std::vector<std::uint8_t> tail_buf;  ///< tail landing zone (moved out)
    Gid server{-1, -1, -1};
    int seq = 0;
    std::uint32_t nonce = 0;  ///< per-call id for server-side dedup
    std::uint32_t idx = 0;
    std::uint32_t gen = 1;
    bool active = false;
    bool tail_posted = false;
    // Selector back-pointer (see ChantReq): finish_call/abandon_call
    // deregister through it.
    void* sel = nullptr;
    std::uint64_t sel_token = 0;
  };
  void install_builtin_handlers();
  AsyncCall& checked_call(int handle);
  /// Once the inline reply has landed: if its header announces a tail
  /// message, post the tail receive (exactly once). Returns true when
  /// every part of the reply has landed.
  bool reply_parts_done(AsyncCall& c);
  void abandon_call(AsyncCall& c);
  std::vector<std::uint8_t> finish_call(AsyncCall& c);
  /// call_asyncv with the retry envelope fields; the public entry point
  /// passes retryable = false.
  int call_asyncv_ex(int dst_pe, int dst_process, int handler,
                     const nx::IoVec* iov, std::size_t iovcnt,
                     bool retryable);
  /// (Re)ships the request envelope + payload fragments for `c`.
  void send_rsr(const AsyncCall& c, int handler, const nx::IoVec* iov,
                std::size_t iovcnt, int attempt, bool retryable);
  /// Waits for every reply part with a deadline; Ok / DeadlineExceeded.
  /// Does NOT finish or abandon the call — callers decide.
  Status wait_call_until(AsyncCall& c, std::uint64_t deadline_ns);
  /// Marks c.seq dirty: a reply (or `extra` duplicates of it) may still
  /// arrive with no posted receive. Drained before the seq is reused.
  void note_stale_reply(const AsyncCall& c);
  /// Allocates the next reply sequence number, draining or skipping
  /// sequence numbers whose previous user abandoned an in-flight reply.
  int alloc_reply_seq();
  /// Consumes every arrived unexpected message matching `pat`; true if
  /// at least one was drained.
  bool drain_stale(const TagCodec::Pattern& pat);
  /// Remote-join / timed-join plumbing.
  Status join_local_until(int lid, std::uint64_t deadline_ns, void** retval);

  /// Server-side duplicate suppression for retryable requests, keyed by
  /// (requester gid, reply_seq), bounded FIFO window.
  struct DedupEntry {
    std::uint32_t nonce = 0;  ///< the call that created this entry
    bool done = false;
    std::vector<std::uint8_t> reply;  ///< recorded bytes (done only)
  };
  static std::uint64_t dedup_key(const Gid& from, int seq) noexcept {
    // Disjoint bit ranges — pe[46..63], process[28..45], thread[12..27],
    // seq[0..11] — so no two callers can alias until pe/process exceed
    // 2^18 or thread exceeds 2^16 (far past any configured world size).
    return ((static_cast<std::uint64_t>(static_cast<std::uint32_t>(from.pe)) &
             0x3FFFFu)
            << 46) |
           ((static_cast<std::uint64_t>(
                 static_cast<std::uint32_t>(from.process)) &
             0x3FFFFu)
            << 28) |
           ((static_cast<std::uint64_t>(
                 static_cast<std::uint32_t>(from.thread)) &
             0xFFFFu)
            << 12) |
           (static_cast<std::uint64_t>(seq) & 0xFFFu);
  }

  World& world_;
  nx::Endpoint& ep_;
  RuntimeConfig cfg_;
  TagCodec codec_;
  lwt::Scheduler sched_;

  /// Guards threads_/free_lids_/next_lid_. An OS mutex, not an lwt
  /// primitive: registry ops never park, and the lwt locks would recurse
  /// into the scheduler under validation.
  mutable std::mutex reg_mu_;
  std::unordered_map<int, ThreadRec> threads_;
  std::vector<int> free_lids_;
  int next_lid_ = kFirstUserLid;

  std::deque<ChantReq> reqs_;
  std::vector<std::uint32_t> free_reqs_;

  std::vector<Handler> handlers_;
  std::vector<WaitCtx*> wq_waits_;  ///< live waits for the testany hook
  std::deque<AsyncCall> calls_;     ///< deque: parked WaitCtx stay pinned
  std::vector<std::uint32_t> free_calls_;
  BufferPool pool_;  ///< recycles RSR scratch buffers (single-threaded)
  int next_reply_seq_ = 0;
  std::uint32_t next_call_nonce_ = 0;  ///< wire::Rsr::nonce allocator
  std::atomic<bool> server_stop_{false};
  lwt::Tcb* server_tcb_ = nullptr;

  // deadline / retry layer (DESIGN.md §8)
  std::unordered_map<int, RetryPolicy> retry_policies_;
  RsrStats rsr_stats_;
  /// seq → forget-at time: abandoned calls whose reply may still arrive.
  std::unordered_map<int, std::uint64_t> stale_replies_;
  std::unordered_map<std::uint64_t, DedupEntry> dedup_;
  std::deque<std::uint64_t> dedup_fifo_;  ///< eviction order
  static constexpr std::size_t kDedupWindow = 128;
  /// How long an abandoned reply seq stays dirty before it is presumed
  /// dropped (scheduler-clock ns; generous against sim delays).
  static constexpr std::uint64_t kStaleReplyTtl = 100'000'000;
};

}  // namespace chant
