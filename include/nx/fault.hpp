// nx/fault.hpp — message-level fault injection hook.
//
// A FaultInjector lets a test harness perturb the modelled interconnect
// one message at a time: extra delay (which reorders traffic *across*
// sources — per-source FIFO is a guarantee the layer keeps even under
// faults), duplication, and drop. The hook sits at the deliver-at layer
// in Endpoint::accept_send, so every injected behavior flows through the
// same visibility/epoch machinery real messages use and stays
// reproducible from the injector's seed. Production machines configure
// no injector and pay nothing.
#pragma once

#include <cstdint>

namespace nx {

struct MsgHeader;

/// What the injector wants done to one message. Drop wins over the other
/// fields. Duplicates are eager-buffered copies queued after the
/// original (they never carry rendezvous state). Extra delay is added to
/// the net model's wire delay before the per-source monotonic clamp.
struct FaultDecision {
  bool drop = false;
  std::uint32_t duplicates = 0;
  std::uint64_t extra_delay_ns = 0;
};

class FaultInjector {
 public:
  virtual ~FaultInjector() = default;

  /// Consulted once per send, on the sender's OS thread, while the
  /// destination endpoint's matching lock is held — implementations must
  /// not call back into the nx layer.
  virtual FaultDecision on_send(const MsgHeader& h) = 0;
};

}  // namespace nx
