// nx/machine.hpp — the simulated multicomputer.
//
// A Machine owns a grid of PEs × processes-per-PE endpoints and hosts
// one simulated process per grid cell through its Transport (nx/
// transport.hpp): OS threads on the in-proc backend, optionally forked
// OS processes on the shmring backend. Processes share *nothing* except
// the message layer: user code receives only its own Endpoint&, so any
// cross-process data flow must be a message — the property that keeps
// this simulation faithful to a distributed-memory machine.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "nx/endpoint.hpp"
#include "nx/netmodel.hpp"
#include "nx/transport.hpp"

namespace nx {

class FaultInjector;

class Machine {
 public:
  struct Config {
    int pes = 2;
    int processes_per_pe = 1;
    NetModel net = NetModel::zero();
    /// Sends with payloads <= this many bytes that find no posted receive
    /// are buffered eagerly (sender completes immediately, one extra
    /// copy); larger payloads rendezvous. NX behaved the same way.
    std::size_t eager_threshold = 16 * 1024;
    /// Test-only hooks (see nx/fault.hpp and the sim subsystem). The
    /// fault injector is consulted once per send; the clock override
    /// replaces the real-time clock behind deliver-at gating (virtual
    /// time — must be monotonic and must advance, or delayed messages
    /// never become visible). Null = production behavior and cost.
    FaultInjector* fault = nullptr;
    std::uint64_t (*clock)(void* ctx) = nullptr;
    void* clock_ctx = nullptr;
    /// Delivery backend (nx/transport.hpp). Default resolves the
    /// CHANT_TRANSPORT environment variable at construction.
    TransportKind transport = TransportKind::Default;
    /// ShmRing only: host each simulated process as a *forked OS
    /// process* instead of a thread. The machine (endpoints, rings,
    /// scratch) must be fully constructed before run() forks.
    bool fork_processes = false;
    /// ShmRing only: data bytes per direction ring (rounded up to a
    /// power of two, min 4 KiB). Messages larger than a ring chunk are
    /// fragmented and reassembled by the transport.
    std::size_t shm_ring_bytes = 1 << 18;
  };

  explicit Machine(const Config& cfg);
  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;
  ~Machine();

  int pes() const noexcept { return cfg_.pes; }
  int processes_per_pe() const noexcept { return cfg_.processes_per_pe; }
  int total_processes() const noexcept {
    return cfg_.pes * cfg_.processes_per_pe;
  }
  /// config().transport is resolved (never Default) after construction.
  const Config& config() const noexcept { return cfg_; }

  Endpoint& endpoint(int pe, int proc);
  const Endpoint& endpoint(int pe, int proc) const;

  /// Runs `process_main(endpoint)` once per simulated process — each on
  /// its own OS thread, or its own forked OS process when the transport
  /// is configured for it; returns when all have finished. If any
  /// process fails, the first failure is rethrown after all finish.
  void run(const std::function<void(Endpoint&)>& process_main);

  /// OS-level barrier across all processes (callable from inside run()).
  /// Blocks the calling OS thread — use only in setup/teardown phases.
  void os_barrier();

  /// The delivery backend. Endpoints route every send through it; tests
  /// and benches use it for introspection (transport().name()).
  Transport& transport() noexcept { return *transport_; }
  const Transport& transport() const noexcept { return *transport_; }

  /// Per-machine scratch visible to every process on every backend
  /// (nx::kSharedScratchBytes, zeroed at construction; the same mapping
  /// in fork mode). First 16 bytes reserved for the chant layer.
  void* shared_scratch() noexcept { return transport_->shared_scratch(); }

  /// Flat process index (pe-major) used internally for per-source tables.
  int flat_index(int pe, int proc) const noexcept {
    return pe * cfg_.processes_per_pe + proc;
  }

 private:
  Config cfg_;
  std::unique_ptr<Transport> transport_;  // before endpoints_: they point in
  std::vector<std::unique_ptr<Endpoint>> endpoints_;
};

}  // namespace nx
