// nx/machine.hpp — the simulated multicomputer.
//
// A Machine owns a grid of PEs × processes-per-PE endpoints and hosts
// one simulated process per grid cell through its Transport (nx/
// transport.hpp): OS threads on the in-proc backend, optionally forked
// OS processes on the shmring backend. Processes share *nothing* except
// the message layer: user code receives only its own Endpoint&, so any
// cross-process data flow must be a message — the property that keeps
// this simulation faithful to a distributed-memory machine.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "nx/endpoint.hpp"
#include "nx/netmodel.hpp"
#include "nx/transport.hpp"

namespace nx {

class FaultInjector;

class Machine {
 public:
  struct Config {
    int pes = 2;
    int processes_per_pe = 1;
    NetModel net = NetModel::zero();
    /// Sends with payloads <= this many bytes that find no posted receive
    /// are buffered eagerly (sender completes immediately, one extra
    /// copy); larger payloads rendezvous. NX behaved the same way.
    std::size_t eager_threshold = 16 * 1024;
    /// Test-only hooks (see nx/fault.hpp and the sim subsystem). The
    /// fault injector is consulted once per send; the clock override
    /// replaces the real-time clock behind deliver-at gating (virtual
    /// time — must be monotonic and must advance, or delayed messages
    /// never become visible). Null = production behavior and cost.
    FaultInjector* fault = nullptr;
    std::uint64_t (*clock)(void* ctx) = nullptr;
    void* clock_ctx = nullptr;
    /// DEPRECATED (PR 9): legacy backend selector, superseded by
    /// transport_spec below. Kept one release as a thin shim: a
    /// non-Default value (with fork_processes / shm_ring_bytes) is
    /// converted to an equivalent TransportSpec at construction.
    /// chant-lint: allow(legacy-transport-config)
    TransportKind transport = TransportKind::Default;
    /// DEPRECATED (PR 9): see transport_spec.fork.
    /// chant-lint: allow(legacy-transport-config)
    bool fork_processes = false;
    /// DEPRECATED (PR 9): see transport_spec.ring_bytes.
    std::size_t shm_ring_bytes = 1 << 18;
    /// Delivery backend addressing (nx/transport.hpp). Resolution
    /// precedence at construction: an explicit spec (kind != Default)
    /// wins; else a non-Default legacy `transport` field is converted;
    /// else CHANT_TRANSPORT is parsed with the full TransportSpec
    /// grammar — a malformed or unknown value throws
    /// std::invalid_argument naming the offending string; else inproc.
    TransportSpec transport_spec{};
  };

  explicit Machine(const Config& cfg);
  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;
  ~Machine();

  int pes() const noexcept { return cfg_.pes; }
  int processes_per_pe() const noexcept { return cfg_.processes_per_pe; }
  int total_processes() const noexcept {
    return cfg_.pes * cfg_.processes_per_pe;
  }
  /// config().transport_spec is resolved (kind never Default) after
  /// construction, and the legacy transport/fork_processes fields are
  /// back-filled from it so existing introspection keeps working.
  const Config& config() const noexcept { return cfg_; }

  Endpoint& endpoint(int pe, int proc);
  const Endpoint& endpoint(int pe, int proc) const;

  /// Runs `process_main(endpoint)` once per simulated process — each on
  /// its own OS thread, or its own forked OS process when the transport
  /// is configured for it; returns when all have finished. If any
  /// process fails, the first failure is rethrown after all finish.
  void run(const std::function<void(Endpoint&)>& process_main);

  /// OS-level barrier across all processes (callable from inside run()).
  /// Blocks the calling OS thread — use only in setup/teardown phases.
  void os_barrier();

  /// The delivery backend. Endpoints route every send through it; tests
  /// and benches use it for introspection (transport().name()).
  Transport& transport() noexcept { return *transport_; }
  const Transport& transport() const noexcept { return *transport_; }

  /// Per-machine scratch visible to every process on every backend
  /// (nx::kSharedScratchBytes, zeroed at construction; the same mapping
  /// in fork mode). First 16 bytes reserved for the chant layer.
  void* shared_scratch() noexcept { return transport_->shared_scratch(); }

  /// Flat process index (pe-major) used internally for per-source tables.
  int flat_index(int pe, int proc) const noexcept {
    return pe * cfg_.processes_per_pe + proc;
  }

 private:
  Config cfg_;
  std::unique_ptr<Transport> transport_;  // before endpoints_: they point in
  std::vector<std::unique_ptr<Endpoint>> endpoints_;
};

}  // namespace nx
