// nx/machine.hpp — the simulated multicomputer.
//
// A Machine owns a grid of PEs × processes-per-PE endpoints and runs one
// OS thread per simulated process. Processes share *nothing* except the
// message layer: user code receives only its own Endpoint&, so any
// cross-process data flow must be a message — the property that keeps
// this in-process simulation faithful to a distributed-memory machine.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "nx/endpoint.hpp"
#include "nx/netmodel.hpp"

namespace nx {

class FaultInjector;

class Machine {
 public:
  struct Config {
    int pes = 2;
    int processes_per_pe = 1;
    NetModel net = NetModel::zero();
    /// Sends with payloads <= this many bytes that find no posted receive
    /// are buffered eagerly (sender completes immediately, one extra
    /// copy); larger payloads rendezvous. NX behaved the same way.
    std::size_t eager_threshold = 16 * 1024;
    /// Test-only hooks (see nx/fault.hpp and the sim subsystem). The
    /// fault injector is consulted once per send; the clock override
    /// replaces the real-time clock behind deliver-at gating (virtual
    /// time — must be monotonic and must advance, or delayed messages
    /// never become visible). Null = production behavior and cost.
    FaultInjector* fault = nullptr;
    std::uint64_t (*clock)(void* ctx) = nullptr;
    void* clock_ctx = nullptr;
  };

  explicit Machine(const Config& cfg);
  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;
  ~Machine();

  int pes() const noexcept { return cfg_.pes; }
  int processes_per_pe() const noexcept { return cfg_.processes_per_pe; }
  int total_processes() const noexcept {
    return cfg_.pes * cfg_.processes_per_pe;
  }
  const Config& config() const noexcept { return cfg_; }

  Endpoint& endpoint(int pe, int proc);
  const Endpoint& endpoint(int pe, int proc) const;

  /// Runs `process_main(endpoint)` once per simulated process, each on
  /// its own OS thread; returns when all have returned. If any process
  /// throws, the first exception is rethrown after all threads join.
  void run(const std::function<void(Endpoint&)>& process_main);

  /// OS-level barrier across all processes (callable from inside run()).
  /// Blocks the calling OS thread — use only in setup/teardown phases.
  void os_barrier();

  /// Flat process index (pe-major) used internally for per-source tables.
  int flat_index(int pe, int proc) const noexcept {
    return pe * cfg_.processes_per_pe + proc;
  }

 private:
  Config cfg_;
  std::vector<std::unique_ptr<Endpoint>> endpoints_;
  // simple reusable barrier (std::barrier needs the count at construction
  // but run() may be called repeatedly; keep our own)
  std::mutex bar_mu_;
  std::condition_variable bar_cv_;
  std::size_t bar_arrived_ = 0;
  std::uint64_t bar_gen_ = 0;
};

}  // namespace nx
