// nx/endpoint.hpp — NX-style nonblocking message passing for one process.
//
// An Endpoint is one simulated process's window onto the interconnect,
// playing the role of the Intel NX library (isend/irecv/msgtest/msgwait,
// int handles) in the paper's Figure 1. Design points that matter for
// the reproduction:
//
//  * Matching follows the posted-receive / unexpected-message discipline
//    of real NX/MPI: a send first looks for a matching *posted* receive
//    on the destination endpoint and, on a hit, copies the payload once,
//    directly into the user's buffer — the paper's §3.1 "register the
//    receive with the operating system before the message arrives"
//    zero-intermediate-copy path. Otherwise the message is held as an
//    unexpected descriptor: payloads at or below the eager threshold are
//    buffered (locally-blocking send semantics, one extra copy, as NX
//    does); larger payloads use rendezvous (the sender's buffer is
//    referenced and the sender completes when the receiver copies).
//  * Matching is on (source pe, source process, tag) with a tag *mask*,
//    which is what lets the Chant layer overload the tag field with
//    thread identifiers exactly as §3.1(2) prescribes.
//  * Per-source FIFO ordering is guaranteed (NX channels are ordered):
//    deliver-at timestamps are made monotonic per source, and a send
//    skips the posted-match fast path while earlier messages from the
//    same source are still queued.
//  * msgtest / msgtestany are the *only* progress engines — there is no
//    background thread and no interrupt, matching the paper's explicit
//    design constraint (§3.2: MPI has no interrupt-driven delivery).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <vector>

#include "nx/counters.hpp"
#include "nx/netmodel.hpp"

namespace nx {

class Machine;

/// Wildcards for receive matching.
inline constexpr int kAnyPe = -1;
inline constexpr int kAnyProc = -1;
/// Tag masks: receive matches iff (msg.tag & mask) == (want.tag & mask).
inline constexpr int kTagExact = ~0;
inline constexpr int kTagAny = 0;

/// Request handle (NX-style int). Negative values are invalid.
using Handle = std::int32_t;
inline constexpr Handle kInvalidHandle = -1;

/// Message envelope as seen by the receiver. `channel` plays the role of
/// an MPI communicator: an extra header field a layered runtime may use
/// to address entities *within* a process (paper §3.1(2)) without
/// stealing tag bits. Native NX had no such field — the Chant tag-
/// overloading mode ignores it, and the HeaderField ablation uses it.
struct MsgHeader {
  int src_pe = 0;
  int src_proc = 0;
  int tag = 0;
  int channel = 0;
  std::size_t len = 0;    ///< payload bytes the sender sent
  bool truncated = false; ///< receive buffer was smaller than len
};

class Endpoint {
 public:
  Endpoint(Machine& machine, int pe, int proc);
  Endpoint(const Endpoint&) = delete;
  Endpoint& operator=(const Endpoint&) = delete;
  ~Endpoint();

  int pe() const noexcept { return pe_; }
  int proc() const noexcept { return proc_; }
  Machine& machine() noexcept { return machine_; }

  // ---- sends ----

  /// Nonblocking send. The returned handle completes when `buf` is
  /// reusable (immediately for posted-match and eager transfers; on
  /// receiver copy for rendezvous). Call msgtest/msgwait to complete and
  /// release the handle.
  Handle isend(int dst_pe, int dst_proc, int tag, const void* buf,
               std::size_t len, int channel = 0);

  /// Locally-blocking send (NX csend): returns when `buf` is reusable.
  void csend(int dst_pe, int dst_proc, int tag, const void* buf,
             std::size_t len, int channel = 0);

  // ---- receives ----

  /// Nonblocking receive for a message matching (src_pe, src_proc,
  /// tag & tag_mask); wildcards above. Completes when the payload is in
  /// `buf`. The handle must be completed via msgtest/msgwait/msgtestany.
  Handle irecv(int src_pe, int src_proc, int tag, int tag_mask, void* buf,
               std::size_t cap, int channel = 0, int channel_mask = 0);

  /// Blocking receive (NX crecv): spins on msgtest. This blocks the whole
  /// OS thread — it is the *process-based* baseline of the paper's §4.1;
  /// thread-friendly blocking lives in the Chant layer.
  MsgHeader crecv(int src_pe, int src_proc, int tag, int tag_mask, void* buf,
                  std::size_t cap);

  // ---- completion ----

  /// Tests a handle. On completion fills `out` (for receives) and
  /// releases the handle; the handle must not be used again. Counted in
  /// Counters::msgtest_calls / msgtest_failed.
  bool msgtest(Handle h, MsgHeader* out = nullptr);

  /// Spins until `h` completes (whole-OS-thread wait; see crecv note).
  MsgHeader msgwait(Handle h);

  /// Tests `n` handles with one call (MPI_TESTANY analogue; the §4.2
  /// ablation). Returns the index of a completed handle — which is
  /// released, with `out` filled — or -1 if none completed. Counted once
  /// in Counters::testany_calls regardless of n.
  int msgtestany(const Handle* hs, std::size_t n, MsgHeader* out = nullptr);

  /// Nonblocking probe: reports (without receiving) whether an arrived
  /// unexpected message matches. Posted receives are not considered.
  bool iprobe(int src_pe, int src_proc, int tag, int tag_mask,
              MsgHeader* out = nullptr);

  /// True if `h` has completed; does not release and is not counted.
  /// (NX msgdone flavour; useful for assertions.)
  bool msgdone(Handle h) const;

  /// Cancels and releases a not-yet-completed receive handle. Returns
  /// false if the handle already completed (it is then released too).
  bool cancel_recv(Handle h);

  Counters& counters() noexcept { return counters_; }

  /// Number of queued unexpected messages (tests / introspection).
  std::size_t unexpected_count() const;
  /// Number of outstanding posted receives.
  std::size_t posted_count() const;

 private:
  struct Request {
    enum class Kind : std::uint8_t { None, Recv, Send };
    Kind kind = Kind::None;
    std::uint32_t gen = 1;
    std::atomic<bool> complete{false};
    // receive-side state
    void* buf = nullptr;
    std::size_t cap = 0;
    int want_pe = kAnyPe;
    int want_proc = kAnyProc;
    int want_tag = 0;
    int tag_mask = kTagAny;
    int want_channel = 0;
    int channel_mask = 0;
    MsgHeader hdr{};
  };

  struct UnexMsg {
    MsgHeader hdr{};
    std::uint64_t deliver_at = 0;
    // Fresh entries reference the sender's buffer (src_buf) so a drain
    // that runs before the send returns delivers with zero intermediate
    // copies. An entry that stays queued is either eager-buffered
    // (payload owned here, sender released) or held for rendezvous
    // (sender_flag raised when a receive finally takes it).
    std::unique_ptr<std::uint8_t[]> payload;
    const void* src_buf = nullptr;
    std::atomic<bool>* sender_flag = nullptr;
  };

  static constexpr std::uint32_t kSlotBits = 20;
  static constexpr std::uint32_t kSlotMask = (1u << kSlotBits) - 1;
  static constexpr std::size_t kChunk = 256;  ///< requests per slab chunk

  Request* slot_ptr(std::uint32_t slot) const;
  /// Current time for deliver-at gating (0 when the net model is zero,
  /// avoiding clock reads on the fast path).
  std::uint64_t net_now() const;
  Request* checked(Handle h) const;
  Handle alloc_request(Request::Kind kind);
  void release_slot(Handle h);
  bool recv_matches(const Request& r, const MsgHeader& h) const;
  /// Copies one unexpected entry into a posted receive and completes
  /// both sides. Caller holds mu_.
  void deliver_into(Request& r, const UnexMsg& m);
  /// Pairs visible unexpected entries with posted receives under the
  /// MPI/NX matching rules. Caller holds mu_.
  void drain(std::uint64_t now);

  /// Entry point used by the sending endpoint (runs on the *sender's* OS
  /// thread). Returns true if the payload was consumed synchronously
  /// (posted match or eager); false means rendezvous was set up and
  /// `sender_flag` will be raised by the receiver.
  bool accept_send(const MsgHeader& h, const void* buf,
                   std::atomic<bool>* sender_flag);
  friend class Machine;  // Machine routes accept_send between endpoints

  Machine& machine_;
  const int pe_;
  const int proc_;
  Counters counters_;

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Request[]>> slab_;
  std::vector<std::uint32_t> free_slots_;
  std::uint32_t slots_used_ = 0;
  std::list<UnexMsg> unexpected_;  ///< arrival order; stable iterators
  std::vector<Handle> posted_;     ///< FIFO of posted receive handles
  std::vector<std::uint64_t> last_deliver_;  ///< per-source monotonic clock
  std::vector<std::uint8_t> blocked_scratch_;  ///< drain() per-source flags
};

}  // namespace nx
