// nx/endpoint.hpp — NX-style nonblocking message passing for one process.
//
// An Endpoint is one simulated process's window onto the interconnect,
// playing the role of the Intel NX library (isend/irecv/msgtest/msgwait,
// int handles) in the paper's Figure 1. Design points that matter for
// the reproduction:
//
//  * Matching follows the posted-receive / unexpected-message discipline
//    of real NX/MPI: a send first looks for a matching *posted* receive
//    on the destination endpoint and, on a hit, copies the payload once,
//    directly into the user's buffer — the paper's §3.1 "register the
//    receive with the operating system before the message arrives"
//    zero-intermediate-copy path. Otherwise the message is held as an
//    unexpected descriptor: payloads at or below the eager threshold are
//    buffered (locally-blocking send semantics, one extra copy, as NX
//    does); larger payloads use rendezvous (the sender's buffer is
//    referenced and the sender completes when the receiver copies).
//  * Matching is on (source pe, source process, tag) with a tag *mask*,
//    which is what lets the Chant layer overload the tag field with
//    thread identifiers exactly as §3.1(2) prescribes.
//  * Per-source FIFO ordering is guaranteed (NX channels are ordered):
//    deliver-at timestamps are made monotonic per source, and a send
//    skips the posted-match fast path while earlier messages from the
//    same source are still queued.
//  * msgtest / msgtestany are the *only* progress engines — there is no
//    background thread and no interrupt, matching the paper's explicit
//    design constraint (§3.2: MPI has no interrupt-driven delivery).
//
// Scalability (the matching engine, second generation):
//
//  * Posted receives that are fully specified — exact source pe and
//    process, exact tag (mask == kTagExact) — live in a hash index keyed
//    by (source, tag), so an arriving message resolves its receive in
//    O(1) instead of scanning the posted list. Receives with any
//    wildcard go to a sequence-numbered fallback list; post-order
//    sequence numbers are compared across the two structures so the
//    earliest-posted matching receive still wins, exactly as before.
//  * Unexpected messages are queued per source process (deliver-at
//    timestamps are monotonic per source, so each queue is a visible
//    prefix plus an in-flight suffix), and matching is event-driven: a
//    send offers its message to the posted index the moment it becomes
//    visible, and a newly posted receive scans the visible queue
//    entries. Between events there is nothing for a test call to do —
//    except reveal messages whose modelled deliver-at time has passed.
//  * That exception is gated by an *arrival epoch*: an atomic pair of
//    sequence numbers (messages that entered the in-flight state vs. the
//    value at the last drain) plus the earliest outstanding deliver-at
//    timestamp. A failed msgtest/msgtestany consults the gate with two
//    atomic loads and, in the common case (nothing newly visible — all
//    of it, under a zero latency model), skips the endpoint lock and the
//    drain entirely (Counters::drain_skipped).
//  * The request slab has its own lock (slab_mu_), separate from the
//    matching state (mu_), so handle allocation/release never contends
//    with senders; Request::gen and slots_used_ are atomics with
//    acquire/release pairing so the lock-free checked() fast path is
//    race-free (gen is odd while a slot is live, even while free).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "nx/counters.hpp"
#include "nx/netmodel.hpp"

namespace nx {

class Machine;
class Transport;

/// Wildcards for receive matching.
inline constexpr int kAnyPe = -1;
inline constexpr int kAnyProc = -1;
/// Tag masks: receive matches iff (msg.tag & mask) == (want.tag & mask).
inline constexpr int kTagExact = ~0;
inline constexpr int kTagAny = 0;

/// Request handle (NX-style int). Negative values are invalid.
using Handle = std::int32_t;
inline constexpr Handle kInvalidHandle = -1;

/// One fragment of a scatter-gather send descriptor (readv/writev
/// iovec shape). A contiguous send is a single-fragment descriptor.
struct IoVec {
  const void* base = nullptr;
  std::size_t len = 0;
};

/// Most fragments a gather send may carry. Sized for the layered
/// runtime's deepest framing ({rsr envelope, protocol header, payload})
/// plus one spare; descriptors are embedded in unexpected-message
/// entries, so the cap keeps rendezvous state allocation-free.
inline constexpr std::size_t kMaxIov = 4;

/// Total payload bytes described by a descriptor.
inline std::size_t iov_total(const IoVec* iov, std::size_t iovcnt) noexcept {
  std::size_t n = 0;
  for (std::size_t i = 0; i < iovcnt; ++i) n += iov[i].len;
  return n;
}

/// Message envelope as seen by the receiver. `channel` plays the role of
/// an MPI communicator: an extra header field a layered runtime may use
/// to address entities *within* a process (paper §3.1(2)) without
/// stealing tag bits. Native NX had no such field — the Chant tag-
/// overloading mode ignores it, and the HeaderField ablation uses it.
struct MsgHeader {
  int src_pe = 0;
  int src_proc = 0;
  int tag = 0;
  int channel = 0;
  std::size_t len = 0;    ///< payload bytes the sender sent
  bool truncated = false; ///< receive buffer was smaller than len
  /// The matched source died before satisfying this receive (wire
  /// backends only): no payload was delivered, len is 0, and the
  /// receive completed so its waiter does not hang forever.
  bool peer_gone = false;
  /// Happens-before clock token (nx/hb.hpp), minted at submit time when
  /// the checker is installed; 0 = untracked. In-proc only: the wire
  /// backends serialize headers field-by-field and do not carry it (the
  /// checker is a single-address-space tool).
  std::uint64_t hb_clk = 0;
};

class Endpoint {
 public:
  Endpoint(Machine& machine, int pe, int proc);
  Endpoint(const Endpoint&) = delete;
  Endpoint& operator=(const Endpoint&) = delete;
  ~Endpoint();

  int pe() const noexcept { return pe_; }
  int proc() const noexcept { return proc_; }
  Machine& machine() noexcept { return machine_; }

  // ---- sends ----

  /// Nonblocking send. The returned handle completes when `buf` is
  /// reusable (immediately for posted-match and eager transfers; on
  /// receiver copy for rendezvous). Call msgtest/msgwait to complete and
  /// release the handle.
  Handle isend(int dst_pe, int dst_proc, int tag, const void* buf,
               std::size_t len, int channel = 0);

  /// Locally-blocking send (NX csend): returns when `buf` is reusable.
  void csend(int dst_pe, int dst_proc, int tag, const void* buf,
             std::size_t len, int channel = 0);

  /// Scatter-gather nonblocking send: the message is the concatenation
  /// of the descriptor's fragments, assembled directly into the
  /// receiver's buffer (one copy total — exactly what a contiguous send
  /// pays). Every fragment must stay valid until the handle completes;
  /// the descriptor array itself may be stack-allocated (it is copied
  /// into the request). At most kMaxIov fragments.
  Handle isendv(int dst_pe, int dst_proc, int tag, const IoVec* iov,
                std::size_t iovcnt, int channel = 0);

  /// Locally-blocking gather send: returns when every fragment is
  /// reusable.
  void csendv(int dst_pe, int dst_proc, int tag, const IoVec* iov,
              std::size_t iovcnt, int channel = 0);

  // ---- receives ----

  /// Nonblocking receive for a message matching (src_pe, src_proc,
  /// tag & tag_mask); wildcards above. Completes when the payload is in
  /// `buf`. The handle must be completed via msgtest/msgwait/msgtestany.
  Handle irecv(int src_pe, int src_proc, int tag, int tag_mask, void* buf,
               std::size_t cap, int channel = 0, int channel_mask = 0);

  /// Blocking receive (NX crecv): spins on msgtest. This blocks the whole
  /// OS thread — it is the *process-based* baseline of the paper's §4.1;
  /// thread-friendly blocking lives in the Chant layer.
  MsgHeader crecv(int src_pe, int src_proc, int tag, int tag_mask, void* buf,
                  std::size_t cap);

  // ---- completion ----

  /// Tests a handle. On completion fills `out` (for receives) and
  /// releases the handle; the handle must not be used again. Counted in
  /// Counters::msgtest_calls / msgtest_failed.
  bool msgtest(Handle h, MsgHeader* out = nullptr);

  /// Spins until `h` completes (whole-OS-thread wait; see crecv note).
  MsgHeader msgwait(Handle h);

  /// Deadline-bounded msgwait: spins until `h` completes or the wall
  /// clock (the Machine's clock override when one is installed — e.g.
  /// the sim VirtualClock — else the steady clock) reaches the absolute
  /// `deadline_ns`. True = completed (`out` filled, handle released);
  /// false = deadline passed (the handle stays live: callers may keep
  /// testing it, wait again, or cancel_recv it). Thread-friendly
  /// deadline waits live in the Chant layer, which parks on the lwt
  /// timer wheel instead of spinning here.
  bool msgwait_until(Handle h, std::uint64_t deadline_ns,
                     MsgHeader* out = nullptr);

  /// Tests `n` handles with one call (MPI_TESTANY analogue; the §4.2
  /// ablation). Returns the index of a completed handle — which is
  /// released, with `out` filled — or -1 if none completed. Counted once
  /// in Counters::testany_calls regardless of n.
  int msgtestany(const Handle* hs, std::size_t n, MsgHeader* out = nullptr);

  /// Nonblocking probe: reports (without receiving) whether an arrived
  /// unexpected message matches. Posted receives are not considered.
  bool iprobe(int src_pe, int src_proc, int tag, int tag_mask,
              MsgHeader* out = nullptr);

  /// True if `h` has completed; does not release and is not counted.
  /// (NX msgdone flavour; useful for assertions.)
  bool msgdone(Handle h) const;

  /// Cancels and releases a not-yet-completed receive handle. Returns
  /// false if the handle already completed (it is then released too —
  /// and `out`, if non-null, receives the completed header, so a caller
  /// losing the cancel-vs-delivery race can still harvest the message
  /// it asked to abandon instead of silently dropping it).
  bool cancel_recv(Handle h, MsgHeader* out = nullptr);

  // ---- registered-waiter notification hooks (Selector support) ----

  /// Completion callback signature: `fn(ctx, token)` fires once, after
  /// the receive identified at registration time completes. Callbacks
  /// run with *no* endpoint lock held (they may take their own locks and
  /// call back into the scheduler), on whichever thread drove the
  /// completing progress call — possibly a remote sender's OS thread.
  using WaiterFn = void (*)(void* ctx, std::uint64_t token);

  /// Arms a one-shot completion callback on a live receive handle.
  /// Returns false — without arming — if the handle already completed
  /// (the caller observes readiness directly instead). At most one
  /// waiter per handle; re-arming replaces the previous registration.
  bool set_recv_waiter(Handle h, WaiterFn fn, void* ctx, std::uint64_t token);

  /// Disarms a previously armed waiter, including any fire already
  /// queued but not yet invoked. After this returns, `fn` will not be
  /// called for this registration unless the fire is concurrently
  /// *in flight* on another thread — callers needing a hard guarantee
  /// (e.g. a destructor) follow up with waiter_quiesce().
  void clear_recv_waiter(Handle h);

  /// Blocks (spin+yield) until every queued or in-flight waiter fire on
  /// this endpoint has finished. Destructor-grade barrier only.
  void waiter_quiesce();

  /// Epoch-gated progress probe for parked waiters: reveals in-flight
  /// messages whose deliver-at has passed (same drain msgtest performs)
  /// but invokes no callbacks, so it is safe to call where locks are
  /// already held above the endpoint — e.g. from a scheduler poll
  /// predicate under wait_mu_. Returns true if waiter fires are queued;
  /// the caller must then call flush_waiter_fires() from an unlocked
  /// context to deliver them. Two atomic loads when there is no news.
  bool poll_progress();

  /// Invokes and drains queued waiter fires. Must be called with no
  /// endpoint lock held (and not from inside a waiter callback). Public
  /// because a fiber woken by a poll_progress() hit flushes here.
  void flush_waiter_fires();

  Counters& counters() noexcept { return counters_; }

  /// Number of queued unexpected messages (tests / introspection).
  std::size_t unexpected_count() const;
  /// Number of outstanding posted receives.
  std::size_t posted_count() const;

  /// Wire-backend peer-loss surfacing: records (src_pe, src_proc) as
  /// dead and completes every posted receive that names that exact
  /// source and has no already-queued message able to satisfy it, with
  /// hdr.peer_gone set. Later exact-source irecvs against a dead source
  /// complete the same way once the queued backlog cannot match.
  /// Queue-only (inject discipline): waiter fires are queued, never
  /// flushed — callable from pump contexts under the scheduler's locks.
  void mark_peer_gone(int src_pe, int src_proc);

 private:
  struct Request {
    enum class Kind : std::uint8_t { None, Recv, Send };
    /// Written under slab_mu_, read lock-free on the test fast paths.
    std::atomic<Kind> kind{Kind::None};
    /// Generation counter: odd while the slot is live, even while it is
    /// free. Bumped (release) on both allocation and release so the
    /// lock-free checked() can validate a handle with a single acquire
    /// load — no torn kind/gen pair, no lock.
    std::atomic<std::uint32_t> gen{0};
    std::atomic<bool> complete{false};
    // receive-side state (written before the handle is published, read
    // by matching under mu_)
    void* buf = nullptr;
    std::size_t cap = 0;
    int want_pe = kAnyPe;
    int want_proc = kAnyProc;
    int want_tag = 0;
    int tag_mask = kTagAny;
    int want_channel = 0;
    int channel_mask = 0;
    MsgHeader hdr{};
    // Registered-waiter hook (Selector support). Guarded by mu_; cleared
    // the instant the fire is queued, so each registration is one-shot.
    WaiterFn waiter_fn = nullptr;
    void* waiter_ctx = nullptr;
    std::uint64_t waiter_token = 0;
  };

  struct UnexMsg {
    MsgHeader hdr{};
    std::uint64_t deliver_at = 0;
    std::uint64_t arrival_seq = 0;  ///< global arrival order across sources
    // Fresh messages are offered to the posted index straight from the
    // sender's fragments (zero intermediate copies). An entry that stays
    // queued is either eager-buffered (payload owned here, sender
    // released) or held for rendezvous (the sender's descriptor is
    // retained in frags and sender_flag raised when a receive finally
    // takes it).
    std::unique_ptr<std::uint8_t[]> payload;
    IoVec frags[kMaxIov]{};
    std::uint32_t nfrags = 0;
    std::atomic<bool>* sender_flag = nullptr;
  };

  /// One source's unexpected FIFO. Deliver-at timestamps are monotonic
  /// per source, so the queue is always a *visible* prefix followed by
  /// an *in-flight* suffix. The first `offered` entries have been
  /// offered to (and refused by) every posted receive that existed when
  /// they became visible — the standing invariant that lets the epoch
  /// gate skip re-scans: a queued offered entry can only ever match a
  /// receive posted later, and that receive scans the queues itself.
  struct SrcQueue {
    std::deque<UnexMsg> q;
    std::size_t offered = 0;
  };

  /// Index entry for one posted receive; seq is the global post order,
  /// compared across the bucket and wildcard structures so the
  /// earliest-posted matching receive wins.
  struct PostedEntry {
    Handle h = kInvalidHandle;
    std::uint64_t seq = 0;
  };

  static constexpr std::uint32_t kSlotBits = 19;
  static constexpr std::uint32_t kSlotMask = (1u << kSlotBits) - 1;
  static constexpr std::uint32_t kGenMask = (1u << (31 - kSlotBits)) - 1;
  static constexpr std::size_t kChunk = 256;  ///< requests per slab chunk
  static constexpr std::size_t kMaxChunks =
      (static_cast<std::size_t>(kSlotMask) + 1) / kChunk;
  static constexpr std::uint64_t kNeverVisible = ~std::uint64_t{0};

  Request* slot_ptr(std::uint32_t slot) const;
  /// Current time for deliver-at gating (0 when the net model is zero,
  /// avoiding clock reads on the fast path).
  std::uint64_t net_now() const;
  Request* checked(Handle h) const;
  Handle alloc_request(Request::Kind kind);
  void release_slot(Handle h);
  bool recv_matches(const Request& r, const MsgHeader& h) const;

  /// True if the receive can live in the (source, tag) hash index:
  /// exact source pe + process and an exact tag. Channel constraints are
  /// re-checked inside the bucket walk, so they do not disqualify.
  static bool indexable(const Request& r) {
    return r.want_pe != kAnyPe && r.want_proc != kAnyProc &&
           r.tag_mask == kTagExact;
  }
  std::uint64_t bucket_key(int src_flat, int tag) const {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src_flat))
            << 32) |
           static_cast<std::uint32_t>(tag);
  }

  void insert_posted(Handle h, const Request& r);
  /// Removes `h` from whichever index structure holds it. Returns true
  /// if it was found (i.e. the receive was still pending).
  bool remove_posted(Handle h, const Request& r);
  /// Finds, removes and returns the earliest-posted receive matching
  /// `h`, or nullptr. O(1) bucket probe plus a wildcard-list walk that
  /// early-exits on post order. Caller holds mu_.
  Request* take_posted_match(const MsgHeader& h);

  /// Copies one unexpected entry into a posted receive and completes
  /// both sides. Caller holds mu_.
  void deliver_into(Request& r, const UnexMsg& m);

  /// One armed-waiter fire, queued by deliver_into under mu_ and invoked
  /// by flush_waiter_fires() after mu_ is released. Callbacks take locks
  /// of their own (selector mutex, then the scheduler's wait_mu_), and
  /// wq_scan already holds wait_mu_ while testing entries through
  /// msgtest — firing under mu_ would close an ABBA cycle. The deferred
  /// flush keeps the invariant: no callback ever runs under mu_.
  struct WaiterFire {
    WaiterFn fn = nullptr;
    void* ctx = nullptr;
    std::uint64_t token = 0;
  };

  /// True if a progress pass could reveal in-flight messages: either a
  /// message entered the in-flight state since the last drain (the
  /// arrival epoch advanced) or the earliest outstanding deliver-at has
  /// been reached. Lock-free; the fast-path gate for failed tests.
  bool progress_pending(std::uint64_t now) const {
    if (arrival_seq_.load(std::memory_order_acquire) !=
        drained_seq_.load(std::memory_order_acquire)) {
      return true;
    }
    const std::uint64_t at = next_deliver_at_.load(std::memory_order_acquire);
    return at != kNeverVisible && now >= at;
  }

  /// Offers newly visible (deliver-at reached) entries to the posted
  /// index in global arrival order, then re-arms the epoch gate. The
  /// exact equivalent of the first-generation linear drain() — but it
  /// only ever touches entries past each source's offered prefix, so it
  /// is O(newly visible), not O(queue). Caller holds mu_.
  void drain(std::uint64_t now);

  /// Finds the earliest-arrived visible unexpected entry matching `r`,
  /// delivers it and erases it from its queue. Returns true on a hit.
  /// Caller holds mu_ and has already drained.
  bool take_unexpected_match(Request& r);

  /// Greedy claim simulation over dead source `src`'s queued backlog
  /// (visible *and* in-flight entries), mirroring exactly the engine's
  /// future delivery order: posted receives in post order each claim
  /// their earliest matching unclaimed entry. Posted receives that
  /// claim nothing are appended to `doomed` — the backlog can never
  /// satisfy them. If `extra` is non-null it is simulated as the
  /// latest post; the return value reports whether it found a claim.
  /// Caller holds mu_.
  bool simulate_claims(int src, std::vector<Handle>* doomed,
                       const Request* extra) const;

  /// Completes `r` with hdr.peer_gone (no payload), queueing any armed
  /// waiter fire. Caller holds mu_ and has removed `r` from the posted
  /// index (or never inserted it).
  void complete_peer_gone(Request& r, int src_pe, int src_proc);

  /// Entry point used by the delivering transport (for the in-proc
  /// backend this runs on the *sender's* OS thread). The message is
  /// described by a gather descriptor (a contiguous send is one
  /// fragment). Returns true if the payload was consumed synchronously
  /// (posted match or eager); false means rendezvous was set up and
  /// `sender_flag` will be raised by the receiver.
  bool accept_send(const MsgHeader& h, const IoVec* iov, std::size_t iovcnt,
                   std::atomic<bool>* sender_flag);
  /// accept_send's matching logic; caller holds mu_. Split out so the
  /// public wrapper can flush waiter fires after releasing the lock.
  /// force_eager buffers any unmatched payload regardless of the eager
  /// threshold — a wire transport's bytes are already consumed on the
  /// sender's side, so the rendezvous branch must be unreachable.
  bool accept_send_locked(const MsgHeader& h, const IoVec* iov,
                          std::size_t iovcnt, std::atomic<bool>* sender_flag,
                          bool force_eager = false);
  /// Shared implementation behind isend/isendv.
  Handle start_send(int dst_pe, int dst_proc, int tag, const IoVec* iov,
                    std::size_t iovcnt, int channel);
  void start_csend(int dst_pe, int dst_proc, int tag, const IoVec* iov,
                   std::size_t iovcnt, int channel);
  friend class Machine;
  friend class Transport;  // the delivery seam drives accept_send/_locked

  Machine& machine_;
  const int pe_;
  const int proc_;
  /// Cached from machine_.transport() at construction. pump_active_ is
  /// false for the in-proc backend, keeping every test fast path free of
  /// even the virtual pump call (bit-identical sim replay, unchanged
  /// counters); wire backends pump on each progress entry point.
  Transport* transport_ = nullptr;
  bool pump_active_ = false;
  Counters counters_;

  // ---- request slab (guarded by slab_mu_; gen/slots_used_ are atomics
  // so checked() never locks) ----
  mutable std::mutex slab_mu_;
  std::vector<std::unique_ptr<Request[]>> slab_;  ///< fixed-size outer dir
  std::vector<std::uint32_t> free_slots_;
  std::atomic<std::uint32_t> slots_used_{0};

  // ---- matching state (guarded by mu_) ----
  mutable std::mutex mu_;
  std::unordered_map<std::uint64_t, std::deque<PostedEntry>> buckets_;
  std::deque<PostedEntry> wildcard_;  ///< post-order fallback list
  std::uint64_t next_post_seq_ = 0;
  std::size_t posted_total_ = 0;
  std::vector<SrcQueue> unex_;  ///< per-source unexpected FIFOs
  std::size_t unex_total_ = 0;
  std::uint64_t next_arrival_seq_ = 0;
  std::vector<std::uint64_t> last_deliver_;  ///< per-source monotonic clock
  std::vector<char> dead_src_;  ///< per-source peer-gone flags (wire)
  bool any_dead_src_ = false;

  // ---- epoch gate (written under mu_, read lock-free) ----
  std::atomic<std::uint64_t> arrival_seq_{0};  ///< in-flight arrivals seen
  std::atomic<std::uint64_t> drained_seq_{0};  ///< arrival_seq_ at last drain
  std::atomic<std::uint64_t> next_deliver_at_{kNeverVisible};

  // ---- deferred waiter fires (queue under mu_; invoked without it) ----
  std::vector<WaiterFire> pending_fires_;      ///< guarded by mu_
  std::atomic<std::size_t> fires_queued_{0};   ///< size mirror (lock-free gate)
  std::atomic<std::size_t> fires_inflight_{0}; ///< batches being invoked
};

}  // namespace nx
