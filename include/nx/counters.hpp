// nx/counters.hpp — per-endpoint event counters.
//
// The paper's Tables 3–5 report *counts* (total msgtest calls, failed
// tests) alongside times; counts are hardware-independent, so they are
// the directly comparable quantity in this reproduction. Counters are
// atomics because senders increment some of them from their own OS
// thread while the owning process reads them.
#pragma once

#include <atomic>
#include <cstdint>

namespace nx {

struct Counters {
  std::atomic<std::uint64_t> sends{0};
  std::atomic<std::uint64_t> recvs_posted{0};
  std::atomic<std::uint64_t> delivered{0};
  std::atomic<std::uint64_t> bytes_sent{0};
  std::atomic<std::uint64_t> msgtest_calls{0};
  std::atomic<std::uint64_t> msgtest_failed{0};
  std::atomic<std::uint64_t> testany_calls{0};
  std::atomic<std::uint64_t> posted_match{0};     ///< zero-copy fast path
  std::atomic<std::uint64_t> unexpected_eager{0}; ///< buffered (1 extra copy)
  std::atomic<std::uint64_t> unexpected_rndv{0};  ///< rendezvous (no copy)

  void reset() noexcept {
    sends = 0;
    recvs_posted = 0;
    delivered = 0;
    bytes_sent = 0;
    msgtest_calls = 0;
    msgtest_failed = 0;
    testany_calls = 0;
    posted_match = 0;
    unexpected_eager = 0;
    unexpected_rndv = 0;
  }
};

}  // namespace nx
