// nx/counters.hpp — per-endpoint event counters.
//
// The paper's Tables 3–5 report *counts* (total msgtest calls, failed
// tests) alongside times; counts are hardware-independent, so they are
// the directly comparable quantity in this reproduction. Counters are
// atomics because senders increment some of them from their own OS
// thread while the owning process reads them.
#pragma once

#include <atomic>
#include <cstdint>

namespace nx {

struct Counters {
  std::atomic<std::uint64_t> sends{0};
  std::atomic<std::uint64_t> recvs_posted{0};
  std::atomic<std::uint64_t> delivered{0};
  std::atomic<std::uint64_t> bytes_sent{0};
  std::atomic<std::uint64_t> msgtest_calls{0};
  std::atomic<std::uint64_t> msgtest_failed{0};
  std::atomic<std::uint64_t> testany_calls{0};
  std::atomic<std::uint64_t> posted_match{0};     ///< zero-copy fast path
  std::atomic<std::uint64_t> unexpected_eager{0}; ///< buffered (1 extra copy)
  std::atomic<std::uint64_t> unexpected_rndv{0};  ///< rendezvous (no copy)
  // Descriptor-path observability (the zero-copy invariant, testable):
  // every byte staged in an *intermediate* buffer — eager buffering of
  // unexpected messages, injected duplicates — and every temporary heap
  // allocation on the message path. The one copy into the posted user
  // buffer is the copy a contiguous transfer would make anyway and is
  // deliberately NOT counted: a pre-posted receive must show both
  // counters unchanged across a transfer.
  std::atomic<std::uint64_t> gather_sends{0};     ///< isendv/csendv calls
  std::atomic<std::uint64_t> bytes_copied{0};     ///< bytes staged en route
  std::atomic<std::uint64_t> temp_allocs{0};      ///< staging buffer allocs
  // Matching-engine introspection (the perf counters behind
  // bench_matching_scale): how often the epoch gate let a failed test
  // skip the lock+drain, how often a send resolved its receive through
  // the (src,proc,tag) hash bucket, and how often it had to walk the
  // wildcard fallback list.
  std::atomic<std::uint64_t> drain_skipped{0};    ///< epoch-gated fast fails
  std::atomic<std::uint64_t> bucket_hits{0};      ///< O(1) indexed matches
  std::atomic<std::uint64_t> wildcard_scans{0};   ///< fallback list walks
  // Fault injection (nx/fault.hpp): messages the injector ate or cloned.
  std::atomic<std::uint64_t> dropped{0};
  std::atomic<std::uint64_t> duplicated{0};

  void reset() noexcept {
    sends = 0;
    recvs_posted = 0;
    delivered = 0;
    bytes_sent = 0;
    msgtest_calls = 0;
    msgtest_failed = 0;
    testany_calls = 0;
    posted_match = 0;
    unexpected_eager = 0;
    unexpected_rndv = 0;
    gather_sends = 0;
    bytes_copied = 0;
    temp_allocs = 0;
    drain_skipped = 0;
    bucket_hits = 0;
    wildcard_scans = 0;
    dropped = 0;
    duplicated = 0;
  }
};

}  // namespace nx
