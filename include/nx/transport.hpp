// nx/transport.hpp — the delivery seam under the matching engine.
//
// A Transport owns *fragment movement* between processes: how the bytes
// of a send travel from the sender's descriptor to the destination
// endpoint's matching engine, how processes are hosted (threads vs.
// forked OS processes), and how a process waits for inbound traffic.
// Everything above the seam is backend-independent and must behave
// identically on every transport:
//
//   * the matching engine (posted/unexpected, per-source FIFO,
//     truncation status) — nx/endpoint.{hpp,cpp};
//   * the zero-copy descriptor path (a posted receive is filled straight
//     from the sender's fragments or the transport's inbound buffer —
//     one copy total either way);
//   * the registered-waiter hooks (Selector support) and their lock
//     order (fires queue under the endpoint's mu_, flush only from
//     unlocked context — a transport pump must never flush);
//   * FaultyNet injection and NetModel deliver-at timing, which are
//     applied in Endpoint::accept_send_locked at the instant a message
//     enters the matching engine, whatever carried it there.
//
// Three backends ship (see DESIGN.md §12/§13 for the full contract):
//
//   InProcTransport  — the original simulated multicomputer: submit is a
//                      direct synchronous call into the destination
//                      endpoint on the sender's OS thread, processes are
//                      std::threads, the barrier is a condition
//                      variable. Default; sim/ScheduleController replay
//                      is bit-identical to the pre-seam engine.
//   ShmRingTransport — cross-process: per-direction SPSC byte rings in
//                      one shared-memory segment, futex doorbells, a
//                      sense-reversing shm barrier, and (optionally)
//                      one *forked OS process* per simulated process.
//   TcpTransport     — cross-machine: a sessionful full-mesh of
//                      connected nonblocking TCP streams speaking the
//                      same RecHdr framing as shmring, epoll instead of
//                      the futex doorbell, peer loss surfaced as
//                      PeerGone on in-flight traffic.
//
// Backends are addressed through a TransportSpec — a parsed form of the
// CHANT_TRANSPORT grammar — carried by Machine::Config::transport_spec.
// Backend headers live in src/nx/ and are internal — include only this
// header outside src/nx/ (chant-lint rule transport-internals).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "nx/endpoint.hpp"

namespace nx {

class Machine;

/// Backend discriminator. Default means "unset": a Machine resolves it
/// through TransportSpec precedence (explicit spec > legacy config
/// fields > CHANT_TRANSPORT > inproc).
enum class TransportKind { Default, InProc, ShmRing, Tcp };

const char* to_string(TransportKind k) noexcept;

/// A fully addressed transport selection: backend kind plus every
/// backend option, round-trippable through the CHANT_TRANSPORT grammar:
///
///   inproc
///   shmring[?fork=1&ring_kb=K]                        ("shm" accepted)
///   tcp://host:base_port[?rank=N&nprocs=M&fork=1&chunk_kb=K
///                         &sndbuf=B&listen_fd=FD&connect_ms=T]
///
/// tcp hosting modes:
///   * no rank, no fork — every machine process is hosted as a thread of
///     this OS process, talking over real loopback sockets (base_port 0
///     binds ephemeral ports; actual ports are exchanged in-process).
///   * fork=1 — the full mesh is connected in the parent, then one OS
///     process is forked per machine process (each child keeps only its
///     rank's sockets). base_port 0 works: connections predate fork.
///   * rank=N&nprocs=M — this OS process hosts *only* flat rank N of an
///     M-process machine; peers are separate OS processes (possibly on
///     other hosts) running the same program with their own rank. Rank r
///     listens on base_port+r; a pair's higher rank connects to the
///     lower rank's port. nprocs must equal the machine's process count.
struct TransportSpec {
  TransportKind kind = TransportKind::Default;
  /// shmring/tcp: host each machine process in a forked OS process.
  bool fork = false;
  /// shmring: per-direction ring capacity (grammar key ring_kb).
  std::size_t ring_bytes = 1 << 18;
  /// tcp: peer host (rendezvous address for rank mode; loopback
  /// otherwise) and first listen port (0 = ephemeral, single-OS-process
  /// modes only).
  std::string host;
  std::uint16_t base_port = 0;
  /// tcp: flat rank hosted by this OS process; -1 = host all ranks.
  int rank = -1;
  /// tcp: expected machine process count in rank mode (0 = derive).
  int nprocs = 0;
  /// tcp: largest payload carried by one wire record; larger messages
  /// travel as chunk records (grammar key chunk_kb).
  std::size_t chunk_bytes = 64 * 1024;
  /// tcp: SO_SNDBUF override in bytes (0 = OS default). Tiny values
  /// force the partial-write/pending-queue paths — used by tests.
  int sndbuf_bytes = 0;
  /// tcp: pre-bound listening socket inherited from a parent process
  /// (-1 = bind our own). Lets a test harness make rank-mode rendezvous
  /// deterministic without picking a fixed port.
  int listen_fd = -1;
  /// tcp: per-connection rendezvous budget before giving up.
  std::uint32_t connect_timeout_ms = 10'000;

  static TransportSpec inproc();
  static TransportSpec shmring(std::size_t ring_bytes = 1 << 18,
                               bool fork = false);
  static TransportSpec tcp(std::string host, std::uint16_t base_port);

  /// Parses the grammar above. Throws std::invalid_argument naming the
  /// offending spec on an unknown scheme, unknown option key, or
  /// malformed value — unknown specs never fall back silently.
  static TransportSpec parse(const std::string& s);

  /// Non-throwing parse; on failure returns false and fills *err with
  /// the same message parse() would throw. Options already set on *out
  /// act as defaults (the Machine ctor merges legacy config fields
  /// under an environment spec this way).
  static bool try_parse(const std::string& s, TransportSpec* out,
                        std::string* err);

  /// Canonical spec string: parse(to_string()) == *this.
  std::string to_string() const;
};

/// DEPRECATED (PR 9): lenient CHANT_TRANSPORT parsing that mapped
/// unknown values to InProc. Kept one release for out-of-tree callers;
/// new code addresses backends through TransportSpec::parse, which
/// reports errors instead of guessing (chant-lint rule
/// legacy-transport-config flags new uses).
TransportKind parse_transport(const char* s) noexcept;  // chant-lint: allow(legacy-transport-config)

/// DEPRECATED (PR 9): resolves Default against the environment with the
/// lenient parser above. Machine construction now resolves through
/// TransportSpec precedence instead.
TransportKind resolve_transport(TransportKind k) noexcept;  // chant-lint: allow(legacy-transport-config)

/// Size of the per-machine shared scratch area (Transport::
/// shared_scratch): zeroed at machine construction and visible to every
/// process on every backend — the same mapping in fork mode. The first
/// 16 bytes are reserved for the chant layer's termination protocol;
/// tests and tools may use the remainder.
///
/// On distributed backends (tcp fork/rank modes) the scratch is a
/// per-OS-process mirror kept coherent by the transport: use
/// scratch_add/scratch_load for cross-process counters there — raw
/// pointer writes stay local to the writing OS process.
inline constexpr std::size_t kSharedScratchBytes = 256;

class Transport {
 public:
  virtual ~Transport();

  virtual TransportKind kind() const noexcept = 0;
  const char* name() const noexcept { return to_string(kind()); }

  /// Sender side: moves the described message toward (dst_pe, dst_proc).
  /// Runs on the sending process's OS thread. Returns true if the
  /// payload was consumed (the sender may reuse its fragments at once);
  /// false means consumption is deferred and `sender_flag` will be
  /// raised when it happens (the in-process rendezvous path).
  virtual bool submit(Machine& m, const MsgHeader& h, int dst_pe,
                      int dst_proc, const IoVec* iov, std::size_t iovcnt,
                      std::atomic<bool>* sender_flag) = 0;

  /// Receiver side: injects transport-buffered inbound messages into
  /// `ep`'s matching engine and flushes this process's queued outbound.
  /// Called from the endpoint's progress entry points (msgtest,
  /// msgtestany, iprobe, irecv, poll_progress) — possibly under the
  /// scheduler's wait_mu_, so implementations must only *queue* waiter
  /// fires (Transport::inject), never flush them.
  virtual void pump(Endpoint& ep) { (void)ep; }

  /// True if pump() can ever have work. False lets the endpoint skip
  /// the virtual call on every test fast path (the in-proc backend).
  virtual bool needs_pump() const noexcept { return false; }

  /// Hosts one invocation of `process_main` per simulated process and
  /// returns when all have finished; rethrows the first failure.
  virtual void run(Machine& m,
                   const std::function<void(Endpoint&)>& process_main) = 0;

  /// OS-level barrier across all of the machine's processes. On wire
  /// backends, scratch counter updates made before entering the barrier
  /// are visible to every process after it releases.
  virtual void barrier(Machine& m) = 0;

  /// Per-machine shared scratch (kSharedScratchBytes, zeroed at machine
  /// construction); the same physical memory in every process on
  /// shared-memory backends, a transport-coherent mirror on tcp.
  virtual void* shared_scratch() noexcept = 0;

  /// Atomically adds `delta` to the 32-bit scratch counter at byte
  /// offset `off` (4-aligned, off + 4 <= kSharedScratchBytes) and
  /// returns the updated local value. On shared-memory backends this is
  /// a plain atomic RMW; on distributed tcp modes the delta is also
  /// broadcast so every process's mirror converges, with barrier()
  /// ordering the visibility (see barrier above). Deltas commute, so
  /// counters are the supported cross-process scratch idiom.
  virtual std::uint32_t scratch_add(std::size_t off, std::uint32_t delta);

  /// Reads the 32-bit scratch counter at byte offset `off` as currently
  /// visible to this OS process.
  virtual std::uint32_t scratch_load(std::size_t off) const noexcept;

  /// Number of this OS process's peers whose connection was lost
  /// *uncleanly* (died without the transport's goodbye handshake).
  /// Always 0 on backends that cannot lose a peer. The chant
  /// termination protocol counts these so one dead peer cannot wedge
  /// world shutdown.
  virtual int peers_gone() const noexcept { return 0; }

  /// Bounded wait for inbound traffic addressed to `ep` (the doorbell).
  /// Returns immediately when inbound data or queued outbound exists.
  /// Default backoff: donate the timeslice.
  virtual void wait_inbound(Endpoint& ep, std::uint64_t max_ns);

 protected:
  /// The in-process delivery path, verbatim: synchronous accept on the
  /// destination endpoint (matching under its mu_, waiter fires flushed
  /// after the lock drops — safe only because submit never runs under
  /// wait_mu_). Returns the accept result (false = rendezvous pending).
  static bool deliver(Endpoint& dst, const MsgHeader& h, const IoVec* iov,
                      std::size_t iovcnt, std::atomic<bool>* sender_flag);

  /// The wire-injection path: matching under mu_ with waiter fires left
  /// *queued* (never flushed — pump may run under wait_mu_; parked
  /// selectors flush via poll_progress, irecv and the WQ group poll
  /// flush at their existing safe points). force_eager makes any
  /// unmatched payload eager-buffered regardless of the threshold —
  /// wire bytes are already consumed from the sender's point of view,
  /// so the rendezvous (sender-referencing) branch must be unreachable.
  static bool inject(Endpoint& dst, const MsgHeader& h, const IoVec* iov,
                     std::size_t iovcnt, std::atomic<bool>* sender_flag,
                     bool force_eager);

  /// Wire-side peer-loss surfacing: marks (src_pe, src_proc) dead on
  /// `dst`'s matching engine, completing exact-source receives that can
  /// never be satisfied with hdr.peer_gone set. Queue-only like inject.
  static void mark_peer_gone(Endpoint& dst, int src_pe, int src_proc);

  /// Shared thread-mode process hosting: one std::thread per process,
  /// first exception rethrown after all join. Used by the in-proc
  /// backend always and the wire backends when not forking.
  static void run_threads(Machine& m,
                          const std::function<void(Endpoint&)>& process_main);
};

/// Builds the backend selected by m.config().transport_spec (already
/// resolved against legacy fields and the environment by the Machine
/// constructor).
std::unique_ptr<Transport> make_transport(Machine& m);

}  // namespace nx
