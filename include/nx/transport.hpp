// nx/transport.hpp — the delivery seam under the matching engine.
//
// A Transport owns *fragment movement* between processes: how the bytes
// of a send travel from the sender's descriptor to the destination
// endpoint's matching engine, how processes are hosted (threads vs.
// forked OS processes), and how a process waits for inbound traffic.
// Everything above the seam is backend-independent and must behave
// identically on every transport:
//
//   * the matching engine (posted/unexpected, per-source FIFO,
//     truncation status) — nx/endpoint.{hpp,cpp};
//   * the zero-copy descriptor path (a posted receive is filled straight
//     from the sender's fragments or the transport's inbound buffer —
//     one copy total either way);
//   * the registered-waiter hooks (Selector support) and their lock
//     order (fires queue under the endpoint's mu_, flush only from
//     unlocked context — a transport pump must never flush);
//   * FaultyNet injection and NetModel deliver-at timing, which are
//     applied in Endpoint::accept_send_locked at the instant a message
//     enters the matching engine, whatever carried it there.
//
// Two backends ship (see DESIGN.md §12 for the full contract):
//
//   InProcTransport  — the original simulated multicomputer: submit is a
//                      direct synchronous call into the destination
//                      endpoint on the sender's OS thread, processes are
//                      std::threads, the barrier is a condition
//                      variable. Default; sim/ScheduleController replay
//                      is bit-identical to the pre-seam engine.
//   ShmRingTransport — cross-process: per-direction SPSC byte rings in
//                      one shared-memory segment, futex doorbells, a
//                      sense-reversing shm barrier, and (optionally)
//                      one *forked OS process* per simulated process.
//
// Backend headers live in src/nx/ and are internal — include only this
// header outside src/nx/ (chant-lint rule transport-internals).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>

#include "nx/endpoint.hpp"

namespace nx {

class Machine;

/// Backend selector. Default resolves CHANT_TRANSPORT at Machine
/// construction ("inproc" | "shmring"; unset or unknown -> InProc), so
/// existing binaries can run any suite on another backend without code
/// changes. Explicit values ignore the environment.
enum class TransportKind { Default, InProc, ShmRing };

const char* to_string(TransportKind k) noexcept;

/// Parses a CHANT_TRANSPORT value; null/empty/unknown -> InProc.
TransportKind parse_transport(const char* s) noexcept;

/// Resolves Default against the environment; non-Default passes through.
TransportKind resolve_transport(TransportKind k) noexcept;

/// Size of the per-machine shared scratch area (Transport::
/// shared_scratch): zeroed at machine construction and visible to every
/// process on every backend — the same mapping in fork mode. The first
/// 16 bytes are reserved for the chant layer's termination protocol;
/// tests and tools may use the remainder.
inline constexpr std::size_t kSharedScratchBytes = 256;

class Transport {
 public:
  virtual ~Transport();

  virtual TransportKind kind() const noexcept = 0;
  const char* name() const noexcept { return to_string(kind()); }

  /// Sender side: moves the described message toward (dst_pe, dst_proc).
  /// Runs on the sending process's OS thread. Returns true if the
  /// payload was consumed (the sender may reuse its fragments at once);
  /// false means consumption is deferred and `sender_flag` will be
  /// raised when it happens (the in-process rendezvous path).
  virtual bool submit(Machine& m, const MsgHeader& h, int dst_pe,
                      int dst_proc, const IoVec* iov, std::size_t iovcnt,
                      std::atomic<bool>* sender_flag) = 0;

  /// Receiver side: injects transport-buffered inbound messages into
  /// `ep`'s matching engine and flushes this process's queued outbound.
  /// Called from the endpoint's progress entry points (msgtest,
  /// msgtestany, iprobe, irecv, poll_progress) — possibly under the
  /// scheduler's wait_mu_, so implementations must only *queue* waiter
  /// fires (Transport::inject), never flush them.
  virtual void pump(Endpoint& ep) { (void)ep; }

  /// True if pump() can ever have work. False lets the endpoint skip
  /// the virtual call on every test fast path (the in-proc backend).
  virtual bool needs_pump() const noexcept { return false; }

  /// Hosts one invocation of `process_main` per simulated process and
  /// returns when all have finished; rethrows the first failure.
  virtual void run(Machine& m,
                   const std::function<void(Endpoint&)>& process_main) = 0;

  /// OS-level barrier across all of the machine's processes.
  virtual void barrier(Machine& m) = 0;

  /// Per-machine shared scratch (kSharedScratchBytes, zeroed at machine
  /// construction); the same physical memory in every process.
  virtual void* shared_scratch() noexcept = 0;

  /// Bounded wait for inbound traffic addressed to `ep` (the doorbell).
  /// Returns immediately when inbound data or queued outbound exists.
  /// Default backoff: donate the timeslice.
  virtual void wait_inbound(Endpoint& ep, std::uint64_t max_ns);

 protected:
  /// The in-process delivery path, verbatim: synchronous accept on the
  /// destination endpoint (matching under its mu_, waiter fires flushed
  /// after the lock drops — safe only because submit never runs under
  /// wait_mu_). Returns the accept result (false = rendezvous pending).
  static bool deliver(Endpoint& dst, const MsgHeader& h, const IoVec* iov,
                      std::size_t iovcnt, std::atomic<bool>* sender_flag);

  /// The wire-injection path: matching under mu_ with waiter fires left
  /// *queued* (never flushed — pump may run under wait_mu_; parked
  /// selectors flush via poll_progress, irecv and the WQ group poll
  /// flush at their existing safe points). force_eager makes any
  /// unmatched payload eager-buffered regardless of the threshold —
  /// wire bytes are already consumed from the sender's point of view,
  /// so the rendezvous (sender-referencing) branch must be unreachable.
  static bool inject(Endpoint& dst, const MsgHeader& h, const IoVec* iov,
                     std::size_t iovcnt, std::atomic<bool>* sender_flag,
                     bool force_eager);

  /// Shared thread-mode process hosting: one std::thread per process,
  /// first exception rethrown after all join. Used by the in-proc
  /// backend always and the shmring backend when not forking.
  static void run_threads(Machine& m,
                          const std::function<void(Endpoint&)>& process_main);
};

/// Builds the backend selected by m.config().transport (already
/// resolved against the environment by the Machine constructor).
std::unique_ptr<Transport> make_transport(Machine& m);

}  // namespace nx
