// nx/group.hpp — process groups and collective operations.
//
// Paper Figure 3 lists process-group management (create a group, add and
// delete members, group ids in the header) among the capabilities Chant
// expects of its communication layer: NX provided them natively, and the
// HPF/Opus task-parallel extensions Chant was built to support lean on
// them. A Group is a subset of the machine's processes over which
// collective operations run; membership is established SPMD-style (every
// member constructs the group with the identical member list).
//
// Group traffic is segregated from point-to-point traffic through the
// header's channel field (the group id), so collectives can never match
// an application receive. Collectives use binomial trees (barrier,
// broadcast, reduce) or linear exchange (gather) over the ordinary
// isend/irecv machinery, and poll with a replaceable waiter so the Chant
// layer can substitute a fiber yield for the default OS-level backoff.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "nx/endpoint.hpp"

namespace nx {

/// One group member.
struct NodeAddr {
  int pe = 0;
  int proc = 0;
  friend bool operator==(const NodeAddr&, const NodeAddr&) = default;
};

/// Reduction operators for the typed reduce/allreduce entry points.
enum class ReduceOp { Sum, Min, Max };

class Group {
 public:
  /// Builds a group over `members` (identical list on every member).
  /// `group_id` must be nonzero, unique among concurrently live groups,
  /// and below 2^30 (it rides in the header channel field). The calling
  /// endpoint must be one of the members.
  Group(Endpoint& ep, std::vector<NodeAddr> members, int group_id);

  int rank() const noexcept { return rank_; }
  int size() const noexcept { return static_cast<int>(members_.size()); }
  int id() const noexcept { return group_id_; }
  const NodeAddr& member(int r) const {
    return members_[static_cast<std::size_t>(r)];
  }
  bool contains(int pe, int proc) const noexcept;

  /// Replaces the wait-for-completion behaviour (default: cpu-relax then
  /// OS yield). The Chant layer installs a fiber yield here so a
  /// collective blocks only the calling thread.
  void set_waiter(std::function<void()> waiter) { waiter_ = std::move(waiter); }

  // ---- collectives (call from every member, matching argument shapes) ----

  /// Dissemination barrier across the group.
  void barrier();

  /// Binomial-tree broadcast of `len` bytes from `root`'s buf.
  void broadcast(void* buf, std::size_t len, int root);

  /// Binomial-tree reduction of `n` elements into root's `out`
  /// (in == out aliasing is allowed; non-roots' out may be null).
  void reduce(const std::int64_t* in, std::int64_t* out, std::size_t n,
              ReduceOp op, int root);
  void reduce(const double* in, double* out, std::size_t n, ReduceOp op,
              int root);

  /// Reduce + broadcast: every member receives the result.
  void allreduce(const std::int64_t* in, std::int64_t* out, std::size_t n,
                 ReduceOp op);
  void allreduce(const double* in, double* out, std::size_t n, ReduceOp op);

  /// Gathers `len` bytes from every member into root's `out`
  /// (size * len bytes, rank-major). Non-roots' out may be null.
  void gather(const void* in, std::size_t len, void* out, int root);

  /// Gather + broadcast: every member ends up with the rank-major
  /// concatenation (out must hold size * len bytes everywhere).
  void allgather(const void* in, std::size_t len, void* out);

  /// Root scatters `len` bytes per member from `in` (rank-major);
  /// every member receives its slice in `out`.
  void scatter(const void* in, void* out, std::size_t len, int root);

 private:
  // Phase tags inside the group channel; a per-collective sequence
  // number keeps back-to-back collectives from cross-matching.
  enum : int { kBarrier = 1, kBcast = 2, kReduce = 3, kGather = 4,
               kScatter = 5 };
  int tag_for(int phase, int round) const noexcept {
    return (seq_ << 12) | (phase << 8) | round;
  }
  void send_to(int rank, int tag, const void* buf, std::size_t len);
  void recv_from(int rank, int tag, void* buf, std::size_t cap);
  void wait(Handle h, MsgHeader* out);
  template <typename T>
  void reduce_impl(const T* in, T* out, std::size_t n, ReduceOp op,
                   int root);
  /// Per-type reduction scratch (accumulator + receive staging); the
  /// capacity is retained across collectives so a steady-state reduce
  /// loop performs no per-call heap allocations.
  template <typename T>
  std::vector<T>& scratch();

  Endpoint& ep_;
  std::vector<NodeAddr> members_;
  int group_id_;
  int rank_ = -1;
  int seq_ = 0;
  std::function<void()> waiter_;
  std::vector<std::int64_t> scratch_i64_;
  std::vector<double> scratch_f64_;
};

template <>
inline std::vector<std::int64_t>& Group::scratch<std::int64_t>() {
  return scratch_i64_;
}
template <>
inline std::vector<double>& Group::scratch<double>() {
  return scratch_f64_;
}

}  // namespace nx
