// nx/hb.hpp — message-layer hook points for the happens-before checker.
//
// nx cannot depend on chant, but chant::hb needs two things from the
// message layer: a clock token minted at submit time (it rides the
// header's hb_clk field so the receiving fiber can merge the sender's
// vector clock), and in-flight accounting (a message that has left the
// sender but not yet reached the destination endpoint's queues can
// still wake a blocked fiber, so quiescence detection must wait for
// it). Same null-pointer seam as lwt/validate.hpp.
#pragma once

#include <atomic>
#include <cstdint>

namespace nx {

struct MsgHeader;

struct NxHbHooks {
  /// A message is being submitted. Returns the clock token to place in
  /// MsgHeader::hb_clk (0 = untracked). Increments the in-flight count.
  std::uint64_t (*msg_send)(const MsgHeader& h);
  /// The message carrying `token` reached the destination endpoint
  /// (matched a posted receive or was queued unexpected). Idempotent:
  /// fault-injected duplicates deliver the same token twice.
  void (*msg_arrived)(std::uint64_t token);
  /// The message carrying `token` was dropped by fault injection and
  /// will never arrive.
  void (*msg_dropped)(std::uint64_t token);
};

extern std::atomic<const NxHbHooks*> g_nx_hb_hooks;

inline const NxHbHooks* nx_hb_hooks() noexcept {
  return g_nx_hb_hooks.load(std::memory_order_acquire);
}

}  // namespace nx
