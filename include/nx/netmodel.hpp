// nx/netmodel.hpp — interconnect timing model for the simulated machine.
//
// The paper's experiments ran on an Intel Paragon whose NX transfer time
// is well described by the classic linear model T(n) = L0 + n·c. We use
// the same model to decide *when* a message becomes visible to matching
// on the receiving endpoint (its "deliver-at" timestamp): before that
// instant a posted receive or msgtest cannot observe the message, exactly
// as a message still in flight on the mesh cannot be received.
//
// Presets:
//  * zero()    — no modelled delay; used by the test suite and by the
//                overhead-isolation benchmarks (the Chant cost is then
//                the measured difference against the raw layer).
//  * paragon() — calibrated so a ping-pong exchange of the paper's
//                Table-2 message sizes lands in the paper's microsecond
//                range (fit of Table 2's Process column:
//                T(n) ≈ 333 µs + 0.159 µs/byte per one-way message).
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>

namespace nx {

struct NetModel {
  double latency_us = 0.0;   ///< L0: per-message software+wire latency
  double per_byte_us = 0.0;  ///< c: incremental cost per payload byte

  static constexpr NetModel zero() { return NetModel{0.0, 0.0}; }
  /// Paragon-era fit of the paper's Table-2 "Process" column.
  static constexpr NetModel paragon() { return NetModel{333.0, 0.159}; }

  constexpr bool is_zero() const noexcept {
    return latency_us == 0.0 && per_byte_us == 0.0;
  }

  std::uint64_t delay_ns(std::size_t bytes) const noexcept {
    return static_cast<std::uint64_t>(
        (latency_us + per_byte_us * static_cast<double>(bytes)) * 1000.0);
  }
};

/// Monotonic wall-clock in nanoseconds (steady across OS threads).
inline std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace nx
