// lwt/timer.hpp — the scheduler's timer wheel.
//
// Backs every timed wait in the package: sleep_for/sleep_until, the
// timed sync-primitive waits, timed join, and the deadline-carrying
// message waits the Chant layer builds on top. A timer is armed with an
// *absolute* deadline in nanoseconds of the scheduler's clock — the
// production steady clock, or the sim harness's VirtualClock when one
// is installed — so the schedule-exploration controller can drive
// timeout interleavings deterministically.
//
// Despite the name, the structure is a binary min-heap keyed on
// (deadline, arm-order), not a hashed-and-hierarchical wheel: the
// VirtualClock advances in large jumps when the scheduler idles, which
// would cascade whole levels of a hashed wheel at once, and the sim
// harness needs a deterministic *total* order on same-tick expiries —
// the heap gives both for free at O(log n) per operation, and n (the
// number of concurrently parked timed waits) is small.
//
// Cancellation safety: disarm() only erases the id from the live map;
// the heap entry stays behind and is skipped when popped. Expiry hands
// back the Tcb* recorded at arm time, so a Tcb freed after its wait
// disarmed can never be touched through a stale heap entry.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace lwt {

struct Tcb;

/// Absolute-deadline sentinel meaning "wait forever". Every timed entry
/// point treats it as its untimed counterpart.
inline constexpr std::uint64_t kNoDeadline = ~std::uint64_t{0};

class TimerWheel {
 public:
  /// Opaque handle for one armed timer; 0 is never returned.
  using TimerId = std::uint64_t;

  /// Arms a timer firing at `deadline_ns` for thread `t`.
  TimerId arm(std::uint64_t deadline_ns, Tcb* t);

  /// Cancels an armed timer. Returns false if it already fired (or was
  /// never armed) — callers treat that as "the wakeup happened".
  bool disarm(TimerId id);

  /// Fires every timer with deadline <= now_ns in (deadline, arm-order)
  /// order, invoking fire(ctx, tcb) for each. Returns how many fired.
  std::size_t expire(std::uint64_t now_ns, void (*fire)(void* ctx, Tcb* t),
                     void* ctx);

  /// Earliest armed deadline, or kNoDeadline when none. May point at an
  /// already-disarmed entry (conservative: an extra expire() call cleans
  /// it up); never later than the true earliest.
  std::uint64_t next_deadline() const noexcept {
    return heap_.empty() ? kNoDeadline : heap_.front().deadline;
  }

  /// Number of armed (not yet fired or disarmed) timers.
  std::size_t armed() const noexcept { return live_.size(); }

 private:
  struct Entry {
    std::uint64_t deadline;
    TimerId id;  ///< tie-break: arm order, for a deterministic total order
  };
  static bool later(const Entry& a, const Entry& b) noexcept {
    return a.deadline != b.deadline ? a.deadline > b.deadline : a.id > b.id;
  }
  void heap_push(Entry e);
  Entry heap_pop();

  std::vector<Entry> heap_;                   ///< min-heap on (deadline, id)
  std::unordered_map<TimerId, Tcb*> live_;    ///< armed timers only
  TimerId next_id_ = 1;
};

}  // namespace lwt
