// lwt/stack.hpp — guard-paged fiber stacks with a per-scheduler free pool.
//
// Stacks are mmap'd with one PROT_NONE guard page below the usable region,
// so a fiber overflowing its stack faults immediately instead of silently
// corrupting a neighbouring fiber. Freed stacks are cached on a free list
// keyed by size, which keeps thread creation in the tens-of-nanoseconds
// range after warm-up (important for the Table-1 create benchmark and for
// the remote-create RSR path).
#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "lwt/spinlock.hpp"

namespace lwt {

/// One usable fiber stack. `base` points at the lowest usable byte;
/// the guard page lies immediately below it.
struct Stack {
  void* base = nullptr;   ///< lowest usable address
  std::size_t size = 0;   ///< usable bytes (multiple of the page size)

  explicit operator bool() const noexcept { return base != nullptr; }
};

/// Allocates and recycles guard-paged stacks. Thread-safe: the workers
/// of a multi-worker scheduler share one pool (spawn/reap may run on
/// any of them); the free list is guarded by an internal spinlock.
class StackPool {
 public:
  StackPool() = default;
  StackPool(const StackPool&) = delete;
  StackPool& operator=(const StackPool&) = delete;
  ~StackPool();

  /// Returns a stack of at least `min_size` usable bytes (rounded up to a
  /// whole number of pages, minimum one page). Reuses a cached stack of
  /// the same rounded size when available.
  Stack acquire(std::size_t min_size);

  /// Returns a stack to the pool for reuse.
  void release(Stack s) noexcept;

  /// Number of stacks currently cached (for tests).
  std::size_t cached() const noexcept;

  /// Unmaps all cached stacks.
  void trim() noexcept;

 private:
  mutable SpinLock mu_;
  std::unordered_map<std::size_t, std::vector<Stack>> pool_;
};

/// System page size (cached).
std::size_t page_size() noexcept;

}  // namespace lwt
