// lwt/validate.hpp — hook points for a layered concurrency validator.
//
// lwt cannot depend on chant, but chant's runtime validator
// (chant::validate, DESIGN.md §9) needs to observe lock acquisitions and
// potentially-blocking waits inside the fiber synchronization
// primitives. The bridge is this hook table: a higher layer installs one
// pointer and the primitives call through it. When no validator is
// installed the pointer is null, so the cost of a hook site in
// production is one relaxed load and a predictable branch.
#pragma once

#include <atomic>

namespace lwt {

struct Tcb;

/// Observer callbacks for the synchronization primitives. All members
/// must be non-null in an installed table; `self` is the calling fiber
/// (never null — the primitives abort outside a scheduler first).
struct ValidateHooks {
  /// `self` now holds `lock`. `kind` names the primitive for reports
  /// ("Mutex", "RwLock(R)", ...) and has static storage duration.
  void (*lock_acquired)(Tcb* self, const void* lock, const char* kind);
  /// `self` released `lock`.
  void (*lock_released)(Tcb* self, const void* lock);
  /// `self` entered an operation that may suspend it. `timed` is true
  /// when the wait carries a deadline (bounded waits are permitted in
  /// no-block contexts; unbounded ones are reported).
  void (*blocking_call)(Tcb* self, const char* what, bool timed);
};

/// The installed hook table, or null when validation is off. Written
/// only by chant::validate::enable/disable; read on every hooked
/// operation.
extern std::atomic<const ValidateHooks*> g_validate_hooks;

inline const ValidateHooks* validate_hooks() noexcept {
  return g_validate_hooks.load(std::memory_order_acquire);
}

}  // namespace lwt
