// lwt/rwlock.hpp — reader/writer lock and one-time initialization for
// fibers (rounding out the "Synchronization" box of paper Figure 2).
#pragma once

#include <atomic>

#include "lwt/hb.hpp"
#include "lwt/scheduler.hpp"
#include "lwt/thread.hpp"
#include "lwt/validate.hpp"

namespace lwt {

/// Reader/writer lock for fibers of one scheduler. Writer-preferring:
/// once a writer is waiting, new readers queue behind it, so writers
/// cannot starve under a steady reader stream.
class RwLock {
 public:
  RwLock() = default;
  RwLock(const RwLock&) = delete;
  RwLock& operator=(const RwLock&) = delete;

  void lock_shared();
  [[nodiscard]] bool try_lock_shared();
  /// Timed shared acquire; false = deadline passed first (lock not
  /// held). Timer-wheel-parked; cancellation point.
  [[nodiscard]] bool try_lock_shared_until(std::uint64_t deadline_ns);
  void unlock_shared();

  void lock();
  [[nodiscard]] bool try_lock();
  /// Timed exclusive acquire; same contract as try_lock_shared_until.
  /// A timed-out writer quietly leaves the writer queue; the reader
  /// herd is released by the next unlock as usual.
  [[nodiscard]] bool try_lock_until(std::uint64_t deadline_ns);
  void unlock();

  int readers() const noexcept {
    return readers_.load(std::memory_order_relaxed);
  }
  bool has_writer() const noexcept {
    return writer_.load(std::memory_order_relaxed) != nullptr;
  }

 private:
  /// Caller holds the scheduler's wait lock through `g`; stays held.
  void wake_next(Scheduler& s, Scheduler::SyncGuard& g);

  /// State transitions happen under the scheduler's wait lock; atomics
  /// make the introspection reads above clean.
  std::atomic<int> readers_{0};
  std::atomic<Tcb*> writer_{nullptr};
  TcbQueue waiting_writers_;
  TcbQueue waiting_readers_;
};

/// RAII shared lock.
class SharedLockGuard {
 public:
  explicit SharedLockGuard(RwLock& l) : l_(l) { l_.lock_shared(); }
  ~SharedLockGuard() { l_.unlock_shared(); }
  SharedLockGuard(const SharedLockGuard&) = delete;
  SharedLockGuard& operator=(const SharedLockGuard&) = delete;

 private:
  RwLock& l_;
};

/// RAII exclusive lock.
class WriteLockGuard {
 public:
  explicit WriteLockGuard(RwLock& l) : l_(l) { l_.lock(); }
  ~WriteLockGuard() { l_.unlock(); }
  WriteLockGuard(const WriteLockGuard&) = delete;
  WriteLockGuard& operator=(const WriteLockGuard&) = delete;

 private:
  RwLock& l_;
};

/// pthread_once analogue for fibers: the first caller runs `fn`; others
/// that arrive concurrently block until it completes.
class Once {
 public:
  Once() = default;
  Once(const Once&) = delete;
  Once& operator=(const Once&) = delete;

  template <typename F>
  void call(F&& fn) {
    if (state_.load(std::memory_order_acquire) == State::Done) {
      // The initializer's effects happen-before every later caller.
      if (const auto* hb = hb_hooks()) hb->sync_acquire(Scheduler::self(), this);
      return;
    }
    Scheduler& s = *Scheduler::current();
    Tcb* me = Scheduler::self();
    // A latecomer may block behind the running initializer: announce the
    // (unbounded) wait to the validator and the wait-for graph. The
    // runner "owns" the Once while fn() executes, so an initializer that
    // blocks forever shows up as a deadlock edge, not a mystery hang.
    if (const auto* h = validate_hooks()) {
      h->blocking_call(me, "lwt::Once::call", false);
    }
    const HbHooks* hb = hb_hooks();
    if (hb != nullptr) hb->wait_begin(me, this, "lwt::Once::call", false);
    Scheduler::SyncGuard g(s);
    while (true) {
      const State st = state_.load(std::memory_order_relaxed);
      if (st == State::Done) {
        g.unlock();
        if (hb != nullptr) {
          hb->wait_end(me);
          hb->sync_acquire(me, this);
        }
        return;
      }
      if (st == State::Fresh) break;
      s.park_on(waiters_, g);
      g.lock();
    }
    state_.store(State::Running, std::memory_order_relaxed);
    g.unlock();  // fn() runs outside the wait lock (it may block/spawn)
    if (hb != nullptr) {
      hb->wait_end(me);
      hb->lock_acquired(me, this, "Once");
    }
    if (const auto* h = validate_hooks()) h->lock_acquired(me, this, "Once");
    try {
      fn();
    } catch (...) {
      if (hb != nullptr) hb->lock_released(me, this);
      if (const auto* h = validate_hooks()) h->lock_released(me, this);
      g.lock();
      state_.store(State::Fresh, std::memory_order_relaxed);
      s.wake_all(waiters_, g);  // as with pthread_once: retryable
      throw;
    }
    if (hb != nullptr) hb->lock_released(me, this);
    if (const auto* h = validate_hooks()) h->lock_released(me, this);
    g.lock();
    state_.store(State::Done, std::memory_order_release);
    s.wake_all(waiters_, g);
  }

  bool done() const noexcept {
    return state_.load(std::memory_order_acquire) == State::Done;
  }

 private:
  enum class State : std::uint8_t { Fresh, Running, Done };
  std::atomic<State> state_{State::Fresh};
  TcbQueue waiters_;
};

}  // namespace lwt
