// lwt/thread.hpp — thread control blocks and intrusive thread queues.
//
// A Tcb ("thread control block", the paper's §4.2 terminology) fully
// describes one user-level thread: saved context, stack, entry point,
// scheduling state, and — crucially for the Scheduler-polls (PS)
// algorithm — an optional pending poll request that the scheduler can
// test *before* restoring the thread's context (a "partial switch").
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>

#include "lwt/context.hpp"
#include "lwt/stack.hpp"

namespace lwt {

class Scheduler;
struct Tcb;

/// Priority levels. Higher value runs first. The Chant server thread uses
/// kServerPriority so a pending remote service request is handled at the
/// next context-switch point (paper §3.2).
inline constexpr int kNumPriorities = 8;
inline constexpr int kDefaultPriority = 3;
inline constexpr int kServerPriority = kNumPriorities - 1;

/// Return value of a thread that exited due to cancellation
/// (the analogue of PTHREAD_CANCELED).
inline void* const kCanceled = reinterpret_cast<void*>(~std::uintptr_t{0});

/// Thread entry signature, matching pthreads.
using EntryFn = void* (*)(void*);

/// Number of thread-local data keys per scheduler (pthread_key analogue).
inline constexpr std::size_t kMaxTlsKeys = 32;

/// Creation attributes (subset of pthread_attr_t the paper relies on).
struct ThreadAttr {
  std::size_t stack_size = 128 * 1024;
  int priority = kDefaultPriority;
  bool detached = false;
  const char* name = nullptr;  ///< optional debug name (copied, truncated)
};

/// Lifecycle states. A thread parked by the PS policy remains *queued*
/// (state Ready with poll_active set); a thread parked by the WQ policy
/// or on a synchronization primitive is Blocked.
enum class ThreadState : std::uint8_t {
  Ready,     ///< on a run queue (possibly with a pending PS poll)
  Running,   ///< currently executing
  Blocked,   ///< parked on a wait list / WQ entry / join
  Finished,  ///< entry returned or thread cancelled; retval available
};

/// A deferred completion test. `test` must be cheap and must not yield;
/// it is invoked by the scheduler (PS/WQ) or by the waiting thread (TP).
struct PollRequest {
  bool (*test)(void* ctx) = nullptr;
  void* ctx = nullptr;
};

/// Intrusive FIFO of Tcbs (run queues and wait lists). A Tcb is linked
/// into at most one queue at a time.
class TcbQueue {
 public:
  bool empty() const noexcept { return head_ == nullptr; }
  std::size_t size() const noexcept { return size_; }
  void push_back(Tcb* t) noexcept;
  Tcb* pop_front() noexcept;
  Tcb* front() const noexcept { return head_; }
  /// Unlinks `t` if present; returns true if it was in this queue.
  bool remove(Tcb* t) noexcept;

 private:
  Tcb* head_ = nullptr;
  Tcb* tail_ = nullptr;
  std::size_t size_ = 0;
};

/// Thread control block.
struct Tcb {
  Context ctx;
  Stack stack;
  EntryFn entry = nullptr;
  void* arg = nullptr;
  void* retval = nullptr;

  std::uint32_t id = 0;  ///< scheduler-local id, 1 = main fiber
  /// Atomic because set_priority() may race with another worker's
  /// enqueue; the queue a Ready fiber sits in is still chosen under that
  /// worker's queue lock.
  std::atomic<int> priority{kDefaultPriority};
  /// Atomic: with a multi-worker scheduler, timer fires, cancel() and
  /// cross-worker wakes observe the state from foreign OS threads. All
  /// Blocked<->Ready transitions happen under the scheduler's wait lock;
  /// the atomic makes the *reads* (stale-fire checks, debug dumps) safe.
  std::atomic<ThreadState> state{ThreadState::Ready};
  bool detached = false;             ///< guarded by the scheduler wait lock
  std::atomic<bool> cancel_requested{false};
  std::atomic<bool> cancel_disabled{false};
  bool canceled = false;     ///< exited via cancellation (owner-written)
  bool msg_waiting = false;  ///< inside a blocking message wait (any policy)
  /// Woken by the timer wheel, not by completion. Atomic: a timer fire on
  /// one worker may race a successful PS poll test on another; the wait
  /// code re-tests the request whenever this is set, so a spurious value
  /// can only cost one extra test, never a wrong result.
  std::atomic<bool> timed_out{false};

  /// Scheduler-polls (PS): pending request tested during a partial switch.
  /// poll_active is the claim token between the poll test (pick_next) and
  /// a concurrent timer fire: whoever exchange()s it to false owns the
  /// wakeup. A PS-parked fiber sits Ready in a run queue and is never
  /// stolen (the owning worker keeps polling it).
  PollRequest poll{};
  std::atomic<bool> poll_active{false};

  /// Index of the worker whose run queue holds this (Ready) fiber; set
  /// under that worker's queue lock at every enqueue. Stale outside the
  /// Ready state — always re-verify under the queue lock before use.
  std::atomic<std::uint32_t> home_worker{0};

  /// Intrusive queue links (run queue / wait list / zombie list).
  Tcb* qnext = nullptr;
  Tcb* qprev = nullptr;
  TcbQueue* waiting_on = nullptr;  ///< wait list we are parked on, if any

  Tcb* joiner = nullptr;   ///< thread blocked in join() on us
  bool join_taken = false; ///< someone already committed to joining us

  /// Validator context tag (lwt/validate.hpp): while > 0 this fiber is
  /// inside a no-block scope (e.g. a Chant RSR handler) and unbounded
  /// blocking operations are reported. Maintained by chant::validate;
  /// lwt only stores it so hooks can read it without a side table.
  std::uint16_t no_block_depth = 0;
  const char* no_block_what = nullptr;  ///< innermost scope label

  std::array<void*, kMaxTlsKeys> tls{};
  void* user = nullptr;  ///< opaque slot for layered runtimes (Chant)
  Scheduler* sched = nullptr;
  char name[24] = {};

  void set_name(const char* n) noexcept;
};

}  // namespace lwt
