// lwt/trace.hpp — lightweight scheduler event tracing.
//
// A Trace is a fixed-capacity ring of scheduler events (spawn, switch,
// yield, park, ready, poll activity, finish) with nanosecond timestamps.
// Attach one to a scheduler with Scheduler::set_trace(); recording is a
// single branch + store when attached and free when not, so it can stay
// available in release builds. Intended uses: debugging polling-policy
// schedules, asserting scheduling orders in tests, and post-mortem dumps
// of the exact interleaving that led to a failure.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "lwt/spinlock.hpp"

namespace lwt {

enum class TraceEvent : std::uint8_t {
  Spawn,      ///< thread created
  SwitchIn,   ///< context restored (a complete context switch)
  Yield,      ///< thread yielded voluntarily
  Park,       ///< thread blocked (wait list / WQ / join)
  Ready,      ///< thread moved to the run queue
  PollTest,   ///< a partial-switch (PS) test was performed for it
  Finish,     ///< thread finished
};

const char* to_string(TraceEvent e) noexcept;

class Trace {
 public:
  struct Entry {
    std::uint64_t ns;    ///< steady-clock timestamp
    TraceEvent event;
    std::uint32_t tid;   ///< scheduler-local thread id
  };

  /// Ring capacity in entries (oldest entries are overwritten).
  explicit Trace(std::size_t capacity = 4096);

  /// Thread-safe: workers of a multi-worker scheduler record into one
  /// shared ring under an internal spinlock (a few stores per event).
  void record(TraceEvent e, std::uint32_t tid) noexcept;

  /// Number of entries recorded since construction/clear (may exceed
  /// capacity; only the newest `capacity` are retained).
  std::uint64_t recorded() const noexcept;
  std::size_t capacity() const noexcept { return ring_.size(); }

  /// Retained entries, oldest first.
  std::vector<Entry> snapshot() const;

  /// Human-readable dump ("+<us> <event> #<tid>" per line, relative to
  /// the first retained entry).
  std::string dump() const;

  void clear() noexcept;

 private:
  mutable SpinLock mu_;       ///< guards head_/recorded_/ring_ contents
  std::vector<Entry> ring_;
  std::size_t head_ = 0;      ///< next write position
  std::uint64_t recorded_ = 0;
};

}  // namespace lwt
