// lwt/context.hpp — low-level execution-context save/restore.
//
// Two interchangeable backends implement the same three operations
// (make / swap / destroy):
//
//  * ContextBackend::Asm — a hand-written x86-64 SysV switch in
//    context_x86_64.S. It saves only the callee-saved integer registers
//    plus the x87/MXCSR control words on the fiber's own stack and stores
//    a single stack pointer, in the style of boost::context's fcontext or
//    the Quickthreads package the paper's authors used. ~20 ns per swap.
//
//  * ContextBackend::Ucontext — the POSIX makecontext/swapcontext API.
//    Portable to any POSIX platform but roughly 50x slower on glibc
//    because swapcontext performs a sigprocmask system call per switch.
//
// Both backends are always compiled in (on x86-64) and selected at
// run time per scheduler, so the Table-1 reproduction can benchmark them
// against each other the way the paper compares thread packages.
#pragma once

#include <cstddef>
#include <cstdint>

#if !defined(__x86_64__)
#define LWT_NO_ASM_CONTEXT 1
#endif

#include <ucontext.h>

namespace lwt {

struct Tcb;

/// Which context-switch implementation a scheduler uses.
enum class ContextBackend : std::uint8_t {
  Asm,       ///< hand-written x86-64 switch (default where available)
  Ucontext,  ///< POSIX swapcontext fallback
};

/// Returns the fastest backend available on this platform.
ContextBackend default_backend() noexcept;

/// Saved execution state for one fiber (or for the scheduler itself).
/// Exactly one of the members is meaningful, depending on the backend
/// the owning scheduler selected.
struct Context {
  void* sp = nullptr;        ///< Asm backend: saved stack pointer.
  ucontext_t* uc = nullptr;  ///< Ucontext backend: owned ucontext_t.
  // Stack bounds of this context (fiber stack, or the OS thread stack
  // bound via ctx_bind_os_stack) plus the fake-stack handle saved by
  // __sanitizer_start_switch_fiber while the context is suspended.
  // Needed so AddressSanitizer can follow the Asm backend's hand-rolled
  // switches; harmless bookkeeping otherwise.
  void* stack_base = nullptr;
  std::size_t stack_size = 0;
  void* fake_stack = nullptr;
  // ThreadSanitizer fiber handle (__tsan_create_fiber). Unlike ASan,
  // TSan needs an explicit per-fiber object that every switch names via
  // __tsan_switch_to_fiber; a switch with default flags also establishes
  // the happens-before edge between the two contexts, which is exactly
  // the scheduler-handoff ordering a cooperative scheduler guarantees.
  // tsan_owned distinguishes fibers we created (destroyed with the
  // context) from the OS thread's own fiber bound by ctx_bind_os_stack.
  void* tsan_fiber = nullptr;
  bool tsan_owned = false;

  Context() = default;
  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;
  ~Context();
};

/// Prepares `ctx` so that the first swap into it enters the fiber
/// bootstrap (lwt detail::fiber_boot) with `tcb` as argument, running on
/// [stack_base, stack_base + stack_size).
void ctx_make(Context& ctx, ContextBackend backend, void* stack_base,
              std::size_t stack_size, Tcb* tcb);

/// Saves the current context into `from` and resumes `to`.
/// Returns only when some other context swaps back into `from`.
void ctx_swap(Context& from, Context& to, ContextBackend backend) noexcept;

/// Like ctx_swap, but the calling context is abandoned forever (a dying
/// fiber's last switch back to the scheduler); under ASan its fake stack
/// is released instead of leaked. Aborts if the context is ever resumed.
[[noreturn]] void ctx_swap_final(Context& from, Context& to,
                                 ContextBackend backend) noexcept;

/// Records the calling OS thread's native stack bounds into `ctx`, so
/// sanitizer fiber annotations can describe switches back onto it.
void ctx_bind_os_stack(Context& ctx) noexcept;

/// First-entry sanitizer handshake for a fresh fiber; must be the first
/// thing a fiber does. No-op unless compiled with ASan on the Asm
/// backend (Ucontext relies on ASan's swapcontext interceptor).
void ctx_note_fiber_entry(ContextBackend backend) noexcept;

namespace detail {
/// Common fiber entry point, defined in scheduler.cpp. Never returns.
[[noreturn]] void fiber_boot(Tcb* tcb);
}  // namespace detail

}  // namespace lwt
