// lwt/schedctrl.hpp — schedule-decision hooks for deterministic testing.
//
// A ScheduleController externalizes the scheduler's only source of
// nondeterminism within one process: which of several equally eligible
// ready threads runs next. Production runs install no controller and the
// scheduler behaves exactly as before (strict priority, FIFO within a
// level) at zero cost — every hook sits behind a null check on a pointer
// that is never set outside tests.
//
// The sim harness (include/sim/) provides seedable implementations that
// record every decision, so a rare interleaving that trips an assertion
// can be replayed bit-identically from its seed or its decision trace
// (single-process worlds; across OS threads the usual caveats apply).
//
// Decision-point taxonomy (see DESIGN.md §6):
//  * pick(n)        — at a scheduling point, the highest nonempty
//                     priority level holds n >= 2 candidates; the
//                     returned rotation in [0, n) is applied to the
//                     level's FIFO before the normal head-of-queue scan.
//                     0 reproduces production order. This is the only
//                     *choice* the scheduler ever makes: priorities are
//                     strict, PS poll-tests and WQ scans are exhaustive,
//                     so rotating the FIFO reaches every legal schedule.
//  * on_sched_point — every scheduling decision, before the run-queue
//                     scan (virtual-clock advance lives here).
//  * on_idle        — nothing runnable (blocked threads waiting on
//                     messages still in modelled flight).
#pragma once

#include <cstddef>

namespace lwt {

class ScheduleController {
 public:
  virtual ~ScheduleController() = default;

  /// Returns the rotation in [0, n) to apply to the highest nonempty
  /// priority level's FIFO (n >= 2) before the scheduler scans it.
  virtual std::size_t pick(std::size_t n) = 0;

  /// Called once per scheduling point, before wq_scan and pick_next.
  virtual void on_sched_point() {}

  /// Called when no thread is runnable at this scheduling point.
  virtual void on_idle() {}
};

}  // namespace lwt
