// lwt/scheduler.hpp — the user-level thread scheduler.
//
// One Scheduler runs per OS thread (per simulated Chant "process"). The
// scheduler itself executes on the OS thread's native stack; fibers swap
// back into the scheduler context at every scheduling point, which is
// exactly the structure the paper's polling algorithms assume:
//
//  * Thread polls (TP, paper Fig. 5): the waiting thread stays runnable
//    and re-tests its own request every time it is rescheduled — a full
//    context switch per failed test.
//  * Scheduler polls, waiting queue (WQ, paper Fig. 6): the thread parks
//    on a scheduler-owned waiting queue; the scheduler tests *every*
//    parked request at *every* scheduling point (NX-style, one msgtest
//    per request — or a single group test via set_wq_group_poll, the
//    MPI msgtestany ablation of §4.2).
//  * Scheduler polls, partial switch (PS): the request lives in the TCB;
//    when the TCB reaches the head of the run queue the scheduler tests
//    it *before* restoring the context ("partial switch") and rotates
//    the TCB to the back if the message has not arrived.
//
// The scheduler also keeps the event counters the paper reports:
// complete context switches, partial-switch tests, per-entry WQ tests,
// and the average number of threads waiting on outstanding requests.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "lwt/schedctrl.hpp"
#include "lwt/thread.hpp"
#include "lwt/timer.hpp"
#include "lwt/trace.hpp"

namespace lwt {

/// Thrown at cancellation points of a thread that has been cancelled;
/// unwinds the fiber stack (running RAII destructors) back to the fiber
/// bootstrap, which records kCanceled as the thread's return value.
struct CancelInterrupt {};

/// Event counters (paper Tables 3–5 columns and Figures 11–13).
struct SchedulerStats {
  std::uint64_t spawns = 0;
  std::uint64_t full_switches = 0;      ///< fiber contexts restored
  std::uint64_t yields = 0;             ///< voluntary yield() calls
  std::uint64_t partial_poll_tests = 0; ///< PS tests done before restore
  std::uint64_t wq_poll_tests = 0;      ///< per-entry WQ tests
  std::uint64_t sched_points = 0;       ///< scheduling decisions taken
  std::uint64_t idle_spins = 0;         ///< points with nothing runnable
  // Waiting-thread sampling (Figure 13): at each scheduling point the
  // number of threads inside a blocking message wait is accumulated.
  std::uint64_t waiting_samples = 0;
  std::uint64_t waiting_sum = 0;
  // Timer wheel (deadline/cancellation layer).
  std::uint64_t timers_armed = 0;   ///< timers ever armed
  std::uint64_t timer_fires = 0;    ///< timers that expired and woke a thread
  std::uint64_t timer_cancels = 0;  ///< timers disarmed before firing
  std::uint64_t sleeps = 0;         ///< sleep_for / sleep_until calls

  double avg_waiting() const noexcept {
    return waiting_samples == 0
               ? 0.0
               : static_cast<double>(waiting_sum) /
                     static_cast<double>(waiting_samples);
  }
};

class Scheduler {
 public:
  explicit Scheduler(ContextBackend backend = default_backend());
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;
  ~Scheduler();

  /// Runs `entry(arg)` as the main fiber (id 1) and schedules until every
  /// fiber has finished. Returns the main fiber's return value. Must be
  /// called on the OS thread that owns this scheduler; not reentrant.
  void* run_main(EntryFn entry, void* arg, const ThreadAttr& attr = {});

  /// The scheduler owning the calling OS thread (null outside run_main).
  static Scheduler* current();
  /// The currently running fiber (null outside a fiber).
  static Tcb* self();

  // ---- fiber-context operations (call from inside a fiber) ----

  /// Creates a new ready thread. The returned Tcb stays valid until the
  /// thread is joined (or, if detached, until it finishes).
  Tcb* spawn(EntryFn entry, void* arg, const ThreadAttr& attr = {});

  /// Gives up the processor to the next ready thread. Cancellation point.
  void yield();

  /// Terminates the calling thread with `retval`.
  [[noreturn]] void exit_current(void* retval);

  /// Waits for `t` to finish; returns its retval (kCanceled if it was
  /// cancelled). Exactly one thread may join a given thread.
  /// Cancellation point.
  void* join(Tcb* t);

  /// Timed join: waits until `t` finishes or the (absolute, scheduler
  /// clock) deadline passes. On success stores the return value through
  /// `retval` (if non-null), reaps `t`, and returns true. On timeout
  /// returns false and relinquishes the join claim — `t` stays joinable
  /// by anyone, exactly as if this call had never been made.
  /// Cancellation point.
  bool join_until(Tcb* t, std::uint64_t deadline_ns, void** retval);

  /// Marks `t` detached: its resources are reclaimed when it finishes.
  void detach(Tcb* t);

  /// Requests deferred cancellation of `t`, waking it from any
  /// cancellable wait (yield/join/sync/poll waits).
  void cancel(Tcb* t);

  /// Enables/disables acting on cancellation for the calling thread;
  /// returns the previous setting.
  bool set_cancel_enabled(bool enabled);

  /// Cancellation point: throws CancelInterrupt if cancellation is
  /// pending and enabled for the calling thread.
  void check_cancel();

  /// Changes a thread's priority (takes effect at its next enqueue).
  void set_priority(Tcb* t, int priority);

  // ---- blocking-wait building blocks (used by sync.cpp and Chant) ----

  /// Parks the calling fiber on `wl` and switches to the scheduler.
  /// The fiber resumes when another thread moves it back to the run
  /// queue via wake_one/wake_all/ready(), or when cancelled.
  void park_on(TcbQueue& wl);

  /// Timed park: as park_on, but also arms a timer-wheel entry. Returns
  /// true if woken by wake_one/wake_all/ready (or cancellation — the
  /// caller's check_cancel() acts on that), false if the deadline fired
  /// first (the fiber has been removed from `wl`). kNoDeadline waits
  /// forever; an already-passed deadline returns false without parking.
  bool park_on_until(TcbQueue& wl, std::uint64_t deadline_ns);

  /// Moves the first thread parked on `wl` (if any) to the run queue.
  Tcb* wake_one(TcbQueue& wl);
  /// Wakes every thread parked on `wl`; returns how many.
  std::size_t wake_all(TcbQueue& wl);
  /// Makes an unqueued Blocked thread ready.
  void ready(Tcb* t);

  // ---- time & timers ----

  /// Clock override (nanoseconds, monotone non-decreasing). Null (the
  /// default) reads std::chrono::steady_clock; the sim harness installs
  /// its VirtualClock here so timed waits expire under controller-driven
  /// virtual time and timeout interleavings replay deterministically.
  using ClockFn = std::uint64_t (*)(void* ctx);
  void set_clock(ClockFn fn, void* ctx) noexcept {
    clock_fn_ = fn;
    clock_ctx_ = ctx;
  }

  /// Current scheduler time in nanoseconds.
  std::uint64_t now() const;

  /// now() + delta, saturating at kNoDeadline (which means "forever").
  std::uint64_t deadline_after(std::uint64_t delta_ns) const;

  /// Sleeps the calling fiber until the (absolute) deadline: parked on
  /// the timer wheel, no polling, no run-queue presence — other fibers
  /// (and the idle backoff) run undisturbed. Cancellation point.
  void sleep_until(std::uint64_t deadline_ns);
  void sleep_for(std::uint64_t ns);

  /// Armed (not yet fired/disarmed) timer-wheel entries; introspection
  /// for tests and the no-spin acceptance checks.
  std::size_t armed_timers() const noexcept { return timers_.armed(); }

  // ---- message-wait primitives (the three polling policies) ----
  //
  // Each takes an optional absolute deadline (scheduler clock,
  // kNoDeadline = wait forever) and returns true if the request
  // completed, false if the deadline fired first. Completion wins a
  // race with the deadline: the request is re-tested once after a
  // timer wakeup before the wait reports failure.

  /// Thread-polls wait: full switch per failed test (paper Fig. 5).
  /// TP threads never park, so the deadline is checked against the
  /// clock on each failed test instead of arming a timer.
  bool poll_block_tp(const PollRequest& req,
                     std::uint64_t deadline_ns = kNoDeadline);
  /// Waiting-queue wait: scheduler tests all parked requests at every
  /// scheduling point (paper Fig. 6).
  bool poll_block_wq(const PollRequest& req,
                     std::uint64_t deadline_ns = kNoDeadline);
  /// Partial-switch wait: request parked in the TCB, tested just before
  /// the context would be restored.
  bool poll_block_ps(const PollRequest& req,
                     std::uint64_t deadline_ns = kNoDeadline);

  /// Policy-independent parked wait: the request joins a generic list
  /// the scheduler tests at every scheduling point (and while idle),
  /// regardless of any group-poll hook. The waiter consumes no CPU and
  /// cannot be starved by priorities — used for runtime-internal waits
  /// like the cross-process termination protocol.
  bool poll_block_generic(const PollRequest& req,
                          std::uint64_t deadline_ns = kNoDeadline);

  /// Replaces WQ's per-entry scan with one group test per scheduling
  /// point (msgtestany ablation). The hook must call wq_complete() for
  /// each request it finds complete and return how many it completed.
  using WqGroupPoll = std::size_t (*)(void* hook_ctx, Scheduler& sched);
  void set_wq_group_poll(WqGroupPoll hook, void* hook_ctx);

  /// For group-poll hooks: readies the WQ-parked fiber whose PollRequest
  /// ctx equals `req_ctx`. Returns false if no such fiber is parked.
  bool wq_complete(void* req_ctx);

  /// Called when no thread is runnable (e.g. to back off the CPU while
  /// waiting for another simulated process to send).
  void set_idle_hook(void (*hook)(void*), void* ctx);

  /// Attaches (or detaches, with null) an event trace; see lwt/trace.hpp.
  void set_trace(Trace* trace) noexcept { trace_ = trace; }
  Trace* trace() const noexcept { return trace_; }

  /// Installs (or removes, with null) a schedule controller consulted at
  /// every yield/block/wake decision point; see lwt/schedctrl.hpp. Null
  /// (the default) keeps production behavior and cost. Not owned.
  void set_controller(ScheduleController* ctrl) noexcept { ctrl_ = ctrl; }
  ScheduleController* controller() const noexcept { return ctrl_; }

  // ---- thread-local data (pthread_key analogue) ----

  /// Allocates a TLS key; `dtor` (may be null) runs at thread exit on
  /// non-null values. Returns -1 if all keys are in use.
  int key_create(void (*dtor)(void*));
  void key_delete(int key);
  void set_specific(int key, void* value);
  void* get_specific(int key) const;

  // ---- introspection ----
  const SchedulerStats& stats() const noexcept { return stats_; }
  SchedulerStats& mutable_stats() noexcept { return stats_; }
  ContextBackend backend() const noexcept { return backend_; }
  std::uint32_t live_threads() const noexcept { return active_; }
  std::uint32_t msg_waiting_threads() const noexcept { return msg_waiting_; }
  /// Human-readable dump of all known threads (deadlock diagnostics).
  std::string debug_dump() const;

 private:
  struct WqEntry {
    PollRequest req;
    Tcb* tcb;
  };

  void schedule_loop();
  void switch_to(Tcb* t);
  [[noreturn]] void finish_current(void* retval);
  Tcb* pick_next();
  void wq_scan();
  void enqueue_ready(Tcb* t);
  void reap(Tcb* t);
  void run_tls_dtors(Tcb* t);
  TimerWheel::TimerId arm_timer(std::uint64_t deadline_ns, Tcb* t);
  void disarm_timer(TimerWheel::TimerId id);
  /// Timer-wheel expiry: wakes `t` from whatever wait parked it, with
  /// Tcb::timed_out set. A stale fire (thread already woken by the real
  /// event) is ignored so a completed wait never reports a timeout.
  void timeout_wake(Tcb* t);
  void expire_timers();
  friend void detail::fiber_boot(Tcb*);

  ContextBackend backend_;
  Context sched_ctx_;
  StackPool stacks_;
  TcbQueue run_q_[kNumPriorities];
  std::vector<WqEntry> wq_;
  std::vector<WqEntry> generic_wq_;
  std::vector<Tcb*> zombies_;   ///< finished, unjoined, undetached
  Tcb* current_ = nullptr;
  Tcb* pending_reap_ = nullptr; ///< finished detached fiber awaiting reap
  std::uint32_t next_id_ = 1;
  std::uint32_t active_ = 0;    ///< fibers not yet Finished
  std::uint32_t blocked_ = 0;   ///< fibers parked on wait lists / WQ
  std::uint32_t ps_parked_ = 0; ///< fibers queued with poll_active
  std::uint32_t msg_waiting_ = 0;
  bool running_ = false;
  SchedulerStats stats_;
  TimerWheel timers_;
  ClockFn clock_fn_ = nullptr;
  void* clock_ctx_ = nullptr;
  WqGroupPoll wq_group_poll_ = nullptr;
  void* wq_group_ctx_ = nullptr;
  void (*idle_hook_)(void*) = nullptr;
  void* idle_ctx_ = nullptr;
  Trace* trace_ = nullptr;
  ScheduleController* ctrl_ = nullptr;
  struct TlsKey {
    bool used = false;
    void (*dtor)(void*) = nullptr;
  };
  std::array<TlsKey, kMaxTlsKeys> tls_keys_{};
};

}  // namespace lwt
