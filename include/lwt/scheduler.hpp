// lwt/scheduler.hpp — the user-level thread scheduler.
//
// One Scheduler runs per simulated Chant "process". Since the M:N rework
// it owns a pool of OS worker threads (default 1 — the paper's original
// 1:1 world — scaled via set_workers()/CHANT_WORKERS): each worker has
// its own run queue and schedules fibers independently, stealing from
// its peers when it idles. Fibers swap back into the owning worker's
// scheduler context at every scheduling point, which is exactly the
// structure the paper's polling algorithms assume:
//
//  * Thread polls (TP, paper Fig. 5): the waiting thread stays runnable
//    and re-tests its own request every time it is rescheduled — a full
//    context switch per failed test.
//  * Scheduler polls, waiting queue (WQ, paper Fig. 6): the thread parks
//    on a scheduler-owned waiting queue; the scheduler tests *every*
//    parked request at *every* scheduling point (NX-style, one msgtest
//    per request — or a single group test via set_wq_group_poll, the
//    MPI msgtestany ablation of §4.2).
//  * Scheduler polls, partial switch (PS): the request lives in the TCB;
//    when the TCB reaches the head of the run queue the scheduler tests
//    it *before* restoring the context ("partial switch") and rotates
//    the TCB to the back if the message has not arrived.
//
// Concurrency structure (multi-worker mode; see DESIGN.md §10):
//  * each worker's run queues are guarded by that worker's spinlock —
//    the local push/pop hot path never touches shared state;
//  * one scheduler-wide *wait lock* guards every blocked-fiber structure
//    (wait lists, WQ/generic entries, the timer wheel, zombies, TLS
//    keys, join bookkeeping). A parking fiber holds it across its
//    context switch — the worker releases it after the switch — so a
//    waker can never enqueue a fiber that is still running;
//  * cross-thread ready() calls (timer threads, foreign OS threads) are
//    routed through a mutex-guarded injection queue that workers drain
//    at every scheduling point;
//  * idle workers steal the oldest non-PS fiber from a peer, or park on
//    a condition variable (one "spinner" stays hot whenever pollable
//    waits or timers exist, preserving message-completion latency).
//
// Determinism contract: installing a ScheduleController or a WQ group
// poll hook forces workers=1, so every sim schedule replays bit-exactly.
//
// The scheduler also keeps the event counters the paper reports:
// complete context switches, partial-switch tests, per-entry WQ tests,
// and the average number of threads waiting on outstanding requests —
// plus the M:N counters (steals, injections, parks, local hits).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "lwt/schedctrl.hpp"
#include "lwt/spinlock.hpp"
#include "lwt/thread.hpp"
#include "lwt/timer.hpp"
#include "lwt/trace.hpp"

namespace lwt {

/// Thrown at cancellation points of a thread that has been cancelled;
/// unwinds the fiber stack (running RAII destructors) back to the fiber
/// bootstrap, which records kCanceled as the thread's return value.
struct CancelInterrupt {};

/// Maximum worker threads per scheduler (backstop; CHANT_WORKERS and
/// set_workers() are clamped to it).
inline constexpr unsigned kMaxWorkers = 64;

/// Event counters (paper Tables 3–5 columns and Figures 11–13).
struct SchedulerStats {
  std::uint64_t spawns = 0;
  std::uint64_t full_switches = 0;      ///< fiber contexts restored
  std::uint64_t yields = 0;             ///< voluntary yield() calls
  std::uint64_t partial_poll_tests = 0; ///< PS tests done before restore
  std::uint64_t wq_poll_tests = 0;      ///< per-entry WQ tests
  std::uint64_t sched_points = 0;       ///< scheduling decisions taken
  std::uint64_t idle_spins = 0;         ///< points with nothing runnable
  // Waiting-thread sampling (Figure 13): at each scheduling point the
  // number of threads inside a blocking message wait is accumulated.
  std::uint64_t waiting_samples = 0;
  std::uint64_t waiting_sum = 0;
  // Timer wheel (deadline/cancellation layer).
  std::uint64_t timers_armed = 0;   ///< timers ever armed
  std::uint64_t timer_fires = 0;    ///< timers that expired and woke a thread
  std::uint64_t timer_cancels = 0;  ///< timers disarmed before firing
  std::uint64_t sleeps = 0;         ///< sleep_for / sleep_until calls
  // M:N worker pool (DESIGN.md §10).
  std::uint64_t steals = 0;      ///< fibers taken from a peer's run queue
  std::uint64_t injections = 0;  ///< cross-thread ready() via injection queue
  std::uint64_t parks = 0;       ///< idle workers that condvar-parked
  std::uint64_t local_hits = 0;  ///< pick_next served from the own queue

  double avg_waiting() const noexcept {
    return waiting_samples == 0
               ? 0.0
               : static_cast<double>(waiting_sum) /
                     static_cast<double>(waiting_samples);
  }
};

class Scheduler {
 public:
  explicit Scheduler(ContextBackend backend = default_backend());
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;
  ~Scheduler();

  /// Runs `entry(arg)` as the main fiber (id 1) and schedules until every
  /// fiber has finished, spinning up workers()-1 extra OS threads for the
  /// duration. Returns the main fiber's return value. Must be called on
  /// the OS thread that owns this scheduler; not reentrant.
  void* run_main(EntryFn entry, void* arg, const ThreadAttr& attr = {});

  /// The scheduler owning the calling OS thread (null outside run_main).
  static Scheduler* current();
  /// The currently running fiber (null outside a fiber).
  static Tcb* self();

  // ---- worker pool ----

  /// Sets the worker-thread count for the next run_main: 0 (the default)
  /// resolves CHANT_WORKERS at run time, n >= 1 is used as given
  /// (clamped to kMaxWorkers). A non-null ScheduleController or WQ
  /// group-poll hook overrides this to 1 — the determinism contract.
  void set_workers(unsigned n) noexcept { requested_workers_ = n; }

  /// Effective worker count of the current (or last) run; the requested
  /// resolution before the first run.
  unsigned workers() const noexcept { return nworkers_; }

  /// CHANT_WORKERS resolution: unset/empty -> 1 (today's single-core
  /// behavior); "0" -> std::thread::hardware_concurrency(); otherwise
  /// the value, clamped to [1, kMaxWorkers].
  static unsigned default_workers() noexcept;

  /// Hooks run at the start/end of every *extra* worker OS thread (not
  /// the run_main caller), e.g. so a layered runtime can seed its own
  /// thread-locals. Install before run_main.
  using WorkerHook = void (*)(void* ctx);
  void set_worker_hooks(WorkerHook start, WorkerHook stop, void* ctx) {
    worker_start_hook_ = start;
    worker_stop_hook_ = stop;
    worker_hook_ctx_ = ctx;
  }

  // ---- fiber-context operations (call from inside a fiber) ----

  /// Creates a new ready thread. The returned Tcb stays valid until the
  /// thread is joined (or, if detached, until it finishes).
  Tcb* spawn(EntryFn entry, void* arg, const ThreadAttr& attr = {});

  /// Gives up the processor to the next ready thread. Cancellation point.
  void yield();

  /// Terminates the calling thread with `retval`.
  [[noreturn]] void exit_current(void* retval);

  /// Waits for `t` to finish; returns its retval (kCanceled if it was
  /// cancelled). Exactly one thread may join a given thread.
  /// Cancellation point.
  void* join(Tcb* t);

  /// Timed join: waits until `t` finishes or the (absolute, scheduler
  /// clock) deadline passes. On success stores the return value through
  /// `retval` (if non-null), reaps `t`, and returns true. On timeout
  /// returns false and relinquishes the join claim — `t` stays joinable
  /// by anyone, exactly as if this call had never been made.
  /// Cancellation point.
  bool join_until(Tcb* t, std::uint64_t deadline_ns, void** retval);

  /// Marks `t` detached: its resources are reclaimed when it finishes.
  void detach(Tcb* t);

  /// Requests deferred cancellation of `t`, waking it from any
  /// cancellable wait (yield/join/sync/poll waits). Safe from foreign
  /// OS threads (the wake is routed through the injection queue).
  void cancel(Tcb* t);

  /// Enables/disables acting on cancellation for the calling thread;
  /// returns the previous setting.
  bool set_cancel_enabled(bool enabled);

  /// Cancellation point: throws CancelInterrupt if cancellation is
  /// pending and enabled for the calling thread.
  void check_cancel();

  /// Changes a thread's priority. If `t` is queued on a run queue it is
  /// requeued at the new level immediately; otherwise the change takes
  /// effect at its next enqueue.
  void set_priority(Tcb* t, int priority);

  // ---- blocking-wait building blocks (used by sync.cpp and Chant) ----

  /// RAII hold on the scheduler's wait lock — the lock every sync
  /// primitive's check-then-park sequence must run under so a wake from
  /// another worker cannot slip between the check and the park. The
  /// guard-taking park_on overload *transfers* the lock to the
  /// scheduler, which releases it only after the fiber has switched out.
  class SyncGuard {
   public:
    explicit SyncGuard(Scheduler& s) : s_(s), owned_(true) {
      s_.wait_mu_.lock();
    }
    ~SyncGuard() {
      if (owned_) s_.wait_mu_.unlock();
    }
    SyncGuard(const SyncGuard&) = delete;
    SyncGuard& operator=(const SyncGuard&) = delete;

    void lock() {
      s_.wait_mu_.lock();
      owned_ = true;
    }
    void unlock() {
      owned_ = false;
      s_.wait_mu_.unlock();
    }
    bool owns() const noexcept { return owned_; }

   private:
    friend class Scheduler;
    /// The scheduler takes over release (parking path).
    void disown() noexcept { owned_ = false; }

    Scheduler& s_;
    bool owned_;
  };

  /// Parks the calling fiber on `wl` and switches to the scheduler.
  /// The fiber resumes when another thread moves it back to a run
  /// queue via wake_one/wake_all/ready(), or when cancelled.
  void park_on(TcbQueue& wl);

  /// As park_on, but the caller already holds the wait lock through `g`
  /// (checked its predicate under it). Returns with `g` released.
  void park_on(TcbQueue& wl, SyncGuard& g);

  /// Timed park: as park_on, but also arms a timer-wheel entry. Returns
  /// true if woken by wake_one/wake_all/ready (or cancellation — the
  /// caller's check_cancel() acts on that), false if the deadline fired
  /// first (the fiber has been removed from `wl`). kNoDeadline waits
  /// forever; an already-passed deadline returns false without parking.
  bool park_on_until(TcbQueue& wl, std::uint64_t deadline_ns);

  /// Guard-holding variant; returns with `g` released on every path.
  bool park_on_until(TcbQueue& wl, std::uint64_t deadline_ns, SyncGuard& g);

  /// Moves the first thread parked on `wl` (if any) to a run queue.
  Tcb* wake_one(TcbQueue& wl);
  /// Variant for callers already under the wait lock (`g` stays held).
  Tcb* wake_one(TcbQueue& wl, SyncGuard& g);
  /// Wakes every thread parked on `wl`; returns how many.
  std::size_t wake_all(TcbQueue& wl);
  std::size_t wake_all(TcbQueue& wl, SyncGuard& g);
  /// Makes an unqueued Blocked thread ready. Safe from any OS thread:
  /// callers outside this scheduler's workers are routed through the
  /// injection queue (and counted in stats().injections).
  void ready(Tcb* t);

  // ---- time & timers ----

  /// Clock override (nanoseconds, monotone non-decreasing). Null (the
  /// default) reads std::chrono::steady_clock; the sim harness installs
  /// its VirtualClock here so timed waits expire under controller-driven
  /// virtual time and timeout interleavings replay deterministically.
  using ClockFn = std::uint64_t (*)(void* ctx);
  void set_clock(ClockFn fn, void* ctx) noexcept {
    clock_fn_ = fn;
    clock_ctx_ = ctx;
  }

  /// Current scheduler time in nanoseconds.
  std::uint64_t now() const;

  /// now() + delta, saturating at kNoDeadline (which means "forever").
  std::uint64_t deadline_after(std::uint64_t delta_ns) const;

  /// Sleeps the calling fiber until the (absolute) deadline: parked on
  /// the timer wheel, no polling, no run-queue presence — other fibers
  /// (and the idle backoff) run undisturbed. Cancellation point.
  void sleep_until(std::uint64_t deadline_ns);
  void sleep_for(std::uint64_t ns);

  /// Armed (not yet fired/disarmed) timer-wheel entries; introspection
  /// for tests and the no-spin acceptance checks.
  std::size_t armed_timers() const noexcept {
    return timers_live_.load(std::memory_order_relaxed);
  }

  /// Earliest armed timer deadline (scheduler clock), kNoDeadline when
  /// none. Conservative snapshot — used by transport idle hooks to
  /// bound how long an idle process may block on the wire doorbell
  /// without delaying a due timer.
  std::uint64_t next_timer_deadline() const noexcept;

  // ---- message-wait primitives (the three polling policies) ----
  //
  // Each takes an optional absolute deadline (scheduler clock,
  // kNoDeadline = wait forever) and returns true if the request
  // completed, false if the deadline fired first. Completion wins a
  // race with the deadline: the request is re-tested once after a
  // timer wakeup before the wait reports failure.

  /// Thread-polls wait: full switch per failed test (paper Fig. 5).
  /// TP threads never park, so the deadline is checked against the
  /// clock on each failed test instead of arming a timer.
  bool poll_block_tp(const PollRequest& req,
                     std::uint64_t deadline_ns = kNoDeadline);
  /// Waiting-queue wait: scheduler tests all parked requests at every
  /// scheduling point (paper Fig. 6).
  bool poll_block_wq(const PollRequest& req,
                     std::uint64_t deadline_ns = kNoDeadline);
  /// Partial-switch wait: request parked in the TCB, tested just before
  /// the context would be restored.
  bool poll_block_ps(const PollRequest& req,
                     std::uint64_t deadline_ns = kNoDeadline);

  /// Policy-independent parked wait: the request joins a generic list
  /// the scheduler tests at every scheduling point (and while idle),
  /// regardless of any group-poll hook. The waiter consumes no CPU and
  /// cannot be starved by priorities — used for runtime-internal waits
  /// like the cross-process termination protocol.
  bool poll_block_generic(const PollRequest& req,
                          std::uint64_t deadline_ns = kNoDeadline);

  /// Replaces WQ's per-entry scan with one group test per scheduling
  /// point (msgtestany ablation). The hook must call wq_complete() for
  /// each request it finds complete and return how many it completed.
  /// Installing a hook forces workers=1 (the hook's bookkeeping is not
  /// required to be thread-safe).
  using WqGroupPoll = std::size_t (*)(void* hook_ctx, Scheduler& sched);
  void set_wq_group_poll(WqGroupPoll hook, void* hook_ctx);

  /// For group-poll hooks: readies the WQ-parked fiber whose PollRequest
  /// ctx equals `req_ctx`. Returns false if no such fiber is parked.
  bool wq_complete(void* req_ctx);

  /// Event-driven wake for a parked poller (Selector completion path):
  /// readies the fiber whose PollRequest ctx equals `req_ctx`, whichever
  /// of the WQ or generic wait lists it parked on. Safe from any OS
  /// thread — foreign callers are routed through the inject queue. The
  /// caller must make the request's predicate true *before* calling;
  /// poll_block_wq/poll_block_generic re-test under wait_mu_ at park
  /// time, so the wake survives either race order. Returns false when
  /// no matching fiber is parked (not an error: the fiber saw readiness
  /// before parking, or another waker won the removal).
  bool poll_wake(void* req_ctx);

  /// Called when no thread is runnable (e.g. to back off the CPU while
  /// waiting for another simulated process to send).
  void set_idle_hook(void (*hook)(void*), void* ctx);

  /// Attaches (or detaches, with null) an event trace; see lwt/trace.hpp.
  void set_trace(Trace* trace) noexcept { trace_ = trace; }
  Trace* trace() const noexcept { return trace_; }

  /// Installs (or removes, with null) a schedule controller consulted at
  /// every yield/block/wake decision point; see lwt/schedctrl.hpp. Null
  /// (the default) keeps production behavior and cost. Not owned.
  /// A non-null controller forces workers=1 at the next run_main so the
  /// explored schedule replays deterministically.
  void set_controller(ScheduleController* ctrl) noexcept { ctrl_ = ctrl; }
  ScheduleController* controller() const noexcept { return ctrl_; }

  // ---- thread-local data (pthread_key analogue) ----

  /// Allocates a TLS key; `dtor` (may be null) runs at thread exit on
  /// non-null values. Returns -1 if all keys are in use.
  int key_create(void (*dtor)(void*));
  void key_delete(int key);
  void set_specific(int key, void* value);
  void* get_specific(int key) const;

  // ---- introspection ----

  /// Aggregated counters: per-worker stats summed, plus scheduler-wide
  /// ones (injections). Returns by value — the sum is computed on call.
  SchedulerStats stats() const;
  ContextBackend backend() const noexcept { return backend_; }
  std::uint32_t live_threads() const noexcept {
    return active_.load(std::memory_order_relaxed);
  }
  std::uint32_t msg_waiting_threads() const noexcept {
    return msg_waiting_.load(std::memory_order_relaxed);
  }
  /// Human-readable dump of all known threads (deadlock diagnostics).
  std::string debug_dump() const;

 private:
  struct WqEntry {
    PollRequest req;
    Tcb* tcb;
  };

  /// One scheduling OS thread: its own scheduler context, run queues and
  /// counters. Padded so two workers' hot state never share a line.
  struct alignas(64) Worker {
    Scheduler* sched = nullptr;
    std::uint32_t index = 0;
    Context sched_ctx;                ///< bound to this worker's OS stack
    SpinLock q_mu;                    ///< guards run_q + q_len
    TcbQueue run_q[kNumPriorities];
    std::atomic<std::uint32_t> q_len{0};  ///< total queued (steal gate)
    Tcb* current = nullptr;           ///< fiber running on this worker
    // Post-switch actions: performed by the worker right after a fiber
    // switches out, while the fiber is guaranteed off its stack.
    SpinLock* pending_unlock = nullptr;  ///< wait lock held across a park
    Tcb* pending_enqueue = nullptr;      ///< self-requeue (yield/PS park)
    Tcb* pending_reap = nullptr;         ///< finished detached fiber
    std::uint64_t steal_rng = 0;
    SchedulerStats stats;
    std::thread thr;                  ///< workers[1..] only
  };

  void worker_loop(Worker& w);
  void switch_to(Worker& w, Tcb* t);
  [[noreturn]] void finish_current(void* retval);
  Tcb* pick_next(Worker& w);
  Tcb* try_steal(Worker& w);
  void idle_wait(Worker& w);
  void wq_scan(Worker& w);
  void enqueue_ready(Tcb* t);
  /// enqueue_ready when on a worker of this scheduler, else inject().
  void enqueue_or_inject(Tcb* t);
  void inject(Tcb* t);
  void drain_inject(Worker& w);
  void unpark_one();
  void unpark_all();
  /// Transfers `g` to the scheduler and switches out; the worker
  /// releases the wait lock after the switch completes.
  void park_switch(SyncGuard& g);
  void reap(Tcb* t);
  void run_tls_dtors(Tcb* t);
  /// Wait-lock-held timer ops (callers hold a SyncGuard).
  TimerWheel::TimerId arm_timer(std::uint64_t deadline_ns, Tcb* t);
  void disarm_timer(TimerWheel::TimerId id);
  /// Timer-wheel expiry: wakes `t` from whatever wait parked it, with
  /// Tcb::timed_out set. A stale fire (thread already woken by the real
  /// event) is ignored so a completed wait never reports a timeout.
  /// Called with the wait lock held.
  void timeout_wake(Tcb* t);
  void maybe_expire_timers();
  SchedulerStats& local_stats();

  /// The Worker owning the calling OS thread (null off any worker).
  /// noinline so the thread-local address is re-derived on every call:
  /// fiber code runs before AND after a ctx_swap that may resume it on a
  /// different OS thread, and an inlined TLS access could legally cache
  /// the first thread's slot address across the switch.
  static Worker* this_worker() noexcept;
  static thread_local Worker* tl_worker_;

  friend void detail::fiber_boot(Tcb*);

  ContextBackend backend_;
  StackPool stacks_;  ///< internally locked (multi-worker spawn/reap)

  // ---- worker pool ----
  std::vector<std::unique_ptr<Worker>> workers_;
  unsigned nworkers_ = 1;            ///< effective count for this run
  unsigned requested_workers_ = 0;   ///< set_workers(); 0 = CHANT_WORKERS
  WorkerHook worker_start_hook_ = nullptr;
  WorkerHook worker_stop_hook_ = nullptr;
  void* worker_hook_ctx_ = nullptr;

  /// The wait lock: guards wq_, generic_wq_, timers_, zombies_,
  /// tls_keys_, every TcbQueue wait list, joiner/join_taken/detached and
  /// all Blocked<->Ready transitions. Lock order:
  /// wait_mu_ -> (worker q_mu | inject_mu_ | park_mu_); never reverse.
  mutable SpinLock wait_mu_;

  // Injection queue: cross-thread ready() lands here; drained by every
  // worker at every scheduling point. inject_len_/idle_workers_ use
  // seq_cst so an injector and a parking worker can never miss each
  // other (Dekker-style flag pair).
  SpinLock inject_mu_;
  TcbQueue inject_q_;
  std::atomic<std::uint32_t> inject_len_{0};

  // Worker parking (multi-worker idle).
  std::mutex park_mu_;
  std::condition_variable park_cv_;
  std::atomic<std::uint32_t> idle_workers_{0};
  std::atomic<int> spinner_{-1};  ///< worker index that stays hot, or -1

  std::vector<WqEntry> wq_;          // guarded by wait_mu_
  std::vector<WqEntry> generic_wq_;  // guarded by wait_mu_
  std::vector<Tcb*> zombies_;        // guarded by wait_mu_
  std::atomic<std::uint32_t> wq_len_{0};       ///< mirror of wq_.size()
  std::atomic<std::uint32_t> generic_len_{0};  ///< mirror of generic size

  std::atomic<std::uint32_t> next_id_{1};
  std::atomic<std::uint32_t> active_{0};   ///< fibers not yet Finished
  std::atomic<std::uint32_t> blocked_{0};  ///< parked on wait lists / WQ
  std::atomic<std::uint32_t> ps_parked_{0};///< queued with poll_active
  std::atomic<std::uint32_t> msg_waiting_{0};
  bool running_ = false;

  /// Counters retired from previous runs plus operations performed off
  /// any worker (aggregated into stats()).
  SchedulerStats base_stats_;
  std::atomic<std::uint64_t> injections_{0};

  TimerWheel timers_;  // guarded by wait_mu_
  /// Lock-free mirrors of the wheel (idle gating without the lock).
  std::atomic<std::uint64_t> next_deadline_cache_{kNoDeadline};
  std::atomic<std::size_t> timers_live_{0};

  ClockFn clock_fn_ = nullptr;
  void* clock_ctx_ = nullptr;
  WqGroupPoll wq_group_poll_ = nullptr;
  void* wq_group_ctx_ = nullptr;
  void (*idle_hook_)(void*) = nullptr;
  void* idle_ctx_ = nullptr;
  Trace* trace_ = nullptr;
  ScheduleController* ctrl_ = nullptr;
  struct TlsKey {
    bool used = false;
    void (*dtor)(void*) = nullptr;
  };
  std::array<TlsKey, kMaxTlsKeys> tls_keys_{};  // guarded by wait_mu_
};

}  // namespace lwt
