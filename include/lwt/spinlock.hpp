// lwt/spinlock.hpp — a test-and-test-and-set spinlock.
//
// The scheduler's critical sections (queue pushes, wait-list edits,
// trace records) are tens of instructions, so spinning beats a futex
// round trip; the pause keeps a waiting core polite to its SMT sibling.
// Satisfies Lockable, so std::lock_guard works.
#pragma once

#include <atomic>

namespace lwt {

class SpinLock {
 public:
  SpinLock() = default;
  SpinLock(const SpinLock&) = delete;
  SpinLock& operator=(const SpinLock&) = delete;

  void lock() noexcept {
    while (locked_.exchange(true, std::memory_order_acquire)) {
      while (locked_.load(std::memory_order_relaxed)) {
#if defined(__x86_64__)
        __builtin_ia32_pause();
#endif
      }
    }
  }
  bool try_lock() noexcept {
    return !locked_.exchange(true, std::memory_order_acquire);
  }
  void unlock() noexcept { locked_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> locked_{false};
};

}  // namespace lwt
