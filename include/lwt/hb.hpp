// lwt/hb.hpp — hook points for a layered happens-before checker.
//
// Mirrors lwt/validate.hpp: lwt cannot depend on chant, but chant::hb
// (DESIGN.md §14) needs to observe every fiber lifecycle and
// synchronization event to maintain vector clocks and a wait-for graph.
// A higher layer installs one pointer; every hook site is a single
// acquire load and a predictable branch when no checker is installed,
// so the production (null-controller) cost is effectively zero.
#pragma once

#include <atomic>
#include <cstdint>

namespace lwt {

struct Tcb;
class Scheduler;

/// Observer callbacks for fiber lifecycle and synchronization events.
/// All members must be non-null in an installed table. `self` is the
/// calling fiber; `parent` in thread_spawn may be null (spawn from a
/// foreign OS thread or run_main bootstrap).
struct HbHooks {
  /// `child` was created (by `parent`, when non-null). Establishes the
  /// spawn happens-before edge parent → child.
  void (*thread_spawn)(Tcb* parent, Tcb* child);
  /// `self` is finishing. `detached` fibers are never joined, so their
  /// clock state can be reclaimed immediately.
  void (*thread_exit)(Tcb* self, bool detached);
  /// `self` successfully joined `joinee` (exit → join edge). Called
  /// before the joinee's Tcb is reaped.
  void (*thread_join)(Tcb* self, Tcb* joinee);
  /// `self` now holds `obj` (Mutex / RwLock / Once). Acquire edge plus
  /// ownership tracking for the wait-for graph. `kind` has static
  /// storage duration.
  void (*lock_acquired)(Tcb* self, const void* obj, const char* kind);
  /// `self` released `obj`.
  void (*lock_released)(Tcb* self, const void* obj);
  /// `self` performed a release-flavored operation on `obj` (CondVar
  /// signal/broadcast, Semaphore release, Barrier arrival): publish
  /// self's clock into the object.
  void (*sync_release)(Tcb* self, const void* obj);
  /// `self` completed an acquire-flavored wait on `obj` (CondVar wakeup,
  /// Semaphore acquire, Barrier release): merge the object's clock.
  void (*sync_acquire)(Tcb* self, const void* obj);
  /// `self` is about to block on `obj` (wait-for graph node). `what`
  /// names the site for reports ("lwt::CondVar::wait", ...; static
  /// storage duration). `timed` waits are exempt from deadlock /
  /// lost-wakeup classification (their timer guarantees a wakeup).
  void (*wait_begin)(Tcb* self, const void* obj, const char* what,
                     bool timed);
  /// `self` resumed from the wait announced by wait_begin.
  void (*wait_end)(Tcb* self);
  /// The (single-worker) scheduler `s` found nothing runnable.
  /// `timers_live` and `generic_len` are its live timer and generic-wait
  /// counts; `locally_dead` is the scheduler's own whole-process
  /// deadlock predicate (blocked fibers with nothing pollable left).
  /// Returns true when the checker claims this idle pass — either it
  /// diagnosed a terminal stuck state and recovered (canceled the stuck
  /// fibers), or it is still converging on a world-wide diagnosis and
  /// the caller must hold its local deadlock abort for now.
  bool (*quiesce)(Scheduler* s, std::uint64_t timers_live,
                  std::uint64_t generic_len, bool locally_dead);
  /// The scheduler `s` is about to run a fiber (not idle).
  void (*progress)(Scheduler* s);
};

/// The installed hook table, or null when the checker is off. Written
/// only by chant::hb::enable/disable; read on every hooked operation.
extern std::atomic<const HbHooks*> g_hb_hooks;

inline const HbHooks* hb_hooks() noexcept {
  return g_hb_hooks.load(std::memory_order_acquire);
}

}  // namespace lwt
