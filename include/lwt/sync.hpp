// lwt/sync.hpp — synchronization primitives for fibers.
//
// These block the *fiber*, never the OS thread: a waiting fiber parks on
// the primitive's wait list and the scheduler runs someone else. All
// primitives are scheduler-local (shared-memory synchronization within
// one simulated process), exactly the scope the paper's Figure 2 asks of
// the underlying lightweight thread package. Cross-process coordination
// goes through messages (nx/chant), never through these.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "lwt/scheduler.hpp"
#include "lwt/thread.hpp"

namespace lwt {

/// Mutual exclusion between fibers of one scheduler. Non-recursive.
/// Mesa-style: unlock wakes one waiter, which re-competes for the lock.
class Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock();
  [[nodiscard]] bool try_lock();
  /// As lock(), but gives up when the (absolute, scheduler-clock)
  /// deadline passes first; false = timed out, lock not held. A free
  /// lock is acquired even with an already-passed deadline. The wait is
  /// timer-wheel-parked (no polling). Cancellation point.
  [[nodiscard]] bool try_lock_until(std::uint64_t deadline_ns);
  [[nodiscard]] bool try_lock_for(std::uint64_t ns);
  void unlock();
  bool locked() const noexcept {
    return owner_.load(std::memory_order_relaxed) != nullptr;
  }
  Tcb* owner() const noexcept {
    return owner_.load(std::memory_order_relaxed);
  }

 private:
  friend class CondVar;
  /// Ownership transitions happen under the scheduler's wait lock; the
  /// atomic makes the lock-free introspection reads above clean.
  std::atomic<Tcb*> owner_{nullptr};
  TcbQueue waiters_;
};

/// RAII lock for Mutex (usable with CondVar::wait).
class LockGuard {
 public:
  explicit LockGuard(Mutex& m) : m_(m) { m_.lock(); }
  ~LockGuard() { m_.unlock(); }
  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;
  Mutex& mutex() noexcept { return m_; }

 private:
  Mutex& m_;
};

/// Condition variable for fibers. As with pthreads, a waiter must hold
/// the associated mutex; wakeups are Mesa-style (re-check the predicate).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(Mutex& m);
  template <typename Pred>
  void wait(Mutex& m, Pred pred) {
    while (!pred()) wait(m);
  }
  /// Timed wait. Returns false on timeout; the mutex is reacquired
  /// either way (pthread_cond_timedwait semantics — the predicate may
  /// still have become true, re-check it). Cancellation point.
  [[nodiscard]] bool wait_until(Mutex& m, std::uint64_t deadline_ns);
  template <typename Pred>
  bool wait_until(Mutex& m, std::uint64_t deadline_ns, Pred pred) {
    while (!pred()) {
      if (!wait_until(m, deadline_ns)) return pred();
    }
    return true;
  }
  void signal();
  void broadcast();
  std::size_t waiting() const noexcept { return waiters_.size(); }

 private:
  TcbQueue waiters_;
};

/// Counting semaphore for fibers.
class Semaphore {
 public:
  explicit Semaphore(std::int64_t initial = 0) : count_(initial) {}
  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  void acquire();
  [[nodiscard]] bool try_acquire();
  /// Timed acquire; false = deadline passed without a unit available.
  [[nodiscard]] bool try_acquire_until(std::uint64_t deadline_ns);
  void release(std::int64_t n = 1);
  std::int64_t value() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }

 private:
  /// Modified under the scheduler's wait lock; atomic for value().
  std::atomic<std::int64_t> count_;
  TcbQueue waiters_;
};

/// Rendezvous barrier for a fixed party of fibers. The last arriver
/// releases everyone; reusable across generations.
class Barrier {
 public:
  explicit Barrier(std::size_t parties) : parties_(parties) {}
  Barrier(const Barrier&) = delete;
  Barrier& operator=(const Barrier&) = delete;

  /// Returns true for exactly one fiber per generation (the "serial"
  /// arriver), mirroring PTHREAD_BARRIER_SERIAL_THREAD.
  bool arrive_and_wait();

 private:
  std::size_t parties_;
  std::size_t arrived_ = 0;
  std::uint64_t generation_ = 0;
  TcbQueue waiters_;
};

}  // namespace lwt
