// lwt/lwt.hpp — umbrella header and C++ conveniences for the lwt
// lightweight-thread substrate (the role Quickthreads / draft-6 pthreads
// play in the paper's Figure 1).
#pragma once

#include <memory>
#include <utility>

#include "lwt/context.hpp"
#include "lwt/rwlock.hpp"
#include "lwt/scheduler.hpp"
#include "lwt/stack.hpp"
#include "lwt/sync.hpp"
#include "lwt/timer.hpp"
#include "lwt/trace.hpp"
#include "lwt/thread.hpp"

namespace lwt {

namespace detail {
template <typename F>
void* callable_tramp(void* p) {
  std::unique_ptr<F> f(static_cast<F*>(p));
  (*f)();
  return nullptr;
}
}  // namespace detail

/// Spawns a fiber running any callable on the current scheduler.
/// The callable is heap-allocated and destroyed when the fiber finishes.
template <typename F>
Tcb* go(F&& f, const ThreadAttr& attr = {}) {
  using Fn = std::decay_t<F>;
  auto owned = std::make_unique<Fn>(std::forward<F>(f));
  Tcb* t = Scheduler::current()->spawn(&detail::callable_tramp<Fn>,
                                       owned.get(), attr);
  owned.release();  // ownership passed to the trampoline
  return t;
}

/// Runs `f` as the main fiber of a fresh scheduler on the calling OS
/// thread; returns when every fiber has finished.
template <typename F>
void run(F&& f, ContextBackend backend = default_backend()) {
  Scheduler s(backend);
  using Fn = std::decay_t<F>;
  Fn fn(std::forward<F>(f));
  s.run_main(
      [](void* p) -> void* {
        (*static_cast<Fn*>(p))();
        return nullptr;
      },
      &fn);
}

/// Convenience forwarders operating on the calling fiber's scheduler.
inline void yield() { Scheduler::current()->yield(); }
inline Tcb* self() { return Scheduler::self(); }
inline void* join(Tcb* t) { return Scheduler::current()->join(t); }
inline std::uint64_t now() { return Scheduler::current()->now(); }
inline void sleep_for(std::uint64_t ns) {
  Scheduler::current()->sleep_for(ns);
}
inline void sleep_until(std::uint64_t deadline_ns) {
  Scheduler::current()->sleep_until(deadline_ns);
}

}  // namespace lwt
