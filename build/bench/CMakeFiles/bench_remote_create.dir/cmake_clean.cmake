file(REMOVE_RECURSE
  "CMakeFiles/bench_remote_create.dir/bench_remote_create.cpp.o"
  "CMakeFiles/bench_remote_create.dir/bench_remote_create.cpp.o.d"
  "bench_remote_create"
  "bench_remote_create.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_remote_create.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
