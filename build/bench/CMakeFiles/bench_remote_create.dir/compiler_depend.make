# Empty compiler generated dependencies file for bench_remote_create.
# This may be replaced when dependencies are built.
