file(REMOVE_RECURSE
  "CMakeFiles/bench_rsr_latency.dir/bench_rsr_latency.cpp.o"
  "CMakeFiles/bench_rsr_latency.dir/bench_rsr_latency.cpp.o.d"
  "bench_rsr_latency"
  "bench_rsr_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rsr_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
