file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_polling_beta100.dir/bench_table3_polling_beta100.cpp.o"
  "CMakeFiles/bench_table3_polling_beta100.dir/bench_table3_polling_beta100.cpp.o.d"
  "bench_table3_polling_beta100"
  "bench_table3_polling_beta100.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_polling_beta100.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
