# Empty dependencies file for bench_table3_polling_beta100.
# This may be replaced when dependencies are built.
