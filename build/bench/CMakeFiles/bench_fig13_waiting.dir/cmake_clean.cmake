file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_waiting.dir/bench_fig13_waiting.cpp.o"
  "CMakeFiles/bench_fig13_waiting.dir/bench_fig13_waiting.cpp.o.d"
  "bench_fig13_waiting"
  "bench_fig13_waiting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_waiting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
