# Empty dependencies file for bench_fig13_waiting.
# This may be replaced when dependencies are built.
