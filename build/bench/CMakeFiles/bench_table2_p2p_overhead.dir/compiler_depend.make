# Empty compiler generated dependencies file for bench_table2_p2p_overhead.
# This may be replaced when dependencies are built.
