# Empty compiler generated dependencies file for bench_table5_polling_beta0.
# This may be replaced when dependencies are built.
