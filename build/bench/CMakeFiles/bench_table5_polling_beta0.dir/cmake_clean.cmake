file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_polling_beta0.dir/bench_table5_polling_beta0.cpp.o"
  "CMakeFiles/bench_table5_polling_beta0.dir/bench_table5_polling_beta0.cpp.o.d"
  "bench_table5_polling_beta0"
  "bench_table5_polling_beta0.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_polling_beta0.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
