file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_testany.dir/bench_ablation_testany.cpp.o"
  "CMakeFiles/bench_ablation_testany.dir/bench_ablation_testany.cpp.o.d"
  "bench_ablation_testany"
  "bench_ablation_testany.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_testany.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
