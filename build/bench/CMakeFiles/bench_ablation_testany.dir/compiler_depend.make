# Empty compiler generated dependencies file for bench_ablation_testany.
# This may be replaced when dependencies are built.
