# Empty dependencies file for bench_ablation_addressing.
# This may be replaced when dependencies are built.
