file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_addressing.dir/bench_ablation_addressing.cpp.o"
  "CMakeFiles/bench_ablation_addressing.dir/bench_ablation_addressing.cpp.o.d"
  "bench_ablation_addressing"
  "bench_ablation_addressing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_addressing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
