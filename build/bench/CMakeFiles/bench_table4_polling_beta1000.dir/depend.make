# Empty dependencies file for bench_table4_polling_beta1000.
# This may be replaced when dependencies are built.
