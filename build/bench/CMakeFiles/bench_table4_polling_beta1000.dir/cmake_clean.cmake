file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_polling_beta1000.dir/bench_table4_polling_beta1000.cpp.o"
  "CMakeFiles/bench_table4_polling_beta1000.dir/bench_table4_polling_beta1000.cpp.o.d"
  "bench_table4_polling_beta1000"
  "bench_table4_polling_beta1000.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_polling_beta1000.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
