#----------------------------------------------------------------
# Generated CMake target import file for configuration "RelWithDebInfo".
#----------------------------------------------------------------

# Commands may need to know the format version.
set(CMAKE_IMPORT_FILE_VERSION 1)

# Import target "chant::lwt" for configuration "RelWithDebInfo"
set_property(TARGET chant::lwt APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(chant::lwt PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "ASM;CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/liblwt.a"
  )

list(APPEND _cmake_import_check_targets chant::lwt )
list(APPEND _cmake_import_check_files_for_chant::lwt "${_IMPORT_PREFIX}/lib/liblwt.a" )

# Import target "chant::nx" for configuration "RelWithDebInfo"
set_property(TARGET chant::nx APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(chant::nx PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libnx.a"
  )

list(APPEND _cmake_import_check_targets chant::nx )
list(APPEND _cmake_import_check_files_for_chant::nx "${_IMPORT_PREFIX}/lib/libnx.a" )

# Import target "chant::chant" for configuration "RelWithDebInfo"
set_property(TARGET chant::chant APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(chant::chant PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libchant.a"
  )

list(APPEND _cmake_import_check_targets chant::chant )
list(APPEND _cmake_import_check_files_for_chant::chant "${_IMPORT_PREFIX}/lib/libchant.a" )

# Import target "chant::harness" for configuration "RelWithDebInfo"
set_property(TARGET chant::harness APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(chant::harness PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libharness.a"
  )

list(APPEND _cmake_import_check_targets chant::harness )
list(APPEND _cmake_import_check_files_for_chant::harness "${_IMPORT_PREFIX}/lib/libharness.a" )

# Commands beyond this point should not need to know the version.
set(CMAKE_IMPORT_FILE_VERSION)
