file(REMOVE_RECURSE
  "CMakeFiles/rpc_services.dir/rpc_services.cpp.o"
  "CMakeFiles/rpc_services.dir/rpc_services.cpp.o.d"
  "rpc_services"
  "rpc_services.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpc_services.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
