# Empty compiler generated dependencies file for rpc_services.
# This may be replaced when dependencies are built.
