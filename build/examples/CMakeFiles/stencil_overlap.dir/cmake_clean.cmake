file(REMOVE_RECURSE
  "CMakeFiles/stencil_overlap.dir/stencil_overlap.cpp.o"
  "CMakeFiles/stencil_overlap.dir/stencil_overlap.cpp.o.d"
  "stencil_overlap"
  "stencil_overlap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stencil_overlap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
