file(REMOVE_RECURSE
  "CMakeFiles/opus_sda.dir/opus_sda.cpp.o"
  "CMakeFiles/opus_sda.dir/opus_sda.cpp.o.d"
  "opus_sda"
  "opus_sda.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opus_sda.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
