# Empty dependencies file for opus_sda.
# This may be replaced when dependencies are built.
