file(REMOVE_RECURSE
  "CMakeFiles/pingpong.dir/pingpong.cpp.o"
  "CMakeFiles/pingpong.dir/pingpong.cpp.o.d"
  "pingpong"
  "pingpong.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pingpong.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
