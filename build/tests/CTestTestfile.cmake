# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/lwt_context_test[1]_include.cmake")
include("/root/repo/build/tests/lwt_stack_test[1]_include.cmake")
include("/root/repo/build/tests/lwt_scheduler_test[1]_include.cmake")
include("/root/repo/build/tests/lwt_sync_test[1]_include.cmake")
include("/root/repo/build/tests/lwt_rwlock_test[1]_include.cmake")
include("/root/repo/build/tests/lwt_trace_test[1]_include.cmake")
include("/root/repo/build/tests/lwt_tls_cancel_test[1]_include.cmake")
include("/root/repo/build/tests/lwt_poll_test[1]_include.cmake")
include("/root/repo/build/tests/nx_matching_test[1]_include.cmake")
include("/root/repo/build/tests/nx_protocol_test[1]_include.cmake")
include("/root/repo/build/tests/nx_machine_test[1]_include.cmake")
include("/root/repo/build/tests/nx_group_test[1]_include.cmake")
include("/root/repo/build/tests/nx_property_test[1]_include.cmake")
include("/root/repo/build/tests/chant_tagcodec_test[1]_include.cmake")
include("/root/repo/build/tests/chant_p2p_test[1]_include.cmake")
include("/root/repo/build/tests/chant_policy_test[1]_include.cmake")
include("/root/repo/build/tests/chant_rsr_test[1]_include.cmake")
include("/root/repo/build/tests/chant_async_rsr_test[1]_include.cmake")
include("/root/repo/build/tests/chant_remote_test[1]_include.cmake")
include("/root/repo/build/tests/chant_sda_test[1]_include.cmake")
include("/root/repo/build/tests/chant_capi_test[1]_include.cmake")
include("/root/repo/build/tests/chant_capi_sync_test[1]_include.cmake")
include("/root/repo/build/tests/chant_mailbox_collective_test[1]_include.cmake")
include("/root/repo/build/tests/chant_multiprocess_test[1]_include.cmake")
include("/root/repo/build/tests/failure_injection_test[1]_include.cmake")
include("/root/repo/build/tests/stress_test[1]_include.cmake")
include("/root/repo/build/tests/chant_property_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
