# Empty dependencies file for lwt_trace_test.
# This may be replaced when dependencies are built.
