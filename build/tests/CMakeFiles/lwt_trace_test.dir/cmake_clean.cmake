file(REMOVE_RECURSE
  "CMakeFiles/lwt_trace_test.dir/lwt_trace_test.cpp.o"
  "CMakeFiles/lwt_trace_test.dir/lwt_trace_test.cpp.o.d"
  "lwt_trace_test"
  "lwt_trace_test.pdb"
  "lwt_trace_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lwt_trace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
