file(REMOVE_RECURSE
  "CMakeFiles/chant_remote_test.dir/chant_remote_test.cpp.o"
  "CMakeFiles/chant_remote_test.dir/chant_remote_test.cpp.o.d"
  "chant_remote_test"
  "chant_remote_test.pdb"
  "chant_remote_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chant_remote_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
