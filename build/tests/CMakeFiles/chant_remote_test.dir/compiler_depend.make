# Empty compiler generated dependencies file for chant_remote_test.
# This may be replaced when dependencies are built.
