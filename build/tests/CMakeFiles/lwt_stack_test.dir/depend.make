# Empty dependencies file for lwt_stack_test.
# This may be replaced when dependencies are built.
