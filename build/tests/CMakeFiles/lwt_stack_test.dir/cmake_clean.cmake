file(REMOVE_RECURSE
  "CMakeFiles/lwt_stack_test.dir/lwt_stack_test.cpp.o"
  "CMakeFiles/lwt_stack_test.dir/lwt_stack_test.cpp.o.d"
  "lwt_stack_test"
  "lwt_stack_test.pdb"
  "lwt_stack_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lwt_stack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
