# Empty compiler generated dependencies file for chant_property_test.
# This may be replaced when dependencies are built.
