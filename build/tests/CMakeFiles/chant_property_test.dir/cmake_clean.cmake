file(REMOVE_RECURSE
  "CMakeFiles/chant_property_test.dir/chant_property_test.cpp.o"
  "CMakeFiles/chant_property_test.dir/chant_property_test.cpp.o.d"
  "chant_property_test"
  "chant_property_test.pdb"
  "chant_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chant_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
