file(REMOVE_RECURSE
  "CMakeFiles/chant_rsr_test.dir/chant_rsr_test.cpp.o"
  "CMakeFiles/chant_rsr_test.dir/chant_rsr_test.cpp.o.d"
  "chant_rsr_test"
  "chant_rsr_test.pdb"
  "chant_rsr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chant_rsr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
