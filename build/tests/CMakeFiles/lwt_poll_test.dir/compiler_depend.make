# Empty compiler generated dependencies file for lwt_poll_test.
# This may be replaced when dependencies are built.
