file(REMOVE_RECURSE
  "CMakeFiles/lwt_poll_test.dir/lwt_poll_test.cpp.o"
  "CMakeFiles/lwt_poll_test.dir/lwt_poll_test.cpp.o.d"
  "lwt_poll_test"
  "lwt_poll_test.pdb"
  "lwt_poll_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lwt_poll_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
