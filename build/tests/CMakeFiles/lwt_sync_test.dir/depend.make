# Empty dependencies file for lwt_sync_test.
# This may be replaced when dependencies are built.
