file(REMOVE_RECURSE
  "CMakeFiles/lwt_sync_test.dir/lwt_sync_test.cpp.o"
  "CMakeFiles/lwt_sync_test.dir/lwt_sync_test.cpp.o.d"
  "lwt_sync_test"
  "lwt_sync_test.pdb"
  "lwt_sync_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lwt_sync_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
