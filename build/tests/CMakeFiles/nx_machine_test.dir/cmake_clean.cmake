file(REMOVE_RECURSE
  "CMakeFiles/nx_machine_test.dir/nx_machine_test.cpp.o"
  "CMakeFiles/nx_machine_test.dir/nx_machine_test.cpp.o.d"
  "nx_machine_test"
  "nx_machine_test.pdb"
  "nx_machine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nx_machine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
