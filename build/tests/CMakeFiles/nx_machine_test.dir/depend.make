# Empty dependencies file for nx_machine_test.
# This may be replaced when dependencies are built.
