# Empty dependencies file for chant_capi_test.
# This may be replaced when dependencies are built.
