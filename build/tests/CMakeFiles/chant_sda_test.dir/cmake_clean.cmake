file(REMOVE_RECURSE
  "CMakeFiles/chant_sda_test.dir/chant_sda_test.cpp.o"
  "CMakeFiles/chant_sda_test.dir/chant_sda_test.cpp.o.d"
  "chant_sda_test"
  "chant_sda_test.pdb"
  "chant_sda_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chant_sda_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
