# Empty dependencies file for chant_sda_test.
# This may be replaced when dependencies are built.
