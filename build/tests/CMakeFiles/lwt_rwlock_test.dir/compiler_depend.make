# Empty compiler generated dependencies file for lwt_rwlock_test.
# This may be replaced when dependencies are built.
