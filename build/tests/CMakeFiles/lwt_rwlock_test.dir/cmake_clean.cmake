file(REMOVE_RECURSE
  "CMakeFiles/lwt_rwlock_test.dir/lwt_rwlock_test.cpp.o"
  "CMakeFiles/lwt_rwlock_test.dir/lwt_rwlock_test.cpp.o.d"
  "lwt_rwlock_test"
  "lwt_rwlock_test.pdb"
  "lwt_rwlock_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lwt_rwlock_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
