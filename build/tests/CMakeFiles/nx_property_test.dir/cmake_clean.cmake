file(REMOVE_RECURSE
  "CMakeFiles/nx_property_test.dir/nx_property_test.cpp.o"
  "CMakeFiles/nx_property_test.dir/nx_property_test.cpp.o.d"
  "nx_property_test"
  "nx_property_test.pdb"
  "nx_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nx_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
