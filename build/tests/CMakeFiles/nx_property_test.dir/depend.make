# Empty dependencies file for nx_property_test.
# This may be replaced when dependencies are built.
