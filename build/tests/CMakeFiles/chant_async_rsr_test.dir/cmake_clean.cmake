file(REMOVE_RECURSE
  "CMakeFiles/chant_async_rsr_test.dir/chant_async_rsr_test.cpp.o"
  "CMakeFiles/chant_async_rsr_test.dir/chant_async_rsr_test.cpp.o.d"
  "chant_async_rsr_test"
  "chant_async_rsr_test.pdb"
  "chant_async_rsr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chant_async_rsr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
