# Empty dependencies file for chant_async_rsr_test.
# This may be replaced when dependencies are built.
