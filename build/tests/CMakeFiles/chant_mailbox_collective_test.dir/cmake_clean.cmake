file(REMOVE_RECURSE
  "CMakeFiles/chant_mailbox_collective_test.dir/chant_mailbox_collective_test.cpp.o"
  "CMakeFiles/chant_mailbox_collective_test.dir/chant_mailbox_collective_test.cpp.o.d"
  "chant_mailbox_collective_test"
  "chant_mailbox_collective_test.pdb"
  "chant_mailbox_collective_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chant_mailbox_collective_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
