# Empty dependencies file for chant_mailbox_collective_test.
# This may be replaced when dependencies are built.
