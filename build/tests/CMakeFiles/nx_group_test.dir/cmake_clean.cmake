file(REMOVE_RECURSE
  "CMakeFiles/nx_group_test.dir/nx_group_test.cpp.o"
  "CMakeFiles/nx_group_test.dir/nx_group_test.cpp.o.d"
  "nx_group_test"
  "nx_group_test.pdb"
  "nx_group_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nx_group_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
