# Empty dependencies file for nx_group_test.
# This may be replaced when dependencies are built.
