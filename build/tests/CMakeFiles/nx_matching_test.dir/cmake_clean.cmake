file(REMOVE_RECURSE
  "CMakeFiles/nx_matching_test.dir/nx_matching_test.cpp.o"
  "CMakeFiles/nx_matching_test.dir/nx_matching_test.cpp.o.d"
  "nx_matching_test"
  "nx_matching_test.pdb"
  "nx_matching_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nx_matching_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
