# Empty dependencies file for nx_matching_test.
# This may be replaced when dependencies are built.
