file(REMOVE_RECURSE
  "CMakeFiles/chant_tagcodec_test.dir/chant_tagcodec_test.cpp.o"
  "CMakeFiles/chant_tagcodec_test.dir/chant_tagcodec_test.cpp.o.d"
  "chant_tagcodec_test"
  "chant_tagcodec_test.pdb"
  "chant_tagcodec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chant_tagcodec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
