# Empty dependencies file for chant_tagcodec_test.
# This may be replaced when dependencies are built.
