file(REMOVE_RECURSE
  "CMakeFiles/nx_protocol_test.dir/nx_protocol_test.cpp.o"
  "CMakeFiles/nx_protocol_test.dir/nx_protocol_test.cpp.o.d"
  "nx_protocol_test"
  "nx_protocol_test.pdb"
  "nx_protocol_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nx_protocol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
