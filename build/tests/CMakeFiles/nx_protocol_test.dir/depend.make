# Empty dependencies file for nx_protocol_test.
# This may be replaced when dependencies are built.
