# Empty dependencies file for lwt_scheduler_test.
# This may be replaced when dependencies are built.
