file(REMOVE_RECURSE
  "CMakeFiles/lwt_scheduler_test.dir/lwt_scheduler_test.cpp.o"
  "CMakeFiles/lwt_scheduler_test.dir/lwt_scheduler_test.cpp.o.d"
  "lwt_scheduler_test"
  "lwt_scheduler_test.pdb"
  "lwt_scheduler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lwt_scheduler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
