file(REMOVE_RECURSE
  "CMakeFiles/lwt_tls_cancel_test.dir/lwt_tls_cancel_test.cpp.o"
  "CMakeFiles/lwt_tls_cancel_test.dir/lwt_tls_cancel_test.cpp.o.d"
  "lwt_tls_cancel_test"
  "lwt_tls_cancel_test.pdb"
  "lwt_tls_cancel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lwt_tls_cancel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
