# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for lwt_tls_cancel_test.
