# Empty dependencies file for lwt_tls_cancel_test.
# This may be replaced when dependencies are built.
