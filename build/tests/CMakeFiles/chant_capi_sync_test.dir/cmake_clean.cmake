file(REMOVE_RECURSE
  "CMakeFiles/chant_capi_sync_test.dir/chant_capi_sync_test.cpp.o"
  "CMakeFiles/chant_capi_sync_test.dir/chant_capi_sync_test.cpp.o.d"
  "chant_capi_sync_test"
  "chant_capi_sync_test.pdb"
  "chant_capi_sync_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chant_capi_sync_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
