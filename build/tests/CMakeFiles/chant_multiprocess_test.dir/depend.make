# Empty dependencies file for chant_multiprocess_test.
# This may be replaced when dependencies are built.
