file(REMOVE_RECURSE
  "CMakeFiles/chant_multiprocess_test.dir/chant_multiprocess_test.cpp.o"
  "CMakeFiles/chant_multiprocess_test.dir/chant_multiprocess_test.cpp.o.d"
  "chant_multiprocess_test"
  "chant_multiprocess_test.pdb"
  "chant_multiprocess_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chant_multiprocess_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
