file(REMOVE_RECURSE
  "CMakeFiles/lwt_context_test.dir/lwt_context_test.cpp.o"
  "CMakeFiles/lwt_context_test.dir/lwt_context_test.cpp.o.d"
  "lwt_context_test"
  "lwt_context_test.pdb"
  "lwt_context_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lwt_context_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
