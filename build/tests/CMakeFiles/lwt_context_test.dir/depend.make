# Empty dependencies file for lwt_context_test.
# This may be replaced when dependencies are built.
