# Empty dependencies file for chant_policy_test.
# This may be replaced when dependencies are built.
