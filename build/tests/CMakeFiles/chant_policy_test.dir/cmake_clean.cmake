file(REMOVE_RECURSE
  "CMakeFiles/chant_policy_test.dir/chant_policy_test.cpp.o"
  "CMakeFiles/chant_policy_test.dir/chant_policy_test.cpp.o.d"
  "chant_policy_test"
  "chant_policy_test.pdb"
  "chant_policy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chant_policy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
