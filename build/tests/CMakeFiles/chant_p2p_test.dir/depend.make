# Empty dependencies file for chant_p2p_test.
# This may be replaced when dependencies are built.
