file(REMOVE_RECURSE
  "CMakeFiles/chant_p2p_test.dir/chant_p2p_test.cpp.o"
  "CMakeFiles/chant_p2p_test.dir/chant_p2p_test.cpp.o.d"
  "chant_p2p_test"
  "chant_p2p_test.pdb"
  "chant_p2p_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chant_p2p_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
