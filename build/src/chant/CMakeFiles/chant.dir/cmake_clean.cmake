file(REMOVE_RECURSE
  "CMakeFiles/chant.dir/p2p.cpp.o"
  "CMakeFiles/chant.dir/p2p.cpp.o.d"
  "CMakeFiles/chant.dir/pthread_chanter.cpp.o"
  "CMakeFiles/chant.dir/pthread_chanter.cpp.o.d"
  "CMakeFiles/chant.dir/pthread_chanter_sync.cpp.o"
  "CMakeFiles/chant.dir/pthread_chanter_sync.cpp.o.d"
  "CMakeFiles/chant.dir/remote.cpp.o"
  "CMakeFiles/chant.dir/remote.cpp.o.d"
  "CMakeFiles/chant.dir/rsr.cpp.o"
  "CMakeFiles/chant.dir/rsr.cpp.o.d"
  "CMakeFiles/chant.dir/runtime.cpp.o"
  "CMakeFiles/chant.dir/runtime.cpp.o.d"
  "CMakeFiles/chant.dir/sda.cpp.o"
  "CMakeFiles/chant.dir/sda.cpp.o.d"
  "CMakeFiles/chant.dir/world.cpp.o"
  "CMakeFiles/chant.dir/world.cpp.o.d"
  "libchant.a"
  "libchant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
