# Empty dependencies file for chant.
# This may be replaced when dependencies are built.
