
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chant/p2p.cpp" "src/chant/CMakeFiles/chant.dir/p2p.cpp.o" "gcc" "src/chant/CMakeFiles/chant.dir/p2p.cpp.o.d"
  "/root/repo/src/chant/pthread_chanter.cpp" "src/chant/CMakeFiles/chant.dir/pthread_chanter.cpp.o" "gcc" "src/chant/CMakeFiles/chant.dir/pthread_chanter.cpp.o.d"
  "/root/repo/src/chant/pthread_chanter_sync.cpp" "src/chant/CMakeFiles/chant.dir/pthread_chanter_sync.cpp.o" "gcc" "src/chant/CMakeFiles/chant.dir/pthread_chanter_sync.cpp.o.d"
  "/root/repo/src/chant/remote.cpp" "src/chant/CMakeFiles/chant.dir/remote.cpp.o" "gcc" "src/chant/CMakeFiles/chant.dir/remote.cpp.o.d"
  "/root/repo/src/chant/rsr.cpp" "src/chant/CMakeFiles/chant.dir/rsr.cpp.o" "gcc" "src/chant/CMakeFiles/chant.dir/rsr.cpp.o.d"
  "/root/repo/src/chant/runtime.cpp" "src/chant/CMakeFiles/chant.dir/runtime.cpp.o" "gcc" "src/chant/CMakeFiles/chant.dir/runtime.cpp.o.d"
  "/root/repo/src/chant/sda.cpp" "src/chant/CMakeFiles/chant.dir/sda.cpp.o" "gcc" "src/chant/CMakeFiles/chant.dir/sda.cpp.o.d"
  "/root/repo/src/chant/world.cpp" "src/chant/CMakeFiles/chant.dir/world.cpp.o" "gcc" "src/chant/CMakeFiles/chant.dir/world.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lwt/CMakeFiles/lwt.dir/DependInfo.cmake"
  "/root/repo/build/src/nx/CMakeFiles/nx.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
