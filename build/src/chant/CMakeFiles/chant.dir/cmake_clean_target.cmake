file(REMOVE_RECURSE
  "libchant.a"
)
