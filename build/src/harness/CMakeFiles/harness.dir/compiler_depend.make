# Empty compiler generated dependencies file for harness.
# This may be replaced when dependencies are built.
