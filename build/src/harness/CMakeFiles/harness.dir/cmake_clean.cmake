file(REMOVE_RECURSE
  "CMakeFiles/harness.dir/harness.cpp.o"
  "CMakeFiles/harness.dir/harness.cpp.o.d"
  "libharness.a"
  "libharness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
