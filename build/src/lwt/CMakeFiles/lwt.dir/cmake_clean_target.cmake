file(REMOVE_RECURSE
  "liblwt.a"
)
