file(REMOVE_RECURSE
  "CMakeFiles/lwt.dir/context.cpp.o"
  "CMakeFiles/lwt.dir/context.cpp.o.d"
  "CMakeFiles/lwt.dir/context_x86_64.S.o"
  "CMakeFiles/lwt.dir/rwlock.cpp.o"
  "CMakeFiles/lwt.dir/rwlock.cpp.o.d"
  "CMakeFiles/lwt.dir/scheduler.cpp.o"
  "CMakeFiles/lwt.dir/scheduler.cpp.o.d"
  "CMakeFiles/lwt.dir/stack.cpp.o"
  "CMakeFiles/lwt.dir/stack.cpp.o.d"
  "CMakeFiles/lwt.dir/sync.cpp.o"
  "CMakeFiles/lwt.dir/sync.cpp.o.d"
  "CMakeFiles/lwt.dir/trace.cpp.o"
  "CMakeFiles/lwt.dir/trace.cpp.o.d"
  "liblwt.a"
  "liblwt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang ASM CXX)
  include(CMakeFiles/lwt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
