
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  "ASM"
  )
# The set of files for implicit dependencies of each language:
set(CMAKE_DEPENDS_CHECK_ASM
  "/root/repo/src/lwt/context_x86_64.S" "/root/repo/build/src/lwt/CMakeFiles/lwt.dir/context_x86_64.S.o"
  )
set(CMAKE_ASM_COMPILER_ID "GNU")

# The include file search paths:
set(CMAKE_ASM_TARGET_INCLUDE_PATH
  "/root/repo/include"
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lwt/context.cpp" "src/lwt/CMakeFiles/lwt.dir/context.cpp.o" "gcc" "src/lwt/CMakeFiles/lwt.dir/context.cpp.o.d"
  "/root/repo/src/lwt/rwlock.cpp" "src/lwt/CMakeFiles/lwt.dir/rwlock.cpp.o" "gcc" "src/lwt/CMakeFiles/lwt.dir/rwlock.cpp.o.d"
  "/root/repo/src/lwt/scheduler.cpp" "src/lwt/CMakeFiles/lwt.dir/scheduler.cpp.o" "gcc" "src/lwt/CMakeFiles/lwt.dir/scheduler.cpp.o.d"
  "/root/repo/src/lwt/stack.cpp" "src/lwt/CMakeFiles/lwt.dir/stack.cpp.o" "gcc" "src/lwt/CMakeFiles/lwt.dir/stack.cpp.o.d"
  "/root/repo/src/lwt/sync.cpp" "src/lwt/CMakeFiles/lwt.dir/sync.cpp.o" "gcc" "src/lwt/CMakeFiles/lwt.dir/sync.cpp.o.d"
  "/root/repo/src/lwt/trace.cpp" "src/lwt/CMakeFiles/lwt.dir/trace.cpp.o" "gcc" "src/lwt/CMakeFiles/lwt.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
