# Empty compiler generated dependencies file for lwt.
# This may be replaced when dependencies are built.
