file(REMOVE_RECURSE
  "libnx.a"
)
