file(REMOVE_RECURSE
  "CMakeFiles/nx.dir/endpoint.cpp.o"
  "CMakeFiles/nx.dir/endpoint.cpp.o.d"
  "CMakeFiles/nx.dir/group.cpp.o"
  "CMakeFiles/nx.dir/group.cpp.o.d"
  "CMakeFiles/nx.dir/machine.cpp.o"
  "CMakeFiles/nx.dir/machine.cpp.o.d"
  "libnx.a"
  "libnx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
