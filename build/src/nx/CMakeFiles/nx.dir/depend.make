# Empty dependencies file for nx.
# This may be replaced when dependencies are built.
