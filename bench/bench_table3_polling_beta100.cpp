// bench_table3_polling_beta100 — reproduces paper Table 3 and Figures
// 10 (time), 11 (context switches), 12 (msgtest calls), 13 (average
// waiting threads): the three polling algorithms over the Fig.-9
// workload at beta = 100, alpha ∈ {100, 1000, 10000, 100000},
// 2 PEs × 12 threads × 100 iterations.
#include "polling_common.hpp"

int main() {
  bench::run_polling_table(
      "Table 3 / Figures 10-13: polling algorithms, 2 pes x 12 threads "
      "x 100 iterations",
      "table3", /*beta=*/100);
  return 0;
}
