// bench_ablation_testany — tests the paper's §4.2 hypothesis: the
// Scheduler-polls (WQ) algorithm performed badly on NX because each
// outstanding receive had to be tested individually; "for systems that
// could implement this algorithm as originally intended, with a single
// msgtestany call, we expect the relative performance of this algorithm
// to change". We run the Table-3 workload with WQ in both flavours and
// PS for reference.
#include "polling_common.hpp"

int main() {
  std::printf("== Ablation: WQ per-entry msgtest vs single msgtestany "
              "(paper's MPI hypothesis) ==\n");
  harness::Table t({"algorithm", "alpha", "time_ms", "scaled_ms", "ctxsw",
                    "comm_tests"});
  struct Algo {
    const char* name;
    chant::PollPolicy policy;
    bool testany;
  };
  const Algo algos[] = {
      {"WQ (per-entry msgtest, NX-style)",
       chant::PollPolicy::SchedulerPollsWQ, false},
      {"WQ (msgtestany, MPI-style)", chant::PollPolicy::SchedulerPollsWQ,
       true},
      {"PS (reference)", chant::PollPolicy::SchedulerPollsPS, false},
  };
  for (const Algo& a : algos) {
    for (std::uint64_t alpha : {100ull, 10000ull, 100000ull}) {
      bench::PollingParams pp;
      pp.alpha = alpha;
      pp.beta = 100;
      pp.policy = a.policy;
      pp.wq_testany = a.testany;
      const bench::PollingResult r = bench::run_polling(pp);
      t.add_row({a.name, harness::fmt("%llu", (unsigned long long)alpha),
                 harness::fmt("%.2f", r.time_ms),
                 harness::fmt("%.0f", r.scaled_ms),
                 harness::fmt("%llu", (unsigned long long)r.ctxsw),
                 harness::fmt("%llu", (unsigned long long)r.msgtest)});
    }
  }
  t.print("ablation_testany");
  return 0;
}
