// bench_table1_threadops — reproduces the *shape* of paper Table 1:
// thread create and context-switch times across thread packages. The
// 1994 packages are gone; the comparable hierarchy on this machine is
//   lwt (asm switch)      ~ Quickthreads-class user-level threads,
//   lwt (ucontext switch) ~ a portable/syscall-per-switch package,
//   std::thread (kernel)  ~ the kernel-thread / LWP row,
// and the expected result is the same orders-of-magnitude ladder the
// paper tabulates (user-level ≪ kernel-level).
#include <thread>
#include <vector>

#include "harness/bench_json.hpp"
#include "harness/table.hpp"
#include "harness/timer.hpp"
#include "lwt/lwt.hpp"

namespace {

struct OpTimes {
  double create_us;
  double switch_us;
};

OpTimes measure_lwt(lwt::ContextBackend backend) {
  OpTimes out{};
  // Create: spawn+join amortized over a batch (stack pool warm).
  lwt::run(
      [&] {
        constexpr int kWarm = 64;
        constexpr int kN = 2000;
        std::vector<lwt::Tcb*> warm;
        for (int i = 0; i < kWarm; ++i) warm.push_back(lwt::go([] {}));
        for (auto* t : warm) lwt::join(t);
        harness::Timer timer;
        for (int i = 0; i < kN; ++i) {
          lwt::Tcb* t = lwt::Scheduler::current()->spawn(
              [](void*) -> void* { return nullptr; }, nullptr);
          lwt::join(t);
        }
        out.create_us = timer.elapsed_us() / kN;
      },
      backend);
  // Switch: two fibers yielding to each other; one "switch" = one
  // restore of a different thread's context (through the scheduler).
  lwt::run(
      [&] {
        constexpr int kSwitches = 200000;
        lwt::Tcb* partner = lwt::go([] {
          for (int i = 0; i < kSwitches / 2; ++i) lwt::yield();
        });
        harness::Timer timer;
        for (int i = 0; i < kSwitches / 2; ++i) lwt::yield();
        out.switch_us = timer.elapsed_us() / kSwitches;
        lwt::join(partner);
      },
      backend);
  return out;
}

OpTimes measure_kernel_threads() {
  OpTimes out{};
  constexpr int kN = 300;
  {
    harness::Timer timer;
    for (int i = 0; i < kN; ++i) {
      std::thread t([] {});
      t.join();
    }
    out.create_us = timer.elapsed_us() / kN;
  }
  {
    // Kernel "switch": ping-pong two OS threads over atomics, forcing a
    // reschedule per handoff via yield.
    std::atomic<int> turn{0};
    constexpr int kHandoffs = 20000;
    harness::Timer timer;
    std::thread other([&] {
      for (int i = 0; i < kHandoffs / 2; ++i) {
        while (turn.load(std::memory_order_acquire) == 0) {
          std::this_thread::yield();
        }
        turn.store(0, std::memory_order_release);
      }
    });
    for (int i = 0; i < kHandoffs / 2; ++i) {
      turn.store(1, std::memory_order_release);
      while (turn.load(std::memory_order_acquire) == 1) {
        std::this_thread::yield();
      }
    }
    other.join();
    out.switch_us = timer.elapsed_us() / kHandoffs;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("== Table 1: thread package create/switch times ==\n");
  std::printf("(paper's SS-10 numbers for reference: cthreads 423/81, REX "
              "230/60, pthreads 1300/29, LWP 400/25, Quickthreads 440/21 us)\n\n");
  harness::Table t({"package", "create_us", "switch_us"});
  harness::BenchJson json("threadops");
  json.config("workers", 1);
#if !defined(LWT_NO_ASM_CONTEXT)
  const OpTimes asm_times = measure_lwt(lwt::ContextBackend::Asm);
  t.add_row({"lwt (asm, Quickthreads-class)",
             harness::fmt("%.3f", asm_times.create_us),
             harness::fmt("%.3f", asm_times.switch_us)});
  json.metric("lwt_asm_create", asm_times.create_us, "us");
  json.metric("lwt_asm_switch", asm_times.switch_us, "us");
#endif
  const OpTimes uc = measure_lwt(lwt::ContextBackend::Ucontext);
  t.add_row({"lwt (ucontext, portable)", harness::fmt("%.3f", uc.create_us),
             harness::fmt("%.3f", uc.switch_us)});
  json.metric("lwt_ucontext_create", uc.create_us, "us");
  json.metric("lwt_ucontext_switch", uc.switch_us, "us");
  const OpTimes kt = measure_kernel_threads();
  t.add_row({"std::thread (kernel)", harness::fmt("%.3f", kt.create_us),
             harness::fmt("%.3f", kt.switch_us)});
  json.metric("kernel_thread_create", kt.create_us, "us");
  json.metric("kernel_thread_switch", kt.switch_us, "us");
  t.print("table1");
  if (const char* path = harness::BenchJson::json_path(argc, argv)) {
    if (!json.write(path)) return 1;
  }
  return 0;
}
