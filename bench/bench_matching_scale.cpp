// bench_matching_scale.cpp — scaling of the nx::Endpoint matching engine.
//
// The paper's polling experiments (Tables 3–5) hammer msgtest tens of
// thousands of times per run, and the ROADMAP north star pushes queue
// depths and threads/process far beyond the paper's 12 — so the per-call
// cost of (a) matching a send against N outstanding posted receives and
// (b) a *failed* msgtest must not grow with queue depth. This bench
// sweeps both axes and emits machine-readable JSON (BENCH_matching.json)
// so successive PRs can track the trajectory.
//
// Three measurements:
//   1. posted-depth sweep — D posted receives with distinct exact tags;
//      each message matches the *last*-posted one (worst case for a
//      linear scan, the steady case for the hash index). ns/message
//      should be flat in D for an indexed engine, linear for a scan.
//   2. threads/process sweep — T twin pairs across two processes doing
//      tag-distinct ping-pong (the chant many-threads-per-process shape);
//      ns per delivered message as T grows.
//   3. failed-msgtest sweep — one never-matching receive tested M times
//      while U non-matching unexpected messages and D other posted
//      receives are queued. A drain-per-failure engine pays O(U×D) per
//      call; an epoch-gated engine skips the lock entirely
//      (counters().drain_skipped counts the skips).
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "harness/bench_json.hpp"
#include "harness/table.hpp"
#include "harness/timer.hpp"
#include "nx/machine.hpp"

namespace {

struct DepthRow {
  int depth;
  double ns_per_msg;
  std::uint64_t bucket_hits;
  std::uint64_t wildcard_scans;
};

struct ThreadsRow {
  int threads;
  double ns_per_msg;
};

struct FailRow {
  int unexpected;
  int posted;
  double ns_per_call;
  std::uint64_t drain_skipped;
};

// 1. D posted receives, distinct exact tags, message matches the last.
DepthRow run_depth(int depth, int msgs) {
  nx::Machine m{nx::Machine::Config{1, 1, nx::NetModel::zero(), 1 << 16}};
  nx::Endpoint& ep = m.endpoint(0, 0);
  std::vector<long> bufs(static_cast<std::size_t>(depth), 0);
  std::vector<nx::Handle> hs(static_cast<std::size_t>(depth));
  for (int i = 0; i < depth; ++i) {
    hs[static_cast<std::size_t>(i)] =
        ep.irecv(0, 0, /*tag=*/i, nx::kTagExact,
                 &bufs[static_cast<std::size_t>(i)], sizeof(long));
  }
  const int hot = depth - 1;  // last posted = deepest scan position
  long payload = 42;
  ep.counters().reset();
  harness::Timer t;
  for (int i = 0; i < msgs; ++i) {
    ep.csend(0, 0, hot, &payload, sizeof payload);
    nx::MsgHeader out;
    ep.msgtest(hs[static_cast<std::size_t>(hot)], &out);
    hs[static_cast<std::size_t>(hot)] =
        ep.irecv(0, 0, hot, nx::kTagExact,
                 &bufs[static_cast<std::size_t>(hot)], sizeof(long));
  }
  const double ns = t.elapsed_us() * 1000.0 / msgs;
  DepthRow r{depth, ns, ep.counters().bucket_hits.load(),
             ep.counters().wildcard_scans.load()};
  for (nx::Handle h : hs) ep.cancel_recv(h);
  return r;
}

// 2. T tag-distinct twin pairs across two processes on one PE.
ThreadsRow run_threads(int threads, int rounds) {
  nx::Machine m{nx::Machine::Config{1, 2, nx::NetModel::zero(), 1 << 16}};
  harness::Timer t;
  m.run([&](nx::Endpoint& ep) {
    const int peer = 1 - ep.proc();
    std::vector<long> in(static_cast<std::size_t>(threads), 0);
    std::vector<nx::Handle> hs(static_cast<std::size_t>(threads));
    for (int r = 0; r < rounds; ++r) {
      for (int i = 0; i < threads; ++i) {
        hs[static_cast<std::size_t>(i)] =
            ep.irecv(0, peer, i, nx::kTagExact,
                     &in[static_cast<std::size_t>(i)], sizeof(long));
      }
      long out = r;
      for (int i = 0; i < threads; ++i) {
        ep.csend(0, peer, i, &out, sizeof out);
      }
      for (int i = 0; i < threads; ++i) {
        ep.msgwait(hs[static_cast<std::size_t>(i)]);
      }
    }
  });
  const double total_msgs = 2.0 * threads * rounds;
  return ThreadsRow{threads, t.elapsed_us() * 1000.0 / total_msgs};
}

// 3. failed msgtest with U queued unexpected + D posted receives.
FailRow run_failed(int unexpected, int posted, int calls) {
  nx::Machine m{nx::Machine::Config{1, 1, nx::NetModel::zero(), 1 << 16}};
  nx::Endpoint& ep = m.endpoint(0, 0);
  long payload = 7;
  for (int i = 0; i < unexpected; ++i) {
    ep.csend(0, 0, /*tag=*/1000 + i, &payload, sizeof payload);
  }
  std::vector<long> bufs(static_cast<std::size_t>(posted), 0);
  std::vector<nx::Handle> hs;
  for (int i = 0; i < posted; ++i) {
    hs.push_back(ep.irecv(0, 0, /*tag=*/i, nx::kTagExact,
                          &bufs[static_cast<std::size_t>(i)], sizeof(long)));
  }
  long never = 0;
  nx::Handle h = ep.irecv(0, 0, /*tag=*/999, nx::kTagExact, &never,
                          sizeof never);
  ep.counters().reset();
  harness::Timer t;
  for (int i = 0; i < calls; ++i) {
    if (ep.msgtest(h)) std::abort();  // must never complete
  }
  const double ns = t.elapsed_us() * 1000.0 / calls;
  FailRow r{unexpected, posted, ns, ep.counters().drain_skipped.load()};
  ep.cancel_recv(h);
  for (nx::Handle hh : hs) ep.cancel_recv(hh);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  constexpr int kMsgs = 200000;
  constexpr int kRounds = 20000;
  constexpr int kCalls = 2000000;

  std::printf("== matching-engine scaling (nx::Endpoint) ==\n");

  harness::Table td({"posted_depth", "ns_per_msg", "bucket_hits",
                     "wildcard_scans"});
  std::vector<DepthRow> depth_rows;
  for (int d : {1, 2, 4, 8, 16, 32, 64, 128, 256}) {
    const DepthRow r = run_depth(d, kMsgs);
    depth_rows.push_back(r);
    td.add_row({harness::fmt("%d", r.depth),
                harness::fmt("%.1f", r.ns_per_msg),
                harness::fmt("%llu", (unsigned long long)r.bucket_hits),
                harness::fmt("%llu", (unsigned long long)r.wildcard_scans)});
  }
  td.print("matching_depth");

  harness::Table tt({"threads_per_proc", "ns_per_msg"});
  std::vector<ThreadsRow> thread_rows;
  for (int n : {1, 4, 12, 32, 64}) {
    const ThreadsRow r = run_threads(n, kRounds / n);
    thread_rows.push_back(r);
    tt.add_row({harness::fmt("%d", r.threads),
                harness::fmt("%.1f", r.ns_per_msg)});
  }
  tt.print("matching_threads");

  harness::Table tf({"unexpected", "posted", "ns_per_failed_test",
                     "drain_skipped"});
  std::vector<FailRow> fail_rows;
  for (int u : {0, 16, 64, 256}) {
    for (int d : {0, 64}) {
      const FailRow r = run_failed(u, d, kCalls);
      fail_rows.push_back(r);
      tf.add_row({harness::fmt("%d", r.unexpected),
                  harness::fmt("%d", r.posted),
                  harness::fmt("%.1f", r.ns_per_call),
                  harness::fmt("%llu", (unsigned long long)r.drain_skipped)});
    }
  }
  tf.print("matching_failed");

  // Machine-readable trajectory file.
  std::FILE* f = std::fopen("BENCH_matching.json", "w");
  if (f == nullptr) {
    std::perror("BENCH_matching.json");
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"matching_scale\",\n");
  std::fprintf(f, "  \"posted_depth\": [\n");
  for (std::size_t i = 0; i < depth_rows.size(); ++i) {
    const DepthRow& r = depth_rows[i];
    std::fprintf(f,
                 "    {\"depth\": %d, \"ns_per_msg\": %.1f, "
                 "\"bucket_hits\": %llu, \"wildcard_scans\": %llu}%s\n",
                 r.depth, r.ns_per_msg, (unsigned long long)r.bucket_hits,
                 (unsigned long long)r.wildcard_scans,
                 i + 1 < depth_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"threads_per_process\": [\n");
  for (std::size_t i = 0; i < thread_rows.size(); ++i) {
    const ThreadsRow& r = thread_rows[i];
    std::fprintf(f, "    {\"threads\": %d, \"ns_per_msg\": %.1f}%s\n",
                 r.threads, r.ns_per_msg,
                 i + 1 < thread_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"failed_msgtest\": [\n");
  for (std::size_t i = 0; i < fail_rows.size(); ++i) {
    const FailRow& r = fail_rows[i];
    std::fprintf(f,
                 "    {\"unexpected\": %d, \"posted\": %d, "
                 "\"ns_per_call\": %.1f, \"drain_skipped\": %llu}%s\n",
                 r.unexpected, r.posted, r.ns_per_call,
                 (unsigned long long)r.drain_skipped,
                 i + 1 < fail_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote BENCH_matching.json\n");

  // Uniform trajectory document (`--json <path>`) for tools/bench_gate.py.
  if (const char* path = harness::BenchJson::json_path(argc, argv)) {
    harness::BenchJson json("matching_scale");
    json.config("msgs", kMsgs);
    json.config("rounds", kRounds);
    json.config("calls", kCalls);
    for (const DepthRow& r : depth_rows) {
      json.metric("depth_" + std::to_string(r.depth) + "_ns", r.ns_per_msg,
                  "ns/msg");
    }
    for (const ThreadsRow& r : thread_rows) {
      json.metric("threads_" + std::to_string(r.threads) + "_ns",
                  r.ns_per_msg, "ns/msg");
    }
    for (const FailRow& r : fail_rows) {
      json.metric("failed_u" + std::to_string(r.unexpected) + "_d" +
                      std::to_string(r.posted) + "_ns",
                  r.ns_per_call, "ns/call");
    }
    if (!json.write(path)) return 1;
  }
  return 0;
}
