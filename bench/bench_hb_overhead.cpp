// bench_hb_overhead — cost of the happens-before checker's null path.
//
// chant::hb (DESIGN.md §14) instruments every synchronization site in
// the runtime behind one atomic hook-table pointer. The production
// contract is that with no checker installed (the "null controller"),
// each site costs an acquire load of a null pointer plus a predictable
// branch — nothing a hot path can feel. This bench puts a gated number
// on that contract:
//
//   hb_overhead        — ns per hb::on_read/on_write annotation pair
//                        with the checker OFF: the full compiled-out
//                        cost of an annotated access (call + null
//                        check). The headline row: if the null path
//                        ever grows real work, this gates CI.
//   hb_mutex_ns        — ns per lwt::Mutex lock/unlock pair, checker
//                        OFF. The mutex path crosses four hook sites
//                        (validate + hb, acquire + release); the row
//                        pins their combined dormant cost.
//   hb_mutex_on_ns     — the same pair with the checker enabled
//                        (gate=false: checking is a debugging mode;
//                        the row records the trajectory of its cost,
//                        it does not gate merges).
//   hb_annotation_on_ns— annotation pair against a tracked region with
//                        the checker enabled (gate=false, as above).
//
// Flags: --smoke (shrunk rounds for CI), --json <path>.
#include <cstdio>
#include <cstring>

#include "chant/hb.hpp"
#include "harness/bench_json.hpp"
#include "harness/timer.hpp"
#include "lwt/lwt.hpp"

namespace {

// Out-of-line sink so enabled-mode reports (there should be none: all
// accesses are same-fiber) never spam stderr.
void null_sink(const chant::hb::Report&) {}

volatile long g_cell = 0;

double annotation_pair_ns(long iters) {
  harness::Timer t;
  for (long i = 0; i < iters; ++i) {
    chant::hb::on_read(const_cast<long*>(&g_cell), sizeof g_cell,
                       "bench_hb_overhead read");
    chant::hb::on_write(const_cast<long*>(&g_cell), sizeof g_cell,
                        "bench_hb_overhead write");
  }
  return t.elapsed_us() * 1000.0 / static_cast<double>(iters);
}

double mutex_pair_ns(long iters) {
  lwt::Mutex mu;
  harness::Timer t;
  for (long i = 0; i < iters; ++i) {
    mu.lock();
    g_cell = i;
    mu.unlock();
  }
  return t.elapsed_us() * 1000.0 / static_cast<double>(iters);
}

// The dormant rows time single-digit nanoseconds, where scheduler noise
// on a shared runner dwarfs the signal of any one run: report the best
// of several repetitions (the classic floor estimate — noise only ever
// adds time).
template <typename F>
double best_of(int reps, F measure) {
  double best = measure();
  for (int r = 1; r < reps; ++r) {
    const double v = measure();
    if (v < best) best = v;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }
  const long kOff = smoke ? 2'000'000 : 20'000'000;
  const long kOn = smoke ? 100'000 : 1'000'000;

  double off_annot = 0, off_mutex = 0, on_annot = 0, on_mutex = 0;
  lwt::run([&] {
    chant::hb::disable();
    // Warm, then measure the dormant (null-controller) path.
    (void)annotation_pair_ns(kOff / 10);
    off_annot = best_of(5, [&] { return annotation_pair_ns(kOff); });
    off_mutex = best_of(5, [&] { return mutex_pair_ns(kOff / 4); });

    // Enabled trajectory rows: same loops with the checker armed and
    // the cell registered as a tracked region.
    chant::hb::enable();
    chant::hb::reset();
    chant::hb::set_sink(&null_sink);
    chant::hb::track(const_cast<long*>(&g_cell), sizeof g_cell,
                     "bench cell");
    on_annot = annotation_pair_ns(kOn);
    on_mutex = mutex_pair_ns(kOn);
    chant::hb::untrack(const_cast<long*>(&g_cell));
    chant::hb::set_sink(nullptr);
    chant::hb::disable();
    chant::hb::reset();
  });

  std::printf("bench_hb_overhead%s\n", smoke ? " (smoke)" : "");
  std::printf("  %-22s %8.3f ns  (checker off, gated)\n", "annotation pair",
              off_annot);
  std::printf("  %-22s %8.3f ns  (checker off, gated)\n", "mutex lock/unlock",
              off_mutex);
  std::printf("  %-22s %8.3f ns  (checker on)\n", "annotation pair",
              on_annot);
  std::printf("  %-22s %8.3f ns  (checker on)\n", "mutex lock/unlock",
              on_mutex);

  if (json_path != nullptr) {
    harness::BenchJson json("hb_overhead");
    json.config("smoke", smoke ? "true" : "false");
    json.config("off_iters", kOff);
    json.config("on_iters", kOn);
    json.metric("hb_overhead", off_annot, "ns");
    json.metric("hb_mutex_ns", off_mutex, "ns");
    json.metric("hb_mutex_on_ns", on_mutex, "ns", /*gate=*/false);
    json.metric("hb_annotation_on_ns", on_annot, "ns", /*gate=*/false);
    if (!json.write(json_path)) return 1;
  }
  return 0;
}
