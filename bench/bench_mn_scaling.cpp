// bench_mn_scaling — M:N scheduler scaling trajectory (DESIGN.md §10).
//
// The paper's thread package is strictly 1:N — one OS thread multiplexes
// all fibers of a process. This bench records what the multi-worker
// scheduler buys (or costs) as the worker pool grows: for workers in
// {1, 2, 4, 8} it measures
//   1. fiber create+join rate (spawn/join batches, stack pool warm),
//   2. context-switch rate (a yield storm over a fixed fiber set),
//   3. p2p message throughput — fiber pairs ping-ponging through their
//      own pair of nx endpoints (endpoints are OS-thread-safe, so the
//      pairs spread across workers with no extra locking), completion
//      polled with msgtest + yield so a waiting fiber never wedges the
//      worker under it.
// Alongside the rates it prints the scheduler's own view of the run —
// steals, injections, parks, local-queue hits — and the speedup of each
// metric versus the 1-worker baseline. workers=1 must stay within noise
// of the pre-M:N scheduler; that is the regression CI actually gates.
//
// Flags: --smoke (shrunk iteration counts for CI), --json <path>
// (uniform trajectory document, schema in harness/bench_json.hpp).
// NOTE: speedups > 1 need real cores; a 1-core host shows ~flat.
#include <cstring>
#include <thread>
#include <vector>

#include "harness/bench_json.hpp"
#include "harness/table.hpp"
#include "harness/timer.hpp"
#include "lwt/lwt.hpp"
#include "nx/machine.hpp"

namespace {

/// lwt::run builds its own Scheduler, which would discard set_workers —
/// so benches that sweep the worker count drive run_main directly.
template <typename F>
void run_on(lwt::Scheduler& s, F&& f) {
  using Fn = std::decay_t<F>;
  Fn fn(std::forward<F>(f));
  s.run_main(
      [](void* p) -> void* {
        (*static_cast<Fn*>(p))();
        return nullptr;
      },
      &fn);
}

struct ScaleRow {
  unsigned workers = 0;
  double create_per_s = 0;  ///< fibers spawned+joined per second
  double yield_per_s = 0;   ///< voluntary context switches per second
  double p2p_per_s = 0;     ///< messages delivered per second
  lwt::SchedulerStats stats;
};

double measure_create(unsigned workers, int batch, int iters) {
  lwt::Scheduler s;
  s.set_workers(workers);
  double rate = 0;
  run_on(s, [&] {
    std::vector<lwt::Tcb*> ts;
    ts.reserve(static_cast<std::size_t>(batch));
    for (int i = 0; i < 64; ++i) ts.push_back(lwt::go([] {}));  // warm pool
    for (auto* t : ts) lwt::join(t);
    ts.clear();
    harness::Timer timer;
    for (int it = 0; it < iters; ++it) {
      for (int i = 0; i < batch; ++i) ts.push_back(lwt::go([] {}));
      for (auto* t : ts) lwt::join(t);
      ts.clear();
    }
    rate = 1e6 * batch * iters / timer.elapsed_us();
  });
  return rate;
}

double measure_yield(unsigned workers, int fibers, int yields_each) {
  lwt::Scheduler s;
  s.set_workers(workers);
  double rate = 0;
  run_on(s, [&] {
    std::vector<lwt::Tcb*> ts;
    harness::Timer timer;
    for (int i = 0; i < fibers; ++i) {
      ts.push_back(lwt::go([yields_each] {
        for (int y = 0; y < yields_each; ++y) lwt::yield();
      }));
    }
    for (auto* t : ts) lwt::join(t);
    rate = 1e6 * static_cast<double>(fibers) * yields_each /
           timer.elapsed_us();
  });
  return rate;
}

/// One side of a pair: post the receive, send, park until it completes.
/// The wait goes through poll_block_generic — the fiber consumes no CPU
/// and releases its worker, so a 1-core host degrades gracefully instead
/// of burning its OS timeslice spin-polling for a descheduled peer.
void exchange_loop(nx::Endpoint& ep, int peer, int rounds) {
  struct WaitCtx {
    nx::Endpoint* ep;
    nx::Handle h;
  };
  long in = 0;
  long out = 1;
  for (int r = 0; r < rounds; ++r) {
    WaitCtx wc{&ep, ep.irecv(0, peer, /*tag=*/0, nx::kTagExact, &in,
                             sizeof in)};
    ep.csend(0, peer, /*tag=*/0, &out, sizeof out);
    if (!ep.msgtest(wc.h)) {  // fast path: already delivered
      lwt::PollRequest req{[](void* p) {
                             auto* w = static_cast<WaitCtx*>(p);
                             return w->ep->msgtest(w->h);
                           },
                           &wc};
      lwt::Scheduler::current()->poll_block_generic(req);
    }
  }
}

double measure_p2p(unsigned workers, int pairs, int rounds,
                   lwt::SchedulerStats* stats_out) {
  nx::Machine m{
      nx::Machine::Config{1, 2 * pairs, nx::NetModel::zero(), 1 << 16}};
  lwt::Scheduler s;
  s.set_workers(workers);
  double rate = 0;
  run_on(s, [&] {
    std::vector<lwt::Tcb*> fibers;
    harness::Timer timer;
    for (int p = 0; p < pairs; ++p) {
      nx::Endpoint& a = m.endpoint(0, 2 * p);
      nx::Endpoint& b = m.endpoint(0, 2 * p + 1);
      fibers.push_back(
          lwt::go([&a, p, rounds] { exchange_loop(a, 2 * p + 1, rounds); }));
      fibers.push_back(
          lwt::go([&b, p, rounds] { exchange_loop(b, 2 * p, rounds); }));
    }
    for (auto* t : fibers) lwt::join(t);
    rate = 1e6 * 2.0 * pairs * rounds / timer.elapsed_us();
  });
  if (stats_out != nullptr) *stats_out = s.stats();
  return rate;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  // Smoke still needs each timed region well past a scheduler timeslice
  // (tens of ms), or run-to-run noise on a busy runner trips the gate.
  const int kCreateBatch = smoke ? 512 : 2000;
  const int kCreateIters = smoke ? 8 : 20;
  const int kYieldFibers = 64;
  const int kYieldsEach = smoke ? 5000 : 10000;
  const int kPairs = 8;
  const int kRounds = smoke ? 2500 : 10000;

  std::printf("== M:N scheduler scaling (hardware_concurrency=%u%s) ==\n\n",
              std::thread::hardware_concurrency(), smoke ? ", smoke" : "");

  harness::Table t({"workers", "create_per_s", "yield_per_s", "p2p_msg_per_s",
                    "steals", "injections", "parks", "local_hits"});
  harness::BenchJson json("mn_scaling");
  json.config("smoke", smoke ? "true" : "false");
  json.config("create_batch", kCreateBatch);
  json.config("create_iters", kCreateIters);
  json.config("yield_fibers", kYieldFibers);
  json.config("yields_each", kYieldsEach);
  json.config("pairs", kPairs);
  json.config("rounds", kRounds);
  json.config("hardware_concurrency",
              static_cast<long long>(std::thread::hardware_concurrency()));
  // Worlds here use TransportKind::Default — record what it resolves to
  // so a CHANT_TRANSPORT run is distinguishable in the trajectory.
  json.config("transport", nx::to_string(nx::resolve_transport(
                               nx::TransportKind::Default)));

  std::vector<ScaleRow> rows;
  for (unsigned w : {1u, 2u, 4u, 8u}) {
    ScaleRow r;
    r.workers = w;
    r.create_per_s = measure_create(w, kCreateBatch, kCreateIters);
    r.yield_per_s = measure_yield(w, kYieldFibers, kYieldsEach);
    r.p2p_per_s = measure_p2p(w, kPairs, kRounds, &r.stats);
    rows.push_back(r);
    t.add_row({harness::fmt("%u", w), harness::fmt("%.0f", r.create_per_s),
               harness::fmt("%.0f", r.yield_per_s),
               harness::fmt("%.0f", r.p2p_per_s),
               harness::fmt("%llu", (unsigned long long)r.stats.steals),
               harness::fmt("%llu", (unsigned long long)r.stats.injections),
               harness::fmt("%llu", (unsigned long long)r.stats.parks),
               harness::fmt("%llu", (unsigned long long)r.stats.local_hits)});
    // Only the workers=1 rates gate CI: they must stay within noise of
    // the pre-M:N scheduler. Multi-worker rates are recorded trajectory
    // but swing with core count and OS timeslicing across runners.
    const std::string ws = std::to_string(w);
    const bool gate = (w == 1);
    json.metric("create_w" + ws, r.create_per_s, "fibers/s", gate);
    json.metric("yield_w" + ws, r.yield_per_s, "switches/s", gate);
    json.metric("p2p_w" + ws, r.p2p_per_s, "msg/s", gate);
  }
  t.print("mn_scaling");

  harness::Table sp({"workers", "create_speedup", "yield_speedup",
                     "p2p_speedup"});
  for (const ScaleRow& r : rows) {
    sp.add_row({harness::fmt("%u", r.workers),
                harness::fmt("%.2fx", r.create_per_s / rows[0].create_per_s),
                harness::fmt("%.2fx", r.yield_per_s / rows[0].yield_per_s),
                harness::fmt("%.2fx", r.p2p_per_s / rows[0].p2p_per_s)});
    if (r.workers != 1) {
      const std::string ws = std::to_string(r.workers);
      json.metric("p2p_speedup_w" + ws, r.p2p_per_s / rows[0].p2p_per_s, "x",
                  /*gate=*/false);
    }
  }
  sp.print("mn_speedup");

  if (const char* path = harness::BenchJson::json_path(argc, argv)) {
    if (!json.write(path)) return 1;
  }
  return 0;
}
