// bench_overlap — the paper's §1 motivation made quantitative: latency
// tolerance. Fixed total work per PE (compute + one exchange per work
// quantum with a twin on the other PE) is divided among 1..16 threads
// over the Paragon-calibrated network. With one thread the PE idles for
// every message round-trip; with enough threads the latency hides behind
// sibling computation and wall time approaches the compute bound.
#include <vector>

#include "chant/chant.hpp"
#include "harness/table.hpp"
#include "harness/timer.hpp"
#include "harness/workload.hpp"

namespace {

double run_overlap(int threads, int quanta_per_pe, std::uint64_t work) {
  chant::World::Config cfg;
  cfg.pes = 2;
  cfg.net = nx::NetModel{200.0, 0.01};  // latency-dominated link
  cfg.rt.policy = chant::PollPolicy::SchedulerPollsPS;
  cfg.rt.start_server = false;
  chant::World w(cfg);
  double out = 0;
  w.run([&](chant::Runtime& rt) {
    struct Ctx {
      chant::Runtime* rt;
      int quanta;
      std::uint64_t work;
    };
    Ctx ctx{&rt, quanta_per_pe / threads, work};
    harness::Timer timer;
    std::vector<chant::Gid> mine;
    for (int i = 0; i < threads; ++i) {
      mine.push_back(rt.create(
          [](void* p) -> void* {
            auto& c = *static_cast<Ctx*>(p);
            chant::Runtime& r = *c.rt;
            const chant::Gid peer{1 - r.pe(), 0, r.self().thread};
            long token = 0;
            for (int q = 0; q < c.quanta; ++q) {
              harness::consume(harness::compute(c.work));
              r.send(1, &token, sizeof token, peer);
              r.recv(1, &token, sizeof token, peer);
            }
            return nullptr;
          },
          &ctx, PTHREAD_CHANTER_LOCAL, PTHREAD_CHANTER_LOCAL));
    }
    for (const auto& g : mine) rt.join(g);
    if (rt.pe() == 0) out = timer.elapsed_ms();
  });
  return out;
}

}  // namespace

int main() {
  // Latency must dominate compute for tolerance to have something to
  // hide: each quantum computes ~16 us against a ~400 us round trip.
  constexpr int kQuanta = 256;           // total exchanges per pe
  constexpr std::uint64_t kWork = 5000;  // compute units per quantum
  std::printf("== Latency tolerance: threads/pe vs wall time "
              "(fixed total work, 200us link) ==\n");
  harness::Table t({"threads_per_pe", "time_ms", "speedup_vs_1"});
  double base = 0;
  for (int threads : {1, 2, 4, 8, 16}) {
    const double ms = run_overlap(threads, kQuanta, kWork);
    if (threads == 1) base = ms;
    t.add_row({harness::fmt("%d", threads), harness::fmt("%.1f", ms),
               harness::fmt("%.2fx", base / ms)});
  }
  t.print("overlap");
  return 0;
}
