// bench_ablation_addressing — quantifies the paper's §3.1(2) delivery
// design space: carrying thread ids by overloading the tag field
// (NX/p4-class libraries) versus a dedicated header field (what MPI's
// communicator enables). The functional costs are the lost tag bits and
// the 255-thread limit; this bench shows the *runtime* cost difference
// of the two encodings is negligible — which is exactly why the paper
// chose overloading for NX rather than message-body naming (which would
// have required an extra copy, ruled out by design).
#include <cstring>

#include "chant/chant.hpp"
#include "harness/table.hpp"
#include "harness/timer.hpp"

namespace {

double run_pingpong(chant::AddressingMode mode, std::size_t size,
                    int iters) {
  chant::World::Config cfg;
  cfg.pes = 2;
  cfg.rt.addressing = mode;
  cfg.rt.policy = chant::PollPolicy::ThreadPolls;
  cfg.rt.start_server = false;
  chant::World w(cfg);
  double out = 0;
  w.run([&](chant::Runtime& rt) {
    const chant::Gid peer{1 - rt.pe(), 0, chant::kMainLid};
    std::vector<char> buf(size, 'a');
    harness::Timer t;
    if (rt.pe() == 0) {
      for (int i = 0; i < iters; ++i) {
        rt.send(1, buf.data(), size, peer);
        rt.recv(1, buf.data(), size, peer);
      }
      out = t.elapsed_us() / iters;
    } else {
      for (int i = 0; i < iters; ++i) {
        rt.recv(1, buf.data(), size, peer);
        rt.send(1, buf.data(), size, peer);
      }
    }
  });
  return out;
}

}  // namespace

int main() {
  constexpr int kIters = 20000;
  std::printf("== Ablation: tag-overload vs header-field thread naming ==\n");
  harness::Table t({"size_B", "tag_overload_us", "header_field_us",
                    "delta_%", "tag_bits_lost", "max_threads"});
  for (std::size_t size : {64ul, 1024ul, 8192ul}) {
    const double tag =
        run_pingpong(chant::AddressingMode::TagOverload, size, kIters);
    const double hdr =
        run_pingpong(chant::AddressingMode::HeaderField, size, kIters);
    chant::TagCodec over{chant::AddressingMode::TagOverload};
    t.add_row({harness::fmt("%zu", size), harness::fmt("%.3f", tag),
               harness::fmt("%.3f", hdr),
               harness::fmt("%.1f", 100.0 * (tag - hdr) / hdr),
               "16 of 32", harness::fmt("%d", over.max_lid())});
  }
  t.print("ablation_addressing");
  return 0;
}
