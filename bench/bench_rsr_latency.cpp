// bench_rsr_latency — characterizes the §3.2 remote-service-request
// layer the paper designed but had not yet measured: round-trip latency
// of a synchronous RSR versus payload size, the cost of the big-reply
// tail path, and the effect of the server thread's priority boost when
// computation threads compete for the PE. Alongside the latencies it
// reports what the descriptor path promises to keep at zero: bytes
// staged in intermediate buffers and temporary staging allocations per
// call (nx counters, summed over every endpoint).
//
// With --check-zero-alloc it instead runs the CI smoke gate: a
// steady-state single-pe RSR loop that must complete with zero staged
// bytes, zero staging allocations, and zero fresh buffer-pool blocks —
// exit status 1 if any counter moved.
#include <cstring>
#include <thread>
#include <vector>

#include "chant/chant.hpp"
#include "harness/bench_json.hpp"
#include "harness/table.hpp"
#include "harness/timer.hpp"
#include "harness/workload.hpp"

namespace {

void echo_handler(chant::Runtime&, chant::Runtime::RsrContext&,
                  const void* arg, std::size_t len,
                  std::vector<std::uint8_t>& reply) {
  reply.assign(static_cast<const std::uint8_t*>(arg),
               static_cast<const std::uint8_t*>(arg) + len);
}

/// Staging totals across every endpoint of the world (copies happen on
/// the *destination* endpoint, so a round trip touches both sides).
struct Staging {
  std::uint64_t bytes_copied = 0;
  std::uint64_t temp_allocs = 0;
};

Staging staging_sum(chant::World& w, int pes) {
  Staging s;
  for (int pe = 0; pe < pes; ++pe) {
    const nx::Counters& c = w.machine().endpoint(pe, 0).counters();
    s.bytes_copied += c.bytes_copied.load();
    s.temp_allocs += c.temp_allocs.load();
  }
  return s;
}

struct RsrResult {
  double us_per_call = 0;
  double copies_per_call = 0;  ///< bytes staged en route, per call
  double allocs_per_call = 0;  ///< staging allocations, per call
};

RsrResult run_rsr(bool boost, std::size_t payload, int compute_threads,
                  int iters) {
  chant::World::Config cfg;
  cfg.pes = 2;
  cfg.rt.policy = chant::PollPolicy::SchedulerPollsPS;
  cfg.rt.server_high_priority = boost;
  chant::World w(cfg);
  const int echo = w.register_handler(&echo_handler);
  RsrResult out;
  w.run([&](chant::Runtime& rt) {
    // Competing computation threads on the *server's* pe (pe 1): without
    // the priority boost, a received RSR waits behind them in the queue.
    struct Stop {
      bool flag = false;
    };
    Stop stop;
    std::vector<chant::Gid> busy;
    if (rt.pe() == 1) {
      for (int i = 0; i < compute_threads; ++i) {
        busy.push_back(rt.create(
            [](void* p) -> void* {
              auto* s = static_cast<Stop*>(p);
              while (!s->flag) {
                harness::consume(harness::compute(200));
                chant::Runtime::current()->yield();
                // Donate the OS timeslice so the requesting PE (which
                // shares this core in the simulation) makes progress.
                std::this_thread::yield();
              }
              return nullptr;
            },
            &stop, PTHREAD_CHANTER_LOCAL, PTHREAD_CHANTER_LOCAL));
      }
    }
    if (rt.pe() == 0) {
      std::vector<std::uint8_t> arg(payload, 0x5A);
      // warm-up
      (void)rt.call(1, 0, echo, arg.data(), arg.size());
      const Staging before = staging_sum(w, cfg.pes);
      harness::Timer t;
      for (int i = 0; i < iters; ++i) {
        const auto rep = rt.call(1, 0, echo, arg.data(), arg.size());
      }
      out.us_per_call = t.elapsed_us() / iters;
      const Staging after = staging_sum(w, cfg.pes);
      out.copies_per_call =
          static_cast<double>(after.bytes_copied - before.bytes_copied) /
          iters;
      out.allocs_per_call =
          static_cast<double>(after.temp_allocs - before.temp_allocs) /
          iters;
      char done = 1;
      rt.send(99, &done, 1, chant::Gid{1, 0, chant::kMainLid});
    } else {
      char done = 0;
      rt.recv(99, &done, 1, chant::Gid{0, 0, chant::kMainLid});
      stop.flag = true;
      for (const auto& g : busy) rt.join(g);
    }
  });
  return out;
}

/// The CI smoke gate. Single pe + scheduler-polls make the steady state
/// deterministic: the server re-posts its pooled receive before the
/// caller resumes, every reply lands in the pre-posted landing zone, and
/// the pool recycles every scratch buffer. Any nonzero delta means a
/// copy or allocation crept back into the message path.
int check_zero_alloc() {
  constexpr int kWarmup = 5;
  constexpr int kIters = 2000;
  chant::World::Config cfg;
  cfg.pes = 1;
  cfg.rt.policy = chant::PollPolicy::SchedulerPollsPS;
  chant::World w(cfg);
  const int echo = w.register_handler(&echo_handler);
  int rc = 1;
  w.run([&](chant::Runtime& rt) {
    std::uint8_t arg[64];
    std::memset(arg, 0x5A, sizeof arg);
    for (int i = 0; i < kWarmup; ++i) {
      (void)rt.call(0, 0, echo, arg, sizeof arg);
    }
    const nx::Counters& nc = rt.net_counters();
    const std::uint64_t copies0 = nc.bytes_copied.load();
    const std::uint64_t allocs0 = nc.temp_allocs.load();
    const std::uint64_t fresh0 = rt.buffer_pool().stats().fresh;
    for (int i = 0; i < kIters; ++i) {
      (void)rt.call(0, 0, echo, arg, sizeof arg);
    }
    const std::uint64_t copies = nc.bytes_copied.load() - copies0;
    const std::uint64_t allocs = nc.temp_allocs.load() - allocs0;
    const std::uint64_t fresh = rt.buffer_pool().stats().fresh - fresh0;
    std::printf("zero-alloc check: %d steady-state RSR calls\n", kIters);
    std::printf("  bytes staged en route : %llu\n",
                static_cast<unsigned long long>(copies));
    std::printf("  staging allocations   : %llu\n",
                static_cast<unsigned long long>(allocs));
    std::printf("  fresh pool blocks     : %llu\n",
                static_cast<unsigned long long>(fresh));
    rc = (copies == 0 && allocs == 0 && fresh == 0) ? 0 : 1;
    std::printf("%s\n", rc == 0 ? "PASS" : "FAIL");
  });
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--check-zero-alloc") == 0) {
    return check_zero_alloc();
  }
  constexpr int kIters = 3000;
  std::printf("== RSR round-trip latency (sync call through the server "
              "thread, §3.2) ==\n");
  harness::Table t({"payload_B", "reply_path", "idle_pe_us",
                    "busy_boost_us", "busy_noboost_us", "copies_B_call",
                    "tmp_allocs_call"});
  harness::BenchJson json("rsr_latency");
  json.config("iters", kIters);
  // Worlds below use TransportKind::Default, so the active backend is
  // whatever CHANT_TRANSPORT resolves to — record it with the numbers.
  json.config("transport", nx::to_string(nx::resolve_transport(
                               nx::TransportKind::Default)));
  for (std::size_t payload : {16ul, 512ul, 2048ul, 8192ul}) {
    const char* path = payload <= 1024 ? "inline" : "tail";
    const RsrResult idle = run_rsr(true, payload, 0, kIters);
    const RsrResult boost = run_rsr(true, payload, 6, kIters);
    const RsrResult noboost = run_rsr(false, payload, 6, kIters);
    t.add_row({harness::fmt("%zu", payload), path,
               harness::fmt("%.2f", idle.us_per_call),
               harness::fmt("%.2f", boost.us_per_call),
               harness::fmt("%.2f", noboost.us_per_call),
               harness::fmt("%.1f", idle.copies_per_call),
               harness::fmt("%.3f", idle.allocs_per_call)});
    const std::string p = std::to_string(payload);
    json.metric("idle_" + p + "B_us", idle.us_per_call, "us/call");
    json.metric("boost_" + p + "B_us", boost.us_per_call, "us/call");
    json.metric("noboost_" + p + "B_us", noboost.us_per_call, "us/call");
  }
  t.print("rsr_latency");
  if (const char* path = harness::BenchJson::json_path(argc, argv)) {
    if (!json.write(path)) return 1;
  }
  return 0;
}
