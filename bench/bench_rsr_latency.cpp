// bench_rsr_latency — characterizes the §3.2 remote-service-request
// layer the paper designed but had not yet measured: round-trip latency
// of a synchronous RSR versus payload size, the cost of the big-reply
// tail path, and the effect of the server thread's priority boost when
// computation threads compete for the PE.
#include <cstring>
#include <thread>
#include <vector>

#include "chant/chant.hpp"
#include "harness/table.hpp"
#include "harness/timer.hpp"
#include "harness/workload.hpp"

namespace {

void echo_handler(chant::Runtime&, chant::Runtime::RsrContext&,
                  const void* arg, std::size_t len,
                  std::vector<std::uint8_t>& reply) {
  reply.assign(static_cast<const std::uint8_t*>(arg),
               static_cast<const std::uint8_t*>(arg) + len);
}

double run_rsr(bool boost, std::size_t payload, int compute_threads,
               int iters) {
  chant::World::Config cfg;
  cfg.pes = 2;
  cfg.rt.policy = chant::PollPolicy::SchedulerPollsPS;
  cfg.rt.server_high_priority = boost;
  chant::World w(cfg);
  const int echo = w.register_handler(&echo_handler);
  double out = 0;
  w.run([&](chant::Runtime& rt) {
    // Competing computation threads on the *server's* pe (pe 1): without
    // the priority boost, a received RSR waits behind them in the queue.
    struct Stop {
      bool flag = false;
    };
    Stop stop;
    std::vector<chant::Gid> busy;
    if (rt.pe() == 1) {
      for (int i = 0; i < compute_threads; ++i) {
        busy.push_back(rt.create(
            [](void* p) -> void* {
              auto* s = static_cast<Stop*>(p);
              while (!s->flag) {
                harness::consume(harness::compute(200));
                chant::Runtime::current()->yield();
                // Donate the OS timeslice so the requesting PE (which
                // shares this core in the simulation) makes progress.
                std::this_thread::yield();
              }
              return nullptr;
            },
            &stop, PTHREAD_CHANTER_LOCAL, PTHREAD_CHANTER_LOCAL));
      }
    }
    if (rt.pe() == 0) {
      std::vector<std::uint8_t> arg(payload, 0x5A);
      // warm-up
      (void)rt.call(1, 0, echo, arg.data(), arg.size());
      harness::Timer t;
      for (int i = 0; i < iters; ++i) {
        const auto rep = rt.call(1, 0, echo, arg.data(), arg.size());
      }
      out = t.elapsed_us() / iters;
      char done = 1;
      rt.send(99, &done, 1, chant::Gid{1, 0, chant::kMainLid});
    } else {
      char done = 0;
      rt.recv(99, &done, 1, chant::Gid{0, 0, chant::kMainLid});
      stop.flag = true;
      for (const auto& g : busy) rt.join(g);
    }
  });
  return out;
}

}  // namespace

int main() {
  constexpr int kIters = 3000;
  std::printf("== RSR round-trip latency (sync call through the server "
              "thread, §3.2) ==\n");
  harness::Table t({"payload_B", "reply_path", "idle_pe_us",
                    "busy_boost_us", "busy_noboost_us"});
  for (std::size_t payload : {16ul, 512ul, 2048ul, 8192ul}) {
    const char* path = payload <= 1024 ? "inline" : "tail";
    const double idle = run_rsr(true, payload, 0, kIters);
    const double boost = run_rsr(true, payload, 6, kIters);
    const double noboost = run_rsr(false, payload, 6, kIters);
    t.add_row({harness::fmt("%zu", payload), path,
               harness::fmt("%.2f", idle), harness::fmt("%.2f", boost),
               harness::fmt("%.2f", noboost)});
  }
  t.print("rsr_latency");
  return 0;
}
