// bench_selector — Selector wakeup cost versus registered fan-in.
//
// The Selector's contract (DESIGN.md §11) is that waiting costs
// O(ready), not O(waiting): a fiber multiplexed over 4096 sources pays
// the same per-wakeup price as one waiting on a single handle, because
// readiness arrives through completion callbacks instead of a scan of
// the registration table. This bench puts a number on that claim. For
// fan-in N in {1, 64, 4096} — N live irecv registrations, exactly one
// of which has traffic — it measures
//   ready_us_N   — discovery cost when the source is already complete
//                  at wait() time (send, then wait): the no-park path.
//   wakeup_us_N  — full parked round trip against a sender in a peer
//                  process: park → completion fire → poll_wake →
//                  report → pong.
//   drain_msg_per_s_N — throughput of a pipelined burst harvested
//                  through one Selector with repost + re-add per
//                  message (the epoll-style steady-state loop).
// The sender lives in its own process (own nx endpoint): the pong must
// not probe the receiver's 4096-deep masked posted queue, or the
// numbers measure the matching engine's wildcard scan instead of the
// Selector (a real effect, but bench_matching_scale's, not ours).
// All three metrics are gated in CI (tools/bench_gate.py) against the
// committed BENCH_selector.json; the ready_4096_over_1 ratio is the
// flatness record — it should sit near 1.0, and a rewrite that
// reintroduces an O(waiting) walk shows up as a multiple-of-N jump.
//
// Flags: --smoke (shrunk rounds for CI), --json <path>.
#include <cstdlib>
#include <cstring>
#include <unordered_map>
#include <vector>

#include "chant/chant.hpp"
#include "harness/bench_json.hpp"
#include "harness/table.hpp"
#include "harness/timer.hpp"

namespace {

constexpr int kTagPing = 7;
constexpr int kTagPong = 8;
constexpr int kTagGo = 9;

struct Fanin {
  chant::Runtime* rt = nullptr;
  chant::Selector* sel = nullptr;
  std::vector<long> bufs;
  std::unordered_map<int, std::size_t> slot_of;  // handle -> buffer slot

  void post_all(int n) {
    bufs.assign(static_cast<std::size_t>(n), 0);
    slot_of.clear();
    for (int i = 0; i < n; ++i) {
      const int h = rt->irecv(kTagPing, &bufs[static_cast<std::size_t>(i)],
                              sizeof(long), chant::kAnyThread);
      slot_of[h] = static_cast<std::size_t>(i);
      sel->add_recv(h);
    }
  }

  /// Harvests one reported receive and re-arms its slot, keeping the
  /// registered fan-in constant — the steady-state loop every consumer
  /// of the Selector runs.
  void harvest_and_rearm(const chant::Selector::Ready& r) {
    const std::size_t slot = slot_of.at(r.handle);
    slot_of.erase(r.handle);
    (void)rt->msgtest(r.handle);  // reported ready ⇒ succeeds
    const int h = rt->irecv(kTagPing, &bufs[slot], sizeof(long),
                            chant::kAnyThread);
    slot_of[h] = slot;
    sel->add_recv(h);
  }

  void drain_remaining() {
    for (const auto& kv : slot_of) (void)rt->cancel_irecv(kv.first);
    slot_of.clear();
  }
};

struct Row {
  int fanin = 0;
  double ready_us = 0;
  double wakeup_us = 0;
  double drain_per_s = 0;
};

/// Process 1: waits for a go message per phase, then drives the ping
/// (+pong for the latency phase) traffic against process 0's Selector.
void peer_process(chant::Runtime& rt, int wakeup_rounds, int drain_msgs) {
  const chant::Gid owner{0, 0, chant::kMainLid};
  long go = 0;
  long v = 1;
  long pong = 0;
  rt.recv(kTagGo, &go, sizeof go, chant::kAnyThread);
  for (int r = 0; r < wakeup_rounds; ++r) {
    rt.send(kTagPing, &v, sizeof v, owner);
    rt.recv(kTagPong, &pong, sizeof pong, chant::kAnyThread);
  }
  rt.recv(kTagGo, &go, sizeof go, chant::kAnyThread);
  for (int m = 0; m < drain_msgs; ++m) {
    rt.send(kTagPing, &v, sizeof v, owner);
  }
}

Row measure(int fanin, int ready_rounds, int wakeup_rounds, int drain_msgs) {
  Row row;
  row.fanin = fanin;
  chant::World::Config cfg;
  cfg.pes = 1;
  cfg.processes_per_pe = 2;
  cfg.rt.policy = chant::PollPolicy::SchedulerPollsWQ;
  chant::World w(cfg);
  w.run([&](chant::Runtime& rt) {
    if (rt.process() == 1) {
      peer_process(rt, wakeup_rounds, drain_msgs);
      return;
    }
    const chant::Gid peer{0, 1, chant::kMainLid};
    chant::Selector sel(rt);
    Fanin f;
    f.rt = &rt;
    f.sel = &sel;
    std::vector<chant::Selector::Ready> ready;
    long go = 1;

    // --- ready path: source complete before wait() is called ---
    f.post_all(fanin);
    {
      long v = 1;
      const chant::Gid self = rt.self();
      harness::Timer t;
      for (int r = 0; r < ready_rounds; ++r) {
        rt.send(kTagPing, &v, sizeof v, self);
        if (!sel.wait(&ready).ok() || ready.size() != 1) std::abort();
        f.harvest_and_rearm(ready[0]);
      }
      row.ready_us = t.elapsed_us() / ready_rounds;
    }

    // --- parked wakeup: cross-process ping-pong ---
    {
      long pong = 2;
      rt.send(kTagGo, &go, sizeof go, peer);
      harness::Timer t;
      for (int r = 0; r < wakeup_rounds; ++r) {
        if (!sel.wait(&ready).ok() || ready.size() != 1) std::abort();
        f.harvest_and_rearm(ready[0]);
        rt.send(kTagPong, &pong, sizeof pong, peer);
      }
      row.wakeup_us = t.elapsed_us() / wakeup_rounds;
    }

    // --- pipelined drain throughput ---
    {
      rt.send(kTagGo, &go, sizeof go, peer);
      int got = 0;
      harness::Timer t;
      while (got < drain_msgs) {
        if (!sel.wait(&ready).ok()) std::abort();
        for (const auto& r : ready) {
          f.harvest_and_rearm(r);
          ++got;
        }
      }
      row.drain_per_s = 1e6 * drain_msgs / t.elapsed_us();
    }

    f.drain_remaining();
  });
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  // Each timed region must outlast scheduler-timeslice noise (tens of
  // ms) even in smoke, or the CI gate flakes on shared runners.
  const int kReadyRounds = smoke ? 5000 : 40000;
  const int kWakeupRounds = smoke ? 3000 : 20000;
  const int kDrainMsgs = smoke ? 20000 : 200000;

  std::printf("== Selector wakeup cost vs fan-in%s ==\n\n",
              smoke ? " (smoke)" : "");

  harness::Table t({"fanin", "ready_us", "wakeup_us", "drain_msg_per_s"});
  harness::BenchJson json("selector");
  json.config("smoke", smoke ? "true" : "false");
  json.config("ready_rounds", kReadyRounds);
  json.config("wakeup_rounds", kWakeupRounds);
  json.config("drain_msgs", kDrainMsgs);

  std::vector<Row> rows;
  for (int fanin : {1, 64, 4096}) {
    const Row r = measure(fanin, kReadyRounds, kWakeupRounds, kDrainMsgs);
    rows.push_back(r);
    t.add_row({harness::fmt("%d", fanin), harness::fmt("%.3f", r.ready_us),
               harness::fmt("%.3f", r.wakeup_us),
               harness::fmt("%.0f", r.drain_per_s)});
    const std::string ns = std::to_string(fanin);
    json.metric("ready_us_" + ns, r.ready_us, "us");
    json.metric("wakeup_us_" + ns, r.wakeup_us, "us");
    json.metric("drain_msg_per_s_" + ns, r.drain_per_s, "msg/s");
  }
  t.print("selector");

  // The O(ready) record: per-wakeup cost at 4096 registrations over the
  // cost at 1. Info-only (ratios of small latencies are noisy), but the
  // printed trajectory is the claim the test campaign pins down.
  const double flat = rows.back().ready_us / rows.front().ready_us;
  std::printf("\nready_us flatness 4096/1: %.2fx\n", flat);
  json.metric("ready_4096_over_1", flat, "x", /*gate=*/false);

  if (const char* path = harness::BenchJson::json_path(argc, argv)) {
    if (!json.write(path)) return 1;
  }
  return 0;
}
