// bench_collectives — group-operation latency (paper Fig. 3's process
// management / group capabilities): barrier, broadcast, and allreduce
// across machine sizes, as used by the HPF/Opus layers above Chant.
#include <vector>

#include "harness/table.hpp"
#include "harness/timer.hpp"
#include "nx/group.hpp"
#include "nx/machine.hpp"

namespace {

struct CollectiveTimes {
  double barrier_us;
  double bcast_us;
  double allreduce_us;
};

CollectiveTimes run(int pes, std::size_t bytes, int iters) {
  nx::Machine m{nx::Machine::Config{pes, 1, nx::NetModel::zero(), 1 << 16}};
  CollectiveTimes out{};
  m.run([&](nx::Endpoint& ep) {
    std::vector<nx::NodeAddr> members;
    for (int p = 0; p < pes; ++p) members.push_back({p, 0});
    nx::Group g(ep, members, 42);
    std::vector<std::uint8_t> buf(bytes, 0x11);
    std::vector<std::int64_t> v(bytes / sizeof(std::int64_t) + 1, 1);
    std::vector<std::int64_t> r(v.size(), 0);
    g.barrier();  // warm-up + alignment
    {
      harness::Timer t;
      for (int i = 0; i < iters; ++i) g.barrier();
      if (g.rank() == 0) out.barrier_us = t.elapsed_us() / iters;
    }
    g.barrier();
    {
      harness::Timer t;
      for (int i = 0; i < iters; ++i) g.broadcast(buf.data(), bytes, 0);
      if (g.rank() == 0) out.bcast_us = t.elapsed_us() / iters;
    }
    g.barrier();
    {
      harness::Timer t;
      for (int i = 0; i < iters; ++i) {
        g.allreduce(v.data(), r.data(), v.size(), nx::ReduceOp::Sum);
      }
      if (g.rank() == 0) out.allreduce_us = t.elapsed_us() / iters;
    }
  });
  return out;
}

}  // namespace

int main() {
  constexpr int kIters = 300;
  std::printf("== Group collectives (binomial trees over the p2p layer) ==\n");
  harness::Table t({"pes", "payload_B", "barrier_us", "bcast_us",
                    "allreduce_us"});
  for (int pes : {2, 4, 8}) {
    for (std::size_t bytes : {64ul, 4096ul}) {
      const CollectiveTimes ct = run(pes, bytes, kIters);
      t.add_row({harness::fmt("%d", pes), harness::fmt("%zu", bytes),
                 harness::fmt("%.2f", ct.barrier_us),
                 harness::fmt("%.2f", ct.bcast_us),
                 harness::fmt("%.2f", ct.allreduce_us)});
    }
  }
  t.print("collectives");
  return 0;
}
