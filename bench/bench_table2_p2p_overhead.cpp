// bench_table2_p2p_overhead — reproduces paper Table 2 / Figure 8:
// the cost of thread-based point-to-point communication versus the raw
// communication layer ("Process"), for message sizes 1K..16K bytes.
//
//   Process     — nx endpoints used directly, whole-OS-thread blocking
//                 (the paper's two-process NX baseline),
//   Thread (TP) — Chant, one thread per PE, Thread-polls policy,
//   Thread (SP) — Chant, Scheduler-polls (PS) policy, which forces the
//                 scheduler into the loop for every receive (the paper's
//                 second thread variant).
//
// Two network modes are reported:
//   raw      — zero modelled latency: the difference between the rows is
//              exactly Chant's software overhead on this machine;
//   paragon  — the calibrated T(n)=L0+n·c model: absolute per-message
//              times land in the paper's microsecond range, so overhead
//              percentages can be compared against Table 2 directly.
#include <cstdlib>
#include <cstring>
#include <vector>

#include "chant/chant.hpp"
#include "harness/table.hpp"
#include "harness/timer.hpp"
#include "nx/machine.hpp"

namespace {

constexpr std::size_t kSizes[] = {1024, 2048, 4096, 8192, 16384};

/// One "message exchange" (the paper's unit): pe 0 sends and receives
/// one message of `size` bytes; pe 1 mirrors. Returns pe 0's time per
/// exchange in microseconds.
double run_process_baseline(const nx::NetModel& net, std::size_t size,
                            int iters) {
  nx::Machine m{nx::Machine::Config{2, 1, net, 16 * 1024}};
  double out = 0;
  m.run([&](nx::Endpoint& ep) {
    std::vector<char> sbuf(size, 's');
    std::vector<char> rbuf(size);
    harness::Timer t;
    if (ep.pe() == 0) {
      for (int i = 0; i < iters; ++i) {
        ep.csend(1, 0, 1, sbuf.data(), size);
        ep.crecv(1, 0, 1, nx::kTagExact, rbuf.data(), size);
      }
      out = t.elapsed_us() / iters;
    } else {
      for (int i = 0; i < iters; ++i) {
        ep.crecv(0, 0, 1, nx::kTagExact, rbuf.data(), size);
        ep.csend(0, 0, 1, sbuf.data(), size);
      }
    }
  });
  return out;
}

struct ThreadExchange {
  double us = 0;            ///< wall time per exchange
  double switches = 0;      ///< complete context switches per message
  double partial = 0;       ///< PS partial-switch tests per message
  double msgtests = 0;      ///< communication-layer tests per message
};

ThreadExchange run_thread_exchange(const nx::NetModel& net,
                                   chant::PollPolicy policy,
                                   std::size_t size, int iters) {
  chant::World::Config cfg;
  cfg.pes = 2;
  cfg.net = net;
  cfg.rt.policy = policy;
  cfg.rt.start_server = false;  // worst case of §4.1: nothing to overlap
  chant::World w(cfg);
  ThreadExchange out;
  w.run([&](chant::Runtime& rt) {
    const chant::Gid peer{1 - rt.pe(), 0, chant::kMainLid};
    std::vector<char> sbuf(size, 's');
    std::vector<char> rbuf(size);
    harness::Timer t;
    if (rt.pe() == 0) {
      for (int i = 0; i < iters; ++i) {
        rt.send(1, sbuf.data(), size, peer);
        rt.recv(1, rbuf.data(), size, peer);
      }
      out.us = t.elapsed_us() / iters;
      // Per-message (send+recv pair) event counts — the §4.1 mechanism:
      // TP pays a full context switch per failed poll, SP a partial one.
      const auto& st = rt.sched_stats();
      const double msgs = 2.0 * iters;
      out.switches = static_cast<double>(st.full_switches) / msgs;
      out.partial = static_cast<double>(st.partial_poll_tests) / msgs;
      out.msgtests =
          static_cast<double>(rt.net_counters().msgtest_calls.load()) / msgs;
    } else {
      for (int i = 0; i < iters; ++i) {
        rt.recv(1, rbuf.data(), size, peer);
        rt.send(1, sbuf.data(), size, peer);
      }
    }
  });
  return out;
}

void run_mode(const char* name, const char* csv_tag, const nx::NetModel& net,
              int iters) {
  std::printf("\n== Table 2 / Figure 8 (%s network, %d exchanges/size) ==\n",
              name, iters);
  harness::Table t({"size_B", "process_us", "thread_TP_us", "TP_ovh_%",
                    "thread_SP_us", "SP_ovh_%", "TP_sw/msg", "SP_sw/msg",
                    "SP_psw/msg"});
  for (std::size_t size : kSizes) {
    const double proc = run_process_baseline(net, size, iters);
    const ThreadExchange tp =
        run_thread_exchange(net, chant::PollPolicy::ThreadPolls, size, iters);
    const ThreadExchange sp = run_thread_exchange(
        net, chant::PollPolicy::SchedulerPollsPS, size, iters);
    t.add_row({harness::fmt("%zu", size), harness::fmt("%.2f", proc),
               harness::fmt("%.2f", tp.us),
               harness::fmt("%.1f", 100.0 * (tp.us - proc) / proc),
               harness::fmt("%.2f", sp.us),
               harness::fmt("%.1f", 100.0 * (sp.us - proc) / proc),
               harness::fmt("%.2f", tp.switches),
               harness::fmt("%.2f", sp.switches),
               harness::fmt("%.2f", sp.partial)});
  }
  t.print(csv_tag);
}

}  // namespace

int main(int argc, char** argv) {
  const int raw_iters = argc > 1 ? std::atoi(argv[1]) : 20000;
  const int cal_iters = argc > 2 ? std::atoi(argv[2]) : 300;
  std::printf("(paper Table 2 for reference: 1K 667/711 6.4%% / 774 15.9%% "
              "... 16K 5532/5625 1.7%% / 5689 2.9%%)\n");
  run_mode("raw", "table2_raw", nx::NetModel::zero(), raw_iters);
  run_mode("paragon-calibrated", "table2_paragon", nx::NetModel::paragon(),
           cal_iters);
  return 0;
}
