// bench_fig13_waiting — the paper's Figure 13 quantity (average number
// of threads waiting on outstanding receive requests, sampled at
// scheduling points) explored along both axes: the paper's alpha sweep
// and a threads-per-pe sweep the paper holds fixed at 12. On modern
// hardware the alpha axis saturates near the thread count (see
// EXPERIMENTS.md); the thread-count axis shows the quantity tracking
// the available waiting population, confirming the sampler measures
// what Figure 13 measures.
#include "polling_common.hpp"

int main() {
  std::printf("== Figure 13: average waiting threads "
              "(Scheduler polls (PS), beta = 100) ==\n");
  harness::Table t({"threads_per_pe", "alpha", "avg_waiting",
                    "waiting_fraction"});
  for (int threads : {2, 4, 8, 12, 16}) {
    for (std::uint64_t alpha : {100ull, 10000ull, 100000ull}) {
      bench::PollingParams pp;
      pp.threads_per_pe = threads;
      pp.iterations = 50;
      pp.alpha = alpha;
      pp.beta = 100;
      pp.policy = chant::PollPolicy::SchedulerPollsPS;
      const bench::PollingResult r = bench::run_polling(pp);
      t.add_row({harness::fmt("%d", threads),
                 harness::fmt("%llu", (unsigned long long)alpha),
                 harness::fmt("%.2f", r.avg_waiting),
                 harness::fmt("%.2f", r.avg_waiting / threads)});
    }
  }
  t.print("fig13");
  return 0;
}
