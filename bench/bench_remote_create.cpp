// bench_remote_create — cost of global thread operations (§3.3): local
// create+join versus remote create+join (which rides the RSR plane and
// involves the destination's server thread plus a join-helper fiber),
// and remote cancel.
#include "chant/chant.hpp"
#include "harness/table.hpp"
#include "harness/timer.hpp"

namespace {

void* trivial(void* a) { return a; }

void* spin(void*) {
  for (;;) chant::Runtime::current()->yield();
}

}  // namespace

int main() {
  constexpr int kIters = 2000;
  chant::World::Config cfg;
  cfg.pes = 2;
  cfg.rt.policy = chant::PollPolicy::SchedulerPollsPS;
  chant::World w(cfg);
  w.run([&](chant::Runtime& rt) {
    if (rt.pe() != 0) return;
    harness::Table t({"operation", "us_per_op"});
    {
      harness::Timer timer;
      for (int i = 0; i < kIters; ++i) {
        const chant::Gid g = rt.create(&trivial, nullptr,
                                       PTHREAD_CHANTER_LOCAL,
                                       PTHREAD_CHANTER_LOCAL);
        rt.join(g);
      }
      t.add_row({"local create+join",
                 harness::fmt("%.2f", timer.elapsed_us() / kIters)});
    }
    {
      harness::Timer timer;
      for (int i = 0; i < kIters; ++i) {
        const chant::Gid g = rt.create(&trivial, nullptr, 1, 0);
        rt.join(g);
      }
      t.add_row({"remote create+join (RSR)",
                 harness::fmt("%.2f", timer.elapsed_us() / kIters)});
    }
    {
      harness::Timer timer;
      for (int i = 0; i < kIters; ++i) {
        const chant::Gid g = rt.create(&spin, nullptr, 1, 0);
        rt.cancel(g);
        rt.join(g);
      }
      t.add_row({"remote create+cancel+join",
                 harness::fmt("%.2f", timer.elapsed_us() / kIters)});
    }
    {
      struct P {
        long x[8];
      } p{};
      harness::Timer timer;
      for (int i = 0; i < kIters; ++i) {
        const chant::Gid g = rt.create_marshalled(
            [](chant::Runtime&, const void*, std::size_t) {}, &p, sizeof p,
            1, 0);
        rt.join(g);
      }
      t.add_row({"remote create+join (marshalled 64B)",
                 harness::fmt("%.2f", timer.elapsed_us() / kIters)});
    }
    std::printf("== Global thread operations (§3.3) ==\n");
    t.print("remote_create");
  });
  return 0;
}
