// bench_remote_create — cost of global thread operations (§3.3): local
// create+join versus remote create+join (which rides the RSR plane and
// involves the destination's server thread plus a join-helper fiber),
// and remote cancel.
#include <cstdint>
#include <string>
#include <vector>

#include "chant/chant.hpp"
#include "harness/table.hpp"
#include "harness/timer.hpp"

namespace {

void* trivial(void* a) { return a; }

void* spin(void*) {
  for (;;) chant::Runtime::current()->yield();
}

}  // namespace

int main() {
  constexpr int kIters = 2000;
  chant::World::Config cfg;
  cfg.pes = 2;
  cfg.rt.policy = chant::PollPolicy::SchedulerPollsPS;
  chant::World w(cfg);
  // Staging totals across both endpoints: every byte parked in an
  // intermediate buffer and every staging allocation the RSR traffic of
  // an operation causes (the descriptor path keeps both near zero).
  const auto staged_bytes = [&w, &cfg] {
    std::uint64_t n = 0;
    for (int pe = 0; pe < cfg.pes; ++pe) {
      n += w.machine().endpoint(pe, 0).counters().bytes_copied.load();
    }
    return n;
  };
  const auto staged_allocs = [&w, &cfg] {
    std::uint64_t n = 0;
    for (int pe = 0; pe < cfg.pes; ++pe) {
      n += w.machine().endpoint(pe, 0).counters().temp_allocs.load();
    }
    return n;
  };
  w.run([&](chant::Runtime& rt) {
    if (rt.pe() != 0) return;
    harness::Table t({"operation", "us_per_op", "copies_B_op",
                      "tmp_allocs_op"});
    std::uint64_t b0 = 0, a0 = 0;
    const auto begin = [&] {
      b0 = staged_bytes();
      a0 = staged_allocs();
    };
    const auto staging_cells = [&](std::vector<std::string>& row) {
      row.push_back(harness::fmt(
          "%.1f", static_cast<double>(staged_bytes() - b0) / kIters));
      row.push_back(harness::fmt(
          "%.3f", static_cast<double>(staged_allocs() - a0) / kIters));
    };
    {
      begin();
      harness::Timer timer;
      for (int i = 0; i < kIters; ++i) {
        const chant::Gid g = rt.create(&trivial, nullptr,
                                       PTHREAD_CHANTER_LOCAL,
                                       PTHREAD_CHANTER_LOCAL);
        rt.join(g);
      }
      std::vector<std::string> row{
          "local create+join",
          harness::fmt("%.2f", timer.elapsed_us() / kIters)};
      staging_cells(row);
      t.add_row(std::move(row));
    }
    {
      begin();
      harness::Timer timer;
      for (int i = 0; i < kIters; ++i) {
        const chant::Gid g = rt.create(&trivial, nullptr, 1, 0);
        rt.join(g);
      }
      std::vector<std::string> row{
          "remote create+join (RSR)",
          harness::fmt("%.2f", timer.elapsed_us() / kIters)};
      staging_cells(row);
      t.add_row(std::move(row));
    }
    {
      begin();
      harness::Timer timer;
      for (int i = 0; i < kIters; ++i) {
        const chant::Gid g = rt.create(&spin, nullptr, 1, 0);
        rt.cancel(g);
        rt.join(g);
      }
      std::vector<std::string> row{
          "remote create+cancel+join",
          harness::fmt("%.2f", timer.elapsed_us() / kIters)};
      staging_cells(row);
      t.add_row(std::move(row));
    }
    {
      struct P {
        long x[8];
      } p{};
      begin();
      harness::Timer timer;
      for (int i = 0; i < kIters; ++i) {
        const chant::Gid g = rt.create_marshalled(
            [](chant::Runtime&, const void*, std::size_t) {}, &p, sizeof p,
            1, 0);
        rt.join(g);
      }
      std::vector<std::string> row{
          "remote create+join (marshalled 64B)",
          harness::fmt("%.2f", timer.elapsed_us() / kIters)};
      staging_cells(row);
      t.add_row(std::move(row));
    }
    std::printf("== Global thread operations (§3.3) ==\n");
    t.print("remote_create");
  });
  return 0;
}
