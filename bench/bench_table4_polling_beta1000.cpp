// bench_table4_polling_beta1000 — reproduces paper Table 4: the same
// polling-algorithm sweep as Table 3 with beta = 1000 (more computation
// between the send and the matching receive).
#include "polling_common.hpp"

int main() {
  bench::run_polling_table("Table 4: polling algorithms", "table4",
                           /*beta=*/1000);
  return 0;
}
