// bench_micro — google-benchmark microbenchmarks of the primitive
// operations every experiment above is built from: context switches,
// thread spawn/join, tag encoding, nx matching, and chant send/recv.
#include <benchmark/benchmark.h>

#include <vector>

#include "chant/chant.hpp"
#include "lwt/lwt.hpp"
#include "nx/machine.hpp"

namespace {

void BM_ContextSwitch(benchmark::State& state) {
  const auto backend = static_cast<lwt::ContextBackend>(state.range(0));
#if defined(LWT_NO_ASM_CONTEXT)
  if (backend == lwt::ContextBackend::Asm) {
    state.SkipWithError("asm backend unavailable");
    return;
  }
#endif
  lwt::run(
      [&] {
        lwt::ThreadAttr attr;
        attr.detached = true;
        bool stop = false;
        lwt::go(
            [&] {
              while (!stop) lwt::yield();
            },
            attr);
        for (auto _ : state) lwt::yield();
        stop = true;
        lwt::yield();
      },
      backend);
  state.SetItemsProcessed(state.iterations() * 2);  // two restores per round
}
BENCHMARK(BM_ContextSwitch)
    ->Arg(static_cast<int>(lwt::ContextBackend::Asm))
    ->Arg(static_cast<int>(lwt::ContextBackend::Ucontext))
    ->ArgNames({"backend"});

void BM_SpawnJoin(benchmark::State& state) {
  lwt::run([&] {
    for (auto _ : state) {
      lwt::Tcb* t = lwt::Scheduler::current()->spawn(
          [](void*) -> void* { return nullptr; }, nullptr);
      lwt::join(t);
    }
  });
}
BENCHMARK(BM_SpawnJoin);

void BM_MutexLockUnlock(benchmark::State& state) {
  lwt::run([&] {
    lwt::Mutex m;
    for (auto _ : state) {
      m.lock();
      m.unlock();
    }
  });
}
BENCHMARK(BM_MutexLockUnlock);

void BM_TagEncodeDecode(benchmark::State& state) {
  const chant::TagCodec codec{static_cast<chant::AddressingMode>(
      state.range(0))};
  nx::MsgHeader h;
  for (auto _ : state) {
    const auto w = codec.encode(5, 9, 1234);
    h.tag = w.tag;
    h.channel = w.channel;
    benchmark::DoNotOptimize(codec.decode_src_lid(h));
    benchmark::DoNotOptimize(codec.decode_user_tag(h));
  }
}
BENCHMARK(BM_TagEncodeDecode)->Arg(0)->Arg(1)->ArgNames({"mode"});

void BM_NxSelfSendRecv(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  nx::Machine m{nx::Machine::Config{1, 1, nx::NetModel::zero(), 1 << 16}};
  nx::Endpoint& ep = m.endpoint(0, 0);
  std::vector<char> sbuf(size, 'x');
  std::vector<char> rbuf(size);
  for (auto _ : state) {
    nx::Handle h = ep.irecv(0, 0, 1, nx::kTagExact, rbuf.data(), size);
    ep.csend(0, 0, 1, sbuf.data(), size);
    benchmark::DoNotOptimize(ep.msgtest(h));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
}
BENCHMARK(BM_NxSelfSendRecv)->Arg(64)->Arg(1024)->Arg(16384);

void BM_NxMsgtestFailed(benchmark::State& state) {
  // The cost the polling algorithms pay per failed poll.
  nx::Machine m{nx::Machine::Config{1, 1, nx::NetModel::zero(), 1 << 16}};
  nx::Endpoint& ep = m.endpoint(0, 0);
  char buf[8];
  nx::Handle h = ep.irecv(0, 0, 1, nx::kTagExact, buf, sizeof buf);
  for (auto _ : state) benchmark::DoNotOptimize(ep.msgtest(h));
  ep.cancel_recv(h);
}
BENCHMARK(BM_NxMsgtestFailed);

void BM_ChantLocalSendRecv(benchmark::State& state) {
  chant::World::Config cfg;
  cfg.pes = 1;
  cfg.rt.start_server = false;
  chant::World w(cfg);
  w.run([&](chant::Runtime& rt) {
    long v = 1;
    long got = 0;
    for (auto _ : state) {
      rt.send(1, &v, sizeof v, rt.self());
      rt.recv(1, &got, sizeof got, rt.self());
    }
    benchmark::DoNotOptimize(got);
  });
}
BENCHMARK(BM_ChantLocalSendRecv);

}  // namespace

BENCHMARK_MAIN();
