// polling_common.hpp — shared driver for the paper's §4.2 polling
// experiments (Tables 3/4/5, Figures 10–13).
//
// Workload = paper Figure 9, verbatim: each of 12 threads per PE runs
//   loop { compute(alpha); send(); compute(beta); recv(); }
// for 100 iterations against its twin thread on the other PE. The
// driver runs it under each polling algorithm and reports, per run:
//   Time   — measured wall-clock (ms) on this hardware,
//   CtxSw  — complete context switches (paper's CtxSw column),
//   msgtest— calls into the communication layer's test primitives
//            (msgtest + msgtestany; the paper's msgtest column),
//   Wait   — average number of threads waiting on outstanding receives
//            (paper Figure 13),
//   Scaled — Paragon-calibrated time (ms) from the cost model, the
//            apples-to-apples comparison against the paper's Time column.
#pragma once

#include <cstdint>
#include <cstdio>
#include <vector>

#include "chant/chant.hpp"
#include "harness/costmodel.hpp"
#include "harness/table.hpp"
#include "harness/timer.hpp"
#include "harness/workload.hpp"

namespace bench {

struct PollingResult {
  double time_ms = 0;
  std::uint64_t ctxsw = 0;
  std::uint64_t partial = 0;
  std::uint64_t msgtest = 0;
  std::uint64_t msgtest_failed = 0;
  double avg_waiting = 0;
  double scaled_ms = 0;
};

struct PollingParams {
  std::uint64_t alpha = 100;
  std::uint64_t beta = 100;
  int threads_per_pe = 12;
  int iterations = 100;
  chant::PollPolicy policy = chant::PollPolicy::ThreadPolls;
  bool wq_testany = false;
};

inline PollingResult run_polling(const PollingParams& pp) {
  chant::World::Config cfg;
  cfg.pes = 2;
  cfg.rt.policy = pp.policy;
  cfg.rt.wq_use_testany = pp.wq_testany;
  cfg.rt.start_server = false;  // §4.2 measured the p2p layer alone
  chant::World w(cfg);
  PollingResult res;
  w.run([&](chant::Runtime& rt) {
    struct Ctx {
      chant::Runtime* rt;
      const PollingParams* pp;
    };
    Ctx ctx{&rt, &pp};
    harness::Timer timer;
    std::vector<chant::Gid> mine;
    for (int i = 0; i < pp.threads_per_pe; ++i) {
      mine.push_back(rt.create(
          [](void* p) -> void* {
            auto& c = *static_cast<Ctx*>(p);
            chant::Runtime& r = *c.rt;
            const chant::Gid peer{1 - r.pe(), 0, r.self().thread};
            for (int it = 0; it < c.pp->iterations; ++it) {
              harness::consume(harness::compute(c.pp->alpha));
              long tick = it;
              r.send(1, &tick, sizeof tick, peer);
              harness::consume(harness::compute(c.pp->beta));
              long got = 0;
              r.recv(1, &got, sizeof got, peer);
            }
            return nullptr;
          },
          &ctx, PTHREAD_CHANTER_LOCAL, PTHREAD_CHANTER_LOCAL));
    }
    for (const auto& g : mine) rt.join(g);
    if (rt.pe() == 0) {
      res.time_ms = timer.elapsed_ms();
      const auto& st = rt.sched_stats();
      auto& nc = rt.net_counters();
      res.ctxsw = st.full_switches;
      res.partial = st.partial_poll_tests;
      res.msgtest = nc.msgtest_calls.load() + nc.testany_calls.load() +
                    st.wq_poll_tests;
      res.msgtest_failed = nc.msgtest_failed.load();
      res.avg_waiting = st.avg_waiting();
      const harness::CostModel cm;
      const double compute_units =
          static_cast<double>(pp.threads_per_pe) * pp.iterations *
          static_cast<double>(pp.alpha + pp.beta);
      res.scaled_ms = cm.scaled_us(st, nc, compute_units) / 1000.0;
    }
  });
  return res;
}

/// Runs the full alpha sweep for one beta (= one paper table) and prints
/// the three-algorithm comparison.
inline void run_polling_table(const char* title, const char* csv_tag,
                              std::uint64_t beta) {
  struct Algo {
    const char* name;
    chant::PollPolicy policy;
    bool testany;
  };
  const Algo algos[] = {
      {"Thread polls", chant::PollPolicy::ThreadPolls, false},
      {"Scheduler polls (PS)", chant::PollPolicy::SchedulerPollsPS, false},
      {"Scheduler polls (WQ)", chant::PollPolicy::SchedulerPollsWQ, false},
  };
  std::printf("\n== %s (beta = %llu) ==\n", title,
              static_cast<unsigned long long>(beta));
  harness::Table t({"algorithm", "alpha", "time_ms", "scaled_ms", "ctxsw",
                    "partial", "msgtest", "failed", "avg_wait"});
  for (const Algo& a : algos) {
    for (std::uint64_t alpha : {100ull, 1000ull, 10000ull, 100000ull}) {
      PollingParams pp;
      pp.alpha = alpha;
      pp.beta = beta;
      pp.policy = a.policy;
      pp.wq_testany = a.testany;
      const PollingResult r = run_polling(pp);
      t.add_row({a.name, harness::fmt("%llu", (unsigned long long)alpha),
                 harness::fmt("%.2f", r.time_ms),
                 harness::fmt("%.0f", r.scaled_ms),
                 harness::fmt("%llu", (unsigned long long)r.ctxsw),
                 harness::fmt("%llu", (unsigned long long)r.partial),
                 harness::fmt("%llu", (unsigned long long)r.msgtest),
                 harness::fmt("%llu", (unsigned long long)r.msgtest_failed),
                 harness::fmt("%.2f", r.avg_waiting)});
    }
  }
  t.print(csv_tag);
}

}  // namespace bench
