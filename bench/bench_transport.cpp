// bench_transport — the cost of the Transport seam: nx-level ping-pong
// latency and one-way bandwidth on each delivery backend. The inproc
// numbers double as the regression gate for the seam itself (the
// refactor promised the simulated-multicomputer fast path verbatim);
// the shmring numbers price a real cross-address-space hop (ring copy,
// doorbell, pump) against it; the tcp numbers price the full socket
// stack on loopback — the floor for what rank mode costs before a real
// network is involved. Fork-mode latency is reported trajectory-only
// (gate=false): process scheduling on shared CI machines is far too
// noisy to gate on.
//
// Flags: --smoke (shrunk iteration counts for CI), --json <path>
#include <atomic>
#include <cstring>
#include <new>
#include <string>
#include <vector>

#include "harness/bench_json.hpp"
#include "harness/table.hpp"
#include "harness/timer.hpp"
#include "nx/machine.hpp"

namespace {

nx::Machine::Config cfg_for(const std::string& spec) {
  nx::Machine::Config c;
  c.pes = 2;
  c.transport_spec = nx::TransportSpec::parse(spec);
  return c;
}

/// Results travel through the machine's shared scratch (bytes 16+, the
/// chant-reserved prefix untouched) so fork mode reports identically.
std::atomic<double>* result_slot(nx::Machine& m) {
  return new (static_cast<unsigned char*>(m.shared_scratch()) + 16)
      std::atomic<double>(0.0);
}

/// Round-trip latency: pe0 sends `size` bytes, pe1 echoes them back.
double pingpong_us(const std::string& spec, int iters, std::size_t size) {
  nx::Machine m{cfg_for(spec)};
  std::atomic<double>* out = result_slot(m);
  m.run([&](nx::Endpoint& ep) {
    std::vector<std::uint8_t> buf(size, 0xA5);
    const int peer = 1 - ep.pe();
    const int warmup = iters / 10 + 1;
    for (int i = -warmup; i < iters; ++i) {
      if (i == 0 && ep.pe() == 0) out->store(0.0);  // reuse as start marker
      if (ep.pe() == 0) {
        ep.csend(peer, 0, 1, buf.data(), buf.size());
        ep.crecv(peer, 0, 2, nx::kTagExact, buf.data(), buf.size());
      } else {
        ep.crecv(peer, 0, 1, nx::kTagExact, buf.data(), buf.size());
        ep.csend(peer, 0, 2, buf.data(), buf.size());
      }
    }
  });
  // Timed run: warmed code paths, measured from pe0 only.
  nx::Machine m2{cfg_for(spec)};
  std::atomic<double>* out2 = result_slot(m2);
  m2.run([&](nx::Endpoint& ep) {
    std::vector<std::uint8_t> buf(size, 0xA5);
    const int peer = 1 - ep.pe();
    harness::Timer t;
    for (int i = 0; i < iters; ++i) {
      if (ep.pe() == 0) {
        ep.csend(peer, 0, 1, buf.data(), buf.size());
        ep.crecv(peer, 0, 2, nx::kTagExact, buf.data(), buf.size());
      } else {
        ep.crecv(peer, 0, 1, nx::kTagExact, buf.data(), buf.size());
        ep.csend(peer, 0, 2, buf.data(), buf.size());
      }
    }
    if (ep.pe() == 0) out2->store(t.elapsed_us() / iters);
  });
  return out2->load();
}

/// One-way stream bandwidth: pe0 pushes `iters` messages of `size`
/// bytes, pe1 acks once after receiving them all.
double stream_mbps(const std::string& spec, int iters, std::size_t size) {
  nx::Machine m{cfg_for(spec)};
  std::atomic<double>* out = result_slot(m);
  m.run([&](nx::Endpoint& ep) {
    std::vector<std::uint8_t> buf(size, 0x3C);
    if (ep.pe() == 0) {
      harness::Timer t;
      for (int i = 0; i < iters; ++i)
        ep.csend(1, 0, 5, buf.data(), buf.size());
      char ack;
      ep.crecv(1, 0, 6, nx::kTagExact, &ack, 1);
      const double secs = t.elapsed_us() / 1e6;
      out->store(static_cast<double>(size) * iters / (1024.0 * 1024.0) /
                 secs);
    } else {
      for (int i = 0; i < iters; ++i)
        ep.crecv(0, 0, 5, nx::kTagExact, buf.data(), buf.size());
      char ack = 1;
      ep.csend(0, 0, 6, &ack, 1);
    }
  });
  return out->load();
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const int kPpIters = smoke ? 500 : 20000;
  const int kBwIters = smoke ? 200 : 4000;
  constexpr std::size_t kSmall = 8;
  constexpr std::size_t kBig = 64 * 1024;

  std::printf("== transport backends: nx ping-pong and stream ==\n");
  harness::Table t({"backend", "pp_8B_us", "bw_64KB_MBps"});
  harness::BenchJson json("transport");
  json.config("pp_iters", kPpIters);
  json.config("bw_iters", kBwIters);
  json.config("smoke", smoke ? "true" : "false");

  // Thread-hosted backends: same two PEs, three delivery mechanisms —
  // shared queues, shm rings, and real loopback sockets.
  for (const char* spec : {"inproc", "shmring", "tcp://127.0.0.1:0"}) {
    const std::string name =
        nx::to_string(nx::TransportSpec::parse(spec).kind);
    const double pp = pingpong_us(spec, kPpIters, kSmall);
    const double bw = stream_mbps(spec, kBwIters, kBig);
    t.add_row({name.c_str(), harness::fmt("%.3f", pp),
               harness::fmt("%.0f", bw)});
    json.metric(name + "_pp_8B_us", pp, "us/rt");
    json.metric(name + "_bw_64KB_MBps", bw, "MB/s");
  }
  // Fork mode: real OS processes over the same rings. Trajectory only.
  const double fork_pp =
      pingpong_us("shmring?fork=1", kPpIters / 10 + 1, kSmall);
  t.add_row({"shmring+fork", harness::fmt("%.3f", fork_pp), "-"});
  json.metric("shmring_fork_pp_8B_us", fork_pp, "us/rt", /*gate=*/false);

  t.print("transport");
  if (const char* path = harness::BenchJson::json_path(argc, argv)) {
    if (!json.write(path)) return 1;
  }
  return 0;
}
