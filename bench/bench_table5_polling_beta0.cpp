// bench_table5_polling_beta0 — reproduces paper Table 5: the polling
// sweep with beta = 0 (receive posted immediately after the send).
#include "polling_common.hpp"

int main() {
  bench::run_polling_table("Table 5: polling algorithms", "table5",
                           /*beta=*/0);
  return 0;
}
