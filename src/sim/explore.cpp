// explore.cpp — seed sweep, failure capture, trace shrinking, repro banner.
#include "sim/explore.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <exception>

#include "gtest/gtest-spi.h"
#include "gtest/gtest.h"

namespace sim {

// ------------------------------------------------------------------ Session

Session::Session(const Options& opt, std::uint64_t seed)
    : opt_(opt), seed_(seed), rng_(seed) {
  if (opt.faults.any()) {
    // Distinct stream from the schedule controllers and the body rng.
    faults_ = std::make_unique<FaultyNet>(opt.faults, seed ^ 0xFA17EDull);
  }
}

Session::~Session() = default;

void Session::apply(chant::World::Config& cfg) {
  cfg.clock = &VirtualClock::read;
  cfg.clock_ctx = &clock_;
  if (faults_ != nullptr) cfg.fault = faults_.get();
  cfg.rt.controller_factory = &Session::factory;
  cfg.rt.controller_ctx = this;
}

lwt::ScheduleController* Session::factory(void* self, int pe, int proc) {
  return static_cast<Session*>(self)->make_controller(pe, proc);
}

lwt::ScheduleController* Session::make_controller(int pe, int proc) {
  std::lock_guard<std::mutex> lk(mu_);
  const std::size_t k = controllers_.size();
  std::unique_ptr<RecordingController> c;
  if (!replay_.empty()) {
    // Replay mode: the k-th controller created replays the k-th recorded
    // segment (creation order is deterministic wherever replay is
    // guaranteed, i.e. single-process worlds).
    DecisionTrace t = k < replay_.size() ? replay_[k] : DecisionTrace{};
    c = std::make_unique<TraceController>(std::move(t), &clock_,
                                          opt_.quantum_ns);
  } else if (opt_.strategy == Strategy::RoundRobin) {
    c = std::make_unique<RoundRobinController>(&clock_, opt_.quantum_ns);
  } else {
    // Per-process stream derived from (pe, proc), not creation order, so
    // multi-process worlds get stable streams per process.
    const std::uint64_t mix =
        seed_ + 0x9E3779B97F4A7C15ull *
                    (static_cast<std::uint64_t>(pe) * 1024u +
                     static_cast<std::uint64_t>(proc) + 1u);
    c = std::make_unique<RandomController>(mix, &clock_, opt_.quantum_ns);
  }
  controllers_.push_back(std::move(c));
  return controllers_.back().get();
}

std::string Session::trace_text() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::string out;
  for (std::size_t i = 0; i < controllers_.size(); ++i) {
    if (i != 0) out.push_back('/');
    out += controllers_[i]->trace().encode();
  }
  return out;
}

std::size_t Session::decisions() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::size_t n = 0;
  for (const auto& c : controllers_) n += c->decisions();
  return n;
}

void Session::replay(const std::string& text) {
  replay_.clear();
  std::size_t pos = 0;
  for (;;) {
    std::size_t end = text.find('/', pos);
    if (end == std::string::npos) {
      replay_.push_back(DecisionTrace::parse(text.substr(pos)));
      break;
    }
    replay_.push_back(DecisionTrace::parse(text.substr(pos, end - pos)));
    pos = end + 1;
  }
}

// ------------------------------------------------------------------ explore

namespace {

struct RunOutcome {
  bool failed = false;
  std::string message;
  std::string trace;
  std::size_t decisions = 0;
};

/// One seeded (or replayed) run with every gtest failure intercepted, so
/// probe and shrink runs never poison the enclosing test's result.
RunOutcome run_captured(const Options& opt, std::uint64_t seed,
                        const std::string* replay_text,
                        const std::function<void(Session&)>& body) {
  Session s(opt, seed);
  if (replay_text != nullptr) s.replay(*replay_text);
  RunOutcome out;
  {
    testing::TestPartResultArray results;
    testing::ScopedFakeTestPartResultReporter reporter(
        testing::ScopedFakeTestPartResultReporter::INTERCEPT_ALL_THREADS,
        &results);
    try {
      body(s);
    } catch (const std::exception& e) {
      out.failed = true;
      out.message = std::string("uncaught exception: ") + e.what();
    } catch (...) {
      out.failed = true;
      out.message = "uncaught non-standard exception";
    }
    for (int i = 0; i < results.size(); ++i) {
      const testing::TestPartResult& r = results.GetTestPartResult(i);
      if (!r.failed()) continue;
      out.failed = true;
      if (out.message.empty()) {
        out.message = std::string(r.file_name() != nullptr ? r.file_name()
                                                           : "<unknown>") +
                      ":" + std::to_string(r.line_number()) + ": " +
                      r.message();
      }
      break;
    }
  }
  out.trace = s.trace_text();
  out.decisions = s.decisions();
  return out;
}

std::string current_test_name() {
  const testing::TestInfo* ti =
      testing::UnitTest::GetInstance()->current_test_info();
  if (ti == nullptr) return "<test>";
  return std::string(ti->test_suite_name()) + "." + ti->name();
}

std::string prefix_of(const std::string& enc, std::size_t len) {
  DecisionTrace t = DecisionTrace::parse(enc);
  if (t.choices.size() > len) t.choices.resize(len);
  return t.encode();
}

/// Smallest prefix of the failing trace that still fails, by binary
/// search (failure is treated as monotone in the prefix length — when it
/// is not, the verification run below rejects the result and the full
/// trace is reported instead).
std::string shrink_trace(const Options& opt, std::uint64_t seed,
                         const std::string& full,
                         const std::function<void(Session&)>& body) {
  const std::size_t total = DecisionTrace::parse(full).choices.size();
  std::size_t lo = 0;
  std::size_t hi = total;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    const std::string candidate = prefix_of(full, mid);
    if (run_captured(opt, seed, &candidate, body).failed) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  if (hi >= total) return {};
  const std::string shrunk = prefix_of(full, hi);
  if (!run_captured(opt, seed, &shrunk, body).failed) return {};
  return shrunk;
}

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::strtoull(v, nullptr, 0);
}

}  // namespace

Result explore(const Options& opt_in,
               const std::function<void(Session&)>& body) {
  Options opt = opt_in;
  opt.seeds = static_cast<std::size_t>(env_u64("CHANT_SIM_SEEDS", opt.seeds));
  opt.base_seed = env_u64("CHANT_SIM_BASE_SEED", opt.base_seed);
  const char* seed_env = std::getenv("CHANT_SIM_SEED");
  const char* trace_env = std::getenv("CHANT_SIM_TRACE");
  if (seed_env != nullptr || trace_env != nullptr) {
    // Direct repro: one run, nothing intercepted — assertion failures
    // surface as this very test's failures, under a debugger if desired.
    Result res;
    res.seed = seed_env != nullptr ? std::strtoull(seed_env, nullptr, 0)
                                   : opt.base_seed;
    res.iterations = 1;
    Session s(opt, res.seed);
    if (trace_env != nullptr) s.replay(trace_env);
    body(s);
    res.failed = testing::Test::HasFailure();
    res.trace = s.trace_text();
    return res;
  }

  Result res;
  for (std::size_t i = 0; i < opt.seeds; ++i) {
    const std::uint64_t seed = opt.base_seed + i;
    RunOutcome o = run_captured(opt, seed, nullptr, body);
    ++res.iterations;
    if (o.failed) {
      res.failed = true;
      res.seed = seed;
      res.trace = o.trace;
      res.first_message = o.message;
      break;
    }
  }
  if (!res.failed) return res;

  // Prefix-shrink only single-segment traces: multi-process replay is
  // not bit-guaranteed, so a "shrunken" trace there proves nothing.
  if (opt.shrink && res.trace.find('/') == std::string::npos) {
    res.shrunk = shrink_trace(opt, res.seed, res.trace, body);
  }
  const std::string name = current_test_name();
  const std::string& best = res.shrunk.empty() ? res.trace : res.shrunk;
  std::fprintf(stderr,
               "[  SIM  ] %s: seed %" PRIu64 " failed (iteration %zu of %zu)\n"
               "[  SIM  ] first failure: %s\n"
               "[  SIM  ] repro:  CHANT_SIM_SEED=%" PRIu64
               " ctest -R '%s' --output-on-failure\n"
               "[  SIM  ] replay: CHANT_SIM_SEED=%" PRIu64
               " CHANT_SIM_TRACE='%s' ctest -R '%s' --output-on-failure\n",
               name.c_str(), res.seed, res.iterations, opt.seeds,
               res.first_message.c_str(), res.seed, name.c_str(), res.seed,
               best.c_str(), name.c_str());
  if (opt.report) {
    ADD_FAILURE() << "sim: seed " << res.seed << " failed after "
                  << res.iterations << " interleavings: " << res.first_message
                  << "\n  repro: CHANT_SIM_SEED=" << res.seed << " ctest -R '"
                  << name << "' --output-on-failure"
                  << "\n  replay trace (" << DecisionTrace::parse(best).choices.size()
                  << " decisions): CHANT_SIM_TRACE='" << best << "'";
  }
  return res;
}

}  // namespace sim
