// controller.cpp — decision-trace text format.
#include "sim/controller.hpp"

#include <cstdlib>

namespace sim {

std::string DecisionTrace::encode() const {
  std::string out;
  out.reserve(choices.size() * 2);
  for (std::size_t i = 0; i < choices.size(); ++i) {
    if (i != 0) out.push_back(',');
    out += std::to_string(choices[i]);
  }
  return out;
}

DecisionTrace DecisionTrace::parse(const std::string& text) {
  DecisionTrace t;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t end = text.find(',', pos);
    if (end == std::string::npos) end = text.size();
    if (end > pos) {
      t.choices.push_back(static_cast<std::uint32_t>(
          std::strtoul(text.c_str() + pos, nullptr, 10)));
    }
    pos = end + 1;
  }
  return t;
}

}  // namespace sim
