// transport_inproc.cpp — in-process backend: direct synchronous accept,
// std::thread process hosting, condition-variable barrier.
#include "transport_inproc.hpp"

#include <cstring>

#include "nx/machine.hpp"

namespace nx {

InProcTransport::InProcTransport() {
  std::memset(scratch_.bytes, 0, sizeof scratch_.bytes);
}

bool InProcTransport::submit(Machine& m, const MsgHeader& h, int dst_pe,
                             int dst_proc, const IoVec* iov,
                             std::size_t iovcnt,
                             std::atomic<bool>* sender_flag) {
  // The pre-seam delivery path verbatim: lock the destination's matching
  // state on the sender's OS thread, match or queue, flush waiter fires
  // after the lock drops. false = rendezvous (receiver raises the flag).
  return deliver(m.endpoint(dst_pe, dst_proc), h, iov, iovcnt, sender_flag);
}

void InProcTransport::run(Machine& m,
                          const std::function<void(Endpoint&)>& process_main) {
  run_threads(m, process_main);
}

void InProcTransport::barrier(Machine& m) {
  std::unique_lock<std::mutex> lk(bar_mu_);
  const std::uint64_t gen = bar_gen_;
  if (++bar_arrived_ == static_cast<std::size_t>(m.total_processes())) {
    bar_arrived_ = 0;
    ++bar_gen_;
    bar_cv_.notify_all();
    return;
  }
  bar_cv_.wait(lk, [&] { return bar_gen_ != gen; });
}

}  // namespace nx
