// transport_shmring.cpp — cross-process backend over one MAP_SHARED
// anonymous segment: N*N SPSC byte rings, futex doorbells, a
// sense-reversing barrier, and optional fork-per-process hosting.
// See transport_shmring.hpp for the wire protocol overview.
#include "transport_shmring.hpp"

#include <sys/mman.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>
#include <thread>

#include "nx/machine.hpp"

#if defined(__linux__)
#include <linux/futex.h>
#include <sys/syscall.h>
#endif

namespace nx {

namespace {

constexpr std::uint32_t kSegMagic = 0x43524e47;  // "CRNG"

std::size_t align64(std::size_t n) noexcept { return (n + 63) & ~std::size_t{63}; }

std::size_t round_pow2(std::size_t n) noexcept {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

// Futex on shared memory: NOT the _PRIVATE variants — fork mode waits
// and wakes across address spaces. Timeouts bound every wait so a lost
// wake degrades to latency, never to a hang.
#if defined(__linux__)
void futex_wait_bounded(std::atomic<std::uint32_t>* addr, std::uint32_t expected,
                        std::uint64_t timeout_ns) {
  timespec ts;
  ts.tv_sec = static_cast<time_t>(timeout_ns / 1000000000ull);
  ts.tv_nsec = static_cast<long>(timeout_ns % 1000000000ull);
  syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(addr), FUTEX_WAIT,
          expected, &ts, nullptr, 0);
}

void futex_wake_all(std::atomic<std::uint32_t>* addr) {
  syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(addr), FUTEX_WAKE,
          INT32_MAX, nullptr, nullptr, 0);
}
#else
void futex_wait_bounded(std::atomic<std::uint32_t>* addr, std::uint32_t expected,
                        std::uint64_t timeout_ns) {
  (void)timeout_ns;
  if (addr->load(std::memory_order_acquire) == expected)
    std::this_thread::yield();
}

void futex_wake_all(std::atomic<std::uint32_t>*) {}
#endif

/// Copies [offset, offset+n) of the gathered fragment list into dst.
void copy_from_iov(std::uint8_t* dst, const IoVec* iov, std::size_t iovcnt,
                   std::size_t offset, std::size_t n) {
  std::size_t i = 0;
  while (i < iovcnt && offset >= iov[i].len) {
    offset -= iov[i].len;
    ++i;
  }
  while (n != 0 && i < iovcnt) {
    const std::size_t take = std::min(n, iov[i].len - offset);
    if (take != 0)
      std::memcpy(dst, static_cast<const std::uint8_t*>(iov[i].base) + offset,
                  take);
    dst += take;
    n -= take;
    offset = 0;
    ++i;
  }
}

}  // namespace

ShmRingTransport::ShmRingTransport(int nprocs, std::size_t ring_bytes,
                                   bool fork_processes)
    : nprocs_(nprocs), fork_(fork_processes) {
  cap_ = round_pow2(std::max<std::size_t>(ring_bytes, 4096));
  // A record must fit contiguously with room to spare: cap one chunk's
  // payload at a quarter ring (minus the header), 8-aligned, and never
  // above 32 KiB so tiny test rings and huge production rings both
  // fragment sensibly.
  chunk_max_ =
      std::min<std::size_t>(32768, cap_ / 4 - sizeof(RecHdr)) & ~std::size_t{7};

  doors_off_ = align64(sizeof(SegHdr));
  rings_off_ = align64(doors_off_ + static_cast<std::size_t>(nprocs_) * sizeof(Door));
  ring_stride_ = sizeof(RingCtl) + cap_;  // both 64-aligned already
  seg_bytes_ = rings_off_ +
               static_cast<std::size_t>(nprocs_) * nprocs_ * ring_stride_;

  seg_ = ::mmap(nullptr, seg_bytes_, PROT_READ | PROT_WRITE,
                MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  if (seg_ == MAP_FAILED) {
    std::perror("nx: mmap shmring segment");
    std::abort();
  }
  // mmap memory is zero-filled; C++20 value-initialized atomics are
  // zero too, so placement-init just makes the lifetimes formal.
  SegHdr* h = new (seg_) SegHdr{};
  h->magic = kSegMagic;
  h->nprocs = nprocs_;
  h->ring_bytes = cap_;
  for (int d = 0; d < nprocs_; ++d) new (door(d)) Door{};
  for (int s = 0; s < nprocs_; ++s)
    for (int d = 0; d < nprocs_; ++d) new (ctl(s, d)) RingCtl{};

  local_.reserve(static_cast<std::size_t>(nprocs_));
  for (int i = 0; i < nprocs_; ++i) {
    auto pl = std::make_unique<ProcLocal>();
    pl->pending.resize(static_cast<std::size_t>(nprocs_));
    pl->staging.resize(static_cast<std::size_t>(nprocs_));
    local_.push_back(std::move(pl));
  }
}

ShmRingTransport::~ShmRingTransport() {
  if (seg_ != nullptr) ::munmap(seg_, seg_bytes_);
}

ShmRingTransport::RingCtl* ShmRingTransport::ctl(int src, int dst) noexcept {
  auto* base = static_cast<std::uint8_t*>(seg_) + rings_off_ +
               (static_cast<std::size_t>(src) * nprocs_ + dst) * ring_stride_;
  return reinterpret_cast<RingCtl*>(base);
}

std::uint8_t* ShmRingTransport::data(int src, int dst) noexcept {
  return reinterpret_cast<std::uint8_t*>(ctl(src, dst)) + sizeof(RingCtl);
}

ShmRingTransport::Door* ShmRingTransport::door(int dst) noexcept {
  return reinterpret_cast<Door*>(static_cast<std::uint8_t*>(seg_) + doors_off_ +
                                 static_cast<std::size_t>(dst) * sizeof(Door));
}

ShmRingTransport::SegHdr* ShmRingTransport::hdr() noexcept {
  return static_cast<SegHdr*>(seg_);
}

void* ShmRingTransport::shared_scratch() noexcept { return hdr()->scratch; }

std::uint8_t* ShmRingTransport::reserve(int src, int dst, std::uint32_t need) {
  RingCtl* c = ctl(src, dst);
  const std::uint64_t head = c->head.load(std::memory_order_acquire);
  std::uint64_t tail = c->tail.load(std::memory_order_relaxed);  // sole producer
  std::uint64_t pos = tail & (cap_ - 1);
  const std::uint64_t contig = cap_ - pos;
  if (contig < need) {
    // Pad over the short tail region and restart at offset 0. The pad
    // is ≥ 8 bytes (records are 8-aligned) so {size, type} always fit.
    if (cap_ - (tail - head) < contig + need) return nullptr;
    RecHdr pad{};
    pad.size = static_cast<std::uint32_t>(contig);
    pad.type = Rec::kPad;
    std::memcpy(data(src, dst) + pos, &pad, 8);
    c->tail.store(tail + contig, std::memory_order_release);
    tail += contig;
    pos = 0;
  } else if (cap_ - (tail - head) < need) {
    return nullptr;
  }
  return data(src, dst) + pos;
}

void ShmRingTransport::publish(int src, int dst, std::uint32_t bytes) {
  RingCtl* c = ctl(src, dst);
  c->tail.store(c->tail.load(std::memory_order_relaxed) + bytes,
                std::memory_order_release);
}

void ShmRingTransport::ring_doorbell(int dst) {
  Door* d = door(dst);
  d->seq.fetch_add(1, std::memory_order_release);
  if (d->waiting.load(std::memory_order_acquire) != 0) futex_wake_all(&d->seq);
}

bool ShmRingTransport::write_record(int src, int dst, const std::uint8_t* rec,
                                    std::uint32_t size) {
  std::uint8_t* p = reserve(src, dst, size);
  if (p == nullptr) return false;
  std::memcpy(p, rec, size);
  publish(src, dst, size);
  return true;
}

bool ShmRingTransport::flush_pending_locked(int src, int dst) {
  ProcLocal& pl = *local_[static_cast<std::size_t>(src)];
  auto& q = pl.pending[static_cast<std::size_t>(dst)];
  bool any = false;
  while (!q.empty()) {
    const auto& rec = q.front();
    if (!write_record(src, dst, rec.data(),
                      static_cast<std::uint32_t>(rec.size())))
      break;
    q.pop_front();
    pl.pending_records.fetch_sub(1, std::memory_order_release);
    any = true;
  }
  return any;
}

void ShmRingTransport::emit_record(int src, int dst, std::uint8_t type,
                                   std::uint8_t last, const MsgHeader& h,
                                   const IoVec* iov, std::size_t iovcnt,
                                   std::size_t offset, std::size_t payload,
                                   bool* published) {
  const std::uint32_t need = static_cast<std::uint32_t>(
      (sizeof(RecHdr) + payload + 7) & ~std::size_t{7});
  RecHdr rh{};
  rh.size = need;
  rh.type = type;
  rh.last = last;
  rh.src_pe = h.src_pe;
  rh.src_proc = h.src_proc;
  rh.tag = h.tag;
  rh.channel = h.channel;
  rh.len = type == Rec::kChunkMore ? payload : h.len;

  ProcLocal& pl = *local_[static_cast<std::size_t>(src)];
  if (pl.pending[static_cast<std::size_t>(dst)].empty()) {
    if (std::uint8_t* p = reserve(src, dst, need)) {
      std::memcpy(p, &rh, sizeof rh);
      copy_from_iov(p + sizeof(RecHdr), iov, iovcnt, offset, payload);
      publish(src, dst, need);
      *published = true;
      return;
    }
  }
  // Ring full (or records already queued ahead — FIFO): serialize onto
  // the process-local pending queue. The payload is consumed either
  // way; a submit on this backend never blocks the sender.
  std::vector<std::uint8_t> rec(need, 0);
  std::memcpy(rec.data(), &rh, sizeof rh);
  copy_from_iov(rec.data() + sizeof(RecHdr), iov, iovcnt, offset, payload);
  pl.pending[static_cast<std::size_t>(dst)].push_back(std::move(rec));
  pl.pending_records.fetch_add(1, std::memory_order_release);
}

bool ShmRingTransport::submit(Machine& m, const MsgHeader& h, int dst_pe,
                              int dst_proc, const IoVec* iov,
                              std::size_t iovcnt,
                              std::atomic<bool>* sender_flag) {
  (void)sender_flag;  // always consumed: this backend never rendezvouses
  const int src = m.flat_index(h.src_pe, h.src_proc);
  const int dst = m.flat_index(dst_pe, dst_proc);
  ProcLocal& pl = *local_[static_cast<std::size_t>(src)];
  bool published = false;
  {
    std::lock_guard<std::mutex> lk(pl.send_mu);
    // FIFO: anything queued for this destination must hit the ring
    // before the new message.
    if (flush_pending_locked(src, dst)) published = true;
    if (h.len <= chunk_max_) {
      emit_record(src, dst, Rec::kMsg, 0, h, iov, iovcnt, 0, h.len,
                  &published);
    } else {
      emit_record(src, dst, Rec::kChunkStart, 0, h, iov, iovcnt, 0, chunk_max_,
                  &published);
      std::size_t off = chunk_max_;
      while (off < h.len) {
        const std::size_t pb = std::min(chunk_max_, h.len - off);
        const std::uint8_t fin = off + pb == h.len ? 1 : 0;
        emit_record(src, dst, Rec::kChunkMore, fin, h, iov, iovcnt, off, pb,
                    &published);
        off += pb;
      }
    }
  }
  if (published) ring_doorbell(dst);
  return true;
}

void ShmRingTransport::inject_record(Endpoint& ep, int src, const RecHdr& rh,
                                     const std::uint8_t* payload) {
  (void)src;
  MsgHeader h;
  h.src_pe = rh.src_pe;
  h.src_proc = rh.src_proc;
  h.tag = rh.tag;
  h.channel = rh.channel;
  h.len = static_cast<std::size_t>(rh.len);
  IoVec one{payload, h.len};
  // Queue-only injection (fires are flushed by the engine's safe
  // points, never from a pump — see DESIGN.md §12); force-eager so the
  // wire payload is copied out before the ring space is recycled.
  inject(ep, h, &one, 1, nullptr, /*force_eager=*/true);
}

void ShmRingTransport::pump(Endpoint& ep) {
  Machine& m = ep.machine();
  const int flat = m.flat_index(ep.pe(), ep.proc());
  ProcLocal& pl = *local_[static_cast<std::size_t>(flat)];

  // Outbound first: receivers elsewhere may be blocked on records still
  // sitting in this process's pending queues.
  if (pl.pending_records.load(std::memory_order_acquire) != 0) {
    std::lock_guard<std::mutex> lk(pl.send_mu);
    for (int dst = 0; dst < nprocs_; ++dst)
      if (flush_pending_locked(flat, dst)) ring_doorbell(dst);
  }

  // Inbound: single consumer per destination. try_lock — if another of
  // this process's threads is already draining, the rings are covered.
  if (!pl.recv_mu.try_lock()) return;
  std::lock_guard<std::mutex> lk(pl.recv_mu, std::adopt_lock);
  for (int src = 0; src < nprocs_; ++src) {
    RingCtl* c = ctl(src, flat);
    std::uint64_t head = c->head.load(std::memory_order_relaxed);
    const std::uint64_t tail = c->tail.load(std::memory_order_acquire);
    const std::uint8_t* base = data(src, flat);
    while (head != tail) {
      const std::uint64_t pos = head & (cap_ - 1);
      RecHdr rh;
      std::memcpy(&rh, base + pos, 8);  // pads may be this short
      if (rh.type != Rec::kPad) std::memcpy(&rh, base + pos, sizeof rh);
      Staging& st = pl.staging[static_cast<std::size_t>(src)];
      switch (rh.type) {
        case Rec::kPad:
          break;
        case Rec::kMsg:
          // Zero extra copy: the matching engine copies synchronously
          // out of ring memory (posted match → user buffer, otherwise
          // → eager heap buffer) before we advance head.
          inject_record(ep, src, rh, base + pos + sizeof(RecHdr));
          break;
        case Rec::kChunkStart:
          st.hdr = rh;
          st.active = true;
          st.buf.assign(base + pos + sizeof(RecHdr),
                        base + pos + sizeof(RecHdr) + chunk_max_);
          break;
        case Rec::kChunkMore: {
          const std::size_t pb = static_cast<std::size_t>(rh.len);
          st.buf.insert(st.buf.end(), base + pos + sizeof(RecHdr),
                        base + pos + sizeof(RecHdr) + pb);
          if (rh.last != 0) {
            inject_record(ep, src, st.hdr, st.buf.data());
            st.active = false;
            st.buf.clear();
          }
          break;
        }
        default:
          std::fprintf(stderr, "nx: shmring corrupt record type %u\n",
                       static_cast<unsigned>(rh.type));
          std::abort();
      }
      head += rh.size;
      // Publish per record so the producer regains space promptly.
      c->head.store(head, std::memory_order_release);
    }
  }
}

bool ShmRingTransport::inbound_nonempty(int flat) noexcept {
  for (int src = 0; src < nprocs_; ++src) {
    RingCtl* c = ctl(src, flat);
    if (c->tail.load(std::memory_order_acquire) !=
        c->head.load(std::memory_order_relaxed))
      return true;
  }
  return false;
}

void ShmRingTransport::drain_outbound(Endpoint& ep) {
  Machine& m = ep.machine();
  const int flat = m.flat_index(ep.pe(), ep.proc());
  ProcLocal& pl = *local_[static_cast<std::size_t>(flat)];
  while (pl.pending_records.load(std::memory_order_acquire) != 0) {
    pump(ep);
    std::this_thread::yield();
  }
}

void ShmRingTransport::wait_inbound(Endpoint& ep, std::uint64_t max_ns) {
  Machine& m = ep.machine();
  const int flat = m.flat_index(ep.pe(), ep.proc());
  ProcLocal& pl = *local_[static_cast<std::size_t>(flat)];
  // Never sleep on undelivered outbound — peers can't wake us for
  // records only we can flush. Pump instead: it both flushes pending
  // and drains inbound (the latter is what frees the full ring).
  if (pl.pending_records.load(std::memory_order_acquire) != 0) {
    pump(ep);
    std::this_thread::yield();
    return;
  }
  Door* d = door(flat);
  const std::uint32_t seen = d->seq.load(std::memory_order_acquire);
  if (inbound_nonempty(flat)) return;
  d->waiting.fetch_add(1, std::memory_order_acq_rel);
  if (!inbound_nonempty(flat))
    futex_wait_bounded(&d->seq, seen,
                       std::min<std::uint64_t>(max_ns, 1000000));  // ≤ 1 ms
  d->waiting.fetch_sub(1, std::memory_order_release);
}

void ShmRingTransport::barrier(Machine& m) {
  (void)m;
  SegHdr* h = hdr();
  const std::uint32_t sense = h->bar_sense.load(std::memory_order_acquire);
  if (h->bar_arrived.fetch_add(1, std::memory_order_acq_rel) + 1 ==
      static_cast<std::uint32_t>(nprocs_)) {
    h->bar_arrived.store(0, std::memory_order_relaxed);
    h->bar_sense.store(sense + 1, std::memory_order_release);
    futex_wake_all(&h->bar_sense);
    return;
  }
  while (h->bar_sense.load(std::memory_order_acquire) == sense)
    futex_wait_bounded(&h->bar_sense, sense, 1000000);  // bounded: lost-wake safe
}

void ShmRingTransport::record_child_error(const char* what) noexcept {
  SegHdr* h = hdr();
  std::int32_t expected = 0;
  if (h->err_raised.compare_exchange_strong(expected, 1,
                                            std::memory_order_acq_rel)) {
    std::strncpy(h->err_msg, what, sizeof h->err_msg - 1);
    h->err_msg[sizeof h->err_msg - 1] = '\0';
  }
}

void ShmRingTransport::run(Machine& m,
                           const std::function<void(Endpoint&)>& process_main) {
  // Wrap the process main so a sender whose rings backed up flushes its
  // heap-queued records before going quiet — otherwise a receiver could
  // wait forever on bytes only the (exited) sender can publish.
  auto wrapped = [&](Endpoint& ep) {
    process_main(ep);
    drain_outbound(ep);
  };
  if (!fork_) {
    run_threads(m, wrapped);
    return;
  }
  run_forked(m, wrapped);
}

void ShmRingTransport::run_forked(
    Machine& m, const std::function<void(Endpoint&)>& process_main) {
  SegHdr* h = hdr();
  h->err_raised.store(0, std::memory_order_relaxed);
  h->bar_arrived.store(0, std::memory_order_relaxed);

  std::fflush(nullptr);  // don't duplicate buffered output into children
  const int n = m.total_processes();
  const int ppe = m.processes_per_pe();
  std::vector<pid_t> pids;
  pids.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      std::perror("nx: fork");
      std::abort();
    }
    if (pid == 0) {
      int rc = 0;
      try {
        process_main(m.endpoint(i / ppe, i % ppe));
      } catch (const std::exception& e) {
        record_child_error(e.what());
        rc = 1;
      } catch (...) {
        record_child_error("unknown exception in nx process");
        rc = 1;
      }
      std::fflush(nullptr);
      ::_exit(rc);  // never unwind into the parent's state
    }
    pids.push_back(pid);
  }

  bool failed = false;
  for (pid_t p : pids) {
    int wst = 0;
    if (::waitpid(p, &wst, 0) < 0)
      failed = true;
    else if (!WIFEXITED(wst) || WEXITSTATUS(wst) != 0)
      failed = true;
  }
  if (failed || h->err_raised.load(std::memory_order_acquire) != 0) {
    std::string msg = "nx: shmring child process failed";
    if (h->err_raised.load(std::memory_order_acquire) != 0) {
      msg += ": ";
      msg += h->err_msg;
    }
    throw std::runtime_error(msg);
  }
}

}  // namespace nx
