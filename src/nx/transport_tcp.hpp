// transport_tcp.hpp — cross-machine backend: a sessionful full mesh of
// connected nonblocking TCP streams speaking the same 32-byte RecHdr
// framing as the shmring backend. INTERNAL to src/nx/ (chant-lint
// transport-internals): everything else programs against
// nx/transport.hpp.
//
// Topology: one connected stream per unordered process pair, built at
// machine construction (single-OS-process modes) or by a rendezvous
// phase (rank mode: rank r listens on base_port + r and the higher rank
// of each pair connects to the lower rank's port, identifying itself
// with a 4-byte hello). Self-sends never touch a socket: they are
// serialized into a per-rank loopback queue drained by pump through the
// same record decoder.
//
// Wire format: the shmring record framing minus pads (a stream has no
// wraparound): 8-byte-aligned {RecHdr, payload} records, chunked above
// chunk_bytes. Four header-only control records ride the same streams —
// kScratch (a shared-scratch counter delta, routed through rank 0 and
// rebroadcast so every mirror converges), kBarrierArrive /
// kBarrierRelease (the centralized wire barrier, generation-stamped),
// and kGoodbye (the clean-shutdown flag: a peer whose stream hits EOF
// *without* a goodbye is surfaced as PeerGone on in-flight traffic; a
// later data record clears the flag so a machine can run again).
//
// Delivery mirrors shmring exactly: a submit never blocks and always
// consumes the payload — when the socket's send buffer is full the
// serialized remainder goes onto a process-local per-destination
// pending queue (FIFO: anything queued flushes before new bytes), and
// pump() drains inbound sockets through a short-read-tolerant decoder
// into Transport::inject (queue-only waiter fires, force-eager).
// wait_inbound is a level-triggered epoll wait bounded by the caller's
// deadline — never entered while outbound is pending, the shmring
// invariant that peers can't wake us for bytes only we can flush.
//
// Hosting modes (see TransportSpec in nx/transport.hpp):
//   threads (default) — every rank a std::thread over real loopback
//     sockets; condvar barrier; scratch is ordinary shared memory.
//   fork=1 — mesh connected in the parent *before* forking one OS
//     process per rank (ephemeral ports work: connections predate
//     fork); each child keeps only its rank's sockets and the parent
//     closes all of them, so a dead child is visible as EOF. Wire
//     barrier + wire scratch. Single-shot per Machine: a child dying
//     mid-record leaves undecodable stream state behind.
//   rank=N — this OS process hosts only flat rank N; peers are other
//     OS processes (possibly other hosts) running their own rank.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <vector>

#include "nx/transport.hpp"

namespace nx {

class TcpTransport final : public Transport {
 public:
  TcpTransport(int nprocs, const TransportSpec& spec);
  ~TcpTransport() override;

  TransportKind kind() const noexcept override { return TransportKind::Tcp; }

  bool submit(Machine& m, const MsgHeader& h, int dst_pe, int dst_proc,
              const IoVec* iov, std::size_t iovcnt,
              std::atomic<bool>* sender_flag) override;

  void pump(Endpoint& ep) override;
  bool needs_pump() const noexcept override { return true; }

  void run(Machine& m,
           const std::function<void(Endpoint&)>& process_main) override;

  void barrier(Machine& m) override;

  void* shared_scratch() noexcept override { return scratch_.bytes; }

  std::uint32_t scratch_add(std::size_t off, std::uint32_t delta) override;

  int peers_gone() const noexcept override {
    return gone_count_.load(std::memory_order_acquire);
  }

  void wait_inbound(Endpoint& ep, std::uint64_t max_ns) override;

  /// Largest payload slice carried by one wire record (tests force tiny
  /// chunks to exercise fragmentation over the stream).
  std::size_t chunk_payload_max() const noexcept { return chunk_max_; }
  /// Flat rank hosted by this OS process; -1 while hosting every rank
  /// as a thread (and in the fork-mode parent).
  int hosted_rank() const noexcept { return my_rank_; }

 private:
  /// Identical layout to the shmring record header (wire compatible).
  struct RecHdr {
    std::uint32_t size;      ///< whole record bytes (8-aligned)
    std::uint8_t type;       ///< Rec::*
    std::uint8_t last;       ///< ChunkMore: final chunk of its message
    std::uint16_t reserved;
    std::int32_t src_pe;     ///< kScratch: origin flat rank
    std::int32_t src_proc;
    std::int32_t tag;        ///< kScratch: scratch byte offset
    std::int32_t channel;
    std::uint64_t len;  ///< Msg/ChunkStart: total message bytes;
                        ///< ChunkMore: this chunk's bytes;
                        ///< kScratch: delta; kBarrier*: generation
  };
  static_assert(sizeof(RecHdr) == 32, "wire layout");

  struct Rec {
    static constexpr std::uint8_t kMsg = 1;
    // 2 is shmring's kPad — never valid on a stream.
    static constexpr std::uint8_t kChunkStart = 3;
    static constexpr std::uint8_t kChunkMore = 4;
    static constexpr std::uint8_t kScratch = 5;
    static constexpr std::uint8_t kBarrierArrive = 6;
    static constexpr std::uint8_t kBarrierRelease = 7;
    static constexpr std::uint8_t kGoodbye = 8;
  };

  /// Receiver-side state for one inbound stream: the short-read decode
  /// buffer plus chunk reassembly and liveness flags.
  struct PeerIn {
    std::vector<std::uint8_t> buf;  ///< undecoded inbound bytes
    std::size_t off = 0;            ///< consumed prefix of buf
    std::vector<std::uint8_t> chunk;
    RecHdr chunk_hdr{};
    bool chunk_active = false;
    bool bye = false;   ///< goodbye seen (clean shutdown pending)
    bool gone = false;  ///< unclean loss already surfaced
    bool open = false;
  };

  /// One destination's outbound backlog: fully serialized records, the
  /// front possibly part-written (front_off).
  struct OutQ {
    std::deque<std::vector<std::uint8_t>> q;
    std::size_t front_off = 0;
    bool dead = false;  ///< stream failed for writing: discard silently
  };

  /// Per-rank state. Thread mode touches one slot per rank-thread; in
  /// fork and rank modes each OS process only ever touches its own.
  struct ProcLocal {
    std::mutex send_mu;  ///< serializes this source's producers
    std::vector<OutQ> out;  ///< [dst]
    std::atomic<std::size_t> pending_records{0};

    std::mutex recv_mu;  ///< serializes this destination's pumpers
    std::vector<PeerIn> in;  ///< [src]

    std::mutex self_mu;  ///< loopback queue (src == dst records)
    std::deque<std::vector<std::uint8_t>> self_q;
    std::atomic<std::size_t> self_records{0};

    std::vector<int> fd;  ///< [peer] connected stream, -1 = none/self
    int epfd = -1;        ///< lazily created (post-fork safe)

    // Wire barrier (single-hosted-rank modes). Generations overlap by
    // at most one, so rank 0's arrival counters index by parity.
    std::uint64_t bar_gen = 0;
    std::atomic<std::uint64_t> bar_release_seen{0};
    std::atomic<std::uint32_t> bar_arrived[2] = {{0}, {0}};
  };

  ProcLocal& pl(int flat) noexcept { return *local_[static_cast<std::size_t>(flat)]; }

  void connect_mesh_local();  ///< threads/fork: full mesh pre-fork
  void rendezvous_rank();     ///< rank mode: listen + connect by rank
  void tune_socket(int fd) const;
  void ensure_epoll_locked(int flat);

  /// Serializes one record slicing [offset, offset+payload) of the
  /// gathered message. Control records pass iovcnt == 0.
  static std::vector<std::uint8_t> serialize(const RecHdr& rh,
                                             const IoVec* iov,
                                             std::size_t iovcnt,
                                             std::size_t offset,
                                             std::size_t payload);

  /// Queues or writes one serialized record toward dst. Caller holds
  /// send_mu[src]. Self records go to the loopback queue.
  void ship_record(int src, int dst, std::vector<std::uint8_t> rec);
  /// Nonblocking write of queued records; false return means the peer's
  /// stream failed (backlog discarded). Caller holds send_mu[src].
  bool flush_pending_locked(int src, int dst);
  /// Header-only control record (barrier / scratch / goodbye).
  void send_control(int src, int dst, std::uint8_t type, std::int32_t tag,
                    std::uint64_t len, std::int32_t origin);

  /// Marks the (src rank → this rank) stream dead. clean == goodbye was
  /// seen; unclean loss surfaces PeerGone and bumps gone_count_.
  /// Caller holds recv_mu[flat].
  void close_peer_locked(Endpoint& ep, int flat, int peer, bool clean);
  /// Decodes and dispatches every complete record in in.buf.
  void decode_locked(Endpoint& ep, int flat, int peer);
  void handle_record(Endpoint& ep, int flat, int peer, const RecHdr& rh,
                     const std::uint8_t* payload);
  void inject_record(Endpoint& ep, const RecHdr& rh,
                     const std::uint8_t* payload);
  void apply_scratch_locked(int flat, const RecHdr& rh);

  void drain_outbound(Endpoint& ep);
  void send_goodbyes(int flat);
  void barrier_wire(Machine& m);
  void run_forked(Machine& m,
                  const std::function<void(Endpoint&)>& process_main);

  int nprocs_ = 0;
  TransportSpec spec_;
  std::size_t chunk_max_ = 0;
  int my_rank_ = -1;  ///< single-hosted-rank modes; -1 = all ranks here
  bool ran_ = false;  ///< fork mode is single-shot per Machine

  std::vector<std::unique_ptr<ProcLocal>> local_;
  std::atomic<int> gone_count_{0};

  // Thread-mode barrier (reusable; run() may be called repeatedly).
  std::mutex bar_mu_;
  std::condition_variable bar_cv_;
  std::size_t bar_arrived_ = 0;
  std::uint64_t bar_gen_ = 0;

  // Scratch: ordinary shared memory in thread mode; a per-OS-process
  // mirror kept coherent by kScratch routing in fork/rank modes.
  struct alignas(64) Scratch {
    unsigned char bytes[kSharedScratchBytes];
  };
  Scratch scratch_{};
  std::mutex scratch_mu_;  ///< serializes mirror updates vs. broadcast

  int err_pipe_[2] = {-1, -1};  ///< fork mode child-failure channel
};

}  // namespace nx
