// transport.cpp — seam plumbing: kind parsing/resolution, the two
// delivery helpers backends build on, thread hosting, and the factory.
#include "nx/transport.hpp"

#include <cstdlib>
#include <cstring>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "nx/machine.hpp"
#include "transport_inproc.hpp"
#include "transport_shmring.hpp"

namespace nx {

const char* to_string(TransportKind k) noexcept {
  switch (k) {
    case TransportKind::InProc:
      return "inproc";
    case TransportKind::ShmRing:
      return "shmring";
    case TransportKind::Default:
      break;
  }
  return "default";
}

TransportKind parse_transport(const char* s) noexcept {
  if (s == nullptr || *s == '\0') return TransportKind::InProc;
  if (std::strcmp(s, "shmring") == 0 || std::strcmp(s, "shm") == 0)
    return TransportKind::ShmRing;
  return TransportKind::InProc;  // "inproc" and anything unknown
}

TransportKind resolve_transport(TransportKind k) noexcept {
  if (k != TransportKind::Default) return k;
  return parse_transport(std::getenv("CHANT_TRANSPORT"));
}

Transport::~Transport() = default;

void Transport::wait_inbound(Endpoint& ep, std::uint64_t max_ns) {
  (void)ep;
  (void)max_ns;
  std::this_thread::yield();
}

bool Transport::deliver(Endpoint& dst, const MsgHeader& h, const IoVec* iov,
                        std::size_t iovcnt, std::atomic<bool>* sender_flag) {
  // The pre-seam path: accept_send locks dst.mu_, matches or queues,
  // and flushes waiter fires after dropping the lock. Only safe from a
  // submit context (never under the scheduler's wait_mu_).
  return dst.accept_send(h, iov, iovcnt, sender_flag);
}

bool Transport::inject(Endpoint& dst, const MsgHeader& h, const IoVec* iov,
                       std::size_t iovcnt, std::atomic<bool>* sender_flag,
                       bool force_eager) {
  // Queue-only variant for pump contexts: pumps run inside msgtest /
  // msgtestany, which poll predicates call under the scheduler's
  // wait_mu_ — flushing waiter fires here would close the ABBA cycle
  // documented in endpoint.hpp. Queued fires drain at the engine's
  // existing safe points (poll_progress, irecv tail, wq_group_poll).
  bool consumed;
  {
    std::lock_guard<std::mutex> lk(dst.mu_);
    consumed = dst.accept_send_locked(h, iov, iovcnt, sender_flag, force_eager);
  }
  return consumed;
}

void Transport::run_threads(Machine& m,
                            const std::function<void(Endpoint&)>& process_main) {
  const int n = m.total_processes();
  const int ppe = m.processes_per_pe();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(n));
  std::exception_ptr first_error;
  std::mutex err_mu;
  for (int i = 0; i < n; ++i) {
    Endpoint* ep = &m.endpoint(i / ppe, i % ppe);
    threads.emplace_back([&, ep] {
      try {
        process_main(*ep);
      } catch (...) {
        std::lock_guard<std::mutex> lk(err_mu);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

std::unique_ptr<Transport> make_transport(Machine& m) {
  switch (m.config().transport) {
    case TransportKind::ShmRing:
      return std::make_unique<ShmRingTransport>(m.total_processes(),
                                                m.config().shm_ring_bytes,
                                                m.config().fork_processes);
    case TransportKind::InProc:
    case TransportKind::Default:  // resolved by the Machine ctor
      break;
  }
  return std::make_unique<InProcTransport>();
}

}  // namespace nx
