// transport.cpp — seam plumbing: TransportSpec parsing/printing, the
// delivery helpers backends build on, thread hosting, and the factory.
#include "nx/transport.hpp"

#include <cstdlib>
#include <cstring>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "nx/machine.hpp"
#include "transport_inproc.hpp"
#include "transport_shmring.hpp"
#include "transport_tcp.hpp"

namespace nx {

const char* to_string(TransportKind k) noexcept {
  switch (k) {
    case TransportKind::InProc:
      return "inproc";
    case TransportKind::ShmRing:
      return "shmring";
    case TransportKind::Tcp:
      return "tcp";
    case TransportKind::Default:
      break;
  }
  return "default";
}

// The deprecated shims' own definitions carry per-line allows: the lint
// rule exists to stop *new* callers, not the shims themselves.
TransportKind parse_transport(const char* s) noexcept {  // chant-lint: allow(legacy-transport-config)
  if (s == nullptr || *s == '\0') return TransportKind::InProc;
  if (std::strcmp(s, "shmring") == 0 || std::strcmp(s, "shm") == 0)
    return TransportKind::ShmRing;
  if (std::strncmp(s, "tcp", 3) == 0) return TransportKind::Tcp;
  return TransportKind::InProc;  // "inproc" and anything unknown
}

TransportKind resolve_transport(TransportKind k) noexcept {  // chant-lint: allow(legacy-transport-config)
  if (k != TransportKind::Default) return k;
  return parse_transport(std::getenv("CHANT_TRANSPORT"));  // chant-lint: allow(legacy-transport-config)
}

// ------------------------------------------------------- TransportSpec

TransportSpec TransportSpec::inproc() {
  TransportSpec s;
  s.kind = TransportKind::InProc;
  return s;
}

TransportSpec TransportSpec::shmring(std::size_t ring_bytes, bool fork) {
  TransportSpec s;
  s.kind = TransportKind::ShmRing;
  s.ring_bytes = ring_bytes;
  s.fork = fork;
  return s;
}

TransportSpec TransportSpec::tcp(std::string host, std::uint16_t base_port) {
  TransportSpec s;
  s.kind = TransportKind::Tcp;
  s.host = std::move(host);
  s.base_port = base_port;
  return s;
}

namespace {

bool parse_uint(const std::string& v, std::uint64_t max, std::uint64_t* out) {
  if (v.empty() || v.size() > 19) return false;
  std::uint64_t n = 0;
  for (char c : v) {
    if (c < '0' || c > '9') return false;
    n = n * 10 + static_cast<std::uint64_t>(c - '0');
  }
  if (n > max) return false;
  *out = n;
  return true;
}

bool parse_bool(const std::string& v, bool* out) {
  if (v == "1" || v == "true") {
    *out = true;
    return true;
  }
  if (v == "0" || v == "false") {
    *out = false;
    return true;
  }
  return false;
}

/// Splits "k1=v1&k2=v2" and applies each pair via `apply`; returns false
/// (filling *err) on a malformed pair or an unrecognized/invalid option.
template <typename Fn>
bool parse_options(const std::string& spec, const std::string& opts,
                   std::string* err, Fn&& apply) {
  std::size_t pos = 0;
  while (pos < opts.size()) {
    std::size_t amp = opts.find('&', pos);
    if (amp == std::string::npos) amp = opts.size();
    const std::string pair = opts.substr(pos, amp - pos);
    const std::size_t eq = pair.find('=');
    if (eq == std::string::npos || eq == 0) {
      *err = "malformed transport option '" + pair + "' in '" + spec + "'";
      return false;
    }
    if (!apply(pair.substr(0, eq), pair.substr(eq + 1))) {
      *err = "unknown or invalid transport option '" + pair + "' in '" +
             spec + "'";
      return false;
    }
    pos = amp + 1;
  }
  return true;
}

}  // namespace

bool TransportSpec::try_parse(const std::string& s, TransportSpec* out,
                              std::string* err) {
  std::string scheme = s;
  std::string rest;
  const std::size_t q = s.find('?');
  const std::size_t scheme_sep = s.find("://");
  if (scheme_sep != std::string::npos && (q == std::string::npos ||
                                          scheme_sep < q)) {
    scheme = s.substr(0, scheme_sep);
    rest = s.substr(scheme_sep + 3);
  } else if (q != std::string::npos) {
    scheme = s.substr(0, q);
    rest = s.substr(q + 1);
  }

  if (scheme == "inproc") {
    if (scheme != s) {
      *err = "transport 'inproc' takes no options: '" + s + "'";
      return false;
    }
    out->kind = TransportKind::InProc;
    return true;
  }

  if (scheme == "shmring" || scheme == "shm") {
    out->kind = TransportKind::ShmRing;
    return parse_options(s, rest, err, [&](const std::string& k,
                                           const std::string& v) {
      std::uint64_t n = 0;
      if (k == "fork") return parse_bool(v, &out->fork);
      if (k == "ring_kb" && parse_uint(v, 1 << 20, &n) && n > 0) {
        out->ring_bytes = static_cast<std::size_t>(n) * 1024;
        return true;
      }
      return false;
    });
  }

  if (scheme == "tcp") {
    out->kind = TransportKind::Tcp;
    // rest = host:port[?options]
    std::string hostport = rest;
    std::string opts;
    const std::size_t oq = rest.find('?');
    if (oq != std::string::npos) {
      hostport = rest.substr(0, oq);
      opts = rest.substr(oq + 1);
    }
    const std::size_t colon = hostport.rfind(':');
    std::uint64_t port = 0;
    if (colon == std::string::npos || colon == 0 ||
        !parse_uint(hostport.substr(colon + 1), 65535, &port)) {
      *err = "tcp transport spec needs host:base_port: '" + s + "'";
      return false;
    }
    out->host = hostport.substr(0, colon);
    out->base_port = static_cast<std::uint16_t>(port);
    return parse_options(s, opts, err, [&](const std::string& k,
                                           const std::string& v) {
      std::uint64_t n = 0;
      if (k == "fork") return parse_bool(v, &out->fork);
      if (k == "rank" && parse_uint(v, 1 << 20, &n)) {
        out->rank = static_cast<int>(n);
        return true;
      }
      if (k == "nprocs" && parse_uint(v, 1 << 20, &n) && n > 0) {
        out->nprocs = static_cast<int>(n);
        return true;
      }
      if (k == "chunk_kb" && parse_uint(v, 1 << 16, &n) && n > 0) {
        out->chunk_bytes = static_cast<std::size_t>(n) * 1024;
        return true;
      }
      if (k == "sndbuf" && parse_uint(v, 1 << 30, &n) && n > 0) {
        out->sndbuf_bytes = static_cast<int>(n);
        return true;
      }
      if (k == "listen_fd" && parse_uint(v, 1 << 20, &n)) {
        out->listen_fd = static_cast<int>(n);
        return true;
      }
      if (k == "connect_ms" && parse_uint(v, 1u << 31, &n)) {
        out->connect_timeout_ms = static_cast<std::uint32_t>(n);
        return true;
      }
      return false;
    });
  }

  *err = "unknown transport '" + s + "' (expected inproc | shmring[?...] | "
         "tcp://host:port[?...])";
  return false;
}

TransportSpec TransportSpec::parse(const std::string& s) {
  TransportSpec out;
  std::string err;
  if (!try_parse(s, &out, &err)) throw std::invalid_argument(err);
  return out;
}

std::string TransportSpec::to_string() const {
  const TransportSpec defaults;
  switch (kind) {
    case TransportKind::Default:
      return "default";
    case TransportKind::InProc:
      return "inproc";
    case TransportKind::ShmRing: {
      std::string s = "shmring";
      std::string opts;
      if (fork) opts += "fork=1";
      if (ring_bytes != defaults.ring_bytes) {
        if (!opts.empty()) opts += '&';
        opts += "ring_kb=" + std::to_string(ring_bytes / 1024);
      }
      if (!opts.empty()) s += '?' + opts;
      return s;
    }
    case TransportKind::Tcp: {
      std::string s =
          "tcp://" + host + ':' + std::to_string(base_port);
      std::string opts;
      auto add = [&](const std::string& kv) {
        if (!opts.empty()) opts += '&';
        opts += kv;
      };
      if (rank >= 0) add("rank=" + std::to_string(rank));
      if (nprocs > 0) add("nprocs=" + std::to_string(nprocs));
      if (fork) add("fork=1");
      if (chunk_bytes != defaults.chunk_bytes)
        add("chunk_kb=" + std::to_string(chunk_bytes / 1024));
      if (sndbuf_bytes != defaults.sndbuf_bytes)
        add("sndbuf=" + std::to_string(sndbuf_bytes));
      if (listen_fd >= 0) add("listen_fd=" + std::to_string(listen_fd));
      if (connect_timeout_ms != defaults.connect_timeout_ms)
        add("connect_ms=" + std::to_string(connect_timeout_ms));
      if (!opts.empty()) s += '?' + opts;
      return s;
    }
  }
  return "default";
}

// ----------------------------------------------------------- Transport

Transport::~Transport() = default;

void Transport::wait_inbound(Endpoint& ep, std::uint64_t max_ns) {
  (void)ep;
  (void)max_ns;
  std::this_thread::yield();
}

std::uint32_t Transport::scratch_add(std::size_t off, std::uint32_t delta) {
  auto* p = reinterpret_cast<std::uint32_t*>(
      static_cast<unsigned char*>(shared_scratch()) + off);
  return std::atomic_ref<std::uint32_t>(*p).fetch_add(
             delta, std::memory_order_acq_rel) +
         delta;
}

std::uint32_t Transport::scratch_load(std::size_t off) const noexcept {
  auto* self = const_cast<Transport*>(this);
  auto* p = reinterpret_cast<std::uint32_t*>(
      static_cast<unsigned char*>(self->shared_scratch()) + off);
  return std::atomic_ref<std::uint32_t>(*p).load(std::memory_order_acquire);
}

bool Transport::deliver(Endpoint& dst, const MsgHeader& h, const IoVec* iov,
                        std::size_t iovcnt, std::atomic<bool>* sender_flag) {
  // The pre-seam path: accept_send locks dst.mu_, matches or queues,
  // and flushes waiter fires after dropping the lock. Only safe from a
  // submit context (never under the scheduler's wait_mu_).
  return dst.accept_send(h, iov, iovcnt, sender_flag);
}

bool Transport::inject(Endpoint& dst, const MsgHeader& h, const IoVec* iov,
                       std::size_t iovcnt, std::atomic<bool>* sender_flag,
                       bool force_eager) {
  // Queue-only variant for pump contexts: pumps run inside msgtest /
  // msgtestany, which poll predicates call under the scheduler's
  // wait_mu_ — flushing waiter fires here would close the ABBA cycle
  // documented in endpoint.hpp. Queued fires drain at the engine's
  // existing safe points (poll_progress, irecv tail, wq_group_poll).
  bool consumed;
  {
    std::lock_guard<std::mutex> lk(dst.mu_);
    consumed = dst.accept_send_locked(h, iov, iovcnt, sender_flag, force_eager);
  }
  return consumed;
}

void Transport::mark_peer_gone(Endpoint& dst, int src_pe, int src_proc) {
  dst.mark_peer_gone(src_pe, src_proc);
}

void Transport::run_threads(Machine& m,
                            const std::function<void(Endpoint&)>& process_main) {
  const int n = m.total_processes();
  const int ppe = m.processes_per_pe();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(n));
  std::exception_ptr first_error;
  std::mutex err_mu;
  for (int i = 0; i < n; ++i) {
    Endpoint* ep = &m.endpoint(i / ppe, i % ppe);
    threads.emplace_back([&, ep] {
      try {
        process_main(*ep);
      } catch (...) {
        std::lock_guard<std::mutex> lk(err_mu);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

std::unique_ptr<Transport> make_transport(Machine& m) {
  const TransportSpec& spec = m.config().transport_spec;
  switch (spec.kind) {
    case TransportKind::ShmRing:
      return std::make_unique<ShmRingTransport>(m.total_processes(),
                                                spec.ring_bytes, spec.fork);
    case TransportKind::Tcp:
      return std::make_unique<TcpTransport>(m.total_processes(), spec);
    case TransportKind::InProc:
    case TransportKind::Default:  // resolved by the Machine ctor
      break;
  }
  return std::make_unique<InProcTransport>();
}

}  // namespace nx
