// transport_inproc.hpp — the original simulated multicomputer, behind
// the Transport seam. INTERNAL to src/nx/ (chant-lint transport-
// internals): everything else programs against nx/transport.hpp.
//
// submit is a direct synchronous accept on the destination endpoint,
// executed on the sender's OS thread — the exact call the pre-seam
// engine made, so matching order, counters, and sim/ScheduleController
// replay are bit-identical. There is no pump (needs_pump() == false
// keeps the endpoint fast paths free of even the virtual call), the
// barrier is the original condition-variable generation barrier, and
// processes are std::threads.
#pragma once

#include <condition_variable>
#include <mutex>

#include "nx/transport.hpp"

namespace nx {

class InProcTransport final : public Transport {
 public:
  InProcTransport();

  TransportKind kind() const noexcept override { return TransportKind::InProc; }

  bool submit(Machine& m, const MsgHeader& h, int dst_pe, int dst_proc,
              const IoVec* iov, std::size_t iovcnt,
              std::atomic<bool>* sender_flag) override;

  void run(Machine& m,
           const std::function<void(Endpoint&)>& process_main) override;

  void barrier(Machine& m) override;

  void* shared_scratch() noexcept override { return scratch_.bytes; }

 private:
  // Simple reusable barrier (std::barrier needs the count at
  // construction but run() may be called repeatedly; keep our own).
  std::mutex bar_mu_;
  std::condition_variable bar_cv_;
  std::size_t bar_arrived_ = 0;
  std::uint64_t bar_gen_ = 0;

  struct alignas(64) Scratch {
    unsigned char bytes[kSharedScratchBytes];
  };
  Scratch scratch_{};
};

}  // namespace nx
