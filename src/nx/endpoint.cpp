// endpoint.cpp — matching engine for the simulated NX layer.
//
// Matching model (second generation — hash-indexed and event-driven,
// same observable semantics as the first-generation linear drain):
//
//  * Posted receives live in a hash index keyed by (source, tag) when
//    they are fully specified, or in a post-ordered wildcard fallback
//    list otherwise. An arriving message resolves the earliest-posted
//    matching receive by probing its bucket in O(1) and early-exiting
//    the wildcard walk on post order.
//  * Unexpected messages are queued per source. Deliver-at timestamps
//    are monotonic per source, so each queue is a visible prefix plus an
//    in-flight suffix; a global arrival sequence number preserves the
//    cross-source arrival order wildcard receives and probes observe.
//  * Matching is event-driven: a send offers its message to the posted
//    index the moment it is visible (the zero-intermediate-copy path
//    when a receive is already posted), and a newly posted receive scans
//    the visible queue entries. The standing invariant — no visible
//    queued entry matches any posted receive — means a test call has
//    nothing to do *except* reveal messages whose modelled deliver-at
//    time has passed, and the epoch gate (progress_pending) detects that
//    case with two atomic loads, no lock. With a zero latency model a
//    failed msgtest never takes the endpoint lock at all.
//
// These yield exactly the MPI/NX matching rules of the seed engine:
// earliest-posted receive wins, per-source FIFO holds (an entry still in
// flight blocks later entries from the same source), and any message
// left in the queue matches no posted receive. Payloads are delivered
// straight from the sender's buffer whenever the receive is already
// posted; only a message that stays unexpected is eager-copied (at or
// below the threshold, making the send locally blocking) or held for
// rendezvous. Every send travels as a gather descriptor (a contiguous
// send is one fragment): fragments are assembled directly into the
// posted buffer, so a framed {header, payload} message costs exactly
// one copy, and the bytes_copied/temp_allocs counters record the only
// paths that stage bytes in between (eager buffering, injected
// duplicates).
//
// Locking protocol: matching state is guarded by mu_; the request slab
// by slab_mu_ (a send locks only the *destination* endpoint's mu_ — its
// own slab allocation happens first, under its own slab lock, released
// before the destination lock is taken — so no thread ever holds two
// locks). Request::gen (odd = live, even = free) and slots_used_ are
// atomics with acquire/release pairing, so checked(), msgdone() and the
// msgtest fast path validate handles without any lock.
// Registered waiters (Selector support): deliver_into queues armed-
// waiter fires under mu_ and flush_waiter_fires() invokes them after
// the lock is released — callbacks re-enter the scheduler (selector
// lock, then wait_mu_), and poll predicates already call msgtest under
// wait_mu_, so firing under mu_ would order the same two locks both
// ways. msgtest/msgtestany therefore never flush; accept_send and
// irecv do, and parked selectors flush from fiber context when their
// poll predicate (poll_progress) reports queued fires.
#include "nx/endpoint.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "nx/fault.hpp"
#include "nx/hb.hpp"
#include "nx/machine.hpp"

namespace nx {

std::atomic<const NxHbHooks*> g_nx_hb_hooks{nullptr};

namespace {
inline void cpu_relax() noexcept {
#if defined(__x86_64__)
  __builtin_ia32_pause();
#endif
}

/// Copies up to `cap` bytes of the gathered message into `dst`; returns
/// the number of bytes written. Fragment boundaries are invisible to the
/// receiver — the result is byte-identical to a contiguous transfer.
std::size_t gather_copy(void* dst, std::size_t cap, const nx::IoVec* iov,
                        std::size_t iovcnt) {
  auto* out = static_cast<std::uint8_t*>(dst);
  std::size_t left = cap;
  for (std::size_t i = 0; i < iovcnt && left > 0; ++i) {
    const std::size_t n = iov[i].len < left ? iov[i].len : left;
    if (n > 0) std::memcpy(out, iov[i].base, n);
    out += n;
    left -= n;
  }
  return cap - left;
}
}  // namespace

Endpoint::Endpoint(Machine& machine, int pe, int proc)
    : machine_(machine),
      pe_(pe),
      proc_(proc),
      transport_(&machine.transport()),
      pump_active_(machine.transport().needs_pump()),
      unex_(static_cast<std::size_t>(machine.total_processes())),
      last_deliver_(static_cast<std::size_t>(machine.total_processes()), 0),
      dead_src_(static_cast<std::size_t>(machine.total_processes()), 0) {
  // Fixed-size chunk directory: lock-free readers may index it while an
  // allocation fills a new chunk, so it must never reallocate.
  slab_.resize(kMaxChunks);
}

Endpoint::~Endpoint() = default;

// ------------------------------------------------------------ request slab

Endpoint::Request* Endpoint::slot_ptr(std::uint32_t slot) const {
  return &slab_[slot / kChunk][slot % kChunk];
}

std::uint64_t Endpoint::net_now() const {
  const Machine::Config& cfg = machine_.config();
  if (cfg.clock != nullptr) return cfg.clock(cfg.clock_ctx);
  // A fault injector without a clock override still needs an advancing
  // clock: injected delays gate visibility on it.
  if (!cfg.net.is_zero() || cfg.fault != nullptr) return now_ns();
  return 0;
}

Handle Endpoint::alloc_request(Request::Kind kind) {
  std::lock_guard<std::mutex> lk(slab_mu_);
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = slots_used_.load(std::memory_order_relaxed);
    if (slot > kSlotMask) {
      std::fprintf(stderr, "nx: request slab exhausted (%u)\n", slot);
      std::abort();
    }
    if (slab_[slot / kChunk] == nullptr) {
      slab_[slot / kChunk] = std::make_unique<Request[]>(kChunk);
    }
    // Release: publishes the chunk pointer to lock-free checked().
    slots_used_.store(slot + 1, std::memory_order_release);
  }
  Request* r = slot_ptr(slot);
  r->kind.store(kind, std::memory_order_relaxed);
  r->complete.store(false, std::memory_order_relaxed);
  r->buf = nullptr;
  r->cap = 0;
  r->want_pe = kAnyPe;
  r->want_proc = kAnyProc;
  r->want_tag = 0;
  r->tag_mask = kTagAny;
  r->want_channel = 0;
  r->channel_mask = 0;
  r->hdr = MsgHeader{};
  r->waiter_fn = nullptr;
  r->waiter_ctx = nullptr;
  r->waiter_token = 0;
  // Free slots hold an even generation; bumping to odd marks the slot
  // live and publishes the resets above to lock-free validators. The
  // low 11 bits ride in the handle, keeping it non-negative.
  const std::uint32_t gen = r->gen.load(std::memory_order_relaxed) + 1;
  r->gen.store(gen, std::memory_order_release);
  return static_cast<Handle>(((gen & kGenMask) << kSlotBits) | slot);
}

Endpoint::Request* Endpoint::checked(Handle h) const {
  if (h < 0) return nullptr;
  const auto slot = static_cast<std::uint32_t>(h) & kSlotMask;
  if (slot >= slots_used_.load(std::memory_order_acquire)) return nullptr;
  Request* r = slot_ptr(slot);
  const std::uint32_t gen = r->gen.load(std::memory_order_acquire);
  if ((gen & 1u) == 0u ||  // even: slot is free
      (gen & kGenMask) != (static_cast<std::uint32_t>(h) >> kSlotBits)) {
    return nullptr;
  }
  return r;
}

void Endpoint::release_slot(Handle h) {
  std::lock_guard<std::mutex> lk(slab_mu_);
  const auto slot = static_cast<std::uint32_t>(h) & kSlotMask;
  Request* r = slot_ptr(slot);
  r->kind.store(Request::Kind::None, std::memory_order_relaxed);
  // Odd -> even: invalidates stale handles in one atomic step.
  r->gen.store(r->gen.load(std::memory_order_relaxed) + 1,
               std::memory_order_release);
  free_slots_.push_back(slot);
}

// --------------------------------------------------------------- matching

bool Endpoint::recv_matches(const Request& r, const MsgHeader& h) const {
  if (r.want_pe != kAnyPe && r.want_pe != h.src_pe) return false;
  if (r.want_proc != kAnyProc && r.want_proc != h.src_proc) return false;
  if ((h.channel & r.channel_mask) != (r.want_channel & r.channel_mask)) {
    return false;
  }
  return (h.tag & r.tag_mask) == (r.want_tag & r.tag_mask);
}

void Endpoint::insert_posted(Handle h, const Request& r) {
  const std::uint64_t seq = next_post_seq_++;
  if (indexable(r)) {
    const int src = machine_.flat_index(r.want_pe, r.want_proc);
    buckets_[bucket_key(src, r.want_tag)].push_back(PostedEntry{h, seq});
  } else {
    wildcard_.push_back(PostedEntry{h, seq});
  }
  ++posted_total_;
}

bool Endpoint::remove_posted(Handle h, const Request& r) {
  if (indexable(r)) {
    const int src = machine_.flat_index(r.want_pe, r.want_proc);
    auto it = buckets_.find(bucket_key(src, r.want_tag));
    if (it == buckets_.end()) return false;
    auto& dq = it->second;
    for (std::size_t i = 0; i < dq.size(); ++i) {
      if (dq[i].h != h) continue;
      // The bucket is left in the map even when emptied: tags repeat
      // (per-thread ids, round tags), and re-creating the node every
      // cycle costs an allocation per message on the hot path.
      dq.erase(dq.begin() + static_cast<std::ptrdiff_t>(i));
      --posted_total_;
      return true;
    }
    return false;
  }
  for (std::size_t i = 0; i < wildcard_.size(); ++i) {
    if (wildcard_[i].h != h) continue;
    wildcard_.erase(wildcard_.begin() + static_cast<std::ptrdiff_t>(i));
    --posted_total_;
    return true;
  }
  return false;
}

Endpoint::Request* Endpoint::take_posted_match(const MsgHeader& h) {
  // Bucket probe: the earliest fully-specified receive for (src, tag).
  auto bit = buckets_.end();
  std::size_t bucket_pos = 0;
  std::uint64_t bucket_seq = ~std::uint64_t{0};
  Request* bucket_req = nullptr;
  const int src = machine_.flat_index(h.src_pe, h.src_proc);
  auto found = buckets_.find(bucket_key(src, h.tag));
  if (found != buckets_.end()) {
    auto& dq = found->second;
    for (std::size_t i = 0; i < dq.size();) {
      Request* r = checked(dq[i].h);
      if (r == nullptr) {  // defensive: stale entry
        dq.erase(dq.begin() + static_cast<std::ptrdiff_t>(i));
        --posted_total_;
        continue;
      }
      if (recv_matches(*r, h)) {
        bit = found;
        bucket_pos = i;
        bucket_seq = dq[i].seq;
        bucket_req = r;
        break;
      }
      ++i;  // same (src, tag) but channel-constrained: try the next
    }
  }
  // Wildcard fallback: the list is post-ordered, so only entries posted
  // before the bucket hit can still win — early exit on seq.
  Request* wild_req = nullptr;
  std::size_t wild_pos = 0;
  std::uint64_t scanned = 0;
  for (std::size_t i = 0; i < wildcard_.size();) {
    if (wildcard_[i].seq >= bucket_seq) break;
    Request* r = checked(wildcard_[i].h);
    if (r == nullptr) {  // defensive: stale entry
      wildcard_.erase(wildcard_.begin() + static_cast<std::ptrdiff_t>(i));
      --posted_total_;
      continue;
    }
    ++scanned;
    if (recv_matches(*r, h)) {
      wild_req = r;
      wild_pos = i;
      break;
    }
    ++i;
  }
  if (scanned != 0) {
    counters_.wildcard_scans.fetch_add(scanned, std::memory_order_relaxed);
  }
  if (wild_req != nullptr) {
    wildcard_.erase(wildcard_.begin() + static_cast<std::ptrdiff_t>(wild_pos));
    --posted_total_;
    return wild_req;
  }
  if (bucket_req != nullptr) {
    counters_.bucket_hits.fetch_add(1, std::memory_order_relaxed);
    auto& dq = bit->second;
    // Empty buckets stay resident (see remove_posted): one map node per
    // distinct (source, tag) ever used, zero allocations at steady state.
    dq.erase(dq.begin() + static_cast<std::ptrdiff_t>(bucket_pos));
    --posted_total_;
    return bucket_req;
  }
  return nullptr;
}

void Endpoint::deliver_into(Request& r, const UnexMsg& m) {
  // The message is now at its destination (matched): quiescence
  // detection must no longer count it as able to wake someone later.
  if (const auto* hb = nx_hb_hooks()) hb->msg_arrived(m.hdr.hb_clk);
  r.hdr = m.hdr;
  std::size_t n = m.hdr.len;
  if (n > r.cap) {
    n = r.cap;
    r.hdr.truncated = true;
  }
  if (n > 0) {
    if (m.payload != nullptr) {
      std::memcpy(r.buf, m.payload.get(), n);
    } else {
      // Assembled straight from the sender's fragments: the single copy
      // of the whole transfer, identical in cost to a contiguous send.
      gather_copy(r.buf, n, m.frags, m.nfrags);
    }
  }
  if (m.payload == nullptr) {
    counters_.posted_match.fetch_add(1, std::memory_order_relaxed);
  }
  if (m.sender_flag != nullptr) {
    m.sender_flag->store(true, std::memory_order_release);
  }
  r.complete.store(true, std::memory_order_release);
  counters_.delivered.fetch_add(1, std::memory_order_relaxed);
  if (r.waiter_fn != nullptr) {
    // Queue the armed waiter's fire; the public entry point that drove
    // this delivery invokes it after releasing mu_ (callbacks take the
    // selector lock and then the scheduler's wait_mu_, and wq_scan
    // already holds wait_mu_ while testing through msgtest — invoking
    // here would close an ABBA cycle). One-shot: fn is cleared now;
    // ctx/token stay so clear_recv_waiter can purge a queued fire.
    pending_fires_.push_back(
        WaiterFire{r.waiter_fn, r.waiter_ctx, r.waiter_token});
    fires_queued_.store(pending_fires_.size(), std::memory_order_release);
    r.waiter_fn = nullptr;
  }
}

void Endpoint::drain(std::uint64_t now) {
  // Caller holds mu_. Offer newly visible entries to the posted index in
  // global arrival order (k-way pick across the per-source queues —
  // exactly the order the seed engine's arrival-ordered list walk used).
  // Entries inside an offered prefix are skipped by construction: they
  // were refused by every receive posted before they became visible, and
  // receives posted later scan the queues themselves.
  for (;;) {
    SrcQueue* best = nullptr;
    std::uint64_t best_seq = ~std::uint64_t{0};
    for (SrcQueue& sq : unex_) {
      if (sq.offered >= sq.q.size()) continue;
      const UnexMsg& m = sq.q[sq.offered];
      if (m.deliver_at > now) continue;  // in-flight suffix: blocked
      if (m.arrival_seq < best_seq) {
        best = &sq;
        best_seq = m.arrival_seq;
      }
    }
    if (best == nullptr) break;
    UnexMsg& m = best->q[best->offered];
    if (Request* r = take_posted_match(m.hdr)) {
      deliver_into(*r, m);
      best->q.erase(best->q.begin() +
                    static_cast<std::ptrdiff_t>(best->offered));
      --unex_total_;
    } else {
      // Revealed but refused: an ordinary unexpected message from here
      // on — it has arrived for quiescence purposes.
      if (const auto* hb = nx_hb_hooks()) hb->msg_arrived(m.hdr.hb_clk);
      ++best->offered;
    }
  }
  // Re-arm the gate: earliest outstanding deliver-at, and the arrival
  // epoch as of now (arrivals are serialized by mu_, which we hold).
  std::uint64_t next = kNeverVisible;
  for (const SrcQueue& sq : unex_) {
    if (sq.offered < sq.q.size()) {
      const std::uint64_t at = sq.q[sq.offered].deliver_at;
      if (at < next) next = at;
    }
  }
  next_deliver_at_.store(next, std::memory_order_release);
  drained_seq_.store(arrival_seq_.load(std::memory_order_relaxed),
                     std::memory_order_release);
}

bool Endpoint::take_unexpected_match(Request& r) {
  SrcQueue* best = nullptr;
  std::size_t best_pos = 0;
  if (r.want_pe != kAnyPe && r.want_proc != kAnyProc) {
    // Fully-specified source: one queue to scan, FIFO order.
    const int src = machine_.flat_index(r.want_pe, r.want_proc);
    if (src < 0 || static_cast<std::size_t>(src) >= unex_.size()) {
      return false;  // source outside the machine: nothing can match
    }
    SrcQueue& sq = unex_[static_cast<std::size_t>(src)];
    for (std::size_t i = 0; i < sq.offered; ++i) {
      if (recv_matches(r, sq.q[i].hdr)) {
        best = &sq;
        best_pos = i;
        break;
      }
    }
  } else {
    // Wildcard source: earliest global arrival among per-source heads.
    std::uint64_t best_seq = ~std::uint64_t{0};
    for (SrcQueue& sq : unex_) {
      for (std::size_t i = 0; i < sq.offered; ++i) {
        if (!recv_matches(r, sq.q[i].hdr)) continue;
        if (sq.q[i].arrival_seq < best_seq) {
          best = &sq;
          best_pos = i;
          best_seq = sq.q[i].arrival_seq;
        }
        break;  // first match is this source's earliest
      }
    }
  }
  if (best == nullptr) return false;
  deliver_into(r, best->q[best_pos]);
  best->q.erase(best->q.begin() + static_cast<std::ptrdiff_t>(best_pos));
  --best->offered;  // the erased entry sat inside the offered prefix
  --unex_total_;
  return true;
}

// ------------------------------------------------------------- peer loss

bool Endpoint::simulate_claims(int src, std::vector<Handle>* doomed,
                               const Request* extra) const {
  // Posted receives naming exactly this source, in post order — the
  // order the engine will serve them from the dead source's backlog.
  std::vector<std::pair<std::uint64_t, Handle>> posts;
  for (const auto& [key, dq] : buckets_) {
    if (static_cast<std::uint32_t>(key >> 32) !=
        static_cast<std::uint32_t>(src)) {
      continue;
    }
    for (const PostedEntry& pe : dq) posts.emplace_back(pe.seq, pe.h);
  }
  for (const PostedEntry& pe : wildcard_) {
    const Request* r = checked(pe.h);
    if (r == nullptr) continue;
    if (r->want_pe == kAnyPe || r->want_proc == kAnyProc) continue;
    if (machine_.flat_index(r->want_pe, r->want_proc) != src) continue;
    posts.emplace_back(pe.seq, pe.h);
  }
  std::sort(posts.begin(), posts.end());
  const SrcQueue& sq = unex_[static_cast<std::size_t>(src)];
  std::vector<char> claimed(sq.q.size(), 0);
  auto claim_for = [&](const Request& r) {
    for (std::size_t i = 0; i < sq.q.size(); ++i) {
      if (claimed[i] || !recv_matches(r, sq.q[i].hdr)) continue;
      claimed[i] = 1;
      return true;
    }
    return false;
  };
  for (const auto& [seq, h] : posts) {
    const Request* r = checked(h);
    if (r == nullptr) continue;
    if (!claim_for(*r) && doomed != nullptr) doomed->push_back(h);
  }
  return extra != nullptr && claim_for(*extra);
}

void Endpoint::complete_peer_gone(Request& r, int src_pe, int src_proc) {
  r.hdr = MsgHeader{};
  r.hdr.src_pe = src_pe;
  r.hdr.src_proc = src_proc;
  r.hdr.tag = r.want_tag;
  r.hdr.channel = r.want_channel;
  r.hdr.peer_gone = true;
  r.complete.store(true, std::memory_order_release);
  counters_.delivered.fetch_add(1, std::memory_order_relaxed);
  if (r.waiter_fn != nullptr) {
    // Queue-only, exactly as deliver_into: peer loss is reported from
    // pump contexts, which may run under the scheduler's wait_mu_.
    pending_fires_.push_back(
        WaiterFire{r.waiter_fn, r.waiter_ctx, r.waiter_token});
    fires_queued_.store(pending_fires_.size(), std::memory_order_release);
    r.waiter_fn = nullptr;
  }
}

void Endpoint::mark_peer_gone(int src_pe, int src_proc) {
  const int src = machine_.flat_index(src_pe, src_proc);
  if (src < 0 || static_cast<std::size_t>(src) >= dead_src_.size()) return;
  std::lock_guard<std::mutex> lk(mu_);
  if (dead_src_[static_cast<std::size_t>(src)] != 0) return;
  dead_src_[static_cast<std::size_t>(src)] = 1;
  any_dead_src_ = true;
  // The backlog the dead source already delivered keeps matching
  // normally; only receives the claim simulation proves unsatisfiable
  // fail over (their data can never arrive now).
  std::vector<Handle> doomed;
  simulate_claims(src, &doomed, nullptr);
  for (Handle h : doomed) {
    Request* r = checked(h);
    if (r == nullptr) continue;
    remove_posted(h, *r);
    complete_peer_gone(*r, src_pe, src_proc);
  }
}

// ------------------------------------------------------------------ sends

bool Endpoint::accept_send(const MsgHeader& h, const IoVec* iov,
                           std::size_t iovcnt,
                           std::atomic<bool>* sender_flag) {
  if (iovcnt > kMaxIov) {
    std::fprintf(stderr, "nx: send descriptor has %zu fragments (max %zu)\n",
                 iovcnt, kMaxIov);
    std::abort();
  }
  bool consumed;
  {
    // Runs on the SENDER's OS thread, locking the receiver (this).
    std::lock_guard<std::mutex> lk(mu_);
    consumed = accept_send_locked(h, iov, iovcnt, sender_flag);
  }
  // Deliveries above may have armed-waiter fires queued; invoke them now
  // that mu_ is released — still on the sender's OS thread, which is why
  // callbacks must be thread-safe against the receiver's fibers.
  flush_waiter_fires();
  return consumed;
}

bool Endpoint::accept_send_locked(const MsgHeader& h, const IoVec* iov,
                                  std::size_t iovcnt,
                                  std::atomic<bool>* sender_flag,
                                  bool force_eager) {
  const Machine::Config& cfg = machine_.config();
  const NetModel& net = cfg.net;
  const int src = machine_.flat_index(h.src_pe, h.src_proc);
  FaultDecision fd{};
  if (cfg.fault != nullptr) {
    fd = cfg.fault->on_send(h);
    if (fd.drop) {
      // The wire ate the message after the sender handed it over: the
      // send itself completes (a rendezvous sender must not wedge
      // waiting on a copy that will never happen), the payload vanishes.
      counters_.dropped.fetch_add(1, std::memory_order_relaxed);
      if (const auto* hb = nx_hb_hooks()) hb->msg_dropped(h.hb_clk);
      return true;
    }
  }
  // Messages within one process never cross the interconnect (on the
  // Paragon they moved through local memory), so the wire model applies
  // only to remote traffic.
  const bool local = h.src_pe == pe_ && h.src_proc == proc_;
  const bool wire = !net.is_zero() && !local;
  // Once any timed machinery is active, the per-source monotonic clamp
  // must cover *every* message from a source — otherwise an undelayed
  // message overtakes a delayed sibling and the ordered-channel
  // guarantee (per-source FIFO) breaks. Injected delay therefore
  // reorders across sources, never within one.
  const bool timed = wire || cfg.fault != nullptr || cfg.clock != nullptr;
  std::uint64_t now = 0;
  std::uint64_t deliver_at = 0;
  if (timed) {
    now = net_now();
    deliver_at = now + (wire ? net.delay_ns(h.len) : 0) + fd.extra_delay_ns;
    auto& last = last_deliver_[static_cast<std::size_t>(src)];
    if (deliver_at <= last) deliver_at = last + 1;  // ordered channel
    last = deliver_at;
  }
  // Duplicates (injected): eager-buffered copies queued behind the
  // original with their own clamped deliver-at. They are always marked
  // in-flight — the epoch gate then guarantees the next progress pass
  // offers them to posted receives, without replicating the fast path.
  auto enqueue_duplicates = [&] {
    for (std::uint32_t i = 0; i < fd.duplicates; ++i) {
      auto& last = last_deliver_[static_cast<std::size_t>(src)];
      std::uint64_t at = deliver_at;
      if (at <= last) at = last + 1;
      last = at;
      SrcQueue& dsq = unex_[static_cast<std::size_t>(src)];
      dsq.q.emplace_back();
      UnexMsg& d = dsq.q.back();
      d.hdr = h;
      d.deliver_at = at;
      d.arrival_seq = next_arrival_seq_++;
      if (h.len > 0) {
        d.payload = std::make_unique<std::uint8_t[]>(h.len);
        gather_copy(d.payload.get(), h.len, iov, iovcnt);
        counters_.temp_allocs.fetch_add(1, std::memory_order_relaxed);
        counters_.bytes_copied.fetch_add(h.len, std::memory_order_relaxed);
      }
      ++unex_total_;
      arrival_seq_.fetch_add(1, std::memory_order_release);
      if (at < next_deliver_at_.load(std::memory_order_relaxed)) {
        next_deliver_at_.store(at, std::memory_order_release);
      }
      counters_.duplicated.fetch_add(1, std::memory_order_relaxed);
    }
  };
  // Reveal anything that became visible first, so cross-source arrival
  // order is preserved before this message is considered.
  if (progress_pending(now)) drain(now);
  SrcQueue& sq = unex_[static_cast<std::size_t>(src)];
  const bool visible = deliver_at <= now && sq.offered == sq.q.size();
  if (visible) {
    if (Request* r = take_posted_match(h)) {
      // Delivered straight from the sender's fragments (zero copies
      // beyond the one into the user's receive buffer).
      UnexMsg view;
      view.hdr = h;
      for (std::size_t i = 0; i < iovcnt; ++i) view.frags[i] = iov[i];
      view.nfrags = static_cast<std::uint32_t>(iovcnt);
      view.sender_flag = sender_flag;
      deliver_into(*r, view);
      enqueue_duplicates();
      return true;
    }
  }
  sq.q.emplace_back();
  UnexMsg& m = sq.q.back();
  m.hdr = h;
  m.deliver_at = deliver_at;
  m.arrival_seq = next_arrival_seq_++;
  ++unex_total_;
  if (visible) {
    sq.offered = sq.q.size();  // offered above, refused: stays unexpected
    if (const auto* hb = nx_hb_hooks()) hb->msg_arrived(h.hb_clk);
  } else {
    // In-flight: advance the arrival epoch and keep the earliest
    // outstanding deliver-at so the gate reopens when it is reached.
    arrival_seq_.fetch_add(1, std::memory_order_release);
    if (deliver_at < next_deliver_at_.load(std::memory_order_relaxed)) {
      next_deliver_at_.store(deliver_at, std::memory_order_release);
    }
  }
  if (force_eager || h.len <= machine_.config().eager_threshold) {
    // Stays unexpected: buffer it so the send is locally blocking. This
    // is the one intermediate copy the descriptor path ever makes, and
    // the counters make it visible. Wire transports force this branch —
    // their ring memory is recycled as soon as injection returns, so
    // the rendezvous path (which would retain fragment pointers) must
    // be unreachable for wire bytes.
    if (h.len > 0) {
      m.payload = std::make_unique<std::uint8_t[]>(h.len);
      gather_copy(m.payload.get(), h.len, iov, iovcnt);
      counters_.temp_allocs.fetch_add(1, std::memory_order_relaxed);
      counters_.bytes_copied.fetch_add(h.len, std::memory_order_relaxed);
    }
    counters_.unexpected_eager.fetch_add(1, std::memory_order_relaxed);
    enqueue_duplicates();
    return true;
  }
  for (std::size_t i = 0; i < iovcnt; ++i) m.frags[i] = iov[i];
  m.nfrags = static_cast<std::uint32_t>(iovcnt);
  m.sender_flag = sender_flag;
  counters_.unexpected_rndv.fetch_add(1, std::memory_order_relaxed);
  enqueue_duplicates();
  return false;  // rendezvous: receiver will raise sender_flag
}

Handle Endpoint::start_send(int dst_pe, int dst_proc, int tag,
                            const IoVec* iov, std::size_t iovcnt,
                            int channel) {
  const std::size_t len = iov_total(iov, iovcnt);
  counters_.sends.fetch_add(1, std::memory_order_relaxed);
  counters_.bytes_sent.fetch_add(len, std::memory_order_relaxed);
  Handle h = alloc_request(Request::Kind::Send);
  Request* r = checked(h);
  MsgHeader hdr{pe_, proc_, tag, channel, len, false};
  if (const auto* hb = nx_hb_hooks()) hdr.hb_clk = hb->msg_send(hdr);
  if (transport_->submit(machine_, hdr, dst_pe, dst_proc, iov, iovcnt,
                         &r->complete)) {
    r->complete.store(true, std::memory_order_release);
  }
  return h;
}

Handle Endpoint::isend(int dst_pe, int dst_proc, int tag, const void* buf,
                       std::size_t len, int channel) {
  const IoVec one{buf, len};
  return start_send(dst_pe, dst_proc, tag, &one, 1, channel);
}

Handle Endpoint::isendv(int dst_pe, int dst_proc, int tag, const IoVec* iov,
                        std::size_t iovcnt, int channel) {
  counters_.gather_sends.fetch_add(1, std::memory_order_relaxed);
  return start_send(dst_pe, dst_proc, tag, iov, iovcnt, channel);
}

void Endpoint::start_csend(int dst_pe, int dst_proc, int tag,
                           const IoVec* iov, std::size_t iovcnt,
                           int channel) {
  const std::size_t len = iov_total(iov, iovcnt);
  counters_.sends.fetch_add(1, std::memory_order_relaxed);
  counters_.bytes_sent.fetch_add(len, std::memory_order_relaxed);
  std::atomic<bool> done{false};
  MsgHeader hdr{pe_, proc_, tag, channel, len, false};
  if (const auto* hb = nx_hb_hooks()) hdr.hb_clk = hb->msg_send(hdr);
  if (transport_->submit(machine_, hdr, dst_pe, dst_proc, iov, iovcnt, &done))
    return;
  // Rendezvous: spin until the receiver copies. Only the in-proc backend
  // can take this branch (wire backends always consume). This parks the
  // whole OS thread, which is fine across processes; within one process
  // use the Chant layer's thread-aware send instead. A short relax burst
  // covers the receiver-already-copying case; beyond it, donate the
  // timeslice (the receiving "processor" may share this core).
  unsigned spins = 0;
  while (!done.load(std::memory_order_acquire)) {
    cpu_relax();
    if (++spins >= 4) std::this_thread::yield();
  }
}

void Endpoint::csend(int dst_pe, int dst_proc, int tag, const void* buf,
                     std::size_t len, int channel) {
  const IoVec one{buf, len};
  start_csend(dst_pe, dst_proc, tag, &one, 1, channel);
}

void Endpoint::csendv(int dst_pe, int dst_proc, int tag, const IoVec* iov,
                      std::size_t iovcnt, int channel) {
  counters_.gather_sends.fetch_add(1, std::memory_order_relaxed);
  start_csend(dst_pe, dst_proc, tag, iov, iovcnt, channel);
}

// --------------------------------------------------------------- receives

Handle Endpoint::irecv(int src_pe, int src_proc, int tag, int tag_mask,
                       void* buf, std::size_t cap, int channel,
                       int channel_mask) {
  counters_.recvs_posted.fetch_add(1, std::memory_order_relaxed);
  Handle h = alloc_request(Request::Kind::Recv);
  Request* r = checked(h);
  // Plain writes are safe here: the handle has not been published, and
  // the insertion below (under mu_) orders them for the matching side.
  r->buf = buf;
  r->cap = cap;
  r->want_pe = src_pe;
  r->want_proc = src_proc;
  r->want_tag = tag;
  r->tag_mask = tag_mask;
  r->want_channel = channel;
  r->channel_mask = channel_mask;
  // Wire backends: drain inbound rings into the matching engine first,
  // so this receive sees everything already on the wire (gated on a
  // cached bool — the in-proc fast path stays free of the virtual call).
  if (pump_active_) transport_->pump(*this);
  {
    std::lock_guard<std::mutex> lk(mu_);
    const std::uint64_t now = net_now();
    if (progress_pending(now)) drain(now);
    if (!take_unexpected_match(*r)) {
      // Exact-source receive against a peer already reported dead: post
      // it only if the remaining backlog (after earlier posts take
      // their claims) can still satisfy it; otherwise it would hang
      // forever, so it completes with peer_gone instead.
      bool doomed = false;
      if (any_dead_src_ && r->want_pe != kAnyPe && r->want_proc != kAnyProc) {
        const int src = machine_.flat_index(r->want_pe, r->want_proc);
        if (src >= 0 && static_cast<std::size_t>(src) < dead_src_.size() &&
            dead_src_[static_cast<std::size_t>(src)] != 0) {
          doomed = !simulate_claims(src, nullptr, r);
        }
      }
      if (doomed) {
        complete_peer_gone(*r, r->want_pe, r->want_proc);
      } else {
        insert_posted(h, *r);
      }
    }
  }
  // The drain can complete *other* receives with waiters armed.
  flush_waiter_fires();
  return h;
}

bool Endpoint::msgtest(Handle h, MsgHeader* out) {
  counters_.msgtest_calls.fetch_add(1, std::memory_order_relaxed);
  Request* r = checked(h);
  if (r == nullptr) {
    std::fprintf(stderr, "nx: msgtest on invalid handle %d\n", h);
    std::abort();
  }
  if (!r->complete.load(std::memory_order_acquire)) {
    // Wire backends make progress only when pumped; pump() injects with
    // fires queued, never flushed, so this is safe under wait_mu_.
    if (pump_active_) transport_->pump(*this);
    if (r->kind.load(std::memory_order_relaxed) == Request::Kind::Recv) {
      // Progress: an in-flight message may have become visible. The
      // epoch gate makes the (dominant) no-news case two atomic loads —
      // no lock, no drain.
      // NOTE: msgtest (unlike accept_send/irecv) does NOT flush waiter
      // fires on the way out — scheduler poll predicates call it under
      // wait_mu_, and a waiter callback re-enters the scheduler. A
      // drain here only *queues* fires; any endpoint with armed waiters
      // has a parked selector whose poll predicate (poll_progress)
      // reports queued fires and flushes them from fiber context.
      const std::uint64_t now = net_now();
      if (progress_pending(now)) {
        std::lock_guard<std::mutex> lk(mu_);
        drain(now);
      } else {
        counters_.drain_skipped.fetch_add(1, std::memory_order_relaxed);
      }
    }
    if (!r->complete.load(std::memory_order_acquire)) {
      counters_.msgtest_failed.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
  }
  if (out != nullptr) *out = r->hdr;
  release_slot(h);
  return true;
}

MsgHeader Endpoint::msgwait(Handle h) {
  MsgHeader out{};
  unsigned spins = 0;
  while (!msgtest(h, &out)) {
    cpu_relax();
    if (++spins >= 4) std::this_thread::yield();
  }
  return out;
}

bool Endpoint::msgwait_until(Handle h, std::uint64_t deadline_ns,
                             MsgHeader* out) {
  // Deadlines are judged against the installed clock override when the
  // Machine has one (sim virtual time) and the steady clock otherwise —
  // not net_now(), whose zero-model fast path never advances.
  const Machine::Config& cfg = machine_.config();
  const auto wall = [&]() -> std::uint64_t {
    return cfg.clock != nullptr ? cfg.clock(cfg.clock_ctx) : now_ns();
  };
  MsgHeader hdr{};
  unsigned spins = 0;
  while (!msgtest(h, &hdr)) {
    if (wall() >= deadline_ns) return false;
    cpu_relax();
    if (++spins >= 4) std::this_thread::yield();
  }
  if (out != nullptr) *out = hdr;
  return true;
}

int Endpoint::msgtestany(const Handle* hs, std::size_t n, MsgHeader* out) {
  counters_.testany_calls.fetch_add(1, std::memory_order_relaxed);
  // One progress pass, then one scan — the single-call semantics the
  // paper attributes to MPI_TESTANY. The progress pass is epoch-gated
  // exactly like msgtest's (and, like msgtest's, pumps queue-only).
  if (pump_active_) transport_->pump(*this);
  const std::uint64_t now = net_now();
  if (progress_pending(now)) {
    std::lock_guard<std::mutex> lk(mu_);
    drain(now);
  } else {
    counters_.drain_skipped.fetch_add(1, std::memory_order_relaxed);
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (hs[i] == kInvalidHandle) continue;
    Request* r = checked(hs[i]);
    if (r == nullptr) continue;
    if (r->complete.load(std::memory_order_acquire)) {
      if (out != nullptr) *out = r->hdr;
      release_slot(hs[i]);
      return static_cast<int>(i);
    }
  }
  return -1;
}

MsgHeader Endpoint::crecv(int src_pe, int src_proc, int tag, int tag_mask,
                          void* buf, std::size_t cap) {
  Handle h = irecv(src_pe, src_proc, tag, tag_mask, buf, cap);
  return msgwait(h);
}

bool Endpoint::iprobe(int src_pe, int src_proc, int tag, int tag_mask,
                      MsgHeader* out) {
  if (pump_active_) transport_->pump(*this);
  std::lock_guard<std::mutex> lk(mu_);
  const std::uint64_t now = net_now();
  Request probe;
  probe.want_pe = src_pe;
  probe.want_proc = src_proc;
  probe.want_tag = tag;
  probe.tag_mask = tag_mask;
  const UnexMsg* best = nullptr;
  std::uint64_t best_seq = ~std::uint64_t{0};
  auto scan = [&](const SrcQueue& sq) {
    for (const UnexMsg& m : sq.q) {
      if (m.deliver_at > now) break;  // in-flight suffix: invisible
      if (!recv_matches(probe, m.hdr)) continue;
      if (m.arrival_seq < best_seq) {
        best = &m;
        best_seq = m.arrival_seq;
      }
      break;  // first visible match is this source's earliest
    }
  };
  if (src_pe != kAnyPe && src_proc != kAnyProc) {
    const int src = machine_.flat_index(src_pe, src_proc);
    if (src < 0 || static_cast<std::size_t>(src) >= unex_.size()) {
      return false;
    }
    scan(unex_[static_cast<std::size_t>(src)]);
  } else {
    for (const SrcQueue& sq : unex_) scan(sq);
  }
  if (best == nullptr) return false;
  if (out != nullptr) *out = best->hdr;
  return true;
}

bool Endpoint::msgdone(Handle h) const {
  const Request* r = checked(h);
  return r != nullptr && r->complete.load(std::memory_order_acquire);
}

bool Endpoint::cancel_recv(Handle h, MsgHeader* out) {
  Request* r = checked(h);
  if (r == nullptr) return false;
  bool was_pending = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (!r->complete.load(std::memory_order_acquire)) {
      was_pending = remove_posted(h, *r);
    }
  }
  if (!was_pending && out != nullptr) *out = r->hdr;
  release_slot(h);
  return was_pending;
}

// ------------------------------------------------- registered waiters

bool Endpoint::set_recv_waiter(Handle h, WaiterFn fn, void* ctx,
                               std::uint64_t token) {
  std::lock_guard<std::mutex> lk(mu_);
  Request* r = checked(h);
  if (r == nullptr || r->complete.load(std::memory_order_acquire)) {
    return false;  // already delivered (or released): caller sees it ready
  }
  r->waiter_fn = fn;
  r->waiter_ctx = ctx;
  r->waiter_token = token;
  return true;
}

void Endpoint::clear_recv_waiter(Handle h) {
  std::lock_guard<std::mutex> lk(mu_);
  Request* r = checked(h);
  if (r == nullptr) return;
  if (r->waiter_ctx != nullptr) {
    // Purge a fire that was queued but not yet invoked, so deregistering
    // is atomic with respect to delivery: after this returns the only
    // fire that can still land is one a concurrent flush already
    // extracted, and the caller's token generation filters that.
    void* ctx = r->waiter_ctx;
    const std::uint64_t token = r->waiter_token;
    pending_fires_.erase(
        std::remove_if(pending_fires_.begin(), pending_fires_.end(),
                       [&](const WaiterFire& f) {
                         return f.ctx == ctx && f.token == token;
                       }),
        pending_fires_.end());
    fires_queued_.store(pending_fires_.size(), std::memory_order_release);
  }
  r->waiter_fn = nullptr;
  r->waiter_ctx = nullptr;
  r->waiter_token = 0;
}

bool Endpoint::poll_progress() {
  if (pump_active_) transport_->pump(*this);
  const std::uint64_t now = net_now();
  if (progress_pending(now)) {
    std::lock_guard<std::mutex> lk(mu_);
    drain(now);
  }
  return fires_queued_.load(std::memory_order_acquire) != 0;
}

void Endpoint::flush_waiter_fires() {
  while (fires_queued_.load(std::memory_order_acquire) != 0) {
    std::vector<WaiterFire> batch;
    {
      std::lock_guard<std::mutex> lk(mu_);
      batch.swap(pending_fires_);
      fires_queued_.store(0, std::memory_order_relaxed);
      if (!batch.empty()) {
        fires_inflight_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    if (batch.empty()) return;
    for (const WaiterFire& f : batch) f.fn(f.ctx, f.token);
    fires_inflight_.fetch_sub(1, std::memory_order_release);
  }
}

void Endpoint::waiter_quiesce() {
  unsigned spins = 0;
  for (;;) {
    flush_waiter_fires();
    if (fires_inflight_.load(std::memory_order_acquire) == 0 &&
        fires_queued_.load(std::memory_order_acquire) == 0) {
      return;
    }
    // The in-flight flusher runs on another OS thread (fibers do not
    // preempt), so donating the timeslice is enough for it to finish.
    cpu_relax();
    if (++spins >= 4) std::this_thread::yield();
  }
}

std::size_t Endpoint::unexpected_count() const {
  // Like iprobe, this observes arrivals — on wire backends the wire
  // must be drained first or queued traffic stays invisible forever.
  if (pump_active_) transport_->pump(*const_cast<Endpoint*>(this));
  std::lock_guard<std::mutex> lk(mu_);
  return unex_total_;
}

std::size_t Endpoint::posted_count() const {
  std::lock_guard<std::mutex> lk(mu_);
  return posted_total_;
}

}  // namespace nx
