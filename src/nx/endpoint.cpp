// endpoint.cpp — matching engine for the simulated NX layer.
//
// Matching model: every incoming message is appended to the unexpected
// queue, then drain() pairs queue entries with posted receives. drain()
// walks the unexpected queue in arrival order and, for each *visible*
// entry (deliver-at timestamp reached), delivers it to the *first*
// matching posted receive — which yields exactly the MPI/NX matching
// rules: earliest-posted receive wins, per-source FIFO holds (an entry
// still in flight blocks later entries from the same source), and any
// message left in the queue matches no posted receive. Payloads are
// delivered straight from the sender's buffer whenever the receive is
// already posted (the paper's zero-intermediate-copy path); only a
// message that stays unexpected is eager-copied (at or below the
// threshold, making the send locally blocking) or held for rendezvous.
//
// Locking protocol: all matching state of one endpoint is guarded by its
// mu_. A send locks only the *destination* endpoint (its own slab
// allocation happens first, under its own lock, released before the
// destination lock is taken), so no thread holds two endpoint locks.
// Completion flags are atomics so msgtest's fast path avoids the lock.
#include "nx/endpoint.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "nx/machine.hpp"

namespace nx {

namespace {
inline void cpu_relax() noexcept {
#if defined(__x86_64__)
  __builtin_ia32_pause();
#endif
}
}  // namespace

Endpoint::Endpoint(Machine& machine, int pe, int proc)
    : machine_(machine),
      pe_(pe),
      proc_(proc),
      last_deliver_(static_cast<std::size_t>(machine.total_processes()), 0),
      blocked_scratch_(static_cast<std::size_t>(machine.total_processes()),
                       0) {}

Endpoint::~Endpoint() = default;

// ------------------------------------------------------------ request slab

Endpoint::Request* Endpoint::slot_ptr(std::uint32_t slot) const {
  return &slab_[slot / kChunk][slot % kChunk];
}

std::uint64_t Endpoint::net_now() const {
  return machine_.config().net.is_zero() ? 0 : now_ns();
}

Handle Endpoint::alloc_request(Request::Kind kind) {
  std::lock_guard<std::mutex> lk(mu_);
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = slots_used_++;
    if (slot / kChunk >= slab_.size()) {
      slab_.push_back(std::make_unique<Request[]>(kChunk));
    }
    if (slot > kSlotMask) {
      std::fprintf(stderr, "nx: request slab exhausted (%u)\n", slot);
      std::abort();
    }
  }
  Request* r = slot_ptr(slot);
  // 11 generation bits above the slot bits keep the handle non-negative.
  const std::uint32_t gen = r->gen & ((1u << (31 - kSlotBits)) - 1);
  r->kind = kind;
  r->complete.store(false, std::memory_order_relaxed);
  r->buf = nullptr;
  r->cap = 0;
  r->want_channel = 0;
  r->channel_mask = 0;
  r->hdr = MsgHeader{};
  return static_cast<Handle>((gen << kSlotBits) | slot);
}

Endpoint::Request* Endpoint::checked(Handle h) const {
  if (h < 0) return nullptr;
  const auto slot = static_cast<std::uint32_t>(h) & kSlotMask;
  if (slot >= slots_used_) return nullptr;
  Request* r = slot_ptr(slot);
  const auto gen = static_cast<std::uint32_t>(h) >> kSlotBits;
  if ((r->gen & ((1u << (31 - kSlotBits)) - 1)) != gen ||
      r->kind == Request::Kind::None) {
    return nullptr;
  }
  return r;
}

void Endpoint::release_slot(Handle h) {
  std::lock_guard<std::mutex> lk(mu_);
  const auto slot = static_cast<std::uint32_t>(h) & kSlotMask;
  Request* r = slot_ptr(slot);
  r->kind = Request::Kind::None;
  ++r->gen;  // invalidate stale handles
  free_slots_.push_back(slot);
}

// --------------------------------------------------------------- matching

bool Endpoint::recv_matches(const Request& r, const MsgHeader& h) const {
  if (r.want_pe != kAnyPe && r.want_pe != h.src_pe) return false;
  if (r.want_proc != kAnyProc && r.want_proc != h.src_proc) return false;
  if ((h.channel & r.channel_mask) != (r.want_channel & r.channel_mask)) {
    return false;
  }
  return (h.tag & r.tag_mask) == (r.want_tag & r.tag_mask);
}

void Endpoint::deliver_into(Request& r, const UnexMsg& m) {
  r.hdr = m.hdr;
  std::size_t n = m.hdr.len;
  if (n > r.cap) {
    n = r.cap;
    r.hdr.truncated = true;
  }
  if (n > 0) {
    const void* data = m.payload != nullptr ? m.payload.get() : m.src_buf;
    std::memcpy(r.buf, data, n);
  }
  if (m.payload == nullptr) {
    counters_.posted_match.fetch_add(1, std::memory_order_relaxed);
  }
  if (m.sender_flag != nullptr) {
    m.sender_flag->store(true, std::memory_order_release);
  }
  r.complete.store(true, std::memory_order_release);
  counters_.delivered.fetch_add(1, std::memory_order_relaxed);
}

void Endpoint::drain(std::uint64_t now) {
  // Caller holds mu_. Pair visible unexpected entries (arrival order,
  // per-source FIFO) with posted receives (post order).
  if (unexpected_.empty() || posted_.empty()) return;
  std::fill(blocked_scratch_.begin(), blocked_scratch_.end(), 0);
  for (auto it = unexpected_.begin(); it != unexpected_.end();) {
    const int src = machine_.flat_index(it->hdr.src_pe, it->hdr.src_proc);
    auto& blocked = blocked_scratch_[static_cast<std::size_t>(src)];
    if (blocked != 0) {
      ++it;
      continue;
    }
    if (it->deliver_at > now) {
      // Still in flight: per-source channels are ordered, so nothing
      // later from this source may be delivered either.
      blocked = 1;
      ++it;
      continue;
    }
    bool delivered = false;
    for (auto pit = posted_.begin(); pit != posted_.end(); ++pit) {
      Request* r = checked(*pit);
      if (r == nullptr || !recv_matches(*r, it->hdr)) continue;
      deliver_into(*r, *it);
      posted_.erase(pit);
      it = unexpected_.erase(it);
      delivered = true;
      break;
    }
    if (!delivered) ++it;
  }
}

// ------------------------------------------------------------------ sends

bool Endpoint::accept_send(const MsgHeader& h, const void* buf,
                           std::atomic<bool>* sender_flag) {
  // Runs on the SENDER's OS thread, locking the receiver (this).
  std::lock_guard<std::mutex> lk(mu_);
  const NetModel& net = machine_.config().net;
  const int src = machine_.flat_index(h.src_pe, h.src_proc);
  std::uint64_t now = 0;
  std::uint64_t deliver_at = 0;
  // Messages within one process never cross the interconnect (on the
  // Paragon they moved through local memory), so the wire model applies
  // only to remote traffic.
  const bool local = h.src_pe == pe_ && h.src_proc == proc_;
  if (!net.is_zero() && !local) {
    now = now_ns();
    deliver_at = now + net.delay_ns(h.len);
    auto& last = last_deliver_[static_cast<std::size_t>(src)];
    if (deliver_at <= last) deliver_at = last + 1;  // ordered channel
    last = deliver_at;
  }
  unexpected_.push_back(UnexMsg{});
  auto it = std::prev(unexpected_.end());
  it->hdr = h;
  it->deliver_at = deliver_at;
  it->src_buf = buf;
  it->sender_flag = sender_flag;
  drain(now);
  // If drain() delivered our entry it erased it (invalidating `it`) and
  // raised sender_flag first — so the flag, not the iterator, is the
  // delivery signal.
  if (sender_flag->load(std::memory_order_acquire)) {
    // Delivered straight from the sender's buffer (zero copies beyond
    // the one into the user's receive buffer).
    return true;
  }
  if (h.len <= machine_.config().eager_threshold) {
    // Stays unexpected: buffer it so the send is locally blocking.
    if (h.len > 0) {
      it->payload = std::make_unique<std::uint8_t[]>(h.len);
      std::memcpy(it->payload.get(), buf, h.len);
    }
    it->src_buf = nullptr;
    it->sender_flag = nullptr;
    counters_.unexpected_eager.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  counters_.unexpected_rndv.fetch_add(1, std::memory_order_relaxed);
  return false;  // rendezvous: receiver will raise sender_flag
}

Handle Endpoint::isend(int dst_pe, int dst_proc, int tag, const void* buf,
                       std::size_t len, int channel) {
  counters_.sends.fetch_add(1, std::memory_order_relaxed);
  counters_.bytes_sent.fetch_add(len, std::memory_order_relaxed);
  Handle h = alloc_request(Request::Kind::Send);
  Request* r = checked(h);
  MsgHeader hdr{pe_, proc_, tag, channel, len, false};
  Endpoint& dst = machine_.endpoint(dst_pe, dst_proc);
  if (dst.accept_send(hdr, buf, &r->complete)) {
    r->complete.store(true, std::memory_order_release);
  }
  return h;
}

void Endpoint::csend(int dst_pe, int dst_proc, int tag, const void* buf,
                     std::size_t len, int channel) {
  counters_.sends.fetch_add(1, std::memory_order_relaxed);
  counters_.bytes_sent.fetch_add(len, std::memory_order_relaxed);
  std::atomic<bool> done{false};
  MsgHeader hdr{pe_, proc_, tag, channel, len, false};
  Endpoint& dst = machine_.endpoint(dst_pe, dst_proc);
  if (dst.accept_send(hdr, buf, &done)) return;
  // Rendezvous: spin until the receiver copies. This parks the whole OS
  // thread, which is fine across processes; within one process use the
  // Chant layer's thread-aware send instead. A short relax burst covers
  // the receiver-already-copying case; beyond it, donate the timeslice
  // (the receiving "processor" may share this core).
  unsigned spins = 0;
  while (!done.load(std::memory_order_acquire)) {
    cpu_relax();
    if (++spins >= 4) std::this_thread::yield();
  }
}

// --------------------------------------------------------------- receives

Handle Endpoint::irecv(int src_pe, int src_proc, int tag, int tag_mask,
                       void* buf, std::size_t cap, int channel,
                       int channel_mask) {
  counters_.recvs_posted.fetch_add(1, std::memory_order_relaxed);
  Handle h = alloc_request(Request::Kind::Recv);
  std::lock_guard<std::mutex> lk(mu_);
  Request* r = checked(h);
  r->buf = buf;
  r->cap = cap;
  r->want_pe = src_pe;
  r->want_proc = src_proc;
  r->want_tag = tag;
  r->tag_mask = tag_mask;
  r->want_channel = channel;
  r->channel_mask = channel_mask;
  posted_.push_back(h);
  drain(net_now());
  return h;
}

bool Endpoint::msgtest(Handle h, MsgHeader* out) {
  counters_.msgtest_calls.fetch_add(1, std::memory_order_relaxed);
  Request* r = checked(h);
  if (r == nullptr) {
    std::fprintf(stderr, "nx: msgtest on invalid handle %d\n", h);
    std::abort();
  }
  if (!r->complete.load(std::memory_order_acquire)) {
    if (r->kind == Request::Kind::Recv) {
      // Progress: a matching message may have arrived (or become
      // visible) since the receive was posted.
      std::lock_guard<std::mutex> lk(mu_);
      drain(net_now());
    }
    if (!r->complete.load(std::memory_order_acquire)) {
      counters_.msgtest_failed.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
  }
  if (out != nullptr) *out = r->hdr;
  release_slot(h);
  return true;
}

MsgHeader Endpoint::msgwait(Handle h) {
  MsgHeader out{};
  unsigned spins = 0;
  while (!msgtest(h, &out)) {
    cpu_relax();
    if (++spins >= 4) std::this_thread::yield();
  }
  return out;
}

int Endpoint::msgtestany(const Handle* hs, std::size_t n, MsgHeader* out) {
  counters_.testany_calls.fetch_add(1, std::memory_order_relaxed);
  // One progress pass, then one scan — the single-call semantics the
  // paper attributes to MPI_TESTANY.
  {
    std::lock_guard<std::mutex> lk(mu_);
    drain(net_now());
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (hs[i] == kInvalidHandle) continue;
    Request* r = checked(hs[i]);
    if (r == nullptr) continue;
    if (r->complete.load(std::memory_order_acquire)) {
      if (out != nullptr) *out = r->hdr;
      release_slot(hs[i]);
      return static_cast<int>(i);
    }
  }
  return -1;
}

MsgHeader Endpoint::crecv(int src_pe, int src_proc, int tag, int tag_mask,
                          void* buf, std::size_t cap) {
  Handle h = irecv(src_pe, src_proc, tag, tag_mask, buf, cap);
  return msgwait(h);
}

bool Endpoint::iprobe(int src_pe, int src_proc, int tag, int tag_mask,
                      MsgHeader* out) {
  std::lock_guard<std::mutex> lk(mu_);
  const std::uint64_t now = net_now();
  Request probe;
  probe.want_pe = src_pe;
  probe.want_proc = src_proc;
  probe.want_tag = tag;
  probe.tag_mask = tag_mask;
  for (const auto& m : unexpected_) {
    if (!recv_matches(probe, m.hdr)) continue;
    if (m.deliver_at > now) continue;
    if (out != nullptr) *out = m.hdr;
    return true;
  }
  return false;
}

bool Endpoint::msgdone(Handle h) const {
  const Request* r = checked(h);
  return r != nullptr && r->complete.load(std::memory_order_acquire);
}

bool Endpoint::cancel_recv(Handle h) {
  Request* r = checked(h);
  if (r == nullptr) return false;
  bool was_pending = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (!r->complete.load(std::memory_order_acquire)) {
      for (auto it = posted_.begin(); it != posted_.end(); ++it) {
        if (*it == h) {
          posted_.erase(it);
          was_pending = true;
          break;
        }
      }
    }
  }
  release_slot(h);
  return was_pending;
}

std::size_t Endpoint::unexpected_count() const {
  std::lock_guard<std::mutex> lk(mu_);
  return unexpected_.size();
}

std::size_t Endpoint::posted_count() const {
  std::lock_guard<std::mutex> lk(mu_);
  return posted_.size();
}

}  // namespace nx
