// machine.cpp — config resolution and lifecycle for the simulated
// machine; process hosting and barriers live behind the Transport seam.
#include "nx/machine.hpp"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace nx {

namespace {

/// TransportSpec resolution precedence (machine.hpp Config docs):
/// explicit spec > legacy enum fields > CHANT_TRANSPORT > inproc.
/// A malformed environment spec is a hard error carrying the offending
/// string — unknown values must never fall back to inproc silently.
TransportSpec resolve_spec(const Machine::Config& cfg) {
  if (cfg.transport_spec.kind != TransportKind::Default) {
    return cfg.transport_spec;
  }
  if (cfg.transport != TransportKind::Default) {
    switch (cfg.transport) {
      case TransportKind::ShmRing:
        return TransportSpec::shmring(cfg.shm_ring_bytes, cfg.fork_processes);
      case TransportKind::Tcp: {
        // Legacy enum value carries no address: thread-hosted loopback
        // on ephemeral ports, the only mode that needs none.
        TransportSpec s = TransportSpec::tcp("127.0.0.1", 0);
        s.fork = cfg.fork_processes;
        return s;
      }
      case TransportKind::InProc:
      case TransportKind::Default:
        break;
    }
    // Legacy fork flag on inproc falls through to validation below.
    TransportSpec s = TransportSpec::inproc();
    s.fork = cfg.fork_processes;
    return s;
  }
  const char* env = std::getenv("CHANT_TRANSPORT");
  if (env != nullptr && *env != '\0') {
    // Legacy config fields act as defaults for options the environment
    // spec does not mention (a fork-mode binary swept over backends
    // keeps forking).
    TransportSpec s;
    s.fork = cfg.fork_processes;
    s.ring_bytes = cfg.shm_ring_bytes;
    std::string err;
    if (!TransportSpec::try_parse(env, &s, &err)) {
      throw std::invalid_argument("nx: bad CHANT_TRANSPORT: " + err);
    }
    return s;
  }
  return TransportSpec::inproc();
}

}  // namespace

Machine::Machine(const Config& cfg) : cfg_(cfg) {
  if (cfg_.pes < 1 || cfg_.processes_per_pe < 1) {
    std::fprintf(stderr, "nx: invalid machine config (%d pes, %d procs)\n",
                 cfg_.pes, cfg_.processes_per_pe);
    std::abort();
  }
  TransportSpec spec = resolve_spec(cfg_);
  if (spec.fork && spec.kind != TransportKind::ShmRing &&
      spec.kind != TransportKind::Tcp) {
    std::fprintf(stderr,
                 "nx: fork requires a cross-process transport "
                 "(shmring or tcp), got %s\n",
                 to_string(spec.kind));
    std::abort();
  }
  if (spec.kind == TransportKind::Tcp) {
    if (spec.host.empty()) {
      throw std::invalid_argument("nx: tcp transport spec needs a host: '" +
                                  spec.to_string() + "'");
    }
    if (spec.nprocs == 0) spec.nprocs = total_processes();
    if (spec.nprocs != total_processes()) {
      throw std::invalid_argument(
          "nx: tcp spec nprocs=" + std::to_string(spec.nprocs) +
          " does not match the machine's " +
          std::to_string(total_processes()) + " processes: '" +
          spec.to_string() + "'");
    }
    if (spec.rank >= 0 && (spec.rank >= spec.nprocs || spec.fork)) {
      throw std::invalid_argument(
          "nx: tcp rank mode needs 0 <= rank < nprocs and no fork: '" +
          spec.to_string() + "'");
    }
  } else if (spec.rank >= 0) {
    throw std::invalid_argument("nx: rank is a tcp-only option: '" +
                                spec.to_string() + "'");
  }
  cfg_.transport_spec = spec;
  // Back-fill the deprecated fields so config().transport introspection
  // keeps working for one release.
  cfg_.transport = spec.kind;        // chant-lint: allow(legacy-transport-config)
  cfg_.fork_processes = spec.fork;   // chant-lint: allow(legacy-transport-config)
  cfg_.shm_ring_bytes = spec.ring_bytes;  // chant-lint: allow(legacy-transport-config)
  // The transport must exist before the endpoints: each Endpoint caches
  // the backend pointer and its needs_pump() answer at construction.
  transport_ = make_transport(*this);
  endpoints_.reserve(static_cast<std::size_t>(total_processes()));
  for (int pe = 0; pe < cfg_.pes; ++pe) {
    for (int pr = 0; pr < cfg_.processes_per_pe; ++pr) {
      endpoints_.push_back(std::make_unique<Endpoint>(*this, pe, pr));
    }
  }
}

Machine::~Machine() = default;

Endpoint& Machine::endpoint(int pe, int proc) {
  if (pe < 0 || pe >= cfg_.pes || proc < 0 || proc >= cfg_.processes_per_pe) {
    std::fprintf(stderr, "nx: endpoint(%d,%d) out of range\n", pe, proc);
    std::abort();
  }
  return *endpoints_[static_cast<std::size_t>(flat_index(pe, proc))];
}

const Endpoint& Machine::endpoint(int pe, int proc) const {
  return const_cast<Machine*>(this)->endpoint(pe, proc);
}

void Machine::run(const std::function<void(Endpoint&)>& process_main) {
  transport_->run(*this, process_main);
}

void Machine::os_barrier() { transport_->barrier(*this); }

}  // namespace nx
