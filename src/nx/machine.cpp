// machine.cpp — config resolution and lifecycle for the simulated
// machine; process hosting and barriers live behind the Transport seam.
#include "nx/machine.hpp"

#include <cstdio>
#include <cstdlib>

namespace nx {

Machine::Machine(const Config& cfg) : cfg_(cfg) {
  if (cfg_.pes < 1 || cfg_.processes_per_pe < 1) {
    std::fprintf(stderr, "nx: invalid machine config (%d pes, %d procs)\n",
                 cfg_.pes, cfg_.processes_per_pe);
    std::abort();
  }
  cfg_.transport = resolve_transport(cfg_.transport);
  if (cfg_.fork_processes && cfg_.transport != TransportKind::ShmRing) {
    std::fprintf(stderr,
                 "nx: fork_processes requires the shmring transport "
                 "(got %s)\n",
                 to_string(cfg_.transport));
    std::abort();
  }
  // The transport must exist before the endpoints: each Endpoint caches
  // the backend pointer and its needs_pump() answer at construction.
  transport_ = make_transport(*this);
  endpoints_.reserve(static_cast<std::size_t>(total_processes()));
  for (int pe = 0; pe < cfg_.pes; ++pe) {
    for (int pr = 0; pr < cfg_.processes_per_pe; ++pr) {
      endpoints_.push_back(std::make_unique<Endpoint>(*this, pe, pr));
    }
  }
}

Machine::~Machine() = default;

Endpoint& Machine::endpoint(int pe, int proc) {
  if (pe < 0 || pe >= cfg_.pes || proc < 0 || proc >= cfg_.processes_per_pe) {
    std::fprintf(stderr, "nx: endpoint(%d,%d) out of range\n", pe, proc);
    std::abort();
  }
  return *endpoints_[static_cast<std::size_t>(flat_index(pe, proc))];
}

const Endpoint& Machine::endpoint(int pe, int proc) const {
  return const_cast<Machine*>(this)->endpoint(pe, proc);
}

void Machine::run(const std::function<void(Endpoint&)>& process_main) {
  transport_->run(*this, process_main);
}

void Machine::os_barrier() { transport_->barrier(*this); }

}  // namespace nx
