// machine.cpp — process hosting and lifecycle for the simulated machine.
#include "nx/machine.hpp"

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <thread>

namespace nx {

Machine::Machine(const Config& cfg) : cfg_(cfg) {
  if (cfg_.pes < 1 || cfg_.processes_per_pe < 1) {
    std::fprintf(stderr, "nx: invalid machine config (%d pes, %d procs)\n",
                 cfg_.pes, cfg_.processes_per_pe);
    std::abort();
  }
  endpoints_.reserve(static_cast<std::size_t>(total_processes()));
  for (int pe = 0; pe < cfg_.pes; ++pe) {
    for (int pr = 0; pr < cfg_.processes_per_pe; ++pr) {
      endpoints_.push_back(std::make_unique<Endpoint>(*this, pe, pr));
    }
  }
}

Machine::~Machine() = default;

Endpoint& Machine::endpoint(int pe, int proc) {
  if (pe < 0 || pe >= cfg_.pes || proc < 0 || proc >= cfg_.processes_per_pe) {
    std::fprintf(stderr, "nx: endpoint(%d,%d) out of range\n", pe, proc);
    std::abort();
  }
  return *endpoints_[static_cast<std::size_t>(flat_index(pe, proc))];
}

const Endpoint& Machine::endpoint(int pe, int proc) const {
  return const_cast<Machine*>(this)->endpoint(pe, proc);
}

void Machine::run(const std::function<void(Endpoint&)>& process_main) {
  const int n = total_processes();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(n));
  std::exception_ptr first_error;
  std::mutex err_mu;
  for (int i = 0; i < n; ++i) {
    Endpoint* ep = endpoints_[static_cast<std::size_t>(i)].get();
    threads.emplace_back([&, ep] {
      try {
        process_main(*ep);
      } catch (...) {
        std::lock_guard<std::mutex> lk(err_mu);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

void Machine::os_barrier() {
  std::unique_lock<std::mutex> lk(bar_mu_);
  const std::uint64_t gen = bar_gen_;
  if (++bar_arrived_ == static_cast<std::size_t>(total_processes())) {
    bar_arrived_ = 0;
    ++bar_gen_;
    bar_cv_.notify_all();
    return;
  }
  bar_cv_.wait(lk, [&] { return bar_gen_ != gen; });
}

}  // namespace nx
