// transport_tcp.cpp — cross-machine backend over a connected full mesh
// of nonblocking TCP streams; shmring's record framing plus header-only
// control records for scratch coherence, the wire barrier, and the
// goodbye handshake. See transport_tcp.hpp for the protocol overview.
#include "transport_tcp.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>
#include <thread>

#include "nx/machine.hpp"

namespace nx {

namespace {

std::size_t align8(std::size_t n) noexcept { return (n + 7) & ~std::size_t{7}; }

/// Copies [offset, offset+n) of the gathered fragment list into dst.
void copy_from_iov(std::uint8_t* dst, const IoVec* iov, std::size_t iovcnt,
                   std::size_t offset, std::size_t n) {
  std::size_t i = 0;
  while (i < iovcnt && offset >= iov[i].len) {
    offset -= iov[i].len;
    ++i;
  }
  while (n != 0 && i < iovcnt) {
    const std::size_t take = std::min(n, iov[i].len - offset);
    if (take != 0)
      std::memcpy(dst, static_cast<const std::uint8_t*>(iov[i].base) + offset,
                  take);
    dst += take;
    n -= take;
    offset = 0;
    ++i;
  }
}

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error("nx: tcp " + what + ": " + std::strerror(errno));
}

sockaddr_in resolve_v4(const std::string& host, std::uint16_t port) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const int rc = ::getaddrinfo(host.c_str(), nullptr, &hints, &res);
  if (rc != 0 || res == nullptr) {
    throw std::runtime_error("nx: tcp cannot resolve host '" + host +
                             "': " + ::gai_strerror(rc));
  }
  sockaddr_in addr{};
  std::memcpy(&addr, res->ai_addr, sizeof addr);
  addr.sin_port = htons(port);
  ::freeaddrinfo(res);
  return addr;
}

int make_listener(const sockaddr_in& addr, int backlog) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) throw_errno("socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    const int e = errno;
    ::close(fd);
    errno = e;
    throw_errno("bind");
  }
  if (::listen(fd, backlog) != 0) {
    const int e = errno;
    ::close(fd);
    errno = e;
    throw_errno("listen");
  }
  return fd;
}

std::uint16_t local_port(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0)
    throw_errno("getsockname");
  return ntohs(addr.sin_port);
}

std::uint64_t mono_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void write_full(int fd, const void* buf, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(buf);
  while (n != 0) {
    const ssize_t w = ::send(fd, p, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      throw_errno("rendezvous write");
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
}

void read_full(int fd, void* buf, std::size_t n) {
  auto* p = static_cast<std::uint8_t*>(buf);
  while (n != 0) {
    const ssize_t r = ::read(fd, p, n);
    if (r < 0) {
      if (errno == EINTR) continue;
      throw_errno("rendezvous read");
    }
    if (r == 0) throw std::runtime_error("nx: tcp rendezvous peer hung up");
    p += r;
    n -= static_cast<std::size_t>(r);
  }
}

/// Blocking connect with bounded retry: the peer's listener may not be
/// bound yet when ranks start independently.
int connect_retry(const sockaddr_in& addr, std::uint32_t timeout_ms) {
  const std::uint64_t deadline = mono_ms() + timeout_ms;
  for (;;) {
    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) throw_errno("socket");
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) == 0)
      return fd;
    const int e = errno;
    ::close(fd);
    const bool transient = e == ECONNREFUSED || e == ETIMEDOUT ||
                           e == ENETUNREACH || e == EHOSTUNREACH ||
                           e == EAGAIN || e == EINTR;
    if (!transient || mono_ms() >= deadline) {
      errno = e;
      throw_errno("rendezvous connect");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

int accept_deadline(int lfd, std::uint64_t deadline) {
  for (;;) {
    const std::uint64_t now = mono_ms();
    if (now >= deadline)
      throw std::runtime_error("nx: tcp rendezvous accept timed out");
    pollfd pfd{lfd, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, static_cast<int>(deadline - now));
    if (pr < 0) {
      if (errno == EINTR) continue;
      throw_errno("rendezvous poll");
    }
    if (pr == 0)
      throw std::runtime_error("nx: tcp rendezvous accept timed out");
    const int fd = ::accept(lfd, nullptr, nullptr);
    if (fd >= 0) return fd;
    if (errno == EINTR || errno == EAGAIN) continue;
    throw_errno("rendezvous accept");
  }
}

}  // namespace

TcpTransport::TcpTransport(int nprocs, const TransportSpec& spec)
    : nprocs_(nprocs), spec_(spec) {
  chunk_max_ = std::max<std::size_t>(8, spec_.chunk_bytes) & ~std::size_t{7};
  local_.reserve(static_cast<std::size_t>(nprocs_));
  for (int i = 0; i < nprocs_; ++i) {
    auto p = std::make_unique<ProcLocal>();
    p->out.resize(static_cast<std::size_t>(nprocs_));
    p->in.resize(static_cast<std::size_t>(nprocs_));
    p->fd.assign(static_cast<std::size_t>(nprocs_), -1);
    local_.push_back(std::move(p));
  }
  if (spec_.rank >= 0) {
    my_rank_ = spec_.rank;
    rendezvous_rank();
  } else {
    connect_mesh_local();
  }
}

TcpTransport::~TcpTransport() {
  for (auto& p : local_) {
    for (int& fd : p->fd)
      if (fd >= 0) {
        ::close(fd);
        fd = -1;
      }
    if (p->epfd >= 0) {
      ::close(p->epfd);
      p->epfd = -1;
    }
  }
  for (int& fd : err_pipe_)
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
}

void TcpTransport::tune_socket(int fd) const {
  const int fl = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, fl | O_NONBLOCK);
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  if (spec_.sndbuf_bytes > 0)
    ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &spec_.sndbuf_bytes,
                 sizeof spec_.sndbuf_bytes);
}

void TcpTransport::connect_mesh_local() {
  // All ranks live in this OS process (threads now, or forked children
  // later): one ephemeral-capable listener and a sequential
  // connect/accept per pair gives deterministic correspondence over
  // loopback without a hello.
  const sockaddr_in bind_addr = resolve_v4(spec_.host, spec_.base_port);
  const int lfd = make_listener(bind_addr, nprocs_ * nprocs_ + 8);
  sockaddr_in dial = bind_addr;
  dial.sin_port = htons(local_port(lfd));
  for (int i = 0; i < nprocs_; ++i) {
    for (int j = i + 1; j < nprocs_; ++j) {
      const int c = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
      if (c < 0) throw_errno("socket");
      if (::connect(c, reinterpret_cast<const sockaddr*>(&dial),
                    sizeof dial) != 0) {
        const int e = errno;
        ::close(c);
        ::close(lfd);
        errno = e;
        throw_errno("loopback connect");
      }
      const int a = accept_deadline(lfd, mono_ms() + spec_.connect_timeout_ms);
      tune_socket(c);
      tune_socket(a);
      // The higher rank holds the connecting end (the same orientation
      // rank mode produces).
      pl(j).fd[static_cast<std::size_t>(i)] = c;
      pl(i).fd[static_cast<std::size_t>(j)] = a;
      pl(j).in[static_cast<std::size_t>(i)].open = true;
      pl(i).in[static_cast<std::size_t>(j)].open = true;
    }
  }
  ::close(lfd);
}

void TcpTransport::rendezvous_rank() {
  const int me = my_rank_;
  ProcLocal& p = pl(me);
  int lfd = spec_.listen_fd;
  if (lfd < 0 && me < nprocs_ - 1) {
    // Every rank with higher-ranked peers accepts from them on its own
    // well-known port.
    lfd = make_listener(resolve_v4(spec_.host, static_cast<std::uint16_t>(
                                                    spec_.base_port + me)),
                        nprocs_ + 8);
  }
  const std::uint64_t deadline = mono_ms() + spec_.connect_timeout_ms;
  // Connect to every lower rank first (their listeners queue the SYN in
  // the backlog even before they accept, so the fixed order can't
  // deadlock), identifying ourselves with a 4-byte hello.
  for (int i = 0; i < me; ++i) {
    const int fd = connect_retry(
        resolve_v4(spec_.host,
                   static_cast<std::uint16_t>(spec_.base_port + i)),
        spec_.connect_timeout_ms);
    const std::int32_t hello = me;
    write_full(fd, &hello, sizeof hello);
    tune_socket(fd);
    p.fd[static_cast<std::size_t>(i)] = fd;
    p.in[static_cast<std::size_t>(i)].open = true;
  }
  // Accept every higher rank; the hello says who arrived.
  for (int k = me + 1; k < nprocs_; ++k) {
    const int fd = accept_deadline(lfd, deadline);
    std::int32_t hello = -1;
    read_full(fd, &hello, sizeof hello);
    if (hello <= me || hello >= nprocs_ ||
        p.fd[static_cast<std::size_t>(hello)] != -1) {
      ::close(fd);
      if (lfd >= 0) ::close(lfd);
      throw std::runtime_error("nx: tcp rendezvous got bad hello rank " +
                               std::to_string(hello));
    }
    tune_socket(fd);
    p.fd[static_cast<std::size_t>(hello)] = fd;
    p.in[static_cast<std::size_t>(hello)].open = true;
  }
  if (lfd >= 0) ::close(lfd);
}

void TcpTransport::ensure_epoll_locked(int flat) {
  ProcLocal& p = pl(flat);
  if (p.epfd >= 0) return;
  p.epfd = ::epoll_create1(EPOLL_CLOEXEC);
  if (p.epfd < 0) throw_errno("epoll_create1");
  for (int peer = 0; peer < nprocs_; ++peer) {
    const int fd = p.fd[static_cast<std::size_t>(peer)];
    if (fd < 0 || !p.in[static_cast<std::size_t>(peer)].open) continue;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u32 = static_cast<std::uint32_t>(peer);
    if (::epoll_ctl(p.epfd, EPOLL_CTL_ADD, fd, &ev) != 0)
      throw_errno("epoll_ctl add");
  }
}

std::vector<std::uint8_t> TcpTransport::serialize(const RecHdr& rh,
                                                  const IoVec* iov,
                                                  std::size_t iovcnt,
                                                  std::size_t offset,
                                                  std::size_t payload) {
  std::vector<std::uint8_t> rec(rh.size, 0);
  std::memcpy(rec.data(), &rh, sizeof rh);
  if (iovcnt != 0)
    copy_from_iov(rec.data() + sizeof(RecHdr), iov, iovcnt, offset, payload);
  return rec;
}

void TcpTransport::ship_record(int src, int dst,
                               std::vector<std::uint8_t> rec) {
  ProcLocal& p = pl(src);
  if (dst == src) {
    std::lock_guard<std::mutex> lk(p.self_mu);
    p.self_q.push_back(std::move(rec));
    p.self_records.fetch_add(1, std::memory_order_release);
    return;
  }
  OutQ& oq = p.out[static_cast<std::size_t>(dst)];
  const int fd = p.fd[static_cast<std::size_t>(dst)];
  if (fd < 0 || oq.dead) return;  // stream gone: the reader side surfaced it
  if (oq.q.empty()) {
    std::size_t off = 0;
    while (off < rec.size()) {
      const ssize_t w =
          ::send(fd, rec.data() + off, rec.size() - off, MSG_NOSIGNAL);
      if (w > 0) {
        off += static_cast<std::size_t>(w);
        continue;
      }
      if (w < 0 && errno == EINTR) continue;
      if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      // Write failure (EPIPE/RESET). The reader side owns deciding
      // clean-vs-unclean when it sees EOF; here just stop writing.
      oq.dead = true;
      return;
    }
    if (off == rec.size()) return;
    oq.front_off = off;
  }
  oq.q.push_back(std::move(rec));
  p.pending_records.fetch_add(1, std::memory_order_release);
}

bool TcpTransport::flush_pending_locked(int src, int dst) {
  ProcLocal& p = pl(src);
  OutQ& oq = p.out[static_cast<std::size_t>(dst)];
  if (oq.q.empty()) return true;
  const int fd = p.fd[static_cast<std::size_t>(dst)];
  const auto discard = [&] {
    p.pending_records.fetch_sub(oq.q.size(), std::memory_order_release);
    oq.q.clear();
    oq.front_off = 0;
    oq.dead = true;
  };
  if (fd < 0 || oq.dead) {
    discard();
    return false;
  }
  while (!oq.q.empty()) {
    const auto& front = oq.q.front();
    while (oq.front_off < front.size()) {
      const ssize_t w = ::send(fd, front.data() + oq.front_off,
                               front.size() - oq.front_off, MSG_NOSIGNAL);
      if (w > 0) {
        oq.front_off += static_cast<std::size_t>(w);
        continue;
      }
      if (w < 0 && errno == EINTR) continue;
      if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
      discard();
      return false;
    }
    oq.q.pop_front();
    oq.front_off = 0;
    p.pending_records.fetch_sub(1, std::memory_order_release);
  }
  return true;
}

void TcpTransport::send_control(int src, int dst, std::uint8_t type,
                                std::int32_t tag, std::uint64_t len,
                                std::int32_t origin) {
  RecHdr rh{};
  rh.size = sizeof(RecHdr);
  rh.type = type;
  rh.src_pe = origin;
  rh.tag = tag;
  rh.len = len;
  ProcLocal& p = pl(src);
  std::lock_guard<std::mutex> lk(p.send_mu);
  flush_pending_locked(src, dst);
  ship_record(src, dst, serialize(rh, nullptr, 0, 0, 0));
}

bool TcpTransport::submit(Machine& m, const MsgHeader& h, int dst_pe,
                          int dst_proc, const IoVec* iov, std::size_t iovcnt,
                          std::atomic<bool>* sender_flag) {
  (void)sender_flag;  // always consumed: this backend never rendezvouses
  const int src = m.flat_index(h.src_pe, h.src_proc);
  const int dst = m.flat_index(dst_pe, dst_proc);
  ProcLocal& p = pl(src);
  std::lock_guard<std::mutex> lk(p.send_mu);
  // FIFO: anything queued for this destination must hit the stream
  // before the new message.
  flush_pending_locked(src, dst);
  const auto emit = [&](std::uint8_t type, std::uint8_t last,
                        std::size_t offset, std::size_t payload) {
    RecHdr rh{};
    rh.size = static_cast<std::uint32_t>(align8(sizeof(RecHdr) + payload));
    rh.type = type;
    rh.last = last;
    rh.src_pe = h.src_pe;
    rh.src_proc = h.src_proc;
    rh.tag = h.tag;
    rh.channel = h.channel;
    rh.len = type == Rec::kChunkMore ? payload : h.len;
    ship_record(src, dst, serialize(rh, iov, iovcnt, offset, payload));
  };
  if (h.len <= chunk_max_) {
    emit(Rec::kMsg, 0, 0, h.len);
  } else {
    emit(Rec::kChunkStart, 0, 0, chunk_max_);
    std::size_t off = chunk_max_;
    while (off < h.len) {
      const std::size_t pb = std::min(chunk_max_, h.len - off);
      emit(Rec::kChunkMore, off + pb == h.len ? 1 : 0, off, pb);
      off += pb;
    }
  }
  return true;
}

void TcpTransport::inject_record(Endpoint& ep, const RecHdr& rh,
                                 const std::uint8_t* payload) {
  MsgHeader h;
  h.src_pe = rh.src_pe;
  h.src_proc = rh.src_proc;
  h.tag = rh.tag;
  h.channel = rh.channel;
  h.len = static_cast<std::size_t>(rh.len);
  IoVec one{payload, h.len};
  // Queue-only injection, force-eager: the bytes are already off the
  // wire, so the rendezvous branch must be unreachable (DESIGN.md §12).
  inject(ep, h, &one, 1, nullptr, /*force_eager=*/true);
}

void TcpTransport::apply_scratch_locked(int flat, const RecHdr& rh) {
  const std::size_t off = static_cast<std::size_t>(rh.tag);
  if (off + 4 > kSharedScratchBytes || (off & 3) != 0) {
    std::fprintf(stderr, "nx: tcp corrupt scratch record offset %zu\n", off);
    std::abort();
  }
  std::atomic_ref<std::uint32_t>(
      *reinterpret_cast<std::uint32_t*>(scratch_.bytes + off))
      .fetch_add(static_cast<std::uint32_t>(rh.len),
                 std::memory_order_acq_rel);
  // Rank 0 is the scratch router: every delta it hears about is
  // rebroadcast to everyone except its origin, so all mirrors converge.
  if (flat == 0) {
    for (int d = 1; d < nprocs_; ++d)
      if (d != rh.src_pe)
        send_control(0, d, Rec::kScratch, rh.tag, rh.len, rh.src_pe);
  }
}

std::uint32_t TcpTransport::scratch_add(std::size_t off, std::uint32_t delta) {
  if (my_rank_ < 0) return Transport::scratch_add(off, delta);  // shared mem
  const std::uint32_t v =
      std::atomic_ref<std::uint32_t>(
          *reinterpret_cast<std::uint32_t*>(scratch_.bytes + off))
          .fetch_add(delta, std::memory_order_acq_rel) +
      delta;
  if (my_rank_ == 0) {
    for (int d = 1; d < nprocs_; ++d)
      send_control(0, d, Rec::kScratch, static_cast<std::int32_t>(off), delta,
                   0);
  } else {
    send_control(my_rank_, 0, Rec::kScratch, static_cast<std::int32_t>(off),
                 delta, my_rank_);
  }
  return v;
}

void TcpTransport::handle_record(Endpoint& ep, int flat, int peer,
                                 const RecHdr& rh,
                                 const std::uint8_t* payload) {
  PeerIn& in = pl(flat).in[static_cast<std::size_t>(peer)];
  // Any live traffic clears a pending goodbye: the peer came back for
  // another run.
  if (rh.type != Rec::kGoodbye) in.bye = false;
  switch (rh.type) {
    case Rec::kMsg:
      inject_record(ep, rh, payload);
      break;
    case Rec::kChunkStart:
      in.chunk_hdr = rh;
      in.chunk_active = true;
      in.chunk.assign(payload, payload + chunk_max_);
      break;
    case Rec::kChunkMore: {
      const std::size_t pb = static_cast<std::size_t>(rh.len);
      in.chunk.insert(in.chunk.end(), payload, payload + pb);
      if (rh.last != 0) {
        inject_record(ep, in.chunk_hdr, in.chunk.data());
        in.chunk_active = false;
        in.chunk.clear();
      }
      break;
    }
    case Rec::kScratch:
      apply_scratch_locked(flat, rh);
      break;
    case Rec::kBarrierArrive:
      pl(flat).bar_arrived[rh.len & 1].fetch_add(1, std::memory_order_release);
      break;
    case Rec::kBarrierRelease: {
      auto& seen = pl(flat).bar_release_seen;
      if (rh.len > seen.load(std::memory_order_relaxed))
        seen.store(rh.len, std::memory_order_release);
      break;
    }
    case Rec::kGoodbye:
      in.bye = true;
      break;
    default:
      std::fprintf(stderr, "nx: tcp corrupt record type %u from rank %d\n",
                   static_cast<unsigned>(rh.type), peer);
      std::abort();
  }
}

void TcpTransport::decode_locked(Endpoint& ep, int flat, int peer) {
  PeerIn& in = pl(flat).in[static_cast<std::size_t>(peer)];
  const std::size_t max_rec = align8(sizeof(RecHdr) + chunk_max_);
  for (;;) {
    const std::size_t avail = in.buf.size() - in.off;
    if (avail < sizeof(RecHdr)) break;
    RecHdr rh;
    std::memcpy(&rh, in.buf.data() + in.off, sizeof rh);
    if (rh.size < sizeof(RecHdr) || rh.size > max_rec || (rh.size & 7) != 0) {
      std::fprintf(stderr, "nx: tcp corrupt record size %u from rank %d\n",
                   rh.size, peer);
      std::abort();
    }
    if (avail < rh.size) break;  // short read: wait for the rest
    handle_record(ep, flat, peer, rh, in.buf.data() + in.off + sizeof(RecHdr));
    in.off += rh.size;
  }
  if (in.off == in.buf.size()) {
    in.buf.clear();
    in.off = 0;
  } else if (in.off > (std::size_t{1} << 16)) {
    in.buf.erase(in.buf.begin(),
                 in.buf.begin() + static_cast<std::ptrdiff_t>(in.off));
    in.off = 0;
  }
}

void TcpTransport::close_peer_locked(Endpoint& ep, int flat, int peer,
                                     bool clean) {
  ProcLocal& p = pl(flat);
  PeerIn& in = p.in[static_cast<std::size_t>(peer)];
  if (!in.open) return;
  in.open = false;
  int& fd = p.fd[static_cast<std::size_t>(peer)];
  if (p.epfd >= 0) ::epoll_ctl(p.epfd, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  fd = -1;
  {
    // Discard the outbound backlog for the dead stream so exit-time
    // draining can never wedge on bytes nobody will read.
    std::lock_guard<std::mutex> lk(p.send_mu);
    OutQ& oq = p.out[static_cast<std::size_t>(peer)];
    p.pending_records.fetch_sub(oq.q.size(), std::memory_order_release);
    oq.q.clear();
    oq.front_off = 0;
    oq.dead = true;
  }
  if (!clean && !in.gone) {
    in.gone = true;
    gone_count_.fetch_add(1, std::memory_order_acq_rel);
    const int ppe = ep.machine().processes_per_pe();
    mark_peer_gone(ep, peer / ppe, peer % ppe);
  }
}

void TcpTransport::pump(Endpoint& ep) {
  Machine& m = ep.machine();
  const int flat = m.flat_index(ep.pe(), ep.proc());
  ProcLocal& p = pl(flat);

  // Outbound first: receivers elsewhere may be blocked on records still
  // sitting in this process's pending queues.
  if (p.pending_records.load(std::memory_order_acquire) != 0) {
    std::lock_guard<std::mutex> lk(p.send_mu);
    for (int dst = 0; dst < nprocs_; ++dst) flush_pending_locked(flat, dst);
  }

  // Inbound: single consumer per destination. try_lock — if another of
  // this process's threads is already draining, the streams are covered.
  if (!p.recv_mu.try_lock()) return;
  std::lock_guard<std::mutex> lk(p.recv_mu, std::adopt_lock);

  // Loopback records (src == dst) go through the same decoder path.
  if (p.self_records.load(std::memory_order_acquire) != 0) {
    std::deque<std::vector<std::uint8_t>> batch;
    {
      std::lock_guard<std::mutex> sl(p.self_mu);
      batch.swap(p.self_q);
      p.self_records.store(0, std::memory_order_release);
    }
    for (const auto& rec : batch) {
      RecHdr rh;
      std::memcpy(&rh, rec.data(), sizeof rh);
      handle_record(ep, flat, flat, rh, rec.data() + sizeof(RecHdr));
    }
  }

  ensure_epoll_locked(flat);
  epoll_event evs[16];
  for (;;) {
    const int nev = ::epoll_wait(p.epfd, evs, 16, 0);
    if (nev <= 0) break;
    for (int e = 0; e < nev; ++e) {
      const int peer = static_cast<int>(evs[e].data.u32);
      PeerIn& in = p.in[static_cast<std::size_t>(peer)];
      const int fd = p.fd[static_cast<std::size_t>(peer)];
      if (fd < 0 || !in.open) continue;
      bool eof = false;
      for (;;) {
        std::uint8_t buf[65536];
        const ssize_t r = ::read(fd, buf, sizeof buf);
        if (r > 0) {
          in.buf.insert(in.buf.end(), buf, buf + r);
          if (static_cast<std::size_t>(r) < sizeof buf) break;
          continue;
        }
        if (r == 0) {
          eof = true;
          break;
        }
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        eof = true;  // RESET and friends: same as EOF for liveness
        break;
      }
      decode_locked(ep, flat, peer);
      if (eof) close_peer_locked(ep, flat, peer, in.bye);
    }
    if (nev < 16) break;
  }
}

void TcpTransport::wait_inbound(Endpoint& ep, std::uint64_t max_ns) {
  Machine& m = ep.machine();
  const int flat = m.flat_index(ep.pe(), ep.proc());
  ProcLocal& p = pl(flat);
  // Never sleep on undelivered outbound (or undrained loopback) — peers
  // can't wake us for records only we can flush.
  if (p.pending_records.load(std::memory_order_acquire) != 0 ||
      p.self_records.load(std::memory_order_acquire) != 0) {
    pump(ep);
    std::this_thread::yield();
    return;
  }
  if (p.epfd < 0) {
    if (p.recv_mu.try_lock()) {
      std::lock_guard<std::mutex> lk(p.recv_mu, std::adopt_lock);
      ensure_epoll_locked(flat);
    } else {
      std::this_thread::yield();
      return;
    }
  }
  // The epoll fd itself is pollable: level-triggered readiness means a
  // ppoll on it returns immediately when inbound bytes already wait,
  // and gives nanosecond-bounded sleeps otherwise (≤ 10 ms so control
  // traffic and termination polling stay live).
  const std::uint64_t ns = std::min<std::uint64_t>(max_ns, 10'000'000);
  timespec ts;
  ts.tv_sec = static_cast<time_t>(ns / 1000000000ull);
  ts.tv_nsec = static_cast<long>(ns % 1000000000ull);
  pollfd pfd{p.epfd, POLLIN, 0};
  ::ppoll(&pfd, 1, &ts, nullptr);
}

void TcpTransport::drain_outbound(Endpoint& ep) {
  Machine& m = ep.machine();
  const int flat = m.flat_index(ep.pe(), ep.proc());
  ProcLocal& p = pl(flat);
  while (p.pending_records.load(std::memory_order_acquire) != 0 ||
         p.self_records.load(std::memory_order_acquire) != 0) {
    pump(ep);
    std::this_thread::yield();
  }
}

void TcpTransport::send_goodbyes(int flat) {
  for (int peer = 0; peer < nprocs_; ++peer) {
    if (peer == flat) continue;
    if (pl(flat).fd[static_cast<std::size_t>(peer)] < 0) continue;
    send_control(flat, peer, Rec::kGoodbye, 0, 0, flat);
  }
}

void TcpTransport::barrier(Machine& m) {
  if (my_rank_ >= 0) {
    barrier_wire(m);
    return;
  }
  // Thread mode: all ranks share this object — the classic reusable
  // condvar generation barrier.
  std::unique_lock<std::mutex> lk(bar_mu_);
  const std::uint64_t gen = bar_gen_;
  if (++bar_arrived_ == static_cast<std::size_t>(nprocs_)) {
    bar_arrived_ = 0;
    ++bar_gen_;
    bar_cv_.notify_all();
    return;
  }
  bar_cv_.wait(lk, [&] { return bar_gen_ != gen; });
}

void TcpTransport::barrier_wire(Machine& m) {
  // Centralized at rank 0, generation-stamped. Per-pair FIFO makes the
  // visibility guarantee: arrive follows the sender's earlier scratch
  // deltas, release follows every rebroadcast rank 0 issued before it —
  // so all pre-barrier deltas are applied everywhere on release.
  const int me = my_rank_;
  const int ppe = m.processes_per_pe();
  Endpoint& ep = m.endpoint(me / ppe, me % ppe);
  ProcLocal& p = pl(me);
  const std::uint64_t gen = ++p.bar_gen;
  if (me == 0) {
    auto& arrived = p.bar_arrived[gen & 1];
    const std::uint32_t need = static_cast<std::uint32_t>(nprocs_ - 1);
    // A lost peer can never arrive: counting it keeps loss a visible
    // degradation instead of a hang.
    while (arrived.load(std::memory_order_acquire) +
               static_cast<std::uint32_t>(
                   gone_count_.load(std::memory_order_acquire)) <
           need) {
      pump(ep);
      wait_inbound(ep, 1'000'000);
    }
    arrived.store(0, std::memory_order_relaxed);
    for (int d = 1; d < nprocs_; ++d)
      send_control(0, d, Rec::kBarrierRelease, 0, gen, 0);
  } else {
    send_control(me, 0, Rec::kBarrierArrive, 0, gen, me);
    while (p.bar_release_seen.load(std::memory_order_acquire) < gen) {
      if (!p.in[0].open) break;  // rank 0 is gone: nothing will release us
      pump(ep);
      wait_inbound(ep, 1'000'000);
    }
  }
}

void TcpTransport::run(Machine& m,
                       const std::function<void(Endpoint&)>& process_main) {
  auto wrapped = [&](Endpoint& ep) {
    process_main(ep);
    // A sender whose streams backed up flushes its heap-queued records
    // before going quiet; single-hosted-rank modes then wave goodbye so
    // the eventual EOF reads as clean shutdown, not peer loss.
    drain_outbound(ep);
    if (my_rank_ >= 0)
      send_goodbyes(ep.machine().flat_index(ep.pe(), ep.proc()));
  };
  if (spec_.rank >= 0) {
    const int ppe = m.processes_per_pe();
    wrapped(m.endpoint(my_rank_ / ppe, my_rank_ % ppe));
    return;
  }
  if (!spec_.fork) {
    run_threads(m, wrapped);
    return;
  }
  run_forked(m, wrapped);
}

void TcpTransport::run_forked(
    Machine& m, const std::function<void(Endpoint&)>& process_main) {
  if (ran_) {
    throw std::runtime_error(
        "nx: tcp fork transport is single-shot per Machine — a child's "
        "stream decoder state dies with it; build a fresh Machine");
  }
  ran_ = true;
  if (::pipe(err_pipe_) != 0) {
    std::perror("nx: pipe");
    std::abort();
  }
  std::fflush(nullptr);  // don't duplicate buffered output into children
  const int n = m.total_processes();
  const int ppe = m.processes_per_pe();
  std::vector<pid_t> pids;
  pids.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      std::perror("nx: fork");
      std::abort();
    }
    if (pid == 0) {
      ::close(err_pipe_[0]);
      err_pipe_[0] = -1;
      my_rank_ = i;
      // Keep only this rank's end of the mesh: every other descriptor
      // must close here so a dead sibling is visible as EOF.
      for (int r = 0; r < n; ++r) {
        if (r == i) continue;
        for (int& fd : pl(r).fd) {
          if (fd >= 0) ::close(fd);
          fd = -1;
        }
      }
      if (pl(i).epfd >= 0) {  // stale across fork: rebuild lazily
        ::close(pl(i).epfd);
        pl(i).epfd = -1;
      }
      int rc = 0;
      try {
        process_main(m.endpoint(i / ppe, i % ppe));
      } catch (const std::exception& e) {
        const char* w = e.what();
        (void)!::write(err_pipe_[1], w, std::strlen(w));
        rc = 1;
      } catch (...) {
        const char msg[] = "unknown exception in nx process";
        (void)!::write(err_pipe_[1], msg, sizeof msg - 1);
        rc = 1;
      }
      std::fflush(nullptr);
      ::_exit(rc);  // never unwind into the parent's state
    }
    pids.push_back(pid);
  }
  // Parent closes the whole mesh: it never pumps, and a child's death
  // must not be masked by the parent's still-open descriptor.
  for (int r = 0; r < n; ++r)
    for (int& fd : pl(r).fd) {
      if (fd >= 0) ::close(fd);
      fd = -1;
    }
  ::close(err_pipe_[1]);
  err_pipe_[1] = -1;

  bool failed = false;
  for (pid_t pp : pids) {
    int wst = 0;
    if (::waitpid(pp, &wst, 0) < 0)
      failed = true;
    else if (!WIFEXITED(wst) || WEXITSTATUS(wst) != 0)
      failed = true;
  }
  std::string child_err;
  char buf[256];
  const ssize_t got = ::read(err_pipe_[0], buf, sizeof buf - 1);
  if (got > 0) child_err.assign(buf, static_cast<std::size_t>(got));
  ::close(err_pipe_[0]);
  err_pipe_[0] = -1;
  if (failed) {
    std::string msg = "nx: tcp child process failed";
    if (!child_err.empty()) msg += ": " + child_err;
    throw std::runtime_error(msg);
  }
}

}  // namespace nx
