// transport_shmring.hpp — cross-process backend: SPSC shared-memory
// byte rings with futex doorbells and a sense-reversing shm barrier.
// INTERNAL to src/nx/ (chant-lint transport-internals): everything else
// programs against nx/transport.hpp.
//
// Topology: one shared-memory segment (MAP_SHARED | MAP_ANONYMOUS,
// mapped once at machine construction, inherited by threads and forked
// children alike) holding N*N single-producer/single-consumer byte
// rings — one per ordered (src, dst) process pair — plus per-process
// doorbells, the barrier block, an error slot, and the machine's shared
// scratch. Single-producer holds because each source process serializes
// its submitters through a process-local send lock; single-consumer
// holds because each destination serializes its pumpers through a
// process-local receive lock.
//
// Wire format: 8-byte-aligned records {RecHdr, payload}. A record never
// wraps — when the contiguous tail region is too small the producer
// emits a Pad record covering it and restarts at offset zero. Messages
// larger than one chunk travel as ChunkStart + ChunkMore records
// (reassembled in a receiver-local staging buffer; SPSC FIFO guarantees
// the chunks arrive contiguously in record order). When a ring is full
// the producer serializes the remaining records into a process-local
// pending queue, flushed by every later submit/pump from that process —
// so a submit never blocks and always *consumes* the payload
// (locally-blocking eager semantics; the in-proc rendezvous branch is
// unreachable on this backend, which is exactly what force-eager
// injection expresses on the receiving side).
//
// Delivery: pump() drains this process's inbound rings, injecting each
// message into the matching engine via Transport::inject — matching,
// per-source FIFO clamping, FaultyNet, and NetModel deliver-at all run
// at injection time, above the seam. A message matched by a posted
// receive is copied once, straight from ring (or staging) memory into
// the user's buffer. Waiter fires are queued, never flushed (pump may
// run under the scheduler's wait_mu_; see DESIGN.md §12).
//
// Process hosting: threads by default (any suite can run on this
// backend unchanged); with Config::fork_processes each simulated
// process becomes a forked OS process. Child failures are recorded in
// the shm error slot and re-raised in the parent after waitpid.
#pragma once

#include <deque>
#include <mutex>
#include <vector>

#include "nx/transport.hpp"

namespace nx {

class ShmRingTransport final : public Transport {
 public:
  ShmRingTransport(int nprocs, std::size_t ring_bytes, bool fork_processes);
  ~ShmRingTransport() override;

  TransportKind kind() const noexcept override {
    return TransportKind::ShmRing;
  }

  bool submit(Machine& m, const MsgHeader& h, int dst_pe, int dst_proc,
              const IoVec* iov, std::size_t iovcnt,
              std::atomic<bool>* sender_flag) override;

  void pump(Endpoint& ep) override;
  bool needs_pump() const noexcept override { return true; }

  void run(Machine& m,
           const std::function<void(Endpoint&)>& process_main) override;

  void barrier(Machine& m) override;

  void* shared_scratch() noexcept override;

  void wait_inbound(Endpoint& ep, std::uint64_t max_ns) override;

  /// Data bytes per direction ring after power-of-two rounding
  /// (introspection for tests).
  std::size_t ring_capacity() const noexcept { return cap_; }
  /// Largest payload slice carried by one record (tests force tiny
  /// rings to exercise fragmentation and wraparound).
  std::size_t chunk_payload_max() const noexcept { return chunk_max_; }

 private:
  /// Record header, 8-byte aligned and contiguous in the ring. Pad
  /// records may be as short as 8 bytes — only {size, type} are read.
  struct RecHdr {
    std::uint32_t size;      ///< whole record bytes (8-aligned)
    std::uint8_t type;       ///< Rec::*
    std::uint8_t last;       ///< ChunkMore: final chunk of its message
    std::uint16_t reserved;
    std::int32_t src_pe;
    std::int32_t src_proc;
    std::int32_t tag;
    std::int32_t channel;
    std::uint64_t len;  ///< Msg/ChunkStart: total message bytes;
                        ///< ChunkMore: this chunk's payload bytes
  };
  static_assert(sizeof(RecHdr) == 32, "wire layout");

  struct Rec {
    static constexpr std::uint8_t kMsg = 1;
    static constexpr std::uint8_t kPad = 2;
    static constexpr std::uint8_t kChunkStart = 3;
    static constexpr std::uint8_t kChunkMore = 4;
  };

  /// Ring control block: head and tail on separate cache lines, data[]
  /// follows at ctl_stride() in the segment.
  struct RingCtl {
    alignas(64) std::atomic<std::uint64_t> head;  ///< consumer position
    alignas(64) std::atomic<std::uint64_t> tail;  ///< producer position
  };

  /// Per-process doorbell: seq bumps (with a futex wake when anyone
  /// waits) each time a producer publishes into any of the process's
  /// inbound rings.
  struct Door {
    alignas(64) std::atomic<std::uint32_t> seq;
    std::atomic<std::uint32_t> waiting;
  };

  struct SegHdr {
    std::uint32_t magic;
    std::int32_t nprocs;
    std::uint64_t ring_bytes;
    // Sense-reversing barrier: works identically for threads and forked
    // processes (futex on shared memory).
    alignas(64) std::atomic<std::uint32_t> bar_arrived;
    std::atomic<std::uint32_t> bar_sense;
    // First-failure slot for forked children.
    alignas(64) std::atomic<std::int32_t> err_raised;
    char err_msg[200];
    alignas(64) unsigned char scratch[kSharedScratchBytes];
  };

  /// Receiver-local reassembly state for one inbound ring.
  struct Staging {
    std::vector<std::uint8_t> buf;
    RecHdr hdr{};
    bool active = false;
  };

  /// Process-local (never shared across the machine's processes; in
  /// fork mode each child only ever touches its own slot).
  struct ProcLocal {
    std::mutex send_mu;  ///< serializes this source's producers
    std::vector<std::deque<std::vector<std::uint8_t>>> pending;  ///< [dst]
    std::atomic<std::size_t> pending_records{0};
    std::mutex recv_mu;  ///< serializes this destination's pumpers
    std::vector<Staging> staging;  ///< [src]
  };

  RingCtl* ctl(int src, int dst) noexcept;
  std::uint8_t* data(int src, int dst) noexcept;
  Door* door(int dst) noexcept;
  SegHdr* hdr() noexcept;

  /// Reserves `need` contiguous bytes in ring (src, dst), emitting a Pad
  /// record over a too-small tail region. Caller holds send_mu[src].
  /// Returns null when the ring cannot take the record right now.
  std::uint8_t* reserve(int src, int dst, std::uint32_t need);
  void publish(int src, int dst, std::uint32_t bytes);
  void ring_doorbell(int dst);

  /// Writes one fully serialized record; false if the ring is full.
  bool write_record(int src, int dst, const std::uint8_t* rec,
                    std::uint32_t size);
  /// Moves queued records into the ring while space allows; returns true
  /// if anything was published. Caller holds send_mu[src].
  bool flush_pending_locked(int src, int dst);

  /// Appends one record slicing [offset, offset+payload) of the gathered
  /// message — directly into the ring when possible, else onto the
  /// pending queue. Caller holds send_mu[src].
  void emit_record(int src, int dst, std::uint8_t type, std::uint8_t last,
                   const MsgHeader& h, const IoVec* iov, std::size_t iovcnt,
                   std::size_t offset, std::size_t payload, bool* published);

  void inject_record(Endpoint& ep, int src, const RecHdr& rh,
                     const std::uint8_t* payload);

  bool inbound_nonempty(int flat) noexcept;
  /// Runs after process_main returns: keeps pumping until this
  /// process's pending queues are empty, so records a backed-up ring
  /// forced onto the heap still reach their receivers after the sender
  /// goes quiet. Pumping (not just flushing) also keeps draining our
  /// inbound rings, which is what breaks the two-full-rings deadlock
  /// between mutually exiting processes.
  void drain_outbound(Endpoint& ep);
  void record_child_error(const char* what) noexcept;
  void run_forked(Machine& m,
                  const std::function<void(Endpoint&)>& process_main);

  int nprocs_ = 0;
  std::size_t cap_ = 0;        ///< data bytes per ring (power of two)
  std::size_t chunk_max_ = 0;  ///< payload bytes per chunk record
  bool fork_ = false;

  void* seg_ = nullptr;  ///< MAP_SHARED segment
  std::size_t seg_bytes_ = 0;
  std::size_t doors_off_ = 0;
  std::size_t rings_off_ = 0;
  std::size_t ring_stride_ = 0;  ///< control block + data, 64-aligned

  std::vector<std::unique_ptr<ProcLocal>> local_;
};

}  // namespace nx
