// group.cpp — binomial-tree collectives over the point-to-point layer.
#include "nx/group.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

namespace nx {

namespace {
inline void default_wait() {
#if defined(__x86_64__)
  __builtin_ia32_pause();
#endif
  std::this_thread::yield();
}

/// Group traffic rides in the channel field with bit 29 set, a space the
/// Chant tag codec never produces (its header-field lids stay below
/// 2^13), so collectives cannot match application receives.
constexpr int kGroupChannelFlag = 0x20000000;
}  // namespace

Group::Group(Endpoint& ep, std::vector<NodeAddr> members, int group_id)
    : ep_(ep), members_(std::move(members)), group_id_(group_id) {
  if (group_id_ <= 0 || group_id_ >= kGroupChannelFlag) {
    std::fprintf(stderr, "nx: group id %d out of range\n", group_id_);
    std::abort();
  }
  if (members_.empty() || members_.size() > 256) {
    std::fprintf(stderr, "nx: group size %zu unsupported\n", members_.size());
    std::abort();
  }
  for (std::size_t r = 0; r < members_.size(); ++r) {
    if (members_[r].pe == ep_.pe() && members_[r].proc == ep_.proc()) {
      rank_ = static_cast<int>(r);
    }
  }
  if (rank_ < 0) {
    std::fprintf(stderr, "nx: endpoint (%d,%d) is not a member of group %d\n",
                 ep_.pe(), ep_.proc(), group_id_);
    std::abort();
  }
}

bool Group::contains(int pe, int proc) const noexcept {
  return std::find(members_.begin(), members_.end(), NodeAddr{pe, proc}) !=
         members_.end();
}

void Group::send_to(int rank, int tag, const void* buf, std::size_t len) {
  const NodeAddr& m = members_[static_cast<std::size_t>(rank)];
  ep_.csend(m.pe, m.proc, tag, buf, len, kGroupChannelFlag | group_id_);
}

void Group::wait(Handle h, MsgHeader* out) {
  while (!ep_.msgtest(h, out)) {
    if (waiter_) {
      waiter_();
    } else {
      default_wait();
    }
  }
}

void Group::recv_from(int rank, int tag, void* buf, std::size_t cap) {
  const NodeAddr& m = members_[static_cast<std::size_t>(rank)];
  Handle h = ep_.irecv(m.pe, m.proc, tag, kTagExact, buf, cap,
                       kGroupChannelFlag | group_id_, ~0);
  MsgHeader hdr;
  wait(h, &hdr);
  if (hdr.truncated) {
    std::fprintf(stderr, "nx: group %d message truncated (%zu > %zu)\n",
                 group_id_, hdr.len, cap);
    std::abort();
  }
}

void Group::barrier() {
  seq_ = (seq_ + 1) & 0x7FFF;
  const int n = size();
  if (n == 1) return;
  // Dissemination barrier: log2(n) rounds of shifted token exchange.
  int round = 0;
  for (int k = 1; k < n; k <<= 1, ++round) {
    const int to = (rank_ + k) % n;
    const int from = (rank_ - k + n) % n;
    const char token = 1;
    send_to(to, tag_for(kBarrier, round), &token, 1);
    char got = 0;
    recv_from(from, tag_for(kBarrier, round), &got, 1);
  }
}

void Group::broadcast(void* buf, std::size_t len, int root) {
  seq_ = (seq_ + 1) & 0x7FFF;
  const int n = size();
  if (n == 1) return;
  const int vr = (rank_ - root + n) % n;
  // Receive from the binomial parent...
  int mask = 1;
  while (mask < n) {
    if ((vr & mask) != 0) {
      const int parent = (vr - mask + root + n) % n;
      recv_from(parent, tag_for(kBcast, 0), buf, len);
      break;
    }
    mask <<= 1;
  }
  // ...then forward to the binomial children.
  mask >>= 1;
  while (mask > 0) {
    if ((vr & (mask - 1)) == 0 && (vr | mask) < n && (vr & mask) == 0) {
      const int child = (vr + mask + root) % n;
      send_to(child, tag_for(kBcast, 0), buf, len);
    }
    mask >>= 1;
  }
}

namespace {
template <typename T>
void apply(ReduceOp op, T* acc, const T* in, std::size_t n) {
  switch (op) {
    case ReduceOp::Sum:
      for (std::size_t i = 0; i < n; ++i) acc[i] += in[i];
      return;
    case ReduceOp::Min:
      for (std::size_t i = 0; i < n; ++i) acc[i] = std::min(acc[i], in[i]);
      return;
    case ReduceOp::Max:
      for (std::size_t i = 0; i < n; ++i) acc[i] = std::max(acc[i], in[i]);
      return;
  }
}
}  // namespace

template <typename T>
void Group::reduce_impl(const T* in, T* out, std::size_t n, ReduceOp op,
                        int root) {
  seq_ = (seq_ + 1) & 0x7FFF;
  const int gsize = size();
  // Accumulator and receive staging share one retained scratch vector:
  // after the first reduce of a given size no collective touches the heap.
  std::vector<T>& s = scratch<T>();
  if (s.size() < 2 * n) s.resize(2 * n);
  T* acc = s.data();
  T* tmp = s.data() + n;
  std::copy(in, in + n, acc);
  const int vr = (rank_ - root + gsize) % gsize;
  int round = 0;
  for (int mask = 1; mask < gsize; mask <<= 1, ++round) {
    if ((vr & mask) != 0) {
      const int parent = (vr - mask + root + gsize) % gsize;
      send_to(parent, tag_for(kReduce, round), acc, n * sizeof(T));
      return;  // contribution handed upwards; done
    }
    if (vr + mask < gsize) {
      const int child = (vr + mask + root) % gsize;
      recv_from(child, tag_for(kReduce, round), tmp, n * sizeof(T));
      apply(op, acc, tmp, n);
    }
  }
  // vr == 0: this is the root.
  std::copy(acc, acc + n, out);
}

void Group::reduce(const std::int64_t* in, std::int64_t* out, std::size_t n,
                   ReduceOp op, int root) {
  reduce_impl(in, out, n, op, root);
}
void Group::reduce(const double* in, double* out, std::size_t n, ReduceOp op,
                   int root) {
  reduce_impl(in, out, n, op, root);
}

void Group::allreduce(const std::int64_t* in, std::int64_t* out,
                      std::size_t n, ReduceOp op) {
  reduce(in, out, n, op, /*root=*/0);
  broadcast(out, n * sizeof(std::int64_t), /*root=*/0);
}
void Group::allreduce(const double* in, double* out, std::size_t n,
                      ReduceOp op) {
  reduce(in, out, n, op, /*root=*/0);
  broadcast(out, n * sizeof(double), /*root=*/0);
}

void Group::gather(const void* in, std::size_t len, void* out, int root) {
  seq_ = (seq_ + 1) & 0x7FFF;
  if (rank_ != root) {
    send_to(root, tag_for(kGather, rank_ & 0xFF), in, len);
    return;
  }
  auto* dst = static_cast<std::uint8_t*>(out);
  for (int r = 0; r < size(); ++r) {
    if (r == rank_) {
      std::memcpy(dst + static_cast<std::size_t>(r) * len, in, len);
    } else {
      recv_from(r, tag_for(kGather, r & 0xFF),
                dst + static_cast<std::size_t>(r) * len, len);
    }
  }
}

void Group::allgather(const void* in, std::size_t len, void* out) {
  gather(in, len, out, /*root=*/0);
  broadcast(out, static_cast<std::size_t>(size()) * len, /*root=*/0);
}

void Group::scatter(const void* in, void* out, std::size_t len, int root) {
  seq_ = (seq_ + 1) & 0x7FFF;
  if (rank_ == root) {
    const auto* src = static_cast<const std::uint8_t*>(in);
    for (int r = 0; r < size(); ++r) {
      if (r == rank_) {
        std::memcpy(out, src + static_cast<std::size_t>(r) * len, len);
      } else {
        send_to(r, tag_for(kScatter, r & 0xFF),
                src + static_cast<std::size_t>(r) * len, len);
      }
    }
    return;
  }
  recv_from(root, tag_for(kScatter, rank_ & 0xFF), out, len);
}

}  // namespace nx
